# Empty compiler generated dependencies file for ziria_sora.
# This may be replaced when dependencies are built.
