file(REMOVE_RECURSE
  "libziria_sora.a"
)
