file(REMOVE_RECURSE
  "CMakeFiles/ziria_sora.dir/sora/sora_rx.cc.o"
  "CMakeFiles/ziria_sora.dir/sora/sora_rx.cc.o.d"
  "CMakeFiles/ziria_sora.dir/sora/sora_tx.cc.o"
  "CMakeFiles/ziria_sora.dir/sora/sora_tx.cc.o.d"
  "libziria_sora.a"
  "libziria_sora.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziria_sora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
