# Empty compiler generated dependencies file for ziria_support.
# This may be replaced when dependencies are built.
