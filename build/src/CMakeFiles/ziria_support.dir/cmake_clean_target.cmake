file(REMOVE_RECURSE
  "libziria_support.a"
)
