
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/bits.cc" "src/CMakeFiles/ziria_support.dir/support/bits.cc.o" "gcc" "src/CMakeFiles/ziria_support.dir/support/bits.cc.o.d"
  "/root/repo/src/support/log.cc" "src/CMakeFiles/ziria_support.dir/support/log.cc.o" "gcc" "src/CMakeFiles/ziria_support.dir/support/log.cc.o.d"
  "/root/repo/src/support/metrics.cc" "src/CMakeFiles/ziria_support.dir/support/metrics.cc.o" "gcc" "src/CMakeFiles/ziria_support.dir/support/metrics.cc.o.d"
  "/root/repo/src/support/panic.cc" "src/CMakeFiles/ziria_support.dir/support/panic.cc.o" "gcc" "src/CMakeFiles/ziria_support.dir/support/panic.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/ziria_support.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/ziria_support.dir/support/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
