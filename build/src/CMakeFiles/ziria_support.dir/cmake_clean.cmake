file(REMOVE_RECURSE
  "CMakeFiles/ziria_support.dir/support/bits.cc.o"
  "CMakeFiles/ziria_support.dir/support/bits.cc.o.d"
  "CMakeFiles/ziria_support.dir/support/log.cc.o"
  "CMakeFiles/ziria_support.dir/support/log.cc.o.d"
  "CMakeFiles/ziria_support.dir/support/metrics.cc.o"
  "CMakeFiles/ziria_support.dir/support/metrics.cc.o.d"
  "CMakeFiles/ziria_support.dir/support/panic.cc.o"
  "CMakeFiles/ziria_support.dir/support/panic.cc.o.d"
  "CMakeFiles/ziria_support.dir/support/rng.cc.o"
  "CMakeFiles/ziria_support.dir/support/rng.cc.o.d"
  "libziria_support.a"
  "libziria_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziria_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
