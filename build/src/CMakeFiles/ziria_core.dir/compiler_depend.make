# Empty compiler generated dependencies file for ziria_core.
# This may be replaced when dependencies are built.
