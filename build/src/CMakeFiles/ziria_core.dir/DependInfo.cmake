
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zast/builder.cc" "src/CMakeFiles/ziria_core.dir/zast/builder.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zast/builder.cc.o.d"
  "/root/repo/src/zast/comp.cc" "src/CMakeFiles/ziria_core.dir/zast/comp.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zast/comp.cc.o.d"
  "/root/repo/src/zast/expr.cc" "src/CMakeFiles/ziria_core.dir/zast/expr.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zast/expr.cc.o.d"
  "/root/repo/src/zast/printer.cc" "src/CMakeFiles/ziria_core.dir/zast/printer.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zast/printer.cc.o.d"
  "/root/repo/src/zcard/card.cc" "src/CMakeFiles/ziria_core.dir/zcard/card.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zcard/card.cc.o.d"
  "/root/repo/src/zcheck/check.cc" "src/CMakeFiles/ziria_core.dir/zcheck/check.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zcheck/check.cc.o.d"
  "/root/repo/src/zexec/nodes_comb.cc" "src/CMakeFiles/ziria_core.dir/zexec/nodes_comb.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zexec/nodes_comb.cc.o.d"
  "/root/repo/src/zexec/nodes_prim.cc" "src/CMakeFiles/ziria_core.dir/zexec/nodes_prim.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zexec/nodes_prim.cc.o.d"
  "/root/repo/src/zexec/pipeline.cc" "src/CMakeFiles/ziria_core.dir/zexec/pipeline.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zexec/pipeline.cc.o.d"
  "/root/repo/src/zexec/threaded.cc" "src/CMakeFiles/ziria_core.dir/zexec/threaded.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zexec/threaded.cc.o.d"
  "/root/repo/src/zexpr/compile_expr.cc" "src/CMakeFiles/ziria_core.dir/zexpr/compile_expr.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zexpr/compile_expr.cc.o.d"
  "/root/repo/src/zexpr/lut.cc" "src/CMakeFiles/ziria_core.dir/zexpr/lut.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zexpr/lut.cc.o.d"
  "/root/repo/src/zexpr/natives.cc" "src/CMakeFiles/ziria_core.dir/zexpr/natives.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zexpr/natives.cc.o.d"
  "/root/repo/src/zir/compiler.cc" "src/CMakeFiles/ziria_core.dir/zir/compiler.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zir/compiler.cc.o.d"
  "/root/repo/src/zopt/autolut.cc" "src/CMakeFiles/ziria_core.dir/zopt/autolut.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zopt/autolut.cc.o.d"
  "/root/repo/src/zopt/automap.cc" "src/CMakeFiles/ziria_core.dir/zopt/automap.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zopt/automap.cc.o.d"
  "/root/repo/src/zopt/elaborate.cc" "src/CMakeFiles/ziria_core.dir/zopt/elaborate.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zopt/elaborate.cc.o.d"
  "/root/repo/src/zopt/fold.cc" "src/CMakeFiles/ziria_core.dir/zopt/fold.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zopt/fold.cc.o.d"
  "/root/repo/src/zparse/lexer.cc" "src/CMakeFiles/ziria_core.dir/zparse/lexer.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zparse/lexer.cc.o.d"
  "/root/repo/src/zparse/parser.cc" "src/CMakeFiles/ziria_core.dir/zparse/parser.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zparse/parser.cc.o.d"
  "/root/repo/src/ztype/type.cc" "src/CMakeFiles/ziria_core.dir/ztype/type.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/ztype/type.cc.o.d"
  "/root/repo/src/ztype/value.cc" "src/CMakeFiles/ziria_core.dir/ztype/value.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/ztype/value.cc.o.d"
  "/root/repo/src/zvect/simple_comp.cc" "src/CMakeFiles/ziria_core.dir/zvect/simple_comp.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zvect/simple_comp.cc.o.d"
  "/root/repo/src/zvect/vectorize.cc" "src/CMakeFiles/ziria_core.dir/zvect/vectorize.cc.o" "gcc" "src/CMakeFiles/ziria_core.dir/zvect/vectorize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ziria_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
