file(REMOVE_RECURSE
  "libziria_core.a"
)
