file(REMOVE_RECURSE
  "CMakeFiles/ziria_wifi.dir/wifi/blocks_rx.cc.o"
  "CMakeFiles/ziria_wifi.dir/wifi/blocks_rx.cc.o.d"
  "CMakeFiles/ziria_wifi.dir/wifi/blocks_tx.cc.o"
  "CMakeFiles/ziria_wifi.dir/wifi/blocks_tx.cc.o.d"
  "CMakeFiles/ziria_wifi.dir/wifi/native_blocks.cc.o"
  "CMakeFiles/ziria_wifi.dir/wifi/native_blocks.cc.o.d"
  "CMakeFiles/ziria_wifi.dir/wifi/params.cc.o"
  "CMakeFiles/ziria_wifi.dir/wifi/params.cc.o.d"
  "CMakeFiles/ziria_wifi.dir/wifi/preamble.cc.o"
  "CMakeFiles/ziria_wifi.dir/wifi/preamble.cc.o.d"
  "CMakeFiles/ziria_wifi.dir/wifi/rx.cc.o"
  "CMakeFiles/ziria_wifi.dir/wifi/rx.cc.o.d"
  "CMakeFiles/ziria_wifi.dir/wifi/tx.cc.o"
  "CMakeFiles/ziria_wifi.dir/wifi/tx.cc.o.d"
  "libziria_wifi.a"
  "libziria_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziria_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
