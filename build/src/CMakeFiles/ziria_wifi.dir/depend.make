# Empty dependencies file for ziria_wifi.
# This may be replaced when dependencies are built.
