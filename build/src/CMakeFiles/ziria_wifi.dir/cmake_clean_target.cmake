file(REMOVE_RECURSE
  "libziria_wifi.a"
)
