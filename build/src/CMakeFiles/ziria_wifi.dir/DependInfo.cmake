
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/blocks_rx.cc" "src/CMakeFiles/ziria_wifi.dir/wifi/blocks_rx.cc.o" "gcc" "src/CMakeFiles/ziria_wifi.dir/wifi/blocks_rx.cc.o.d"
  "/root/repo/src/wifi/blocks_tx.cc" "src/CMakeFiles/ziria_wifi.dir/wifi/blocks_tx.cc.o" "gcc" "src/CMakeFiles/ziria_wifi.dir/wifi/blocks_tx.cc.o.d"
  "/root/repo/src/wifi/native_blocks.cc" "src/CMakeFiles/ziria_wifi.dir/wifi/native_blocks.cc.o" "gcc" "src/CMakeFiles/ziria_wifi.dir/wifi/native_blocks.cc.o.d"
  "/root/repo/src/wifi/params.cc" "src/CMakeFiles/ziria_wifi.dir/wifi/params.cc.o" "gcc" "src/CMakeFiles/ziria_wifi.dir/wifi/params.cc.o.d"
  "/root/repo/src/wifi/preamble.cc" "src/CMakeFiles/ziria_wifi.dir/wifi/preamble.cc.o" "gcc" "src/CMakeFiles/ziria_wifi.dir/wifi/preamble.cc.o.d"
  "/root/repo/src/wifi/rx.cc" "src/CMakeFiles/ziria_wifi.dir/wifi/rx.cc.o" "gcc" "src/CMakeFiles/ziria_wifi.dir/wifi/rx.cc.o.d"
  "/root/repo/src/wifi/tx.cc" "src/CMakeFiles/ziria_wifi.dir/wifi/tx.cc.o" "gcc" "src/CMakeFiles/ziria_wifi.dir/wifi/tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ziria_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ziria_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ziria_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
