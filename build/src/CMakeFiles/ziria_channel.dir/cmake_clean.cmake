file(REMOVE_RECURSE
  "CMakeFiles/ziria_channel.dir/channel/channel.cc.o"
  "CMakeFiles/ziria_channel.dir/channel/channel.cc.o.d"
  "libziria_channel.a"
  "libziria_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziria_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
