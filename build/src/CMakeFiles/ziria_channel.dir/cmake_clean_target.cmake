file(REMOVE_RECURSE
  "libziria_channel.a"
)
