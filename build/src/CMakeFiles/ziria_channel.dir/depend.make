# Empty dependencies file for ziria_channel.
# This may be replaced when dependencies are built.
