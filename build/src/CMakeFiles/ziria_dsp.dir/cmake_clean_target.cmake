file(REMOVE_RECURSE
  "libziria_dsp.a"
)
