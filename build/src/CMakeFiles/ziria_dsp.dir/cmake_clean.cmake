file(REMOVE_RECURSE
  "CMakeFiles/ziria_dsp.dir/dsp/constellation.cc.o"
  "CMakeFiles/ziria_dsp.dir/dsp/constellation.cc.o.d"
  "CMakeFiles/ziria_dsp.dir/dsp/conv_code.cc.o"
  "CMakeFiles/ziria_dsp.dir/dsp/conv_code.cc.o.d"
  "CMakeFiles/ziria_dsp.dir/dsp/crc.cc.o"
  "CMakeFiles/ziria_dsp.dir/dsp/crc.cc.o.d"
  "CMakeFiles/ziria_dsp.dir/dsp/fft.cc.o"
  "CMakeFiles/ziria_dsp.dir/dsp/fft.cc.o.d"
  "CMakeFiles/ziria_dsp.dir/dsp/viterbi.cc.o"
  "CMakeFiles/ziria_dsp.dir/dsp/viterbi.cc.o.d"
  "libziria_dsp.a"
  "libziria_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziria_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
