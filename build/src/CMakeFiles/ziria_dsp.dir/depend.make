# Empty dependencies file for ziria_dsp.
# This may be replaced when dependencies are built.
