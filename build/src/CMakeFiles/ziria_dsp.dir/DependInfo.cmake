
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/constellation.cc" "src/CMakeFiles/ziria_dsp.dir/dsp/constellation.cc.o" "gcc" "src/CMakeFiles/ziria_dsp.dir/dsp/constellation.cc.o.d"
  "/root/repo/src/dsp/conv_code.cc" "src/CMakeFiles/ziria_dsp.dir/dsp/conv_code.cc.o" "gcc" "src/CMakeFiles/ziria_dsp.dir/dsp/conv_code.cc.o.d"
  "/root/repo/src/dsp/crc.cc" "src/CMakeFiles/ziria_dsp.dir/dsp/crc.cc.o" "gcc" "src/CMakeFiles/ziria_dsp.dir/dsp/crc.cc.o.d"
  "/root/repo/src/dsp/fft.cc" "src/CMakeFiles/ziria_dsp.dir/dsp/fft.cc.o" "gcc" "src/CMakeFiles/ziria_dsp.dir/dsp/fft.cc.o.d"
  "/root/repo/src/dsp/viterbi.cc" "src/CMakeFiles/ziria_dsp.dir/dsp/viterbi.cc.o" "gcc" "src/CMakeFiles/ziria_dsp.dir/dsp/viterbi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ziria_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
