file(REMOVE_RECURSE
  "CMakeFiles/zirrun.dir/zirrun.cpp.o"
  "CMakeFiles/zirrun.dir/zirrun.cpp.o.d"
  "zirrun"
  "zirrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zirrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
