# Empty compiler generated dependencies file for zirrun.
# This may be replaced when dependencies are built.
