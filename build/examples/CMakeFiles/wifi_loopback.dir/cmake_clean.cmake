file(REMOVE_RECURSE
  "CMakeFiles/wifi_loopback.dir/wifi_loopback.cpp.o"
  "CMakeFiles/wifi_loopback.dir/wifi_loopback.cpp.o.d"
  "wifi_loopback"
  "wifi_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
