# Empty compiler generated dependencies file for wifi_loopback.
# This may be replaced when dependencies are built.
