# Empty compiler generated dependencies file for lut_scrambler.
# This may be replaced when dependencies are built.
