file(REMOVE_RECURSE
  "CMakeFiles/lut_scrambler.dir/lut_scrambler.cpp.o"
  "CMakeFiles/lut_scrambler.dir/lut_scrambler.cpp.o.d"
  "lut_scrambler"
  "lut_scrambler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lut_scrambler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
