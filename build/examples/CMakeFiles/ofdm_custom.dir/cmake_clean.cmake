file(REMOVE_RECURSE
  "CMakeFiles/ofdm_custom.dir/ofdm_custom.cpp.o"
  "CMakeFiles/ofdm_custom.dir/ofdm_custom.cpp.o.d"
  "ofdm_custom"
  "ofdm_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofdm_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
