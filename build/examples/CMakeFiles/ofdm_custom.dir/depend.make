# Empty dependencies file for ofdm_custom.
# This may be replaced when dependencies are built.
