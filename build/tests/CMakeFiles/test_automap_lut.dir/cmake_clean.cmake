file(REMOVE_RECURSE
  "CMakeFiles/test_automap_lut.dir/test_automap_lut.cpp.o"
  "CMakeFiles/test_automap_lut.dir/test_automap_lut.cpp.o.d"
  "test_automap_lut"
  "test_automap_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_automap_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
