# Empty dependencies file for test_automap_lut.
# This may be replaced when dependencies are built.
