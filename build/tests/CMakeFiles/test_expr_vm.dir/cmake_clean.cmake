file(REMOVE_RECURSE
  "CMakeFiles/test_expr_vm.dir/test_expr_vm.cpp.o"
  "CMakeFiles/test_expr_vm.dir/test_expr_vm.cpp.o.d"
  "test_expr_vm"
  "test_expr_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expr_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
