# Empty dependencies file for test_expr_vm.
# This may be replaced when dependencies are built.
