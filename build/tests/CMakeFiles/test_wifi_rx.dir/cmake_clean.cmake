file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_rx.dir/test_wifi_rx.cpp.o"
  "CMakeFiles/test_wifi_rx.dir/test_wifi_rx.cpp.o.d"
  "test_wifi_rx"
  "test_wifi_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
