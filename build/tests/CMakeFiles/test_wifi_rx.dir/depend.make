# Empty dependencies file for test_wifi_rx.
# This may be replaced when dependencies are built.
