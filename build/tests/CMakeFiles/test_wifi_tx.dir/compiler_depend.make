# Empty compiler generated dependencies file for test_wifi_tx.
# This may be replaced when dependencies are built.
