file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_tx.dir/test_wifi_tx.cpp.o"
  "CMakeFiles/test_wifi_tx.dir/test_wifi_tx.cpp.o.d"
  "test_wifi_tx"
  "test_wifi_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
