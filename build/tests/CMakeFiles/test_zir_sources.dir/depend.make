# Empty dependencies file for test_zir_sources.
# This may be replaced when dependencies are built.
