file(REMOVE_RECURSE
  "CMakeFiles/test_zir_sources.dir/test_zir_sources.cpp.o"
  "CMakeFiles/test_zir_sources.dir/test_zir_sources.cpp.o.d"
  "test_zir_sources"
  "test_zir_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zir_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
