file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_extra.dir/test_wifi_extra.cpp.o"
  "CMakeFiles/test_wifi_extra.dir/test_wifi_extra.cpp.o.d"
  "test_wifi_extra"
  "test_wifi_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
