# Empty dependencies file for test_wifi_extra.
# This may be replaced when dependencies are built.
