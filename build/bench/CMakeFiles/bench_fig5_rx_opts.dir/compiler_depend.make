# Empty compiler generated dependencies file for bench_fig5_rx_opts.
# This may be replaced when dependencies are built.
