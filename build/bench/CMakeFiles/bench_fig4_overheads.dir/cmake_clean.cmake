file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_overheads.dir/bench_fig4_overheads.cpp.o"
  "CMakeFiles/bench_fig4_overheads.dir/bench_fig4_overheads.cpp.o.d"
  "bench_fig4_overheads"
  "bench_fig4_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
