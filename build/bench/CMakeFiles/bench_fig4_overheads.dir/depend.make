# Empty dependencies file for bench_fig4_overheads.
# This may be replaced when dependencies are built.
