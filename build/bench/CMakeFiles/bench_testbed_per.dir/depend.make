# Empty dependencies file for bench_testbed_per.
# This may be replaced when dependencies are built.
