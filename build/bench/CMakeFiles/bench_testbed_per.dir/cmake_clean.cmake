file(REMOVE_RECURSE
  "CMakeFiles/bench_testbed_per.dir/bench_testbed_per.cpp.o"
  "CMakeFiles/bench_testbed_per.dir/bench_testbed_per.cpp.o.d"
  "bench_testbed_per"
  "bench_testbed_per.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_testbed_per.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
