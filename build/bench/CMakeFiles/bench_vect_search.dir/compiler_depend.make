# Empty compiler generated dependencies file for bench_vect_search.
# This may be replaced when dependencies are built.
