file(REMOVE_RECURSE
  "CMakeFiles/bench_vect_search.dir/bench_vect_search.cpp.o"
  "CMakeFiles/bench_vect_search.dir/bench_vect_search.cpp.o.d"
  "bench_vect_search"
  "bench_vect_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vect_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
