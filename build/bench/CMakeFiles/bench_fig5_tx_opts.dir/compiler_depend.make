# Empty compiler generated dependencies file for bench_fig5_tx_opts.
# This may be replaced when dependencies are built.
