/**
 * @file
 * Serving subsystem tests (ctest label `serve`): the blocking socket
 * endpoints composed with compiled pipelines and fault decorators, and
 * the multi-session server end to end over loopback TCP — streaming
 * correctness against a solo in-process run, multi-session fault
 * isolation (a faulted session is evicted exactly once while its
 * neighbor's output stays byte-identical), per-session supervised
 * restart, admission control, idle timeouts, and protocol-error
 * eviction.
 *
 * All socket traffic is loopback (127.0.0.1) or AF_UNIX socketpairs;
 * no test talks to the outside world.
 */
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/metrics.h"
#include "support/rng.h"
#include "wifi/params.h"
#include "wifi/tx.h"
#include "zexec/faultpoint.h"
#include "zir/compiler.h"
#include "zparse/parser.h"
#include "zserve/endpoints.h"
#include "zserve/server.h"
#include "zserve/socket.h"
#include "zserve/wire.h"

namespace ziria {
namespace serve {
namespace {

/** The paper's Figure 3 scrambler (vectorizes to 8-byte elements). */
const char* kScramblerSrc = R"(
let comp scrambler() =
    var scrmbl_st : arr[7] bit := {'1,'1,'1,'1,'1,'1,'1} in
    repeat {
        seq { (x : bit) <- take : bit
            ; (tmp : bit) <- return (scrmbl_st[3] ^ scrmbl_st[0])
            ; do { scrmbl_st[0, 6] := scrmbl_st[1, 6];
                   scrmbl_st[6] := tmp; }
            ; emit (x ^ tmp)
            }
    }

scrambler()
)";

std::vector<uint8_t>
randomBits(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = rng.bit();
    return out;
}

Server::PipelineFactory
scramblerFactory()
{
    CompPtr program = parseComp(kScramblerSrc);
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::All);
    return [program, opt](uint64_t) {
        return compilePipeline(program, opt, nullptr);
    };
}

/** Solo (no server) reference run of the same program. */
std::vector<uint8_t>
soloRun(const Server::PipelineFactory& factory,
        const std::vector<uint8_t>& input)
{
    auto p = factory(~0ull);
    return p->runBytes(input);
}

/** Poll @p cond for up to @p ms milliseconds. */
bool
waitFor(const std::function<bool()>& cond, int ms = 3000)
{
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
}

/**
 * A small blocking wire-protocol client: connect, read Hello, stream
 * Data frames, End, and drain the reply.  Mirrors tools/zclient.cpp in
 * miniature so the tests do not depend on the CLI binary.
 */
struct TestClient
{
    SockFd sock;
    FrameParser parser;
    HelloInfo hello;
    std::vector<uint8_t> out;    ///< concatenated Data payloads
    std::vector<uint8_t> ctrl;   ///< Halt payload, if any
    std::string errorMsg;        ///< Error payload, if any
    bool sawEnd = false;
    bool sawError = false;
    bool closedClean = true;     ///< false when the peer died mid-frame

    bool
    readFrame(Frame& f)
    {
        uint8_t buf[16 * 1024];
        for (;;) {
            FrameParser::Result r = parser.next(f);
            if (r == FrameParser::Result::Frame)
                return true;
            if (r == FrameParser::Result::Error)
                return false;
            long n = recvSome(sock.get(), buf, sizeof buf);
            if (n > 0) {
                parser.feed(buf, static_cast<size_t>(n));
                continue;
            }
            if (n == 0 && parser.midFrame())
                closedClean = false;
            if (n != -1)  // closed or hard error
                return false;
        }
    }

    /** Connect and consume the greeting; false on an Error greeting. */
    bool
    connect(uint16_t port)
    {
        sock = connectTcp("127.0.0.1", port);
        if (sock.get() < 0)
            return false;
        Frame f;
        if (!readFrame(f))
            return false;
        if (f.type == FrameType::Error) {
            sawError = true;
            errorMsg.assign(f.payload.begin(), f.payload.end());
            return false;
        }
        return f.type == FrameType::Hello && decodeHello(f.payload, hello);
    }

    bool
    sendData(const uint8_t* data, size_t n)
    {
        std::vector<uint8_t> wire;
        encodeFrame(wire, FrameType::Data, data, n);
        return sendAll(sock.get(), wire.data(), wire.size());
    }

    /** Send @p input as Data frames of at most @p chunkElems elements. */
    bool
    sendAllData(const std::vector<uint8_t>& input, size_t chunkElems = 256)
    {
        size_t w = hello.inWidth ? hello.inWidth : 1;
        size_t chunkBytes = chunkElems * w;
        for (size_t off = 0; off < input.size(); off += chunkBytes) {
            size_t n = std::min(chunkBytes, input.size() - off);
            if (!sendData(input.data() + off, n))
                return false;
        }
        return true;
    }

    bool
    sendEnd()
    {
        std::vector<uint8_t> wire;
        encodeFrame(wire, FrameType::End);
        return sendAll(sock.get(), wire.data(), wire.size());
    }

    /** Read until End, Error, or close. */
    void
    drain()
    {
        Frame f;
        while (readFrame(f)) {
            switch (f.type) {
              case FrameType::Data:
                out.insert(out.end(), f.payload.begin(), f.payload.end());
                break;
              case FrameType::Halt:
                ctrl = f.payload;
                break;
              case FrameType::End:
                sawEnd = true;
                return;
              case FrameType::Error:
                sawError = true;
                errorMsg.assign(f.payload.begin(), f.payload.end());
                return;
              default:
                return;
            }
        }
    }

    /** The whole session in one call. */
    void
    run(uint16_t port, const std::vector<uint8_t>& input)
    {
        if (!connect(port))
            return;
        if (!sendAllData(input) || !sendEnd())
            return;
        drain();
    }
};

// -------------------------------------------- blocking socket endpoints

/** An AF_UNIX socketpair: both ends speak the same stream protocol. */
struct Pair
{
    int a = -1, b = -1;
    Pair()
    {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
            a = fds[0];
            b = fds[1];
        }
    }
    ~Pair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
};

TEST(SocketEndpoints, SourceFeedsPipelineFromWireFrames)
{
    auto factory = scramblerFactory();
    auto p = factory(0);
    const size_t inW = p->inWidth();
    auto input = randomBits(512 * inW, 11);
    auto expect = soloRun(factory, input);

    Pair pair;
    ASSERT_GE(pair.a, 0);
    std::thread feeder([&] {
        std::vector<uint8_t> wire;
        // Deliberately ragged frame sizes: 1, 2, 3, ... elements.
        size_t off = 0, k = 1;
        while (off < input.size()) {
            size_t n = std::min(k * inW, input.size() - off);
            encodeFrame(wire, FrameType::Data, input.data() + off, n);
            off += n;
            ++k;
        }
        encodeFrame(wire, FrameType::End);
        sendAll(pair.a, wire.data(), wire.size());
    });

    SocketSource src(pair.b, inW);
    VecSink sink(p->outWidth());
    p->run(src, sink);
    feeder.join();

    EXPECT_EQ(sink.data(), expect);
    EXPECT_EQ(src.elemsIn(), input.size() / inW);
}

TEST(SocketEndpoints, SinkFramesPipelineOutputOntoTheWire)
{
    auto factory = scramblerFactory();
    auto p = factory(0);
    const size_t inW = p->inWidth(), outW = p->outWidth();
    auto input = randomBits(300 * inW, 12);
    auto expect = soloRun(factory, input);

    Pair pair;
    ASSERT_GE(pair.a, 0);
    std::vector<uint8_t> got;
    bool end = false;
    std::thread reader([&] {
        FrameParser parser;
        Frame f;
        uint8_t buf[4096];
        for (;;) {
            FrameParser::Result r = parser.next(f);
            if (r == FrameParser::Result::Frame) {
                if (f.type == FrameType::Data)
                    got.insert(got.end(), f.payload.begin(),
                               f.payload.end());
                else if (f.type == FrameType::End) {
                    end = true;
                    return;
                }
                continue;
            }
            if (r == FrameParser::Result::Error)
                return;
            long n = recvSome(pair.a, buf, sizeof buf);
            if (n > 0)
                parser.feed(buf, static_cast<size_t>(n));
            else if (n != -1)
                return;
        }
    });

    MemSource src(input, inW);
    SocketSink sink(pair.b, outW, /*batch_elems=*/64);
    p->run(src, sink);
    sink.finish();
    reader.join();

    EXPECT_TRUE(end);
    EXPECT_EQ(got, expect);
    EXPECT_GT(sink.framesOut(), 1u);  // batching actually framed
}

TEST(SocketEndpoints, ComposesWithFaultDecorator)
{
    // truncate@K on top of a SocketSource ends the stream early without
    // touching the wire layer — the same decorator the solo runner and
    // the server reuse.
    auto factory = scramblerFactory();
    auto p = factory(0);
    const size_t inW = p->inWidth();
    auto input = randomBits(256 * inW, 13);

    Pair pair;
    ASSERT_GE(pair.a, 0);
    std::thread feeder([&] {
        std::vector<uint8_t> wire;
        encodeFrame(wire, FrameType::Data, input);
        encodeFrame(wire, FrameType::End);
        sendAll(pair.a, wire.data(), wire.size());
    });

    SocketSource inner(pair.b, inW);
    FaultySource src(inner, FaultSpec::parse("truncate@100"));
    VecSink sink(p->outWidth());
    p->run(src, sink);
    feeder.join();

    EXPECT_EQ(sink.elems(), 100u);
    auto expect = soloRun(factory, input);
    EXPECT_EQ(0, std::memcmp(sink.data().data(), expect.data(),
                             sink.data().size()));
}

// ----------------------------------------------------- server, e2e TCP

TEST(Serve, ScramblerEndToEndMatchesSoloRun)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 2;
    Server server(factory, cfg);
    server.start();

    auto input = randomBits(4096 * 8, 21);
    auto expect = soloRun(factory, input);

    TestClient c;
    c.run(server.port(), input);
    EXPECT_TRUE(c.sawEnd);
    EXPECT_FALSE(c.sawError) << c.errorMsg;
    EXPECT_EQ(c.hello.inWidth, 8u);  // the scrambler vectorizes to 8
    EXPECT_EQ(c.out, expect);

    EXPECT_TRUE(waitFor([&] { return server.counters().completed == 1; }));
    Server::Counters sc = server.counters();
    EXPECT_EQ(sc.accepted, 1u);
    EXPECT_EQ(sc.evicted, 0u);
    EXPECT_EQ(sc.rejected, 0u);
    server.stop();
}

TEST(Serve, WifiTxCaptureOverLoopback)
{
    // Stream a WiFi transmitter: random payload bits in, the 802.11a
    // sample capture out — the server's reply must be byte-identical to
    // the solo in-process run of the same compiled pipeline.
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::All);
    Server::PipelineFactory factory =
        [opt](uint64_t) -> std::unique_ptr<Pipeline> {
        return compilePipeline(wifi::wifiTxDataComp(wifi::Rate::R12), opt,
                               nullptr);
    };

    auto probe = factory(0);
    const size_t inW = std::max<size_t>(probe->inWidth(), 1);
    // Whole elements only; a generous zero tail flushes the real bits
    // through the vectorized interior (same idiom as test_wifi_tx).
    auto bits = randomBits(480, 31);
    bits.insert(bits.end(), ((bits.size() / inW) + 40) * inW - bits.size(),
                0);
    auto expect = soloRun(factory, bits);
    ASSERT_FALSE(expect.empty());

    ServerConfig cfg;
    cfg.workers = 2;
    Server server(factory, cfg);
    server.start();

    TestClient c;
    c.run(server.port(), bits);
    EXPECT_TRUE(c.sawEnd);
    EXPECT_FALSE(c.sawError) << c.errorMsg;
    EXPECT_EQ(c.out, expect);
    server.stop();
}

TEST(Serve, ConcurrentSessionsAllComplete)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 3;
    Server server(factory, cfg);
    server.start();

    const int kSessions = 8;
    std::vector<TestClient> cs(kSessions);
    std::vector<std::vector<uint8_t>> inputs(kSessions);
    std::vector<std::vector<uint8_t>> expects(kSessions);
    for (int i = 0; i < kSessions; ++i) {
        inputs[i] = randomBits(1024 * 8, 100 + static_cast<uint64_t>(i));
        expects[i] = soloRun(factory, inputs[i]);
    }
    std::vector<std::thread> threads;
    for (int i = 0; i < kSessions; ++i)
        threads.emplace_back([&, i] {
            cs[i].run(server.port(), inputs[i]);
        });
    for (auto& t : threads)
        t.join();

    for (int i = 0; i < kSessions; ++i) {
        EXPECT_TRUE(cs[i].sawEnd) << "session " << i;
        EXPECT_EQ(cs[i].out, expects[i]) << "session " << i;
    }
    EXPECT_TRUE(waitFor(
        [&] { return server.counters().completed == kSessions; }));
    server.stop();
}

// --------------------------------------------- fault isolation, healing

TEST(Serve, FaultedSessionIsEvictedNeighborUnharmed)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.fault = FaultSpec::parse("throw@64");
    cfg.faultSession = 0;  // only the first accepted session faults
    Server server(factory, cfg);
    server.start();

    auto evictedBefore = metrics::Registry::global()
                             .counter("server.sessions.evicted")
                             .value();

    auto faultyIn = randomBits(2048 * 8, 41);
    auto cleanIn = randomBits(2048 * 8, 42);
    auto expect = soloRun(factory, cleanIn);

    // Session ids are assigned in accept order: connect the victim
    // first and wait for its Hello before starting the neighbor.
    TestClient victim;
    ASSERT_TRUE(victim.connect(server.port()));
    TestClient neighbor;
    std::thread nt([&] { neighbor.run(server.port(), cleanIn); });
    victim.sendAllData(faultyIn);
    victim.sendEnd();
    victim.drain();
    nt.join();

    // The victim sees an Error frame naming the injected fault...
    EXPECT_TRUE(victim.sawError);
    EXPECT_FALSE(victim.sawEnd);
    EXPECT_NE(victim.errorMsg.find("injected"), std::string::npos)
        << victim.errorMsg;

    // ...while its neighbor's stream is byte-identical to a solo run.
    EXPECT_TRUE(neighbor.sawEnd);
    EXPECT_FALSE(neighbor.sawError) << neighbor.errorMsg;
    EXPECT_EQ(neighbor.out, expect);

    EXPECT_TRUE(waitFor([&] {
        Server::Counters sc = server.counters();
        return sc.evicted == 1 && sc.completed == 1;
    }));
    Server::Counters sc = server.counters();
    EXPECT_EQ(sc.evicted, 1u);  // exactly once
    EXPECT_EQ(sc.completed, 1u);
    EXPECT_EQ(metrics::Registry::global()
                  .counter("server.sessions.evicted")
                  .value(),
              evictedBefore + 1);
    server.stop();
}

TEST(Serve, PerSessionRestartHealsTransientFault)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.fault = FaultSpec::parse("throw@100");  // fires once (transient)
    cfg.faultSession = 0;
    cfg.session.restart.mode = RestartMode::OnFailure;
    cfg.session.restart.maxRestarts = 2;
    cfg.session.restart.backoffInitialMs = 1;
    Server server(factory, cfg);
    server.start();

    auto input = randomBits(1024 * 8, 51);
    TestClient c;
    c.run(server.port(), input);

    // The restart re-arms the pipeline in place: the stream completes
    // with every input element accounted for (the restarted scrambler
    // state diverges from a solo run past the fault point, so only the
    // pre-fault prefix is byte-comparable).
    EXPECT_TRUE(c.sawEnd);
    EXPECT_FALSE(c.sawError) << c.errorMsg;
    EXPECT_EQ(c.out.size(), input.size());
    auto expect = soloRun(factory, input);
    ASSERT_GE(c.out.size(), 64u * 8u);
    EXPECT_EQ(0, std::memcmp(c.out.data(), expect.data(), 64 * 8));

    EXPECT_TRUE(waitFor([&] { return server.counters().completed == 1; }));
    EXPECT_EQ(server.counters().evicted, 0u);
    server.stop();
}

// --------------------------------------------------- admission / sweeps

TEST(Serve, AdmissionControlRejectsOverCap)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.maxSessions = 1;
    Server server(factory, cfg);
    server.start();

    TestClient held;
    ASSERT_TRUE(held.connect(server.port()));  // occupies the one slot

    TestClient refused;
    EXPECT_FALSE(refused.connect(server.port()));
    EXPECT_TRUE(refused.sawError);
    EXPECT_NE(refused.errorMsg.find("full"), std::string::npos)
        << refused.errorMsg;

    EXPECT_TRUE(waitFor([&] { return server.counters().rejected == 1; }));

    // Releasing the slot re-opens admission.
    held.sendEnd();
    held.drain();
    EXPECT_TRUE(held.sawEnd);
    EXPECT_TRUE(waitFor([&] { return server.counters().active == 0; }));

    TestClient next;
    next.run(server.port(), randomBits(8 * 8, 61));
    EXPECT_TRUE(next.sawEnd);
    server.stop();
}

TEST(Serve, IdleSessionIsTimedOut)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.idleTimeoutMs = 60;
    Server server(factory, cfg);
    server.start();

    TestClient c;
    ASSERT_TRUE(c.connect(server.port()));
    c.drain();  // send nothing; the sweep must cut us loose

    EXPECT_TRUE(c.sawError);
    EXPECT_NE(c.errorMsg.find("idle"), std::string::npos) << c.errorMsg;
    EXPECT_TRUE(waitFor([&] { return server.counters().evicted == 1; }));
    server.stop();
}

TEST(Serve, MisalignedDataPayloadIsAProtocolError)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 1;
    Server server(factory, cfg);
    server.start();

    TestClient c;
    ASSERT_TRUE(c.connect(server.port()));
    ASSERT_EQ(c.hello.inWidth, 8u);
    uint8_t junk[9] = {0};  // 9 bytes: not a multiple of 8
    c.sendData(junk, sizeof junk);
    c.drain();

    EXPECT_TRUE(c.sawError);
    EXPECT_NE(c.errorMsg.find("element width"), std::string::npos)
        << c.errorMsg;
    EXPECT_TRUE(waitFor([&] { return server.counters().evicted == 1; }));
    server.stop();
}

TEST(Serve, ClientAbortMidFrameOnlyEvictsThatSession)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 2;
    Server server(factory, cfg);
    server.start();

    // An aborter hard-closes mid-frame; a well-behaved session running
    // at the same time must still complete.
    TestClient aborter;
    ASSERT_TRUE(aborter.connect(server.port()));
    {
        std::vector<uint8_t> wire;
        auto some = randomBits(16 * 8, 71);
        encodeFrame(wire, FrameType::Data, some);
        // Send only half the frame, then drop the connection.
        sendAll(aborter.sock.get(), wire.data(), wire.size() / 2);
        aborter.sock = SockFd();  // close
    }

    auto input = randomBits(512 * 8, 72);
    auto expect = soloRun(factory, input);
    TestClient good;
    good.run(server.port(), input);
    EXPECT_TRUE(good.sawEnd);
    EXPECT_EQ(good.out, expect);

    EXPECT_TRUE(waitFor([&] {
        Server::Counters sc = server.counters();
        return sc.evicted == 1 && sc.completed == 1;
    }));
    server.stop();
}

// ------------------------------------------------ serving observability

TEST(Serve, AggregatesSessionTrafficIntoRegistry)
{
    auto& reg = metrics::Registry::global();
    auto rxb0 = reg.counter("server.rx.bytes").value();
    auto txf0 = reg.counter("server.tx.frames").value();

    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 1;
    Server server(factory, cfg);
    server.start();

    auto input = randomBits(256 * 8, 81);
    TestClient c;
    c.run(server.port(), input);
    ASSERT_TRUE(c.sawEnd);
    EXPECT_TRUE(waitFor([&] { return server.counters().completed == 1; }));
    server.stop();

    // Close aggregated the per-session counters: at least the input
    // payload plus framing went through rx, and Hello + Data + End out.
    EXPECT_GE(reg.counter("server.rx.bytes").value(),
              rxb0 + input.size());
    EXPECT_GE(reg.counter("server.tx.frames").value(), txf0 + 3);
}

// ------------------------------------------- checkpoint / drain / migrate

namespace {

uint32_t
readU32(const std::vector<uint8_t>& b, size_t off)
{
    uint32_t v = 0;
    std::memcpy(&v, b.data() + off, 4);
    return v;
}

uint64_t
readU64(const std::vector<uint8_t>& b, size_t off)
{
    uint64_t v = 0;
    std::memcpy(&v, b.data() + off, 8);
    return v;
}

/** Step a session until it parks (NeedInput) or finishes, collecting
 *  any output it produces along the way. */
StepResult
stepUntilParked(Session& s, std::vector<uint8_t>& out)
{
    for (int guard = 0; guard < 100000; ++guard) {
        StepResult r = s.step();
        std::vector<uint8_t> chunk;
        while (s.takeOutput(chunk, 64 * 1024) > 0) {
            out.insert(out.end(), chunk.begin(), chunk.end());
            chunk.clear();
        }
        if (r == StepResult::NeedInput || r == StepResult::Finished ||
            r == StepResult::Failed)
            return r;
    }
    ADD_FAILURE() << "session never parked";
    return StepResult::Failed;
}

} // namespace

TEST(Serve, SessionCheckpointRoundTripOffline)
{
    // The session-level migration contract, no sockets involved: park a
    // session mid-stream, serialize it (with both a queued backlog and
    // an I/O-side pending tail), restore into a FRESH session, finish
    // the stream there, and demand byte-identity with the solo run.
    auto factory = scramblerFactory();
    auto input = randomBits(4096 * 8, 44);
    auto expect = soloRun(factory, input);

    SessionConfig cfg;
    Session a(1, /*fd=*/-1, factory(1), cfg, FaultSpec{});
    const size_t w = a.inWidth();
    ASSERT_GT(w, 0u);
    ASSERT_EQ(input.size() % w, 0u);

    // Feed a prefix and run it to quiescence.
    const size_t fed = 1024 * w;
    size_t consumed = 0;
    ASSERT_TRUE(a.offerInput(input.data(), fed, consumed));
    ASSERT_EQ(consumed, fed);
    std::vector<uint8_t> outA;
    ASSERT_EQ(stepUntilParked(a, outA), StepResult::NeedInput);

    // Leave a backlog the worker never saw: some queued elements plus a
    // decoded-but-unqueued tail of one element.
    const size_t queued = 16 * w;
    ASSERT_TRUE(a.offerInput(input.data() + fed, queued, consumed));
    ASSERT_EQ(consumed, queued);
    const uint8_t* tail = input.data() + fed + queued;

    std::vector<uint8_t> ck;
    std::string err;
    ASSERT_TRUE(a.checkpoint(ck, tail, w, &err)) << err;

    // Header sanity: version, progress counters, backlog element count.
    ASSERT_GE(ck.size(), 28u);
    EXPECT_EQ(readU32(ck, 0), 1u);
    const uint64_t ckConsumed = readU64(ck, 4);
    const uint64_t ckBacklog = readU64(ck, 20);
    EXPECT_EQ(ckConsumed, fed / w);
    EXPECT_EQ(ckBacklog, queued / w + 1);

    // Resume in a brand-new session: adopt, feed the rest, finish.
    Session b(2, /*fd=*/-1, factory(2), cfg, FaultSpec{});
    b.adoptCheckpoint(ck);
    std::vector<uint8_t> outB;
    // The bounded input queue backpressures a bulk feed: interleave
    // offering and stepping, exactly like the server's I/O loop does.
    size_t off = (static_cast<size_t>(ckConsumed + ckBacklog)) * w;
    ASSERT_LE(off, input.size());
    while (off < input.size()) {
        size_t did = 0;
        b.offerInput(input.data() + off, input.size() - off, did);
        off += did;
        if (off < input.size())
            ASSERT_NE(stepUntilParked(b, outB), StepResult::Failed);
    }
    b.endInput();
    ASSERT_EQ(stepUntilParked(b, outB), StepResult::Finished);
    EXPECT_TRUE(b.completion().finished);
    EXPECT_FALSE(b.completion().failed) << b.completion().failMessage;

    std::vector<uint8_t> got = outA;
    got.insert(got.end(), outB.begin(), outB.end());
    EXPECT_EQ(got, expect);
}

TEST(Serve, DrainEmitsCheckpointAndSecondServerResumes)
{
    // The full zero-loss migration story over TCP: server A is drained
    // mid-stream (SIGTERM path), hands the client a Checkpoint frame;
    // the client replays it as the FIRST frame to server B and streams
    // the remainder.  Concatenated output must be byte-identical to an
    // uninterrupted solo run.
    auto factory = scramblerFactory();
    auto input = randomBits(4096 * 8, 51);
    auto expect = soloRun(factory, input);

    auto& reg = metrics::Registry::global();
    uint64_t drained0 = reg.counter("server.drain.completed").value();
    uint64_t saved0 = reg.counter("server.migrations.saved").value();
    uint64_t restored0 = reg.counter("server.migrations.restored").value();

    ServerConfig cfg;
    cfg.workers = 2;
    Server serverA(factory, cfg);
    serverA.start();

    TestClient c1;
    ASSERT_TRUE(c1.connect(serverA.port()));
    const size_t w = c1.hello.inWidth;
    ASSERT_GT(w, 0u);
    const size_t half = (input.size() / 2 / w) * w;
    ASSERT_TRUE(c1.sendAllData(
        std::vector<uint8_t>(input.begin(),
                             input.begin() + static_cast<long>(half))));

    // Let the worker make some progress, then drain server A while the
    // stream is mid-flight (no End was sent).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::thread drainer([&] { serverA.drainStop(); });

    std::vector<uint8_t> out1, ck;
    Frame f;
    while (c1.readFrame(f)) {
        if (f.type == FrameType::Data)
            out1.insert(out1.end(), f.payload.begin(), f.payload.end());
        else if (f.type == FrameType::Checkpoint) {
            ck = f.payload;
            break;
        } else
            FAIL() << "unexpected frame type during drain";
    }
    drainer.join();
    ASSERT_FALSE(ck.empty()) << "drain never produced a Checkpoint frame";
    EXPECT_EQ(reg.counter("server.drain.completed").value(), drained0 + 1);
    EXPECT_EQ(reg.counter("server.migrations.saved").value(), saved0 + 1);

    // The header tells the migrating client where to resume the input.
    ASSERT_GE(ck.size(), 28u);
    ASSERT_EQ(readU32(ck, 0), 1u);
    const size_t resumeOff =
        static_cast<size_t>(readU64(ck, 4) + readU64(ck, 20)) * w;
    ASSERT_LE(resumeOff, half);

    Server serverB(factory, cfg);
    serverB.start();
    TestClient c2;
    ASSERT_TRUE(c2.connect(serverB.port()));
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::Checkpoint, ck.data(), ck.size());
    ASSERT_TRUE(sendAll(c2.sock.get(), wire.data(), wire.size()));
    ASSERT_TRUE(c2.sendAllData(
        std::vector<uint8_t>(input.begin() + static_cast<long>(resumeOff),
                             input.end())));
    ASSERT_TRUE(c2.sendEnd());
    c2.drain();
    EXPECT_TRUE(c2.sawEnd);
    EXPECT_FALSE(c2.sawError) << c2.errorMsg;
    EXPECT_EQ(reg.counter("server.migrations.restored").value(),
              restored0 + 1);
    serverB.stop();

    std::vector<uint8_t> got = out1;
    got.insert(got.end(), c2.out.begin(), c2.out.end());
    EXPECT_EQ(got, expect) << "migrated stream diverged from solo run";
}

TEST(Serve, DrainLetsFinishedSessionsCompleteNaturally)
{
    // A session whose End is already in: drainStop must let it finish
    // and deliver the normal End-of-stream epilogue — not checkpoint it.
    auto factory = scramblerFactory();
    auto input = randomBits(1024 * 8, 62);
    auto expect = soloRun(factory, input);

    ServerConfig cfg;
    cfg.workers = 1;
    Server server(factory, cfg);
    server.start();

    auto& reg = metrics::Registry::global();
    uint64_t aborted0 = reg.counter("server.drain.aborted").value();

    TestClient c;
    ASSERT_TRUE(c.connect(server.port()));
    ASSERT_TRUE(c.sendAllData(input));
    ASSERT_TRUE(c.sendEnd());
    // Give the I/O loop time to read the End frame: a session whose end
    // of input is already in is "finishing naturally" and must be left
    // alone by the drain, not checkpointed.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::thread drainer([&] { server.drainStop(); });
    c.drain();
    drainer.join();
    EXPECT_TRUE(c.sawEnd);
    EXPECT_FALSE(c.sawError) << c.errorMsg;
    EXPECT_EQ(c.out, expect);
    EXPECT_EQ(reg.counter("server.drain.aborted").value(), aborted0);
}

TEST(Serve, CheckpointAfterSessionStartIsAProtocolError)
{
    // A Checkpoint restore is only valid as the client's FIRST frame;
    // after Data has been fed the restore would corrupt the stream.
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 1;
    Server server(factory, cfg);
    server.start();

    TestClient c;
    ASSERT_TRUE(c.connect(server.port()));
    auto some = randomBits(8 * c.hello.inWidth, 71);
    ASSERT_TRUE(c.sendData(some.data(), some.size()));
    std::vector<uint8_t> bogus(64, 0xab), wire;
    encodeFrame(wire, FrameType::Checkpoint, bogus.data(), bogus.size());
    ASSERT_TRUE(sendAll(c.sock.get(), wire.data(), wire.size()));
    c.drain();
    EXPECT_TRUE(c.sawError);
    EXPECT_NE(c.errorMsg.find("Checkpoint"), std::string::npos)
        << c.errorMsg;
    server.stop();
}

} // namespace
} // namespace serve
} // namespace ziria
