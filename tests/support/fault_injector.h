/**
 * @file
 * Shared helpers for the fault-injection tests: DSL-visible native
 * blocks that pass int32 elements through untouched until a chosen
 * tick, then misbehave (throw / stall), plus byte-vector conversions.
 *
 * The blocks let a test place a deterministic fault *inside* a
 * pipeline stage — complementing FaultySource/FaultySink from
 * zexec/faultpoint.h, which fault the endpoints.
 */
#ifndef ZIRIA_TESTS_SUPPORT_FAULT_INJECTOR_H
#define ZIRIA_TESTS_SUPPORT_FAULT_INJECTOR_H

#include <cstdint>
#include <vector>

#include "zast/builder.h"

namespace ziria {
namespace testsupport {

/** int32 -> int32 pass-through that throws FatalError at element K. */
CompPtr throwAtBlock(uint64_t tick);

/**
 * int32 -> int32 pass-through that sleeps @p stall_ms once, at element
 * K.  The sleep is NOT cancellable (plain this_thread::sleep_for) —
 * exactly the "stage stuck in a kernel" case the watchdog exists for.
 */
CompPtr stallAtBlock(uint64_t tick, uint64_t stall_ms);

/** Reinterpret an int32 vector as its little-endian byte stream. */
std::vector<uint8_t> intBytes(const std::vector<int32_t>& xs);

/** Inverse of intBytes (trailing partial element ignored). */
std::vector<int32_t> bytesToInts(const std::vector<uint8_t>& bytes);

} // namespace testsupport
} // namespace ziria

#endif // ZIRIA_TESTS_SUPPORT_FAULT_INJECTOR_H
