#include "support/shapes.h"

#include "support/fault_injector.h"

namespace ziria {
namespace testsupport {

using namespace zb;

CompPtr
incBlock(int32_t delta)
{
    VarRef x = freshVar("x", Type::int32());
    return repeatc(seqc({bindc(x, take(Type::int32())),
                         just(emit(var(x) + delta))}));
}

const std::vector<Shape>&
resetShapes()
{
    static const std::vector<Shape> shapes = [] {
        std::vector<Shape> s;
        s.push_back({"repeat-bind-emit", [] { return incBlock(1); }});
        s.push_back({"map", [] {
            VarRef x = freshVar("x", Type::int32());
            FunRef f = fun("inc3", {x}, {}, var(x) + 3);
            return mapc(f);
        }});
        s.push_back({"pipe-maps", [] {
            VarRef x = freshVar("x", Type::int32());
            VarRef y = freshVar("y", Type::int32());
            FunRef f = fun("addA", {x}, {}, var(x) + 5);
            FunRef g = fun("addB", {y}, {}, var(y) * 2);
            return pipe(mapc(f), mapc(g));
        }});
        s.push_back({"pipe-repeats", [] {
            return pipe(incBlock(1), incBlock(10));
        }});
        s.push_back({"filter", [] {
            VarRef x = freshVar("x", Type::int32());
            FunRef p = fun("odd", {x}, {}, (var(x) % 2) != 0);
            return filterc(p);
        }});
        s.push_back({"seq-two-takes", [] {
            VarRef a = freshVar("a", Type::int32());
            VarRef b = freshVar("b", Type::int32());
            return repeatc(seqc({bindc(a, take(Type::int32())),
                                 bindc(b, take(Type::int32())),
                                 just(emit(var(a) + var(b)))}));
        }});
        s.push_back({"times", [] {
            VarRef x = freshVar("x", Type::int32());
            return repeatc(timesc(
                cInt(4), seqc({bindc(x, take(Type::int32())),
                               just(emit(var(x) * 2))})));
        }});
        s.push_back({"while-letvar", [] {
            // A computer: consumes 8 elements, then halts.
            VarRef i = freshVar("i", Type::int32());
            VarRef x = freshVar("x", Type::int32());
            return letvar(
                i, cInt(0),
                whilec(var(i) < 8,
                       seqc({just(doS({assign(var(i), var(i) + 1)})),
                             bindc(x, take(Type::int32())),
                             just(emit(var(x) + 100))})));
        }});
        s.push_back({"if", [] {
            return ifc(cInt(1) == 1, incBlock(5), incBlock(7));
        }});
        s.push_back({"emits", [] {
            VarRef x = freshVar("x", Type::int32());
            return repeatc(seqc(
                {bindc(x, take(Type::int32())),
                 just(emits(arrayLit({var(x), var(x) + 1})))}));
        }});
        s.push_back({"letvar-accumulator", [] {
            // Running sum: stale accumulator state is directly visible
            // in the output, so a reset()/restore() that mishandles the
            // letvar cell fails.
            VarRef acc = freshVar("acc", Type::int32());
            VarRef x = freshVar("x", Type::int32());
            return letvar(
                acc, cInt(0),
                repeatc(seqc(
                    {bindc(x, take(Type::int32())),
                     just(doS({assign(var(acc), var(acc) + var(x))})),
                     just(emit(var(acc)))})));
        }});
        s.push_back({"native", [] {
            // Native pass-through (fault tick unreachably high):
            // exercises the NativeNode kernel-recreation path.
            return throwAtBlock(uint64_t(1) << 62);
        }});
        return s;
    }();
    return shapes;
}

} // namespace testsupport
} // namespace ziria
