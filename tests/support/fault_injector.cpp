#include "support/fault_injector.h"

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>

#include "support/panic.h"
#include "zast/comp.h"

namespace ziria {
namespace testsupport {

using namespace zb;

namespace {

class ThrowAtKernel : public NativeKernel
{
  public:
    explicit ThrowAtKernel(uint64_t tick) : tick_(tick) {}

    void reset() override { n_ = 0; }

    bool
    consume(const uint8_t* in, Emitter& em) override
    {
        if (n_ == tick_)
            fatalf("fault_injector: induced stage exception at tick ",
                   n_);
        ++n_;
        em.emit(in);
        return false;
    }

  private:
    uint64_t tick_;
    uint64_t n_ = 0;
};

class StallAtKernel : public NativeKernel
{
  public:
    StallAtKernel(uint64_t tick, uint64_t stall_ms)
        : tick_(tick), stallMs_(stall_ms)
    {
    }

    void reset() override { n_ = 0; }

    bool
    consume(const uint8_t* in, Emitter& em) override
    {
        if (n_ == tick_)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stallMs_));
        ++n_;
        em.emit(in);
        return false;
    }

  private:
    uint64_t tick_;
    uint64_t stallMs_;
    uint64_t n_ = 0;
};

std::shared_ptr<const NativeBlockSpec>
passThroughSpec(const char* name,
                std::function<std::unique_ptr<NativeKernel>()> make)
{
    auto spec = std::make_shared<NativeBlockSpec>();
    spec->name = name;
    spec->ctype = CompType{false, nullptr, Type::int32(), Type::int32()};
    spec->make = [make = std::move(make)](const std::vector<Value>&) {
        auto k = make();
        k->reset();
        return k;
    };
    return spec;
}

} // namespace

CompPtr
throwAtBlock(uint64_t tick)
{
    return native(passThroughSpec("ThrowAt", [tick] {
        return std::make_unique<ThrowAtKernel>(tick);
    }));
}

CompPtr
stallAtBlock(uint64_t tick, uint64_t stall_ms)
{
    return native(passThroughSpec("StallAt", [tick, stall_ms] {
        return std::make_unique<StallAtKernel>(tick, stall_ms);
    }));
}

std::vector<uint8_t>
intBytes(const std::vector<int32_t>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

std::vector<int32_t>
bytesToInts(const std::vector<uint8_t>& bytes)
{
    std::vector<int32_t> out(bytes.size() / 4);
    std::memcpy(out.data(), bytes.data(), out.size() * 4);
    return out;
}

} // namespace testsupport
} // namespace ziria
