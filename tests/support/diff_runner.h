/**
 * @file
 * N-way differential runner: compile one program under a matrix of
 * compiler configurations, run them all on the same input, and demand
 * bit-exact agreement on the stream prefix every configuration
 * produced.  On disagreement the report names the *minimal divergent
 * pair* — the two configurations that disagree while differing in the
 * fewest dimensions (opt tier, vectorization, threading) — which is
 * usually enough to tell which compiler stage broke.
 */
#ifndef ZIRIA_TESTS_SUPPORT_DIFF_RUNNER_H
#define ZIRIA_TESTS_SUPPORT_DIFF_RUNNER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "zast/comp.h"
#include "zir/compiler.h"

namespace ziria {
namespace difftest {

/** One cell of the configuration matrix. */
struct DiffConfig
{
    std::string name;      ///< e.g. "O2+vec", "O0/mt", "O3+vec/fz"
    int optTier = 0;       ///< 0 = none, 1 = fold, 2 = +map/fuse, 3 = +LUT
    bool vectorize = false;
    bool threaded = false;
    bool fused = false;    ///< Backend::Fused instead of the VM
    bool native = false;   ///< Backend::Native (wins over `fused`)

    /** Lower the tier/flags into a full CompilerOptions. */
    CompilerOptions options() const;

    /** Number of dimensions in which two configs differ (0..5). */
    static int distance(const DiffConfig& a, const DiffConfig& b);
};

/**
 * The default 10-config matrix: O0-O3 with vectorization off, O0-O3
 * with vectorization on, plus a threaded pipeline at both extremes
 * (O0 plain and O3 vectorized).
 */
std::vector<DiffConfig> defaultMatrix();

/** The full 16-config cross product {O0..O3} x {vec} x {mt}. */
std::vector<DiffConfig> fullMatrix();

/**
 * The fused-backend matrix: the cross product {O0..O3} x {vec} x
 * {vm,fused} (16 configs, config 0 = unoptimized VM baseline), plus two
 * threaded fused cells (O0 and O3+vec) that exercise the `|>>>|`
 * fallback path where fused regions hang below VM combinators.
 */
std::vector<DiffConfig> fusedMatrix();

/**
 * The three-backend matrix: {O0..O3} x {vec} x {vm,fused,native}
 * (24 configs, config 0 = unoptimized VM baseline).  Native cells
 * compile through the shared-object cache (honours $ZIRIA_CGEN_CACHE),
 * falling back to the fused interpreter when no compiler is available —
 * callers that must exercise real machine code should gate on
 * zcgen::compilerAvailable() first.
 */
std::vector<DiffConfig> nativeMatrix();

/** Outcome of one differential run. */
struct DiffOutcome
{
    bool agree = true;
    /** Failure narrative: divergent pair, offset, context. */
    std::string report;
    /** Baseline (configs[0]) output size in bytes. */
    size_t baselineBytes = 0;
    int configsRun = 0;
};

/** Builds a fresh AST per compile (generators are deterministic). */
using ProgramFactory = std::function<CompPtr()>;

/**
 * Compile @p make() under every configuration, run on @p input, and
 * compare.  Configuration 0 is the baseline.  Outputs may lose a
 * bounded tail to vectorization granularity, so agreement means: every
 * pair of outputs is identical on their common prefix, and no output
 * is shorter than roughly half the baseline (beyond @p slackBytes).
 */
DiffOutcome runDifferential(const ProgramFactory& make,
                            const std::vector<uint8_t>& input,
                            const std::vector<DiffConfig>& configs,
                            const std::string& label,
                            size_t slackBytes = 1024);

} // namespace difftest
} // namespace ziria

#endif // ZIRIA_TESTS_SUPPORT_DIFF_RUNNER_H
