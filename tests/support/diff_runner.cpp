#include "support/diff_runner.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/panic.h"

namespace ziria {
namespace difftest {

CompilerOptions
DiffConfig::options() const
{
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    switch (optTier) {
    case 0:
        break;
    case 1:
        opt.fold = true;
        break;
    case 2:
        opt.fold = true;
        opt.autoMap = true;
        opt.fuse = true;
        break;
    default:
        opt = CompilerOptions::forLevel(OptLevel::All);
        break;
    }
    opt.vectorize = vectorize;
    opt.backend = native ? Backend::Native
                         : (fused ? Backend::Fused : Backend::Vm);
    return opt;
}

int
DiffConfig::distance(const DiffConfig& a, const DiffConfig& b)
{
    return (a.optTier != b.optTier) + (a.vectorize != b.vectorize) +
           (a.threaded != b.threaded) + (a.fused != b.fused) +
           (a.native != b.native);
}

std::vector<DiffConfig>
defaultMatrix()
{
    std::vector<DiffConfig> m;
    for (bool vec : {false, true})
        for (int tier = 0; tier <= 3; ++tier) {
            DiffConfig c;
            c.optTier = tier;
            c.vectorize = vec;
            c.name = "O" + std::to_string(tier) + (vec ? "+vec" : "");
            m.push_back(c);
        }
    DiffConfig mt0;
    mt0.name = "O0/mt";
    mt0.threaded = true;
    m.push_back(mt0);
    DiffConfig mt3;
    mt3.name = "O3+vec/mt";
    mt3.optTier = 3;
    mt3.vectorize = true;
    mt3.threaded = true;
    m.push_back(mt3);
    return m;
}

std::vector<DiffConfig>
fullMatrix()
{
    std::vector<DiffConfig> m;
    for (bool mt : {false, true})
        for (bool vec : {false, true})
            for (int tier = 0; tier <= 3; ++tier) {
                DiffConfig c;
                c.optTier = tier;
                c.vectorize = vec;
                c.threaded = mt;
                c.name = "O" + std::to_string(tier) +
                         (vec ? "+vec" : "") + (mt ? "/mt" : "");
                m.push_back(c);
            }
    return m;
}

std::vector<DiffConfig>
fusedMatrix()
{
    std::vector<DiffConfig> m;
    for (bool fz : {false, true})
        for (bool vec : {false, true})
            for (int tier = 0; tier <= 3; ++tier) {
                DiffConfig c;
                c.optTier = tier;
                c.vectorize = vec;
                c.fused = fz;
                c.name = "O" + std::to_string(tier) +
                         (vec ? "+vec" : "") + (fz ? "/fz" : "");
                m.push_back(c);
            }
    // Threaded fused cells: each |>>>| partition becomes its own fused
    // region below the threaded driver (the fallback path).
    DiffConfig mt0;
    mt0.name = "O0/mt/fz";
    mt0.threaded = true;
    mt0.fused = true;
    m.push_back(mt0);
    DiffConfig mt3;
    mt3.name = "O3+vec/mt/fz";
    mt3.optTier = 3;
    mt3.vectorize = true;
    mt3.threaded = true;
    mt3.fused = true;
    m.push_back(mt3);
    return m;
}

std::vector<DiffConfig>
nativeMatrix()
{
    std::vector<DiffConfig> m;
    for (int be = 0; be <= 2; ++be)  // 0 = vm, 1 = fused, 2 = native
        for (bool vec : {false, true})
            for (int tier = 0; tier <= 3; ++tier) {
                DiffConfig c;
                c.optTier = tier;
                c.vectorize = vec;
                c.fused = be == 1;
                c.native = be == 2;
                c.name = "O" + std::to_string(tier) +
                         (vec ? "+vec" : "") +
                         (be == 1 ? "/fz" : (be == 2 ? "/ng" : ""));
                m.push_back(c);
            }
    return m;
}

namespace {

/** One configuration's run: output bytes or a thrown-error note. */
struct CellResult
{
    bool ok = false;
    std::vector<uint8_t> out;
    std::string error;
};

CellResult
runOne(const ProgramFactory& make, const std::vector<uint8_t>& input,
       const DiffConfig& cfg)
{
    CellResult r;
    try {
        CompPtr prog = make();
        CompilerOptions opt = cfg.options();
        if (cfg.threaded) {
            auto p = compileThreadedPipeline(prog, opt);
            // Pad to a whole number of (possibly vectorized) input
            // elements so no config starves on a ragged tail.
            std::vector<uint8_t> padded = input;
            size_t w = std::max<size_t>(p->inWidth(), 1);
            if (padded.size() % w)
                padded.resize((padded.size() / w + 1) * w, 0);
            MemSource src(padded, w);
            VecSink sink(std::max<size_t>(p->outWidth(), 1));
            p->run(src, sink);
            r.out = sink.data();
        } else {
            auto p = compilePipeline(prog, opt);
            std::vector<uint8_t> padded = input;
            size_t w = std::max<size_t>(p->inWidth(), 1);
            if (padded.size() % w)
                padded.resize((padded.size() / w + 1) * w, 0);
            r.out = p->runBytes(padded);
        }
        r.ok = true;
    } catch (const std::exception& e) {
        r.error = e.what();
    }
    return r;
}

std::string
hexContext(const std::vector<uint8_t>& buf, size_t at)
{
    std::ostringstream os;
    size_t lo = at >= 8 ? at - 8 : 0;
    size_t hi = std::min(buf.size(), at + 8);
    for (size_t i = lo; i < hi; ++i) {
        char b[8];
        std::snprintf(b, sizeof b, i == at ? "[%02x]" : " %02x ", buf[i]);
        os << b;
    }
    return os.str();
}

/** First index where the common prefixes differ, or SIZE_MAX. */
size_t
firstMismatch(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b)
{
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return i;
    return SIZE_MAX;
}

} // namespace

DiffOutcome
runDifferential(const ProgramFactory& make,
                const std::vector<uint8_t>& input,
                const std::vector<DiffConfig>& configs,
                const std::string& label, size_t slackBytes)
{
    DiffOutcome out;
    if (configs.empty())
        fatalf("runDifferential: empty configuration matrix");

    std::vector<CellResult> cells;
    cells.reserve(configs.size());
    for (const DiffConfig& cfg : configs) {
        cells.push_back(runOne(make, input, cfg));
        ++out.configsRun;
    }

    std::ostringstream rep;
    rep << "program " << label << ":\n";

    // Any config that crashed is an immediate failure.
    for (size_t i = 0; i < cells.size(); ++i)
        if (!cells[i].ok) {
            out.agree = false;
            rep << "  config " << configs[i].name
                << " threw: " << cells[i].error << "\n";
        }

    out.baselineBytes = cells[0].ok ? cells[0].out.size() : 0;

    // Length sanity: vectorization may drop a bounded tail, but an
    // output shorter than about half the baseline means a config
    // silently starved.
    if (cells[0].ok)
        for (size_t i = 1; i < cells.size(); ++i) {
            if (!cells[i].ok)
                continue;
            size_t got = cells[i].out.size();
            if (2 * got + 2 * slackBytes < out.baselineBytes) {
                out.agree = false;
                rep << "  config " << configs[i].name << " produced "
                    << got << " bytes vs baseline "
                    << configs[0].name << "'s " << out.baselineBytes
                    << " (beyond tail slack)\n";
            }
        }

    // Content: every pair must agree on its common prefix.  Collect all
    // divergent pairs, then report the one with the fewest differing
    // config dimensions — that pair localizes the faulty pass.
    size_t bestI = SIZE_MAX, bestJ = SIZE_MAX, bestAt = 0;
    int bestDist = 99;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (!cells[i].ok)
            continue;
        for (size_t j = i + 1; j < cells.size(); ++j) {
            if (!cells[j].ok)
                continue;
            size_t at = firstMismatch(cells[i].out, cells[j].out);
            if (at == SIZE_MAX)
                continue;
            out.agree = false;
            int d = DiffConfig::distance(configs[i], configs[j]);
            if (d < bestDist) {
                bestDist = d;
                bestI = i;
                bestJ = j;
                bestAt = at;
            }
        }
    }
    if (bestI != SIZE_MAX) {
        rep << "  minimal divergent pair: " << configs[bestI].name
            << " vs " << configs[bestJ].name << " (distance " << bestDist
            << ") at byte " << bestAt << "\n"
            << "    " << configs[bestI].name << ": "
            << hexContext(cells[bestI].out, bestAt) << "\n"
            << "    " << configs[bestJ].name << ": "
            << hexContext(cells[bestJ].out, bestAt) << "\n";
    }

    if (!out.agree)
        out.report = rep.str();
    return out;
}

} // namespace difftest
} // namespace ziria
