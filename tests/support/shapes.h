/**
 * @file
 * The combinator-shape catalog shared by the reset-totality and
 * snapshot round-trip suites: one deliberately stateful program per
 * combinator family, so a reset()/restore() that misses a child (or a
 * serializer that skips a field) produces observably different output.
 */
#ifndef ZIRIA_TESTS_SUPPORT_SHAPES_H
#define ZIRIA_TESTS_SUPPORT_SHAPES_H

#include <cstdint>
#include <functional>
#include <vector>

#include "zast/builder.h"

namespace ziria {
namespace testsupport {

/** repeat { x <- take; emit (x + delta) } */
CompPtr incBlock(int32_t delta);

struct Shape
{
    const char* name;
    std::function<CompPtr()> make;
};

/** One shape per combinator family (12 entries; see shapes.cc). */
const std::vector<Shape>& resetShapes();

} // namespace testsupport
} // namespace ziria

#endif // ZIRIA_TESTS_SUPPORT_SHAPES_H
