/**
 * @file
 * Recovery tests (ctest label `recovery`): the reset() totality
 * contract across every node/combinator shape, restart backoff math,
 * fault fire-count semantics, and self-healing single-threaded runs —
 * up to a WiFi receiver that survives a mid-capture source throw and
 * still decodes the following packet.
 *
 * The reset() contract under test (zexec/node.h): `reset(f)` must be
 * indistinguishable from fresh construction + `start(f)`, reaching
 * every child recursively — inactive Seq items, untaken If branches,
 * un-started While bodies, partially accumulated letvar state.
 */
#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/channel.h"
#include "sora/sora.h"
#include "support/fault_injector.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/shapes.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zexec/faultpoint.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace zb;
using testsupport::incBlock;
using testsupport::intBytes;
using testsupport::resetShapes;
using testsupport::Shape;
using testsupport::throwAtBlock;

// ------------------------------------------------------------- helpers

/**
 * Drive a pipeline by hand against @p src, collecting the raw output
 * bytes.  When @p init is false the node tree is NOT start()ed first:
 * this is how the reset-totality tests prove reset() alone restored
 * the tree (Pipeline::run would mask a broken reset by re-starting).
 */
std::vector<uint8_t>
drive(Pipeline& p, MemSource& src, bool init)
{
    ExecNode& root = p.root();
    Frame& f = p.frame();
    if (init)
        root.start(f);
    std::vector<uint8_t> out;
    for (;;) {
        Status s = root.advance(f);
        if (s == Status::Yield) {
            out.insert(out.end(), root.out(), root.out() + p.outWidth());
        } else if (s == Status::NeedInput) {
            const uint8_t* q = src.next();
            if (!q)
                break;
            root.supply(f, q);
        } else {
            break;  // Done
        }
    }
    return out;
}

/** start() the tree and consume up to @p elems input elements. */
void
consumePartial(Pipeline& p, MemSource& src, size_t elems)
{
    ExecNode& root = p.root();
    Frame& f = p.frame();
    root.start(f);
    size_t used = 0;
    while (used < elems) {
        Status s = root.advance(f);
        if (s == Status::NeedInput) {
            const uint8_t* q = src.next();
            if (!q)
                break;
            root.supply(f, q);
            ++used;
        } else if (s == Status::Done) {
            break;
        }
        // Yield: discard the element and keep going.
    }
}

// ------------------------------------------------- reset() totality
//
// The 12 combinator shapes live in tests/support/shapes.{h,cc}; the
// snapshot round-trip suite (test_checkpoint.cpp) iterates the same
// catalog, so a new combinator family added there is covered by both
// contracts at once.

TEST(ResetTotality, ResetAfterPartialRunMatchesFreshRun)
{
    for (const Shape& sh : resetShapes()) {
        for (OptLevel lvl : {OptLevel::None, OptLevel::All}) {
            SCOPED_TRACE(std::string(sh.name) + " at OptLevel " +
                         (lvl == OptLevel::None ? "None" : "All"));
            auto p = compilePipeline(sh.make(),
                                     CompilerOptions::forLevel(lvl));

            // Size the input in units of the COMPILED element width:
            // vectorization can widen int32 -> arr[N] int32, and a
            // buffer smaller than one element yields nothing at all.
            ASSERT_EQ(p->inWidth() % 4, 0u);
            std::vector<int32_t> in(24 * (p->inWidth() / 4));
            for (size_t i = 0; i < in.size(); ++i)
                in[i] = static_cast<int32_t>(i);
            auto bytes = intBytes(in);

            MemSource fresh(bytes, p->inWidth());
            auto expect = drive(*p, fresh, /*init=*/true);
            ASSERT_FALSE(expect.empty());

            // Dirty the tree: consume a few elements mid-structure,
            // then reset and drive again WITHOUT start().
            MemSource partial(bytes, p->inWidth());
            consumePartial(*p, partial, 5);
            p->root().reset(p->frame());

            MemSource again(bytes, p->inWidth());
            auto got = drive(*p, again, /*init=*/false);
            EXPECT_EQ(got, expect)
                << "reset() did not restore the fresh-start state";
        }
    }
}

// --------------------------------------------------- policy & faults

TEST(Recovery, BackoffMathIsExponentialAndCapped)
{
    RestartPolicy p;
    p.backoffInitialMs = 10;
    p.backoffMultiplier = 2.0;
    p.backoffCapMs = 1000;
    EXPECT_DOUBLE_EQ(p.backoffMsFor(1), 10);
    EXPECT_DOUBLE_EQ(p.backoffMsFor(2), 20);
    EXPECT_DOUBLE_EQ(p.backoffMsFor(3), 40);
    EXPECT_DOUBLE_EQ(p.backoffMsFor(7), 640);
    EXPECT_DOUBLE_EQ(p.backoffMsFor(8), 1000);   // 1280 hits the cap
    EXPECT_DOUBLE_EQ(p.backoffMsFor(30), 1000);  // stays capped

    RestartPolicy flat;
    flat.backoffInitialMs = 25;
    flat.backoffMultiplier = 1.0;
    EXPECT_DOUBLE_EQ(flat.backoffMsFor(1), 25);
    EXPECT_DOUBLE_EQ(flat.backoffMsFor(9), 25);

    RestartPolicy low;
    low.backoffInitialMs = 500;
    low.backoffCapMs = 100;  // cap below initial: cap wins
    EXPECT_DOUBLE_EQ(low.backoffMsFor(1), 100);

    RestartPolicy off;
    EXPECT_FALSE(off.enabled());  // Never is the default
    off.mode = RestartMode::OnFailure;
    EXPECT_FALSE(off.enabled());  // a zero budget disables it too
    off.maxRestarts = 1;
    EXPECT_TRUE(off.enabled());
}

TEST(FaultCount, ParseAndShowRoundTrip)
{
    FaultSpec once = FaultSpec::parse("throw@5");
    EXPECT_EQ(once.count, 1u);  // transient by default
    EXPECT_EQ(once.show(), "throw@5");

    FaultSpec twice = FaultSpec::parse("throw@5:2");
    EXPECT_EQ(twice.tick, 5u);
    EXPECT_EQ(twice.count, 2u);
    EXPECT_EQ(twice.show(), "throw@5:2");

    FaultSpec forever = FaultSpec::parse("stall@9:100:0");
    EXPECT_EQ(forever.stallMs, 100u);
    EXPECT_EQ(forever.count, 0u);
    EXPECT_EQ(forever.show(), "stall@9:100:0");

    EXPECT_THROW(FaultSpec::parse("throw@1:2:3"), FatalError);
    EXPECT_THROW(FaultSpec::parse("stall@1:2:3:4"), FatalError);
}

TEST(FaultCount, TransientThrowStaysFiredAcrossRearm)
{
    // The fired count — not the tick clock — gates re-firing: after a
    // rearm() the already-fired fault must NOT fire again, or throw@K
    // would defeat every restart budget.
    std::vector<int32_t> in{0, 1, 2, 3, 4, 5};
    auto bytes = intBytes(in);
    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("throw@2"));

    EXPECT_NE(src.next(), nullptr);
    EXPECT_NE(src.next(), nullptr);
    EXPECT_THROW(src.next(), InjectedFault);
    EXPECT_EQ(src.fired(), 1u);

    src.rearm();
    int delivered = 0;
    while (src.next())
        ++delivered;
    EXPECT_EQ(delivered, 4);  // the throw itself consumed no element
    EXPECT_EQ(src.fired(), 1u);
}

TEST(FaultCount, PermanentThrowRefiresAfterRearm)
{
    std::vector<int32_t> in{0, 1, 2, 3};
    auto bytes = intBytes(in);
    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("throw@1:0"));

    EXPECT_NE(src.next(), nullptr);
    EXPECT_THROW(src.next(), InjectedFault);
    src.rearm();
    EXPECT_THROW(src.next(), InjectedFault);
    EXPECT_EQ(src.fired(), 2u);
}

TEST(FaultCount, CountLimitsFiringsWithinOneRun)
{
    std::vector<int32_t> in{0, 1, 2, 3};
    auto bytes = intBytes(in);
    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("throw@1:2"));

    EXPECT_NE(src.next(), nullptr);
    EXPECT_THROW(src.next(), InjectedFault);
    EXPECT_THROW(src.next(), InjectedFault);
    EXPECT_EQ(src.fired(), 2u);
    int delivered = 0;
    while (src.next())
        ++delivered;
    EXPECT_EQ(delivered, 3);
}

// --------------------------------------- single-threaded self-healing

TEST(Recovery, SingleThreadedRestartLosesNothing)
{
    // At OptLevel::None each element is fully processed before the
    // next source read, so a restarted single-threaded run produces
    // EXACTLY the clean run's output — nothing is in flight to lose.
    std::vector<int32_t> in(50);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);

    auto clean = compilePipeline(
        pipe(incBlock(1), incBlock(10)),
        CompilerOptions::forLevel(OptLevel::None));
    auto expect = clean->runBytes(bytes);

    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    auto p = compilePipeline(pipe(incBlock(1), incBlock(10)), opt);

    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("throw@10"));
    VecSink sink(4);

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.attempts").value();

    p->run(src, sink);  // must not throw

    EXPECT_EQ(sink.data(), expect);
    EXPECT_EQ(reg.counter("restart.attempts").value(), attempts0 + 1);
    EXPECT_EQ(src.fired(), 1u);
}

TEST(Recovery, SingleThreadedExhaustionAccountsEveryBackoff)
{
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 2;
    opt.restart.backoffInitialMs = 1;
    opt.restart.backoffMultiplier = 2.0;
    auto p = compilePipeline(incBlock(1), opt);

    std::vector<int32_t> in(16, 3);
    auto bytes = intBytes(in);
    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("throw@5:0"));
    NullSink sink;

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.attempts").value();
    uint64_t exhausted0 = reg.counter("restart.exhausted").value();
    uint64_t backoff0 = reg.counter("restart.backoff_ms_total").value();

    try {
        p->run(src, sink);
        FAIL() << "permanent fault must exhaust the restart budget";
    } catch (const StageFailureError& e) {
        const StageFailure& f = e.failure();
        EXPECT_TRUE(f.restartsExhausted);
        ASSERT_EQ(f.restarts.size(), 2u);
        EXPECT_EQ(f.path, "root");
        EXPECT_EQ(f.cause, FailureCause::Exception);
        EXPECT_DOUBLE_EQ(f.restarts[0].backoffMs, 1);
        EXPECT_DOUBLE_EQ(f.restarts[1].backoffMs, 2);
        EXPECT_DOUBLE_EQ(f.backoffMsTotal, 3);
    }
    EXPECT_EQ(reg.counter("restart.attempts").value(), attempts0 + 2);
    EXPECT_EQ(reg.counter("restart.exhausted").value(), exhausted0 + 1);
    EXPECT_EQ(reg.counter("restart.backoff_ms_total").value(),
              backoff0 + 3);
}

TEST(Recovery, StageInternalFaultIsSupervisedToo)
{
    // The fault lives INSIDE a stage kernel, not at an endpoint.  The
    // kernel is recreated by reset()/start() on every attempt, so its
    // tick counter rewinds and the fault re-fires: a permanent fault
    // from the supervisor's point of view.
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 1;
    opt.restart.backoffInitialMs = 1;
    auto p = compilePipeline(pipe(incBlock(0), throwAtBlock(10)), opt);

    std::vector<int32_t> in(64, 9);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    NullSink sink;

    try {
        p->run(src, sink);
        FAIL() << "stage-internal permanent fault must end the run";
    } catch (const StageFailureError& e) {
        const StageFailure& f = e.failure();
        EXPECT_TRUE(f.restartsExhausted);
        EXPECT_EQ(f.restarts.size(), 1u);
        EXPECT_NE(f.message.find("induced stage exception"),
                  std::string::npos);
    }
}

// ------------------------------------------------------- WiFi RX loop

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

std::vector<uint8_t>
samplesToBytes(const std::vector<Complex16>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

bool
containsBytes(const std::vector<uint8_t>& hay,
              const std::vector<uint8_t>& needle)
{
    return std::search(hay.begin(), hay.end(), needle.begin(),
                       needle.end()) != hay.end();
}

TEST(Recovery, WifiRxDecodesSecondPacketAcrossRestart)
{
    // A transient source throw lands mid-packet-1: the restarted
    // receiver loses (at most) that frame's decoder state, resyncs,
    // and still decodes the clean packet 2 — the crash costs a frame,
    // not the run.
    using namespace wifi;
    auto payload1 = randomBytes(40, 91);
    auto payload2 = randomBytes(40, 92);

    auto tx1 = sora::txFrame(payload1, Rate::R12);
    auto tx2 = sora::txFrame(payload2, Rate::R12);

    std::vector<Complex16> stream;
    stream.insert(stream.end(), 300, Complex16{0, 0});
    stream.insert(stream.end(), tx1.begin(), tx1.end());
    stream.insert(stream.end(), 3000, Complex16{0, 0});
    stream.insert(stream.end(), tx2.begin(), tx2.end());
    stream.insert(stream.end(), 300, Complex16{0, 0});

    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.seed = 93;
    auto rxSamples = channel::applyChannel(stream, cfg);
    auto sampBytes = samplesToBytes(rxSamples);

    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    auto rx = compilePipeline(wifiReceiverLoopComp(), opt);
    ASSERT_EQ(rx->inWidth(), 4u);  // one Complex16 sample per element

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.attempts").value();

    MemSource mem(sampBytes, rx->inWidth());
    // Sample 600 is ~140 samples into packet 1 (after 300 silence +
    // 160 STS + 160 LTS): the throw interrupts its decode mid-frame.
    FaultySource src(mem, FaultSpec::parse("throw@600"));
    VecSink sink(rx->outWidth());

    ASSERT_NO_THROW(rx->run(src, sink));
    auto bytes = bitsToBytes(sink.data());

    EXPECT_TRUE(containsBytes(bytes, payload2))
        << "clean packet after the mid-capture crash was not decoded";
    EXPECT_EQ(reg.counter("restart.attempts").value(), attempts0 + 1);
    EXPECT_EQ(src.fired(), 1u);
}

} // namespace
} // namespace ziria
