/**
 * @file
 * Unit tests: value types, layout, boxed values, bit packing.
 */
#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/rng.h"
#include "ztype/type.h"
#include "ztype/value.h"

namespace ziria {
namespace {

TEST(TypeTest, ScalarWidths)
{
    EXPECT_EQ(Type::unit()->byteWidth(), 0u);
    EXPECT_EQ(Type::bit()->byteWidth(), 1u);
    EXPECT_EQ(Type::boolean()->byteWidth(), 1u);
    EXPECT_EQ(Type::int8()->byteWidth(), 1u);
    EXPECT_EQ(Type::int16()->byteWidth(), 2u);
    EXPECT_EQ(Type::int32()->byteWidth(), 4u);
    EXPECT_EQ(Type::int64()->byteWidth(), 8u);
    EXPECT_EQ(Type::real()->byteWidth(), 8u);
    EXPECT_EQ(Type::complex16()->byteWidth(), 4u);
    EXPECT_EQ(Type::complex32()->byteWidth(), 8u);
}

TEST(TypeTest, ArrayLayout)
{
    TypePtr a = Type::array(Type::complex16(), 64);
    EXPECT_EQ(a->byteWidth(), 256u);
    EXPECT_EQ(a->len(), 64);
    EXPECT_TRUE(typeEq(a->elem(), Type::complex16()));

    TypePtr nested = Type::array(a, 4);
    EXPECT_EQ(nested->byteWidth(), 1024u);
}

TEST(TypeTest, StructLayoutAndFieldAccess)
{
    TypePtr h = Type::strct(
        "HeaderInfo", {{"modulation", Type::int32()},
                       {"coding", Type::int32()},
                       {"len", Type::int32()}});
    EXPECT_EQ(h->byteWidth(), 12u);
    EXPECT_EQ(h->fieldOffset("modulation"), 0);
    EXPECT_EQ(h->fieldOffset("coding"), 4);
    EXPECT_EQ(h->fieldOffset("len"), 8);
    EXPECT_EQ(h->fieldOffset("nope"), -1);
    EXPECT_TRUE(typeEq(h->fieldType("len"), Type::int32()));
}

TEST(TypeTest, Equality)
{
    EXPECT_TRUE(typeEq(Type::array(Type::bit(), 8),
                       Type::array(Type::bit(), 8)));
    EXPECT_FALSE(typeEq(Type::array(Type::bit(), 8),
                        Type::array(Type::bit(), 7)));
    EXPECT_FALSE(typeEq(Type::array(Type::bit(), 8),
                        Type::array(Type::int8(), 8)));
    EXPECT_FALSE(typeEq(Type::int32(), Type::int64()));
}

TEST(TypeTest, BitWidths)
{
    EXPECT_EQ(Type::bit()->bitWidth(), 1);
    EXPECT_EQ(Type::array(Type::bit(), 8)->bitWidth(), 8);
    EXPECT_EQ(Type::int8()->bitWidth(), 8);
    EXPECT_EQ(Type::complex16()->bitWidth(), 32);
    EXPECT_EQ(Type::real()->bitWidth(), -1);
    EXPECT_EQ(Type::array(Type::real(), 2)->bitWidth(), -1);
}

TEST(TypeTest, Show)
{
    EXPECT_EQ(Type::array(Type::bit(), 8)->show(), "arr[8] bit");
    EXPECT_EQ(Type::complex16()->show(), "complex16");
}

TEST(ValueTest, IntRoundTrip)
{
    EXPECT_EQ(Value::i32(-123456).asInt(), -123456);
    EXPECT_EQ(Value::i8(-5).asInt(), -5);
    EXPECT_EQ(Value::i16(32000).asInt(), 32000);
    EXPECT_EQ(Value::i64(1ll << 40).asInt(), 1ll << 40);
    EXPECT_EQ(Value::bit(1).asInt(), 1);
    EXPECT_EQ(Value::boolean(true).asInt(), 1);
}

TEST(ValueTest, TruncationOnConstruction)
{
    EXPECT_EQ(Value::intOf(Type::int8(), 300).asInt(), 300 - 256);
    EXPECT_EQ(Value::intOf(Type::bit(), 3).asInt(), 1);
}

TEST(ValueTest, Complex16)
{
    Value c = Value::c16(-100, 42);
    Complex16 v = c.asC16();
    EXPECT_EQ(v.re, -100);
    EXPECT_EQ(v.im, 42);
}

TEST(ValueTest, ArrayAndIndex)
{
    Value a = Value::arrayOf(
        Type::int16(), {Value::i16(1), Value::i16(-2), Value::i16(3)});
    EXPECT_EQ(a.type()->len(), 3);
    EXPECT_EQ(a.at(1).asInt(), -2);
}

TEST(ValueTest, StructFields)
{
    TypePtr h = Type::strct("P", {{"a", Type::int8()},
                                  {"b", Type::int32()}});
    Value v = Value::zeroOf(h);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_EQ(v.field("b").asInt(), 0);
}

TEST(ValueTest, Show)
{
    EXPECT_EQ(Value::i32(7).show(), "7");
    EXPECT_EQ(Value::bitArray({1, 0, 1}).show(), "{'1, '0, '1}");
}

TEST(BitsTest, PackUnpackRoundTrip)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        size_t n = 1 + rng.below(200);
        std::vector<uint8_t> bits(n);
        for (auto& b : bits)
            b = rng.bit();
        auto packed = packBits(bits);
        EXPECT_EQ(packed.size(), (n + 7) / 8);
        auto unpacked = unpackBits(packed, n);
        EXPECT_EQ(unpacked, bits);
    }
}

TEST(BitsTest, BitWriterReaderMixedWidths)
{
    uint8_t buf[16] = {0};
    BitWriter bw(buf);
    bw.put(0b101, 3);
    bw.put(0xAB, 8);
    bw.put(0x1234, 16);
    bw.put(1, 1);
    EXPECT_EQ(bw.bitsWritten(), 28u);

    BitReader br(buf);
    EXPECT_EQ(br.get(3), 0b101u);
    EXPECT_EQ(br.get(8), 0xABu);
    EXPECT_EQ(br.get(16), 0x1234u);
    EXPECT_EQ(br.get(1), 1u);
}

TEST(BitsTest, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b1101, 4), 0b1011u);
    EXPECT_EQ(reverseBits(1, 1), 1u);
}

TEST(RngTest, Deterministic)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(123);
    double sum = 0, sum2 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

} // namespace
} // namespace ziria
