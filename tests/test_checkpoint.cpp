/**
 * @file
 * Checkpoint tests (ctest labels `recovery`, `checkpoint`): the
 * snapshot/restore round-trip totality contract across every
 * combinator shape × {vm, fused} × O0/O3, the state-io primitives, a
 * WiFi receiver checkpointed mid-packet, and the checkpointed-restart
 * consumer — a supervised restart that resumes from the last
 * frame-boundary snapshot and reproduces the uninterrupted run's
 * output byte for byte (the PR's acceptance property).
 *
 * The round-trip contract under test (zexec/snapshot.h): at a
 * quiescent point (the tree parked on NeedInput), restoreSnapshot(
 * takeSnapshot()) must make the tree's future output bit-identical to
 * the snapshotted instance's — including native kernel state (Viterbi
 * path memory, scrambler LFSRs) and fused register/state/channel
 * spaces.
 */
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/channel.h"
#include "sora/sora.h"
#include "support/fault_injector.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/shapes.h"
#include "support/state_io.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zexec/faultpoint.h"
#include "zexec/nodes.h"
#include "zexec/snapshot.h"
#include "zfuse/fuse.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using testsupport::intBytes;
using testsupport::resetShapes;
using testsupport::Shape;

// ------------------------------------------------------------- helpers

struct DriveResult
{
    std::vector<uint8_t> out;
    size_t consumed = 0;  ///< input elements supplied
    bool done = false;
};

/**
 * Drive @p p by hand from @p bytes, starting @p startElem elements in,
 * supplying at most @p maxElems elements.  Stops parked on NeedInput
 * (the quiescent point snapshots require), at end of input, or at
 * Done.  With @p init false the tree is NOT start()ed — how the
 * round-trip tests prove restoreSnapshot() alone rebuilt the state.
 */
DriveResult
driveUpTo(Pipeline& p, const std::vector<uint8_t>& bytes,
          size_t startElem, size_t maxElems, bool init)
{
    ExecNode& root = p.root();
    Frame& f = p.frame();
    if (init)
        root.start(f);
    const size_t w = p.inWidth();
    size_t pos = startElem * w;
    DriveResult r;
    for (;;) {
        Status s = root.advance(f);
        if (s == Status::Yield) {
            r.out.insert(r.out.end(), root.out(),
                         root.out() + p.outWidth());
        } else if (s == Status::NeedInput) {
            if (r.consumed >= maxElems)
                break;  // parked — quiescent
            if (pos + w > bytes.size())
                break;  // input exhausted
            root.supply(f, bytes.data() + pos);
            pos += w;
            ++r.consumed;
        } else {
            r.done = true;
            break;
        }
    }
    return r;
}

// ---------------------------------------------------- state-io basics

TEST(StateIo, PrimitivesRoundTrip)
{
    StateWriter w;
    w.u8(7);
    w.u32(0xdeadbeef);
    w.u64(0x1122334455667788ull);
    w.i64(-42);
    w.f64(2.5);
    const uint8_t raw[3] = {1, 2, 3};
    w.blob(raw, sizeof raw);
    std::vector<uint8_t> buf = w.take();

    StateReader r(buf.data(), buf.size());
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x1122334455667788ull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 2.5);
    std::vector<uint8_t> blob = r.blob();
    EXPECT_EQ(blob, std::vector<uint8_t>(raw, raw + 3));

    // Reading past the end is a format error, not UB.
    EXPECT_THROW(r.u8(), StateFormatError);
}

TEST(StateIo, RestoreRejectsCorruptContainer)
{
    auto p = compilePipeline(resetShapes()[0].make(),
                             CompilerOptions::forLevel(OptLevel::None));
    p->root().start(p->frame());
    auto snap = takeSnapshot(p->root(), p->frame(), 0, 0);
    ASSERT_GE(snap.size(), 8u);

    auto badMagic = snap;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(restoreSnapshot(p->root(), p->frame(), badMagic),
                 StateFormatError);

    auto truncated = snap;
    truncated.resize(truncated.size() - 1);
    EXPECT_THROW(restoreSnapshot(p->root(), p->frame(), truncated),
                 StateFormatError);
}

// ------------------------------------- hostile node-state rejection
//
// The node stream arrives over the wire on the zserve migration path,
// so restore() must treat it as untrusted input: stream-derived
// indices, cursors and offsets are bounds-checked against the
// receiving tree and rejected with StateFormatError, never walked off
// a buffer.

void
expectRestoreRejects(ExecNode& n, StateWriter& w)
{
    std::vector<uint8_t> stream = w.take();
    Frame f;
    StateReader r(stream.data(), stream.size());
    EXPECT_THROW(n.restore(f, r), StateFormatError);
}

TEST(HostileCheckpoint, SeqIndexOutOfRange)
{
    std::vector<SeqNode::Item> items;
    items.push_back(SeqNode::Item{
        std::make_unique<EmitNode>(
            [](Frame&, uint8_t* p) { std::memset(p, 0, 4); }, 4),
        -1, 0});
    SeqNode seq(std::move(items));
    StateWriter w;
    w.u64(7);  // active index past the one-item list
    w.u8(0);
    expectRestoreRejects(seq, w);
}

TEST(HostileCheckpoint, TakesCursorOutOfRange)
{
    TakeManyNode tk(4, 3);
    StateWriter w;
    w.u64(7);  // have_ > n_
    expectRestoreRejects(tk, w);
}

TEST(HostileCheckpoint, EmitsCursorOutOfRange)
{
    EmitsNode em([](Frame&, uint8_t* p) { std::memset(p, 0, 8); }, 4, 2);
    StateWriter w;
    w.u8(1);
    w.u64(3);  // next_ > len_
    expectRestoreRejects(em, w);
}

TEST(HostileCheckpoint, PipeControlOriginAndWidth)
{
    PipeNode pipe(std::make_unique<EmitNode>(
                      [](Frame&, uint8_t* p) { std::memset(p, 0, 4); },
                      4),
                  std::make_unique<TakeNode>(4));
    const uint8_t z4[4] = {0, 0, 0, 0};

    StateWriter w;
    w.u8(3);  // control origin is only ever 0/1/2
    expectRestoreRejects(pipe, w);

    StateWriter w2;
    w2.u8(1);      // control from the left child...
    w2.u64(999);   // ...whose ctrl width is 0, not 999
    w2.u8(0);      // left: EmitNode {emitted_, outBuf_}
    w2.bytes(z4, 4);
    w2.u8(0);      // right: TakeNode {pending_, ctrlBuf_}
    w2.bytes(z4, 4);
    expectRestoreRejects(pipe, w2);
}

struct NullKernel : NativeKernel
{
    bool consume(const uint8_t*, Emitter&) override { return false; }
};

TEST(HostileCheckpoint, NativeRingOutOfBounds)
{
    NativeNode n([](Frame&) { return std::make_unique<NullKernel>(); },
                 4, 4, 0, /*is_computer=*/false);
    const uint8_t ring[8] = {0};

    StateWriter w;
    w.u8(0);
    w.u64(5);  // cursor not element-aligned
    w.blob(ring, sizeof ring);
    expectRestoreRejects(n, w);

    StateWriter w2;
    w2.u8(0);
    w2.u64(12);  // aligned but past the 8-byte ring
    w2.blob(ring, sizeof ring);
    expectRestoreRejects(n, w2);
}

TEST(HostileCheckpoint, FusedPcAndPointerOutOfRange)
{
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.backend = Backend::Fused;
    std::unique_ptr<Pipeline> p;
    for (const Shape& sh : resetShapes()) {
        auto q = compilePipeline(sh.make(), opt);
        if (dynamic_cast<FusedNode*>(&q->root())) {
            p = std::move(q);
            break;
        }
    }
    ASSERT_TRUE(p) << "no shape lowered to a bare FusedNode root";
    p->root().start(p->frame());
    auto snap = takeSnapshot(p->root(), p->frame(), 0, 0);

    // Walk the container to the fused pc field: 24-byte header, frame
    // image blob, register space, state block, channel pc table.
    auto rdU64 = [&](size_t o) {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(snap[o + i]) << (8 * i);
        return v;
    };
    size_t off = 24;
    off += 8 + rdU64(off);  // frame image
    off += 8 + rdU64(off);  // register space
    off += 8 + rdU64(off);  // state block
    uint64_t nch = rdU64(off);
    off += 8 + nch * 9;     // per-channel {prodPc, consPc, full}
    ASSERT_LE(off + 4, snap.size());

    auto badPc = snap;
    std::fill(badPc.begin() + static_cast<long>(off),
              badPc.begin() + static_cast<long>(off) + 4,
              uint8_t{0xff});
    EXPECT_THROW(restoreSnapshot(p->root(), p->frame(), badPc),
                 StateFormatError);

    // The out-pointer tag sits after pc (4), spins (8), ctrl width (8):
    // claim a state-block offset far past the block.
    size_t tag = off + 4 + 8 + 8;
    ASSERT_LE(tag + 9, snap.size());
    auto badPtr = snap;
    badPtr[tag] = 1;
    std::fill(badPtr.begin() + static_cast<long>(tag) + 1,
              badPtr.begin() + static_cast<long>(tag) + 9,
              uint8_t{0xff});
    EXPECT_THROW(restoreSnapshot(p->root(), p->frame(), badPtr),
                 StateFormatError);
}

// ------------------------------------------- round-trip totality

TEST(SnapshotRoundTrip, AllShapesAcrossBackendsAndOptLevels)
{
    for (const Shape& sh : resetShapes()) {
        for (OptLevel lvl : {OptLevel::None, OptLevel::All}) {
            for (Backend be : {Backend::Vm, Backend::Fused}) {
                SCOPED_TRACE(
                    std::string(sh.name) + " at OptLevel " +
                    (lvl == OptLevel::None ? "None" : "All") + ", " +
                    (be == Backend::Vm ? "vm" : "fused"));
                CompilerOptions opt = CompilerOptions::forLevel(lvl);
                opt.backend = be;
                auto p = compilePipeline(sh.make(), opt);

                ASSERT_EQ(p->inWidth() % 4, 0u);
                std::vector<int32_t> in(24 * (p->inWidth() / 4));
                for (size_t i = 0; i < in.size(); ++i)
                    in[i] = static_cast<int32_t>(i);
                auto bytes = intBytes(in);

                // Run to the 5-element park, snapshot there, then
                // drive the ORIGINAL instance to the end: that tail is
                // the ground truth the restored instance must match.
                auto head = driveUpTo(*p, bytes, 0, 5, /*init=*/true);
                auto snap = takeSnapshot(p->root(), p->frame(),
                                         head.consumed, 0);
                auto want = driveUpTo(*p, bytes, head.consumed,
                                      SIZE_MAX, /*init=*/false);

                // The tree is now dirty (run to completion); restore
                // must rewind it to the park without a start().
                SnapshotInfo info =
                    restoreSnapshot(p->root(), p->frame(), snap);
                EXPECT_EQ(info.consumed, head.consumed);
                auto got = driveUpTo(*p, bytes, head.consumed,
                                     SIZE_MAX, /*init=*/false);
                EXPECT_EQ(got.out, want.out)
                    << "restored continuation diverged";
                EXPECT_EQ(got.consumed, want.consumed);
                EXPECT_EQ(got.done, want.done);
            }
        }
    }
}

TEST(SnapshotRoundTrip, RestoreIsRepeatable)
{
    // One snapshot, two restores: the image must not be consumed or
    // mutated by restoring it (a drain replay may restore twice).
    const Shape& sh = resetShapes()[10];  // letvar-accumulator
    auto p = compilePipeline(sh.make(),
                             CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in(24);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);

    auto head = driveUpTo(*p, bytes, 0, 7, true);
    auto snap = takeSnapshot(p->root(), p->frame(), head.consumed, 0);
    auto want = driveUpTo(*p, bytes, head.consumed, SIZE_MAX, false);

    for (int round = 0; round < 2; ++round) {
        restoreSnapshot(p->root(), p->frame(), snap);
        auto got = driveUpTo(*p, bytes, head.consumed, SIZE_MAX, false);
        EXPECT_EQ(got.out, want.out) << "round " << round;
    }
}

// --------------------------------------------- WiFi RX mid-packet

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

bool
containsBytes(const std::vector<uint8_t>& hay,
              const std::vector<uint8_t>& needle)
{
    return std::search(hay.begin(), hay.end(), needle.begin(),
                       needle.end()) != hay.end();
}

TEST(SnapshotRoundTrip, WifiRxMidPacketCheckpointDecodesThePacket)
{
    // Checkpoint the full receiver ~140 samples INTO packet 1 — with
    // live channel-estimate, demapper and Viterbi path-memory state —
    // and prove the restored instance still decodes packet 1 (whose
    // decode spans the checkpoint) and packet 2, byte-identically to
    // the uninterrupted continuation.
    using namespace wifi;
    auto payload1 = randomBytes(40, 91);
    auto payload2 = randomBytes(40, 92);
    auto tx1 = sora::txFrame(payload1, Rate::R12);
    auto tx2 = sora::txFrame(payload2, Rate::R12);

    std::vector<Complex16> stream;
    stream.insert(stream.end(), 300, Complex16{0, 0});
    stream.insert(stream.end(), tx1.begin(), tx1.end());
    stream.insert(stream.end(), 3000, Complex16{0, 0});
    stream.insert(stream.end(), tx2.begin(), tx2.end());
    stream.insert(stream.end(), 300, Complex16{0, 0});

    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.seed = 93;
    auto rxSamples = channel::applyChannel(stream, cfg);
    std::vector<uint8_t> sampBytes(rxSamples.size() * 4);
    std::memcpy(sampBytes.data(), rxSamples.data(), sampBytes.size());

    auto rx = compilePipeline(wifiReceiverLoopComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    ASSERT_EQ(rx->inWidth(), 4u);  // one Complex16 sample per element

    auto head = driveUpTo(*rx, sampBytes, 0, 600, true);
    auto snap =
        takeSnapshot(rx->root(), rx->frame(), head.consumed, 0);
    auto want = driveUpTo(*rx, sampBytes, head.consumed, SIZE_MAX,
                          false);

    restoreSnapshot(rx->root(), rx->frame(), snap);
    auto got = driveUpTo(*rx, sampBytes, head.consumed, SIZE_MAX,
                         false);
    EXPECT_EQ(got.out, want.out);

    std::vector<uint8_t> bits = head.out;
    bits.insert(bits.end(), got.out.begin(), got.out.end());
    auto bytes = bitsToBytes(bits);
    EXPECT_TRUE(containsBytes(bytes, payload1))
        << "the packet whose decode spans the checkpoint was lost";
    EXPECT_TRUE(containsBytes(bytes, payload2));
}

// ------------------------------------------- checkpointed restart

void
checkCheckpointedRestart(Backend be, OptLevel lvl)
{
    SCOPED_TRACE(std::string(be == Backend::Vm ? "vm" : "fused") +
                 " at OptLevel " +
                 (lvl == OptLevel::None ? "None" : "All"));
    const Shape& sh = resetShapes()[10];  // letvar-accumulator
    ASSERT_STREQ(sh.name, "letvar-accumulator");

    auto clean = compilePipeline(sh.make(),
                                 CompilerOptions::forLevel(lvl));
    std::vector<int32_t> in(50 * (clean->inWidth() / 4));
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i + 1);
    auto bytes = intBytes(in);
    auto expect = clean->runBytes(bytes);

    CompilerOptions opt = CompilerOptions::forLevel(lvl);
    opt.backend = be;
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    opt.checkpoint.interval = 4;
    auto p = compilePipeline(sh.make(), opt);
    // vm and fused must agree on the compiled element width for the
    // clean run above to be the right oracle.
    ASSERT_EQ(p->inWidth(), clean->inWidth());

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.attempts").value();
    uint64_t snaps0 = reg.counter("ziria.ckpt.snapshots").value();
    uint64_t restores0 = reg.counter("ziria.ckpt.restores").value();

    MemSource mem(bytes, p->inWidth());
    FaultySource src(mem, FaultSpec::parse("throw@10"));
    VecSink sink(p->outWidth());
    ASSERT_NO_THROW(p->run(src, sink));

    EXPECT_EQ(sink.data(), expect)
        << "checkpointed restart is not byte-identical to the "
           "uninterrupted run";
    EXPECT_EQ(reg.counter("restart.attempts").value(), attempts0 + 1);
    EXPECT_EQ(reg.counter("ziria.ckpt.restores").value(),
              restores0 + 1);
    EXPECT_GT(reg.counter("ziria.ckpt.snapshots").value(), snaps0);
    EXPECT_EQ(src.fired(), 1u);
}

TEST(CheckpointedRestart, ByteIdenticalAfterFaultVm)
{
    checkCheckpointedRestart(Backend::Vm, OptLevel::None);
    checkCheckpointedRestart(Backend::Vm, OptLevel::All);
}

TEST(CheckpointedRestart, ByteIdenticalAfterFaultFused)
{
    checkCheckpointedRestart(Backend::Fused, OptLevel::None);
    checkCheckpointedRestart(Backend::Fused, OptLevel::All);
}

TEST(CheckpointedRestart, PlainRestartDivergesOnStatefulPipelines)
{
    // The motivating contrast: WITHOUT a checkpoint interval, a
    // restart resets the accumulator to zero and the tail of the
    // output provably differs — the behavior checkpointing fixes.
    const Shape& sh = resetShapes()[10];
    auto clean = compilePipeline(sh.make(),
                                 CompilerOptions::forLevel(
                                     OptLevel::None));
    std::vector<int32_t> in(50);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i + 1);
    auto bytes = intBytes(in);
    auto expect = clean->runBytes(bytes);

    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    auto p = compilePipeline(sh.make(), opt);

    MemSource mem(bytes, p->inWidth());
    FaultySource src(mem, FaultSpec::parse("throw@10"));
    VecSink sink(p->outWidth());
    ASSERT_NO_THROW(p->run(src, sink));
    EXPECT_NE(sink.data(), expect);
}

TEST(CheckpointedRestart, SurvivesTwoFaultsInOneRun)
{
    // A second fault during/after journal replay must restore again
    // from the same boundary and still converge byte-identically.
    const Shape& sh = resetShapes()[10];
    auto clean = compilePipeline(sh.make(),
                                 CompilerOptions::forLevel(
                                     OptLevel::None));
    std::vector<int32_t> in(50);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i + 1);
    auto bytes = intBytes(in);
    auto expect = clean->runBytes(bytes);

    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    opt.checkpoint.interval = 8;
    auto p = compilePipeline(sh.make(), opt);

    MemSource mem(bytes, p->inWidth());
    FaultySource src(mem, FaultSpec::parse("throw@10:2"));
    VecSink sink(p->outWidth());
    ASSERT_NO_THROW(p->run(src, sink));
    EXPECT_EQ(sink.data(), expect);
    EXPECT_EQ(src.fired(), 2u);
}

} // namespace
} // namespace ziria
