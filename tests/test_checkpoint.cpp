/**
 * @file
 * Checkpoint tests (ctest labels `recovery`, `checkpoint`): the
 * snapshot/restore round-trip totality contract across every
 * combinator shape × {vm, fused} × O0/O3, the state-io primitives, a
 * WiFi receiver checkpointed mid-packet, and the checkpointed-restart
 * consumer — a supervised restart that resumes from the last
 * frame-boundary snapshot and reproduces the uninterrupted run's
 * output byte for byte (the PR's acceptance property).
 *
 * The round-trip contract under test (zexec/snapshot.h): at a
 * quiescent point (the tree parked on NeedInput), restoreSnapshot(
 * takeSnapshot()) must make the tree's future output bit-identical to
 * the snapshotted instance's — including native kernel state (Viterbi
 * path memory, scrambler LFSRs) and fused register/state/channel
 * spaces.
 */
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/channel.h"
#include "sora/sora.h"
#include "support/fault_injector.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/shapes.h"
#include "support/state_io.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zexec/faultpoint.h"
#include "zexec/snapshot.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using testsupport::intBytes;
using testsupport::resetShapes;
using testsupport::Shape;

// ------------------------------------------------------------- helpers

struct DriveResult
{
    std::vector<uint8_t> out;
    size_t consumed = 0;  ///< input elements supplied
    bool done = false;
};

/**
 * Drive @p p by hand from @p bytes, starting @p startElem elements in,
 * supplying at most @p maxElems elements.  Stops parked on NeedInput
 * (the quiescent point snapshots require), at end of input, or at
 * Done.  With @p init false the tree is NOT start()ed — how the
 * round-trip tests prove restoreSnapshot() alone rebuilt the state.
 */
DriveResult
driveUpTo(Pipeline& p, const std::vector<uint8_t>& bytes,
          size_t startElem, size_t maxElems, bool init)
{
    ExecNode& root = p.root();
    Frame& f = p.frame();
    if (init)
        root.start(f);
    const size_t w = p.inWidth();
    size_t pos = startElem * w;
    DriveResult r;
    for (;;) {
        Status s = root.advance(f);
        if (s == Status::Yield) {
            r.out.insert(r.out.end(), root.out(),
                         root.out() + p.outWidth());
        } else if (s == Status::NeedInput) {
            if (r.consumed >= maxElems)
                break;  // parked — quiescent
            if (pos + w > bytes.size())
                break;  // input exhausted
            root.supply(f, bytes.data() + pos);
            pos += w;
            ++r.consumed;
        } else {
            r.done = true;
            break;
        }
    }
    return r;
}

// ---------------------------------------------------- state-io basics

TEST(StateIo, PrimitivesRoundTrip)
{
    StateWriter w;
    w.u8(7);
    w.u32(0xdeadbeef);
    w.u64(0x1122334455667788ull);
    w.i64(-42);
    w.f64(2.5);
    const uint8_t raw[3] = {1, 2, 3};
    w.blob(raw, sizeof raw);
    std::vector<uint8_t> buf = w.take();

    StateReader r(buf.data(), buf.size());
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x1122334455667788ull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 2.5);
    std::vector<uint8_t> blob = r.blob();
    EXPECT_EQ(blob, std::vector<uint8_t>(raw, raw + 3));

    // Reading past the end is a format error, not UB.
    EXPECT_THROW(r.u8(), StateFormatError);
}

TEST(StateIo, RestoreRejectsCorruptContainer)
{
    auto p = compilePipeline(resetShapes()[0].make(),
                             CompilerOptions::forLevel(OptLevel::None));
    p->root().start(p->frame());
    auto snap = takeSnapshot(p->root(), p->frame(), 0, 0);
    ASSERT_GE(snap.size(), 8u);

    auto badMagic = snap;
    badMagic[0] ^= 0xff;
    EXPECT_THROW(restoreSnapshot(p->root(), p->frame(), badMagic),
                 StateFormatError);

    auto truncated = snap;
    truncated.resize(truncated.size() - 1);
    EXPECT_THROW(restoreSnapshot(p->root(), p->frame(), truncated),
                 StateFormatError);
}

// ------------------------------------------- round-trip totality

TEST(SnapshotRoundTrip, AllShapesAcrossBackendsAndOptLevels)
{
    for (const Shape& sh : resetShapes()) {
        for (OptLevel lvl : {OptLevel::None, OptLevel::All}) {
            for (Backend be : {Backend::Vm, Backend::Fused}) {
                SCOPED_TRACE(
                    std::string(sh.name) + " at OptLevel " +
                    (lvl == OptLevel::None ? "None" : "All") + ", " +
                    (be == Backend::Vm ? "vm" : "fused"));
                CompilerOptions opt = CompilerOptions::forLevel(lvl);
                opt.backend = be;
                auto p = compilePipeline(sh.make(), opt);

                ASSERT_EQ(p->inWidth() % 4, 0u);
                std::vector<int32_t> in(24 * (p->inWidth() / 4));
                for (size_t i = 0; i < in.size(); ++i)
                    in[i] = static_cast<int32_t>(i);
                auto bytes = intBytes(in);

                // Run to the 5-element park, snapshot there, then
                // drive the ORIGINAL instance to the end: that tail is
                // the ground truth the restored instance must match.
                auto head = driveUpTo(*p, bytes, 0, 5, /*init=*/true);
                auto snap = takeSnapshot(p->root(), p->frame(),
                                         head.consumed, 0);
                auto want = driveUpTo(*p, bytes, head.consumed,
                                      SIZE_MAX, /*init=*/false);

                // The tree is now dirty (run to completion); restore
                // must rewind it to the park without a start().
                SnapshotInfo info =
                    restoreSnapshot(p->root(), p->frame(), snap);
                EXPECT_EQ(info.consumed, head.consumed);
                auto got = driveUpTo(*p, bytes, head.consumed,
                                     SIZE_MAX, /*init=*/false);
                EXPECT_EQ(got.out, want.out)
                    << "restored continuation diverged";
                EXPECT_EQ(got.consumed, want.consumed);
                EXPECT_EQ(got.done, want.done);
            }
        }
    }
}

TEST(SnapshotRoundTrip, RestoreIsRepeatable)
{
    // One snapshot, two restores: the image must not be consumed or
    // mutated by restoring it (a drain replay may restore twice).
    const Shape& sh = resetShapes()[10];  // letvar-accumulator
    auto p = compilePipeline(sh.make(),
                             CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in(24);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);

    auto head = driveUpTo(*p, bytes, 0, 7, true);
    auto snap = takeSnapshot(p->root(), p->frame(), head.consumed, 0);
    auto want = driveUpTo(*p, bytes, head.consumed, SIZE_MAX, false);

    for (int round = 0; round < 2; ++round) {
        restoreSnapshot(p->root(), p->frame(), snap);
        auto got = driveUpTo(*p, bytes, head.consumed, SIZE_MAX, false);
        EXPECT_EQ(got.out, want.out) << "round " << round;
    }
}

// --------------------------------------------- WiFi RX mid-packet

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

bool
containsBytes(const std::vector<uint8_t>& hay,
              const std::vector<uint8_t>& needle)
{
    return std::search(hay.begin(), hay.end(), needle.begin(),
                       needle.end()) != hay.end();
}

TEST(SnapshotRoundTrip, WifiRxMidPacketCheckpointDecodesThePacket)
{
    // Checkpoint the full receiver ~140 samples INTO packet 1 — with
    // live channel-estimate, demapper and Viterbi path-memory state —
    // and prove the restored instance still decodes packet 1 (whose
    // decode spans the checkpoint) and packet 2, byte-identically to
    // the uninterrupted continuation.
    using namespace wifi;
    auto payload1 = randomBytes(40, 91);
    auto payload2 = randomBytes(40, 92);
    auto tx1 = sora::txFrame(payload1, Rate::R12);
    auto tx2 = sora::txFrame(payload2, Rate::R12);

    std::vector<Complex16> stream;
    stream.insert(stream.end(), 300, Complex16{0, 0});
    stream.insert(stream.end(), tx1.begin(), tx1.end());
    stream.insert(stream.end(), 3000, Complex16{0, 0});
    stream.insert(stream.end(), tx2.begin(), tx2.end());
    stream.insert(stream.end(), 300, Complex16{0, 0});

    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.seed = 93;
    auto rxSamples = channel::applyChannel(stream, cfg);
    std::vector<uint8_t> sampBytes(rxSamples.size() * 4);
    std::memcpy(sampBytes.data(), rxSamples.data(), sampBytes.size());

    auto rx = compilePipeline(wifiReceiverLoopComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    ASSERT_EQ(rx->inWidth(), 4u);  // one Complex16 sample per element

    auto head = driveUpTo(*rx, sampBytes, 0, 600, true);
    auto snap =
        takeSnapshot(rx->root(), rx->frame(), head.consumed, 0);
    auto want = driveUpTo(*rx, sampBytes, head.consumed, SIZE_MAX,
                          false);

    restoreSnapshot(rx->root(), rx->frame(), snap);
    auto got = driveUpTo(*rx, sampBytes, head.consumed, SIZE_MAX,
                         false);
    EXPECT_EQ(got.out, want.out);

    std::vector<uint8_t> bits = head.out;
    bits.insert(bits.end(), got.out.begin(), got.out.end());
    auto bytes = bitsToBytes(bits);
    EXPECT_TRUE(containsBytes(bytes, payload1))
        << "the packet whose decode spans the checkpoint was lost";
    EXPECT_TRUE(containsBytes(bytes, payload2));
}

// ------------------------------------------- checkpointed restart

void
checkCheckpointedRestart(Backend be, OptLevel lvl)
{
    SCOPED_TRACE(std::string(be == Backend::Vm ? "vm" : "fused") +
                 " at OptLevel " +
                 (lvl == OptLevel::None ? "None" : "All"));
    const Shape& sh = resetShapes()[10];  // letvar-accumulator
    ASSERT_STREQ(sh.name, "letvar-accumulator");

    auto clean = compilePipeline(sh.make(),
                                 CompilerOptions::forLevel(lvl));
    std::vector<int32_t> in(50 * (clean->inWidth() / 4));
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i + 1);
    auto bytes = intBytes(in);
    auto expect = clean->runBytes(bytes);

    CompilerOptions opt = CompilerOptions::forLevel(lvl);
    opt.backend = be;
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    opt.checkpoint.interval = 4;
    auto p = compilePipeline(sh.make(), opt);
    // vm and fused must agree on the compiled element width for the
    // clean run above to be the right oracle.
    ASSERT_EQ(p->inWidth(), clean->inWidth());

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.attempts").value();
    uint64_t snaps0 = reg.counter("ziria.ckpt.snapshots").value();
    uint64_t restores0 = reg.counter("ziria.ckpt.restores").value();

    MemSource mem(bytes, p->inWidth());
    FaultySource src(mem, FaultSpec::parse("throw@10"));
    VecSink sink(p->outWidth());
    ASSERT_NO_THROW(p->run(src, sink));

    EXPECT_EQ(sink.data(), expect)
        << "checkpointed restart is not byte-identical to the "
           "uninterrupted run";
    EXPECT_EQ(reg.counter("restart.attempts").value(), attempts0 + 1);
    EXPECT_EQ(reg.counter("ziria.ckpt.restores").value(),
              restores0 + 1);
    EXPECT_GT(reg.counter("ziria.ckpt.snapshots").value(), snaps0);
    EXPECT_EQ(src.fired(), 1u);
}

TEST(CheckpointedRestart, ByteIdenticalAfterFaultVm)
{
    checkCheckpointedRestart(Backend::Vm, OptLevel::None);
    checkCheckpointedRestart(Backend::Vm, OptLevel::All);
}

TEST(CheckpointedRestart, ByteIdenticalAfterFaultFused)
{
    checkCheckpointedRestart(Backend::Fused, OptLevel::None);
    checkCheckpointedRestart(Backend::Fused, OptLevel::All);
}

TEST(CheckpointedRestart, PlainRestartDivergesOnStatefulPipelines)
{
    // The motivating contrast: WITHOUT a checkpoint interval, a
    // restart resets the accumulator to zero and the tail of the
    // output provably differs — the behavior checkpointing fixes.
    const Shape& sh = resetShapes()[10];
    auto clean = compilePipeline(sh.make(),
                                 CompilerOptions::forLevel(
                                     OptLevel::None));
    std::vector<int32_t> in(50);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i + 1);
    auto bytes = intBytes(in);
    auto expect = clean->runBytes(bytes);

    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    auto p = compilePipeline(sh.make(), opt);

    MemSource mem(bytes, p->inWidth());
    FaultySource src(mem, FaultSpec::parse("throw@10"));
    VecSink sink(p->outWidth());
    ASSERT_NO_THROW(p->run(src, sink));
    EXPECT_NE(sink.data(), expect);
}

TEST(CheckpointedRestart, SurvivesTwoFaultsInOneRun)
{
    // A second fault during/after journal replay must restore again
    // from the same boundary and still converge byte-identically.
    const Shape& sh = resetShapes()[10];
    auto clean = compilePipeline(sh.make(),
                                 CompilerOptions::forLevel(
                                     OptLevel::None));
    std::vector<int32_t> in(50);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i + 1);
    auto bytes = intBytes(in);
    auto expect = clean->runBytes(bytes);

    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    opt.checkpoint.interval = 8;
    auto p = compilePipeline(sh.make(), opt);

    MemSource mem(bytes, p->inWidth());
    FaultySource src(mem, FaultSpec::parse("throw@10:2"));
    VecSink sink(p->outWidth());
    ASSERT_NO_THROW(p->run(src, sink));
    EXPECT_EQ(sink.data(), expect);
    EXPECT_EQ(src.fired(), 2u);
}

} // namespace
} // namespace ziria
