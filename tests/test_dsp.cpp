/**
 * @file
 * Unit + property tests for the DSP substrate: FFT/IFFT, the K=7
 * convolutional code with puncturing, the Viterbi decoder, CRCs,
 * constellations, and the channel simulator.
 */
#include <complex>

#include <gtest/gtest.h>

#include "channel/channel.h"
#include "dsp/constellation.h"
#include "dsp/conv_code.h"
#include "dsp/crc.h"
#include "dsp/fft.h"
#include "dsp/viterbi.h"
#include "support/rng.h"

namespace ziria {
namespace {

using dsp::CodingRate;
using dsp::Modulation;

TEST(Fft, MatchesReferenceDft)
{
    Rng rng(11);
    dsp::Fft plan(64);
    std::vector<Complex16> in(64);
    std::vector<std::complex<double>> dIn(64);
    for (int i = 0; i < 64; ++i) {
        in[i].re = static_cast<int16_t>(rng.below(4000)) - 2000;
        in[i].im = static_cast<int16_t>(rng.below(4000)) - 2000;
        dIn[i] = {static_cast<double>(in[i].re),
                  static_cast<double>(in[i].im)};
    }
    std::vector<Complex16> out(64);
    plan.forward(in.data(), out.data());
    std::vector<std::complex<double>> ref;
    dsp::dftReference(dIn, ref, false);
    for (int k = 0; k < 64; ++k) {
        EXPECT_NEAR(out[k].re, ref[k].real(), 8.0) << "bin " << k;
        EXPECT_NEAR(out[k].im, ref[k].imag(), 8.0) << "bin " << k;
    }
}

TEST(Fft, InverseOfForwardIsIdentity)
{
    Rng rng(12);
    dsp::Fft plan(64);
    std::vector<Complex16> in(64), mid(64), back(64);
    for (auto& x : in) {
        x.re = static_cast<int16_t>(rng.below(8000)) - 4000;
        x.im = static_cast<int16_t>(rng.below(8000)) - 4000;
    }
    plan.forward(in.data(), mid.data());
    plan.inverse(mid.data(), back.data());
    for (int i = 0; i < 64; ++i) {
        EXPECT_NEAR(back[i].re, in[i].re, 96) << i;
        EXPECT_NEAR(back[i].im, in[i].im, 96) << i;
    }
}

class FftSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(FftSizes, RoundTripAtSize)
{
    const int n = GetParam();
    Rng rng(static_cast<uint64_t>(n));
    dsp::Fft plan(n);
    std::vector<Complex16> in(n), mid(n), back(n);
    for (auto& x : in) {
        x.re = static_cast<int16_t>(rng.below(2000)) - 1000;
        x.im = static_cast<int16_t>(rng.below(2000)) - 1000;
    }
    plan.forward(in.data(), mid.data());
    plan.inverse(mid.data(), back.data());
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(back[i].re, in[i].re, n) << i;
        EXPECT_NEAR(back[i].im, in[i].im, n) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwo, FftSizes,
                         ::testing::Values(8, 16, 32, 64, 128, 256));

TEST(ConvCode, KnownRateHalfOutput)
{
    // All-zero input keeps the encoder at state 0 -> all-zero output.
    dsp::ConvEncoder enc(CodingRate::Half);
    auto out = enc.encode(std::vector<uint8_t>(8, 0));
    EXPECT_EQ(out, std::vector<uint8_t>(16, 0));
}

TEST(ConvCode, ImpulseResponseMatchesGenerators)
{
    // A single 1 produces the generator taps over the next 7 pairs.
    dsp::ConvEncoder enc(CodingRate::Half);
    std::vector<uint8_t> in(7, 0);
    in[0] = 1;
    auto out = enc.encode(in);
    // A-outputs: g0 = 133 octal = 1011011b read from delay 0..6.
    std::vector<uint8_t> a, b;
    for (size_t i = 0; i < out.size(); i += 2) {
        a.push_back(out[i]);
        b.push_back(out[i + 1]);
    }
    EXPECT_EQ(a, (std::vector<uint8_t>{1, 0, 1, 1, 0, 1, 1}));
    EXPECT_EQ(b, (std::vector<uint8_t>{1, 1, 1, 1, 0, 0, 1}));
}

TEST(ConvCode, PuncturedRates)
{
    Rng rng(5);
    std::vector<uint8_t> in(24);
    for (auto& b : in)
        b = rng.bit();
    dsp::ConvEncoder e23(CodingRate::TwoThirds);
    EXPECT_EQ(e23.encode(in).size(), in.size() * 3 / 2);
    dsp::ConvEncoder e34(CodingRate::ThreeQuarters);
    EXPECT_EQ(e34.encode(in).size(), in.size() * 4 / 3);
}

class ViterbiRoundTrip
    : public ::testing::TestWithParam<std::tuple<CodingRate, int>>
{
};

TEST_P(ViterbiRoundTrip, DecodesCleanStream)
{
    auto [rate, seed] = GetParam();
    Rng rng(static_cast<uint64_t>(seed));
    std::vector<uint8_t> data(360);
    for (auto& b : data)
        b = rng.bit();

    dsp::ConvEncoder enc(rate);
    std::vector<uint8_t> coded = enc.encode(data);

    dsp::Depuncturer dep(rate);
    std::vector<uint8_t> lattice;
    for (uint8_t b : coded)
        dep.input(b, lattice);
    ASSERT_EQ(lattice.size(), data.size() * 2);

    dsp::ViterbiDecoder dec;
    std::vector<uint8_t> out;
    for (size_t i = 0; i + 1 < lattice.size(); i += 2)
        dec.inputPair(lattice[i], lattice[i + 1], out);
    dec.flush(out);
    ASSERT_EQ(out.size(), data.size());
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, ViterbiRoundTrip,
    ::testing::Combine(::testing::Values(CodingRate::Half,
                                         CodingRate::TwoThirds,
                                         CodingRate::ThreeQuarters),
                       ::testing::Values(1, 2, 3)));

TEST(Viterbi, CorrectsBitErrorsAtRateHalf)
{
    Rng rng(9);
    std::vector<uint8_t> data(400);
    for (auto& b : data)
        b = rng.bit();
    dsp::ConvEncoder enc(CodingRate::Half);
    std::vector<uint8_t> coded = enc.encode(data);
    // Flip ~2% of coded bits, spread out.
    for (size_t i = 10; i < coded.size(); i += 53)
        coded[i] ^= 1;
    dsp::ViterbiDecoder dec;
    std::vector<uint8_t> out;
    for (size_t i = 0; i + 1 < coded.size(); i += 2)
        dec.inputPair(coded[i], coded[i + 1], out);
    dec.flush(out);
    ASSERT_EQ(out.size(), data.size());
    EXPECT_EQ(out, data);
}

TEST(Crc32, KnownVector)
{
    // CRC-32 of ASCII "123456789" = 0xCBF43926.
    std::vector<uint8_t> bits;
    const char* s = "123456789";
    for (int i = 0; i < 9; ++i) {
        for (int j = 0; j < 8; ++j)
            bits.push_back((s[i] >> j) & 1);
    }
    EXPECT_EQ(dsp::Crc32::ofBits(bits), 0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitErrors)
{
    Rng rng(3);
    std::vector<uint8_t> bits(256);
    for (auto& b : bits)
        b = rng.bit();
    uint32_t good = dsp::Crc32::ofBits(bits);
    for (size_t i = 0; i < bits.size(); i += 37) {
        bits[i] ^= 1;
        EXPECT_NE(dsp::Crc32::ofBits(bits), good);
        bits[i] ^= 1;
    }
}

TEST(Crc24, Streaming)
{
    std::vector<uint8_t> bits(48, 1);
    uint32_t v = dsp::Crc24::ofBits(bits);
    EXPECT_LE(v, 0xFFFFFFu);
    bits[5] ^= 1;
    EXPECT_NE(dsp::Crc24::ofBits(bits), v);
}

class ConstellationRoundTrip : public ::testing::TestWithParam<Modulation>
{
};

TEST_P(ConstellationRoundTrip, MapDemapIdentity)
{
    Modulation m = GetParam();
    const int nb = dsp::bitsPerSymbol(m);
    for (uint32_t v = 0; v < (1u << nb); ++v) {
        Complex16 p = dsp::mapBits(m, v);
        EXPECT_EQ(dsp::demapPoint(m, p), v) << "bits " << v;
    }
}

TEST_P(ConstellationRoundTrip, ToleratesSmallNoise)
{
    Modulation m = GetParam();
    const int nb = dsp::bitsPerSymbol(m);
    // Half the minimum distance between axis levels.
    int margin = m == Modulation::Qam64 ? 40 : 80;
    Rng rng(7);
    for (uint32_t v = 0; v < (1u << nb); ++v) {
        Complex16 p = dsp::mapBits(m, v);
        Complex16 noisy{
            static_cast<int16_t>(p.re + static_cast<int>(
                                            rng.below(margin)) -
                                 margin / 2),
            static_cast<int16_t>(p.im + static_cast<int>(
                                            rng.below(margin)) -
                                 margin / 2)};
        EXPECT_EQ(dsp::demapPoint(m, noisy), v);
    }
}

INSTANTIATE_TEST_SUITE_P(All, ConstellationRoundTrip,
                         ::testing::Values(Modulation::Bpsk,
                                           Modulation::Qpsk,
                                           Modulation::Qam16,
                                           Modulation::Qam64));

TEST(ConstellationTest, UnitAveragePower)
{
    // With K_MOD normalization every constellation has roughly the same
    // mean power (constellationScale^2).
    for (Modulation m : {Modulation::Bpsk, Modulation::Qpsk,
                         Modulation::Qam16, Modulation::Qam64}) {
        const int nb = dsp::bitsPerSymbol(m);
        double acc = 0;
        for (uint32_t v = 0; v < (1u << nb); ++v) {
            Complex16 p = dsp::mapBits(m, v);
            acc += static_cast<double>(p.re) * p.re +
                   static_cast<double>(p.im) * p.im;
        }
        acc /= (1 << nb);
        double expect = static_cast<double>(dsp::constellationScale) *
                        dsp::constellationScale;
        EXPECT_NEAR(acc, expect, expect * 0.05)
            << "modulation " << static_cast<int>(m);
    }
}

TEST(Channel, SnrIsCalibrated)
{
    Rng rng(21);
    std::vector<Complex16> tx(20000);
    for (auto& x : tx) {
        x.re = static_cast<int16_t>(rng.below(2000)) - 1000;
        x.im = static_cast<int16_t>(rng.below(2000)) - 1000;
    }
    channel::ChannelConfig cfg;
    cfg.snrDb = 10.0;
    cfg.seed = 33;
    auto rx = channel::applyChannel(tx, cfg);
    ASSERT_EQ(rx.size(), tx.size());
    double noise = 0;
    for (size_t i = 0; i < tx.size(); ++i) {
        double dre = rx[i].re - tx[i].re;
        double dim = rx[i].im - tx[i].im;
        noise += dre * dre + dim * dim;
    }
    noise /= static_cast<double>(tx.size());
    double snr = 10.0 *
                 std::log10(channel::meanPower(tx) / noise);
    EXPECT_NEAR(snr, 10.0, 0.5);
}

TEST(Channel, DelayPrependsNoise)
{
    std::vector<Complex16> tx(100, Complex16{1000, 0});
    channel::ChannelConfig cfg;
    cfg.snrDb = 40.0;
    cfg.delaySamples = 37;
    cfg.trailSamples = 11;
    auto rx = channel::applyChannel(tx, cfg);
    EXPECT_EQ(rx.size(), tx.size() + 37 + 11);
}

} // namespace
} // namespace ziria
