/**
 * @file
 * Unit + integration tests for the execution engine: primitive nodes,
 * combinators, the seq switchtable, right-drained pipes, repeat
 * re-initialization, and the threaded pipeline.
 */
#include <gtest/gtest.h>

#include "support/panic.h"
#include "zast/builder.h"
#include "zcheck/check.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace zb;

std::vector<int32_t>
toInts(const std::vector<uint8_t>& bytes)
{
    std::vector<int32_t> out(bytes.size() / 4);
    std::memcpy(out.data(), bytes.data(), out.size() * 4);
    return out;
}

std::vector<uint8_t>
fromInts(const std::vector<int32_t>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

std::unique_ptr<Pipeline>
make(CompPtr c, OptLevel level = OptLevel::None)
{
    return compilePipeline(c, CompilerOptions::forLevel(level));
}

TEST(Exec, EmitOnly)
{
    auto p = make(emit(cInt(42)));
    RunStats st;
    auto out = p->runBytes({}, &st);
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{42}));
    EXPECT_TRUE(st.halted);
}

TEST(Exec, TakeEmitIncrement)
{
    // seq { x <- take; emit (x+1) }  (runs once, then halts)
    VarRef x = freshVar("x", Type::int32());
    auto p = make(seqc({bindc(x, take(Type::int32())),
                        just(emit(var(x) + 1))}));
    RunStats st;
    auto out = p->runBytes(fromInts({10, 20, 30}), &st);
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{11}));
    EXPECT_EQ(st.consumed, 1u);
    EXPECT_TRUE(st.halted);
}

TEST(Exec, RepeatTransformsWholeStream)
{
    VarRef x = freshVar("x", Type::int32());
    auto p = make(repeatc(seqc({bindc(x, take(Type::int32())),
                                just(emit(var(x) * 2))})));
    RunStats st;
    auto out = p->runBytes(fromInts({1, 2, 3, 4}), &st);
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{2, 4, 6, 8}));
    EXPECT_FALSE(st.halted);
    EXPECT_EQ(st.consumed, 4u);
}

TEST(Exec, PipeComposition)
{
    VarRef x = freshVar("x", Type::int32());
    VarRef y = freshVar("y", Type::int32());
    CompPtr inc = repeatc(seqc({bindc(x, take(Type::int32())),
                                just(emit(var(x) + 1))}));
    CompPtr dbl = repeatc(seqc({bindc(y, take(Type::int32())),
                                just(emit(var(y) * 2))}));
    auto p = make(pipe(std::move(inc), std::move(dbl)));
    auto out = p->runBytes(fromInts({1, 2, 3}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{4, 6, 8}));
}

TEST(Exec, SeqReconfiguresPipelineOnControlValue)
{
    // The paper's signature pattern: a header decoder returning a control
    // value that parameterizes the payload decoder.
    VarRef h = freshVar("h", Type::int32());
    VarRef x = freshVar("x", Type::int32());
    CompPtr program = seqc(
        {bindc(h, take(Type::int32())),  // "header": the scale factor
         just(repeatc(seqc({bindc(x, take(Type::int32())),
                            just(emit(var(x) * var(h)))})))});
    auto p = make(program);
    auto out = p->runBytes(fromInts({5, 1, 2, 3}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{5, 10, 15}));
}

TEST(Exec, ComputerConsumesExactlyWhatItNeeds)
{
    // seq { c1; c2 }: c1 takes 2 elements; c2 must see the rest.
    VarRef a = freshVar("a", Type::int32());
    VarRef b = freshVar("b", Type::int32());
    VarRef x = freshVar("x", Type::int32());
    CompPtr c1 = seqc({bindc(a, take(Type::int32())),
                       bindc(b, take(Type::int32())),
                       just(emit(var(a) + var(b)))});
    CompPtr c2 = repeatc(seqc({bindc(x, take(Type::int32())),
                               just(emit(var(x)))}));
    auto p = make(seqc({just(std::move(c1)), just(std::move(c2))}));
    auto out = p->runBytes(fromInts({1, 2, 100, 200}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{3, 100, 200}));
}

TEST(Exec, EmitsAndTakeMany)
{
    // takes 4 ints as an array, emit them reversed via emits.
    VarRef a = freshVar("a", Type::array(Type::int32(), 4));
    auto p = make(repeatc(seqc(
        {bindc(a, takes(Type::int32(), 4)),
         just(emits(arrayLit({idx(var(a), 3), idx(var(a), 2),
                              idx(var(a), 1), idx(var(a), 0)})))})));
    auto out = p->runBytes(fromInts({1, 2, 3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{4, 3, 2, 1, 8, 7, 6, 5}));
}

TEST(Exec, MapNode)
{
    VarRef x = freshVar("x", Type::int32());
    FunRef f = fun("sq", {x}, {}, var(x) * var(x));
    auto p = make(mapc(f));
    auto out = p->runBytes(fromInts({1, 2, 3, 4}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{1, 4, 9, 16}));
}

TEST(Exec, FilterNode)
{
    VarRef x = freshVar("x", Type::int32());
    FunRef p_ = fun("nonzero", {x}, {}, var(x) != 0);
    auto p = make(filterc(p_));
    auto out = p->runBytes(fromInts({0, 5, 0, 7, 0}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{5, 7}));
}

TEST(Exec, FilterViaRepeatConditionalEmit)
{
    // The paper's example: filter zeros with repeat + if.
    VarRef x = freshVar("x", Type::int32());
    auto p = make(repeatc(
        seqc({bindc(x, take(Type::int32())),
              just(ifc(var(x) == 0, ret(cUnit()), emit(var(x))))})));
    auto out = p->runBytes(fromInts({0, 3, 0, 9}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{3, 9}));
}

TEST(Exec, TimesRepeatsBody)
{
    VarRef i = freshVar("i", Type::int32());
    auto p = make(timesc(cInt(5), i, emit(var(i) * 10)));
    RunStats st;
    auto out = p->runBytes({}, &st);
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{0, 10, 20, 30, 40}));
    EXPECT_TRUE(st.halted);
}

TEST(Exec, TimesZeroIterations)
{
    VarRef i = freshVar("i", Type::int32());
    auto p = make(timesc(cInt(0), i, emit(var(i))));
    RunStats st;
    auto out = p->runBytes({}, &st);
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(st.halted);
}

TEST(Exec, WhileLoop)
{
    // var n := 0 in while (n < 3) { emit n; n := n+1 }
    VarRef n = freshVar("n", Type::int32());
    auto p = make(letvar(
        n, cInt(0),
        whilec(var(n) < 3, seqc({just(emit(var(n))),
                                 just(doS({assign(var(n),
                                                  var(n) + 1)}))}))));
    auto out = p->runBytes({});
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{0, 1, 2}));
}

TEST(Exec, LetVarStatePersistsAcrossRepeatIterations)
{
    // Running sum: state outside the repeat persists.
    VarRef s = freshVar("s", Type::int32());
    VarRef x = freshVar("x", Type::int32());
    auto p = make(letvar(
        s, cInt(0),
        repeatc(seqc({bindc(x, take(Type::int32())),
                      just(doS({assign(var(s), var(s) + var(x))})),
                      just(emit(var(s)))}))));
    auto out = p->runBytes(fromInts({1, 2, 3, 4}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{1, 3, 6, 10}));
}

TEST(Exec, LetVarInsideRepeatReinitializedEachIteration)
{
    VarRef t = freshVar("t", Type::int32());
    VarRef x = freshVar("x", Type::int32());
    auto p = make(repeatc(letvar(
        t, cInt(100),
        seqc({bindc(x, take(Type::int32())),
              just(doS({assign(var(t), var(t) + var(x))})),
              just(emit(var(t)))}))));
    auto out = p->runBytes(fromInts({1, 2, 3}));
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{101, 102, 103}));
}

TEST(Exec, IfComputationBranches)
{
    VarRef x = freshVar("x", Type::int32());
    auto mkProgram = [&]() {
        VarRef y = freshVar("y", Type::int32());
        return seqc({bindc(y, take(Type::int32())),
                     just(ifc(var(y) > 0,
                              repeatc(seqc({bindc(x, take(Type::int32())),
                                            just(emit(var(x) + 1))})),
                              repeatc(seqc({bindc(x, take(Type::int32())),
                                            just(emit(var(x) - 1))}))))});
    };
    {
        auto p = make(mkProgram());
        auto out = p->runBytes(fromInts({1, 10, 20}));
        EXPECT_EQ(toInts(out), (std::vector<int32_t>{11, 21}));
    }
    {
        auto p = make(mkProgram());
        auto out = p->runBytes(fromInts({-1, 10, 20}));
        EXPECT_EQ(toInts(out), (std::vector<int32_t>{9, 19}));
    }
}

TEST(Exec, PipeHaltsWhenDownstreamComputerReturns)
{
    // t >>> c1 where c1 returns after 2 values: t must not over-consume
    // beyond what c1 needed (plus at most the element in flight).
    VarRef x = freshVar("x", Type::int32());
    VarRef a = freshVar("a", Type::int32());
    VarRef b = freshVar("b", Type::int32());
    CompPtr t = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x) * 2))}));
    CompPtr c1 = seqc({bindc(a, take(Type::int32())),
                       bindc(b, take(Type::int32())),
                       just(ret(var(a) + var(b)))});
    VarRef y = freshVar("y", Type::int32());
    CompPtr c2 = repeatc(seqc({bindc(y, take(Type::int32())),
                               just(emit(var(y)))}));
    VarRef s = freshVar("s", Type::int32());
    auto p = make(seqc({bindc(s, pipe(std::move(t), std::move(c1))),
                        just(seqc({just(emit(var(s))),
                                   just(std::move(c2))}))}));
    auto out = p->runBytes(fromInts({1, 2, 100, 200}));
    // c1 returns 1*2 + 2*2 = 6; then the remaining input flows through.
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{6, 100, 200}));
}

TEST(Exec, RepeatLivelockGuard)
{
    auto p = make(repeatc(ret(cUnit())));
    EXPECT_THROW(p->runBytes({}), FatalError);
}

TEST(Exec, RunStatsForComputerHaltingMidStream)
{
    // A computer that takes 2 of the 4 available elements, emits one,
    // and returns: RunStats must report the exact traffic plus the
    // control value bytes.
    VarRef a = freshVar("a", Type::int32());
    VarRef b = freshVar("b", Type::int32());
    auto p = make(seqc({bindc(a, take(Type::int32())),
                        bindc(b, take(Type::int32())),
                        just(emit(var(a) + var(b))),
                        just(ret(var(a) * 10))}));
    RunStats st;
    auto out = p->runBytes(fromInts({3, 4, 100, 200}), &st);
    EXPECT_EQ(toInts(out), (std::vector<int32_t>{7}));
    EXPECT_EQ(st.consumed, 2u);
    EXPECT_EQ(st.emitted, 1u);
    EXPECT_TRUE(st.halted);
    ASSERT_EQ(st.ctrl.size(), 4u);
    int32_t ctrl;
    std::memcpy(&ctrl, st.ctrl.data(), 4);
    EXPECT_EQ(ctrl, 30);
}

TEST(Exec, RunStatsForTransformerExhaustingInput)
{
    VarRef x = freshVar("x", Type::int32());
    auto p = make(repeatc(seqc({bindc(x, take(Type::int32())),
                                just(emit(var(x)))})));
    RunStats st;
    p->runBytes(fromInts({1, 2, 3, 4, 5, 6}), &st);
    EXPECT_EQ(st.consumed, 6u);
    EXPECT_EQ(st.emitted, 6u);
    EXPECT_FALSE(st.halted);
    EXPECT_TRUE(st.ctrl.empty());
}

TEST(Exec, RunStatsForTransformerWithMaxOut)
{
    // max_out cuts a 1-in/1-out transformer off exactly: consumed
    // tracks emitted, no halt is reported.
    VarRef x = freshVar("x", Type::int32());
    auto p = make(repeatc(seqc({bindc(x, take(Type::int32())),
                                just(emit(var(x) + 1))})));
    std::vector<int32_t> input(1000);
    for (size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<int32_t>(i);
    auto bytes = fromInts(input);
    MemSource src(bytes, 4);
    VecSink sink(4);
    RunStats st = p->run(src, sink, 10);
    EXPECT_EQ(st.emitted, 10u);
    EXPECT_EQ(st.consumed, 10u);
    EXPECT_FALSE(st.halted);
    EXPECT_EQ(sink.elems(), 10u);
}

TEST(Exec, CyclicSourceRejectsBufferShorterThanOneElement)
{
    // Regression: the wrap check reset pos_ but still read width_ bytes,
    // so a 2-byte buffer with 4-byte elements read past the end.
    std::vector<uint8_t> buf{1, 2};
    EXPECT_THROW(CyclicSource(buf, 4, 10), FatalError);
}

TEST(Exec, CyclicSourceWrapsWholeElements)
{
    // 8-byte buffer, 4-byte elements, 5 reads: wraps after 2 elements.
    auto bytes = fromInts({11, 22});
    CyclicSource src(bytes, 4, 5);
    std::vector<int32_t> got;
    while (const uint8_t* p = src.next()) {
        int32_t v;
        std::memcpy(&v, p, 4);
        got.push_back(v);
    }
    EXPECT_EQ(got, (std::vector<int32_t>{11, 22, 11, 22, 11}));
}

TEST(Exec, RunStopsAtMaxOut)
{
    VarRef n = freshVar("n", Type::int32());
    auto p = make(letvar(
        n, cInt(0),
        repeatc(seqc({just(doS({assign(var(n), var(n) + 1)})),
                      just(emit(var(n)))}))));
    NullSink sink;
    MemSource src(nullptr, 0, 0);
    RunStats st = p->run(src, sink, 1000);
    EXPECT_EQ(st.emitted, 1000u);
}

TEST(ExecThreaded, TwoStagePipelineMatchesSingleThread)
{
    auto mkProgram = [] {
        VarRef x = freshVar("x", Type::int32());
        VarRef y = freshVar("y", Type::int32());
        CompPtr inc = repeatc(seqc({bindc(x, take(Type::int32())),
                                    just(emit(var(x) + 1))}));
        CompPtr dbl = repeatc(seqc({bindc(y, take(Type::int32())),
                                    just(emit(var(y) * 2))}));
        return ppipe(std::move(inc), std::move(dbl));
    };
    std::vector<int32_t> input;
    for (int i = 0; i < 10000; ++i)
        input.push_back(i);

    auto p1 = make(mkProgram());
    auto single = p1->runBytes(fromInts(input));

    auto p2 = compileThreadedPipeline(
        mkProgram(), CompilerOptions::forLevel(OptLevel::None));
    std::vector<uint8_t> inBytes = fromInts(input);
    MemSource src2(inBytes, 4);
    VecSink sink(4);
    RunStats st = p2->run(src2, sink);
    EXPECT_EQ(st.consumed, input.size());
    EXPECT_EQ(sink.data(), single);
}

TEST(ExecThreaded, DownstreamComputerCancelsUpstream)
{
    // Second stage halts after 3 elements; the run must terminate.
    VarRef x = freshVar("x", Type::int32());
    CompPtr stage1 = repeatc(seqc({bindc(x, take(Type::int32())),
                                   just(emit(var(x)))}));
    VarRef a = freshVar("a", Type::int32());
    CompPtr stage2 = seqc({bindc(a, take(Type::int32())),
                           just(take(Type::int32())),
                           just(take(Type::int32())),
                           just(ret(var(a)))});
    auto p = compileThreadedPipeline(
        ppipe(std::move(stage1), std::move(stage2)),
        CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> input(100000, 7);
    std::vector<uint8_t> inBytes = fromInts(input);
    MemSource src(inBytes, 4);
    NullSink sink;
    RunStats st = p->run(src, sink);
    EXPECT_TRUE(st.halted);
}

TEST(Exec, OptimizedPipelineMatchesUnoptimized)
{
    auto mkProgram = [] {
        VarRef st = freshVar("st", Type::int32());
        VarRef x = freshVar("x", Type::int32());
        return letvar(
            st, cInt(1),
            repeatc(seqc({bindc(x, take(Type::int32())),
                          just(doS({assign(var(st),
                                           var(st) + var(x))})),
                          just(emit(var(st) ^ var(x)))})));
    };
    std::vector<int32_t> input;
    for (int i = 0; i < 256; ++i)
        input.push_back(i * 7 - 100);
    auto plain = make(mkProgram())->runBytes(fromInts(input));
    auto opt = make(mkProgram(), OptLevel::All)->runBytes(fromInts(input));
    EXPECT_EQ(plain, opt);
}

} // namespace
} // namespace ziria
