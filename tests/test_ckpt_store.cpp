/**
 * @file
 * Durable checkpoint store tests (ctest label `checkpoint`): the
 * crash-safe on-disk envelope (docs/ROBUSTNESS.md, "Durable
 * checkpoints & live migration") under hostile conditions — truncated
 * files, CRC mismatches, bit-flipped headers, out-of-order
 * generations, a concurrent writer's leftover tmp file — every one of
 * which must quarantine and fall back, never crash.  Plus the solo
 * crash-resume property in-process: a run killed mid-stream (simulated
 * by a throwing sink) resumes from the newest valid generation with
 * byte-identical concatenated output on both the vm and fused
 * backends.
 */
#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/metrics.h"
#include "support/rng.h"
#include "zexec/ckpt_store.h"
#include "zexec/pipeline.h"
#include "zir/compiler.h"
#include "zparse/parser.h"

namespace ziria {
namespace {

/** The paper's Figure 3 scrambler — 7 bits of state per element. */
const char* kScramblerSrc = R"(
let comp scrambler() =
    var scrmbl_st : arr[7] bit := {'1,'1,'1,'1,'1,'1,'1} in
    repeat {
        seq { (x : bit) <- take : bit
            ; (tmp : bit) <- return (scrmbl_st[3] ^ scrmbl_st[0])
            ; do { scrmbl_st[0, 6] := scrmbl_st[1, 6];
                   scrmbl_st[6] := tmp; }
            ; emit (x ^ tmp)
            }
    }

scrambler()
)";

uint64_t
ctrValue(const char* name)
{
    return metrics::Registry::global().counter(name).value();
}

/** A scratch store directory unique to this process and test. */
std::string
scratchDir(const char* tag)
{
    static int seq = 0;
    return std::string("/tmp/ziria_test_ckpt_store.") +
           std::to_string(::getpid()) + "." + tag + "." +
           std::to_string(seq++);
}

/** Recursive best-effort rm -rf for the scratch dirs above. */
void
nukeDir(const std::string& path)
{
    DIR* d = ::opendir(path.c_str());
    if (!d) {
        ::unlink(path.c_str());
        return;
    }
    while (struct dirent* e = ::readdir(d)) {
        std::string n = e->d_name;
        if (n == "." || n == "..")
            continue;
        nukeDir(path + "/" + n);
    }
    ::closedir(d);
    ::rmdir(path.c_str());
}

std::string
keyDir(const CkptStore& store, const std::string& key)
{
    return store.dir() + "/v1/" + key;
}

/** Names in @p dir ending with @p suffix (no dot-entries). */
std::vector<std::string>
listSuffix(const std::string& dir, const std::string& suffix)
{
    std::vector<std::string> out;
    DIR* d = ::opendir(dir.c_str());
    if (!d)
        return out;
    while (struct dirent* e = ::readdir(d)) {
        std::string n = e->d_name;
        if (n.size() >= suffix.size() &&
            n.compare(n.size() - suffix.size(), suffix.size(), suffix) == 0)
            out.push_back(n);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<uint8_t>
readFile(const std::string& path)
{
    std::vector<uint8_t> out;
    FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    std::fclose(f);
    return out;
}

void
writeFile(const std::string& path, const std::vector<uint8_t>& bytes)
{
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

/** Build a valid ZDK1 envelope around @p payload (the store's layout). */
std::vector<uint8_t>
makeEnvelope(const std::vector<uint8_t>& payload)
{
    std::vector<uint8_t> env;
    auto putU32 = [&](uint32_t v) {
        for (int i = 0; i < 4; ++i)
            env.push_back(static_cast<uint8_t>(v >> (8 * i)));
    };
    putU32(kCkptFileMagic);
    putU32(kCkptFileVersion);
    uint64_t len = payload.size();
    for (int i = 0; i < 8; ++i)
        env.push_back(static_cast<uint8_t>(len >> (8 * i)));
    putU32(crc32Ieee(payload.data(), payload.size()));
    env.insert(env.end(), payload.begin(), payload.end());
    return env;
}

std::string
genName(uint64_t gen)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "ckpt-%016llx.zck",
                  static_cast<unsigned long long>(gen));
    return buf;
}

std::vector<uint8_t>
bytesOf(const char* s)
{
    return std::vector<uint8_t>(s, s + std::strlen(s));
}

// ------------------------------------------------------- happy path

TEST(CkptStore, SaveLoadRoundTripBumpsCounters)
{
    std::string dir = scratchDir("roundtrip");
    CkptStore store(dir);
    uint64_t saved0 = ctrValue("ziria.ckpt.disk.saved");
    uint64_t loaded0 = ctrValue("ziria.ckpt.disk.loaded");

    std::vector<uint8_t> payload = bytesOf("hello durable world");
    std::string err;
    ASSERT_TRUE(store.save("k1", payload, &err)) << err;
    EXPECT_EQ(ctrValue("ziria.ckpt.disk.saved"), saved0 + 1);

    std::vector<uint8_t> got;
    ASSERT_TRUE(store.load("k1", got, &err)) << err;
    EXPECT_EQ(got, payload);
    EXPECT_EQ(ctrValue("ziria.ckpt.disk.loaded"), loaded0 + 1);

    // No stray tmp files survive a clean save.
    EXPECT_TRUE(listSuffix(keyDir(store, "k1"), ".tmp").empty());
    nukeDir(dir);
}

TEST(CkptStore, LoadOfMissingKeyIsAFreshStart)
{
    std::string dir = scratchDir("missing");
    CkptStore store(dir);
    std::vector<uint8_t> got;
    std::string err;
    EXPECT_FALSE(store.load("never-saved", got, &err));
    nukeDir(dir);
}

TEST(CkptStore, InvalidKeysAreRejected)
{
    EXPECT_FALSE(CkptStore::validKey(""));
    EXPECT_FALSE(CkptStore::validKey(".dotfirst"));
    EXPECT_FALSE(CkptStore::validKey("has space"));
    EXPECT_FALSE(CkptStore::validKey("slash/attack"));
    EXPECT_FALSE(CkptStore::validKey("..traversal"));
    EXPECT_FALSE(CkptStore::validKey(std::string(65, 'a')));
    EXPECT_TRUE(CkptStore::validKey("ok-key_1.2"));
    EXPECT_TRUE(CkptStore::validKey(std::string(64, 'a')));
}

TEST(CkptStore, RetentionWindowGcsOldestGenerations)
{
    std::string dir = scratchDir("gc");
    CkptStore store(dir);
    uint64_t gc0 = ctrValue("ziria.ckpt.disk.gc");

    for (int i = 0; i < 7; ++i) {
        std::vector<uint8_t> payload = bytesOf("gen payload");
        payload.push_back(static_cast<uint8_t>(i));
        ASSERT_TRUE(store.save("k", payload));
    }
    std::vector<std::string> kept = listSuffix(keyDir(store, "k"), ".zck");
    EXPECT_EQ(kept.size(), kCkptRetainGenerations);
    EXPECT_EQ(ctrValue("ziria.ckpt.disk.gc"),
              gc0 + (7 - kCkptRetainGenerations));

    // The survivor set is the newest window and load returns its top.
    std::vector<uint8_t> got;
    ASSERT_TRUE(store.load("k", got));
    EXPECT_EQ(got.back(), 6);
    nukeDir(dir);
}

TEST(CkptStore, RemoveDropsEveryGeneration)
{
    std::string dir = scratchDir("remove");
    CkptStore store(dir);
    ASSERT_TRUE(store.save("k", bytesOf("a")));
    ASSERT_TRUE(store.save("k", bytesOf("b")));
    store.remove("k");
    std::vector<uint8_t> got;
    EXPECT_FALSE(store.load("k", got));
    EXPECT_TRUE(listSuffix(keyDir(store, "k"), ".zck").empty());
    nukeDir(dir);
}

// -------------------------------------------------- hostile on-disk

TEST(CkptStore, TruncatedNewestQuarantinesAndFallsBack)
{
    std::string dir = scratchDir("truncate");
    CkptStore store(dir);
    uint64_t q0 = ctrValue("ziria.ckpt.disk.quarantined");
    ASSERT_TRUE(store.save("k", bytesOf("older but intact")));
    ASSERT_TRUE(store.save("k", bytesOf("newest, soon truncated")));

    std::string kd = keyDir(store, "k");
    std::string newest = kd + "/" + listSuffix(kd, ".zck").back();
    std::vector<uint8_t> file = readFile(newest);
    ASSERT_GT(file.size(), 8u);
    file.resize(file.size() / 2);  // mid-payload truncation
    writeFile(newest, file);

    std::vector<uint8_t> got;
    ASSERT_TRUE(store.load("k", got));
    EXPECT_EQ(got, bytesOf("older but intact"));
    EXPECT_EQ(ctrValue("ziria.ckpt.disk.quarantined"), q0 + 1);
    EXPECT_EQ(listSuffix(kd, ".bad").size(), 1u);
    nukeDir(dir);
}

TEST(CkptStore, BitFlippedBodyFailsCrcAndFallsBack)
{
    std::string dir = scratchDir("crc");
    CkptStore store(dir);
    uint64_t q0 = ctrValue("ziria.ckpt.disk.quarantined");
    ASSERT_TRUE(store.save("k", bytesOf("good generation")));
    ASSERT_TRUE(store.save("k", bytesOf("about to be flipped")));

    std::string kd = keyDir(store, "k");
    std::string newest = kd + "/" + listSuffix(kd, ".zck").back();
    std::vector<uint8_t> file = readFile(newest);
    ASSERT_GT(file.size(), 21u);
    file[20] ^= 0x40;  // one bit inside the payload body
    writeFile(newest, file);

    std::vector<uint8_t> got;
    ASSERT_TRUE(store.load("k", got));
    EXPECT_EQ(got, bytesOf("good generation"));
    EXPECT_EQ(ctrValue("ziria.ckpt.disk.quarantined"), q0 + 1);
    nukeDir(dir);
}

TEST(CkptStore, BadMagicQuarantines)
{
    std::string dir = scratchDir("magic");
    CkptStore store(dir);
    uint64_t q0 = ctrValue("ziria.ckpt.disk.quarantined");
    ASSERT_TRUE(store.save("k", bytesOf("survivor")));
    ASSERT_TRUE(store.save("k", bytesOf("victim")));

    std::string kd = keyDir(store, "k");
    std::string newest = kd + "/" + listSuffix(kd, ".zck").back();
    std::vector<uint8_t> file = readFile(newest);
    file[0] ^= 0xFF;  // header bit-flip: wrong magic
    writeFile(newest, file);

    std::vector<uint8_t> got;
    ASSERT_TRUE(store.load("k", got));
    EXPECT_EQ(got, bytesOf("survivor"));
    EXPECT_EQ(ctrValue("ziria.ckpt.disk.quarantined"), q0 + 1);
    nukeDir(dir);
}

TEST(CkptStore, EveryGenerationCorruptMeansFreshStartNotCrash)
{
    std::string dir = scratchDir("allbad");
    CkptStore store(dir);
    uint64_t q0 = ctrValue("ziria.ckpt.disk.quarantined");
    ASSERT_TRUE(store.save("k", bytesOf("one")));
    ASSERT_TRUE(store.save("k", bytesOf("two")));

    std::string kd = keyDir(store, "k");
    for (const std::string& n : listSuffix(kd, ".zck")) {
        std::vector<uint8_t> file = readFile(kd + "/" + n);
        file.resize(4);  // short envelope
        writeFile(kd + "/" + n, file);
    }
    std::vector<uint8_t> got;
    std::string err;
    EXPECT_FALSE(store.load("k", got, &err));
    EXPECT_EQ(ctrValue("ziria.ckpt.disk.quarantined"), q0 + 2);
    EXPECT_EQ(listSuffix(kd, ".bad").size(), 2u);

    // The key is usable again: a fresh save starts a new lineage.
    ASSERT_TRUE(store.save("k", bytesOf("reborn")));
    ASSERT_TRUE(store.load("k", got));
    EXPECT_EQ(got, bytesOf("reborn"));
    nukeDir(dir);
}

TEST(CkptStore, NumericGenerationOrderBeatsDirectoryOrder)
{
    std::string dir = scratchDir("order");
    CkptStore store(dir);
    ASSERT_TRUE(store.save("k", bytesOf("seed lineage")));
    std::string kd = keyDir(store, "k");

    // Hand-plant valid generations out of creation order: an old gen 2
    // written AFTER a newer gen 23 must still lose to it.
    writeFile(kd + "/" + genName(23), makeEnvelope(bytesOf("newest")));
    writeFile(kd + "/" + genName(2), makeEnvelope(bytesOf("stale")));

    std::vector<uint8_t> got;
    ASSERT_TRUE(store.load("k", got));
    EXPECT_EQ(got, bytesOf("newest"));

    // And the next save continues numerically past the top.
    ASSERT_TRUE(store.save("k", bytesOf("next")));
    ASSERT_TRUE(store.load("k", got));
    EXPECT_EQ(got, bytesOf("next"));
    std::vector<std::string> names = listSuffix(kd, ".zck");
    EXPECT_NE(std::find(names.begin(), names.end(), genName(24)),
              names.end());
    nukeDir(dir);
}

TEST(CkptStore, ConcurrentWriterTmpFileIsIgnored)
{
    std::string dir = scratchDir("tmp");
    CkptStore store(dir);
    ASSERT_TRUE(store.save("k", bytesOf("real checkpoint")));
    std::string kd = keyDir(store, "k");

    // A crashed (or still-running) writer's tmp sibling: garbage bytes,
    // never renamed into place.  Scans must skip it entirely.
    std::string tmp = kd + "/.tmp-99999-" + genName(7);
    writeFile(tmp, bytesOf("partial garbage write"));

    uint64_t q0 = ctrValue("ziria.ckpt.disk.quarantined");
    std::vector<uint8_t> got;
    ASSERT_TRUE(store.load("k", got));
    EXPECT_EQ(got, bytesOf("real checkpoint"));
    EXPECT_EQ(ctrValue("ziria.ckpt.disk.quarantined"), q0);

    // Saving alongside it works and leaves the foreign tmp alone.
    ASSERT_TRUE(store.save("k", bytesOf("second")));
    EXPECT_FALSE(readFile(tmp).empty());
    nukeDir(dir);
}

// ------------------------------------------- solo crash-resume, e2e

/** Collects output and throws once a byte budget is reached — the
 *  in-process stand-in for kill -9 mid-run. */
class CrashingSink : public OutputSink
{
  public:
    CrashingSink(size_t width, size_t crashAfterBytes)
        : width_(width), budget_(crashAfterBytes)
    {
    }

    void
    put(const uint8_t* elem) override
    {
        data_.insert(data_.end(), elem, elem + width_);
        if (data_.size() >= budget_)
            throw std::runtime_error("simulated crash");
    }

    const std::vector<uint8_t>& data() const { return data_; }

  private:
    size_t width_;
    size_t budget_;
    std::vector<uint8_t> data_;
};

void
durableResumeByteIdentity(Backend backend)
{
    CompPtr program = parseComp(kScramblerSrc);
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.backend = backend;
    opt.checkpoint.interval = 64;

    Rng rng(7);
    std::vector<uint8_t> input(4096);
    for (auto& b : input)
        b = rng.bit();

    // Fault-free reference.
    auto clean = compilePipeline(program, opt, nullptr);
    std::vector<uint8_t> expect = clean->runBytes(input);

    std::string dir = scratchDir(backend == Backend::Fused ? "resume-fused"
                                                           : "resume-vm");
    CkptStore store(dir);
    const std::string key = "solo-resume";

    // "Crash" run: the sink dies mid-stream, past several cadences.
    auto p1 = compilePipeline(program, opt, nullptr);
    p1->setDurable(&store, key);
    const size_t inW = p1->inWidth();
    const size_t outW = p1->outWidth();
    MemSource src1(input, inW);
    CrashingSink sink1(outW, 1500 * outW);
    EXPECT_THROW(p1->run(src1, sink1), std::runtime_error);

    // The durable generation survived the crash.
    std::vector<uint8_t> peek;
    ASSERT_TRUE(store.load(key, peek));

    // Resume in a fresh process image: new pipeline, restore, feed the
    // input past the restored consumed count, truncate the first run's
    // output to the restored emitted count, concatenate.
    auto p2 = compilePipeline(program, opt, nullptr);
    p2->setDurable(&store, key);
    uint64_t consumed = 0, emitted = 0;
    ASSERT_TRUE(p2->restoreDurable(consumed, emitted));
    ASSERT_LE(consumed * inW, input.size());
    ASSERT_LE(emitted * outW, sink1.data().size());

    MemSource src2(input.data() + consumed * inW,
                   input.size() - consumed * inW, inW);
    VecSink sink2(outW);
    p2->run(src2, sink2);

    std::vector<uint8_t> got(sink1.data().begin(),
                             sink1.data().begin() +
                                 static_cast<long>(emitted * outW));
    got.insert(got.end(), sink2.data().begin(), sink2.data().end());
    EXPECT_EQ(got, expect) << "resumed output diverged ("
                           << (backend == Backend::Fused ? "fused" : "vm")
                           << ")";

    // Orderly completion retired the key: no stale resume next start.
    std::vector<uint8_t> after;
    EXPECT_FALSE(store.load(key, after));
    nukeDir(dir);
}

TEST(DurableResume, ByteIdenticalAfterCrashVm)
{
    durableResumeByteIdentity(Backend::Vm);
}

TEST(DurableResume, ByteIdenticalAfterCrashFused)
{
    durableResumeByteIdentity(Backend::Fused);
}

} // namespace
} // namespace ziria
