/**
 * @file
 * Tests for the auto-map pass, map fusion, and end-to-end auto-LUT —
 * including the paper's Figure 3 synergy: vectorize -> auto-map ->
 * auto-LUT on a scrambler.
 */
#include <gtest/gtest.h>

#include "support/rng.h"
#include "zast/builder.h"
#include "zcheck/check.h"
#include "zir/compiler.h"
#include "zopt/passes.h"

namespace ziria {
namespace {

using namespace zb;

CompPtr
incThenDouble()
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr inc = repeatc(seqc({bindc(x, take(Type::int32())),
                                just(emit(var(x) + 1))}));
    VarRef y = freshVar("y", Type::int32());
    CompPtr dbl = repeatc(seqc({bindc(y, take(Type::int32())),
                                just(emit(var(y) * 2))}));
    return pipe(std::move(inc), std::move(dbl));
}

std::vector<uint8_t>
intsBytes(int n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> xs(n);
    for (auto& x : xs)
        x = static_cast<int32_t>(rng.next());
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

TEST(AutoMap, ConvertsRepeatTakeEmit)
{
    CompPtr c = elaborateComp(incThenDouble());
    checkComp(c);
    MapStats ms;
    CompPtr mapped = autoMapComp(c, &ms);
    EXPECT_EQ(ms.autoMapped, 2);
    // After fusion the pipe collapses to a single map.
    checkComp(mapped);
    MapStats fs;
    CompPtr fused = fuseMaps(mapped, &fs);
    EXPECT_EQ(fs.fused, 1);
    EXPECT_EQ(fused->kind(), CompKind::Map);
}

TEST(AutoMap, PreservesSemantics)
{
    auto input = intsBytes(500, 9);
    auto plain = compilePipeline(
        incThenDouble(), CompilerOptions::forLevel(OptLevel::None));
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.autoMap = true;
    opt.fuse = true;
    auto mapped = compilePipeline(incThenDouble(), opt);
    EXPECT_EQ(plain->runBytes(input), mapped->runBytes(input));
}

TEST(AutoMap, StatefulKernelKeepsStateAcrossElements)
{
    auto mk = []() -> CompPtr {
        VarRef s = freshVar("s", Type::int32());
        VarRef x = freshVar("x", Type::int32());
        return letvar(
            s, cInt(0),
            repeatc(seqc({bindc(x, take(Type::int32())),
                          just(doS({assign(var(s), var(s) + var(x))})),
                          just(emit(var(s)))})));
    };
    auto input = intsBytes(300, 11);
    auto plain = compilePipeline(
        mk(), CompilerOptions::forLevel(OptLevel::None));
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.autoMap = true;
    auto mapped = compilePipeline(mk(), opt);
    EXPECT_EQ(plain->runBytes(input), mapped->runBytes(input));
}

TEST(AutoMap, DoAfterEmitIsStagedCorrectly)
{
    // emit uses the state *before* the trailing update.
    auto mk = []() -> CompPtr {
        VarRef s = freshVar("s", Type::int32());
        VarRef x = freshVar("x", Type::int32());
        return letvar(
            s, cInt(100),
            repeatc(seqc({bindc(x, take(Type::int32())),
                          just(emit(var(s) + var(x))),
                          just(doS({assign(var(s),
                                           var(s) + 1)}))})));
    };
    auto input = intsBytes(50, 13);
    auto plain = compilePipeline(
        mk(), CompilerOptions::forLevel(OptLevel::None));
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.autoMap = true;
    MapStats ms;
    CompPtr mapped = autoMapComp(foldComp(elaborateComp(mk())), &ms);
    EXPECT_EQ(ms.autoMapped, 1);
    auto mappedP = compilePipeline(mk(), opt);
    EXPECT_EQ(plain->runBytes(input), mappedP->runBytes(input));
}

/** Scrambler-like block used for the Figure 3 chain. */
CompPtr
scramblerLike()
{
    VarRef st = freshVar("scrmbl_st", Type::array(Type::bit(), 7));
    VarRef x = freshVar("x", Type::bit());
    VarRef tmp = freshVar("tmp", Type::bit());
    return letvar(
        st, bitArrayLit({1, 1, 1, 1, 1, 1, 1}),
        repeatc(seqc(
            {bindc(x, take(Type::bit())),
             just(doS({sDecl(tmp, idx(var(st), 3) ^ idx(var(st), 0)),
                       assign(slice(var(st), 0, 6),
                              slice(var(st), 1, 6)),
                       assign(idx(var(st), 6), var(tmp))})),
             just(emit(var(x) ^ var(tmp)))})));
}

TEST(Figure3, VectorizeAutoMapAutoLutChain)
{
    // The paper's showcase: the vectorized scrambler auto-maps into a
    // kernel of 8 input bits + 7 state bits and LUTs into 2^15 entries.
    Rng rng(77);
    std::vector<uint8_t> input(4096);
    for (auto& b : input)
        b = rng.bit();

    auto plain = compilePipeline(
        scramblerLike(), CompilerOptions::forLevel(OptLevel::None));
    auto expect = plain->runBytes(input);

    CompilerOptions all = CompilerOptions::forLevel(OptLevel::All);
    all.vect.maxScale = 8;  // force the classic 8-bit grouping
    CompileReport rep;
    auto optd = compilePipeline(scramblerLike(), all, &rep);
    EXPECT_EQ(optd->runBytes(input), expect);
    EXPECT_GE(rep.maps.autoMapped, 1);
    EXPECT_GE(rep.build.lutsBuilt, 1) << "scrambler kernel did not LUT";
}

TEST(Figure3, LutKeyIsInputPlusState)
{
    CompilerOptions all = CompilerOptions::forLevel(OptLevel::All);
    all.vect.maxScale = 8;
    CompileReport rep;
    auto p = compilePipeline(scramblerLike(), all, &rep);
    (void)p;
    ASSERT_GE(rep.build.lutsBuilt, 1);
    // 8 input bits + 7 state bits = 2^15 entries; each entry holds the
    // packed 8-bit output and the packed 7-bit state.
    EXPECT_EQ(rep.build.lutBytes, (size_t{1} << 15) * 2);
}

TEST(AutoLut, DisabledByNoLutAnnotation)
{
    VarRef x = freshVar("x", Type::array(Type::bit(), 8));
    std::vector<ExprPtr> outs;
    for (int i = 0; i < 8; ++i)
        outs.push_back(idx(var(x), 7 - i));
    auto f = std::const_pointer_cast<FunDef>(
        fun("revbits", {x}, {}, arrayLit(std::move(outs))));
    f->noLut = true;

    CompilerOptions all = CompilerOptions::forLevel(OptLevel::All);
    all.vectorize = false;
    all.autoMap = false;
    CompileReport rep;
    auto p = compilePipeline(mapc(f), all, &rep);
    (void)p;
    EXPECT_EQ(rep.build.lutsBuilt, 0);
}

TEST(AutoLut, PureMapKernelLuts)
{
    VarRef x = freshVar("x", Type::array(Type::bit(), 8));
    std::vector<ExprPtr> outs;
    for (int i = 0; i < 8; ++i)
        outs.push_back(idx(var(x), 7 - i));
    FunRef f = fun("revbits", {x}, {}, arrayLit(std::move(outs)));

    CompilerOptions all = CompilerOptions::forLevel(OptLevel::All);
    all.vectorize = false;
    all.autoMap = false;
    CompileReport rep;
    auto p = compilePipeline(mapc(f), all, &rep);
    EXPECT_EQ(rep.build.lutsBuilt, 1);

    Rng rng(5);
    std::vector<uint8_t> input(160);
    for (auto& b : input)
        b = rng.bit();
    auto noLut = CompilerOptions::forLevel(OptLevel::None);
    VarRef x2 = freshVar("x", Type::array(Type::bit(), 8));
    std::vector<ExprPtr> outs2;
    for (int i = 0; i < 8; ++i)
        outs2.push_back(idx(var(x2), 7 - i));
    FunRef f2 = fun("revbits", {x2}, {}, arrayLit(std::move(outs2)));
    auto q = compilePipeline(mapc(f2), noLut);
    EXPECT_EQ(p->runBytes(input), q->runBytes(input));
}

TEST(AutoMap, SingleElementTakesKeepsInputWired)
{
    // Regression: `bind a <- takes(bit, 1)` normalizes to a take whose
    // destination is the lvalue a[0] rather than a bind variable.
    // Auto-map used to drop that connection, leaving the kernel reading
    // a zero-initialized scratch array, so unvectorized auto-map runs
    // emitted a constant stream.  (Vectorized compiles masked the bug
    // because the vectorizer rewrites takes-into binds first.)
    auto mkStage = [] {
        VarRef st = freshVar("st", Type::bit());
        VarRef a = freshVar("a", Type::array(Type::bit(), 1));
        std::vector<SeqComp::Item> items;
        items.push_back(bindc(a, takes(Type::bit(), 1)));
        StmtList upd;
        upd.push_back(assign(var(st), var(st) ^ idx(var(a), 0)));
        items.push_back(just(doS(std::move(upd))));
        items.push_back(
            just(emits(arrayLit({idx(var(a), 0) ^ var(st)}))));
        return letvar(st, cBit(0), repeatc(seqc(std::move(items))));
    };
    Rng rng(31);
    std::vector<uint8_t> input(96);
    for (auto& b : input)
        b = rng.bit();
    auto base = compilePipeline(mkStage(),
                                CompilerOptions::forLevel(OptLevel::None))
                    ->runBytes(input);
    CompilerOptions amapOnly = CompilerOptions::forLevel(OptLevel::None);
    amapOnly.autoMap = true;
    CompileReport rep;
    auto p = compilePipeline(mkStage(), amapOnly, &rep);
    EXPECT_EQ(rep.maps.autoMapped, 1);
    EXPECT_EQ(p->runBytes(input), base);
}

TEST(Fusion, LongMapChainCollapses)
{
    CompPtr c = nullptr;
    for (int i = 0; i < 6; ++i) {
        VarRef x = freshVar("x", Type::int32());
        FunRef f = fun("inc" + std::to_string(i), {x}, {}, var(x) + 1);
        CompPtr m = mapc(f);
        c = c ? pipe(std::move(c), std::move(m)) : m;
    }
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.fuse = true;
    CompileReport rep;
    auto p = compilePipeline(c, opt, &rep);
    EXPECT_EQ(rep.maps.fused, 5);
    auto input = intsBytes(100, 21);
    std::vector<int32_t> in(100);
    std::memcpy(in.data(), input.data(), 400);
    auto out = p->runBytes(input);
    std::vector<int32_t> got(100);
    std::memcpy(got.data(), out.data(), 400);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(got[i], in[i] + 6);
}

} // namespace
} // namespace ziria
