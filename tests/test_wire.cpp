/**
 * @file
 * Wire-protocol tests (ctest label `serve`): frame codec round trips,
 * incremental parsing across arbitrary split points, rejection of
 * malformed input (bad magic, unknown type, non-zero flags, oversized
 * length, truncation), seeded mutation fuzzing of valid streams, and
 * the one-frame-per-datagram UDP codec.
 *
 * The parser's contract under test: errors are *sticky* (a desync on a
 * stream socket is unrecoverable, so the parser never resynchronizes),
 * a hostile length field can never force a large allocation, and any
 * byte stream — valid, mutated, or pure garbage — terminates in either
 * NeedMore or Error without crashing.
 */
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.h"
#include "zserve/wire.h"

namespace ziria {
namespace serve {
namespace {

std::vector<uint8_t>
bytes(std::initializer_list<int> v)
{
    std::vector<uint8_t> out;
    for (int x : v)
        out.push_back(static_cast<uint8_t>(x));
    return out;
}

/** Feed a whole buffer and pull every frame until NeedMore/Error. */
FrameParser::Result
pullAll(FrameParser& p, const std::vector<uint8_t>& wire,
        std::vector<Frame>* frames = nullptr)
{
    p.feed(wire.data(), wire.size());
    Frame f;
    for (;;) {
        FrameParser::Result r = p.next(f);
        if (r != FrameParser::Result::Frame)
            return r;
        if (frames)
            frames->push_back(f);
    }
}

// ------------------------------------------------------------ encoding

TEST(Wire, HeaderLayoutIsExact)
{
    std::vector<uint8_t> wire;
    std::vector<uint8_t> payload = bytes({0xAA, 0xBB, 0xCC});
    encodeFrame(wire, FrameType::Data, payload);
    ASSERT_EQ(wire.size(), kHeaderBytes + 3);
    EXPECT_EQ(wire[0], kMagic0);  // 'Z'
    EXPECT_EQ(wire[1], kMagic1);  // 'S'
    EXPECT_EQ(wire[2], static_cast<uint8_t>(FrameType::Data));
    EXPECT_EQ(wire[3], 0u);  // flags must be 0 in version 1
    EXPECT_EQ(wire[4], 3u);  // u32le length
    EXPECT_EQ(wire[5], 0u);
    EXPECT_EQ(wire[6], 0u);
    EXPECT_EQ(wire[7], 0u);
    EXPECT_EQ(wire[8], 0xAA);
}

TEST(Wire, RoundTripEveryFrameType)
{
    const FrameType types[] = {FrameType::Hello, FrameType::Data,
                               FrameType::End, FrameType::Halt,
                               FrameType::Error};
    std::vector<uint8_t> wire;
    std::vector<uint8_t> payload;
    for (size_t i = 0; i < 5; ++i) {
        payload.assign(i * 7, static_cast<uint8_t>(0x40 + i));
        encodeFrame(wire, types[i], payload);
    }

    FrameParser p;
    std::vector<Frame> got;
    EXPECT_EQ(pullAll(p, wire, &got), FrameParser::Result::NeedMore);
    ASSERT_EQ(got.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(got[i].type, types[i]);
        EXPECT_EQ(got[i].payload.size(), i * 7);
    }
    EXPECT_FALSE(p.failed());
    EXPECT_FALSE(p.midFrame());
}

TEST(Wire, HelloRoundTrip)
{
    std::vector<uint8_t> wire;
    encodeHello(wire, 8, 48);
    FrameParser p;
    std::vector<Frame> got;
    pullAll(p, wire, &got);
    ASSERT_EQ(got.size(), 1u);
    ASSERT_EQ(got[0].type, FrameType::Hello);

    HelloInfo hi;
    ASSERT_TRUE(decodeHello(got[0].payload, hi));
    EXPECT_EQ(hi.version, kProtocolVersion);
    EXPECT_EQ(hi.inWidth, 8u);
    EXPECT_EQ(hi.outWidth, 48u);
}

TEST(Wire, HelloRejectsWrongSize)
{
    HelloInfo hi;
    EXPECT_FALSE(decodeHello(bytes({1, 0, 0}), hi));
    EXPECT_FALSE(decodeHello({}, hi));
    // 12 (legacy), 16 (greeting + cap) and 24 (resume ack) are the only
    // valid sizes.
    std::vector<uint8_t> odd(20, 0);
    EXPECT_FALSE(decodeHello(odd, hi));
    std::vector<uint8_t> tooLong(32, 0);
    EXPECT_FALSE(decodeHello(tooLong, hi));
}

TEST(Wire, ErrorFrameCarriesMessage)
{
    std::vector<uint8_t> wire;
    encodeError(wire, "queue on fire");
    FrameParser p;
    std::vector<Frame> got;
    pullAll(p, wire, &got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].type, FrameType::Error);
    EXPECT_EQ(std::string(got[0].payload.begin(), got[0].payload.end()),
              "queue on fire");
}

// ------------------------------------------- incremental stream parsing

TEST(Wire, ByteAtATimeDelivery)
{
    std::vector<uint8_t> wire;
    for (int k = 0; k < 4; ++k) {
        std::vector<uint8_t> payload(static_cast<size_t>(k) * 3 + 1,
                                     static_cast<uint8_t>(k));
        encodeFrame(wire, FrameType::Data, payload);
    }
    encodeFrame(wire, FrameType::End);

    FrameParser p;
    Frame f;
    size_t frames = 0;
    for (uint8_t b : wire) {
        p.feed(&b, 1);
        while (p.next(f) == FrameParser::Result::Frame)
            ++frames;
    }
    EXPECT_EQ(frames, 5u);
    EXPECT_FALSE(p.failed());
    EXPECT_FALSE(p.midFrame());
}

TEST(Wire, SplitAtEveryBoundary)
{
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::Data, bytes({1, 2, 3, 4, 5, 6, 7, 8}));
    encodeFrame(wire, FrameType::End);

    for (size_t cut = 0; cut <= wire.size(); ++cut) {
        FrameParser p;
        p.feed(wire.data(), cut);
        Frame f;
        size_t early = 0;
        while (p.next(f) == FrameParser::Result::Frame)
            ++early;
        p.feed(wire.data() + cut, wire.size() - cut);
        while (p.next(f) == FrameParser::Result::Frame)
            ++early;
        EXPECT_EQ(early, 2u) << "split at byte " << cut;
        EXPECT_FALSE(p.failed());
    }
}

TEST(Wire, MidFrameDetectsTruncation)
{
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::Data, bytes({9, 9, 9, 9}));

    FrameParser p;
    p.feed(wire.data(), wire.size() - 1);  // drop the last payload byte
    Frame f;
    EXPECT_EQ(p.next(f), FrameParser::Result::NeedMore);
    EXPECT_TRUE(p.midFrame());  // a close now = truncated stream

    p.feed(wire.data() + wire.size() - 1, 1);
    EXPECT_EQ(p.next(f), FrameParser::Result::Frame);
    EXPECT_FALSE(p.midFrame());
}

// ------------------------------------------------------------ rejection

TEST(Wire, RejectsBadMagic)
{
    FrameParser p;
    EXPECT_EQ(pullAll(p, bytes({0x00, 0x53, 2, 0, 0, 0, 0, 0})),
              FrameParser::Result::Error);
    EXPECT_TRUE(p.failed());
    EXPECT_FALSE(p.error().empty());
}

TEST(Wire, RejectsUnknownFrameType)
{
    FrameParser p;
    EXPECT_EQ(pullAll(p, bytes({0x5A, 0x53, 0x7F, 0, 0, 0, 0, 0})),
              FrameParser::Result::Error);
}

TEST(Wire, RejectsNonZeroFlags)
{
    FrameParser p;
    EXPECT_EQ(pullAll(p, bytes({0x5A, 0x53, 2, 1, 0, 0, 0, 0})),
              FrameParser::Result::Error);
}

TEST(Wire, RejectsOversizedLengthWithoutAllocating)
{
    // Header claims a 16 MiB payload; the parser must reject it from
    // the 8 header bytes alone (the cap defeats hostile allocations).
    FrameParser p;
    EXPECT_EQ(pullAll(p, bytes({0x5A, 0x53, 2, 0, 0, 0, 0, 1})),
              FrameParser::Result::Error);
}

TEST(Wire, ErrorsAreSticky)
{
    FrameParser p;
    pullAll(p, bytes({0xFF, 0xFF, 0, 0, 0, 0, 0, 0}));
    ASSERT_TRUE(p.failed());
    std::string first = p.error();

    // Even a perfectly valid frame afterwards stays rejected.
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::End);
    Frame f;
    p.feed(wire.data(), wire.size());
    EXPECT_EQ(p.next(f), FrameParser::Result::Error);
    EXPECT_EQ(p.error(), first);
}

// ------------------------------------------------------------- fuzzing

TEST(Wire, SeededMutationFuzz)
{
    // A valid multi-frame stream with one byte flipped either still
    // parses (payload mutation) or fails cleanly — never crashes, never
    // yields a frame above the payload cap.
    std::vector<uint8_t> clean;
    encodeHello(clean, 4, 4);
    for (int k = 0; k < 6; ++k) {
        std::vector<uint8_t> payload(16, static_cast<uint8_t>(k));
        encodeFrame(clean, FrameType::Data, payload);
    }
    encodeFrame(clean, FrameType::End);

    Rng rng(0xF00D);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<uint8_t> wire = clean;
        size_t pos = rng.below(wire.size());
        uint8_t flip =
            static_cast<uint8_t>(1u << rng.below(8));
        wire[pos] ^= flip;

        FrameParser p;
        std::vector<Frame> got;
        FrameParser::Result last = pullAll(p, wire, &got);
        EXPECT_NE(last, FrameParser::Result::Frame);
        for (const Frame& f : got) {
            EXPECT_LE(f.payload.size(), kMaxPayload);
        }
        if (last == FrameParser::Result::Error) {
            EXPECT_FALSE(p.error().empty());
        }
    }
}

TEST(Wire, GarbageFuzz)
{
    Rng rng(0xBEEF);
    for (int iter = 0; iter < 200; ++iter) {
        size_t n = 1 + rng.below(512);
        std::vector<uint8_t> wire(n);
        for (auto& b : wire)
            b = static_cast<uint8_t>(rng.next());

        FrameParser p;
        std::vector<Frame> got;
        FrameParser::Result last = pullAll(p, wire, &got);
        EXPECT_NE(last, FrameParser::Result::Frame);
        for (const Frame& f : got)
            EXPECT_LE(f.payload.size(), kMaxPayload);
    }
}

// ---------------------------------------------------- datagram variant

TEST(Wire, DatagramRoundTrip)
{
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::Data, bytes({10, 20, 30}));
    Frame f;
    ASSERT_TRUE(decodeDatagram(wire.data(), wire.size(), f));
    EXPECT_EQ(f.type, FrameType::Data);
    EXPECT_EQ(f.payload, bytes({10, 20, 30}));
}

TEST(Wire, DatagramRejectsTrailingBytes)
{
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::End);
    wire.push_back(0x00);  // one byte past the declared payload
    Frame f;
    std::string err;
    EXPECT_FALSE(decodeDatagram(wire.data(), wire.size(), f, &err));
    EXPECT_FALSE(err.empty());
}

TEST(Wire, DatagramRejectsTruncation)
{
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::Data, bytes({1, 2, 3, 4}));
    Frame f;
    // Every proper prefix is malformed (short header or short payload).
    for (size_t n = 0; n < wire.size(); ++n) {
        EXPECT_FALSE(decodeDatagram(wire.data(), n, f)) << n;
    }
}

TEST(Wire, DatagramRejectsBadHeader)
{
    Frame f;
    auto hdr = bytes({0x5A, 0x53, 0x09, 0, 0, 0, 0, 0});  // bad type
    EXPECT_FALSE(decodeDatagram(hdr.data(), hdr.size(), f));
    auto flg = bytes({0x5A, 0x53, 2, 4, 0, 0, 0, 0});  // bad flags
    EXPECT_FALSE(decodeDatagram(flg.data(), flg.size(), f));
}

} // namespace
} // namespace serve
} // namespace ziria
