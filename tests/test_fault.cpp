/**
 * @file
 * Fault-tolerance tests (ctest label `fault`): the fault-injection
 * harness, supervised threaded pipelines (watchdog, structured stage
 * failures), channel impairment injection and config validation, and
 * WiFi RX graceful degradation under corrupted/truncated captures.
 *
 * Every scenario here used to hang, abort, or kill the process; each
 * test asserts the run instead terminates with a structured outcome.
 */
#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "channel/channel.h"
#include "sora/sora.h"
#include "support/fault_injector.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zexec/faultpoint.h"
#include "zexec/threaded.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace zb;
using testsupport::bytesToInts;
using testsupport::intBytes;
using testsupport::stallAtBlock;
using testsupport::throwAtBlock;

// ------------------------------------------------------------ FaultSpec

TEST(FaultSpec_, ParsesEveryKindAndShowsRoundTrip)
{
    FaultSpec t = FaultSpec::parse("truncate@128");
    EXPECT_EQ(t.kind, FaultSpec::Kind::Truncate);
    EXPECT_EQ(t.tick, 128u);
    EXPECT_EQ(t.show(), "truncate@128");

    FaultSpec th = FaultSpec::parse("throw@0");
    EXPECT_EQ(th.kind, FaultSpec::Kind::Throw);
    EXPECT_EQ(th.tick, 0u);

    FaultSpec st = FaultSpec::parse("stall@5:250");
    EXPECT_EQ(st.kind, FaultSpec::Kind::Stall);
    EXPECT_EQ(st.tick, 5u);
    EXPECT_EQ(st.stallMs, 250u);
    EXPECT_EQ(st.show(), "stall@5:250");

    FaultSpec stDefault = FaultSpec::parse("stall@7");
    EXPECT_EQ(stDefault.stallMs, 1000u);  // documented default

    FaultSpec sr = FaultSpec::parse("shortread@16:42");
    EXPECT_EQ(sr.kind, FaultSpec::Kind::ShortRead);
    EXPECT_EQ(sr.seed, 42u);
}

TEST(FaultSpec_, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultSpec::parse("truncate"), FatalError);
    EXPECT_THROW(FaultSpec::parse("bogus@3"), FatalError);
    EXPECT_THROW(FaultSpec::parse("truncate@x"), FatalError);
    EXPECT_THROW(FaultSpec::parse("truncate@3:9"), FatalError);  // no arg
    EXPECT_THROW(FaultSpec::parse("stall@3:abc"), FatalError);
}

// ---------------------------------------------------- Faulty endpoints

TEST(FaultyEndpoints, TruncateEndsStreamAtTick)
{
    std::vector<uint8_t> data(100);
    MemSource mem(data, 1);
    FaultSpec spec = FaultSpec::parse("truncate@10");
    FaultySource src(mem, spec);
    size_t n = 0;
    while (src.next())
        ++n;
    EXPECT_EQ(n, 10u);
    EXPECT_EQ(src.next(), nullptr);  // stays ended
}

TEST(FaultyEndpoints, ThrowRaisesInjectedFaultAtTick)
{
    std::vector<uint8_t> data(100);
    MemSource mem(data, 1);
    FaultySource src(mem, FaultSpec::parse("throw@3"));
    for (int i = 0; i < 3; ++i)
        ASSERT_NE(src.next(), nullptr);
    EXPECT_THROW(src.next(), InjectedFault);
}

TEST(FaultyEndpoints, ShortReadDropsDeterministically)
{
    auto run = [](uint64_t seed) {
        std::vector<uint8_t> data(4000);
        for (size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<uint8_t>(i);
        MemSource mem(data, 1);
        FaultSpec spec;
        spec.kind = FaultSpec::Kind::ShortRead;
        spec.tick = 100;
        spec.seed = seed;
        FaultySource src(mem, spec);
        std::vector<uint8_t> seen;
        while (const uint8_t* p = src.next())
            seen.push_back(*p);
        return seen;
    };
    auto a = run(7);
    auto b = run(7);
    EXPECT_EQ(a, b);              // seeded: replays exactly
    EXPECT_LT(a.size(), 4000u);   // something was dropped
    EXPECT_GT(a.size(), 3000u);   // ...but only ~1/8
}

TEST(FaultyEndpoints, SinkShortWriteDropsTail)
{
    VecSink inner(1);
    FaultySink sink(inner, FaultSpec::parse("truncate@5"));
    uint8_t b = 1;
    for (int i = 0; i < 20; ++i)
        sink.put(&b);
    EXPECT_EQ(inner.data().size(), 5u);
    EXPECT_EQ(sink.dropped(), 15u);
}

// ------------------------------------------------- channel validation

TEST(ChannelValidation, RejectsBadConfigs)
{
    using channel::ChannelConfig;
    using channel::validateChannelConfig;

    ChannelConfig ok;
    EXPECT_NO_THROW(validateChannelConfig(ok));

    ChannelConfig c1;
    c1.delaySamples = -5;
    EXPECT_THROW(validateChannelConfig(c1), FatalError);

    ChannelConfig c2;
    c2.trailSamples = -1;
    EXPECT_THROW(validateChannelConfig(c2), FatalError);

    ChannelConfig c3;
    c3.multipathTaps = 0;
    EXPECT_THROW(validateChannelConfig(c3), FatalError);

    ChannelConfig c4;
    c4.snrDb = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(validateChannelConfig(c4), FatalError);

    ChannelConfig c5;
    c5.gain = std::numeric_limits<double>::infinity();
    EXPECT_THROW(validateChannelConfig(c5), FatalError);

    ChannelConfig c6;
    c6.burstErrors = 2;  // burstLen left 0
    EXPECT_THROW(validateChannelConfig(c6), FatalError);

    ChannelConfig c7;
    c7.truncateFrac = 1.5;
    EXPECT_THROW(validateChannelConfig(c7), FatalError);

    // applyChannel itself validates.
    std::vector<Complex16> tx(16, Complex16{1000, 0});
    EXPECT_THROW(channel::applyChannel(tx, c1), FatalError);
}

TEST(ChannelFaults, TruncateFracShortensCapture)
{
    std::vector<Complex16> tx(1000, Complex16{4000, 0});
    channel::ChannelConfig cfg;
    cfg.delaySamples = 100;
    cfg.trailSamples = 50;
    cfg.truncateFrac = 0.5;
    auto rx = channel::applyChannel(tx, cfg);
    EXPECT_EQ(rx.size(), 100u + 500u + 50u);
}

TEST(ChannelFaults, BurstErrorsCorruptSamplesDeterministically)
{
    std::vector<Complex16> tx(2000, Complex16{4000, 0});
    channel::ChannelConfig cfg;
    cfg.snrDb = 60.0;  // nearly noiseless outside the bursts
    cfg.burstErrors = 3;
    cfg.burstLen = 40;
    cfg.seed = 11;
    auto withBursts = channel::applyChannel(tx, cfg);

    auto again = channel::applyChannel(tx, cfg);
    ASSERT_EQ(withBursts.size(), again.size());
    EXPECT_TRUE(std::equal(withBursts.begin(), withBursts.end(),
                           again.begin(),
                           [](const Complex16& a, const Complex16& b) {
                               return a.re == b.re && a.im == b.im;
                           }));

    // Burst sigma is ~10x the signal amplitude: corrupted samples tower
    // over the clean 4000-amplitude carrier.  Count them.
    size_t corrupted = 0;
    for (const auto& s : withBursts) {
        if (std::abs(static_cast<int>(s.re)) > 9000 ||
            std::abs(static_cast<int>(s.im)) > 9000)
            ++corrupted;
    }
    EXPECT_GE(corrupted, 30u);   // most of at least one whole burst
    EXPECT_LE(corrupted, 130u);  // bounded by 3 bursts x 40 samples
}

// ----------------------------------------- supervised threaded runs

CompPtr
incBlock(int32_t delta)
{
    VarRef x = freshVar("x", Type::int32());
    return repeatc(seqc({bindc(x, take(Type::int32())),
                         just(emit(var(x) + delta))}));
}

TEST(Supervised, StageExceptionYieldsStructuredFailure)
{
    auto p = compileThreadedPipeline(
        ppipe(throwAtBlock(100), incBlock(1)),
        CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in(100000, 7);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    NullSink sink;
    try {
        p->run(src, sink);
        FAIL() << "expected StageFailureError";
    } catch (const StageFailureError& e) {
        const StageFailure& f = e.failure();
        EXPECT_EQ(f.stage, 0u);
        EXPECT_EQ(f.path, "stage0");
        EXPECT_EQ(f.cause, FailureCause::Exception);
        EXPECT_NE(f.inner, nullptr);
        EXPECT_NE(f.message.find("induced stage exception"),
                  std::string::npos);
    }
    // The failing stage's telemetry records the cause.
    ASSERT_NE(p->metrics(), nullptr);
    ASSERT_EQ(p->metrics()->stages.size(), 2u);
    EXPECT_EQ(p->metrics()->stages[0].failure, "exception");
}

TEST(Supervised, ProducerThrowsWhileConsumerBlocked)
{
    // Stage 0 throws before filling the queue: stage 1 is parked in
    // popWait and must be released by the queue close, not hang.
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.queueCapacity = 4;
    auto p = compileThreadedPipeline(
        ppipe(throwAtBlock(2), incBlock(1)), opt);
    std::vector<int32_t> in(50000, 3);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    NullSink sink;
    EXPECT_THROW(p->run(src, sink), StageFailureError);
}

TEST(Supervised, ConsumerCancelsWhileProducerBlocked)
{
    // Stage 1 halts immediately with a tiny queue: stage 0 is blocked
    // in pushWait on a full queue and must be released by the cancel.
    VarRef a = freshVar("a", Type::int32());
    CompPtr halting = seqc({bindc(a, take(Type::int32())),
                            just(ret(var(a)))});
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.queueCapacity = 2;
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), std::move(halting)), opt);
    std::vector<int32_t> in(200000, 5);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    NullSink sink;
    RunStats st = p->run(src, sink);  // must not hang or throw
    EXPECT_TRUE(st.halted);
    EXPECT_LT(st.consumed, in.size());
}

TEST(Supervised, WatchdogFlagsStalledStage)
{
    // A kernel sleeps far past the deadline; the watchdog must declare
    // the run stalled (cause Stall) instead of waiting it out.
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.stallDeadlineMs = 150;
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), stallAtBlock(50, 1500)), opt);
    EXPECT_EQ(p->stallDeadline(), 150);
    std::vector<int32_t> in(100000, 1);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    NullSink sink;
    uint64_t before = metrics::Registry::global()
                          .counter("ziria.stall_timeouts")
                          .value();
    auto t0 = std::chrono::steady_clock::now();
    try {
        p->run(src, sink);
        FAIL() << "expected a stall StageFailureError";
    } catch (const StageFailureError& e) {
        EXPECT_EQ(e.failure().cause, FailureCause::Stall);
    }
    auto elapsed = std::chrono::steady_clock::now() - t0;
    // The sleeping kernel pins its own thread for 1.5 s, but never
    // 10 s — the teardown must not wait on anything else.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed)
                  .count(), 10);
    EXPECT_GT(metrics::Registry::global()
                  .counter("ziria.stall_timeouts")
                  .value(), before);
}

TEST(Supervised, CleanRunUnderDeadlineIsUnaffected)
{
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.stallDeadlineMs = 2000;
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), incBlock(10)), opt);
    std::vector<int32_t> in(20000);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    VecSink sink(4);
    RunStats st = p->run(src, sink);
    EXPECT_EQ(st.consumed, in.size());
    auto out = bytesToInts(sink.data());
    ASSERT_EQ(out.size(), in.size());
    EXPECT_EQ(out[0], 11);
    EXPECT_EQ(out.back(), static_cast<int32_t>(in.size() - 1 + 11));
}

TEST(Supervised, FaultySourceStallTrippedByWatchdog)
{
    // The CLI-style composition: a stalling *source* (not stage kernel)
    // under supervision.  FaultySource's sleep polls its cancel flag,
    // so teardown is prompt here.
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.stallDeadlineMs = 150;
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), incBlock(2)), opt);
    std::vector<int32_t> in(1000, 9);
    auto bytes = intBytes(in);
    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("stall@40:30000"));
    NullSink sink;
    auto t0 = std::chrono::steady_clock::now();
    try {
        p->run(src, sink);
        FAIL() << "expected a stall StageFailureError";
    } catch (const StageFailureError& e) {
        EXPECT_EQ(e.failure().cause, FailureCause::Stall);
    }
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    EXPECT_LT(ms, 5000);  // nowhere near the 30 s stall
}

// ------------------------------------------- WiFi RX degradation soak

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

std::vector<uint8_t>
samplesToBytes(const std::vector<Complex16>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

/** True iff `needle` occurs as a contiguous subsequence of `hay`. */
bool
containsBytes(const std::vector<uint8_t>& hay,
              const std::vector<uint8_t>& needle)
{
    return std::search(hay.begin(), hay.end(), needle.begin(),
                       needle.end()) != hay.end();
}

TEST(RxDegradation, RecoversAfterCorruptedSignalHeader)
{
    // Packet 1's SIGNAL symbol is blanked (header undecodable); the
    // receiver loop must drop it, resynchronize, and still decode the
    // clean packet 2.
    using namespace wifi;
    auto badPayload = randomBytes(40, 61);
    auto goodPayload = randomBytes(40, 62);

    auto tx1 = sora::txFrame(badPayload, Rate::R12);
    // Frame layout: STS 160 + LTS 160 + SIGNAL 80 + DATA.  Blank the
    // SIGNAL symbol so rate/length/parity decode to garbage.
    for (size_t i = 320; i < 400; ++i)
        tx1[i] = Complex16{0, 0};
    auto tx2 = sora::txFrame(goodPayload, Rate::R12);

    std::vector<Complex16> stream;
    stream.insert(stream.end(), 300, Complex16{0, 0});
    stream.insert(stream.end(), tx1.begin(), tx1.end());
    stream.insert(stream.end(), 3000, Complex16{0, 0});
    stream.insert(stream.end(), tx2.begin(), tx2.end());
    stream.insert(stream.end(), 300, Complex16{0, 0});

    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.seed = 63;
    auto rxSamples = channel::applyChannel(stream, cfg);

    auto& reg = metrics::Registry::global();
    uint64_t drops0 = reg.counter("wifi.rx.header_drops").value();
    uint64_t resyncs0 = reg.counter("wifi.rx.resyncs").value();

    auto rx = compilePipeline(wifiReceiverLoopComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    auto bits = rx->runBytes(samplesToBytes(rxSamples));
    auto bytes = bitsToBytes(bits);

    EXPECT_TRUE(containsBytes(bytes, goodPayload))
        << "clean packet after the corrupted one was not decoded";
    EXPECT_GT(reg.counter("wifi.rx.header_drops").value(), drops0);
    EXPECT_GT(reg.counter("wifi.rx.resyncs").value(), resyncs0);
}

TEST(RxDegradation, RecoversAfterTruncatedPacket)
{
    // Packet 1 is cut off mid-DATA: its declared length makes the
    // decoder chew into the following silence, the CRC fails, and the
    // loop must still find and decode packet 2.
    using namespace wifi;
    auto lostPayload = randomBytes(40, 71);
    auto goodPayload = randomBytes(40, 72);

    auto tx1 = sora::txFrame(lostPayload, Rate::R12);
    tx1.resize(tx1.size() - 3 * 80);  // drop the last 3 DATA symbols
    auto tx2 = sora::txFrame(goodPayload, Rate::R12);

    std::vector<Complex16> stream;
    stream.insert(stream.end(), 300, Complex16{0, 0});
    stream.insert(stream.end(), tx1.begin(), tx1.end());
    // Long gap: the phantom DATA region ends well inside it, leaving
    // plenty of silence before packet 2's preamble.
    stream.insert(stream.end(), 4000, Complex16{0, 0});
    stream.insert(stream.end(), tx2.begin(), tx2.end());
    stream.insert(stream.end(), 300, Complex16{0, 0});

    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.seed = 73;
    auto rxSamples = channel::applyChannel(stream, cfg);

    auto& reg = metrics::Registry::global();
    uint64_t fails0 = reg.counter("wifi.rx.crc_fail").value();
    uint64_t oks0 = reg.counter("wifi.rx.crc_ok").value();

    auto rx = compilePipeline(wifiReceiverLoopComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    auto bits = rx->runBytes(samplesToBytes(rxSamples));
    auto bytes = bitsToBytes(bits);

    EXPECT_TRUE(containsBytes(bytes, goodPayload))
        << "clean packet after the truncated one was not decoded";
    EXPECT_GT(reg.counter("wifi.rx.crc_fail").value(), fails0)
        << "the truncated packet should have failed its CRC";
    EXPECT_GT(reg.counter("wifi.rx.crc_ok").value(), oks0)
        << "the clean packet should have passed its CRC";
}

TEST(RxDegradation, LtsBudgetExhaustionResyncsInsteadOfAborting)
{
    // A burst of STS-like energy with no LTS after it: the old kernel
    // called fatal() after 4096 samples.  Now it must give up quietly,
    // count a sync failure, and still decode a real packet later.
    using namespace wifi;
    auto payload = randomBytes(40, 81);

    std::vector<Complex16> stream;
    stream.insert(stream.end(), 200, Complex16{0, 0});
    // A fake "preamble": several STS repetitions, then noise-free
    // silence long enough to exhaust the LTS scan budget.
    const auto& sts = stsSamples();
    for (int i = 0; i < 2; ++i)
        stream.insert(stream.end(), sts.begin(), sts.end());
    stream.insert(stream.end(), 6000, Complex16{0, 0});
    auto tx = sora::txFrame(payload, Rate::R12);
    stream.insert(stream.end(), tx.begin(), tx.end());
    stream.insert(stream.end(), 300, Complex16{0, 0});

    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.seed = 83;
    auto rxSamples = channel::applyChannel(stream, cfg);

    auto& reg = metrics::Registry::global();
    uint64_t sync0 = reg.counter("wifi.rx.sync_failures").value();

    auto rx = compilePipeline(wifiReceiverLoopComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    std::vector<uint8_t> bytes;
    ASSERT_NO_THROW({
        auto bits = rx->runBytes(samplesToBytes(rxSamples));
        bytes = bitsToBytes(bits);
    });
    EXPECT_TRUE(containsBytes(bytes, payload))
        << "packet after the false preamble was not decoded";
    EXPECT_GT(reg.counter("wifi.rx.sync_failures").value(), sync0);
}

} // namespace
} // namespace ziria
