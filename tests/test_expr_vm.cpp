/**
 * @file
 * Unit tests: the expression compiler / VM (zexpr), native functions,
 * constant folding, and the LUT machinery.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "support/rng.h"
#include "zast/builder.h"
#include "zexpr/compile_expr.h"
#include "zexpr/lut.h"
#include "zexpr/natives.h"
#include "zopt/passes.h"

namespace ziria {
namespace {

using namespace zb;

int64_t
evalI(const ExprPtr& e)
{
    FrameLayout layout;
    ExprCompiler ec(layout);
    EvalInt f = ec.compileInt(e);
    Frame fr(layout.frameSize());
    return f(fr);
}

double
evalD(const ExprPtr& e)
{
    FrameLayout layout;
    ExprCompiler ec(layout);
    EvalDbl f = ec.compileDbl(e);
    Frame fr(layout.frameSize());
    return f(fr);
}

TEST(ExprVm, IntArithmetic)
{
    EXPECT_EQ(evalI(cInt(2) + cInt(3)), 5);
    EXPECT_EQ(evalI(cInt(2) - cInt(3)), -1);
    EXPECT_EQ(evalI(cInt(7) * cInt(-3)), -21);
    EXPECT_EQ(evalI(cInt(7) / cInt(2)), 3);
    EXPECT_EQ(evalI(cInt(7) % cInt(3)), 1);
}

TEST(ExprVm, Int32Wraparound)
{
    EXPECT_EQ(evalI(cInt(2147483647) + cInt(1)),
              static_cast<int64_t>(INT32_MIN));
    EXPECT_EQ(evalI(cInt(65536) * cInt(65536)), 0);
}

TEST(ExprVm, Int8Truncation)
{
    EXPECT_EQ(evalI(cI8(100) + cI8(100)), static_cast<int8_t>(200));
}

TEST(ExprVm, BitOps)
{
    EXPECT_EQ(evalI(cBit(1) ^ cBit(1)), 0);
    EXPECT_EQ(evalI(cBit(1) ^ cBit(0)), 1);
    EXPECT_EQ(evalI(cBit(1) & cBit(0)), 0);
    EXPECT_EQ(evalI(cBit(1) | cBit(0)), 1);
    EXPECT_EQ(evalI(mkUn(UnOp::BNot, cBit(0))), 1);
    EXPECT_EQ(evalI(mkUn(UnOp::BNot, cBit(1))), 0);
}

TEST(ExprVm, Shifts)
{
    EXPECT_EQ(evalI(cInt(1) << 10), 1024);
    EXPECT_EQ(evalI(cInt(-8) >> 1), -4);
    EXPECT_EQ(evalI(cInt(1) << 31), static_cast<int64_t>(INT32_MIN));
    // Over-shifting is defined (not UB): zero / sign fill.
    EXPECT_EQ(evalI(cInt(5) << 40), 0);
    EXPECT_EQ(evalI(cInt(-5) >> 40), -1);
}

TEST(ExprVm, Comparisons)
{
    EXPECT_EQ(evalI(cInt(2) < cInt(3)), 1);
    EXPECT_EQ(evalI(cInt(3) < cInt(3)), 0);
    EXPECT_EQ(evalI(cInt(3) <= cInt(3)), 1);
    EXPECT_EQ(evalI(cInt(4) == cInt(4)), 1);
    EXPECT_EQ(evalI(cInt(4) != cInt(4)), 0);
    EXPECT_EQ(evalI(cDouble(1.5) < cDouble(2.0)), 1);
}

TEST(ExprVm, ShortCircuit)
{
    // (false && (1/0 == 0)) must not evaluate the division.
    ExprPtr div = cInt(1) / cInt(0) == cInt(0);
    EXPECT_EQ(evalI(cBool(false) && div), 0);
    EXPECT_EQ(evalI(cBool(true) || div), 1);
    EXPECT_THROW(evalI(cBool(true) && div), FatalError);
}

TEST(ExprVm, DivisionByZeroFaults)
{
    EXPECT_THROW(evalI(cInt(1) / cInt(0)), FatalError);
    EXPECT_THROW(evalI(cInt(1) % cInt(0)), FatalError);
}

TEST(ExprVm, IntMinDivMinusOne)
{
    EXPECT_EQ(evalI(cInt(INT32_MIN) / cInt(-1)),
              static_cast<int64_t>(INT32_MIN));
    EXPECT_EQ(evalI(cInt(INT32_MIN) % cInt(-1)), 0);
}

TEST(ExprVm, Casts)
{
    EXPECT_EQ(evalI(cast(Type::int8(), cInt(300))), 44);
    EXPECT_EQ(evalI(cast(Type::int32(), cDouble(3.9))), 3);
    EXPECT_EQ(evalD(cast(Type::real(), cInt(5))), 5.0);
    EXPECT_EQ(evalI(cast(Type::bit(), cInt(7))), 1);
}

TEST(ExprVm, DoubleArithmetic)
{
    EXPECT_NEAR(evalD(cDouble(1.5) + cDouble(2.25)), 3.75, 1e-12);
    EXPECT_NEAR(evalD(cDouble(5.0) / cDouble(2.0)), 2.5, 1e-12);
}

TEST(ExprVm, Complex16Arithmetic)
{
    FrameLayout layout;
    ExprCompiler ec(layout);
    ExprPtr e = cC16(3, 4) * cC16(1, 2);
    EvalInto f = ec.compileInto(e);
    Frame fr(layout.frameSize());
    uint8_t buf[4];
    f(fr, buf);
    Complex16 c;
    std::memcpy(&c, buf, 4);
    EXPECT_EQ(c.re, 3 * 1 - 4 * 2);
    EXPECT_EQ(c.im, 3 * 2 + 4 * 1);
}

TEST(ExprVm, ComplexShift)
{
    FrameLayout layout;
    ExprCompiler ec(layout);
    ExprPtr e = cC16(-8, 16) >> 2;
    EvalInto f = ec.compileInto(e);
    Frame fr(layout.frameSize());
    uint8_t buf[4];
    f(fr, buf);
    Complex16 c;
    std::memcpy(&c, buf, 4);
    EXPECT_EQ(c.re, -2);
    EXPECT_EQ(c.im, 4);
}

TEST(ExprVm, VariablesAndAssignment)
{
    FrameLayout layout;
    ExprCompiler ec(layout);
    VarRef x = freshVar("x", Type::int32());
    Action set = ec.compileStmt(assign(var(x), cInt(41)));
    EvalInt get = ec.compileInt(var(x) + 1);
    Frame fr(layout.frameSize());
    set(fr);
    EXPECT_EQ(get(fr), 42);
}

TEST(ExprVm, ArrayIndexAndSlice)
{
    FrameLayout layout;
    ExprCompiler ec(layout);
    VarRef a = freshVar("a", Type::array(Type::int32(), 8));
    StmtList init;
    VarRef i = freshVar("i", Type::int32());
    init.push_back(sFor(i, cInt(0), cInt(8),
                        {assign(idx(var(a), var(i)), var(i) * 10)}));
    Action run = ec.compileStmts(init);
    EvalInt at3 = ec.compileInt(idx(var(a), 3));
    Frame fr(layout.frameSize());
    run(fr);
    EXPECT_EQ(at3(fr), 30);
}

TEST(ExprVm, OverlappingSliceAssignBehavesLikeMemmove)
{
    // The scrambler shift: st[0:5] := st[1:6].
    FrameLayout layout;
    ExprCompiler ec(layout);
    VarRef st = freshVar("st", Type::array(Type::int8(), 7));
    StmtList code;
    VarRef i = freshVar("i", Type::int32());
    code.push_back(sFor(i, cInt(0), cInt(7),
                        {assign(idx(var(st), var(i)),
                                cast(Type::int8(), var(i)))}));
    code.push_back(assign(slice(var(st), 0, 6), slice(var(st), 1, 6)));
    Action run = ec.compileStmts(code);
    Frame fr(layout.frameSize());
    run(fr);
    EvalInt at0 = ec.compileInt(idx(var(st), 0));
    EvalInt at5 = ec.compileInt(idx(var(st), 5));
    EvalInt at6 = ec.compileInt(idx(var(st), 6));
    EXPECT_EQ(at0(fr), 1);
    EXPECT_EQ(at5(fr), 6);
    EXPECT_EQ(at6(fr), 6);
}

TEST(ExprVm, IndexOutOfBoundsFaults)
{
    FrameLayout layout;
    ExprCompiler ec(layout);
    VarRef a = freshVar("a", Type::array(Type::int32(), 4));
    VarRef i = freshVar("i", Type::int32());
    Action setI = ec.compileStmt(assign(var(i), cInt(4)));
    EvalInt get = ec.compileInt(idx(var(a), var(i)));
    Frame fr(layout.frameSize());
    setI(fr);
    EXPECT_THROW(get(fr), FatalError);
}

TEST(ExprVm, StructRoundTrip)
{
    TypePtr h = Type::strct("H", {{"mod", Type::int32()},
                                  {"len", Type::int32()}});
    FrameLayout layout;
    ExprCompiler ec(layout);
    VarRef v = freshVar("h", h);
    Action set = ec.compileStmt(
        assign(var(v), structLit(h, {cInt(2), cInt(1500)})));
    EvalInt len = ec.compileInt(field(var(v), "len"));
    Frame fr(layout.frameSize());
    set(fr);
    EXPECT_EQ(len(fr), 1500);
}

TEST(ExprVm, UserFunctionCallWithState)
{
    // Captured state: counter increments across calls.
    VarRef state = freshVar("count", Type::int32());
    VarRef p = freshVar("p", Type::int32());
    FunRef f = fun("bump", {p},
                   {assign(var(state), var(state) + var(p))},
                   var(state));

    FrameLayout layout;
    ExprCompiler ec(layout);
    EvalInt callTwice = ec.compileInt(call(f, {cInt(5)}) +
                                      call(f, {cInt(7)}));
    Frame fr(layout.frameSize());
    EXPECT_EQ(callTwice(fr), 5 + 12);
}

TEST(ExprVm, ByRefParameterMutatesCallerArray)
{
    VarRef arrp = freshVar("xs", Type::array(Type::int32(), 4));
    auto fdef = std::make_shared<FunDef>();
    VarRef p = freshVar("p", Type::array(Type::int32(), 4));
    fdef->name = "fill";
    fdef->params = {p};
    fdef->byRef = {true};
    fdef->body = {assign(idx(var(p), 2), cInt(99))};
    fdef->retType = Type::unit();
    FunRef f = fdef;

    FrameLayout layout;
    ExprCompiler ec(layout);
    Action doCall = ec.compileStmt(sEval(call(f, {var(arrp)})));
    EvalInt read = ec.compileInt(idx(var(arrp), 2));
    Frame fr(layout.frameSize());
    doCall(fr);
    EXPECT_EQ(read(fr), 99);
}

TEST(ExprVm, NativeSin)
{
    EXPECT_NEAR(evalD(call(natives::sinF(), {cDouble(1.0)})),
                std::sin(1.0), 1e-12);
}

TEST(ExprVm, NativeCmul16)
{
    FrameLayout layout;
    ExprCompiler ec(layout);
    ExprPtr e = call(natives::cmul16(), {cC16(1000, 2000),
                                         cC16(-300, 50), cInt(6)});
    EvalInto f = ec.compileInto(e);
    Frame fr(layout.frameSize());
    uint8_t buf[4];
    f(fr, buf);
    Complex16 c;
    std::memcpy(&c, buf, 4);
    EXPECT_EQ(c.re, (1000 * -300 - 2000 * 50) >> 6);
    EXPECT_EQ(c.im, (1000 * 50 + 2000 * -300) >> 6);
}

TEST(ExprVm, NativeLookupByName)
{
    EXPECT_NE(natives::lookup("sin"), nullptr);
    EXPECT_NE(natives::lookup("atan2"), nullptr);
    EXPECT_EQ(natives::lookup("no_such_fn"), nullptr);
}

TEST(Folding, ConstantArithmetic)
{
    ExprPtr e = foldExpr((cInt(2) + cInt(3)) * cInt(4));
    ASSERT_EQ(e->kind(), ExprKind::Const);
    EXPECT_EQ(static_cast<const ConstExpr&>(*e).value().asInt(), 20);
}

TEST(Folding, CondWithConstGuard)
{
    ExprPtr e = foldExpr(cond(cBool(true), cInt(1), cInt(2)));
    ASSERT_EQ(e->kind(), ExprKind::Const);
    EXPECT_EQ(static_cast<const ConstExpr&>(*e).value().asInt(), 1);
}

TEST(Folding, IndexOfConstArray)
{
    ExprPtr e = foldExpr(idx(bitArrayLit({0, 1, 1}), 2));
    ASSERT_EQ(e->kind(), ExprKind::Const);
    EXPECT_EQ(static_cast<const ConstExpr&>(*e).value().asInt(), 1);
}

TEST(Folding, DivByZeroLeftForRuntime)
{
    ExprPtr e = foldExpr(cInt(1) / cInt(0));
    EXPECT_EQ(e->kind(), ExprKind::Bin);
}

TEST(Lut, XorKernelMatchesDirect)
{
    // Kernel: f(x: arr[4] bit) = {state ^= parity(x); return x ^ state}
    VarRef state = freshVar("st", Type::bit());
    VarRef p = freshVar("x", Type::array(Type::bit(), 4));
    // body: st := st ^ x[0] ^ x[1] ^ x[2] ^ x[3]
    ExprPtr px = idx(var(p), 0) ^ idx(var(p), 1) ^ idx(var(p), 2) ^
                 idx(var(p), 3);
    FunRef f = fun("k", {p}, {assign(var(state), var(state) ^ px)},
                   arrayLit({idx(var(p), 0) ^ var(state),
                             idx(var(p), 1) ^ var(state),
                             idx(var(p), 2) ^ var(state),
                             idx(var(p), 3) ^ var(state)}));

    // Compile twice: direct kernel and via LUT; compare over all inputs
    // and states.
    FrameLayout layout;
    ExprCompiler ec(layout);
    CompiledKernel k = ec.compileKernel(f);
    size_t stOff = layout.offsetOf(state.get());

    std::vector<LutSlot> keys{{k.paramOffsets[0], p->type, 0},
                              {stOff, Type::bit(), 0}};
    std::vector<LutSlot> outs{{stOff, Type::bit(), 0}};
    auto plan = planLut(keys, outs, f->retType, LutLimits{});
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->keyBits, 5);
    CompiledLut lut(*plan, k.body, k.retInto, layout.frameSize());

    Frame fa(layout.frameSize());
    Frame fb(layout.frameSize());
    uint8_t outA[4], outB[4];
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        uint8_t in[4];
        for (auto& b : in)
            b = rng.bit();
        // Direct on frame A.
        std::memcpy(fa.at(k.paramOffsets[0]), in, 4);
        k.body(fa);
        k.retInto(fa, outA);
        // LUT on frame B.
        std::memcpy(fb.at(k.paramOffsets[0]), in, 4);
        lut.apply(fb, outB);
        EXPECT_EQ(std::memcmp(outA, outB, 4), 0);
        EXPECT_EQ(*fa.at(stOff), *fb.at(stOff));
    }
}

TEST(Lut, RejectsWideKeys)
{
    std::vector<LutSlot> keys{{0, Type::int32(), 0}};
    EXPECT_FALSE(planLut(keys, {}, Type::bit(), LutLimits{}).has_value());
}

TEST(Lut, RejectsDoubles)
{
    std::vector<LutSlot> keys{{0, Type::real(), 0}};
    EXPECT_FALSE(planLut(keys, {}, Type::bit(), LutLimits{}).has_value());
}

} // namespace
} // namespace ziria
