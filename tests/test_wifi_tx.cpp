/**
 * @file
 * WiFi transmitter tests: individual DSL blocks against reference
 * implementations, and the full Ziria TX pipelines against the
 * hand-written Sora-style baseline (bit-exactness).
 */
#include <gtest/gtest.h>

#include "dsp/crc.h"
#include "sora/sora.h"
#include "support/rng.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace wifi;

std::vector<uint8_t>
randomBits(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = rng.bit();
    return out;
}

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

std::vector<uint8_t>
runBlock(CompPtr c, const std::vector<uint8_t>& input,
         OptLevel level = OptLevel::None)
{
    auto p = compilePipeline(c, CompilerOptions::forLevel(level));
    return p->runBytes(input);
}

TEST(TxBlocks, ScramblerMatchesSequenceAndIsSelfInverse)
{
    auto bits = randomBits(512, 1);
    auto scrambled = runBlock(scramblerBlock(), bits);
    ASSERT_EQ(scrambled.size(), bits.size());
    auto seq = scramblerSequence(static_cast<int>(bits.size()));
    for (size_t i = 0; i < bits.size(); ++i)
        EXPECT_EQ(scrambled[i], bits[i] ^ seq[i]) << i;
    auto twice = runBlock(scramblerBlock(), scrambled);
    EXPECT_EQ(twice, bits);
}

class EncoderVsReference
    : public ::testing::TestWithParam<dsp::CodingRate>
{
};

TEST_P(EncoderVsReference, MatchesNativeEncoder)
{
    dsp::CodingRate rate = GetParam();
    auto bits = randomBits(240, 2);
    auto dslOut = runBlock(encoderBlock(rate), bits);
    dsp::ConvEncoder ref(rate);
    auto refOut = ref.encode(bits);
    EXPECT_EQ(dslOut, refOut);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, EncoderVsReference,
    ::testing::Values(dsp::CodingRate::Half, dsp::CodingRate::TwoThirds,
                      dsp::CodingRate::ThreeQuarters));

class InterleaverInverse : public ::testing::TestWithParam<dsp::Modulation>
{
};

TEST_P(InterleaverInverse, DeinterleaveUndoesInterleave)
{
    dsp::Modulation m = GetParam();
    int ncbps = numDataCarriers * dsp::bitsPerSymbol(m);
    auto bits = randomBits(static_cast<size_t>(ncbps) * 3, 3);
    auto il = runBlock(interleaverBlock(m), bits);
    auto back = runBlock(deinterleaverBlock(m), il);
    EXPECT_EQ(back, bits);
}

INSTANTIATE_TEST_SUITE_P(All, InterleaverInverse,
                         ::testing::Values(dsp::Modulation::Bpsk,
                                           dsp::Modulation::Qpsk,
                                           dsp::Modulation::Qam16,
                                           dsp::Modulation::Qam64));

TEST(TxBlocks, InterleaverMatchesStandardFormula)
{
    // Spot-check against the 17.3.5.6 formulas at 16-QAM.
    auto table = interleaverTable(Rate::R24);
    // k=0 -> i=0 -> j=0.
    EXPECT_EQ(table[0], 0);
    const int ncbps = 192;
    for (int k : {1, 17, 100, 191}) {
        int i = (ncbps / 16) * (k % 16) + k / 16;
        int s = 2;
        int j = s * (i / s) + (i + ncbps - (16 * i) / ncbps) % s;
        EXPECT_EQ(table[static_cast<size_t>(k)], j) << k;
    }
}

class ModulatorRoundTrip : public ::testing::TestWithParam<dsp::Modulation>
{
};

TEST_P(ModulatorRoundTrip, DemapperInvertsModulator)
{
    dsp::Modulation m = GetParam();
    int nb = dsp::bitsPerSymbol(m);
    auto bits = randomBits(static_cast<size_t>(nb) * 96, 4);
    auto points = runBlock(modulatorBlock(m), bits);
    auto back = runBlock(demapperBlock(m), points);
    EXPECT_EQ(back, bits);
}

INSTANTIATE_TEST_SUITE_P(All, ModulatorRoundTrip,
                         ::testing::Values(dsp::Modulation::Bpsk,
                                           dsp::Modulation::Qpsk,
                                           dsp::Modulation::Qam16,
                                           dsp::Modulation::Qam64));

TEST(TxBlocks, CrcAppendMatchesReference)
{
    auto payload = randomBytes(32, 5);
    auto bits = bytesToBits(payload);
    auto out = runBlock(crcAppendBlock(zb::cInt(32)), bits);
    ASSERT_EQ(out.size(), bits.size() + 32);
    EXPECT_TRUE(std::equal(bits.begin(), bits.end(), out.begin()));
    dsp::Crc32 crc;
    for (uint8_t b : bits)
        crc.inputBit(b);
    auto fcs = crc.fcsBits();
    EXPECT_TRUE(std::equal(fcs.begin(), fcs.end(),
                           out.begin() + static_cast<long>(bits.size())));
}

class TxPipelineVsSora : public ::testing::TestWithParam<Rate>
{
};

TEST_P(TxPipelineVsSora, DataPathBitExact)
{
    Rate rate = GetParam();
    auto payload = randomBytes(120, 6);
    auto dataBits = assembleDataBits(payload, rate);

    auto ziriaOut = runBlock(wifiTxDataComp(rate), dataBits);
    auto soraOut = sora::txDataSamples(dataBits, rate);

    ASSERT_EQ(ziriaOut.size(), soraOut.size() * 4);
    EXPECT_EQ(0, std::memcmp(ziriaOut.data(), soraOut.data(),
                             ziriaOut.size()));
}

TEST_P(TxPipelineVsSora, DataPathBitExactWhenOptimized)
{
    Rate rate = GetParam();
    auto payload = randomBytes(60, 7);
    auto dataBits = assembleDataBits(payload, rate);
    auto plain = runBlock(wifiTxDataComp(rate), dataBits);

    // The vectorized pipeline consumes input in array-sized chunks; pad
    // the tail so the real data is fully processed, then compare the
    // unpadded prefix exactly.
    auto p = compilePipeline(wifiTxDataComp(rate),
                             CompilerOptions::forLevel(OptLevel::All));
    std::vector<uint8_t> padded = dataBits;
    size_t w = std::max<size_t>(p->inWidth(), 1);
    // Generous zero tail: interior chunk sizes can batch several OFDM
    // symbols, so push enough padding through to flush the real data.
    padded.insert(padded.end(),
                  ((padded.size() / w) + 40) * w - padded.size(), 0);
    auto optimized = p->runBytes(padded);
    size_t n = std::min(optimized.size(), plain.size());
    EXPECT_GE(n + 8 * 80 * 4, plain.size())
        << "more than 8 symbols lost to granularity";
    EXPECT_TRUE(std::equal(plain.begin(),
                           plain.begin() + static_cast<long>(n),
                           optimized.begin()));
}

TEST_P(TxPipelineVsSora, FullFrameBitExact)
{
    Rate rate = GetParam();
    auto payload = randomBytes(80, 8);
    auto payloadBits = bytesToBits(payload);

    auto ziriaOut = runBlock(
        wifiTxFrameComp(rate, static_cast<int>(payload.size())),
        payloadBits);
    auto soraOut = sora::txFrame(payload, rate);

    ASSERT_EQ(ziriaOut.size(), soraOut.size() * 4);
    EXPECT_EQ(0, std::memcmp(ziriaOut.data(), soraOut.data(),
                             ziriaOut.size()));
}

INSTANTIATE_TEST_SUITE_P(AllRates, TxPipelineVsSora,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

TEST(TxPipeline, ThreadedMatchesSingleThread)
{
    auto payload = randomBytes(100, 9);
    auto dataBits = assembleDataBits(payload, Rate::R12);
    auto single = runBlock(wifiTxDataComp(Rate::R12, false), dataBits);

    auto p = compileThreadedPipeline(
        wifiTxDataComp(Rate::R12, true),
        CompilerOptions::forLevel(OptLevel::None));
    MemSource src(dataBits, 1);
    VecSink sink(4);
    p->run(src, sink);
    EXPECT_EQ(sink.data(), single);
}

TEST(Params, SignalRoundTrip)
{
    for (Rate r : allRates()) {
        for (int len : {1, 64, 1500, 4095}) {
            auto bits = signalBits(r, len);
            SignalInfo si = parseSignal(bits);
            EXPECT_TRUE(si.valid);
            EXPECT_EQ(si.rate, r);
            EXPECT_EQ(si.length, len);
        }
    }
}

TEST(Params, SignalParityDetectsErrors)
{
    auto bits = signalBits(Rate::R12, 100);
    bits[3] ^= 1;
    EXPECT_FALSE(parseSignal(bits).valid);
}

TEST(Params, DataFieldSizes)
{
    // 100-byte PSDU at 6 Mbps: 16+800+6 = 822 bits, 35 symbols of 24.
    EXPECT_EQ(dataSymbols(Rate::R6, 100), 35);
    EXPECT_EQ(dataFieldBits(Rate::R6, 100), 35 * 24);
    // At 54 Mbps: ceil(822/216) = 4 symbols.
    EXPECT_EQ(dataSymbols(Rate::R54, 100), 4);
}

} // namespace
} // namespace ziria
