/**
 * @file
 * Tests for the observability layer: metric primitives and the registry,
 * JSON export, leveled logging, compiler pass tracing, and the per-node
 * runtime counters — which must agree with RunStats and must never
 * change what an instrumented pipeline computes.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/log.h"
#include "support/metrics.h"
#include "zast/builder.h"
#include "zexec/trace.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace zb;

std::vector<uint8_t>
fromInts(const std::vector<int32_t>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

/** Braces/brackets balance and strings stay closed: cheap JSON sanity. */
bool
balancedJson(const std::string& s)
{
    int depth = 0;
    bool inStr = false;
    for (size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (inStr) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inStr = false;
        } else if (c == '"') {
            inStr = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !inStr;
}

TEST(Metrics, CounterAndGauge)
{
    metrics::Counter c;
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    metrics::Gauge g;
    g.set(3.5);
    g.set(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
    EXPECT_DOUBLE_EQ(g.maxValue(), 3.5);
}

TEST(Metrics, HistogramBucketsAndStats)
{
    using H = metrics::Histogram;
    // Values below 2^kSubBits are recorded exactly.
    for (uint64_t x = 0; x < H::kSubBuckets; ++x)
        EXPECT_EQ(H::bucketOf(x), static_cast<int>(x));
    // 16..31 land in segment 1, still one value per bucket.
    EXPECT_EQ(H::bucketOf(16), 16);
    EXPECT_EQ(H::bucketOf(31), 31);
    // Segment 2 halves resolution: 32 and 33 share a bucket, 34 doesn't.
    EXPECT_EQ(H::bucketOf(32), 32);
    EXPECT_EQ(H::bucketOf(33), 32);
    EXPECT_EQ(H::bucketOf(34), 33);
    EXPECT_EQ(H::bucketOf(~uint64_t{0}), H::kBuckets - 1);
    // Bucket bounds invert bucketOf.
    for (int i = 0; i < H::kBuckets; ++i) {
        EXPECT_EQ(H::bucketOf(H::bucketLow(i)), i) << i;
        EXPECT_EQ(H::bucketOf(H::bucketLow(i) + H::bucketWidth(i) - 1), i)
            << i;
    }

    metrics::Histogram h;
    for (uint64_t x : {5u, 0u, 100u, 7u})
        h.observe(x);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 112u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 28.0);
    EXPECT_EQ(h.bucket(H::bucketOf(5)), 1u);  // exact segment: 5 alone
    EXPECT_EQ(h.bucket(H::bucketOf(7)), 1u);
    EXPECT_EQ(h.bucket(H::bucketOf(100)), 1u);
}

TEST(Metrics, HistogramPercentiles)
{
    metrics::Histogram h;
    // Empty histogram: all quantiles are 0.
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(0.999), 0u);

    // Single observation: every quantile is that value.
    h.observe(42);
    EXPECT_EQ(h.percentile(0.0), 42u);
    EXPECT_EQ(h.percentile(0.5), 42u);
    EXPECT_EQ(h.percentile(0.99), 42u);
    EXPECT_EQ(h.percentile(1.0), 42u);

    // Uniform 1..1000: quantiles within the ~6% sub-bucket error.
    metrics::Histogram u;
    for (uint64_t x = 1; x <= 1000; ++x)
        u.observe(x);
    auto near = [](uint64_t got, uint64_t want) {
        double rel = std::abs(static_cast<double>(got) -
                              static_cast<double>(want)) /
                     static_cast<double>(want);
        return rel <= 0.08;
    };
    EXPECT_TRUE(near(u.percentile(0.50), 500)) << u.percentile(0.50);
    EXPECT_TRUE(near(u.percentile(0.90), 900)) << u.percentile(0.90);
    EXPECT_TRUE(near(u.percentile(0.99), 990)) << u.percentile(0.99);
    EXPECT_TRUE(near(u.percentile(0.999), 999)) << u.percentile(0.999);
    EXPECT_EQ(u.percentile(1.0), 1000u);

    // Values in the exact segment come back exactly.
    metrics::Histogram e;
    for (int i = 0; i < 99; ++i)
        e.observe(3);
    e.observe(9);
    EXPECT_EQ(e.percentile(0.5), 3u);
    EXPECT_EQ(e.percentile(0.999), 9u);

    // merge folds counts and extremes.
    metrics::Histogram a, b;
    a.observe(10);
    b.observe(1000);
    b.observe(2000);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 2000u);
    EXPECT_EQ(a.percentile(0.0), 10u);
    EXPECT_EQ(a.percentile(1.0), 2000u);
    metrics::Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Metrics, RegistryStableRefsAndSnapshot)
{
    metrics::Registry reg;
    metrics::Counter& a = reg.counter("zz.last");
    a.inc();
    // Creating more metrics must not invalidate the earlier reference.
    for (int i = 0; i < 100; ++i)
        reg.counter("c" + std::to_string(i)).inc();
    a.inc();
    EXPECT_EQ(reg.counter("zz.last").value(), 2u);

    auto snap = reg.counterValues();
    ASSERT_EQ(snap.size(), 101u);
    EXPECT_EQ(snap.back().first, "zz.last");  // sorted by name
    EXPECT_EQ(snap.back().second, 2u);

    reg.clear();
    EXPECT_TRUE(reg.counterValues().empty());
}

TEST(Metrics, JsonEscape)
{
    EXPECT_EQ(metrics::jsonEscape("a\"b\\c\nd\te"),
              "a\\\"b\\\\c\\nd\\te");
    EXPECT_EQ(metrics::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Metrics, JsonWriterDocument)
{
    metrics::JsonWriter w;
    w.beginObject();
    w.field("s", "hi");
    w.field("n", uint64_t{18446744073709551615ull});
    w.field("i", -7);
    w.field("b", true);
    w.beginArray("xs");
    w.value(uint64_t{1});
    w.value(2.5);
    w.endArray();
    w.beginObject("o");
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"s\":\"hi\",\"n\":18446744073709551615,\"i\":-7,"
              "\"b\":true,\"xs\":[1,2.5],\"o\":{}}");
}

TEST(Metrics, JsonWriterNonFiniteBecomesNull)
{
    metrics::JsonWriter w;
    w.beginObject();
    w.field("x", 0.0 / 0.0);
    w.endObject();
    EXPECT_EQ(w.str(), "{\"x\":null}");
}

TEST(Metrics, RegistryToJsonWellFormed)
{
    metrics::Registry reg;
    reg.counter("runs").add(3);
    reg.gauge("load").set(0.5);
    reg.histogram("ns").observe(42);
    std::string doc = metrics::toJson(reg);
    EXPECT_TRUE(balancedJson(doc)) << doc;
    EXPECT_NE(doc.find("\"runs\":3"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"load\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"ns\""), std::string::npos) << doc;
}

TEST(Log, ParseLevel)
{
    using log::Level;
    EXPECT_EQ(log::parseLevel("error"), Level::Error);
    EXPECT_EQ(log::parseLevel("warn"), Level::Warn);
    EXPECT_EQ(log::parseLevel("info"), Level::Info);
    EXPECT_EQ(log::parseLevel("debug"), Level::Debug);
    EXPECT_EQ(log::parseLevel("trace"), Level::Trace);
    EXPECT_EQ(log::parseLevel("5"), Level::Trace);
    EXPECT_EQ(log::parseLevel("0"), Level::None);
    EXPECT_EQ(log::parseLevel("garbage"), Level::None);
}

TEST(Log, LevelGatesOutputAndSinkRedirects)
{
    std::FILE* f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    log::setSink(f);
    log::setLevel(log::Level::Warn);
    log::write(log::Level::Info, "hidden");
    log::write(log::Level::Error, "boom");
    ZIRIA_LOG(Warn, "n=", 7);
    log::setLevel(log::Level::None);
    log::setSink(nullptr);

    std::fflush(f);
    std::rewind(f);
    char buf[256] = {};
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::string got(buf, n);
    EXPECT_EQ(got.find("hidden"), std::string::npos) << got;
    EXPECT_NE(got.find("boom"), std::string::npos) << got;
    EXPECT_NE(got.find("n=7"), std::string::npos) << got;
}

TEST(PassTrace, RecordsCollectedDuringCompile)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr program = repeatc(seqc({bindc(x, take(Type::int32())),
                                    just(emit(var(x) + 1))}));
    PassTracer tracer(0);  // collect only, no narration
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::All);
    opt.tracer = &tracer;
    CompileReport rep;
    compilePipeline(program, opt, &rep);

    ASSERT_GE(rep.passes.size(), 5u);
    EXPECT_EQ(rep.passes.size(), tracer.records().size());
    bool sawElaborate = false, sawVectorize = false;
    for (const auto& r : rep.passes) {
        EXPECT_GT(r.nodesBefore, 0) << r.name;
        EXPECT_GT(r.nodesAfter, 0) << r.name;
        EXPECT_GE(r.sec, 0.0) << r.name;
        sawElaborate |= r.name == "elaborate";
        sawVectorize |= r.name == "vectorize";
    }
    EXPECT_TRUE(sawElaborate);
    EXPECT_TRUE(sawVectorize);

    metrics::JsonWriter w;
    w.beginObject();
    tracer.writeJson(w, "passes");
    w.endObject();
    EXPECT_TRUE(balancedJson(w.str())) << w.str();
    EXPECT_NE(w.str().find("\"elaborate\""), std::string::npos);
}

TEST(PassTrace, CompKindNamesAndCountComp)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr c = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x)))}));
    EXPECT_STREQ(compKindName(c->kind()), "repeat");
    EXPECT_EQ(countComp(c), 4);  // repeat + seq + take + emit
}

TEST(Trace, InstrumentedCountersMatchRunStats)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr program = repeatc(seqc({bindc(x, take(Type::int32())),
                                    just(emit(var(x) * 2))}));
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.instrument = true;
    opt.sampleShift = 0;  // time every advance
    auto p = compilePipeline(program, opt);

    RunStats st;
    p->runBytes(fromInts({1, 2, 3, 4, 5}), &st);
    EXPECT_EQ(st.consumed, 5u);
    EXPECT_EQ(st.emitted, 5u);

    ASSERT_NE(st.metrics, nullptr);
    ASSERT_FALSE(st.metrics->nodes.empty());
    const NodeMetrics* root = nullptr;
    for (const auto& n : st.metrics->nodes)
        if (n.path == "root")
            root = &n;
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->kind, "repeat");
    EXPECT_EQ(root->elemsOut(), st.emitted);
    EXPECT_EQ(root->elemsIn(), st.consumed);
    EXPECT_GE(root->advances, root->yields);
    EXPECT_EQ(root->yields + root->needInputs + root->dones,
              root->advances);
    EXPECT_EQ(root->samples, root->advances);  // sampleShift 0
    EXPECT_EQ(root->inWidth, 4u);
    EXPECT_EQ(root->outWidth, 4u);
}

TEST(Trace, CountersAccumulateAcrossRuns)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr program = repeatc(seqc({bindc(x, take(Type::int32())),
                                    just(emit(var(x)))}));
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.instrument = true;
    auto p = compilePipeline(program, opt);
    p->runBytes(fromInts({1, 2, 3}));
    RunStats st;
    p->runBytes(fromInts({4, 5}), &st);
    ASSERT_NE(st.metrics, nullptr);
    const NodeMetrics* root = nullptr;
    for (const auto& n : st.metrics->nodes)
        if (n.path == "root")
            root = &n;
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->elemsIn(), 5u);  // cumulative over both runs
}

TEST(Trace, InstrumentationPreservesOutput)
{
    auto mkProgram = [] {
        // Exercises map-chain coalescing under the shims (the pipe of
        // two maps must still collapse into one MapChainNode).
        VarRef a = freshVar("a", Type::int32());
        VarRef b = freshVar("b", Type::int32());
        FunRef f = fun("inc", {a}, {}, var(a) + 1);
        FunRef g = fun("dbl", {b}, {}, var(b) * 2);
        return pipe(mapc(f), mapc(g));
    };
    std::vector<int32_t> input;
    for (int i = 0; i < 512; ++i)
        input.push_back(i * 3 - 700);

    auto plain = compilePipeline(
        mkProgram(), CompilerOptions::forLevel(OptLevel::All));
    CompilerOptions iopt = CompilerOptions::forLevel(OptLevel::All);
    iopt.instrument = true;
    auto traced = compilePipeline(mkProgram(), iopt);

    EXPECT_EQ(plain->runBytes(fromInts(input)),
              traced->runBytes(fromInts(input)));

    // The coalesced-away children are marked discarded and excluded
    // from the export.
    ASSERT_NE(traced->metrics(), nullptr);
    std::string doc = traced->metrics()->toJson();
    EXPECT_TRUE(balancedJson(doc)) << doc;
    for (const auto& n : traced->metrics()->nodes) {
        if (n.discarded) {
            EXPECT_EQ(doc.find("\"" + n.path + "\""), std::string::npos);
        }
    }
}

TEST(Trace, NodePathsAreStableAcrossIdenticalBuilds)
{
    // Dashboards and diffing tools key on node paths, so two compiles
    // of the same program at the same options must agree exactly —
    // path, kind, and widths — independent of fresh-variable counters
    // and other global state consumed in between.
    auto mkProgram = [] {
        VarRef x = freshVar("x", Type::int32());
        VarRef y = freshVar("y", Type::int32());
        CompPtr inc = repeatc(seqc({bindc(x, take(Type::int32())),
                                    just(emit(var(x) + 1))}));
        CompPtr dbl = repeatc(seqc({bindc(y, take(Type::int32())),
                                    just(emit(var(y) * 2))}));
        return pipe(std::move(inc), std::move(dbl));
    };
    auto shape = [](const CompPtr& program) {
        CompilerOptions opt = CompilerOptions::forLevel(OptLevel::All);
        opt.instrument = true;
        auto p = compilePipeline(program, opt);
        p->runBytes(std::vector<uint8_t>(64, 0));
        std::vector<std::string> out;
        for (const auto& n : p->metrics()->nodes)
            out.push_back(n.path + "|" + n.kind + "|" +
                          std::to_string(n.inWidth) + "|" +
                          std::to_string(n.outWidth));
        return out;
    };
    auto first = shape(mkProgram());
    // Disturb global freshVar state between the two builds.
    for (int i = 0; i < 37; ++i)
        freshVar("noise", Type::bit());
    auto second = shape(mkProgram());
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);

    // Paths must also be unique: a duplicated path would merge two
    // nodes' counters in the export.
    auto sorted = first;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());
}

TEST(Trace, CoalescedMapChainChildrenStayOutOfExport)
{
    // With AST-level fusion off, adjacent maps coalesce at node-build
    // time instead: the chain keeps one live node and the trace shims
    // of the two swallowed children must be flagged discarded and left
    // out of the JSON export.
    VarRef a = freshVar("a", Type::int32());
    VarRef b = freshVar("b", Type::int32());
    FunRef f = fun("inc", {a}, {}, var(a) + 1);
    FunRef g = fun("dbl", {b}, {}, var(b) * 2);
    CompilerOptions iopt = CompilerOptions::forLevel(OptLevel::None);
    iopt.instrument = true;
    auto p = compilePipeline(pipe(mapc(f), mapc(g)), iopt);
    p->runBytes(fromInts({1, 2, 3, 4}));

    ASSERT_NE(p->metrics(), nullptr);
    size_t discarded = 0;
    size_t live = 0;
    std::string doc = p->metrics()->toJson();
    EXPECT_TRUE(balancedJson(doc)) << doc;
    for (const auto& n : p->metrics()->nodes) {
        bool exported =
            doc.find("\"" + n.path + "\"") != std::string::npos;
        if (n.discarded) {
            ++discarded;
            EXPECT_FALSE(exported) << n.path;
        } else {
            ++live;
            EXPECT_TRUE(exported) << n.path;
        }
    }
    EXPECT_GE(discarded, 2u) << "map-chain children were not coalesced";
    EXPECT_GE(live, 1u);
}

TEST(Trace, UninstrumentedPipelineHasNoMetrics)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr program = repeatc(seqc({bindc(x, take(Type::int32())),
                                    just(emit(var(x)))}));
    auto p = compilePipeline(program,
                             CompilerOptions::forLevel(OptLevel::None));
    RunStats st;
    p->runBytes(fromInts({1, 2}), &st);
    EXPECT_EQ(p->metrics(), nullptr);
    EXPECT_EQ(st.metrics, nullptr);
}

TEST(Trace, GlobalRegistryCountsRuns)
{
    uint64_t before =
        metrics::Registry::global().counter("ziria.pipeline_runs").value();
    VarRef x = freshVar("x", Type::int32());
    auto p = compilePipeline(
        repeatc(seqc({bindc(x, take(Type::int32())),
                      just(emit(var(x)))})),
        CompilerOptions::forLevel(OptLevel::None));
    p->runBytes(fromInts({1}));
    p->runBytes(fromInts({2}));
    EXPECT_EQ(
        metrics::Registry::global().counter("ziria.pipeline_runs").value(),
        before + 2);
}

} // namespace
} // namespace ziria
