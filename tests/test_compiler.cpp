/**
 * @file
 * Compiler-driver tests: optimization presets, pass reports, constant
 * folding across the computation layer, elaboration state isolation,
 * pretty-printer sanity, and the forced-vectorization annotation.
 */
#include <gtest/gtest.h>

#include "support/rng.h"
#include "zast/builder.h"
#include "zast/printer.h"
#include "zcheck/check.h"
#include "zir/compiler.h"
#include "zopt/passes.h"

namespace ziria {
namespace {

using namespace zb;

TEST(Presets, LevelsToggleTheRightPasses)
{
    auto none = CompilerOptions::forLevel(OptLevel::None);
    EXPECT_FALSE(none.vectorize);
    EXPECT_FALSE(none.autoLut);
    auto vect = CompilerOptions::forLevel(OptLevel::Vectorize);
    EXPECT_TRUE(vect.vectorize);
    EXPECT_FALSE(vect.autoLut);
    EXPECT_EQ(vect.vect.lutBonus, 0);
    auto all = CompilerOptions::forLevel(OptLevel::All);
    EXPECT_TRUE(all.vectorize);
    EXPECT_TRUE(all.autoLut);
    EXPECT_GT(all.vect.lutBonus, 0);
}

TEST(Report, PhasesAndSignatureFilled)
{
    VarRef x = freshVar("x", Type::bit());
    CompPtr c = repeatc(seqc({bindc(x, take(Type::bit())),
                              just(emit(var(x) ^ cBit(1)))}));
    CompileReport rep;
    auto p = compilePipeline(c, CompilerOptions::forLevel(OptLevel::All),
                             &rep);
    (void)p;
    EXPECT_FALSE(rep.signature.isComputer);
    EXPECT_GT(rep.vect.generated, 0);
    EXPECT_GT(rep.build.nodes, 0);
    EXPECT_GE(rep.totalSec(), 0.0);
    EXPECT_GT(rep.frameBytes, 0u);
}

TEST(FoldComp, ConstIfSelectsBranchStatically)
{
    CompPtr c = ifc(cBool(true) && cBool(true), emit(cInt(1)),
                    emit(cInt(2)));
    CompPtr folded = foldComp(c);
    EXPECT_EQ(folded->kind(), CompKind::Emit);
}

TEST(FoldComp, DeadStatementBranchesDropped)
{
    VarRef y = freshVar("y", Type::int32());
    StmtList body{sIf(cBool(false), {assign(var(y), cInt(1))},
                      {assign(var(y), cInt(2))})};
    CompPtr c = letvar(y, cInt(0),
                       seqc({just(doS(std::move(body))),
                             just(emit(var(y)))}));
    auto p = compilePipeline(c, CompilerOptions::forLevel(OptLevel::All));
    auto out = p->runBytes({});
    int32_t v;
    std::memcpy(&v, out.data(), 4);
    EXPECT_EQ(v, 2);
}

TEST(Elaborate, TwoInstancesOfStatefulCompAreIsolated)
{
    // let comp counter() = var n := 0 in repeat { take; n++; emit n }
    auto def = std::make_shared<CompFunDef>();
    {
        VarRef n = freshVar("n", Type::int32());
        VarRef x = freshVar("x", Type::int32());
        def->name = "counter";
        def->body = letvar(
            n, cInt(0),
            repeatc(seqc({bindc(x, take(Type::int32())),
                          just(doS({assign(var(n), var(n) + 1)})),
                          just(emit(var(n)))})));
    }
    // counter() >>> counter(): the second must count its own stream.
    CompPtr program = pipe(callcomp(def), callcomp(def));
    auto p = compilePipeline(program,
                             CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in{100, 100, 100};
    std::vector<uint8_t> bytes(12);
    std::memcpy(bytes.data(), in.data(), 12);
    auto out = p->runBytes(bytes);
    std::vector<int32_t> got(3);
    std::memcpy(got.data(), out.data(), 12);
    // Each instance counts independently: second sees 1,2,3 as input and
    // emits its own count 1,2,3.
    EXPECT_EQ(got, (std::vector<int32_t>{1, 2, 3}));
}

TEST(ForcedVectorization, HintWrapsDynamicBodies)
{
    // A dynamic-cardinality pass-through with a forced [8, 8] hint keeps
    // its behaviour and reports the forced width.
    auto mk = [](bool hinted) {
        VarRef n = freshVar("n", Type::int32());
        VarRef x = freshVar("x", Type::bit());
        CompPtr body = seqc(
            {just(doS({assign(var(n), cInt(0))})),
             just(whilec(var(n) < 4,
                         seqc({bindc(x, take(Type::bit())),
                               just(emit(var(x))),
                               just(doS({assign(var(n),
                                                var(n) + 1)}))})))});
        std::optional<VectHint> h;
        if (hinted)
            h = VectHint{8, 8};
        return letvar(n, cInt(0), repeatc(std::move(body), h));
    };
    Rng rng(3);
    std::vector<uint8_t> bits(256);
    for (auto& b : bits)
        b = rng.bit();
    auto expect = compilePipeline(
        mk(false), CompilerOptions::forLevel(OptLevel::None))
        ->runBytes(bits);
    CompileReport rep;
    auto p = compilePipeline(mk(true),
                             CompilerOptions::forLevel(OptLevel::Vectorize),
                             &rep);
    EXPECT_EQ(rep.vect.chosenIn, 8);
    EXPECT_EQ(p->runBytes(bits), expect);
}

TEST(Printer, StableAcrossCloning)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr c = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit((var(x) + 1) * 2))}));
    CompPtr clone = cloneComp(c);
    auto normalize = [](std::string s) {
        for (size_t i = 0; i < s.size(); ++i) {
            if (s[i] == '_') {
                size_t j = i + 1;
                while (j < s.size() && std::isdigit(
                                           static_cast<unsigned char>(
                                               s[j])))
                    ++j;
                s.erase(i + 1, j - i - 1);
            }
        }
        return s;
    };
    EXPECT_EQ(normalize(showComp(c)), normalize(showComp(clone)));
}

TEST(Printer, ShowsStructsAndCalls)
{
    TypePtr h = Type::strct("H", {{"a", Type::int32()}});
    VarRef v = freshVar("h", h);
    std::string s = showExpr(field(var(v), "a"));
    EXPECT_NE(s.find(".a"), std::string::npos);
}

TEST(Frame, LayoutPinsSymbols)
{
    // A symbol that dies after registration must keep its slot unique:
    // allocate a slot, drop the handle, allocate many new vars, and
    // confirm no offset is ever reused.
    FrameLayout layout;
    std::vector<size_t> offs;
    for (int i = 0; i < 200; ++i) {
        VarRef v = freshVar("t", Type::int32());
        offs.push_back(layout.add(v));
        // v dies here; its heap address may be recycled by the allocator
    }
    std::sort(offs.begin(), offs.end());
    EXPECT_TRUE(std::adjacent_find(offs.begin(), offs.end()) ==
                offs.end());
    EXPECT_EQ(layout.frameSize(), 200u * 4u);
}

TEST(MapChain, CoalescedChainMatchesPipes)
{
    // A chain of stateful maps must behave identically whether executed
    // through pipes or coalesced into one MapChainNode.
    auto mkChain = [] {
        CompPtr c = nullptr;
        for (int i = 0; i < 5; ++i) {
            VarRef s = freshVar("s", Type::int32());
            VarRef x = freshVar("x", Type::int32());
            FunRef f = fun("acc" + std::to_string(i), {x},
                           {assign(var(s), var(s) + var(x))},
                           var(x) ^ var(s));
            CompPtr m = mapc(f);
            c = c ? pipe(std::move(c), std::move(m)) : std::move(m);
        }
        return c;
    };
    Rng rng(17);
    std::vector<int32_t> in(2000);
    for (auto& v : in)
        v = static_cast<int32_t>(rng.next());
    std::vector<uint8_t> bytes(in.size() * 4);
    std::memcpy(bytes.data(), in.data(), bytes.size());

    // Reference: evaluate the chain semantics directly.
    std::vector<int32_t> state(5, 0);
    std::vector<int32_t> expect;
    for (int32_t v : in) {
        int32_t cur = v;
        for (int k = 0; k < 5; ++k) {
            // Two's-complement wraparound, matching the VM's int32 add.
            state[static_cast<size_t>(k)] = static_cast<int32_t>(
                static_cast<uint32_t>(state[static_cast<size_t>(k)]) +
                static_cast<uint32_t>(cur));
            cur = cur ^ state[static_cast<size_t>(k)];
        }
        expect.push_back(cur);
    }
    auto p = compilePipeline(mkChain(),
                             CompilerOptions::forLevel(OptLevel::None));
    auto out = p->runBytes(bytes);
    std::vector<int32_t> got(out.size() / 4);
    std::memcpy(got.data(), out.data(), out.size());
    EXPECT_EQ(got, expect);
}

TEST(Pipeline, RunStatsAccounting)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr c = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x))),
                              just(emit(var(x)))}));
    auto p = compilePipeline(c, CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in{1, 2, 3, 4, 5};
    std::vector<uint8_t> bytes(20);
    std::memcpy(bytes.data(), in.data(), 20);
    RunStats st;
    p->runBytes(bytes, &st);
    EXPECT_EQ(st.consumed, 5u);
    EXPECT_EQ(st.emitted, 10u);
    EXPECT_FALSE(st.halted);
}

} // namespace
} // namespace ziria
