/**
 * @file
 * Durable session resume and live migration tests (ctest labels
 * `serve`, `checkpoint`): keyed sessions re-attaching from the on-disk
 * checkpoint store after a hard client disconnect, live Migrate
 * hand-off between two running servers (byte-identity for the moved
 * session, zero disturbance for its neighbor, live_{sent,received}
 * counters), rejection rollback (a failed hand-off leaves the source
 * session running, no data loss), the negotiated above-1-MiB
 * Checkpoint/Migrate payload cap through the frame parser, and the
 * fused-backend x stage-scope startup refusal.
 *
 * All traffic is loopback TCP; no test talks to the outside world.
 */
#include <dirent.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/metrics.h"
#include "support/panic.h"
#include "support/rng.h"
#include "zir/compiler.h"
#include "zparse/parser.h"
#include "zserve/server.h"
#include "zserve/socket.h"
#include "zserve/wire.h"

namespace ziria {
namespace serve {
namespace {

const char* kScramblerSrc = R"(
let comp scrambler() =
    var scrmbl_st : arr[7] bit := {'1,'1,'1,'1,'1,'1,'1} in
    repeat {
        seq { (x : bit) <- take : bit
            ; (tmp : bit) <- return (scrmbl_st[3] ^ scrmbl_st[0])
            ; do { scrmbl_st[0, 6] := scrmbl_st[1, 6];
                   scrmbl_st[6] := tmp; }
            ; emit (x ^ tmp)
            }
    }

scrambler()
)";

std::vector<uint8_t>
randomBits(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = rng.bit();
    return out;
}

Server::PipelineFactory
scramblerFactory()
{
    CompPtr program = parseComp(kScramblerSrc);
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::All);
    return [program, opt](uint64_t) {
        return compilePipeline(program, opt, nullptr);
    };
}

std::vector<uint8_t>
soloRun(const Server::PipelineFactory& factory,
        const std::vector<uint8_t>& input)
{
    auto p = factory(~0ull);
    return p->runBytes(input);
}

uint64_t
ctrValue(const char* name)
{
    return metrics::Registry::global().counter(name).value();
}

std::string
scratchDir(const char* tag)
{
    static int seq = 0;
    return std::string("/tmp/ziria_test_migrate.") +
           std::to_string(::getpid()) + "." + tag + "." +
           std::to_string(seq++);
}

void
nukeDir(const std::string& path)
{
    DIR* d = ::opendir(path.c_str());
    if (!d) {
        ::unlink(path.c_str());
        return;
    }
    while (struct dirent* e = ::readdir(d)) {
        std::string n = e->d_name;
        if (n == "." || n == "..")
            continue;
        nukeDir(path + "/" + n);
    }
    ::closedir(d);
    ::rmdir(path.c_str());
}

/**
 * A blocking keyed-session client speaking the attach/resume protocol:
 * connect, read the greeting, attach with the key and the output byte
 * count received so far, read the resume Hello, and stream/drain in
 * explicit steps so tests control the interleaving.
 */
struct KeyedClient
{
    SockFd sock;
    FrameParser parser;
    HelloInfo greet;     ///< server greeting (widths + ckpt cap)
    HelloInfo resume;    ///< resume acknowledgement (resumeElems)
    std::vector<uint8_t> out;
    std::string errorMsg;
    bool sawEnd = false;
    bool sawError = false;
    bool sawRedirect = false;
    std::string redirectHost;
    uint16_t redirectPort = 0;

    bool
    readFrame(Frame& f)
    {
        uint8_t buf[16 * 1024];
        for (;;) {
            FrameParser::Result r = parser.next(f);
            if (r == FrameParser::Result::Frame)
                return true;
            if (r == FrameParser::Result::Error)
                return false;
            long n = recvSome(sock.get(), buf, sizeof buf);
            if (n > 0) {
                parser.feed(buf, static_cast<size_t>(n));
                continue;
            }
            if (n != -1)
                return false;
        }
    }

    /** Connect + attach; true when the resume Hello arrived. */
    bool
    attach(uint16_t port, const std::string& key)
    {
        parser = FrameParser();
        sock = connectTcp("127.0.0.1", port);
        if (sock.get() < 0)
            return false;
        Frame f;
        if (!readFrame(f) || f.type != FrameType::Hello ||
            !decodeHello(f.payload, greet))
            return false;
        std::vector<uint8_t> wire;
        encodeAttachHello(wire, key, out.size());
        if (!sendAll(sock.get(), wire.data(), wire.size()))
            return false;
        if (!readFrame(f))
            return false;
        if (f.type == FrameType::Error) {
            sawError = true;
            errorMsg.assign(f.payload.begin(), f.payload.end());
            return false;
        }
        return f.type == FrameType::Hello &&
               decodeHello(f.payload, resume) && resume.hasResume;
    }

    /** Send @p input elements [from, to) as Data frames. */
    bool
    sendRange(const std::vector<uint8_t>& input, uint64_t fromElem,
              uint64_t toElem)
    {
        size_t w = greet.inWidth ? greet.inWidth : 1;
        size_t off = static_cast<size_t>(fromElem) * w;
        size_t end = static_cast<size_t>(toElem) * w;
        const size_t chunk = 256 * w;
        while (off < end) {
            size_t n = std::min(chunk, end - off);
            std::vector<uint8_t> wire;
            encodeFrame(wire, FrameType::Data, input.data() + off, n);
            if (!sendAll(sock.get(), wire.data(), wire.size()))
                return false;
            off += n;
        }
        return true;
    }

    bool
    sendEnd()
    {
        std::vector<uint8_t> wire;
        encodeFrame(wire, FrameType::End);
        return sendAll(sock.get(), wire.data(), wire.size());
    }

    /** Read until End, Error, Redirect, or close. */
    void
    drain()
    {
        Frame f;
        while (readFrame(f)) {
            switch (f.type) {
              case FrameType::Data:
                out.insert(out.end(), f.payload.begin(), f.payload.end());
                break;
              case FrameType::End:
                sawEnd = true;
                return;
              case FrameType::Error:
                sawError = true;
                errorMsg.assign(f.payload.begin(), f.payload.end());
                return;
              case FrameType::Migrate:
                if (!f.payload.empty() &&
                    f.payload[0] ==
                        static_cast<uint8_t>(MigrateSub::Redirect) &&
                    decodeMigrateRedirect(f.payload, redirectHost,
                                          redirectPort)) {
                    sawRedirect = true;
                    return;
                }
                break;
              default:
                break;  // Hello / Halt / Stat / Checkpoint: ignore
            }
        }
    }
};

/**
 * Attach with retry: a hard-closed predecessor session may still be
 * live on the server for a poll tick or two, so the key can be busy.
 */
bool
attachWithRetry(KeyedClient& c, uint16_t port, const std::string& key,
                int ms = 3000)
{
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    for (;;) {
        c.sawError = false;
        c.errorMsg.clear();
        if (c.attach(port, key))
            return true;
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

/** Operator-side migrate request; returns the Ack's ok flag. */
bool
requestMigrate(uint16_t srcPort, const std::string& key,
               const std::string& peerHost, uint16_t peerPort,
               std::string* msg = nullptr)
{
    SockFd sock = connectTcp("127.0.0.1", srcPort);
    if (sock.get() < 0)
        return false;
    FrameParser parser;
    Frame f;
    uint8_t buf[4096];
    auto read = [&](Frame& out) {
        for (;;) {
            FrameParser::Result r = parser.next(out);
            if (r == FrameParser::Result::Frame)
                return true;
            if (r == FrameParser::Result::Error)
                return false;
            long n = recvSome(sock.get(), buf, sizeof buf);
            if (n > 0) {
                parser.feed(buf, static_cast<size_t>(n));
                continue;
            }
            if (n != -1)
                return false;
        }
    };
    if (!read(f) || f.type != FrameType::Hello)
        return false;
    std::vector<uint8_t> wire;
    encodeMigrateRequest(wire, key, peerHost, peerPort);
    if (!sendAll(sock.get(), wire.data(), wire.size()))
        return false;
    while (read(f)) {
        if (f.type != FrameType::Migrate)
            continue;
        bool ok = false;
        std::string m;
        if (!decodeMigrateAck(f.payload, ok, m))
            return false;
        if (msg)
            *msg = m;
        return ok;
    }
    return false;
}

// -------------------------------------------- disk re-attach resume

TEST(Migrate, DiskReattachResumesByteIdentical)
{
    auto factory = scramblerFactory();
    std::string dir = scratchDir("reattach");
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.ckptDir = dir;
    cfg.ckptIntervalMs = 5;
    Server server(factory, cfg);
    server.start();

    auto input = randomBits(65536 * 8, 31);
    auto expect = soloRun(factory, input);
    const uint64_t totalElems = input.size() / 8;

    // First attach: stream half the input, give the persist cadence a
    // few turns, then die without warning (no End, hard close).
    KeyedClient c1;
    ASSERT_TRUE(c1.attach(server.port(), "reattach-1")) << c1.errorMsg;
    EXPECT_EQ(c1.resume.resumeElems, 0u);
    ASSERT_TRUE(c1.sendRange(input, 0, totalElems / 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    std::vector<uint8_t> sofar;
    {
        // Read the full output for the half input before "crashing":
        // the retained-tail window is keyed to bytes the kernel
        // accepted, so a client that resumes must present at least
        // that count — exactly what a live client that kept reading
        // until the crash would hold.  The scrambler is one-for-one,
        // so the half input yields exactly half the expected bytes.
        Frame f;
        uint8_t buf[16 * 1024];
        long n;
        while (sofar.size() < expect.size() / 2 &&
               (n = recvSome(c1.sock.get(), buf, sizeof buf)) > 0) {
            c1.parser.feed(buf, static_cast<size_t>(n));
            while (c1.parser.next(f) == FrameParser::Result::Frame)
                if (f.type == FrameType::Data)
                    sofar.insert(sofar.end(), f.payload.begin(),
                                 f.payload.end());
        }
        ASSERT_EQ(sofar.size(), expect.size() / 2);
    }
    // Die abortively (RST, as a crashed process would after the kernel
    // tears the connection down), not with an orderly FIN — the server
    // treats a clean half-close as End-of-input, which would drain the
    // session to completion and delete the durable key.
    {
        struct linger lg;
        lg.l_onoff = 1;
        lg.l_linger = 0;
        ::setsockopt(c1.sock.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    }
    c1.sock = SockFd();  // hard close mid-session

    // Second attach under the same key: the server restores from disk
    // and tells us which input element to resume from.
    KeyedClient c2;
    c2.out = std::move(sofar);
    ASSERT_TRUE(attachWithRetry(c2, server.port(), "reattach-1"))
        << c2.errorMsg;
    uint64_t from = c2.resume.resumeElems;
    ASSERT_LE(from, totalElems);
    ASSERT_TRUE(c2.sendRange(input, from, totalElems));
    ASSERT_TRUE(c2.sendEnd());
    c2.drain();
    EXPECT_TRUE(c2.sawEnd) << c2.errorMsg;
    EXPECT_EQ(c2.out, expect);

    server.stop();
    nukeDir(dir);
}

// ------------------------------------------------------ live migrate

TEST(Migrate, LiveHandOffByteIdenticalNeighborUntouched)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 2;
    Server a(factory, cfg);
    a.start();
    Server b(factory, cfg);
    b.start();

    auto input = randomBits(131072 * 8, 41);
    auto expect = soloRun(factory, input);
    const uint64_t totalElems = input.size() / 8;

    // Neighbor: a plain unkeyed session on A, running concurrently.
    auto nbrInput = randomBits(16384 * 8, 43);
    auto nbrExpect = soloRun(factory, nbrInput);
    std::vector<uint8_t> nbrOut;
    bool nbrEnd = false;
    std::thread nbr([&] {
        KeyedClient n;  // reuse the frame plumbing; no attach
        n.sock = connectTcp("127.0.0.1", a.port());
        Frame f;
        if (!n.readFrame(f) || f.type != FrameType::Hello ||
            !decodeHello(f.payload, n.greet))
            return;
        if (!n.sendRange(nbrInput, 0, nbrInput.size() / 8))
            return;
        if (!n.sendEnd())
            return;
        n.drain();
        nbrOut = std::move(n.out);
        nbrEnd = n.sawEnd;
    });

    uint64_t sent0 = ctrValue("server.migrations.live_sent");
    uint64_t recv0 = ctrValue("server.migrations.live_received");

    KeyedClient c;
    ASSERT_TRUE(c.attach(a.port(), "live-1")) << c.errorMsg;
    ASSERT_TRUE(c.sendRange(input, 0, totalElems / 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::string msg;
    ASSERT_TRUE(requestMigrate(a.port(), "live-1", "127.0.0.1", b.port(),
                               &msg))
        << msg;
    EXPECT_EQ(ctrValue("server.migrations.live_sent"), sent0 + 1);
    EXPECT_EQ(ctrValue("server.migrations.live_received"), recv0 + 1);

    // Drain A until the Redirect, then finish the session against B.
    c.drain();
    ASSERT_TRUE(c.sawRedirect) << c.errorMsg;
    EXPECT_EQ(c.redirectPort, b.port());
    ASSERT_TRUE(c.attach(c.redirectPort, "live-1")) << c.errorMsg;
    uint64_t from = c.resume.resumeElems;
    ASSERT_LE(from, totalElems);
    ASSERT_TRUE(c.sendRange(input, from, totalElems));
    ASSERT_TRUE(c.sendEnd());
    c.drain();
    EXPECT_TRUE(c.sawEnd) << c.errorMsg;
    EXPECT_EQ(c.out, expect);

    nbr.join();
    EXPECT_TRUE(nbrEnd);
    EXPECT_EQ(nbrOut, nbrExpect);

    a.stop();
    b.stop();
}

TEST(Migrate, RejectedHandOffRollsBackWithoutDataLoss)
{
    auto factory = scramblerFactory();
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.migrateTimeoutMs = 1500;
    Server a(factory, cfg);
    a.start();

    auto input = randomBits(65536 * 8, 53);
    auto expect = soloRun(factory, input);
    const uint64_t totalElems = input.size() / 8;

    uint64_t failed0 = ctrValue("server.migrations.live_failed");

    KeyedClient c;
    ASSERT_TRUE(c.attach(a.port(), "roll-1")) << c.errorMsg;
    ASSERT_TRUE(c.sendRange(input, 0, totalElems / 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    // Peer port 1: connection refused, the hand-off must fail...
    std::string msg;
    EXPECT_FALSE(requestMigrate(a.port(), "roll-1", "127.0.0.1", 1, &msg));
    EXPECT_EQ(ctrValue("server.migrations.live_failed"), failed0 + 1);

    // ...and the session keeps running on A as if nothing happened.
    ASSERT_TRUE(c.sendRange(input, totalElems / 2, totalElems));
    ASSERT_TRUE(c.sendEnd());
    c.drain();
    EXPECT_TRUE(c.sawEnd) << c.errorMsg;
    EXPECT_FALSE(c.sawRedirect);
    EXPECT_EQ(c.out, expect);

    a.stop();
}

// ------------------------------------- negotiated checkpoint cap

TEST(Wire, CheckpointPayloadsExceedTheOrdinaryCap)
{
    EXPECT_EQ(payloadCapFor(FrameType::Data), kMaxPayload);
    EXPECT_EQ(payloadCapFor(FrameType::Checkpoint), kMaxCkptPayload);
    EXPECT_EQ(payloadCapFor(FrameType::Migrate), kMaxCkptPayload);
    EXPECT_GT(kMaxCkptPayload, kMaxPayload);

    // The greeting Hello advertises the negotiated cap.
    std::vector<uint8_t> wire;
    encodeHello(wire, 8, 8);
    FrameParser p;
    p.feed(wire.data(), wire.size());
    Frame f;
    ASSERT_EQ(p.next(f), FrameParser::Result::Frame);
    HelloInfo info;
    ASSERT_TRUE(decodeHello(f.payload, info));
    ASSERT_TRUE(info.hasCap);
    EXPECT_EQ(info.maxCkptPayload, kMaxCkptPayload);
}

TEST(Wire, NearLimitMigrateTransferRoundTripsThroughTheParser)
{
    // A Transfer well past the 1 MiB ordinary cap (satellite: raising
    // kMaxPayload for Checkpoint/Migrate frames): 8 MiB of synthetic
    // checkpoint must stream through the parser intact, fed in odd-
    // sized fragments.
    std::vector<uint8_t> ckpt(8u << 20);
    Rng rng(61);
    for (auto& b : ckpt)
        b = static_cast<uint8_t>(rng.next());
    std::vector<uint8_t> wire;
    encodeMigrateTransfer(wire, "big-1", ckpt);
    ASSERT_GT(wire.size(), kMaxPayload);

    FrameParser p;
    size_t off = 0;
    const size_t frag = 65537;
    Frame f;
    FrameParser::Result r = FrameParser::Result::NeedMore;
    while (off < wire.size()) {
        size_t n = std::min(frag, wire.size() - off);
        p.feed(wire.data() + off, n);
        off += n;
        r = p.next(f);
        if (r == FrameParser::Result::Frame)
            break;
        ASSERT_EQ(r, FrameParser::Result::NeedMore) << p.error();
    }
    ASSERT_EQ(r, FrameParser::Result::Frame) << p.error();
    ASSERT_EQ(f.type, FrameType::Migrate);
    std::string key;
    std::vector<uint8_t> got;
    ASSERT_TRUE(decodeMigrateTransfer(f.payload, key, got));
    EXPECT_EQ(key, "big-1");
    EXPECT_EQ(got, ckpt);

    // An ordinary Data frame the same size is still rejected.
    std::vector<uint8_t> bad;
    bad.push_back(kMagic0);
    bad.push_back(kMagic1);
    bad.push_back(static_cast<uint8_t>(FrameType::Data));
    bad.push_back(0);
    uint32_t len = (2u << 20);
    for (int i = 0; i < 4; ++i)
        bad.push_back(static_cast<uint8_t>(len >> (8 * i)));
    FrameParser q;
    q.feed(bad.data(), bad.size());
    Frame g;
    EXPECT_EQ(q.next(g), FrameParser::Result::Error);
}

// --------------------------------- fused x stage-scope refusal

TEST(Compile, FusedBackendRefusesStageScopeLoudly)
{
    CompPtr program = parseComp(kScramblerSrc);
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.backend = Backend::Fused;
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 2;
    opt.restart.scope = RestartScope::Stage;
    try {
        compilePipeline(program, opt, nullptr);
        FAIL() << "fused x stage scope compiled; expected a refusal";
    } catch (const FatalError& e) {
        // The diagnostic names both the conflict and the escape hatches.
        std::string what = e.what();
        EXPECT_NE(what.find("--restart-scope stage"), std::string::npos);
        EXPECT_NE(what.find("--backend=fused"), std::string::npos);
        EXPECT_NE(what.find("ROBUSTNESS.md"), std::string::npos);
    }

    // Pipeline scope on the fused backend stays fine.
    opt.restart.scope = RestartScope::Pipeline;
    EXPECT_NO_THROW(compilePipeline(program, opt, nullptr));
}

} // namespace
} // namespace serve
} // namespace ziria
