/**
 * @file
 * WiFi receiver tests: symbol-aligned payload decoding at all eight
 * rates, the full receiver with synchronization over simulated channels
 * (the paper's testbed substitute), and Ziria-vs-Sora agreement.
 */
#include <gtest/gtest.h>

#include "channel/channel.h"
#include "sora/sora.h"
#include "support/rng.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace wifi;

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

std::vector<uint8_t>
samplesToBytes(const std::vector<Complex16>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

class RxDataPath : public ::testing::TestWithParam<Rate>
{
};

TEST_P(RxDataPath, DecodesCleanLoopback)
{
    Rate rate = GetParam();
    auto payload = randomBytes(100, 10);
    auto dataBits = assembleDataBits(payload, rate);
    auto samples = sora::txDataSamples(dataBits, rate);

    auto rx = compilePipeline(
        wifiRxDataComp(rate, psduLen(static_cast<int>(payload.size()))),
        CompilerOptions::forLevel(OptLevel::None));
    auto outBits = rx->runBytes(samplesToBytes(samples));

    ASSERT_GE(outBits.size(), dataBits.size() - 200);
    size_t n = std::min(outBits.size(), dataBits.size());
    EXPECT_TRUE(std::equal(outBits.begin(), outBits.begin() +
                               static_cast<long>(n),
                           dataBits.begin()))
        << "decoded bits differ";
}

TEST_P(RxDataPath, MatchesSoraDecoder)
{
    Rate rate = GetParam();
    auto payload = randomBytes(64, 11);
    auto dataBits = assembleDataBits(payload, rate);
    auto samples = sora::txDataSamples(dataBits, rate);
    const int psdu = psduLen(static_cast<int>(payload.size()));

    auto rx = compilePipeline(
        wifiRxDataComp(rate, psdu),
        CompilerOptions::forLevel(OptLevel::None));
    auto ziriaBits = rx->runBytes(samplesToBytes(samples));
    auto soraBits = sora::rxDataBits(samples, rate, psdu);
    size_t n = std::min(ziriaBits.size(), soraBits.size());
    ASSERT_GT(n, 0u);
    EXPECT_TRUE(std::equal(ziriaBits.begin(),
                           ziriaBits.begin() + static_cast<long>(n),
                           soraBits.begin()));
}

INSTANTIATE_TEST_SUITE_P(AllRates, RxDataPath,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

/** End-to-end helper: TX frame -> channel -> full Ziria receiver. */
struct E2eResult
{
    bool crcOk = false;
    std::vector<uint8_t> psduBytes;
};

E2eResult
endToEnd(const std::vector<uint8_t>& payload, Rate rate,
         const channel::ChannelConfig& cfg, OptLevel level = OptLevel::None)
{
    auto tx = sora::txFrame(payload, rate);
    auto rxSamples = channel::applyChannel(tx, cfg);

    auto rx = compilePipeline(wifiReceiverComp(),
                              CompilerOptions::forLevel(level));
    RunStats st;
    auto bits = rx->runBytes(samplesToBytes(rxSamples), &st);

    E2eResult res;
    if (st.halted && st.ctrl.size() == 4) {
        int32_t ok;
        std::memcpy(&ok, st.ctrl.data(), 4);
        res.crcOk = ok == 1;
    }
    res.psduBytes = bitsToBytes(bits);
    return res;
}

class FullReceiver : public ::testing::TestWithParam<Rate>
{
};

TEST_P(FullReceiver, DecodesFrameOverBenignChannel)
{
    Rate rate = GetParam();
    auto payload = randomBytes(72, 12 + static_cast<int>(rate));
    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.delaySamples = 250;
    cfg.trailSamples = 100;
    cfg.phaseRad = 0.6;
    cfg.gain = 0.8;
    cfg.seed = 99 + static_cast<uint64_t>(rate);

    E2eResult res = endToEnd(payload, rate, cfg);
    ASSERT_TRUE(res.crcOk) << "CRC failed at rate "
                           << rateInfo(rate).mbps << " Mbps";
    ASSERT_GE(res.psduBytes.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           res.psduBytes.begin()));
}

INSTANTIATE_TEST_SUITE_P(AllRates, FullReceiver,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

TEST(FullReceiverMore, OptimizedPipelineDecodesToo)
{
    auto payload = randomBytes(48, 21);
    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.delaySamples = 180;
    cfg.seed = 5;
    E2eResult res = endToEnd(payload, Rate::R12, cfg, OptLevel::All);
    ASSERT_TRUE(res.crcOk);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           res.psduBytes.begin()));
}

TEST(FullReceiverMore, SoraReceiverAgrees)
{
    auto payload = randomBytes(64, 22);
    channel::ChannelConfig cfg;
    cfg.snrDb = 30.0;
    cfg.delaySamples = 130;
    cfg.phaseRad = -0.4;
    cfg.seed = 6;
    auto tx = sora::txFrame(payload, Rate::R18);
    auto rxSamples = channel::applyChannel(tx, cfg);
    sora::RxResult r = sora::rxFrame(rxSamples);
    ASSERT_TRUE(r.detected);
    ASSERT_TRUE(r.headerValid);
    EXPECT_TRUE(r.crcOk);
    ASSERT_GE(r.psduBytes.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           r.psduBytes.begin()));
}

TEST(FullReceiverMore, CorruptedFrameFailsCrc)
{
    auto payload = randomBytes(64, 23);
    auto tx = sora::txFrame(payload, Rate::R6);
    // Blank a stretch of DATA samples outright: even the K=7 Viterbi
    // cannot recover two whole erased symbols.
    for (size_t i = tx.size() - 6 * 80; i < tx.size() - 4 * 80; ++i)
        tx[i] = Complex16{0, 0};
    channel::ChannelConfig cfg;
    cfg.snrDb = 25.0;
    cfg.delaySamples = 150;
    cfg.seed = 7;
    auto rxSamples = channel::applyChannel(tx, cfg);
    auto rx = compilePipeline(wifiReceiverComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    RunStats st;
    rx->runBytes(samplesToBytes(rxSamples), &st);
    if (st.halted && st.ctrl.size() == 4) {
        int32_t ok;
        std::memcpy(&ok, st.ctrl.data(), 4);
        EXPECT_EQ(ok, 0) << "CRC unexpectedly passed at 2 dB SNR";
    }
    // Not halting at all (no detection) is also an acceptable outcome.
}

TEST(FullReceiverMore, ReceiverLoopDecodesBackToBackPackets)
{
    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.delaySamples = 200;
    cfg.seed = 8;

    std::vector<Complex16> stream;
    std::vector<std::vector<uint8_t>> payloads;
    for (int i = 0; i < 3; ++i) {
        auto payload = randomBytes(40, 30 + static_cast<uint64_t>(i));
        payloads.push_back(payload);
        auto tx = sora::txFrame(payload, Rate::R12);
        // gap of silence between packets
        stream.insert(stream.end(), 300, Complex16{0, 0});
        stream.insert(stream.end(), tx.begin(), tx.end());
    }
    auto rxSamples = channel::applyChannel(stream, cfg);

    auto rx = compilePipeline(wifiReceiverLoopComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    auto bits = rx->runBytes(samplesToBytes(rxSamples));
    auto bytes = bitsToBytes(bits);

    // Each decoded PSDU is payload+FCS = 44 bytes; expect all three.
    ASSERT_EQ(bytes.size(), 3u * 44u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(std::equal(payloads[static_cast<size_t>(i)].begin(),
                               payloads[static_cast<size_t>(i)].end(),
                               bytes.begin() + i * 44))
            << "packet " << i;
    }
}

TEST(FullReceiverMore, ThreadedRxDataPathMatchesSingle)
{
    // The paper's RX |>>>| split: Viterbi + descrambler on their own
    // thread.  Outputs must match the single-threaded pipeline.
    auto payload = randomBytes(80, 51);
    auto dataBits = assembleDataBits(payload, Rate::R24);
    auto samples = sora::txDataSamples(dataBits, Rate::R24);
    const int psdu = psduLen(static_cast<int>(payload.size()));

    auto single = compilePipeline(
        wifiRxDataComp(Rate::R24, psdu, false),
        CompilerOptions::forLevel(OptLevel::None));
    auto expect = single->runBytes(samplesToBytes(samples));

    auto multi = compileThreadedPipeline(
        wifiRxDataComp(Rate::R24, psdu, true),
        CompilerOptions::forLevel(OptLevel::None));
    auto inBytes = samplesToBytes(samples);
    MemSource src(inBytes, multi->inWidth());
    VecSink sink(multi->outWidth());
    multi->run(src, sink);
    EXPECT_EQ(sink.data(), expect);
}

TEST(FullReceiverMore, OversampledFrontEnd)
{
    auto payload = randomBytes(32, 41);
    auto tx = sora::txFrame(payload, Rate::R6);
    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.delaySamples = 100;
    cfg.seed = 9;
    auto rxSamples = channel::applyChannel(tx, cfg);
    // Duplicate each sample (crude 2x oversampling).
    std::vector<Complex16> over;
    over.reserve(rxSamples.size() * 2);
    for (const auto& s : rxSamples) {
        over.push_back(s);
        over.push_back(s);
    }
    auto rx = compilePipeline(wifiReceiverComp(true),
                              CompilerOptions::forLevel(OptLevel::None));
    RunStats st;
    auto bits = rx->runBytes(samplesToBytes(over), &st);
    ASSERT_TRUE(st.halted);
    int32_t ok;
    std::memcpy(&ok, st.ctrl.data(), 4);
    EXPECT_EQ(ok, 1);
    auto bytes = bitsToBytes(bits);
    ASSERT_GE(bytes.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           bytes.begin()));
}

} // namespace
} // namespace ziria
