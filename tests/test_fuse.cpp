/**
 * @file
 * Fused-backend tests (ctest labels `tier1;fuse;diff`):
 *
 *  - fusibility classification: what lowers, what falls back
 *    (native blocks, threaded `|>>>|`), and where the boundary sits in
 *    a mixed tree;
 *  - bytecode structure: channel counts, single Halt, disassembly;
 *  - the differential oracle over the fused axis ({O0..O3} x {vec} x
 *    {vm,fused} plus threaded-fused cells) on generated programs —
 *    the VM is the semantics, the fused backend must match bit-exactly;
 *  - reset() re-arm totality of FusedNode over the PR-4
 *    combinator-shape suite (reset == fresh construction + start);
 *  - composition: tracing decorators and the threaded driver run
 *    unchanged over fused regions.
 */
#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/diff_runner.h"
#include "support/fault_injector.h"
#include "support/metrics.h"
#include "zast/builder.h"
#include "zfuse/fuse.h"
#include "zgen/generator.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace zb;
using difftest::DiffConfig;
using difftest::runDifferential;
using testsupport::intBytes;
using testsupport::throwAtBlock;
using zgen::GenConfig;
using zgen::GenDomain;
using zgen::GenProgram;

CompPtr
incBlock(int32_t delta)
{
    VarRef x = freshVar("x", Type::int32());
    return repeatc(seqc({bindc(x, take(Type::int32())),
                         just(emit(var(x) + delta))}));
}

CompilerOptions
fusedOptions(OptLevel lvl = OptLevel::None)
{
    CompilerOptions opt = CompilerOptions::forLevel(lvl);
    opt.backend = Backend::Fused;
    return opt;
}

// --------------------------------------------------- fusibility rules

TEST(Fusibility, PrimitivesAndCombinatorsAreFusible)
{
    EXPECT_TRUE(fusibleComp(incBlock(1)));
    EXPECT_TRUE(fusibleComp(pipe(incBlock(1), incBlock(2))));

    VarRef x = freshVar("x", Type::int32());
    FunRef f = fun("inc", {x}, {}, var(x) + 1);
    EXPECT_TRUE(fusibleComp(mapc(f)));

    VarRef i = freshVar("i", Type::int32());
    EXPECT_TRUE(fusibleComp(
        letvar(i, cInt(0),
               whilec(var(i) < 4,
                      seqc({just(doS({assign(var(i), var(i) + 1)})),
                            just(emit(var(i)))})))));
    EXPECT_TRUE(fusibleComp(timesc(cInt(3), incBlock(0))));
    EXPECT_TRUE(fusibleComp(ifc(cInt(1) == 1, incBlock(1), incBlock(2))));
}

TEST(Fusibility, NativeAndThreadedPipeRefuse)
{
    CompPtr nativeBlock = throwAtBlock(uint64_t(1) << 62);
    EXPECT_FALSE(fusibleComp(nativeBlock));

    CompPtr mt = ppipe(incBlock(1), incBlock(2));
    EXPECT_FALSE(fusibleComp(mt));

    // Non-fusibility propagates to every enclosing combinator...
    EXPECT_FALSE(fusibleComp(pipe(incBlock(1), ppipe(incBlock(2),
                                                     incBlock(3)))));
    EXPECT_FALSE(fusibleComp(repeatc(
        seqc({just(take(Type::int32())),
              just(throwAtBlock(uint64_t(1) << 62))}))));
    // ... but sibling subtrees stay independently fusible.
    EXPECT_TRUE(fusibleComp(incBlock(1)));
}

// ------------------------------------------------- lowering structure

TEST(FusedLowering, WholeProgramBecomesOneFusedNode)
{
    CompileReport rep;
    auto p = compilePipeline(pipe(incBlock(1), incBlock(10)),
                             fusedOptions(), &rep);
    EXPECT_EQ(rep.fuse.nodesFused, 1);
    EXPECT_EQ(rep.fuse.fallbacks, 0);
    EXPECT_EQ(rep.fuse.channels, 1);  // the interior >>> compiled away
    EXPECT_GT(rep.fuse.fusedOps, 0);

    auto* fn = dynamic_cast<FusedNode*>(&p->root());
    ASSERT_NE(fn, nullptr);
    const zfuse::FuseProgram& prog = fn->program();
    EXPECT_EQ(prog.countOp(zfuse::Op::Halt), 1u);
    EXPECT_EQ(prog.countOp(zfuse::Op::PipeInit), 1u);
    EXPECT_EQ(prog.channels.size(), 1u);
    EXPECT_EQ(prog.inWidth, 4u);
    EXPECT_EQ(prog.outWidth, 4u);
    EXPECT_NE(prog.disassemble().find("pipe.init"), std::string::npos);
}

TEST(FusedLowering, NativeBlockFallsBackInsideFusedTree)
{
    // fused >>> native: the pipe itself cannot fuse, so it becomes a
    // VM PipeNode with a FusedNode on the left and the native node on
    // the right — one fused region, fallbacks for the spine + native.
    CompileReport rep;
    auto p = compilePipeline(
        pipe(incBlock(1), throwAtBlock(uint64_t(1) << 62)),
        fusedOptions(), &rep);
    EXPECT_EQ(rep.fuse.nodesFused, 1);
    EXPECT_GE(rep.fuse.fallbacks, 2);  // pipe spine + native leaf
    EXPECT_EQ(dynamic_cast<FusedNode*>(&p->root()), nullptr);

    // It still runs, and matches the VM bit for bit.
    std::vector<int32_t> in(64);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);
    auto vm = compilePipeline(
        pipe(incBlock(1), throwAtBlock(uint64_t(1) << 62)),
        CompilerOptions::forLevel(OptLevel::None));
    EXPECT_EQ(p->runBytes(bytes), vm->runBytes(bytes));
}

TEST(FusedLowering, MetricsCountersAdvance)
{
    auto& reg = metrics::Registry::global();
    uint64_t fusedBefore = reg.counter("ziria.fuse.nodes_fused").value();
    uint64_t fallbackBefore = reg.counter("ziria.fuse.fallbacks").value();
    compilePipeline(incBlock(1), fusedOptions());
    compilePipeline(ppipe(incBlock(1), incBlock(2)), fusedOptions());
    EXPECT_GE(reg.counter("ziria.fuse.nodes_fused").value(),
              fusedBefore + 3);  // whole program + two |>>>| partitions
    EXPECT_GE(reg.counter("ziria.fuse.fallbacks").value(),
              fallbackBefore + 1);  // the threaded pipe spine
}

// ------------------------------------------- differential equivalence

void
checkFusedSeed(const GenConfig& cfg, uint64_t seed, size_t elems)
{
    GenProgram prog = zgen::genProgram(cfg, seed);
    auto input = zgen::genInput(prog.inDomain, elems, seed ^ 0xD1FF);
    auto make = [&] { return zgen::genProgram(cfg, seed).comp; };
    auto outcome = runDifferential(make, input, difftest::fusedMatrix(),
                                   prog.describe, /*slackBytes=*/4096);
    EXPECT_TRUE(outcome.agree) << "seed=" << seed << "\n" << outcome.report;
    EXPECT_EQ(outcome.configsRun, 18);
    EXPECT_GT(outcome.baselineBytes, 0u)
        << "seed=" << seed << " " << prog.describe;
}

class FusedBitPrograms : public ::testing::TestWithParam<int>
{
};

TEST_P(FusedBitPrograms, VmAndFusedAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Bits;
    cfg.maxStages = 3;
    cfg.allowThreadedSplit = true;
    checkFusedSeed(cfg, static_cast<uint64_t>(GetParam()), 6 * 288 * 4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedBitPrograms, ::testing::Range(1, 26));

class FusedInt32Programs : public ::testing::TestWithParam<int>
{
};

TEST_P(FusedInt32Programs, VmAndFusedAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Int32;
    cfg.maxStages = 3;
    cfg.allowThreadedSplit = true;
    checkFusedSeed(cfg, static_cast<uint64_t>(GetParam()), 2048);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedInt32Programs,
                         ::testing::Range(1, 14));

class FusedMixedPrograms : public ::testing::TestWithParam<int>
{
};

TEST_P(FusedMixedPrograms, VmAndFusedAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Mixed;
    cfg.maxStages = 4;
    checkFusedSeed(cfg, static_cast<uint64_t>(GetParam()), 4096);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedMixedPrograms,
                         ::testing::Range(1, 9));

TEST(FusedMatrix, ShapeAndLowering)
{
    auto m = difftest::fusedMatrix();
    EXPECT_EQ(m.size(), 18u);
    int fused = 0;
    for (const auto& c : m)
        fused += c.fused;
    EXPECT_EQ(fused, 10);
    EXPECT_FALSE(m[0].fused);  // config 0 is the VM baseline

    DiffConfig vm3, fz3;
    vm3.optTier = fz3.optTier = 3;
    vm3.vectorize = fz3.vectorize = true;
    fz3.fused = true;
    EXPECT_EQ(DiffConfig::distance(vm3, fz3), 1);
    EXPECT_EQ(vm3.options().backend, Backend::Vm);
    EXPECT_EQ(fz3.options().backend, Backend::Fused);
}

// ------------------------------------------------- reset() totality

/**
 * Drive a pipeline by hand (mirrors test_recovery): when @p init is
 * false the tree is NOT start()ed, proving reset() alone restored it.
 */
std::vector<uint8_t>
drive(Pipeline& p, MemSource& src, bool init)
{
    ExecNode& root = p.root();
    Frame& f = p.frame();
    if (init)
        root.start(f);
    std::vector<uint8_t> out;
    for (;;) {
        Status s = root.advance(f);
        if (s == Status::Yield) {
            out.insert(out.end(), root.out(), root.out() + p.outWidth());
        } else if (s == Status::NeedInput) {
            const uint8_t* q = src.next();
            if (!q)
                break;
            root.supply(f, q);
        } else {
            break;  // Done
        }
    }
    return out;
}

void
consumePartial(Pipeline& p, MemSource& src, size_t elems)
{
    ExecNode& root = p.root();
    Frame& f = p.frame();
    root.start(f);
    size_t used = 0;
    while (used < elems) {
        Status s = root.advance(f);
        if (s == Status::NeedInput) {
            const uint8_t* q = src.next();
            if (!q)
                break;
            root.supply(f, q);
            ++used;
        } else if (s == Status::Done) {
            break;
        }
    }
}

struct Shape
{
    const char* name;
    std::function<CompPtr()> make;
};

/** The PR-4 combinator-shape suite (test_recovery), fused this time. */
std::vector<Shape>
resetShapes()
{
    std::vector<Shape> shapes;
    shapes.push_back({"repeat-bind-emit", [] { return incBlock(1); }});
    shapes.push_back({"map", [] {
        VarRef x = freshVar("x", Type::int32());
        FunRef f = fun("inc3", {x}, {}, var(x) + 3);
        return mapc(f);
    }});
    shapes.push_back({"pipe-maps", [] {
        VarRef x = freshVar("x", Type::int32());
        VarRef y = freshVar("y", Type::int32());
        FunRef f = fun("addA", {x}, {}, var(x) + 5);
        FunRef g = fun("addB", {y}, {}, var(y) * 2);
        return pipe(mapc(f), mapc(g));
    }});
    shapes.push_back({"pipe-repeats", [] {
        return pipe(incBlock(1), incBlock(10));
    }});
    shapes.push_back({"filter", [] {
        VarRef x = freshVar("x", Type::int32());
        FunRef p = fun("odd", {x}, {}, (var(x) % 2) != 0);
        return filterc(p);
    }});
    shapes.push_back({"seq-two-takes", [] {
        VarRef a = freshVar("a", Type::int32());
        VarRef b = freshVar("b", Type::int32());
        return repeatc(seqc({bindc(a, take(Type::int32())),
                             bindc(b, take(Type::int32())),
                             just(emit(var(a) + var(b)))}));
    }});
    shapes.push_back({"times", [] {
        VarRef x = freshVar("x", Type::int32());
        return repeatc(timesc(
            cInt(4), seqc({bindc(x, take(Type::int32())),
                           just(emit(var(x) * 2))})));
    }});
    shapes.push_back({"while-letvar", [] {
        VarRef i = freshVar("i", Type::int32());
        VarRef x = freshVar("x", Type::int32());
        return letvar(
            i, cInt(0),
            whilec(var(i) < 8,
                   seqc({just(doS({assign(var(i), var(i) + 1)})),
                         bindc(x, take(Type::int32())),
                         just(emit(var(x) + 100))})));
    }});
    shapes.push_back({"if", [] {
        return ifc(cInt(1) == 1, incBlock(5), incBlock(7));
    }});
    shapes.push_back({"emits", [] {
        VarRef x = freshVar("x", Type::int32());
        return repeatc(seqc(
            {bindc(x, take(Type::int32())),
             just(emits(arrayLit({var(x), var(x) + 1})))}));
    }});
    shapes.push_back({"letvar-accumulator", [] {
        VarRef acc = freshVar("acc", Type::int32());
        VarRef x = freshVar("x", Type::int32());
        return letvar(
            acc, cInt(0),
            repeatc(seqc(
                {bindc(x, take(Type::int32())),
                 just(doS({assign(var(acc), var(acc) + var(x))})),
                 just(emit(var(acc)))})));
    }});
    shapes.push_back({"native-fallback", [] {
        // Not fusible: exercises reset() across the VM fallback spine
        // with the native node below it.
        return throwAtBlock(uint64_t(1) << 62);
    }});
    return shapes;
}

TEST(FusedResetTotality, ResetAfterPartialRunMatchesFreshRun)
{
    for (const Shape& sh : resetShapes()) {
        for (OptLevel lvl : {OptLevel::None, OptLevel::All}) {
            SCOPED_TRACE(std::string(sh.name) + " at OptLevel " +
                         (lvl == OptLevel::None ? "None" : "All"));
            auto p = compilePipeline(sh.make(), fusedOptions(lvl));

            ASSERT_EQ(p->inWidth() % 4, 0u);
            std::vector<int32_t> in(24 * (p->inWidth() / 4));
            for (size_t i = 0; i < in.size(); ++i)
                in[i] = static_cast<int32_t>(i);
            auto bytes = intBytes(in);

            MemSource fresh(bytes, p->inWidth());
            auto expect = drive(*p, fresh, /*init=*/true);
            ASSERT_FALSE(expect.empty());

            // Dirty the tree mid-structure, reset, drive WITHOUT start.
            MemSource partial(bytes, p->inWidth());
            consumePartial(*p, partial, 5);
            p->root().reset(p->frame());

            MemSource again(bytes, p->inWidth());
            auto got = drive(*p, again, /*init=*/false);
            EXPECT_EQ(got, expect)
                << "reset() did not restore the fresh-start state";
        }
    }
}

// ----------------------------------------------------- composition

TEST(FusedComposition, TracingWrapsFusedRegions)
{
    CompilerOptions opt = fusedOptions();
    opt.instrument = true;
    auto p = compilePipeline(pipe(incBlock(1), incBlock(2)), opt);
    ASSERT_NE(p->metrics(), nullptr);

    std::vector<int32_t> in(32, 7);
    auto out = p->runBytes(intBytes(in));
    EXPECT_EQ(out.size(), in.size() * 4);

    bool sawFused = false;
    for (const auto& nm : p->metrics()->nodes)
        if (nm.kind == "fused") {
            sawFused = true;
            EXPECT_GT(nm.advances, 0u);
            EXPECT_GT(nm.supplies, 0u);
        }
    EXPECT_TRUE(sawFused);
}

TEST(FusedComposition, ThreadedDriverRunsFusedPartitions)
{
    CompileReport rep;
    auto p = compileThreadedPipeline(ppipe(incBlock(1), incBlock(10)),
                                     fusedOptions(), &rep);
    EXPECT_EQ(rep.fuse.nodesFused, 2);  // one region per |>>>| partition

    std::vector<int32_t> in(256);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    VecSink sink(4);
    p->run(src, sink);

    auto vm = compilePipeline(pipe(incBlock(1), incBlock(10)),
                              CompilerOptions::forLevel(OptLevel::None));
    EXPECT_EQ(sink.data(), vm->runBytes(bytes));
}

TEST(FusedComposition, HaltedComputerExposesCtrl)
{
    // A computer: take two ints, return their sum — the control value
    // must come back through ctrl() with the right width.
    auto make = [] {
        VarRef a = freshVar("a", Type::int32());
        VarRef b = freshVar("b", Type::int32());
        return seqc({bindc(a, take(Type::int32())),
                     bindc(b, take(Type::int32())),
                     just(ret(var(a) * var(b)))});
    };
    auto fz = compilePipeline(make(), fusedOptions());
    auto vm = compilePipeline(make(),
                              CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in{6, 7};
    auto bytes = intBytes(in);

    RunStats fzStats, vmStats;
    fz->runBytes(bytes, &fzStats);
    vm->runBytes(bytes, &vmStats);
    EXPECT_TRUE(fzStats.halted);
    EXPECT_EQ(fzStats.ctrl, vmStats.ctrl);
    ASSERT_EQ(fzStats.ctrl.size(), 4u);
    int32_t v;
    std::memcpy(&v, fzStats.ctrl.data(), 4);
    EXPECT_EQ(v, 42);
}

} // namespace
} // namespace ziria
