/**
 * @file
 * Latency observability tests (ctest label `latency`): frame-span
 * accounting (open/close thresholds, truncated tails, expanding
 * ratios, SLO budget counters, restart re-basing), the chrome://tracing
 * timeline export (JSON well-formedness and Perfetto schema), and the
 * live-introspection Stat frame round-trip against a real server over
 * loopback TCP — including span accounting across a supervised
 * per-session restart.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/metrics.h"
#include "support/rng.h"
#include "support/timeline.h"
#include "zexec/faultpoint.h"
#include "zexec/span.h"
#include "zir/compiler.h"
#include "zparse/parser.h"
#include "zserve/server.h"
#include "zserve/socket.h"
#include "zserve/wire.h"

namespace ziria {
namespace {

// ------------------------------------------------- tiny JSON validator

/**
 * Minimal recursive-descent JSON syntax check — enough to guarantee a
 * document chrome://tracing or any standard parser will load, without
 * pulling a JSON library into the tree.
 */
struct JsonCheck
{
    const std::string& s;
    size_t i = 0;

    explicit JsonCheck(const std::string& text) : s(text) {}

    void
    ws()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                                s[i] == '\n' || s[i] == '\r'))
            ++i;
    }

    bool
    lit(const char* word)
    {
        size_t n = std::strlen(word);
        if (s.compare(i, n, word) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        for (++i; i < s.size(); ++i) {
            if (s[i] == '\\') {
                ++i;
                continue;
            }
            if (s[i] == '"') {
                ++i;
                return true;
            }
        }
        return false;
    }

    bool
    number()
    {
        size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-'))
            ++i;
        return i > start;
    }

    bool
    value()
    {
        ws();
        if (i >= s.size())
            return false;
        switch (s[i]) {
          case '{': {
            ++i;
            ws();
            if (i < s.size() && s[i] == '}') {
                ++i;
                return true;
            }
            for (;;) {
                ws();
                if (!string())
                    return false;
                ws();
                if (i >= s.size() || s[i] != ':')
                    return false;
                ++i;
                if (!value())
                    return false;
                ws();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                if (i < s.size() && s[i] == '}') {
                    ++i;
                    return true;
                }
                return false;
            }
          }
          case '[': {
            ++i;
            ws();
            if (i < s.size() && s[i] == ']') {
                ++i;
                return true;
            }
            for (;;) {
                if (!value())
                    return false;
                ws();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                if (i < s.size() && s[i] == ']') {
                    ++i;
                    return true;
                }
                return false;
            }
          }
          case '"':
            return string();
          case 't':
            return lit("true");
          case 'f':
            return lit("false");
          case 'n':
            return lit("null");
          default:
            return number();
        }
    }

    static bool
    valid(const std::string& text)
    {
        JsonCheck p(text);
        if (!p.value())
            return false;
        p.ws();
        return p.i == text.size();
    }
};

TEST(JsonCheckSelfTest, AcceptsAndRejects)
{
    EXPECT_TRUE(JsonCheck::valid("{\"a\":[1,2.5,-3e2],\"b\":\"x\\\"y\"}"));
    EXPECT_TRUE(JsonCheck::valid("{}"));
    EXPECT_FALSE(JsonCheck::valid("{\"a\":}"));
    EXPECT_FALSE(JsonCheck::valid("{\"a\":1,}"));
    EXPECT_FALSE(JsonCheck::valid("{\"a\":1} trailing"));
}

// ------------------------------------------------------- shared helpers

namespace sv = serve;

const char* kScramblerSrc = R"(
let comp scrambler() =
    var scrmbl_st : arr[7] bit := {'1,'1,'1,'1,'1,'1,'1} in
    repeat {
        seq { (x : bit) <- take : bit
            ; (tmp : bit) <- return (scrmbl_st[3] ^ scrmbl_st[0])
            ; do { scrmbl_st[0, 6] := scrmbl_st[1, 6];
                   scrmbl_st[6] := tmp; }
            ; emit (x ^ tmp)
            }
    }

scrambler()
)";

sv::Server::PipelineFactory
scramblerFactory()
{
    CompPtr program = parseComp(kScramblerSrc);
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::All);
    return [program, opt](uint64_t) {
        return compilePipeline(program, opt, nullptr);
    };
}

std::vector<uint8_t>
randomBits(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = rng.bit();
    return out;
}

bool
waitFor(const std::function<bool()>& cond, int ms = 3000)
{
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
}

// ------------------------------------------------ span-frame accounting

TEST(SpanAccounting, ClosesFramesAtExpectedOutputCounts)
{
    SpanConfig cfg;
    cfg.frameElems = 4;
    SpanTracker t(cfg);
    for (int k = 0; k < 16; ++k)
        t.onInput();
    for (int k = 0; k < 16; ++k)
        t.onOutput();
    SpanTracker::Snapshot s = t.snapshot();
    EXPECT_EQ(s.completed, 4u);
    EXPECT_EQ(s.open, 0u);
    EXPECT_EQ(s.aborted, 0u);
    EXPECT_EQ(s.latencyNs.count(), 4u);
}

TEST(SpanAccounting, TruncatedTailFrameStaysOpen)
{
    SpanConfig cfg;
    cfg.frameElems = 4;
    SpanTracker t(cfg);
    // 10 inputs open frames at elements 0, 4, 8; 10 outputs satisfy the
    // first two thresholds (4 and 8) but not the third (12).
    for (int k = 0; k < 10; ++k)
        t.onInput();
    for (int k = 0; k < 10; ++k)
        t.onOutput();
    t.flush();  // must NOT close the partial tail
    SpanTracker::Snapshot s = t.snapshot();
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.open, 1u);
}

TEST(SpanAccounting, ExpandingPipelineUsesOutPerIn)
{
    SpanConfig cfg;
    cfg.frameElems = 4;
    cfg.outPerIn = 2.0;  // frame of 4 inputs completes after 8 outputs
    SpanTracker t(cfg);
    for (int k = 0; k < 4; ++k)
        t.onInput();
    for (int k = 0; k < 7; ++k)
        t.onOutput();
    EXPECT_EQ(t.snapshot().completed, 0u);
    t.onOutput();
    EXPECT_EQ(t.snapshot().completed, 1u);
}

TEST(SpanAccounting, BudgetCountersSplitMetAndMissed)
{
    // Generous budget: everything lands under it.
    SpanConfig loose;
    loose.frameElems = 2;
    loose.budgetNs = 10ull * 1000 * 1000 * 1000;
    SpanTracker lt(loose);
    for (int k = 0; k < 4; ++k)
        lt.onInput();
    for (int k = 0; k < 4; ++k)
        lt.onOutput();
    SpanTracker::Snapshot ls = lt.snapshot();
    EXPECT_EQ(ls.budgetMet, 2u);
    EXPECT_EQ(ls.budgetMissed, 0u);

    // 1 ms budget with a deliberate 5 ms stall inside the frame.
    SpanConfig tight;
    tight.frameElems = 2;
    tight.budgetNs = 1000 * 1000;
    SpanTracker tt(tight);
    tt.onInput();
    tt.onInput();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    tt.onOutput();
    tt.onOutput();
    SpanTracker::Snapshot ts = tt.snapshot();
    EXPECT_EQ(ts.budgetMet, 0u);
    EXPECT_EQ(ts.budgetMissed, 1u);
}

TEST(SpanAccounting, RestartAbortsOpenSpansAndRebases)
{
    SpanConfig cfg;
    cfg.frameElems = 4;
    SpanTracker t(cfg);
    // Two frames open (elements 0 and 4), neither closed yet.
    for (int k = 0; k < 6; ++k)
        t.onInput();
    t.onOutput();
    t.onOutput();
    t.onRestart();
    SpanTracker::Snapshot s = t.snapshot();
    EXPECT_EQ(s.aborted, 2u);
    EXPECT_EQ(s.completed, 0u);
    EXPECT_EQ(s.open, 0u);

    // The new epoch is based on the current counters: the next 8
    // inputs and 8 outputs must complete exactly two fresh frames.
    for (int k = 0; k < 8; ++k)
        t.onInput();
    for (int k = 0; k < 8; ++k)
        t.onOutput();
    s = t.snapshot();
    EXPECT_EQ(s.aborted, 2u);
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.open, 0u);
}

TEST(SpanAccounting, MergeIntoRegistryWritesFrameAndBudgetCounters)
{
    auto& reg = metrics::Registry::global();
    auto frames0 = reg.counter("tl.test.frames").value();
    auto met0 = reg.counter("tl.test.budget.met").value();

    SpanConfig cfg;
    cfg.frameElems = 2;
    cfg.budgetNs = 10ull * 1000 * 1000 * 1000;
    SpanTracker t(cfg);
    for (int k = 0; k < 6; ++k)
        t.onInput();
    for (int k = 0; k < 6; ++k)
        t.onOutput();
    t.mergeInto(reg, "tl.test");

    EXPECT_EQ(reg.counter("tl.test.frames").value(), frames0 + 3);
    EXPECT_EQ(reg.counter("tl.test.budget.met").value(), met0 + 3);
}

// The tracker attached to a real compiled pipeline: every frame of a
// rate-1 program completes, and the percentile fields serialize.
TEST(SpanAccounting, TracksACompiledPipelineEndToEnd)
{
    auto p = scramblerFactory()(0);
    size_t w = std::max<size_t>(p->inWidth(), 1);
    auto input = randomBits(256 * w, 7);

    SpanConfig cfg;
    cfg.frameElems = 64;
    auto spans = std::make_shared<SpanTracker>(cfg);
    p->setSpans(spans);
    MemSource msrc(input, w);
    VecSink sink(p->outWidth());
    p->run(msrc, sink);
    p->setSpans(nullptr);

    SpanTracker::Snapshot s = spans->snapshot();
    EXPECT_EQ(s.completed, 4u);  // 256 elements / 64 per frame
    EXPECT_EQ(s.open, 0u);
    EXPECT_GE(s.latencyNs.percentile(0.999),
              s.latencyNs.percentile(0.50));

    metrics::JsonWriter jw;
    jw.beginObject();
    spans->writeJson(jw, "latency");
    jw.endObject();
    EXPECT_TRUE(JsonCheck::valid(jw.str())) << jw.str();
    EXPECT_NE(jw.str().find("\"p999\""), std::string::npos);
}

// ------------------------------------------------------ timeline export

TEST(Timeline, JsonIsWellFormedAndPerfettoShaped)
{
    timeline::Recorder rec;
    rec.nameTrack(1, "main");
    rec.complete("stage", "scrambler", 1000, 5000, 1);
    rec.instant("restart", "attempt 1", 9000, 1);

    std::string j = rec.toJson();
    ASSERT_TRUE(JsonCheck::valid(j)) << j;
    // The traceEvents schema chrome://tracing and Perfetto load.
    EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(j.find("\"dur\""), std::string::npos);
    EXPECT_NE(j.find("\"pid\""), std::string::npos);
    EXPECT_NE(j.find("\"tid\""), std::string::npos);
}

TEST(Timeline, WriteFileIsAtomicAndLeavesNoTemp)
{
    timeline::Recorder rec;
    rec.complete("stage", "s", 0, 10, 1);
    std::string path = ::testing::TempDir() + "ziria_timeline_test.json";
    ASSERT_TRUE(rec.writeFile(path));

    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string body;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        body.append(buf, n);
    std::fclose(f);
    while (!body.empty() && body.back() == '\n')
        body.pop_back();
    EXPECT_TRUE(JsonCheck::valid(body)) << body;

    EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "rb"), nullptr);
    std::remove(path.c_str());
}

TEST(Timeline, BoundedBufferCountsDrops)
{
    timeline::Recorder rec(2);
    rec.complete("c", "a", 0, 1, 1);
    rec.complete("c", "b", 1, 1, 1);
    rec.complete("c", "dropped", 2, 1, 1);
    EXPECT_EQ(rec.eventCount(), 2u);
    EXPECT_EQ(rec.dropped(), 1u);
    std::string j = rec.toJson();
    EXPECT_TRUE(JsonCheck::valid(j)) << j;
    EXPECT_NE(j.find("\"dropped_events\":1"), std::string::npos);
}

TEST(Timeline, SpanTrackerEmitsFrameSlicesAndRestartInstants)
{
    timeline::Recorder rec;
    timeline::setActive(&rec);
    {
        SpanConfig cfg;
        cfg.frameElems = 4;
        cfg.name = "tltest";
        SpanTracker t(cfg);
        for (int k = 0; k < 8; ++k)
            t.onInput();
        for (int k = 0; k < 8; ++k)
            t.onOutput();
        t.onInput();  // opens frame 2, which the restart aborts
        t.onRestart();
    }
    timeline::setActive(nullptr);

    std::string j = rec.toJson();
    ASSERT_TRUE(JsonCheck::valid(j)) << j;
    EXPECT_NE(j.find("\"tltest frames\""), std::string::npos);
    EXPECT_NE(j.find("\"tltest frame 0\""), std::string::npos);
    EXPECT_NE(j.find("\"tltest frame 1\""), std::string::npos);
    EXPECT_NE(j.find("\"tltest frame 2 aborted\""), std::string::npos);
    EXPECT_NE(j.find("\"cat\":\"frame\""), std::string::npos);
    EXPECT_NE(j.find("\"cat\":\"restart\""), std::string::npos);
}

// --------------------------------------------- Stat frame, live server

/** Miniature wire client (the shape tools/zclient.cpp uses). */
struct StatClient
{
    sv::SockFd sock;
    sv::FrameParser parser;
    sv::HelloInfo hello;
    std::string statDoc;
    std::string errorMsg;
    bool sawEnd = false;
    bool sawError = false;

    bool
    readFrame(sv::Frame& f)
    {
        uint8_t buf[16 * 1024];
        for (;;) {
            sv::FrameParser::Result r = parser.next(f);
            if (r == sv::FrameParser::Result::Frame)
                return true;
            if (r == sv::FrameParser::Result::Error)
                return false;
            long n = sv::recvSome(sock.get(), buf, sizeof buf);
            if (n > 0) {
                parser.feed(buf, static_cast<size_t>(n));
                continue;
            }
            if (n != -1)
                return false;
        }
    }

    bool
    connect(uint16_t port)
    {
        sock = sv::connectTcp("127.0.0.1", port);
        if (sock.get() < 0)
            return false;
        sv::Frame f;
        if (!readFrame(f))
            return false;
        return f.type == sv::FrameType::Hello &&
               sv::decodeHello(f.payload, hello);
    }

    bool
    send(sv::FrameType type, const uint8_t* data = nullptr, size_t n = 0)
    {
        std::vector<uint8_t> wire;
        sv::encodeFrame(wire, type, data, n);
        return sv::sendAll(sock.get(), wire.data(), wire.size());
    }

    void
    drain()
    {
        sv::Frame f;
        while (readFrame(f)) {
            switch (f.type) {
              case sv::FrameType::Stat:
                statDoc.assign(f.payload.begin(), f.payload.end());
                break;
              case sv::FrameType::End:
                sawEnd = true;
                return;
              case sv::FrameType::Error:
                sawError = true;
                errorMsg.assign(f.payload.begin(), f.payload.end());
                return;
              default:
                break;
            }
        }
    }
};

TEST(StatFrame, RoundTripReturnsLiveJsonDocument)
{
    auto factory = scramblerFactory();
    sv::ServerConfig cfg;
    cfg.workers = 1;
    cfg.session.trackLatency = true;
    cfg.session.span.frameElems = 64;
    sv::Server server(factory, cfg);
    server.start();

    StatClient c;
    ASSERT_TRUE(c.connect(server.port()));
    auto input = randomBits(1024 * c.hello.inWidth, 91);
    ASSERT_TRUE(c.send(sv::FrameType::Data, input.data(), input.size()));
    ASSERT_TRUE(c.send(sv::FrameType::Stat));
    ASSERT_TRUE(c.send(sv::FrameType::End));
    c.drain();

    EXPECT_TRUE(c.sawEnd);
    EXPECT_FALSE(c.sawError) << c.errorMsg;
    ASSERT_FALSE(c.statDoc.empty());
    EXPECT_TRUE(JsonCheck::valid(c.statDoc)) << c.statDoc;
    EXPECT_NE(c.statDoc.find("\"ts_ns\""), std::string::npos);
    EXPECT_NE(c.statDoc.find("\"server\""), std::string::npos);
    EXPECT_NE(c.statDoc.find("\"session\""), std::string::npos);
    EXPECT_NE(c.statDoc.find("\"latency\""), std::string::npos);
    EXPECT_NE(c.statDoc.find("\"registry\""), std::string::npos);

    EXPECT_TRUE(waitFor([&] { return server.counters().completed == 1; }));
    server.stop();
}

TEST(StatFrame, StatWithPayloadIsAProtocolError)
{
    auto factory = scramblerFactory();
    sv::ServerConfig cfg;
    cfg.workers = 1;
    sv::Server server(factory, cfg);
    server.start();

    StatClient c;
    ASSERT_TRUE(c.connect(server.port()));
    uint8_t junk[3] = {1, 2, 3};
    ASSERT_TRUE(c.send(sv::FrameType::Stat, junk, sizeof junk));
    c.drain();

    EXPECT_TRUE(c.sawError);
    EXPECT_NE(c.errorMsg.find("Stat"), std::string::npos) << c.errorMsg;
    EXPECT_TRUE(waitFor([&] { return server.counters().evicted == 1; }));
    server.stop();
}

TEST(StatFrame, CompletedSessionMergesLatencyIntoRegistry)
{
    auto& reg = metrics::Registry::global();
    auto frames0 = reg.counter("server.latency.frames").value();
    auto count0 = reg.histogram("server.latency.e2e_ns").count();

    auto factory = scramblerFactory();
    sv::ServerConfig cfg;
    cfg.workers = 1;
    cfg.session.trackLatency = true;
    cfg.session.span.frameElems = 64;
    sv::Server server(factory, cfg);
    server.start();

    StatClient c;
    ASSERT_TRUE(c.connect(server.port()));
    auto input = randomBits(512 * c.hello.inWidth, 92);
    ASSERT_TRUE(c.send(sv::FrameType::Data, input.data(), input.size()));
    ASSERT_TRUE(c.send(sv::FrameType::End));
    c.drain();
    ASSERT_TRUE(c.sawEnd);
    EXPECT_TRUE(waitFor([&] { return server.counters().completed == 1; }));
    server.stop();

    // closeNow flushed and merged the session tracker: 512 elements at
    // 64 per frame is 8 completed spans.
    EXPECT_EQ(reg.counter("server.latency.frames").value(), frames0 + 8);
    EXPECT_EQ(reg.histogram("server.latency.e2e_ns").count(), count0 + 8);
}

TEST(StatFrame, SpanAccountingSurvivesSupervisedRestart)
{
    auto& reg = metrics::Registry::global();
    auto frames0 = reg.counter("server.latency.frames").value();
    auto aborted0 = reg.counter("server.latency.frames_aborted").value();

    auto factory = scramblerFactory();
    sv::ServerConfig cfg;
    cfg.workers = 1;
    cfg.fault = FaultSpec::parse("throw@100");  // transient, fires once
    cfg.faultSession = 0;
    cfg.session.restart.mode = RestartMode::OnFailure;
    cfg.session.restart.maxRestarts = 2;
    cfg.session.restart.backoffInitialMs = 1;
    cfg.session.trackLatency = true;
    cfg.session.span.frameElems = 64;
    sv::Server server(factory, cfg);
    server.start();

    StatClient c;
    ASSERT_TRUE(c.connect(server.port()));
    auto input = randomBits(1024 * c.hello.inWidth, 93);
    ASSERT_TRUE(c.send(sv::FrameType::Data, input.data(), input.size()));
    ASSERT_TRUE(c.send(sv::FrameType::End));
    c.drain();
    ASSERT_TRUE(c.sawEnd) << c.errorMsg;
    EXPECT_TRUE(waitFor([&] { return server.counters().completed == 1; }));
    server.stop();

    // The restart aborted whatever was in flight and re-based the
    // mapping; spans opened after it still complete and merge.
    EXPECT_GE(reg.counter("server.latency.frames").value(), frames0 + 1);
    EXPECT_GE(reg.counter("server.latency.frames_aborted").value(),
              aborted0 + 1);
}

} // namespace
} // namespace ziria
