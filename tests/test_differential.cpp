/**
 * @file
 * Differential conformance: every generated program must behave
 * bit-identically under the whole optimization-configuration matrix
 * (opt tiers O0-O3, vectorization on/off, single- vs multi-threaded).
 * The compiled compiler is its own oracle: the unoptimized build
 * defines the semantics and every other configuration must match it.
 */
#include <gtest/gtest.h>

#include "support/diff_runner.h"
#include "zast/builder.h"
#include "zgen/generator.h"

namespace ziria {
namespace {

using namespace zb;
using difftest::DiffConfig;
using difftest::runDifferential;
using zgen::GenConfig;
using zgen::GenDomain;
using zgen::GenProgram;

/** Run one generated program through the default 10-config matrix. */
void
checkSeed(const GenConfig& cfg, uint64_t seed, size_t elems)
{
    GenProgram prog = zgen::genProgram(cfg, seed);
    auto input = zgen::genInput(prog.inDomain, elems, seed ^ 0xD1FF);
    auto make = [&] { return zgen::genProgram(cfg, seed).comp; };
    auto outcome = runDifferential(make, input, difftest::defaultMatrix(),
                                   prog.describe, /*slackBytes=*/4096);
    EXPECT_TRUE(outcome.agree) << "seed=" << seed << "\n" << outcome.report;
    EXPECT_EQ(outcome.configsRun, 10);
    EXPECT_GT(outcome.baselineBytes, 0u) << "seed=" << seed << " "
                                         << prog.describe;
}

class BitPrograms : public ::testing::TestWithParam<int>
{
};

TEST_P(BitPrograms, AllConfigsAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Bits;
    cfg.maxStages = 3;
    cfg.allowThreadedSplit = true;
    checkSeed(cfg, static_cast<uint64_t>(GetParam()), 6 * 288 * 4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitPrograms, ::testing::Range(1, 61));

class Int32Programs : public ::testing::TestWithParam<int>
{
};

TEST_P(Int32Programs, AllConfigsAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Int32;
    cfg.maxStages = 3;
    cfg.allowThreadedSplit = true;
    checkSeed(cfg, static_cast<uint64_t>(GetParam()), 2048);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Int32Programs, ::testing::Range(1, 26));

class MixedPrograms : public ::testing::TestWithParam<int>
{
};

TEST_P(MixedPrograms, AllConfigsAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Mixed;
    cfg.maxStages = 4;
    checkSeed(cfg, static_cast<uint64_t>(GetParam()), 4096);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MixedPrograms, ::testing::Range(1, 16));

TEST(DiffRunner, LegacyChainsStillCovered)
{
    // The migrated property-test preset runs under the full matrix too.
    for (uint64_t seed : {1u, 5u, 8u})
        for (int stages : {1, 3}) {
            auto make = [&] { return zgen::randomBitChain(seed, stages); };
            auto input = zgen::genInput(GenDomain::Bits, 4 * 288 * 4, seed);
            auto outcome =
                runDifferential(make, input, difftest::defaultMatrix(),
                                "legacy-chain", 4096);
            EXPECT_TRUE(outcome.agree)
                << "seed=" << seed << " stages=" << stages << "\n"
                << outcome.report;
        }
}

TEST(DiffRunner, HarnessDetectsDivergence)
{
    // Sanity-check the oracle itself: hand the runner a factory whose
    // programs genuinely differ and demand a minimal divergent pair.
    int calls = 0;
    auto make = [&]() -> CompPtr {
        bool flip = calls++ > 0;
        VarRef a = freshVar("a", Type::array(Type::bit(), 1));
        std::vector<SeqComp::Item> items;
        items.push_back(bindc(a, takes(Type::bit(), 1)));
        ExprPtr out = idx(var(a), 0);
        if (flip)
            out = std::move(out) ^ cBit(1);
        items.push_back(just(emit(std::move(out))));
        return repeatc(seqc(std::move(items)));
    };
    std::vector<uint8_t> input(512, 1);
    auto outcome = runDifferential(make, input, difftest::defaultMatrix(),
                                   "diverging-factory", 4096);
    EXPECT_FALSE(outcome.agree);
    EXPECT_NE(outcome.report.find("minimal divergent pair"),
              std::string::npos)
        << outcome.report;
}

TEST(DiffRunner, FullMatrixOnSelectSeeds)
{
    // The 16-config cross product is pricier, so only spot-check it.
    GenConfig cfg;
    cfg.domain = GenDomain::Bits;
    cfg.allowThreadedSplit = true;
    for (uint64_t seed : {3u, 17u, 42u}) {
        GenProgram prog = zgen::genProgram(cfg, seed);
        auto input = zgen::genInput(prog.inDomain, 6 * 288 * 4, seed);
        auto make = [&] { return zgen::genProgram(cfg, seed).comp; };
        auto outcome = runDifferential(make, input, difftest::fullMatrix(),
                                       prog.describe, 4096);
        EXPECT_TRUE(outcome.agree) << "seed=" << seed << "\n"
                                   << outcome.report;
        EXPECT_EQ(outcome.configsRun, 16);
    }
}

TEST(DiffConfigs, TierLoweringMatchesFlags)
{
    DiffConfig c0;
    c0.optTier = 0;
    auto o0 = c0.options();
    EXPECT_FALSE(o0.fold);
    EXPECT_FALSE(o0.autoMap);
    EXPECT_FALSE(o0.fuse);
    EXPECT_FALSE(o0.autoLut);
    EXPECT_FALSE(o0.vectorize);

    DiffConfig c2;
    c2.optTier = 2;
    c2.vectorize = true;
    auto o2 = c2.options();
    EXPECT_TRUE(o2.fold);
    EXPECT_TRUE(o2.autoMap);
    EXPECT_TRUE(o2.fuse);
    EXPECT_FALSE(o2.autoLut);
    EXPECT_TRUE(o2.vectorize);

    DiffConfig c3;
    c3.optTier = 3;
    c3.vectorize = true;
    auto o3 = c3.options();
    EXPECT_TRUE(o3.autoLut);
    EXPECT_TRUE(o3.vectorize);

    EXPECT_EQ(DiffConfig::distance(c0, c3), 2);
    EXPECT_EQ(difftest::defaultMatrix().size(), 10u);
    EXPECT_EQ(difftest::fullMatrix().size(), 16u);
}

} // namespace
} // namespace ziria
