/**
 * @file
 * Concurrency tests: the SPSC interthread queue and multi-stage
 * threaded pipelines (|>>>|) under load, early termination, and error
 * propagation.
 */
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "support/metrics.h"
#include "support/panic.h"
#include "support/rng.h"
#include "support/spsc_queue.h"
#include "zast/builder.h"
#include "zexec/faultpoint.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace zb;

TEST(SpscQueue, FifoUnderLoad)
{
    SpscQueue q(4, 64);
    const uint32_t N = 200000;
    std::thread producer([&] {
        for (uint32_t i = 0; i < N; ++i) {
            ASSERT_TRUE(q.push(reinterpret_cast<const uint8_t*>(&i)));
        }
        q.close();
    });
    uint32_t v = 0;
    for (uint32_t i = 0; i < N; ++i) {
        ASSERT_TRUE(q.pop(reinterpret_cast<uint8_t*>(&v)));
        ASSERT_EQ(v, i);
    }
    EXPECT_FALSE(q.pop(reinterpret_cast<uint8_t*>(&v)));
    producer.join();
}

TEST(SpscQueue, CloseUnblocksConsumer)
{
    SpscQueue q(1, 8);
    std::thread t([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.close();
    });
    uint8_t b;
    EXPECT_FALSE(q.pop(&b));
    t.join();
}

TEST(SpscQueue, CancelUnblocksProducer)
{
    SpscQueue q(1, 2);
    uint8_t b = 7;
    ASSERT_TRUE(q.push(&b));
    ASSERT_TRUE(q.push(&b));
    std::thread t([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.cancel();
    });
    EXPECT_FALSE(q.push(&b));  // was full; cancel released us
    t.join();
}

TEST(SpscQueue, PushWaitTimesOutWithoutEnqueueing)
{
    SpscQueue q(1, 1);
    uint8_t b = 9;
    ASSERT_TRUE(q.push(&b));  // full
    EXPECT_EQ(q.pushWait(&b, 30), QueueWait::Timeout);
    // The timed-out element must NOT have been enqueued: popping twice
    // yields exactly one element.
    uint8_t v = 0;
    EXPECT_EQ(q.popWait(&v, 0), QueueWait::Ready);
    EXPECT_EQ(v, 9);
    EXPECT_EQ(q.popWait(&v, 30), QueueWait::Timeout);
}

TEST(SpscQueue, PopWaitTimesOutWhenEmpty)
{
    SpscQueue q(4, 8);
    uint8_t buf[4];
    EXPECT_EQ(q.popWait(buf, 30), QueueWait::Timeout);
    uint32_t x = 42;
    ASSERT_TRUE(q.push(reinterpret_cast<const uint8_t*>(&x)));
    EXPECT_EQ(q.popWait(buf, 30), QueueWait::Ready);
}

TEST(SpscQueue, CancelWakesBlockedWaitersOnBothSides)
{
    SpscQueue q(1, 1);
    uint8_t b = 1;
    ASSERT_TRUE(q.push(&b));  // full: the producer below will block

    std::atomic<int> released{0};
    std::thread producer([&] {
        uint8_t x = 2;
        EXPECT_EQ(q.pushWait(&x, -1), QueueWait::Cancelled);
        released.fetch_add(1);
    });
    SpscQueue q2(1, 1);  // empty: the consumer below will block
    std::thread consumer([&] {
        uint8_t v;
        EXPECT_EQ(q2.popWait(&v, -1), QueueWait::Cancelled);
        released.fetch_add(1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    q.cancel();
    q2.cancel();
    producer.join();
    consumer.join();
    EXPECT_EQ(released.load(), 2);
}

TEST(SpscQueue, PopReportsCancelledEvenWithDataQueued)
{
    // Cancel means "stop now", not "drain first": a consumer must not
    // keep processing a cancelled run's backlog.
    SpscQueue q(1, 4);
    uint8_t b = 5;
    ASSERT_TRUE(q.push(&b));
    ASSERT_TRUE(q.push(&b));
    q.cancel();
    uint8_t v;
    EXPECT_EQ(q.popWait(&v, 0), QueueWait::Cancelled);
    EXPECT_EQ(q.pushWait(&b, 0), QueueWait::Cancelled);
}

TEST(SpscQueue, CloseAfterDrainIsDistinctFromTimeout)
{
    SpscQueue q(1, 4);
    uint8_t b = 3;
    ASSERT_TRUE(q.push(&b));
    q.close();
    uint8_t v;
    EXPECT_EQ(q.popWait(&v, 10), QueueWait::Ready);  // drains the ring
    EXPECT_EQ(v, 3);
    EXPECT_EQ(q.popWait(&v, 10), QueueWait::Closed);
    EXPECT_EQ(q.popWait(&v, 10), QueueWait::Closed);  // stays closed
}

TEST(SpscQueue, ReopenClearsLatchesDropsBacklogAndZeroesStats)
{
    // reopen() is what re-arms the stage queues between restart
    // attempts: the closed/cancelled latches must clear, leftover
    // elements must be dropped, and the stats (resetStats) must start
    // from zero so the retry's telemetry is not polluted by the failed
    // attempt.
    SpscQueue q(4, 2);
    uint32_t x = 11;
    ASSERT_TRUE(q.push(reinterpret_cast<const uint8_t*>(&x)));
    ASSERT_TRUE(q.push(reinterpret_cast<const uint8_t*>(&x)));
    EXPECT_EQ(q.pushWait(reinterpret_cast<const uint8_t*>(&x), 10),
              QueueWait::Timeout);  // generates a pushStall
    q.close();
    q.cancel();
    ASSERT_TRUE(q.closed());
    ASSERT_TRUE(q.cancelled());
    ASSERT_GT(q.stats().pushed, 0u);
    ASSERT_GT(q.stats().pushStalls, 0u);

    q.reopen();

    EXPECT_FALSE(q.closed());
    EXPECT_FALSE(q.cancelled());
    SpscQueue::Stats st = q.stats();
    EXPECT_EQ(st.pushed, 0u);
    EXPECT_EQ(st.popped, 0u);
    EXPECT_EQ(st.pushStalls, 0u);
    EXPECT_EQ(st.popStalls, 0u);
    EXPECT_EQ(st.highWater, 0u);

    // The backlog is gone and the queue works again end to end.
    uint32_t y = 42, v = 0;
    ASSERT_TRUE(q.push(reinterpret_cast<const uint8_t*>(&y)));
    EXPECT_EQ(q.stats().pushed, 1u);
    ASSERT_TRUE(q.pop(reinterpret_cast<uint8_t*>(&v)));
    EXPECT_EQ(v, 42u);
    q.close();
    EXPECT_EQ(q.popWait(reinterpret_cast<uint8_t*>(&v), 10),
              QueueWait::Closed);
}

namespace {

CompPtr
incBlock(int32_t delta)
{
    VarRef x = freshVar("x", Type::int32());
    return repeatc(seqc({bindc(x, take(Type::int32())),
                         just(emit(var(x) + delta))}));
}

std::vector<uint8_t>
intBytes(const std::vector<int32_t>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

} // namespace

TEST(Threaded, ThreeStagesMatchSingle)
{
    auto mk = [](bool threaded) {
        CompPtr a = incBlock(1);
        CompPtr b = incBlock(10);
        CompPtr c = incBlock(100);
        return threaded
            ? ppipe(ppipe(std::move(a), std::move(b)), std::move(c))
            : pipe(pipe(std::move(a), std::move(b)), std::move(c));
    };
    std::vector<int32_t> in(50000);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);

    auto single = compilePipeline(
        mk(false), CompilerOptions::forLevel(OptLevel::None));
    auto expect = single->runBytes(bytes);

    auto multi = compileThreadedPipeline(
        mk(true), CompilerOptions::forLevel(OptLevel::None));
    MemSource src(bytes, 4);
    VecSink sink(4);
    RunStats st = multi->run(src, sink);
    EXPECT_EQ(st.consumed, in.size());
    EXPECT_EQ(sink.data(), expect);
}

TEST(Threaded, VectorizedStagesMatchSingle)
{
    auto mk = [](bool threaded) {
        CompPtr a = incBlock(2);
        CompPtr b = incBlock(3);
        return threaded ? ppipe(std::move(a), std::move(b))
                        : pipe(std::move(a), std::move(b));
    };
    std::vector<int32_t> in(288 * 64);
    Rng rng(4);
    for (auto& v : in)
        v = static_cast<int32_t>(rng.next());
    auto bytes = intBytes(in);

    auto expect = compilePipeline(
        mk(false), CompilerOptions::forLevel(OptLevel::None))
        ->runBytes(bytes);

    auto multi = compileThreadedPipeline(
        mk(true), CompilerOptions::forLevel(OptLevel::All));
    MemSource src(bytes, multi->inWidth());
    VecSink sink(multi->outWidth());
    multi->run(src, sink);
    size_t n = std::min(sink.data().size(), expect.size());
    EXPECT_GT(n, expect.size() - 288 * 8);
    EXPECT_TRUE(std::equal(sink.data().begin(),
                           sink.data().begin() + static_cast<long>(n),
                           expect.begin()));
}

TEST(Threaded, MidStageComputerStopsPipeline)
{
    // Middle stage halts after 5 elements: upstream must unblock, the
    // run must report a halt, and nothing should hang.
    VarRef a = freshVar("a", Type::int32());
    std::vector<SeqComp::Item> items;
    items.push_back(bindc(a, take(Type::int32())));
    for (int i = 0; i < 4; ++i)
        items.push_back(just(take(Type::int32())));
    items.push_back(just(ret(var(a))));
    CompPtr mid = seqc(std::move(items));

    auto p = compileThreadedPipeline(
        ppipe(ppipe(incBlock(1), std::move(mid)), incBlock(5)),
        CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in(200000, 3);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    NullSink sink;
    RunStats st = p->run(src, sink);
    EXPECT_TRUE(st.halted);
    EXPECT_LT(st.consumed, in.size());
}

TEST(Threaded, StageErrorPropagates)
{
    // Division by zero inside stage 2 must surface on the calling thread.
    VarRef x = freshVar("x", Type::int32());
    CompPtr bad = repeatc(seqc({bindc(x, take(Type::int32())),
                                just(emit(cInt(7) / var(x)))}));
    auto p = compileThreadedPipeline(
        ppipe(incBlock(0), std::move(bad)),
        CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in{1, 2, 0, 4};
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    NullSink sink;
    EXPECT_THROW(p->run(src, sink), FatalError);
}

TEST(Threaded, RunStatsAndStageTelemetry)
{
    // Stage/queue telemetry is recorded on every threaded run, even
    // without per-node instrumentation.
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), incBlock(2)),
        CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in(20000);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    VecSink sink(4);
    RunStats st = p->run(src, sink);
    EXPECT_EQ(st.consumed, in.size());
    EXPECT_EQ(st.emitted, in.size());

    ASSERT_NE(st.metrics, nullptr);
    ASSERT_EQ(st.metrics->stages.size(), p->stageCount());
    const StageMetrics& s0 = st.metrics->stages.front();
    const StageMetrics& s1 = st.metrics->stages.back();
    EXPECT_EQ(s0.consumed, st.consumed);
    EXPECT_EQ(s1.emitted, st.emitted);
    EXPECT_EQ(s0.emitted, s1.consumed);  // all queue traffic delivered
    EXPECT_FALSE(s0.halted);
    EXPECT_GE(s0.sec, 0.0);

    EXPECT_TRUE(s0.hasQueue);
    EXPECT_FALSE(s1.hasQueue);
    EXPECT_GT(s0.queueCapacity, 0u);
    EXPECT_GE(s0.queueHighWater, 1u);
    EXPECT_LE(s0.queueHighWater, s0.queueCapacity);
}

TEST(Threaded, TelemetryReplacedEachRunAndRecordsHalt)
{
    // A halting middle stage: its StageMetrics entry reports the halt,
    // and a second run replaces (not appends to) the stage records.
    VarRef a = freshVar("a", Type::int32());
    auto mkHalting = [&] {
        return seqc({bindc(a, take(Type::int32())),
                     just(ret(var(a)))});
    };
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), mkHalting()),
        CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in(50000, 2);
    auto bytes = intBytes(in);
    for (int round = 0; round < 2; ++round) {
        MemSource src(bytes, 4);
        NullSink sink;
        RunStats st = p->run(src, sink);
        EXPECT_TRUE(st.halted);
        ASSERT_NE(st.metrics, nullptr);
        ASSERT_EQ(st.metrics->stages.size(), 2u);
        EXPECT_TRUE(st.metrics->stages.back().halted);
        EXPECT_FALSE(st.metrics->stages.front().halted);
    }
}

TEST(Threaded, InstrumentedStagesExposePerNodeCounters)
{
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.instrument = true;
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), incBlock(2)), opt);
    std::vector<int32_t> in{1, 2, 3, 4, 5};
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    VecSink sink(4);
    RunStats st = p->run(src, sink);

    ASSERT_NE(st.metrics, nullptr);
    const NodeMetrics* stage0 = nullptr;
    const NodeMetrics* stage1 = nullptr;
    for (const auto& n : st.metrics->nodes) {
        if (n.path == "stage0")
            stage0 = &n;
        if (n.path == "stage1")
            stage1 = &n;
    }
    ASSERT_NE(stage0, nullptr);
    ASSERT_NE(stage1, nullptr);
    EXPECT_EQ(stage0->elemsIn(), in.size());
    EXPECT_EQ(stage0->elemsOut(), in.size());
    EXPECT_EQ(stage1->elemsOut(), st.emitted);
}

TEST(Threaded, RestartRecoversFromTransientSourceThrow)
{
    // A one-shot source throw with a restart budget: the run must come
    // back and finish the stream.  Threaded restart may drop whatever
    // was in flight in the stage queues at teardown, but never more,
    // and never reorders or duplicates.
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.queueCapacity = 8;
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), incBlock(10)), opt);

    const size_t N = 100;
    std::vector<int32_t> in(N);
    for (size_t i = 0; i < N; ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);
    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("throw@10"));
    VecSink sink(4);

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.attempts").value();
    uint64_t exhausted0 = reg.counter("restart.exhausted").value();

    RunStats st = p->run(src, sink);  // must not throw
    (void)st;

    EXPECT_EQ(reg.counter("restart.attempts").value(), attempts0 + 1);
    EXPECT_EQ(reg.counter("restart.exhausted").value(), exhausted0);
    EXPECT_EQ(src.fired(), 1u);

    // Bounded loss: at most the queue capacity plus the two stages'
    // in-flight elements can vanish across the restart.
    std::vector<int32_t> got(sink.data().size() / 4);
    std::memcpy(got.data(), sink.data().data(), sink.data().size());
    ASSERT_GE(got.size(), N - (8 + 2));
    for (size_t i = 1; i < got.size(); ++i)
        ASSERT_LT(got[i - 1], got[i]) << "output reordered at " << i;
    for (int32_t v : got) {
        EXPECT_GE(v, in.front() + 11);  // every value is some in[i] + 11
        EXPECT_LE(v, in.back() + 11);
    }
    EXPECT_EQ(got.back(), in.back() + 11)
        << "the post-fault tail of the stream was not processed";
}

TEST(Threaded, RestartBudgetExhaustionCarriesHistory)
{
    // throw@10:0 fires on EVERY attempt (count 0 = permanent fault):
    // the supervisor must spend exactly maxRestarts retries, then
    // rethrow with the attempt history and the exhausted marker.
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 2;
    opt.restart.backoffInitialMs = 1;
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), incBlock(10)), opt);

    std::vector<int32_t> in(64, 7);
    auto bytes = intBytes(in);
    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("throw@10:0"));
    NullSink sink;

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.attempts").value();
    uint64_t exhausted0 = reg.counter("restart.exhausted").value();

    try {
        p->run(src, sink);
        FAIL() << "permanent fault must exhaust the restart budget";
    } catch (const StageFailureError& e) {
        const StageFailure& f = e.failure();
        EXPECT_TRUE(f.restartsExhausted);
        EXPECT_EQ(f.restarts.size(), 2u);
        EXPECT_EQ(f.cause, FailureCause::Exception);
        for (const RestartAttempt& a : f.restarts) {
            EXPECT_EQ(a.cause, FailureCause::Exception);
            EXPECT_NE(a.message.find("injected fault"), std::string::npos);
        }
        EXPECT_NE(std::string(e.what()).find("restart"),
                  std::string::npos);
    }
    EXPECT_EQ(reg.counter("restart.attempts").value(), attempts0 + 2);
    EXPECT_EQ(reg.counter("restart.exhausted").value(), exhausted0 + 1);
    EXPECT_EQ(src.fired(), 3u);  // initial attempt + two retries
}

TEST(SpscQueue, UncancelKeepsBacklogAndReenablesTraffic)
{
    // uncancel() is the per-stage restart primitive for queues NOT
    // adjacent to the failed stage: the teardown latches (every stage
    // closes its output queue and the driver cancels everything on the
    // way out) must clear, but unlike reopen() the backlog is part of a
    // healthy stage's live state and must survive.
    SpscQueue q(4, 4);
    uint32_t a = 7, b = 8, v = 0;
    ASSERT_TRUE(q.push(reinterpret_cast<const uint8_t*>(&a)));
    ASSERT_TRUE(q.push(reinterpret_cast<const uint8_t*>(&b)));
    q.close();
    q.cancel();
    ASSERT_EQ(q.popWait(reinterpret_cast<uint8_t*>(&v), 0),
              QueueWait::Cancelled);

    q.uncancel();

    EXPECT_FALSE(q.closed());
    EXPECT_FALSE(q.cancelled());
    EXPECT_EQ(q.size(), 2u);  // backlog preserved, in order
    ASSERT_TRUE(q.pop(reinterpret_cast<uint8_t*>(&v)));
    EXPECT_EQ(v, 7u);
    ASSERT_TRUE(q.pop(reinterpret_cast<uint8_t*>(&v)));
    EXPECT_EQ(v, 8u);
    uint32_t c = 9;
    ASSERT_TRUE(q.push(reinterpret_cast<const uint8_t*>(&c)));
    ASSERT_TRUE(q.pop(reinterpret_cast<uint8_t*>(&v)));
    EXPECT_EQ(v, 9u);
}

namespace {

/** letvar acc = 0; repeat { x <- take; acc += x; emit acc } */
CompPtr
runningSum()
{
    VarRef acc = freshVar("acc", Type::int32());
    VarRef x = freshVar("x", Type::int32());
    return letvar(
        acc, cInt(0),
        repeatc(seqc({bindc(x, take(Type::int32())),
                      just(doS({assign(var(acc), var(acc) + var(x))})),
                      just(emit(var(acc)))})));
}

std::vector<int32_t>
sinkInts(const VecSink& sink)
{
    std::vector<int32_t> got(sink.data().size() / 4);
    std::memcpy(got.data(), sink.data().data(), sink.data().size());
    return got;
}

} // namespace

TEST(Threaded, StageScopedRestartPreservesDownstreamState)
{
    // Source throws twice (throw@10:2 — the fault clock survives the
    // restart, so it re-fires on the very next read).  With
    // RestartScope::Stage only stage 0 is torn down; the downstream
    // running-sum stage keeps its live accumulator across BOTH
    // restarts, so the output stays strictly monotone.  A
    // pipeline-scoped restart would zero the accumulator and dip.
    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.queueCapacity = 8;
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.scope = RestartScope::Stage;
    opt.restart.maxRestarts = 4;
    opt.restart.backoffInitialMs = 1;
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), runningSum()), opt);

    const size_t N = 100;
    std::vector<int32_t> in(N);
    for (size_t i = 0; i < N; ++i)
        in[i] = static_cast<int32_t>(i);  // stage 0 emits 1..N
    auto bytes = intBytes(in);
    MemSource mem(bytes, 4);
    FaultySource src(mem, FaultSpec::parse("throw@10:2"));
    VecSink sink(4);

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.stage.attempts").value();
    uint64_t restored0 = reg.counter("restart.stage.restored").value();

    p->run(src, sink);  // must not throw

    // Two re-arms of stage 0; the first restore is skipped (no boundary
    // snapshot exists before the first failure), the second restores.
    EXPECT_EQ(reg.counter("restart.stage.attempts").value(),
              attempts0 + 2);
    EXPECT_EQ(reg.counter("restart.stage.restored").value(),
              restored0 + 1);
    EXPECT_EQ(src.fired(), 2u);

    std::vector<int32_t> got = sinkInts(sink);
    // At most the reopened queue's backlog plus in-flight elements
    // vanish per restart.
    ASSERT_GE(got.size(), N - 2 * (8 + 2));
    for (size_t i = 1; i < got.size(); ++i)
        ASSERT_LT(got[i - 1], got[i])
            << "accumulator state was lost across a restart (output "
               "dipped at index " << i << ")";
    // Each output is prev + the delivered value, so the final gap IS
    // the last delivered value: the post-fault tail reached the sink.
    ASSERT_GE(got.size(), 2u);
    EXPECT_EQ(got.back() - got[got.size() - 2],
              static_cast<int32_t>(N));
}

TEST(Threaded, StageScopedRestartResetsOnlyTheFailedStage)
{
    // A data-poisoned MIDDLE stage: 7/(x-10) faults when the running
    // sum hits 10.  Per-stage restart drops the poisoned element with
    // the reopened queues and plain-resets the (stateless) failed
    // stage — no snapshot exists yet, so restored must NOT bump — while
    // the upstream accumulator keeps its state.  Every input is
    // consumed by stage 0 exactly once, so the last sum to reach the
    // sink is the full-series total: proof the accumulator was neither
    // reset nor double-fed.
    VarRef x = freshVar("x", Type::int32());
    CompPtr poison = repeatc(seqc(
        {bindc(x, take(Type::int32())),
         just(emit(var(x) + cInt(0) * (cInt(7) / (var(x) - 10))))}));

    CompilerOptions opt = CompilerOptions::forLevel(OptLevel::None);
    opt.queueCapacity = 8;
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.scope = RestartScope::Stage;
    opt.restart.maxRestarts = 3;
    opt.restart.backoffInitialMs = 1;
    auto p = compileThreadedPipeline(
        ppipe(ppipe(runningSum(), std::move(poison)), incBlock(0)),
        opt);

    const int32_t N = 60;
    std::vector<int32_t> in(static_cast<size_t>(N));
    for (int32_t i = 0; i < N; ++i)
        in[static_cast<size_t>(i)] = i + 1;  // sums: 1,3,6,10,15,...
    auto bytes = intBytes(in);
    MemSource src(bytes, 4);
    VecSink sink(4);

    auto& reg = metrics::Registry::global();
    uint64_t attempts0 = reg.counter("restart.stage.attempts").value();
    uint64_t restored0 = reg.counter("restart.stage.restored").value();

    p->run(src, sink);  // must not throw

    EXPECT_EQ(reg.counter("restart.stage.attempts").value(),
              attempts0 + 1);
    EXPECT_EQ(reg.counter("restart.stage.restored").value(), restored0);

    std::vector<int32_t> got = sinkInts(sink);
    ASSERT_FALSE(got.empty());
    for (size_t i = 1; i < got.size(); ++i)
        ASSERT_LT(got[i - 1], got[i])
            << "upstream accumulator was reset (output dipped at "
            << i << ")";
    EXPECT_EQ(got.back(), N * (N + 1) / 2);
}

TEST(Threaded, RepeatedRunsReuseThePipeline)
{
    auto p = compileThreadedPipeline(
        ppipe(incBlock(1), incBlock(2)),
        CompilerOptions::forLevel(OptLevel::None));
    std::vector<int32_t> in{5, 6, 7};
    auto bytes = intBytes(in);
    for (int round = 0; round < 3; ++round) {
        MemSource src(bytes, 4);
        VecSink sink(4);
        RunStats st = p->run(src, sink);
        EXPECT_EQ(st.emitted, 3u);
        std::vector<int32_t> got(3);
        std::memcpy(got.data(), sink.data().data(), 12);
        EXPECT_EQ(got, (std::vector<int32_t>{8, 9, 10}));
    }
}

} // namespace
} // namespace ziria
