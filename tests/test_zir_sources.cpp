/**
 * @file
 * Golden checks over the shipped `.zir` example sources: every file must
 * parse, compile at every optimization level, and behave sensibly.
 */
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "support/rng.h"
#include "wifi/native_blocks.h"
#include "zir/compiler.h"
#include "zparse/parser.h"

namespace ziria {
namespace {

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path
                           << " (run tests from the repo root or build/)";
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
findExampleDir()
{
    for (const char* p : {"examples/zir/", "../examples/zir/",
                          "../../examples/zir/"}) {
        std::ifstream probe(std::string(p) + "scrambler.zir");
        if (probe.good())
            return p;
    }
    return "examples/zir/";
}

class ZirSources : public ::testing::TestWithParam<const char*>
{
};

TEST_P(ZirSources, ParsesAndCompilesAtEveryLevel)
{
    wifi::registerWifiNatives();
    std::string src = readFile(findExampleDir() + GetParam());
    ASSERT_FALSE(src.empty());
    for (OptLevel lvl :
         {OptLevel::None, OptLevel::Vectorize, OptLevel::All}) {
        CompPtr c;
        ASSERT_NO_THROW(c = parseComp(src)) << GetParam();
        ASSERT_NO_THROW(compilePipeline(c, CompilerOptions::forLevel(lvl)))
            << GetParam() << " level " << static_cast<int>(lvl);
    }
}

INSTANTIATE_TEST_SUITE_P(Files, ZirSources,
                         ::testing::Values("scrambler.zir",
                                           "decimate.zir",
                                           "mini_ofdm_tx.zir"));

TEST(ZirSources, ScramblerMatchesReferenceSequence)
{
    std::string src = readFile(findExampleDir() + "scrambler.zir");
    CompPtr c = parseComp(src);
    auto p = compilePipeline(c, CompilerOptions::forLevel(OptLevel::All));
    std::vector<uint8_t> zeros(508, 0);  // multiple of the 8-bit groups?
    zeros.resize(512, 0);
    auto out = p->runBytes(zeros);
    // Scrambling zeros yields the raw scrambler sequence.
    auto seq = wifi::scramblerSequence(static_cast<int>(out.size()));
    EXPECT_TRUE(std::equal(out.begin(), out.end(), seq.begin()));
}

TEST(ZirSources, MiniOfdmProducesWholeSymbols)
{
    wifi::registerWifiNatives();
    std::string src = readFile(findExampleDir() + "mini_ofdm_tx.zir");
    CompPtr c = parseComp(src);
    auto p = compilePipeline(c, CompilerOptions::forLevel(OptLevel::None));
    Rng rng(3);
    std::vector<uint8_t> bits(48 * 5);
    for (auto& b : bits)
        b = rng.bit();
    auto out = p->runBytes(bits);
    // 5 symbols x 80 samples x 4 bytes.
    EXPECT_EQ(out.size(), 5u * 80u * 4u);
}

} // namespace
} // namespace ziria
