/**
 * @file
 * Property-style parameterized sweeps over the compiler: every
 * optimization level must preserve the observable behaviour of randomly
 * generated pipelines, round-trip identities must hold across levels,
 * and compile-once/run-many must be deterministic.
 */
#include <gtest/gtest.h>

#include "support/rng.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zast/builder.h"
#include "zgen/generator.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace zb;

std::vector<uint8_t>
randomBits(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = rng.bit();
    return out;
}

/**
 * The random bit-level transformer chains now live in the reusable
 * generator library (src/zgen); `randomBitChain` is the named preset
 * that reproduces the historical chains of this suite seed-for-seed.
 */
CompPtr
randomChain(uint64_t seed, int stages)
{
    return zgen::randomBitChain(seed, stages);
}

class RandomChainLevels
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RandomChainLevels, AllLevelsAgree)
{
    auto [seed, stages] = GetParam();
    auto input = randomBits(4 * 288 * 4, static_cast<uint64_t>(seed));
    auto expect =
        compilePipeline(randomChain(static_cast<uint64_t>(seed), stages),
                        CompilerOptions::forLevel(OptLevel::None))
            ->runBytes(input);
    for (OptLevel lvl : {OptLevel::Vectorize, OptLevel::All}) {
        auto p = compilePipeline(
            randomChain(static_cast<uint64_t>(seed), stages),
            CompilerOptions::forLevel(lvl));
        auto got = p->runBytes(input);
        size_t n = std::min(got.size(), expect.size());
        ASSERT_GE(n + 4 * 288, expect.size())
            << "seed=" << seed << " stages=" << stages;
        EXPECT_TRUE(std::equal(got.begin(),
                               got.begin() + static_cast<long>(n),
                               expect.begin()))
            << "seed=" << seed << " stages=" << stages
            << " level=" << static_cast<int>(lvl);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomChainLevels,
    ::testing::Combine(::testing::Range(1, 9), ::testing::Values(1, 2, 3)));

class ScramblerInvolution : public ::testing::TestWithParam<int>
{
};

TEST_P(ScramblerInvolution, TwiceIsIdentityAtEveryLevel)
{
    int lvl = GetParam();
    auto input = randomBits(2048, 77);
    CompPtr twice = pipe(wifi::scramblerBlock(), wifi::scramblerBlock());
    auto p = compilePipeline(
        twice, CompilerOptions::forLevel(static_cast<OptLevel>(lvl)));
    auto out = p->runBytes(input);
    size_t n = std::min(out.size(), input.size());
    ASSERT_GT(n, input.size() - 600);
    EXPECT_TRUE(std::equal(out.begin(),
                           out.begin() + static_cast<long>(n),
                           input.begin()));
}

INSTANTIATE_TEST_SUITE_P(Levels, ScramblerInvolution,
                         ::testing::Values(0, 1, 2));

TEST(Determinism, CompileTwiceRunManyAgree)
{
    auto input = randomBits(288 * 8, 5);
    std::vector<uint8_t> first;
    for (int round = 0; round < 3; ++round) {
        auto p = compilePipeline(wifi::scramblerBlock(),
                                 CompilerOptions::forLevel(OptLevel::All));
        auto a = p->runBytes(input);
        auto b = p->runBytes(input);  // re-run: state must reset
        EXPECT_EQ(a, b);
        if (round == 0)
            first = a;
        else
            EXPECT_EQ(a, first);
    }
}

TEST(Robustness, TruncatedInputNeverCrashes)
{
    // Feed every prefix length of a packet into the TX pipe.
    auto bits = wifi::assembleDataBits(std::vector<uint8_t>(40, 0x55),
                                       wifi::Rate::R12);
    auto p = compilePipeline(wifi::wifiTxDataComp(wifi::Rate::R12),
                             CompilerOptions::forLevel(OptLevel::All));
    for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{100},
                       bits.size() / 2, bits.size() - 1}) {
        std::vector<uint8_t> part(bits.begin(),
                                  bits.begin() + static_cast<long>(len));
        EXPECT_NO_THROW(p->runBytes(part)) << "len=" << len;
    }
}

TEST(Robustness, GarbageSamplesIntoReceiver)
{
    // Random noise into the full receiver: no detection, no crash.
    Rng rng(9);
    std::vector<uint8_t> noise(80000);
    for (auto& b : noise)
        b = static_cast<uint8_t>(rng.next());
    auto p = compilePipeline(wifi::wifiReceiverComp(),
                             CompilerOptions::forLevel(OptLevel::None));
    RunStats st;
    EXPECT_NO_THROW(p->runBytes(noise, &st));
    EXPECT_FALSE(st.halted);
}

TEST(Robustness, HugeControlValuesFlowThroughSeq)
{
    // A computer returning a large array control value (like LTS).
    VarRef big = freshVar("big", Type::array(Type::int32(), 64));
    VarRef i = freshVar("i", Type::int32());
    CompPtr fill = seqc(
        {just(doS({sFor(i, cInt(0), cInt(64),
                        {assign(idx(var(big), var(i)), var(i))})})),
         just(ret(var(big)))});
    VarRef h = freshVar("h", Type::array(Type::int32(), 64));
    CompPtr program =
        letvar(big, nullptr,
               seqc({bindc(h, std::move(fill)),
                     just(emit(idx(var(h), 63)))}));
    auto p = compilePipeline(program,
                             CompilerOptions::forLevel(OptLevel::None));
    auto out = p->runBytes({});
    ASSERT_EQ(out.size(), 4u);
    int32_t v;
    std::memcpy(&v, out.data(), 4);
    EXPECT_EQ(v, 63);
}

} // namespace
} // namespace ziria
