/**
 * @file
 * IEEE 802.11a golden-vector conformance suite.  The vectors under
 * tests/data/annexg/ are produced by scripts/gen_annexg.py — an
 * independent Python implementation of the Clause 17 equations — and
 * lock down every TX stage bit-for-bit: scrambler sequence,
 * convolutional code (all three coding rates), interleaver
 * permutations, constellation mappers, SIGNAL field, and the composed
 * scramble>>encode>>interleave>>map chain at all eight rates.  The
 * deliberate deviations of this codebase from a strict Annex G reading
 * are documented in docs/TESTING.md and in gen_annexg.py.
 *
 * The suite also carries the permutation-inverse property tests and the
 * Ziria-TX-to-Ziria-RX round trip at every rate.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <fstream>
#include <sstream>

#include "channel/channel.h"
#include "dsp/constellation.h"
#include "dsp/conv_code.h"
#include "support/rng.h"
#include "wifi/blocks_tx.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace wifi;

// ------------------------------------------------- golden-file access

std::vector<std::string>
goldenLines(const std::string& name)
{
    std::string path = std::string(ZIRIA_TEST_DATA_DIR "/annexg/") + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path
                           << " (regenerate: python3 scripts/gen_annexg.py)";
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '#')
            lines.push_back(line);
    }
    return lines;
}

std::vector<uint8_t>
parseBits(const std::string& s)
{
    std::vector<uint8_t> out;
    for (char c : s) {
        if (c == '0' || c == '1')
            out.push_back(static_cast<uint8_t>(c - '0'));
    }
    return out;
}

std::vector<int>
parseInts(const std::string& s)
{
    std::istringstream is(s);
    std::vector<int> out;
    int v;
    while (is >> v)
        out.push_back(v);
    return out;
}

std::vector<Complex16>
parsePoints(const std::vector<std::string>& lines)
{
    std::vector<Complex16> out;
    for (const auto& ln : lines) {
        std::istringstream is(ln);
        int re, im;
        is >> re >> im;
        out.push_back(Complex16{static_cast<int16_t>(re),
                                static_cast<int16_t>(im)});
    }
    return out;
}

std::vector<Complex16>
bytesToSamples(const std::vector<uint8_t>& bytes)
{
    std::vector<Complex16> out(bytes.size() / 4);
    std::memcpy(out.data(), bytes.data(), out.size() * 4);
    return out;
}

std::vector<uint8_t>
samplesToBytes(const std::vector<Complex16>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

/** The fixed conformance payload (mirrored in gen_annexg.py). */
std::vector<uint8_t>
conformancePayload(int n = 100)
{
    std::vector<uint8_t> out(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        out[static_cast<size_t>(i)] =
            static_cast<uint8_t>((7 * i + 13) & 0xFF);
    return out;
}

const char*
modTag(dsp::Modulation m)
{
    switch (m) {
      case dsp::Modulation::Bpsk: return "bpsk";
      case dsp::Modulation::Qpsk: return "qpsk";
      case dsp::Modulation::Qam16: return "qam16";
      default: return "qam64";
    }
}

// ---------------------------------------------------------- scrambler

TEST(Scrambler, SequenceMatchesSpec)
{
    auto lines = goldenLines("scrambler_seq.txt");
    ASSERT_EQ(lines.size(), 1u);
    auto golden = parseBits(lines[0]);
    ASSERT_EQ(golden.size(), 127u);
    EXPECT_EQ(scramblerSequence(127), golden);
}

TEST(Scrambler, DslBlockProducesSpecSequence)
{
    // Scrambling the all-zero stream emits the raw sequence.
    auto golden = parseBits(goldenLines("scrambler_seq.txt")[0]);
    std::vector<uint8_t> zeros(127, 0);
    for (OptLevel lvl : {OptLevel::None, OptLevel::All}) {
        auto p = compilePipeline(scramblerBlock(),
                                 CompilerOptions::forLevel(lvl));
        auto out = p->runBytes(zeros);
        size_t n = std::min(out.size(), golden.size());
        ASSERT_GT(n, 0u);
        EXPECT_TRUE(std::equal(out.begin(),
                               out.begin() + static_cast<long>(n),
                               golden.begin()))
            << "level " << static_cast<int>(lvl);
    }
}

// --------------------------------------------------------- conv code

class ConvGolden
    : public ::testing::TestWithParam<std::pair<dsp::CodingRate,
                                                const char*>>
{
};

TEST_P(ConvGolden, EncoderMatchesGolden)
{
    auto [coding, file] = GetParam();
    auto golden = parseBits(goldenLines(file)[0]);
    auto input = scramblerSequence(96);

    dsp::ConvEncoder enc(coding);
    EXPECT_EQ(enc.encode(input), golden) << "host encoder";

    for (OptLevel lvl : {OptLevel::None, OptLevel::All}) {
        auto p = compilePipeline(encoderBlock(coding),
                                 CompilerOptions::forLevel(lvl));
        auto out = p->runBytes(input);
        size_t n = std::min(out.size(), golden.size());
        ASSERT_GT(n, golden.size() / 2);
        EXPECT_TRUE(std::equal(out.begin(),
                               out.begin() + static_cast<long>(n),
                               golden.begin()))
            << "DSL encoder, level " << static_cast<int>(lvl);
        if (lvl == OptLevel::None) {
            EXPECT_EQ(out.size(), golden.size());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodings, ConvGolden,
    ::testing::Values(std::make_pair(dsp::CodingRate::Half, "conv_r12.txt"),
                      std::make_pair(dsp::CodingRate::TwoThirds,
                                     "conv_r23.txt"),
                      std::make_pair(dsp::CodingRate::ThreeQuarters,
                                     "conv_r34.txt")));

// -------------------------------------------------------- interleaver

TEST(Interleaver, TablesMatchGolden)
{
    struct Case
    {
        dsp::Modulation m;
        Rate r;
    } cases[] = {{dsp::Modulation::Bpsk, Rate::R6},
                 {dsp::Modulation::Qpsk, Rate::R12},
                 {dsp::Modulation::Qam16, Rate::R24},
                 {dsp::Modulation::Qam64, Rate::R54}};
    for (const auto& c : cases) {
        auto golden = parseInts(
            goldenLines(std::string("interleaver_") + modTag(c.m) +
                        ".txt")[0]);
        EXPECT_EQ(interleaverTable(c.r), golden) << modTag(c.m);
    }
}

TEST(Interleaver, TablesAreMutualInversesForEveryRate)
{
    for (Rate r : allRates()) {
        auto fwd = interleaverTable(r);
        auto inv = deinterleaverTable(r);
        const int ncbps = rateInfo(r).ncbps;
        ASSERT_EQ(fwd.size(), static_cast<size_t>(ncbps));
        ASSERT_EQ(inv.size(), static_cast<size_t>(ncbps));
        std::vector<bool> seen(static_cast<size_t>(ncbps), false);
        for (int k = 0; k < ncbps; ++k) {
            int j = fwd[static_cast<size_t>(k)];
            ASSERT_GE(j, 0);
            ASSERT_LT(j, ncbps);
            EXPECT_FALSE(seen[static_cast<size_t>(j)]) << "not a bijection";
            seen[static_cast<size_t>(j)] = true;
            EXPECT_EQ(inv[static_cast<size_t>(j)], k)
                << rateInfo(r).mbps << " Mbps, k=" << k;
            EXPECT_EQ(fwd[static_cast<size_t>(
                          inv[static_cast<size_t>(k)])],
                      k);
        }
    }
}

TEST(Interleaver, DslBlocksComposeToIdentityPerSymbol)
{
    // interleave >>> deinterleave over whole OFDM symbols is identity.
    Rng rng(404);
    for (dsp::Modulation m :
         {dsp::Modulation::Bpsk, dsp::Modulation::Qpsk,
          dsp::Modulation::Qam16, dsp::Modulation::Qam64}) {
        const int ncbps = numDataCarriers * dsp::bitsPerSymbol(m);
        std::vector<uint8_t> input(static_cast<size_t>(ncbps) * 4);
        for (auto& b : input)
            b = rng.bit();
        auto p = compilePipeline(
            zb::pipe(interleaverBlock(m), deinterleaverBlock(m)),
            CompilerOptions::forLevel(OptLevel::None));
        EXPECT_EQ(p->runBytes(input), input) << modTag(m);
    }
}

// ------------------------------------------------------------- mapper

class MapperGolden : public ::testing::TestWithParam<dsp::Modulation>
{
};

TEST_P(MapperGolden, EveryBitGroupMatches)
{
    dsp::Modulation m = GetParam();
    const int nb = dsp::bitsPerSymbol(m);
    auto lines = goldenLines(std::string("mapper_") + modTag(m) + ".txt");
    ASSERT_EQ(lines.size(), static_cast<size_t>(1 << nb));
    for (const auto& ln : lines) {
        std::istringstream is(ln);
        std::string bitsStr;
        int re, im;
        is >> bitsStr >> re >> im;
        auto bits = parseBits(bitsStr);
        ASSERT_EQ(bits.size(), static_cast<size_t>(nb));
        uint32_t packed = 0;
        for (int i = 0; i < nb; ++i)
            packed |= static_cast<uint32_t>(bits[static_cast<size_t>(i)])
                      << i;
        Complex16 p = dsp::mapBits(m, packed);
        EXPECT_EQ(p.re, re) << modTag(m) << " bits " << bitsStr;
        EXPECT_EQ(p.im, im) << modTag(m) << " bits " << bitsStr;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, MapperGolden,
                         ::testing::Values(dsp::Modulation::Bpsk,
                                           dsp::Modulation::Qpsk,
                                           dsp::Modulation::Qam16,
                                           dsp::Modulation::Qam64));

// ------------------------------------------------------------- SIGNAL

TEST(SignalField, MatchesGoldenAndParsesBack)
{
    auto lines = goldenLines("signal_field.txt");
    ASSERT_EQ(lines.size(), 40u);
    int checked = 0;
    for (const auto& ln : lines) {
        std::istringstream is(ln);
        int mbps, psdu;
        std::string bitsStr;
        is >> mbps >> psdu >> bitsStr;
        auto golden = parseBits(bitsStr);
        ASSERT_EQ(golden.size(), 24u);
        Rate rate = Rate::R6;
        for (Rate r : allRates())
            if (rateInfo(r).mbps == mbps)
                rate = r;
        EXPECT_EQ(signalBits(rate, psdu), golden)
            << mbps << " Mbps, len " << psdu;
        SignalInfo info = parseSignal(golden);
        EXPECT_TRUE(info.valid);
        EXPECT_EQ(info.rate, rate);
        EXPECT_EQ(info.length, psdu);
        ++checked;
    }
    EXPECT_EQ(checked, 40);
}

// ------------------------------------------------------ full TX chain

class TxChainGolden : public ::testing::TestWithParam<Rate>
{
};

TEST_P(TxChainGolden, FrequencyDomainPointsMatch)
{
    Rate rate = GetParam();
    const RateInfo& ri = rateInfo(rate);
    auto golden = parsePoints(goldenLines(
        std::string("txchain_r") + std::to_string(ri.mbps) + ".txt"));
    const int nsym = dataSymbols(rate, psduLen(100));
    ASSERT_EQ(golden.size(),
              static_cast<size_t>(nsym) * numDataCarriers);

    auto payload = conformancePayload();
    auto dataBits = assembleDataBits(payload, rate);

    auto chain = [&] {
        return zb::pipe(
            zb::pipe(zb::pipe(scramblerBlock(), encoderBlock(ri.coding)),
                     interleaverBlock(ri.modulation)),
            modulatorBlock(ri.modulation));
    };

    // Unoptimized: the whole stream must match exactly.
    auto p0 = compilePipeline(chain(),
                              CompilerOptions::forLevel(OptLevel::None));
    auto got0 = bytesToSamples(p0->runBytes(dataBits));
    ASSERT_EQ(got0.size(), golden.size()) << ri.mbps << " Mbps";
    for (size_t i = 0; i < golden.size(); ++i) {
        ASSERT_EQ(got0[i].re, golden[i].re)
            << ri.mbps << " Mbps, point " << i;
        ASSERT_EQ(got0[i].im, golden[i].im)
            << ri.mbps << " Mbps, point " << i;
    }

    // Fully optimized: prefix must match (vectorization may drop a
    // bounded tail).
    auto p1 = compilePipeline(chain(),
                              CompilerOptions::forLevel(OptLevel::All));
    auto got1 = bytesToSamples(p1->runBytes(dataBits));
    size_t n = std::min(got1.size(), golden.size());
    ASSERT_GE(n, static_cast<size_t>(numDataCarriers));
    for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got1[i].re, golden[i].re)
            << ri.mbps << " Mbps (optimized), point " << i;
        ASSERT_EQ(got1[i].im, golden[i].im)
            << ri.mbps << " Mbps (optimized), point " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllRates, TxChainGolden,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

// ------------------------------------------------- TX->RX round trips

class ZiriaRoundTrip : public ::testing::TestWithParam<Rate>
{
};

TEST_P(ZiriaRoundTrip, ReceiverDecodesZiriaTransmitter)
{
    // Ziria TX pipeline -> benign channel -> Ziria receiver, at every
    // rate.  (The other RX suites pair the receiver with the Sora
    // reference TX; this closes the loop inside the DSL.)
    Rate rate = GetParam();
    Rng rng(600 + static_cast<uint64_t>(rate));
    std::vector<uint8_t> payload(72);
    for (auto& b : payload)
        b = static_cast<uint8_t>(rng.next());

    auto tx = compilePipeline(
        wifiTxFrameComp(rate, static_cast<int>(payload.size())),
        CompilerOptions::forLevel(OptLevel::None));
    auto txSamples = bytesToSamples(tx->runBytes(bytesToBits(payload)));
    ASSERT_GT(txSamples.size(), 400u);

    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.delaySamples = 220;
    cfg.trailSamples = 120;
    cfg.phaseRad = 0.3;
    cfg.gain = 0.9;
    cfg.seed = 1000 + static_cast<uint64_t>(rate);
    auto rxSamples = channel::applyChannel(txSamples, cfg);

    auto rx = compilePipeline(wifiReceiverComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    RunStats st;
    auto bits = rx->runBytes(samplesToBytes(rxSamples), &st);
    ASSERT_TRUE(st.halted) << rateInfo(rate).mbps << " Mbps: no detection";
    ASSERT_EQ(st.ctrl.size(), 4u);
    int32_t crcOk = 0;
    std::memcpy(&crcOk, st.ctrl.data(), 4);
    EXPECT_EQ(crcOk, 1) << rateInfo(rate).mbps << " Mbps: CRC failed";

    auto bytes = bitsToBytes(bits);
    ASSERT_GE(bytes.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), bytes.begin()))
        << rateInfo(rate).mbps << " Mbps: payload mismatch";
}

INSTANTIATE_TEST_SUITE_P(AllRates, ZiriaRoundTrip,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

// ------------------------------------------- fused-backend conformance
//
// The same golden vectors, executed by the fused bytecode backend
// (docs/FUSION.md).  The fused output must equal the VM output BYTE FOR
// BYTE — not merely match the golden prefix — so any divergence fails
// even where the goldens would tolerate a dropped vectorization tail.

CompilerOptions
fusedConf(OptLevel lvl)
{
    CompilerOptions opt = CompilerOptions::forLevel(lvl);
    opt.backend = Backend::Fused;
    return opt;
}

TEST(FusedConformance, PerStageBlocksMatchVm)
{
    struct Stage
    {
        const char* name;
        std::function<CompPtr()> make;
        std::vector<uint8_t> input;
    };
    auto bits = scramblerSequence(96 * 6);
    std::vector<Stage> stages;
    stages.push_back({"scrambler", [] { return scramblerBlock(); },
                      std::vector<uint8_t>(127 * 4, 0)});
    stages.push_back({"encoder-r12",
                      [] { return encoderBlock(dsp::CodingRate::Half); },
                      bits});
    stages.push_back(
        {"encoder-r23",
         [] { return encoderBlock(dsp::CodingRate::TwoThirds); }, bits});
    stages.push_back(
        {"encoder-r34",
         [] { return encoderBlock(dsp::CodingRate::ThreeQuarters); },
         bits});
    for (dsp::Modulation m :
         {dsp::Modulation::Bpsk, dsp::Modulation::Qpsk,
          dsp::Modulation::Qam16, dsp::Modulation::Qam64}) {
        const int ncbps = numDataCarriers * dsp::bitsPerSymbol(m);
        std::vector<uint8_t> in(static_cast<size_t>(ncbps) * 6);
        for (size_t i = 0; i < in.size(); ++i)
            in[i] = static_cast<uint8_t>((i * 2654435761u >> 7) & 1);
        stages.push_back(
            {modTag(m), [m] { return interleaverBlock(m); }, in});
        stages.push_back({modTag(m),
                          [m] { return modulatorBlock(m); }, in});
    }
    for (const Stage& s : stages)
        for (OptLevel lvl : {OptLevel::None, OptLevel::All}) {
            SCOPED_TRACE(std::string(s.name) + " at level " +
                         std::to_string(static_cast<int>(lvl)));
            auto vm = compilePipeline(s.make(),
                                      CompilerOptions::forLevel(lvl));
            auto fz = compilePipeline(s.make(), fusedConf(lvl));
            EXPECT_EQ(fz->runBytes(s.input), vm->runBytes(s.input));
        }
}

class FusedTxChainGolden : public ::testing::TestWithParam<Rate>
{
};

TEST_P(FusedTxChainGolden, MatchesGoldenAndVmAtEveryRate)
{
    Rate rate = GetParam();
    const RateInfo& ri = rateInfo(rate);
    auto golden = parsePoints(goldenLines(
        std::string("txchain_r") + std::to_string(ri.mbps) + ".txt"));
    auto dataBits = assembleDataBits(conformancePayload(), rate);

    auto chain = [&] {
        return zb::pipe(
            zb::pipe(zb::pipe(scramblerBlock(), encoderBlock(ri.coding)),
                     interleaverBlock(ri.modulation)),
            modulatorBlock(ri.modulation));
    };

    // Unoptimized fused: exact golden match, full length.
    CompileReport rep;
    auto f0 = compilePipeline(chain(), fusedConf(OptLevel::None), &rep);
    EXPECT_EQ(rep.fuse.fallbacks, 0)
        << "the TX chain should fuse into one region";
    auto got0 = bytesToSamples(f0->runBytes(dataBits));
    ASSERT_EQ(got0.size(), golden.size()) << ri.mbps << " Mbps";
    for (size_t i = 0; i < golden.size(); ++i) {
        ASSERT_EQ(got0[i].re, golden[i].re)
            << ri.mbps << " Mbps, point " << i;
        ASSERT_EQ(got0[i].im, golden[i].im)
            << ri.mbps << " Mbps, point " << i;
    }

    // Optimized: fused must equal the optimized VM byte for byte —
    // including any vectorization tail behavior.
    auto vm1 = compilePipeline(chain(),
                               CompilerOptions::forLevel(OptLevel::All));
    auto f1 = compilePipeline(chain(), fusedConf(OptLevel::All));
    EXPECT_EQ(f1->runBytes(dataBits), vm1->runBytes(dataBits))
        << ri.mbps << " Mbps (optimized)";
}

INSTANTIATE_TEST_SUITE_P(AllRates, FusedTxChainGolden,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

class FusedRoundTrip : public ::testing::TestWithParam<Rate>
{
};

TEST_P(FusedRoundTrip, FusedTxToFusedRxDecodes)
{
    // Fused TX -> channel -> fused RX.  The receiver leans on native
    // blocks (FFT, CCA), so this path also proves the VM-fallback spine
    // composes with fused regions inside one real pipeline.
    Rate rate = GetParam();
    Rng rng(600 + static_cast<uint64_t>(rate));
    std::vector<uint8_t> payload(72);
    for (auto& b : payload)
        b = static_cast<uint8_t>(rng.next());

    auto tx = compilePipeline(
        wifiTxFrameComp(rate, static_cast<int>(payload.size())),
        fusedConf(OptLevel::None));
    auto txSamples = bytesToSamples(tx->runBytes(bytesToBits(payload)));

    // Identical channel seed to ZiriaRoundTrip: the fused TX must
    // produce the same waveform, so the same channel decodes it.
    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.delaySamples = 220;
    cfg.trailSamples = 120;
    cfg.phaseRad = 0.3;
    cfg.gain = 0.9;
    cfg.seed = 1000 + static_cast<uint64_t>(rate);
    auto rxSamples = channel::applyChannel(txSamples, cfg);

    auto rx = compilePipeline(wifiReceiverComp(),
                              fusedConf(OptLevel::None));
    RunStats st;
    auto bits = rx->runBytes(samplesToBytes(rxSamples), &st);
    ASSERT_TRUE(st.halted) << rateInfo(rate).mbps << " Mbps: no detection";
    ASSERT_EQ(st.ctrl.size(), 4u);
    int32_t crcOk = 0;
    std::memcpy(&crcOk, st.ctrl.data(), 4);
    EXPECT_EQ(crcOk, 1) << rateInfo(rate).mbps << " Mbps: CRC failed";

    auto bytes = bitsToBytes(bits);
    ASSERT_GE(bytes.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), bytes.begin()))
        << rateInfo(rate).mbps << " Mbps: payload mismatch";
}

INSTANTIATE_TEST_SUITE_P(AllRates, FusedRoundTrip,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

} // namespace
} // namespace ziria
