/**
 * @file
 * Tests for cardinality analysis, normalization and the vectorizer —
 * including the paper's central correctness property: a vectorized
 * pipeline is observationally equivalent to the original, *including*
 * across `seq` reconfigurations (same outputs, and downstream computers
 * see exactly the data they would have seen).
 */
#include <gtest/gtest.h>

#include "support/rng.h"
#include "zast/builder.h"
#include "zast/printer.h"
#include "zcard/card.h"
#include "zcheck/check.h"
#include "zir/compiler.h"
#include "zvect/simple_comp.h"
#include "zvect/vectorize.h"

namespace ziria {
namespace {

using namespace zb;

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = static_cast<uint8_t>(rng.next() & 1);
    return out;
}

// --------------------------------------------------------------- cards

TEST(Card, Primitives)
{
    EXPECT_EQ(cardOf(take(Type::bit()))->takes, 1);
    EXPECT_EQ(cardOf(takes(Type::bit(), 7))->takes, 7);
    EXPECT_EQ(cardOf(emit(cBit(1)))->emits, 1);
    EXPECT_EQ(cardOf(ret(cUnit()))->takes, 0);
}

TEST(Card, SeqSumsAndTimesMultiplies)
{
    VarRef x = freshVar("x", Type::bit());
    CompPtr c = timesc(cInt(3), seqc({bindc(x, take(Type::bit())),
                                      just(emit(var(x))),
                                      just(emit(var(x)))}));
    auto k = cardOf(c);
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(k->takes, 3);
    EXPECT_EQ(k->emits, 6);
}

TEST(Card, WhileIsDynamic)
{
    VarRef n = freshVar("n", Type::int32());
    CompPtr c = whilec(var(n) < 3, emit(cInt(0)));
    EXPECT_FALSE(cardOf(c).has_value());
}

// -------------------------------------------------------- normalization

TEST(Normalize, ScramblerLikeBody)
{
    VarRef st = freshVar("st", Type::array(Type::bit(), 7));
    VarRef x = freshVar("x", Type::bit());
    VarRef tmp = freshVar("tmp", Type::bit());
    CompPtr body = seqc(
        {bindc(x, take(Type::bit())),
         just(doS({sDecl(tmp, idx(var(st), 3) ^ idx(var(st), 0)),
                   assign(slice(var(st), 0, 6), slice(var(st), 1, 6)),
                   assign(idx(var(st), 6), var(tmp))})),
         just(emit(var(x) ^ var(tmp)))});
    auto sc = normalizeComp(body, 1000);
    ASSERT_TRUE(sc.has_value());
    EXPECT_EQ(sc->takes, 1);
    EXPECT_EQ(sc->emits, 1);
    EXPECT_EQ(sc->steps.size(), 3u);
}

TEST(Normalize, RejectsDynamicControlFlow)
{
    VarRef n = freshVar("n", Type::int32());
    CompPtr body = whilec(var(n) < 2, emit(cInt(1)));
    EXPECT_FALSE(normalizeComp(body, 1000).has_value());
}

TEST(Normalize, UnrollsStaticTimes)
{
    VarRef i = freshVar("i", Type::int32());
    CompPtr body = timesc(cInt(4), i, emit(var(i)));
    auto sc = normalizeComp(body, 1000);
    ASSERT_TRUE(sc.has_value());
    EXPECT_EQ(sc->emits, 4);
}

// ---------------------------------------------------------- vectorizer

/** A scrambler-like stateful bit transformer (the paper's example). */
CompPtr
scramblerLike()
{
    VarRef st = freshVar("scrmbl_st", Type::array(Type::bit(), 7));
    VarRef x = freshVar("x", Type::bit());
    VarRef tmp = freshVar("tmp", Type::bit());
    return letvar(
        st, bitArrayLit({1, 1, 1, 1, 1, 1, 1}),
        repeatc(seqc(
            {bindc(x, take(Type::bit())),
             just(doS({sDecl(tmp, idx(var(st), 3) ^ idx(var(st), 0)),
                       assign(slice(var(st), 0, 6),
                              slice(var(st), 1, 6)),
                       assign(idx(var(st), 6), var(tmp))})),
             just(emit(var(x) ^ var(tmp)))})));
}

TEST(Vectorize, ScramblerEquivalence)
{
    auto input = randomBytes(512, 17);

    auto plain = compilePipeline(
        scramblerLike(), CompilerOptions::forLevel(OptLevel::None));
    auto expect = plain->runBytes(input);

    CompilerOptions vopt = CompilerOptions::forLevel(OptLevel::Vectorize);
    CompileReport rep;
    auto vect = compilePipeline(scramblerLike(), vopt, &rep);
    EXPECT_GT(vect->inWidth(), 1u) << "vectorizer chose scalar widths";
    auto got = vect->runBytes(input);
    EXPECT_EQ(got, expect);
    EXPECT_GT(rep.vect.generated, 0);
}

TEST(Vectorize, EquivalenceAcrossReconfiguration)
{
    // The Section 3 motivating example: seq { x <- (t >>> c1); c2 }.
    // The vectorized t must not steal data destined for c2.
    auto mkProgram = []() -> CompPtr {
        VarRef x = freshVar("x", Type::bit());
        CompPtr t = repeatc(seqc({bindc(x, take(Type::bit())),
                                  just(emit(var(x) ^ cBit(1)))}));
        // c1: take 4 values one by one, return their XOR.
        VarRef acc = freshVar("acc", Type::bit());
        std::vector<SeqComp::Item> items;
        items.push_back(just(doS({assign(var(acc), cBit(0))})));
        for (int i = 0; i < 4; ++i) {
            VarRef v = freshVar("v", Type::bit());
            items.push_back(bindc(v, take(Type::bit())));
            items.push_back(
                just(doS({assign(var(acc), var(acc) ^ var(v))})));
        }
        items.push_back(just(emit(var(acc))));
        CompPtr c1 = seqc(std::move(items));
        // c2: pass the remaining stream through unchanged.
        VarRef y = freshVar("y", Type::bit());
        CompPtr c2 = repeatc(seqc({bindc(y, take(Type::bit())),
                                   just(emit(var(y)))}));
        return seqc({just(pipe(std::move(t), std::move(c1))),
                     just(std::move(c2))});
    };

    auto input = randomBytes(4 + 64, 23);
    auto plain = compilePipeline(
        mkProgram(), CompilerOptions::forLevel(OptLevel::None));
    RunStats stPlain;
    auto expect = plain->runBytes(input, &stPlain);

    CompilerOptions vopt = CompilerOptions::forLevel(OptLevel::Vectorize);
    auto vect = compilePipeline(mkProgram(), vopt);
    RunStats stVect;
    auto got = vect->runBytes(input, &stVect);
    EXPECT_EQ(got, expect);
}

TEST(Vectorize, DownVectorizedComputerConsumesExactCount)
{
    // A computer taking 8 bits; down-vectorization must keep exact
    // consumption so a following computer sees the rest.
    auto mkProgram = []() -> CompPtr {
        VarRef a = freshVar("a", Type::array(Type::bit(), 8));
        CompPtr c1 = seqc({bindc(a, takes(Type::bit(), 8)),
                           just(emit(idx(var(a), 0)))});
        VarRef y = freshVar("y", Type::bit());
        CompPtr c2 = repeatc(seqc({bindc(y, take(Type::bit())),
                                   just(emit(var(y)))}));
        return seqc({just(std::move(c1)), just(std::move(c2))});
    };
    auto input = randomBytes(8 + 16, 31);
    auto expect = compilePipeline(
        mkProgram(), CompilerOptions::forLevel(OptLevel::None))
        ->runBytes(input);
    auto got = compilePipeline(
        mkProgram(), CompilerOptions::forLevel(OptLevel::Vectorize))
        ->runBytes(input);
    EXPECT_EQ(got, expect);
}

TEST(Vectorize, InterleaverLikeBlockEquivalence)
{
    // Takes 16, emits 16 permuted: vectorizer should pick width 16.
    auto mkProgram = []() -> CompPtr {
        VarRef a = freshVar("a", Type::array(Type::bit(), 16));
        std::vector<SeqComp::Item> items;
        items.push_back(bindc(a, takes(Type::bit(), 16)));
        std::vector<ExprPtr> perm;
        for (int i = 0; i < 16; ++i)
            perm.push_back(idx(var(a), (i * 5) % 16));
        items.push_back(just(emits(arrayLit(std::move(perm)))));
        return repeatc(seqc(std::move(items)));
    };
    // 864 = 3 * 288 is a multiple of every feasible width choice.
    auto input = randomBytes(864, 41);
    auto expect = compilePipeline(
        mkProgram(), CompilerOptions::forLevel(OptLevel::None))
        ->runBytes(input);
    CompileReport rep;
    auto vect = compilePipeline(
        mkProgram(), CompilerOptions::forLevel(OptLevel::Vectorize), &rep);
    EXPECT_EQ(vect->runBytes(input), expect);
    EXPECT_GE(rep.vect.chosenIn, 16);
}

TEST(Vectorize, PropertyRandomPipelines)
{
    // Random two-stage bit pipelines with a reconfiguring tail; the
    // vectorized program must agree with the unvectorized one.
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed * 7919);
        int takeN = 1 + static_cast<int>(rng.below(4));
        int emitN = 1 + static_cast<int>(rng.below(4));
        auto mkProgram = [&]() -> CompPtr {
            // t: takes takeN bits, emits emitN derived bits, repeated.
            VarRef a = freshVar("a", Type::array(Type::bit(),
                                                 std::max(takeN, 1)));
            std::vector<SeqComp::Item> items;
            items.push_back(bindc(a, takes(Type::bit(), takeN)));
            std::vector<ExprPtr> outs;
            for (int i = 0; i < emitN; ++i)
                outs.push_back(idx(var(a), i % takeN) ^
                               cBit(static_cast<int>(i & 1)));
            items.push_back(just(emits(arrayLit(std::move(outs)))));
            CompPtr t = repeatc(seqc(std::move(items)));
            // c1: consume emitN*2 elements, then return.
            VarRef v = freshVar("v", Type::array(Type::bit(), emitN * 2));
            CompPtr c1 = seqc({bindc(v, takes(Type::bit(), emitN * 2)),
                               just(emit(idx(var(v), 0)))});
            VarRef y = freshVar("y", Type::bit());
            CompPtr c2 = repeatc(seqc({bindc(y, take(Type::bit())),
                                       just(emit(var(y)))}));
            return seqc({just(pipe(std::move(t), std::move(c1))),
                         just(std::move(c2))});
        };
        auto input = randomBytes(
            static_cast<size_t>(takeN) * 2 * emitN * 2 + 6 * 288, seed);
        auto expect = compilePipeline(
            mkProgram(), CompilerOptions::forLevel(OptLevel::None))
            ->runBytes(input);
        auto got = compilePipeline(
            mkProgram(), CompilerOptions::forLevel(OptLevel::Vectorize))
            ->runBytes(input);
        // The vectorized stream may drop a trailing partial array at EOF
        // (an input chunk smaller than the chosen width); everything
        // produced must be a prefix of the scalar output and the loss is
        // bounded by the maximum width.
        ASSERT_LE(got.size(), expect.size())
            << "seed=" << seed << " takeN=" << takeN << " emitN=" << emitN;
        EXPECT_GE(got.size() + 2 * 288, expect.size())
            << "seed=" << seed << " takeN=" << takeN << " emitN=" << emitN;
        EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()))
            << "seed=" << seed << " takeN=" << takeN << " emitN=" << emitN;
    }
}

TEST(Vectorize, ForcedWidthsViaHint)
{
    // Dynamic body (while over state) with a forced [4, 4] hint.
    auto mkProgram = [](bool hinted) -> CompPtr {
        VarRef n = freshVar("n", Type::int32());
        VarRef x = freshVar("x", Type::bit());
        CompPtr body = seqc(
            {just(doS({assign(var(n), cInt(0))})),
             just(whilec(var(n) < 2,
                         seqc({bindc(x, take(Type::bit())),
                               just(emit(var(x))),
                               just(doS({assign(var(n),
                                                var(n) + 1)}))})))});
        std::optional<VectHint> hint;
        if (hinted)
            hint = VectHint{4, 4};
        return letvar(n, cInt(0), repeatc(std::move(body), hint));
    };
    auto input = randomBytes(64, 5);
    auto expect = compilePipeline(
        mkProgram(false), CompilerOptions::forLevel(OptLevel::None))
        ->runBytes(input);
    CompileReport rep;
    auto vect = compilePipeline(
        mkProgram(true), CompilerOptions::forLevel(OptLevel::Vectorize),
        &rep);
    EXPECT_EQ(vect->runBytes(input), expect);
    EXPECT_EQ(rep.vect.chosenIn, 4);
}

TEST(Vectorize, UtilityChoicesDiffer)
{
    // Sum-of-widths vs log-utility on a two-block pipeline whose blocks
    // have asymmetric cardinalities (the §3.3 discussion).
    auto mk = []() -> CompPtr {
        VarRef x = freshVar("x", Type::bit());
        CompPtr t1 = repeatc(seqc({bindc(x, take(Type::bit())),
                                   just(emit(var(x)))}));
        VarRef y = freshVar("y", Type::bit());
        CompPtr t2 = repeatc(seqc({bindc(y, take(Type::bit())),
                                   just(emit(var(y)))}));
        return pipe(std::move(t1), std::move(t2));
    };
    for (VectUtility u :
         {VectUtility::Log, VectUtility::Sum, VectUtility::MaxMin}) {
        CompilerOptions opt = CompilerOptions::forLevel(OptLevel::Vectorize);
        opt.vect.utility = u;
        CompileReport rep;
        auto p = compilePipeline(mk(), opt, &rep);
        auto input = randomBytes(256, 3);
        auto expect = compilePipeline(
            mk(), CompilerOptions::forLevel(OptLevel::None))
            ->runBytes(input);
        EXPECT_EQ(p->runBytes(input), expect);
        EXPECT_GE(rep.vect.chosenIn, 1);
    }
}

TEST(Vectorize, PruningReducesCandidates)
{
    auto mk = []() -> CompPtr {
        CompPtr c = nullptr;
        for (int i = 0; i < 3; ++i) {
            VarRef x = freshVar("x", Type::bit());
            CompPtr t = repeatc(seqc({bindc(x, take(Type::bit())),
                                      just(emit(var(x)))}));
            c = c ? pipe(std::move(c), std::move(t)) : t;
        }
        return c;
    };
    CompilerOptions pruned = CompilerOptions::forLevel(OptLevel::Vectorize);
    pruned.vect.maxScale = 16;
    CompileReport rp;
    compilePipeline(mk(), pruned, &rp);

    CompilerOptions full = pruned;
    full.vect.prune = false;
    CompileReport rf;
    compilePipeline(mk(), full, &rf);

    EXPECT_GT(rf.vect.generated, rp.vect.generated);
}

} // namespace
} // namespace ziria
