/**
 * @file
 * Unit tests for the stream-level type checker (Section 2 typing rules)
 * and the builder's expression typing.
 */
#include <gtest/gtest.h>

#include "support/panic.h"
#include "zast/builder.h"
#include "zast/printer.h"
#include "zcheck/check.h"
#include "zopt/passes.h"

namespace ziria {
namespace {

using namespace zb;

TEST(Check, TakeIsComputerWithMatchingCtrl)
{
    CompPtr c = take(Type::int32());
    CompType t = checkComp(c);
    EXPECT_TRUE(t.isComputer);
    EXPECT_TRUE(typeEq(t.ctrl, Type::int32()));
    EXPECT_TRUE(typeEq(t.in, Type::int32()));
    EXPECT_EQ(t.out, nullptr);
}

TEST(Check, EmitIsComputerWithUnitCtrl)
{
    CompPtr c = emit(cInt(1));
    CompType t = checkComp(c);
    EXPECT_TRUE(t.isComputer);
    EXPECT_TRUE(t.ctrl->isUnit());
    EXPECT_TRUE(typeEq(t.out, Type::int32()));
}

TEST(Check, RepeatOfUnitComputerIsTransformer)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr c = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x)))}));
    CompType t = checkComp(c);
    EXPECT_FALSE(t.isComputer);
    EXPECT_TRUE(typeEq(t.in, Type::int32()));
    EXPECT_TRUE(typeEq(t.out, Type::int32()));
}

TEST(Check, RepeatOfNonUnitComputerRejected)
{
    CompPtr c = repeatc(ret(cInt(5)));
    EXPECT_THROW(checkComp(c), FatalError);
}

TEST(Check, SeqRequiresComputerPrefix)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr t = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x)))}));
    CompPtr c = seqc({just(std::move(t)), just(emit(cInt(1)))});
    EXPECT_THROW(checkComp(c), FatalError);
}

TEST(Check, SeqBinderTypeMustMatchCtrl)
{
    VarRef h = freshVar("h", Type::int16());  // wrong: take returns int32
    CompPtr c = seqc({bindc(h, take(Type::int32())),
                      just(emit(var(h)))});
    EXPECT_THROW(checkComp(c), FatalError);
}

TEST(Check, SeqUnifiesStreamTypesAcrossItems)
{
    // First item emits int32, second emits int16: must be rejected.
    CompPtr c = seqc({just(emit(cInt(1))), just(emit(cI16(2)))});
    EXPECT_THROW(checkComp(c), FatalError);
}

TEST(Check, PipeTypeMismatchRejected)
{
    VarRef x = freshVar("x", Type::int32());
    VarRef y = freshVar("y", Type::int16());
    CompPtr a = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x)))}));
    CompPtr b = repeatc(seqc({bindc(y, take(Type::int16())),
                              just(emit(var(y)))}));
    EXPECT_THROW(checkComp(pipe(std::move(a), std::move(b))), FatalError);
}

TEST(Check, PipeOfTwoComputersRejected)
{
    CompPtr c = pipe(take(Type::int32()), emit(cInt(1)));
    EXPECT_THROW(checkComp(c), FatalError);
}

TEST(Check, PipeComputerTransformerGivesComputer)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr t = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x)))}));
    VarRef a = freshVar("a", Type::int32());
    CompPtr c1 = seqc({bindc(a, take(Type::int32())),
                       just(ret(var(a)))});
    CompType t1 = checkComp(pipe(std::move(t), std::move(c1)));
    EXPECT_TRUE(t1.isComputer);
    EXPECT_TRUE(typeEq(t1.ctrl, Type::int32()));
}

TEST(Check, RaceRuleRejectsSharedWrites)
{
    // Both sides of >>> write the same free variable.
    VarRef s = freshVar("s", Type::int32());
    VarRef x = freshVar("x", Type::int32());
    VarRef y = freshVar("y", Type::int32());
    CompPtr l = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(doS({assign(var(s), var(x))})),
                              just(emit(var(x)))}));
    CompPtr r = repeatc(seqc({bindc(y, take(Type::int32())),
                              just(doS({assign(var(s), var(y))})),
                              just(emit(var(y)))}));
    CompPtr c = letvar(s, cInt(0), pipe(std::move(l), std::move(r)));
    EXPECT_THROW(checkComp(c), FatalError);
}

TEST(Check, RaceRuleAllowsSharedReads)
{
    VarRef s = freshVar("s", Type::int32());
    VarRef x = freshVar("x", Type::int32());
    VarRef y = freshVar("y", Type::int32());
    CompPtr l = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x) + var(s)))}));
    CompPtr r = repeatc(seqc({bindc(y, take(Type::int32())),
                              just(emit(var(y) * var(s)))}));
    CompPtr c = letvar(s, cInt(3), pipe(std::move(l), std::move(r)));
    EXPECT_NO_THROW(checkComp(c));
}

TEST(Check, IfBranchesMustAgree)
{
    CompPtr c = ifc(cBool(true), emit(cInt(1)), emit(cI16(1)));
    EXPECT_THROW(checkComp(c), FatalError);
}

TEST(Check, AliasedNodesPanic)
{
    CompPtr shared = emit(cInt(1));
    CompPtr c = seqc({just(shared), just(shared)});
    EXPECT_THROW(checkComp(c), PanicError);
}

TEST(Check, MapTypesFromFunction)
{
    VarRef x = freshVar("x", Type::int16());
    FunRef f = fun("widen", {x}, {}, cast(Type::int32(), var(x)));
    CompType t = checkComp(mapc(f));
    EXPECT_FALSE(t.isComputer);
    EXPECT_TRUE(typeEq(t.in, Type::int16()));
    EXPECT_TRUE(typeEq(t.out, Type::int32()));
}

TEST(Builder, ExpressionTypeErrors)
{
    EXPECT_THROW(cInt(1) + cI16(2), FatalError);       // mixed widths
    EXPECT_THROW(cBool(true) + cBool(false), FatalError);
    EXPECT_THROW(cDouble(1.0) % cDouble(2.0), FatalError);
    EXPECT_THROW(idx(cInt(5), 0), FatalError);         // index non-array
    EXPECT_THROW(cast(Type::complex16(), cInt(1)), FatalError);
    EXPECT_THROW(assign(cInt(1) + cInt(2), cInt(3)), FatalError);
}

TEST(Builder, SliceBoundsChecked)
{
    VarRef a = freshVar("a", Type::array(Type::bit(), 7));
    EXPECT_NO_THROW(slice(var(a), 0, 7));
    EXPECT_THROW(slice(var(a), 0, 8), FatalError);
}

TEST(Printer, RendersWiFiStyleComposition)
{
    VarRef x = freshVar("x", Type::int32());
    CompPtr c = repeatc(seqc({bindc(x, take(Type::int32())),
                              just(emit(var(x) + 1))}));
    std::string s = showComp(c);
    EXPECT_NE(s.find("repeat"), std::string::npos);
    EXPECT_NE(s.find("take"), std::string::npos);
    EXPECT_NE(s.find("emit"), std::string::npos);
}

TEST(Elaborate, InlinesCompFunctionCalls)
{
    // let comp double(k : int) = repeat { x <- take; emit (x*k) }
    VarRef k = freshVar("k", Type::int32(), false);
    VarRef x = freshVar("x", Type::int32());
    auto fn = std::make_shared<CompFunDef>();
    fn->name = "scale";
    fn->params = {k};
    fn->body = repeatc(seqc({bindc(x, take(Type::int32())),
                             just(emit(var(x) * var(k)))}));
    CompPtr call1 = callcomp(fn, {cInt(2) + cInt(1)});
    CompPtr program = elaborateComp(call1);
    CompType t = checkComp(program);
    EXPECT_FALSE(t.isComputer);
}

} // namespace
} // namespace ziria
