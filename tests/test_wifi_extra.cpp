/**
 * @file
 * WiFi edge conditions: impaired channels (multipath, CFO, weak gain),
 * corrupted SIGNAL fields, puncturing/depuncturing round trips with
 * erasures, pilot polarity progression, and preamble structure.
 */
#include <gtest/gtest.h>

#include "channel/channel.h"
#include "dsp/fft.h"
#include "dsp/viterbi.h"
#include "sora/sora.h"
#include "support/rng.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace wifi;

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = static_cast<uint8_t>(rng.next());
    return out;
}

std::vector<uint8_t>
samplesToBytes(const std::vector<Complex16>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

struct RxOutcome
{
    bool halted = false;
    bool crcOk = false;
    std::vector<uint8_t> bytes;
};

RxOutcome
receive(const std::vector<Complex16>& samples)
{
    auto rx = compilePipeline(wifiReceiverComp(),
                              CompilerOptions::forLevel(OptLevel::None));
    RunStats st;
    auto bits = rx->runBytes(samplesToBytes(samples), &st);
    RxOutcome out;
    out.halted = st.halted;
    if (st.halted && st.ctrl.size() == 4) {
        int32_t ok;
        std::memcpy(&ok, st.ctrl.data(), 4);
        out.crcOk = ok == 1;
    }
    out.bytes = bitsToBytes(bits);
    return out;
}

TEST(WifiChannel, SurvivesTwoTapMultipath)
{
    auto payload = randomBytes(48, 1);
    auto tx = sora::txFrame(payload, Rate::R6);
    channel::ChannelConfig cfg;
    cfg.snrDb = 30.0;
    cfg.delaySamples = 200;
    cfg.multipathTaps = 2;
    cfg.tapDecay = 0.35;
    cfg.seed = 11;
    auto out = receive(channel::applyChannel(tx, cfg));
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(out.crcOk);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           out.bytes.begin()));
}

TEST(WifiChannel, SurvivesSmallCfoViaPilotTracking)
{
    auto payload = randomBytes(32, 2);
    auto tx = sora::txFrame(payload, Rate::R6);
    channel::ChannelConfig cfg;
    cfg.snrDb = 32.0;
    cfg.delaySamples = 150;
    cfg.cfoRadPerSample = 0.0008;  // ~2.5 kHz at 20 Msps
    cfg.seed = 12;
    auto out = receive(channel::applyChannel(tx, cfg));
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(out.crcOk);
}

TEST(WifiChannel, SurvivesWeakGain)
{
    auto payload = randomBytes(32, 3);
    auto tx = sora::txFrame(payload, Rate::R12);
    channel::ChannelConfig cfg;
    cfg.snrDb = 30.0;
    cfg.delaySamples = 180;
    cfg.gain = 0.25;
    cfg.seed = 13;
    auto out = receive(channel::applyChannel(tx, cfg));
    ASSERT_TRUE(out.halted);
    EXPECT_TRUE(out.crcOk);
}

TEST(WifiSignal, CorruptedHeaderDoesNotCrash)
{
    auto payload = randomBytes(32, 4);
    auto tx = sora::txFrame(payload, Rate::R6);
    // Blank the SIGNAL symbol (between the preamble and the data).
    for (int i = 320; i < 400; ++i)
        tx[static_cast<size_t>(i)] = Complex16{0, 0};
    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.delaySamples = 120;
    cfg.seed = 14;
    RxOutcome out;
    EXPECT_NO_THROW(out = receive(channel::applyChannel(tx, cfg)));
    EXPECT_FALSE(out.crcOk);
}

TEST(WifiPreamble, StsIsPeriodic16)
{
    const auto& sts = stsSamples();
    ASSERT_EQ(sts.size(), 160u);
    for (size_t i = 16; i < sts.size(); ++i) {
        EXPECT_NEAR(sts[i].re, sts[i - 16].re, 1) << i;
        EXPECT_NEAR(sts[i].im, sts[i - 16].im, 1) << i;
    }
}

TEST(WifiPreamble, LtsGuardIsCyclicPrefix)
{
    const auto& lts = ltsSamples();
    const auto& sym = ltsSymbol();
    ASSERT_EQ(lts.size(), 160u);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(lts[static_cast<size_t>(i)].re, sym[32 + i].re);
        EXPECT_EQ(lts[static_cast<size_t>(i)].im, sym[32 + i].im);
    }
    // Two identical symbols follow.
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(lts[static_cast<size_t>(32 + i)].re,
                  lts[static_cast<size_t>(96 + i)].re);
    }
}

TEST(WifiPreamble, LtsSpectrumMatchesSequence)
{
    dsp::Fft fft(fftSize);
    Complex16 bins[fftSize];
    fft.forward(ltsSymbol().data(), bins);
    const auto& L = ltsFreq();
    // Active bins carry energy with the right sign pattern on the real
    // axis; inactive bins are near zero.
    double active = 0, inactive = 0;
    for (int k = 0; k < fftSize; ++k) {
        double mag = std::hypot(static_cast<double>(bins[k].re),
                                static_cast<double>(bins[k].im));
        if (L[static_cast<size_t>(k)])
            active += mag;
        else
            inactive += mag;
    }
    EXPECT_GT(active / 52.0, 50 * (inactive + 1) / 12.0);
}

TEST(WifiPilots, PolaritySequenceMatchesStandardPrefix)
{
    // First 16 values of p_n per 802.11a 17.3.5.9:
    const int expect[16] = {1, 1, 1, 1, -1, -1, -1, 1,
                            -1, -1, -1, -1, 1, 1, -1, 1};
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(pilotPolarity(i) ? 1 : -1, expect[i]) << i;
    // ...and it cycles with period 127.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(pilotPolarity(i), pilotPolarity(i + 127));
}

class PunctureRoundTrip
    : public ::testing::TestWithParam<dsp::CodingRate>
{
};

TEST_P(PunctureRoundTrip, DepunctureRestoresLattice)
{
    dsp::CodingRate rate = GetParam();
    // Positions kept by the puncturer, restored as values; stolen
    // positions come back as erasures (2).
    long period = rate == dsp::CodingRate::Half
        ? 2
        : (rate == dsp::CodingRate::TwoThirds ? 4 : 6);
    std::vector<uint8_t> sent;
    for (long p = 0; p < period * 8; ++p) {
        if (dsp::punctureKeeps(rate, p))
            sent.push_back(static_cast<uint8_t>(p % 2));
    }
    dsp::Depuncturer dep(rate);
    std::vector<uint8_t> lattice;
    for (uint8_t b : sent)
        dep.input(b, lattice);
    ASSERT_GE(lattice.size(), static_cast<size_t>(period * 8) - 2);
    for (size_t p = 0; p < lattice.size(); ++p) {
        if (dsp::punctureKeeps(rate, static_cast<long>(p)))
            EXPECT_EQ(lattice[p], p % 2) << p;
        else
            EXPECT_EQ(lattice[p], 2) << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, PunctureRoundTrip,
                         ::testing::Values(dsp::CodingRate::Half,
                                           dsp::CodingRate::TwoThirds,
                                           dsp::CodingRate::ThreeQuarters));

TEST(WifiViterbi, PuncturedRoundTripsUnderMildNoise)
{
    Rng rng(31);
    for (dsp::CodingRate rate : {dsp::CodingRate::TwoThirds,
                                 dsp::CodingRate::ThreeQuarters}) {
        std::vector<uint8_t> data(600);
        for (auto& b : data)
            b = rng.bit();
        dsp::ConvEncoder enc(rate);
        auto coded = enc.encode(data);
        // One flipped bit in every ~150: punctured codes are weaker but
        // must still correct isolated errors.
        for (size_t i = 75; i < coded.size(); i += 151)
            coded[i] ^= 1;
        dsp::Depuncturer dep(rate);
        std::vector<uint8_t> lattice;
        for (uint8_t b : coded)
            dep.input(b, lattice);
        dsp::ViterbiDecoder dec;
        std::vector<uint8_t> out;
        for (size_t i = 0; i + 1 < lattice.size(); i += 2)
            dec.inputPair(lattice[i], lattice[i + 1], out);
        dec.flush(out);
        ASSERT_EQ(out.size(), data.size());
        EXPECT_EQ(out, data) << "rate " << static_cast<int>(rate);
    }
}

TEST(WifiFrame, SampleCountMatchesSymbolArithmetic)
{
    for (Rate r : allRates()) {
        int payload = 97;
        auto frame = sora::txFrame(randomBytes(
                                       static_cast<size_t>(payload), 7),
                                   r);
        int psdu = psduLen(payload);
        size_t expect = 320 +  // preamble
            static_cast<size_t>(symLen) *
                (1 + static_cast<size_t>(dataSymbols(r, psdu)));
        EXPECT_EQ(frame.size(), expect) << rateInfo(r).mbps;
    }
}

} // namespace
} // namespace ziria
