/**
 * @file
 * Parser tests: surface-syntax programs (in the notation of the paper's
 * listings) parse into ASTs that type-check, compile and run — and agree
 * with the same programs built through the embedded API.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "support/panic.h"
#include "support/rng.h"
#include "wifi/blocks_tx.h"
#include "wifi/native_blocks.h"
#include "zir/compiler.h"
#include "zparse/parser.h"

namespace ziria {
namespace {

std::vector<uint8_t>
runSrc(const std::string& src, const std::vector<uint8_t>& input,
       OptLevel level = OptLevel::None)
{
    CompPtr c = parseComp(src);
    auto p = compilePipeline(c, CompilerOptions::forLevel(level));
    return p->runBytes(input);
}

std::vector<uint8_t>
randomBits(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out)
        b = rng.bit();
    return out;
}

TEST(Parser, EmitOnly)
{
    auto out = runSrc("emit 42", {});
    ASSERT_EQ(out.size(), 4u);
    int32_t v;
    std::memcpy(&v, out.data(), 4);
    EXPECT_EQ(v, 42);
}

TEST(Parser, TakeEmitRepeat)
{
    std::string src = R"(
        repeat { seq { (x : int) <- take : int
                     ; emit (x * 2 + 1) } }
    )";
    std::vector<int32_t> in{1, 2, 3};
    std::vector<uint8_t> bytes(12);
    std::memcpy(bytes.data(), in.data(), 12);
    auto out = runSrc(src, bytes);
    std::vector<int32_t> got(3);
    std::memcpy(got.data(), out.data(), 12);
    EXPECT_EQ(got, (std::vector<int32_t>{3, 5, 7}));
}

TEST(Parser, PaperScramblerListing)
{
    // Figure 3's scrambler, as written in the paper (with `fun comp`
    // spelled `let comp` and our take annotation).
    std::string src = R"(
        let comp scrambler() =
            var scrmbl_st : arr[7] bit := {'1,'1,'1,'1,'1,'1,'1} in
            repeat <= [8, 8] {
                seq { (x : bit) <- take : bit
                    ; (tmp : bit) <- return (scrmbl_st[3] ^ scrmbl_st[0])
                    ; do { scrmbl_st[0, 6] := scrmbl_st[1, 6];
                           scrmbl_st[6] := tmp; }
                    ; emit (x ^ tmp)
                    }
            }
        scrambler()
    )";
    auto bits = randomBits(512, 3);
    auto got = runSrc(src, bits);
    // Against the embedded-API block.
    auto ref = compilePipeline(wifi::scramblerBlock(),
                               CompilerOptions::forLevel(OptLevel::None))
                   ->runBytes(bits);
    EXPECT_EQ(got, ref);
}

TEST(Parser, ScramblerVectorizesAndLuts)
{
    std::string src = R"(
        var st : arr[7] bit := {'1,'1,'1,'1,'1,'1,'1} in
        repeat {
            seq { (x : bit) <- take : bit
                ; (tmp : bit) <- return (st[3] ^ st[0])
                ; do { st[0, 6] := st[1, 6]; st[6] := tmp; }
                ; emit (x ^ tmp)
                }
        }
    )";
    CompPtr c = parseComp(src);
    CompileReport rep;
    auto p = compilePipeline(c, CompilerOptions::forLevel(OptLevel::All),
                             &rep);
    EXPECT_GE(rep.build.lutsBuilt, 1);
    auto bits = randomBits(1024, 5);
    auto ref = compilePipeline(wifi::scramblerBlock(),
                               CompilerOptions::forLevel(OptLevel::None))
                   ->runBytes(bits);
    EXPECT_EQ(p->runBytes(bits), ref);
}

TEST(Parser, SeqReconfigurationAndStructs)
{
    std::string src = R"(
        struct Hdr { scale : int; }
        let comp payload(h : Hdr) =
            repeat { seq { (x : int) <- take : int
                         ; emit (x * h.scale) } }
        seq { (h : Hdr) <- seq { (s : int) <- take : int
                               ; return Hdr_mk(s) }
            ; payload(h) }
    )";
    // struct literals aren't surface syntax; build via a helper fun.
    std::string withFun = R"(
        struct Hdr { scale : int; }
        fun Hdr_mk(s : int) : Hdr {
            var h : Hdr;
            h.scale := s;
            return h;
        }
        let comp payload(h : Hdr) =
            repeat { seq { (x : int) <- take : int
                         ; emit (x * h.scale) } }
        seq { (h : Hdr) <- seq { (s : int) <- take : int
                               ; return Hdr_mk(s) }
            ; payload(h) }
    )";
    (void)src;
    std::vector<int32_t> in{7, 1, 2, 3};
    std::vector<uint8_t> bytes(16);
    std::memcpy(bytes.data(), in.data(), 16);
    auto out = runSrc(withFun, bytes);
    std::vector<int32_t> got(out.size() / 4);
    std::memcpy(got.data(), out.data(), out.size());
    EXPECT_EQ(got, (std::vector<int32_t>{7, 14, 21}));
}

TEST(Parser, FunctionsAndForLoops)
{
    std::string src = R"(
        fun sumsq(a : arr[4] int) : int {
            var acc : int := 0;
            for i in [0, 4] { acc := acc + a[i] * a[i]; }
            return acc;
        }
        repeat { seq { (xs : arr[4] int) <- takes 4 : int
                     ; emit sumsq(xs) } }
    )";
    std::vector<int32_t> in{1, 2, 3, 4, 0, 0, 2, 0};
    std::vector<uint8_t> bytes(32);
    std::memcpy(bytes.data(), in.data(), 32);
    auto out = runSrc(src, bytes);
    std::vector<int32_t> got(2);
    std::memcpy(got.data(), out.data(), 8);
    EXPECT_EQ(got[0], 30);
    EXPECT_EQ(got[1], 4);
}

TEST(Parser, PipesAndThreadedMarker)
{
    std::string src = R"(
        let comp inc() = repeat { seq { (x : int) <- take : int
                                      ; emit (x + 1) } }
        inc() >>> inc() |>>>| inc()
    )";
    std::vector<int32_t> in{10, 20};
    std::vector<uint8_t> bytes(8);
    std::memcpy(bytes.data(), in.data(), 8);
    auto out = runSrc(src, bytes);
    std::vector<int32_t> got(2);
    std::memcpy(got.data(), out.data(), 8);
    EXPECT_EQ(got, (std::vector<int32_t>{13, 23}));
}

TEST(Parser, NativeFunctionsResolve)
{
    std::string src = R"(
        repeat { seq { (x : double) <- take : double
                     ; emit sin(x) } }
    )";
    std::vector<double> in{0.5};
    std::vector<uint8_t> bytes(8);
    std::memcpy(bytes.data(), in.data(), 8);
    auto out = runSrc(src, bytes);
    double v;
    std::memcpy(&v, out.data(), 8);
    EXPECT_NEAR(v, std::sin(0.5), 1e-12);
}

TEST(Parser, NativeBlocksResolveWhenRegistered)
{
    wifi::registerWifiNatives();
    std::string src = R"(
        repeat { seq { (t : arr[64] complex16) <- take : arr[64] complex16
                     ; emit t } }
        >>> FFT() >>> IFFT()
    )";
    CompPtr c = parseComp(src);
    auto p = compilePipeline(c, CompilerOptions::forLevel(OptLevel::None));
    // FFT then IFFT is identity up to fixed-point rounding.
    Rng rng(8);
    std::vector<Complex16> in(64);
    for (auto& v : in) {
        v.re = static_cast<int16_t>(rng.below(4000)) - 2000;
        v.im = static_cast<int16_t>(rng.below(4000)) - 2000;
    }
    std::vector<uint8_t> bytes(256);
    std::memcpy(bytes.data(), in.data(), 256);
    auto out = p->runBytes(bytes);
    ASSERT_EQ(out.size(), 256u);
    std::vector<Complex16> got(64);
    std::memcpy(got.data(), out.data(), 256);
    for (int i = 0; i < 64; ++i) {
        EXPECT_NEAR(got[static_cast<size_t>(i)].re, in[static_cast<size_t>(i)].re, 96);
        EXPECT_NEAR(got[static_cast<size_t>(i)].im, in[static_cast<size_t>(i)].im, 96);
    }
}

TEST(Parser, ErrorsAreReported)
{
    EXPECT_THROW(parseComp("emit"), FatalError);
    EXPECT_THROW(parseComp("seq { emit 1"), FatalError);
    EXPECT_THROW(parseComp("repeat { emit unknown_var }"), FatalError);
    EXPECT_THROW(parseComp("frobnicate()"), FatalError);
    EXPECT_THROW(parseComp("emit (1 + 'x)"), FatalError);
    EXPECT_THROW(parseComp("emit 1 +"), FatalError);
}

TEST(Parser, TypeErrorsSurfaceThroughBuilder)
{
    // bit + int is rejected by the shared typing path.
    EXPECT_THROW(parseComp("emit ('1 + 3)"), FatalError);
}

TEST(ParserHardening, BlockCommentsNestAndStrip)
{
    auto out = runSrc("{- outer {- inner -} outer again -} emit 5", {});
    ASSERT_EQ(out.size(), 4u);
    int32_t v;
    std::memcpy(&v, out.data(), 4);
    EXPECT_EQ(v, 5);
}

TEST(ParserHardening, ArrayLiteralNeedsSpaceBeforeMinus)
{
    // `{-` always opens a comment (Haskell rule); the spaced form works.
    auto out = runSrc("emit ({ -1, 2 }[0])", {});
    int32_t v;
    std::memcpy(&v, out.data(), 4);
    EXPECT_EQ(v, -1);
}

TEST(ParserHardening, UnterminatedCommentIsAnError)
{
    EXPECT_THROW(parseComp("emit 1 {- never closed"), FatalError);
    EXPECT_THROW(parseComp("{- outer {- inner -} emit 1"), FatalError);
}

TEST(ParserHardening, UnterminatedStringIsAnError)
{
    EXPECT_THROW(parseComp("emit \"no closing quote"), FatalError);
    EXPECT_THROW(parseComp("emit \"line\nbreak\""), FatalError);
    EXPECT_THROW(parseComp("emit \"bad \\q escape\""), FatalError);
    // A well-terminated string still lexes; it just has no expression
    // form, so the parser reports it instead of crashing.
    EXPECT_THROW(parseComp("emit \"hello\""), FatalError);
}

TEST(ParserHardening, OverlongLiteralsAreErrorsNotCrashes)
{
    EXPECT_THROW(parseComp("emit 99999999999999999999999999"), FatalError);
    EXPECT_THROW(parseComp("emit 0xFFFFFFFFFFFFFFFFFF"), FatalError);
    EXPECT_THROW(parseComp("emit 0x"), FatalError);
    // Still-representable wide literals keep working.
    auto out = runSrc("emit int64(4294967296)", {});
    EXPECT_EQ(out.size(), 8u);
}

TEST(ParserHardening, DeepNestingHitsTheGuardNotTheStack)
{
    std::string parens(5000, '(');
    parens += "emit 1";
    parens += std::string(5000, ')');
    EXPECT_THROW(parseComp(parens), FatalError);

    std::string seqs;
    for (int i = 0; i < 3000; ++i)
        seqs += "seq { ";
    seqs += "emit 1";
    for (int i = 0; i < 3000; ++i)
        seqs += " }";
    EXPECT_THROW(parseComp(seqs), FatalError);

    std::string unary = "emit " + std::string(8000, '~') + "1";
    EXPECT_THROW(parseComp(unary), FatalError);

    // Reasonable nesting stays under the limit.
    std::string ok(64, '(');
    ok += "emit 1";
    ok += std::string(64, ')');
    EXPECT_NO_THROW(parseComp(ok));
}

TEST(ParserHardening, SizeFieldsAreBoundsChecked)
{
    EXPECT_THROW(
        parseComp("repeat { seq { (x : arr[99999999999] bit) <- "
                  "takes 2 : bit ; emit (x[0]) } }"),
        FatalError);
    EXPECT_THROW(
        parseComp("repeat { seq { (x : bit) <- take : bit"
                  " ; emit x } } >>> takes 99999999999 : bit"),
        FatalError);
    EXPECT_THROW(parseComp("repeat <= [0, 8] { emit '1 }"), FatalError);
}

/** Parse must either succeed or throw FatalError — nothing else. */
void
expectGracefulParse(const std::string& src, const std::string& what)
{
    try {
        parseComp(src);
    } catch (const FatalError&) {
        // expected failure mode for malformed input
    } catch (const std::exception& e) {
        ADD_FAILURE() << what << ": non-fatal exception escaped: "
                      << e.what();
    }
}

std::vector<std::filesystem::path>
fuzzCorpus()
{
    std::vector<std::filesystem::path> files;
    for (const auto& ent : std::filesystem::directory_iterator(
             ZIRIA_TEST_DATA_DIR "/fuzz"))
        if (ent.path().extension() == ".zir")
            files.push_back(ent.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(ParserFuzz, CorpusFilesParseOrFailGracefully)
{
    auto files = fuzzCorpus();
    ASSERT_GE(files.size(), 12u) << "fuzz corpus missing";
    for (const auto& f : files) {
        std::ifstream in(f);
        std::string src((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        std::string name = f.filename().string();
        if (name.rfind("ok_", 0) == 0) {
            EXPECT_NO_THROW(parseComp(src)) << name;
        } else {
            EXPECT_THROW(parseComp(src), FatalError) << name;
        }
    }
}

TEST(ParserFuzz, SeededMutationsNeverCrash)
{
    // Deterministic byte-level mutations of every corpus seed: each
    // mutant must parse or fail with FatalError, never anything else.
    auto files = fuzzCorpus();
    ASSERT_FALSE(files.empty());
    uint64_t fileIdx = 0;
    for (const auto& f : files) {
        std::ifstream in(f);
        std::string seed((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        Rng rng(0xF022ED ^ (++fileIdx * 0x9E3779B97F4A7C15ull));
        for (int round = 0; round < 48; ++round) {
            std::string m = seed;
            int edits = 1 + static_cast<int>(rng.below(4));
            for (int e = 0; e < edits && !m.empty(); ++e) {
                size_t at = rng.below(m.size());
                switch (rng.below(4)) {
                  case 0:  // overwrite with a random printable byte
                    m[at] = static_cast<char>(' ' + rng.below(95));
                    break;
                  case 1:  // delete a short span
                    m.erase(at, 1 + rng.below(8));
                    break;
                  case 2:  // duplicate a short span
                    m.insert(at, m.substr(at, 1 + rng.below(8)));
                    break;
                  case 3:  // truncate
                    m.resize(at);
                    break;
                }
            }
            expectGracefulParse(
                m, f.filename().string() + " round " +
                       std::to_string(round));
        }
    }
}

TEST(Parser, WhileCompAndTimes)
{
    std::string src = R"(
        var n : int := 0 in
        seq { while (n < 3) { seq { emit n ; do { n := n + 1; } } }
            ; times 2 { emit 99 }
            }
    )";
    auto out = runSrc(src, {});
    std::vector<int32_t> got(out.size() / 4);
    std::memcpy(got.data(), out.data(), out.size());
    EXPECT_EQ(got, (std::vector<int32_t>{0, 1, 2, 99, 99}));
}

} // namespace
} // namespace ziria
