/**
 * @file
 * Native code-generation backend tests (ctest labels
 * `tier1;cgen;diff;sanitizer`):
 *
 *  - region finding and fallback ladder: whole fusible programs become
 *    one dlopen'd region, native blocks and threaded `|>>>|` keep the
 *    VM spine, and everything stays bit-identical to the VM;
 *  - the three-backend differential oracle {O0..O3} x {vec} x
 *    {vm,fused,native} on generated programs — the VM is the
 *    semantics, the machine code must match bit-exactly;
 *  - IEEE 802.11a Annex-G conformance executed natively at all eight
 *    rates: golden TX chain (zero fallbacks) and TX -> channel -> RX
 *    round trips;
 *  - the on-disk shared-object cache: miss-then-hit, corrupt
 *    .so/manifest quarantine + recompile, stale-key misses, cache-key
 *    determinism, and the ziria.cgen.* counters;
 *  - loud compile-time refusals for the unsupported combinations
 *    (--backend=native with stage-scoped restart or checkpointing) and
 *    the snapshot refusal on a bound region.
 *
 * Tests that require real machine code gate on
 * zcgen::compilerAvailable(); without a compiler the backend degrades
 * to the bytecode interpreter, which the differential tests still
 * validate.
 */
#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "channel/channel.h"
#include "dsp/constellation.h"
#include "support/diff_runner.h"
#include "support/fault_injector.h"
#include "support/metrics.h"
#include "support/panic.h"
#include "support/rng.h"
#include "wifi/blocks_tx.h"
#include "wifi/rx.h"
#include "wifi/tx.h"
#include "zast/builder.h"
#include "zcgen/cgen.h"
#include "zexec/snapshot.h"
#include "zgen/generator.h"
#include "zir/compiler.h"

namespace ziria {
namespace {

using namespace zb;
using namespace wifi;
using difftest::DiffConfig;
using difftest::runDifferential;
using testsupport::intBytes;
using testsupport::throwAtBlock;
using zgen::GenConfig;
using zgen::GenDomain;
using zgen::GenProgram;

// ------------------------------------------------- cache-dir plumbing

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/ziria-cgen-test-XXXXXX";
    char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr) << "mkdtemp failed";
    return dir ? std::string(dir) : std::string();
}

/**
 * Every test in this binary compiles into one private cache directory
 * (via $ZIRIA_CGEN_CACHE) so runs neither pollute nor depend on the
 * user's ~/.cache/ziria/zcgen.  Cache-behavior tests that need a cold
 * cache make their own directory and pass it explicitly.
 */
class CgenCacheEnv : public ::testing::Environment
{
  public:
    void
    SetUp() override
    {
        std::string dir = makeTempDir();
        ASSERT_FALSE(dir.empty());
        setenv("ZIRIA_CGEN_CACHE", dir.c_str(), 1);
    }
};

[[maybe_unused]] const ::testing::Environment* const kCacheEnv =
    ::testing::AddGlobalTestEnvironment(new CgenCacheEnv);

bool
fileExists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

int
countSuffix(const std::string& dir, const std::string& suffix)
{
    DIR* d = opendir(dir.c_str());
    if (!d)
        return 0;
    int n = 0;
    while (struct dirent* e = readdir(d)) {
        std::string name = e->d_name;
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            ++n;
    }
    closedir(d);
    return n;
}

void
scribbleFile(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

// ------------------------------------------------------------ helpers

CompPtr
incBlock(int32_t delta)
{
    VarRef x = freshVar("x", Type::int32());
    return repeatc(seqc({bindc(x, take(Type::int32())),
                         just(emit(var(x) + delta))}));
}

CompilerOptions
nativeConf(OptLevel lvl = OptLevel::None)
{
    CompilerOptions opt = CompilerOptions::forLevel(lvl);
    opt.backend = Backend::Native;
    return opt;
}

/** A minimal valid translation unit for direct compileUnit tests. */
const char* const kToySource =
    "extern \"C\" int zr_abi(void) { return 1; }\n"
    "extern \"C\" int zr_toy(int x) { return x + 41; }\n";

// ------------------------------------------------- matrix shape/axes

TEST(NativeMatrix, ShapeAndBackendMapping)
{
    auto m = difftest::nativeMatrix();
    ASSERT_EQ(m.size(), 24u);

    // Config 0 is the unoptimized VM baseline.
    EXPECT_EQ(m[0].optTier, 0);
    EXPECT_FALSE(m[0].vectorize);
    EXPECT_FALSE(m[0].fused);
    EXPECT_FALSE(m[0].native);
    EXPECT_EQ(m[0].options().backend, Backend::Vm);

    int vm = 0, fz = 0, ng = 0;
    for (const DiffConfig& c : m) {
        if (c.native) {
            ++ng;
            EXPECT_EQ(c.options().backend, Backend::Native);
            EXPECT_NE(c.name.find("/ng"), std::string::npos) << c.name;
        } else if (c.fused) {
            ++fz;
            EXPECT_EQ(c.options().backend, Backend::Fused);
        } else {
            ++vm;
            EXPECT_EQ(c.options().backend, Backend::Vm);
        }
    }
    EXPECT_EQ(vm, 8);
    EXPECT_EQ(fz, 8);
    EXPECT_EQ(ng, 8);

    // The backend axis counts as one dimension of distance, so a
    // vm-vs-native divergence at identical flags localizes to codegen.
    DiffConfig a = m[0], b = m[16];
    ASSERT_TRUE(b.native);
    ASSERT_EQ(b.optTier, 0);
    EXPECT_EQ(DiffConfig::distance(a, b), 1);
}

// --------------------------------------------------- region lowering

TEST(NativeLowering, WholeProgramBecomesOneNativeRegion)
{
    CompileReport rep;
    auto p = compilePipeline(pipe(incBlock(1), incBlock(10)),
                             nativeConf(), &rep);
    EXPECT_EQ(rep.fuse.nodesFused, 1);
    EXPECT_EQ(rep.fuse.fallbacks, 0);
    EXPECT_EQ(rep.cgen.regions, 1);
    if (zcgen::compilerAvailable()) {
        EXPECT_EQ(rep.cgen.emitted, 1);
        EXPECT_EQ(rep.cgen.fallbacks, 0);
        EXPECT_EQ(rep.cgen.cacheHits + rep.cgen.cacheMisses, 1);
        EXPECT_EQ(rep.cgen.cacheKey.size(), 16u);
        EXPECT_FALSE(rep.cgen.compiler.empty());
    } else {
        EXPECT_EQ(rep.cgen.fallbacks, 1);
    }

    std::vector<int32_t> in(256);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i * 7 - 100);
    auto bytes = intBytes(in);
    auto vm = compilePipeline(pipe(incBlock(1), incBlock(10)),
                              CompilerOptions::forLevel(OptLevel::None));
    EXPECT_EQ(p->runBytes(bytes), vm->runBytes(bytes));
}

TEST(NativeLowering, NativeBlockFallsBackInsideNativeTree)
{
    // cgen >>> native block: the pipe spine stays on the VM, the left
    // child becomes a compiled region, the native leaf runs as-is.
    CompileReport rep;
    auto p = compilePipeline(
        pipe(incBlock(1), throwAtBlock(uint64_t(1) << 62)),
        nativeConf(), &rep);
    EXPECT_EQ(rep.fuse.nodesFused, 1);
    EXPECT_GE(rep.fuse.fallbacks, 2);  // pipe spine + native leaf
    EXPECT_EQ(rep.cgen.regions, 1);

    std::vector<int32_t> in(64);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);
    auto vm = compilePipeline(
        pipe(incBlock(1), throwAtBlock(uint64_t(1) << 62)),
        CompilerOptions::forLevel(OptLevel::None));
    EXPECT_EQ(p->runBytes(bytes), vm->runBytes(bytes));
}

TEST(NativeLowering, ThreadedPartitionsBecomeSeparateRegions)
{
    CompileReport rep;
    auto p = compileThreadedPipeline(ppipe(incBlock(1), incBlock(2)),
                                     nativeConf(), &rep);
    EXPECT_EQ(rep.cgen.regions, 2);

    std::vector<int32_t> in(512);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(3 * i);
    auto bytes = intBytes(in);
    auto vm = compileThreadedPipeline(
        ppipe(incBlock(1), incBlock(2)),
        CompilerOptions::forLevel(OptLevel::None));

    MemSource srcA(bytes, 4);
    VecSink sinkA(4);
    p->run(srcA, sinkA);
    MemSource srcB(bytes, 4);
    VecSink sinkB(4);
    vm->run(srcB, sinkB);
    EXPECT_EQ(sinkA.data(), sinkB.data());
}

TEST(NativeLowering, MetricsCountersAdvance)
{
    auto& reg = metrics::Registry::global();
    uint64_t emittedBefore = reg.counter("ziria.cgen.emitted").value();
    uint64_t servedBefore = reg.counter("ziria.cgen.cache_hits").value() +
                            reg.counter("ziria.cgen.cache_misses").value();
    uint64_t fallbackBefore = reg.counter("ziria.cgen.fallbacks").value();

    compilePipeline(incBlock(5), nativeConf());

    if (zcgen::compilerAvailable()) {
        EXPECT_GE(reg.counter("ziria.cgen.emitted").value(),
                  emittedBefore + 1);
        EXPECT_GE(reg.counter("ziria.cgen.cache_hits").value() +
                      reg.counter("ziria.cgen.cache_misses").value(),
                  servedBefore + 1);
    } else {
        EXPECT_GE(reg.counter("ziria.cgen.fallbacks").value(),
                  fallbackBefore + 1);
    }
}

// ------------------------------------------- differential equivalence

void
checkNativeSeed(const GenConfig& cfg, uint64_t seed, size_t elems)
{
    GenProgram prog = zgen::genProgram(cfg, seed);
    auto input = zgen::genInput(prog.inDomain, elems, seed ^ 0xD1FF);
    auto make = [&] { return zgen::genProgram(cfg, seed).comp; };
    auto outcome = runDifferential(make, input, difftest::nativeMatrix(),
                                   prog.describe, /*slackBytes=*/4096);
    EXPECT_TRUE(outcome.agree) << "seed=" << seed << "\n" << outcome.report;
    EXPECT_EQ(outcome.configsRun, 24);
    EXPECT_GT(outcome.baselineBytes, 0u)
        << "seed=" << seed << " " << prog.describe;
}

class NativeBitPrograms : public ::testing::TestWithParam<int>
{
};

TEST_P(NativeBitPrograms, VmFusedAndNativeAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Bits;
    cfg.maxStages = 3;
    checkNativeSeed(cfg, static_cast<uint64_t>(GetParam()), 6 * 288 * 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NativeBitPrograms, ::testing::Range(1, 6));

class NativeInt32Programs : public ::testing::TestWithParam<int>
{
};

TEST_P(NativeInt32Programs, VmFusedAndNativeAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Int32;
    cfg.maxStages = 3;
    checkNativeSeed(cfg, static_cast<uint64_t>(GetParam()), 2048);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NativeInt32Programs,
                         ::testing::Range(1, 6));

class NativeMixedPrograms : public ::testing::TestWithParam<int>
{
};

TEST_P(NativeMixedPrograms, VmFusedAndNativeAgree)
{
    GenConfig cfg;
    cfg.domain = GenDomain::Mixed;
    cfg.maxStages = 4;
    checkNativeSeed(cfg, static_cast<uint64_t>(GetParam()), 4096);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NativeMixedPrograms,
                         ::testing::Range(1, 5));

// ------------------------------------------------- Annex-G conformance
//
// The same golden vectors test_conformance.cpp locks down for the VM
// and the fused interpreter, executed by dlopen'd machine code.  The
// helper duplicates are intentional: this suite must keep standing on
// its own if the conformance file is reorganized.

std::vector<std::string>
goldenLines(const std::string& name)
{
    std::string path = std::string(ZIRIA_TEST_DATA_DIR "/annexg/") + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path
                           << " (regenerate: python3 scripts/gen_annexg.py)";
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '#')
            lines.push_back(line);
    }
    return lines;
}

std::vector<Complex16>
parsePoints(const std::vector<std::string>& lines)
{
    std::vector<Complex16> out;
    for (const auto& ln : lines) {
        std::istringstream is(ln);
        int re, im;
        is >> re >> im;
        out.push_back(Complex16{static_cast<int16_t>(re),
                                static_cast<int16_t>(im)});
    }
    return out;
}

std::vector<Complex16>
bytesToSamples(const std::vector<uint8_t>& bytes)
{
    std::vector<Complex16> out(bytes.size() / 4);
    std::memcpy(out.data(), bytes.data(), out.size() * 4);
    return out;
}

std::vector<uint8_t>
samplesToBytes(const std::vector<Complex16>& xs)
{
    std::vector<uint8_t> out(xs.size() * 4);
    std::memcpy(out.data(), xs.data(), out.size());
    return out;
}

/** The fixed conformance payload (mirrored in gen_annexg.py). */
std::vector<uint8_t>
conformancePayload(int n = 100)
{
    std::vector<uint8_t> out(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        out[static_cast<size_t>(i)] =
            static_cast<uint8_t>((7 * i + 13) & 0xFF);
    return out;
}

class NativeTxChainGolden : public ::testing::TestWithParam<Rate>
{
};

TEST_P(NativeTxChainGolden, MatchesGoldenAndVmAtEveryRate)
{
    Rate rate = GetParam();
    const RateInfo& ri = rateInfo(rate);
    auto golden = parsePoints(goldenLines(
        std::string("txchain_r") + std::to_string(ri.mbps) + ".txt"));
    auto dataBits = assembleDataBits(conformancePayload(), rate);

    auto chain = [&] {
        return zb::pipe(
            zb::pipe(zb::pipe(scramblerBlock(), encoderBlock(ri.coding)),
                     interleaverBlock(ri.modulation)),
            modulatorBlock(ri.modulation));
    };

    // Unoptimized native: exact golden match, full length, and — with a
    // compiler present — the whole TX chain as one region with zero
    // interpreter fallbacks.
    CompileReport rep;
    auto n0 = compilePipeline(chain(), nativeConf(OptLevel::None), &rep);
    EXPECT_EQ(rep.fuse.fallbacks, 0)
        << "the TX chain should fuse into one region";
    if (zcgen::compilerAvailable()) {
        EXPECT_EQ(rep.cgen.fallbacks, 0)
            << "the TX chain region should run natively";
    }
    auto got0 = bytesToSamples(n0->runBytes(dataBits));
    ASSERT_EQ(got0.size(), golden.size()) << ri.mbps << " Mbps";
    for (size_t i = 0; i < golden.size(); ++i) {
        ASSERT_EQ(got0[i].re, golden[i].re)
            << ri.mbps << " Mbps, point " << i;
        ASSERT_EQ(got0[i].im, golden[i].im)
            << ri.mbps << " Mbps, point " << i;
    }

    // Optimized: native must equal the optimized VM byte for byte —
    // including any vectorization tail behavior.
    auto vm1 = compilePipeline(chain(),
                               CompilerOptions::forLevel(OptLevel::All));
    auto n1 = compilePipeline(chain(), nativeConf(OptLevel::All));
    EXPECT_EQ(n1->runBytes(dataBits), vm1->runBytes(dataBits))
        << ri.mbps << " Mbps (optimized)";
}

INSTANTIATE_TEST_SUITE_P(AllRates, NativeTxChainGolden,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

class NativeRoundTrip : public ::testing::TestWithParam<Rate>
{
};

TEST_P(NativeRoundTrip, NativeTxToNativeRxDecodes)
{
    // Native TX -> channel -> native RX.  The receiver leans on native
    // blocks (FFT, CCA), so this also proves compiled regions compose
    // with the VM-fallback spine inside one real pipeline.
    Rate rate = GetParam();
    Rng rng(600 + static_cast<uint64_t>(rate));
    std::vector<uint8_t> payload(72);
    for (auto& b : payload)
        b = static_cast<uint8_t>(rng.next());

    auto tx = compilePipeline(
        wifiTxFrameComp(rate, static_cast<int>(payload.size())),
        nativeConf(OptLevel::None));
    auto txSamples = bytesToSamples(tx->runBytes(bytesToBits(payload)));

    // Identical channel seed to ZiriaRoundTrip (test_conformance.cpp):
    // the native TX must produce the same waveform, so the same channel
    // decodes it.
    channel::ChannelConfig cfg;
    cfg.snrDb = 35.0;
    cfg.delaySamples = 220;
    cfg.trailSamples = 120;
    cfg.phaseRad = 0.3;
    cfg.gain = 0.9;
    cfg.seed = 1000 + static_cast<uint64_t>(rate);
    auto rxSamples = channel::applyChannel(txSamples, cfg);

    auto rx = compilePipeline(wifiReceiverComp(),
                              nativeConf(OptLevel::None));
    RunStats st;
    auto bits = rx->runBytes(samplesToBytes(rxSamples), &st);
    ASSERT_TRUE(st.halted) << rateInfo(rate).mbps << " Mbps: no detection";
    ASSERT_EQ(st.ctrl.size(), 4u);
    int32_t crcOk = 0;
    std::memcpy(&crcOk, st.ctrl.data(), 4);
    EXPECT_EQ(crcOk, 1) << rateInfo(rate).mbps << " Mbps: CRC failed";

    auto bytes = bitsToBytes(bits);
    ASSERT_GE(bytes.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), bytes.begin()))
        << rateInfo(rate).mbps << " Mbps: payload mismatch";
}

INSTANTIATE_TEST_SUITE_P(AllRates, NativeRoundTrip,
                         ::testing::Values(Rate::R6, Rate::R9, Rate::R12,
                                           Rate::R18, Rate::R24, Rate::R36,
                                           Rate::R48, Rate::R54));

// ------------------------------------------------ shared-object cache

TEST(CgenCache, MissThenHitRoundTrip)
{
    if (!zcgen::compilerAvailable())
        GTEST_SKIP() << "no C++ compiler on this host";
    std::string dir = makeTempDir();

    auto cold = zcgen::compileUnit(kToySource, dir);
    ASSERT_NE(cold.lib, nullptr) << cold.error;
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_GT(cold.compileSec, 0.0);
    ASSERT_EQ(cold.key.size(), 16u);
    EXPECT_TRUE(fileExists(dir + "/" + cold.key + ".so"));
    EXPECT_TRUE(fileExists(dir + "/" + cold.key + ".manifest"));
    EXPECT_TRUE(fileExists(dir + "/" + cold.key + ".cc"));

    auto fn = reinterpret_cast<int (*)(int)>(cold.lib->sym("zr_toy"));
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn(1), 42);

    auto warm = zcgen::compileUnit(kToySource, dir);
    ASSERT_NE(warm.lib, nullptr) << warm.error;
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.key, cold.key);
    auto fn2 = reinterpret_cast<int (*)(int)>(warm.lib->sym("zr_toy"));
    ASSERT_NE(fn2, nullptr);
    EXPECT_EQ(fn2(2), 43);
}

TEST(CgenCache, CorruptSharedObjectIsQuarantinedAndRecompiled)
{
    if (!zcgen::compilerAvailable())
        GTEST_SKIP() << "no C++ compiler on this host";
    std::string dir = makeTempDir();

    std::string key;
    {
        auto cold = zcgen::compileUnit(kToySource, dir);
        ASSERT_NE(cold.lib, nullptr) << cold.error;
        key = cold.key;
    }  // dlclose before corrupting: the object must not stay mapped
    scribbleFile(dir + "/" + key + ".so", "definitely not an ELF");

    auto again = zcgen::compileUnit(kToySource, dir);
    ASSERT_NE(again.lib, nullptr) << again.error;
    EXPECT_FALSE(again.cacheHit) << "a torn object must not be served";
    EXPECT_GE(countSuffix(dir, ".bad"), 1)
        << "the corrupt entry should be quarantined, not deleted";
    auto fn = reinterpret_cast<int (*)(int)>(again.lib->sym("zr_toy"));
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn(0), 41);

    // The reinstalled entry serves hits again.
    auto warm = zcgen::compileUnit(kToySource, dir);
    ASSERT_NE(warm.lib, nullptr);
    EXPECT_TRUE(warm.cacheHit);
}

TEST(CgenCache, CorruptManifestIsQuarantinedAndRecompiled)
{
    if (!zcgen::compilerAvailable())
        GTEST_SKIP() << "no C++ compiler on this host";
    std::string dir = makeTempDir();

    auto cold = zcgen::compileUnit(kToySource, dir);
    ASSERT_NE(cold.lib, nullptr) << cold.error;
    scribbleFile(dir + "/" + cold.key + ".manifest",
                 "ZCG1\nkey 0000000000000000\n");

    auto again = zcgen::compileUnit(kToySource, dir);
    ASSERT_NE(again.lib, nullptr) << again.error;
    EXPECT_FALSE(again.cacheHit);
    EXPECT_GE(countSuffix(dir, ".bad"), 1);
}

TEST(CgenCache, DifferentSourceMissesWithDifferentKey)
{
    if (!zcgen::compilerAvailable())
        GTEST_SKIP() << "no C++ compiler on this host";
    std::string dir = makeTempDir();

    auto a = zcgen::compileUnit(kToySource, dir);
    ASSERT_NE(a.lib, nullptr) << a.error;
    std::string other = std::string(kToySource) +
                        "extern \"C\" int zr_toy2(int x) { return x; }\n";
    auto b = zcgen::compileUnit(other, dir);
    ASSERT_NE(b.lib, nullptr) << b.error;
    EXPECT_FALSE(b.cacheHit) << "a stale key must not hit";
    EXPECT_NE(a.key, b.key);
}

TEST(CgenCache, WarmPipelineRecompileIsAPureHit)
{
    if (!zcgen::compilerAvailable())
        GTEST_SKIP() << "no C++ compiler on this host";
    std::string dir = makeTempDir();

    CompilerOptions opt = nativeConf();
    opt.cgenCacheDir = dir;  // --cgen-cache-dir wins over the env var

    auto& reg = metrics::Registry::global();
    uint64_t hitsBefore = reg.counter("ziria.cgen.cache_hits").value();
    uint64_t missBefore = reg.counter("ziria.cgen.cache_misses").value();

    CompileReport cold;
    auto p1 = compilePipeline(pipe(incBlock(3), incBlock(4)), opt, &cold);
    EXPECT_EQ(cold.cgen.cacheMisses, 1);
    EXPECT_EQ(cold.cgen.compiled, 1);
    EXPECT_EQ(cold.cgen.cacheHits, 0);
    EXPECT_GT(cold.cgen.compileSec, 0.0);

    CompileReport warm;
    auto p2 = compilePipeline(pipe(incBlock(3), incBlock(4)), opt, &warm);
    EXPECT_GE(warm.cgen.cacheHits, 1);
    EXPECT_EQ(warm.cgen.compiled, 0) << "a warm cache must not recompile";
    EXPECT_EQ(warm.cgen.cacheKey, cold.cgen.cacheKey);

    EXPECT_GE(reg.counter("ziria.cgen.cache_hits").value(),
              hitsBefore + 1);
    EXPECT_GE(reg.counter("ziria.cgen.cache_misses").value(),
              missBefore + 1);

    std::vector<int32_t> in(128);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<int32_t>(i);
    auto bytes = intBytes(in);
    EXPECT_EQ(p1->runBytes(bytes), p2->runBytes(bytes));
}

TEST(CgenCache, CacheKeyHashIsDeterministic)
{
    // FNV-1a 64 reference vectors; the key must be stable across runs
    // or the on-disk cache would never hit.
    EXPECT_EQ(zcgen::fnv1a64Hex(""), "cbf29ce484222325");
    EXPECT_EQ(zcgen::fnv1a64Hex("a"), "af63dc4c8601ec8c");
    EXPECT_EQ(zcgen::fnv1a64Hex(kToySource),
              zcgen::fnv1a64Hex(kToySource));
    EXPECT_NE(zcgen::fnv1a64Hex("a"), zcgen::fnv1a64Hex("b"));
}

// ----------------------------------------------------- loud refusals

TEST(NativeRefusals, StageScopedRestartIsRefusedAtCompileTime)
{
    CompilerOptions opt = nativeConf();
    opt.restart.mode = RestartMode::OnFailure;
    opt.restart.maxRestarts = 2;
    opt.restart.scope = RestartScope::Stage;
    try {
        compilePipeline(incBlock(1), opt);
        FAIL() << "native + stage-scoped restart must be refused";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("--backend=native"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("docs/ROBUSTNESS.md"),
                  std::string::npos)
            << e.what();
    }
}

TEST(NativeRefusals, CheckpointIsRefusedAtCompileTime)
{
    CompilerOptions opt = nativeConf();
    opt.checkpoint.interval = 64;
    try {
        compilePipeline(incBlock(1), opt);
        FAIL() << "native + checkpointing must be refused";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("--checkpoint"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("docs/ROBUSTNESS.md"),
                  std::string::npos)
            << e.what();
    }
}

TEST(NativeRefusals, SnapshotOfBoundRegionIsRefused)
{
    if (!zcgen::compilerAvailable())
        GTEST_SKIP() << "no C++ compiler on this host";
    CompileReport rep;
    auto p = compilePipeline(incBlock(1), nativeConf(), &rep);
    ASSERT_EQ(rep.cgen.fallbacks, 0);
    try {
        takeSnapshot(p->root(), p->frame(), 0, 0);
        FAIL() << "snapshot of a compiled region must be refused";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("docs/ROBUSTNESS.md"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace ziria
