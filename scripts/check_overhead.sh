#!/bin/sh
# Guard the zero-cost-when-off property of the observability layer.
#
# Runs bench_fig4_overheads --overhead-check, which measures ns/datum on
# the off-paths the runtime promises are free:
#
#   instrument  per-node counters compiled in but DISABLED
#   spans_off   frame-span hooks present but no tracker attached
#   vm_backend  default VM node build with the fused backend available
#               but NOT selected (Backend::Fused is a compile-time
#               branch; a VM build must pay zero for its existence)
#   ckpt_off    checkpoint machinery compiled in but no --checkpoint
#               cadence configured (no input journaling, no snapshots —
#               the run loop must not pay for snapshot support)
#   ckptdir_off checkpoint cadence configured but no --ckpt-dir durable
#               store attached (the default): each cadence boundary
#               pays one null check for the store pointer, nothing else
#   native_off  vm and fused hot paths with the native codegen backend
#               (zcgen: emit + dlopen + .so cache) linked in but NOT
#               selected — region emission and the compiler probe only
#               run under --backend=native, so both paths must cost
#               what they always did
#
# Gating is *within one invocation*: every off-path key is compared
# against a same-invocation twin that executes the identical pipeline
# configuration — `instrument` (counters off, the default path) for
# spans_off/vm_backend/ckpt_off, and `ckpt_on` (same cadence, no
# durable store vs store attached-but-null — identical when off is
# free) for ckptdir_off.  An off-path that stopped being free shows up
# as its key costing measurably more than its twin.  Absolute figures
# are recorded in scripts/overhead_baseline.txt and *reported* for
# cross-commit drift visibility, but not gated: on shared hosts the
# clock regime swings far more than any honest tolerance (observed
# ~25% peak-to-peak between invocations of the same binary), so only
# same-process ratios are stable enough to fail a build on.
#
# Each side of a ratio is the per-key minimum over up to three bench
# invocations: scheduler/frequency noise only ever adds time, so the
# minimum is the stable estimator — a noisy spike washes out on a
# retry while a genuine regression fails every try.
#
# Usage: scripts/check_overhead.sh [--update-baseline]
cd "$(dirname "$0")/.." || exit 1
BUILD="${BUILD_DIR:-build}"
BIN="$BUILD/bench/bench_fig4_overheads"
BASELINE=scripts/overhead_baseline.txt
TOLERANCE_PCT=8

if [ ! -x "$BIN" ]; then
    echo "check_overhead: $BIN not built" >&2
    exit 1
fi

# Run the bench once and leave the gated figures (plus the ckpt_on
# twin) in the named globals.
measure() {
    out=$("$BIN" --overhead-check) || exit 1
    echo "$out"
    disabled=$(echo "$out" | awk '/^ns_per_datum_disabled/ {print $2}')
    spans_off=$(echo "$out" | awk '/^ns_per_datum_spans_off/ {print $2}')
    vm_backend=$(echo "$out" | awk '/^ns_per_datum_vm / {print $2}')
    ckpt_off=$(echo "$out" | awk '/^ns_per_datum_ckpt_off/ {print $2}')
    ckpt_on=$(echo "$out" | awk '/^ns_per_datum_ckpt_on/ {print $2}')
    ckptdir_off=$(echo "$out" | awk '/^ns_per_datum_ckptdir_off/ {print $2}')
    fused=$(echo "$out" | awk '/^ns_per_datum_fused / {print $2}')
    native_off=$(echo "$out" | awk '/^ns_per_datum_native_off / {print $2}')
    native_off_fz=$(echo "$out" | awk '/^ns_per_datum_native_off_fused/ {print $2}')
    if [ -z "$disabled" ] || [ -z "$spans_off" ] || [ -z "$vm_backend" ] ||
       [ -z "$ckpt_off" ] || [ -z "$ckpt_on" ] || [ -z "$ckptdir_off" ] ||
       [ -z "$fused" ] || [ -z "$native_off" ] || [ -z "$native_off_fz" ];
    then
        echo "check_overhead: could not parse benchmark output" >&2
        exit 1
    fi
}

min() {
    awk -v a="$1" -v b="$2" 'BEGIN { print (a < b) ? a : b }'
}

fold_mins() {
    disabled=$(min "$d0" "$disabled")
    spans_off=$(min "$s0" "$spans_off")
    vm_backend=$(min "$v0" "$vm_backend")
    ckpt_off=$(min "$c0" "$ckpt_off")
    ckpt_on=$(min "$n0" "$ckpt_on")
    ckptdir_off=$(min "$k0" "$ckptdir_off")
    fused=$(min "$f0" "$fused")
    native_off=$(min "$g0" "$native_off")
    native_off_fz=$(min "$h0" "$native_off_fz")
}

save_cur() {
    d0=$disabled s0=$spans_off v0=$vm_backend
    c0=$ckpt_off n0=$ckpt_on k0=$ckptdir_off
    f0=$fused g0=$native_off h0=$native_off_fz
}

record_baseline() {
    {
        printf 'instrument %s\nspans_off %s\nvm_backend %s\n' \
            "$disabled" "$spans_off" "$vm_backend"
        printf 'ckpt_off %s\nckptdir_off %s\n' "$ckpt_off" "$ckptdir_off"
        printf 'native_off %s\n' "$native_off"
    } > "$BASELINE"
}

measure

if [ "$1" = "--update-baseline" ] || [ ! -f "$BASELINE" ]; then
    for extra in 2 3; do
        save_cur
        measure
        fold_mins
    done
    record_baseline
    echo "check_overhead: baseline recorded" \
         "(instrument $disabled, spans_off $spans_off," \
         "vm_backend $vm_backend, ckpt_off $ckpt_off," \
         "ckptdir_off $ckptdir_off, native_off $native_off ns/datum)"
    exit 0
fi

# The gate: each off-path vs its same-invocation identical-config twin.
MAX_TRIES=3
try=1
while :; do
    fail=0
    for pair in "spans_off:$spans_off:$disabled" \
                "vm_backend:$vm_backend:$disabled" \
                "ckpt_off:$ckpt_off:$disabled" \
                "ckptdir_off:$ckptdir_off:$ckpt_on" \
                "native_off:$native_off:$disabled" \
                "native_off_fz:$native_off_fz:$fused"; do
        name=${pair%%:*}
        rest=${pair#*:}
        cur=${rest%%:*}
        ref=${rest#*:}
        awk -v cur="$cur" -v ref="$ref" -v tol="$TOLERANCE_PCT" \
            -v name="$name" 'BEGIN {
            pct = (cur - ref) / ref * 100.0;
            printf "check_overhead: %-11s %.2f ns/datum vs twin %.2f (%+.1f%%, tolerance %d%%)\n",
                   name, cur, ref, pct, tol;
            exit (pct > tol) ? 1 : 0;
        }' || fail=1
    done
    if [ $fail -eq 0 ] || [ $try -ge $MAX_TRIES ]; then
        break
    fi
    try=$((try + 1))
    echo "check_overhead: out of tolerance, remeasuring ($try/$MAX_TRIES)"
    save_cur
    measure
    fold_mins
done
if [ $fail -ne 0 ]; then
    echo "check_overhead: FAIL — an observability off-path regressed" >&2
    exit 1
fi

# Cross-commit drift, reported but not gated (see header).
base_instr=$(awk '/^instrument/ {print $2}' "$BASELINE")
if [ -n "$base_instr" ]; then
    awk -v cur="$disabled" -v base="$base_instr" 'BEGIN {
        printf "check_overhead: base path %.2f ns/datum vs recorded baseline %.2f (%+.1f%% drift, informational)\n",
               cur, base, (cur - base) / base * 100.0;
    }'
fi
echo "check_overhead: OK"
