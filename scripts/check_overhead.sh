#!/bin/sh
# Guard the zero-cost-when-off property of the observability layer.
#
# Runs bench_fig4_overheads --overhead-check, which measures ns/datum on
# the two off-paths the runtime promises are free:
#
#   instrument  per-node counters compiled in but DISABLED
#   spans_off   frame-span hooks present but no tracker attached
#   vm_backend  default VM node build with the fused backend available
#               but NOT selected (Backend::Fused is a compile-time
#               branch; a VM build must pay zero for its existence)
#   ckpt_off    checkpoint machinery compiled in but no --checkpoint
#               cadence configured (no input journaling, no snapshots —
#               the run loop must not pay for snapshot support)
#
# and compares each against scripts/overhead_baseline.txt.  The first
# run on a machine records the baseline; later runs fail (exit 1) if
# either off-path regressed by more than 3%, i.e. if "off" stopped
# being free.
#
# Usage: scripts/check_overhead.sh [--update-baseline]
cd "$(dirname "$0")/.." || exit 1
BUILD="${BUILD_DIR:-build}"
BIN="$BUILD/bench/bench_fig4_overheads"
BASELINE=scripts/overhead_baseline.txt
TOLERANCE_PCT=3

if [ ! -x "$BIN" ]; then
    echo "check_overhead: $BIN not built" >&2
    exit 1
fi

out=$("$BIN" --overhead-check) || exit 1
echo "$out"
disabled=$(echo "$out" | awk '/^ns_per_datum_disabled/ {print $2}')
spans_off=$(echo "$out" | awk '/^ns_per_datum_spans_off/ {print $2}')
vm_backend=$(echo "$out" | awk '/^ns_per_datum_vm / {print $2}')
ckpt_off=$(echo "$out" | awk '/^ns_per_datum_ckpt_off/ {print $2}')
if [ -z "$disabled" ] || [ -z "$spans_off" ] || [ -z "$vm_backend" ] ||
   [ -z "$ckpt_off" ]; then
    echo "check_overhead: could not parse benchmark output" >&2
    exit 1
fi

record_baseline() {
    printf 'instrument %s\nspans_off %s\nvm_backend %s\nckpt_off %s\n' \
        "$1" "$2" "$3" "$4" > "$BASELINE"
}

if [ "$1" = "--update-baseline" ] || [ ! -f "$BASELINE" ]; then
    record_baseline "$disabled" "$spans_off" "$vm_backend" "$ckpt_off"
    echo "check_overhead: baseline recorded" \
         "(instrument $disabled, spans_off $spans_off," \
         "vm_backend $vm_backend, ckpt_off $ckpt_off ns/datum)"
    exit 0
fi

base_instr=$(awk '/^instrument/ {print $2}' "$BASELINE")
base_spans=$(awk '/^spans_off/ {print $2}' "$BASELINE")
base_vm=$(awk '/^vm_backend/ {print $2}' "$BASELINE")
base_ckpt=$(awk '/^ckpt_off/ {print $2}' "$BASELINE")
# Baselines recorded before the span tracker existed were a single bare
# number (the instrument-off value); keep it and record the span side.
if [ -z "$base_instr" ]; then
    base_instr=$(awk 'NR==1 {print $1}' "$BASELINE")
fi
if [ -z "$base_spans" ]; then
    base_spans=$spans_off
    record_baseline "$base_instr" "$base_spans" "$vm_backend" "$ckpt_off"
    echo "check_overhead: span baseline recorded ($spans_off ns/datum)"
fi
# Baselines recorded before the fused backend existed lack the
# vm_backend line; record today's VM figure and gate from here on.
if [ -z "$base_vm" ]; then
    base_vm=$vm_backend
    record_baseline "$base_instr" "$base_spans" "$base_vm" "$ckpt_off"
    echo "check_overhead: vm_backend baseline recorded" \
         "($vm_backend ns/datum)"
    base_ckpt=$ckpt_off
fi
# Baselines recorded before the checkpoint layer existed lack the
# ckpt_off line; same recover-then-gate dance.
if [ -z "$base_ckpt" ]; then
    base_ckpt=$ckpt_off
    record_baseline "$base_instr" "$base_spans" "$base_vm" "$base_ckpt"
    echo "check_overhead: ckpt_off baseline recorded" \
         "($ckpt_off ns/datum)"
fi

fail=0
for pair in "instrument:$disabled:$base_instr" \
            "spans_off:$spans_off:$base_spans" \
            "vm_backend:$vm_backend:$base_vm" \
            "ckpt_off:$ckpt_off:$base_ckpt"; do
    name=${pair%%:*}
    rest=${pair#*:}
    cur=${rest%%:*}
    base=${rest#*:}
    awk -v cur="$cur" -v base="$base" -v tol="$TOLERANCE_PCT" \
        -v name="$name" 'BEGIN {
        pct = (cur - base) / base * 100.0;
        printf "check_overhead: %-10s %.2f ns/datum vs baseline %.2f (%+.1f%%, tolerance %d%%)\n",
               name, cur, base, pct, tol;
        exit (pct > tol) ? 1 : 0;
    }' || fail=1
done
if [ $fail -ne 0 ]; then
    echo "check_overhead: FAIL — an observability off-path regressed" >&2
    exit 1
fi
echo "check_overhead: OK"
