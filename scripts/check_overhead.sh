#!/bin/sh
# Guard the zero-cost-when-off property of the observability layer.
#
# Runs bench_fig4_overheads --overhead-check (instrumentation support
# compiled in but DISABLED on the measured path) and compares ns/datum
# against scripts/overhead_baseline.txt.  The first run on a machine
# records the baseline; later runs fail (exit 1) if throughput regressed
# by more than 3%, i.e. if "off" stopped being free.
#
# Usage: scripts/check_overhead.sh [--update-baseline]
cd "$(dirname "$0")/.." || exit 1
BUILD="${BUILD_DIR:-build}"
BIN="$BUILD/bench/bench_fig4_overheads"
BASELINE=scripts/overhead_baseline.txt
TOLERANCE_PCT=3

if [ ! -x "$BIN" ]; then
    echo "check_overhead: $BIN not built" >&2
    exit 1
fi

out=$("$BIN" --overhead-check) || exit 1
echo "$out"
disabled=$(echo "$out" | awk '/^ns_per_datum_disabled/ {print $2}')
if [ -z "$disabled" ]; then
    echo "check_overhead: could not parse benchmark output" >&2
    exit 1
fi

if [ "$1" = "--update-baseline" ] || [ ! -f "$BASELINE" ]; then
    echo "$disabled" > "$BASELINE"
    echo "check_overhead: baseline recorded ($disabled ns/datum)"
    exit 0
fi

base=$(cat "$BASELINE")
awk -v cur="$disabled" -v base="$base" -v tol="$TOLERANCE_PCT" 'BEGIN {
    pct = (cur - base) / base * 100.0;
    printf "check_overhead: %.2f ns/datum vs baseline %.2f (%+.1f%%, tolerance %d%%)\n",
           cur, base, pct, tol;
    exit (pct > tol) ? 1 : 0;
}'
status=$?
if [ $status -ne 0 ]; then
    echo "check_overhead: FAIL — instrumentation-off path regressed" >&2
    exit 1
fi
echo "check_overhead: OK"
