#!/usr/bin/env python3
"""Regenerate the IEEE 802.11a golden vectors in tests/data/annexg/.

Every vector is computed from the Clause 17 equations implemented here,
in Python, with no reference to the C++ code: the scrambler polynomial
(17.3.5.4), the K=7 g0=133/g1=171 convolutional code with the standard
puncturing figures (17.3.5.5), the two-permutation interleaver
(17.3.5.6), the gray-coded constellations with K_MOD normalization
(17.3.5.7), the SIGNAL field (17.3.4), and the FCS (via binascii.crc32,
itself an independent CRC-32).  tests/test_conformance.cpp replays the
repo's DSP helpers and DSL pipelines against these files.

The vectors deliberately lock in three deviations of this codebase from
a strict Annex G reading (documented in docs/TESTING.md):
  * the scrambler seed is fixed to all-ones (Annex G picks 1011101);
  * the six scrambled tail bits are not re-zeroed (17.3.5.2 zeroes
    them so the decoder returns to state 0);
  * constellation axis tables are indexed with the first coded bit as
    the LOW-order gray bit (the spec tables read b0 as high-order).
The 127-bit scrambler sequence itself is seed-independent spec output
(17.3.5.4 Figure 63 lists it for the all-ones seed), so that vector is
exact Annex-style data.

Usage: python3 scripts/gen_annexg.py  (from anywhere; paths are
relative to this script).  Output is deterministic.
"""

import binascii
import math
import os

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "tests", "data", "annexg")

# (name, mbps, modulation, coding, nbpsc, ncbps, ndbps, signal rate bits)
RATES = [
    ("r6", 6, "bpsk", "1/2", 1, 48, 24, 0xB),
    ("r9", 9, "bpsk", "3/4", 1, 48, 36, 0xF),
    ("r12", 12, "qpsk", "1/2", 2, 96, 48, 0xA),
    ("r18", 18, "qpsk", "3/4", 2, 96, 72, 0xE),
    ("r24", 24, "qam16", "1/2", 4, 192, 96, 0x9),
    ("r36", 36, "qam16", "3/4", 4, 192, 144, 0xD),
    ("r48", 48, "qam64", "2/3", 6, 288, 192, 0x8),
    ("r54", 54, "qam64", "3/4", 6, 288, 216, 0xC),
]

# ----------------------------------------------------------- scrambler


def scrambler_sequence(n):
    """x^7 + x^4 + 1 output sequence, all-ones seed (17.3.5.4)."""
    s = 0x7F  # bit6 = x7 (oldest), bit3 = x4
    out = []
    for _ in range(n):
        fb = ((s >> 6) ^ (s >> 3)) & 1
        s = ((s << 1) | fb) & 0x7F
        out.append(fb)
    return out


# ------------------------------------------------- convolutional code


def _taps(gen_octal):
    """Delays tapped by a 7-bit generator, MSB = current input."""
    return [d for d in range(7) if (gen_octal >> (6 - d)) & 1]

G0_TAPS = _taps(0o133)  # A output
G1_TAPS = _taps(0o171)  # B output

# Puncturing over the interleaved A/B lattice (17.3.5.5 Figures 64/65):
#   2/3: A1 B1 A2 --        3/4: A1 B1 A2 -- -- B3
PUNCTURE = {"1/2": [1, 1], "2/3": [1, 1, 1, 0], "3/4": [1, 1, 1, 0, 0, 1]}


def conv_encode(bits, coding):
    window = [0] * 7  # window[d] = u(t-d)
    mask = PUNCTURE[coding]
    out = []
    pos = 0
    for u in bits:
        window = [u & 1] + window[:6]
        a = 0
        for d in G0_TAPS:
            a ^= window[d]
        b = 0
        for d in G1_TAPS:
            b ^= window[d]
        for coded in (a, b):
            if mask[pos % len(mask)]:
                out.append(coded)
            pos += 1
    return out


# --------------------------------------------------------- interleaver


def interleaver_table(ncbps, nbpsc):
    """Entry k is the post-interleaving index of coded bit k."""
    s = max(nbpsc // 2, 1)
    table = []
    for k in range(ncbps):
        i = (ncbps // 16) * (k % 16) + k // 16
        j = s * (i // s) + (i + ncbps - (16 * i) // ncbps) % s
        table.append(j)
    return table


def interleave_symbol(coded, table):
    out = [0] * len(table)
    for k, bit in enumerate(coded):
        out[table[k]] = bit
    return out


# ------------------------------------------------------ constellations

AXIS = {1: [-1, 1], 2: [-3, -1, 3, 1], 3: [-7, -5, -1, -3, 7, 5, 1, 3]}
KMOD = {"bpsk": 1.0, "qpsk": math.sqrt(2.0), "qam16": math.sqrt(10.0),
        "qam64": math.sqrt(42.0)}
NBPSC = {"bpsk": 1, "qpsk": 2, "qam16": 4, "qam64": 6}
SCALE = 600  # fixed-point amplitude of a fully normalized point


def _lround(x):
    return int(math.floor(x + 0.5)) if x >= 0 else int(math.ceil(x - 0.5))


def map_group(mod, bits):
    """nbpsc bits (transmission order) -> (I, Q) fixed-point point."""
    if mod == "bpsk":
        lvl = AXIS[1][bits[0]]
        return _lround(lvl * SCALE / KMOD[mod]), 0
    nb = NBPSC[mod] // 2
    i_idx = sum(bits[i] << i for i in range(nb))
    q_idx = sum(bits[nb + i] << i for i in range(nb))
    axis = AXIS[nb]
    return (_lround(axis[i_idx] * SCALE / KMOD[mod]),
            _lround(axis[q_idx] * SCALE / KMOD[mod]))


# ------------------------------------------------------- frame framing


def bytes_to_bits(data):
    return [(b >> i) & 1 for b in data for i in range(8)]


def data_symbol_count(ndbps, psdu_len):
    return -(-(16 + 8 * psdu_len + 6) // ndbps)


def signal_bits(rate_bits, psdu_len):
    bits = [0] * 24
    for i in range(4):
        bits[i] = (rate_bits >> i) & 1
    for i in range(12):
        bits[5 + i] = (psdu_len >> i) & 1
    bits[17] = sum(bits[:17]) % 2
    return bits


def data_field_bits(payload, ndbps):
    psdu = len(payload) + 4
    bits = [0] * 16  # SERVICE
    bits += bytes_to_bits(payload)
    fcs = binascii.crc32(bytes(payload)) & 0xFFFFFFFF
    bits += [(fcs >> i) & 1 for i in range(32)]
    total = data_symbol_count(ndbps, psdu) * ndbps
    bits += [0] * (total - len(bits))  # tail + pad
    return bits


def tx_chain_points(payload, mod, coding, nbpsc, ncbps, ndbps):
    """DATA field -> scramble -> encode -> interleave -> map."""
    bits = data_field_bits(payload, ndbps)
    seq = scrambler_sequence(len(bits))
    scrambled = [b ^ s for b, s in zip(bits, seq)]
    coded = conv_encode(scrambled, coding)
    assert len(coded) == data_symbol_count(ndbps, len(payload) + 4) * ncbps
    table = interleaver_table(ncbps, nbpsc)
    points = []
    for off in range(0, len(coded), ncbps):
        sym = interleave_symbol(coded[off:off + ncbps], table)
        for g in range(0, ncbps, nbpsc):
            points.append(map_group(mod, sym[g:g + nbpsc]))
    return points


# ------------------------------------------------------------- writers


def write(name, header, lines):
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as f:
        for h in header:
            f.write("# " + h + "\n")
        for ln in lines:
            f.write(ln + "\n")
    print("wrote %s (%d lines)" % (path, len(lines)))


def bit_str(bits):
    return "".join(str(b) for b in bits)


def test_payload(n=100):
    """The fixed conformance payload (mirrored in test_conformance)."""
    return [(7 * i + 13) & 0xFF for i in range(n)]


def main():
    os.makedirs(OUT_DIR, exist_ok=True)

    write("scrambler_seq.txt",
          ["127-bit scrambler sequence, all-ones seed (17.3.5.4)"],
          [bit_str(scrambler_sequence(127))])

    # Convolutional code over the first 96 scrambler-sequence bits (a
    # fixed, spec-published input needing no side file).
    conv_in = scrambler_sequence(96)
    for coding, tag in (("1/2", "r12"), ("2/3", "r23"), ("3/4", "r34")):
        write("conv_%s.txt" % tag,
              ["coded output, rate %s, input = scrambler seq[0:96]"
               % coding],
              [bit_str(conv_encode(conv_in, coding))])

    for mod in ("bpsk", "qpsk", "qam16", "qam64"):
        nbpsc = NBPSC[mod]
        ncbps = 48 * nbpsc
        table = interleaver_table(ncbps, nbpsc)
        write("interleaver_%s.txt" % mod,
              ["interleaver permutation, NCBPS=%d (17.3.5.6);" % ncbps,
               "entry k = post-interleaving index of coded bit k"],
              [" ".join(str(j) for j in table)])

        groups = []
        for v in range(1 << nbpsc):
            bits = [(v >> i) & 1 for i in range(nbpsc)]
            i_val, q_val = map_group(mod, bits)
            groups.append("%s %d %d" % (bit_str(bits), i_val, q_val))
        write("mapper_%s.txt" % mod,
              ["all %d-bit groups (transmission order) -> I Q" % nbpsc],
              groups)

    sig_lines = []
    for _, mbps, _, _, _, _, _, rb in RATES:
        for psdu in (14, 100, 104, 1500, 4095):
            sig_lines.append("%d %d %s"
                             % (mbps, psdu, bit_str(signal_bits(rb, psdu))))
    write("signal_field.txt", ["mbps psdu_len 24-SIGNAL-bits (17.3.4)"],
          sig_lines)

    payload = test_payload()
    for name, mbps, mod, coding, nbpsc, ncbps, ndbps, _ in RATES:
        pts = tx_chain_points(payload, mod, coding, nbpsc, ncbps, ndbps)
        write("txchain_%s.txt" % name,
              ["TX chain (scramble>>encode>>interleave>>map) at %d Mb/s"
               % mbps,
               "payload = 100 bytes (7*i+13)&0xFF; one 'I Q' per point"],
              ["%d %d" % p for p in pts])


if __name__ == "__main__":
    main()
