#!/bin/sh
# Capture the full test suite, the observability overhead guard, and
# every benchmark harness into the canonical output files referenced by
# EXPERIMENTS.md.
cd "$(dirname "$0")/.." || exit 1
ctest --test-dir build 2>&1 | tee test_output.txt
sh scripts/check_overhead.sh 2>&1 | tee overhead_output.txt
{
    for b in build/bench/*; do
        if [ -f "$b" ] && [ -x "$b" ]; then
            echo "===== $b ====="
            "$b"
        fi
    done
} 2>&1 | tee bench_output.txt
