#!/bin/sh
# Capture the full test suite, the observability overhead guard, and
# every benchmark harness into the canonical output files referenced by
# EXPERIMENTS.md.
#
# Usage:
#   scripts/run_all.sh                      normal run (uses ./build)
#   scripts/run_all.sh --sanitize=asan      full suite under ASan
#   scripts/run_all.sh --sanitize=ubsan     full suite under UBSan
#   scripts/run_all.sh --sanitize=tsan     'sanitizer'-labeled suites
#                                           (threading + differential)
#                                           under TSan
#
# Sanitizer runs configure and build a separate tree (build-<mode>) so
# they never disturb the primary build directory, and write their ctest
# log to test_output.<mode>.txt.
cd "$(dirname "$0")/.." || exit 1

sanitize=""
for arg in "$@"; do
    case "$arg" in
      --sanitize=*) sanitize="${arg#--sanitize=}" ;;
      *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

if [ -n "$sanitize" ]; then
    case "$sanitize" in
      asan|ubsan|tsan) ;;
      *) echo "--sanitize must be asan, ubsan, or tsan" >&2; exit 2 ;;
    esac
    bdir="build-$sanitize"
    cmake -B "$bdir" -S . -DZIRIA_SANITIZE="$sanitize" || exit 1
    cmake --build "$bdir" -j || exit 1
    # TSan only pays off on the suites that actually spin up threads;
    # ASan/UBSan sweep everything.
    if [ "$sanitize" = "tsan" ]; then
        label_args="-L sanitizer"
    else
        label_args=""
    fi
    # shellcheck disable=SC2086  # label_args is intentionally split
    ctest --test-dir "$bdir" --output-on-failure $label_args 2>&1 \
        | tee "test_output.$sanitize.txt"
    exit $?
fi

ctest --test-dir build 2>&1 | tee test_output.txt
# Fault-tolerance suites (ctest label `fault`) rerun with verbose output
# so failures in the robustness layer are easy to read, then the CLI
# fault matrix (docs/ROBUSTNESS.md) soaks zirrun's exit codes.
ctest --test-dir build -L fault --output-on-failure 2>&1 \
    | tee fault_output.txt
# Recovery suites (label `recovery`): reset() totality, restart
# supervision, and the CLI recovery matrix (docs/ROBUSTNESS.md,
# "Recovery").  soak.sh runs both matrices below.
ctest --test-dir build -L recovery -E soak_recovery \
    --output-on-failure 2>&1 | tee -a fault_output.txt
sh scripts/soak.sh all 2>&1 | tee -a fault_output.txt
# Serving suites (label `serve`): wire-protocol codec/fuzzing and the
# multi-session server e2e (docs/SERVING.md), then the CLI serve soak
# (zirrun --listen against well- and badly-behaved zclients).
ctest --test-dir build -L serve --output-on-failure 2>&1 \
    | tee serve_output.txt
sh scripts/soak.sh serve 2>&1 | tee -a serve_output.txt
# Checkpoint/migration suites (label `checkpoint`): snapshot round-trip
# totality, checkpointed-restart byte-identity, session migration and
# SIGTERM drain (docs/ROBUSTNESS.md, "Checkpointing & migration"),
# then the CLI migrate soak (ckpt byte-equality x backend x opt,
# per-stage restart, drain under load).
ctest --test-dir build -L checkpoint --output-on-failure 2>&1 \
    | tee checkpoint_output.txt
sh scripts/soak.sh migrate 2>&1 | tee -a checkpoint_output.txt
# Crash matrix (docs/ROBUSTNESS.md, "Durable checkpoints & live
# migration"): SIGKILL -> resume from --ckpt-dir -> byte-compare,
# live migration under load, rejection rollback.
sh scripts/soak.sh crash 2>&1 | tee -a checkpoint_output.txt
# Latency observability suites (label `latency`): span accounting,
# percentile extraction, timeline schema, SLO budget counters and the
# Stat frame round-trip (docs/OBSERVABILITY.md).
ctest --test-dir build -L latency --output-on-failure 2>&1 \
    | tee latency_output.txt
# Fused-backend suites (label `fuse`): fusibility classification, the
# vm-vs-fused differential matrix, golden-vector conformance on the
# fused interpreter, reset() totality (docs/FUSION.md) — then the CLI
# fuse soak (--backend=fused x fault x restart).  The suites also carry
# the `sanitizer` label, so --sanitize=tsan covers the fused backend.
ctest --test-dir build -L fuse --output-on-failure 2>&1 \
    | tee fuse_output.txt
sh scripts/soak.sh fuse 2>&1 | tee -a fuse_output.txt
# Native-codegen suites (label `cgen`): vm-vs-fused-vs-native
# differential matrix, native golden-vector conformance, the .so cache
# (miss/hit/corruption quarantine), and the compile-time refusal cells
# (docs/CODEGEN.md) — then the CLI cgen soak (--backend=native x fault
# x restart x serve plus the warm-cache byte-equality check).
ctest --test-dir build -L cgen -E soak_cgen --output-on-failure 2>&1 \
    | tee cgen_output.txt
sh scripts/soak.sh cgen 2>&1 | tee -a cgen_output.txt
sh scripts/check_overhead.sh 2>&1 | tee overhead_output.txt
{
    for b in build/bench/*; do
        if [ -f "$b" ] && [ -x "$b" ]; then
            echo "===== $b ====="
            "$b"
        fi
    done
} 2>&1 | tee bench_output.txt
