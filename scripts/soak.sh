#!/bin/sh
# Fault-matrix soak: run zirrun across {fault spec} x {opt level} x
# {plain, supervised} and check each case exits with the documented
# code (0 ok, 2 user error, 3 stage failure, 4 stall timeout, 5 restart
# budget exhausted) within a wall-clock deadline.  The property under
# test is the robustness layer's core claim: no injected fault may hang
# or crash the process — every run terminates promptly with a
# structured outcome, and with a restart policy a *transient* fault
# must not terminate it at all.
#
# The serve matrix (docs/SERVING.md) soaks the zserve network path the
# same way: a zirrun --listen server must survive misbehaving clients —
# a hard disconnect mid-frame, a slow reader forcing backpressure, a
# burst over the session cap — and still serve the next clean session.
#
# The fuse matrix (docs/FUSION.md) runs the same fault x restart grid
# with `--backend=fused`: the fused bytecode interpreter must compose
# with every robustness control exactly like the VM — same exit code in
# every cell.  The cgen matrix (docs/CODEGEN.md) repeats that grid with
# `--backend=native` (dlopen'd compiled regions), adds the loud-refusal
# cells (stage restart / checkpointing) and a warm-.so-cache
# byte-equality check.
#
# The migrate matrix (docs/ROBUSTNESS.md, "Checkpointing & migration")
# checks the zero-loss claims end to end through the CLI: a faulted run
# with --checkpoint must report the SAME consumed/emitted/first-bytes
# summary as the clean run (journal replay + state restore), per-stage
# restart (--restart-scope stage) must heal threaded pipelines, and a
# listening server with a session mid-stream must drain on SIGTERM.
#
# The crash matrix (docs/ROBUSTNESS.md, "Durable checkpoints & live
# migration") SIGKILLs a run mid-stream — no drain, no warning — then
# resumes from --ckpt-dir and byte-compares the output against a
# fault-free run, across {vm,fused} x {solo,--listen}.  It also drives
# a live session migration between two servers under neighbor load and
# a rejected migration (dead peer) that must roll back losslessly.
#
# Usage: scripts/soak.sh [fault|recovery|serve|fuse|cgen|migrate|crash|all]
#        (default: all); BUILD_DIR=build-tsan scripts/soak.sh
cd "$(dirname "$0")/.." || exit 1
BUILD="${BUILD_DIR:-build}"
BIN="$BUILD/examples/zirrun"
MODE="${1:-all}"
DEADLINE_S=30   # per-case wall-clock budget (timeout -> case failed)

case "$MODE" in
  fault|recovery|serve|fuse|cgen|migrate|crash|all) ;;
  *) echo "soak: unknown mode '$MODE'" \
          "(want fault|recovery|serve|fuse|cgen|migrate|crash|all)" >&2
     exit 2 ;;
esac

if [ ! -x "$BIN" ]; then
    echo "soak: $BIN not built" >&2
    exit 1
fi

pass=0
fail=0

# check EXPECTED_EXIT DESCRIPTION CMD...
check() {
    want="$1"; desc="$2"; shift 2
    timeout "$DEADLINE_S" "$@" > /dev/null 2>&1
    got=$?
    if [ "$got" -eq 124 ]; then
        echo "FAIL $desc: hung (killed after ${DEADLINE_S}s)"
        fail=$((fail + 1))
    elif [ "$got" -ne "$want" ]; then
        echo "FAIL $desc: exit $got, expected $want"
        fail=$((fail + 1))
    else
        pass=$((pass + 1))
    fi
}

fault_matrix() {
    # User-error paths (opt-independent).
    check 2 "missing file"  "$BIN" no_such_file.zir
    check 2 "bad fault spec" "$BIN" examples/zir/scrambler.zir \
            --inject-fault bogus@3
    check 2 "bad deadline"  "$BIN" examples/zir/pipeline.zir \
            --deadline-ms -5

    for prog in examples/zir/scrambler.zir examples/zir/pipeline.zir; do
        name=$(basename "$prog" .zir)
        for opt in none vect all; do
            tag="$name/$opt"
            common="$BIN $prog --opt $opt --bytes 4096"
            # Clean runs, plain and supervised.
            check 0 "$tag clean"            $common
            check 0 "$tag clean supervised" $common --deadline-ms 2000
            # Graceful faults: truncation and short reads end or thin
            # the stream but the run still completes.
            check 0 "$tag truncate"  $common --inject-fault truncate@4
            check 0 "$tag shortread" $common --inject-fault shortread@0:7
            # A short stall is just latency when unsupervised.
            check 0 "$tag slow" $common --inject-fault stall@2:200
            # A thrown fault is a stage failure both ways.
            check 3 "$tag throw"            $common --inject-fault throw@2
            check 3 "$tag throw supervised" $common --inject-fault throw@2 \
                    --deadline-ms 2000
            # A long stall under supervision trips the watchdog; the
            # case budget (not the 30 s stall) bounds the wall clock.
            check 4 "$tag stall supervised" $common \
                    --inject-fault stall@2:30000 --deadline-ms 250
        done
    done
}

# Recovery matrix: fault x restart-policy x {single-threaded scrambler,
# threaded pipeline}.  Transient faults heal (exit 0), absent/zero
# budgets fail fast (exit 3/4 — the pre-recovery behavior), and
# permanent faults exhaust the budget (exit 5).
recovery_matrix() {
    sc="$BIN examples/zir/scrambler.zir --bytes 4096"
    pl="$BIN examples/zir/pipeline.zir --bytes 4096"

    for opt in none all; do
        # --- single-threaded (scrambler has no |>>>|) -----------------
        tag="recovery/scrambler/$opt"
        c="$sc --opt $opt"
        check 0 "$tag transient throw heals" \
                $c --inject-fault throw@4 --restart 3 --backoff-ms 1
        check 3 "$tag throw without budget"  $c --inject-fault throw@4
        check 3 "$tag throw restart=0"       $c --inject-fault throw@4 \
                --restart 0
        check 5 "$tag permanent throw exhausts" \
                $c --inject-fault throw@4:0 --restart 2 --backoff-ms 1

        # --- threaded (pipeline splits at |>>>|) ----------------------
        tag="recovery/pipeline/$opt"
        c="$pl --opt $opt"
        check 0 "$tag transient throw heals" \
                $c --inject-fault throw@2 --restart 3 --backoff-ms 1
        check 3 "$tag throw without budget"  $c --inject-fault throw@2
        check 5 "$tag permanent throw exhausts" \
                $c --inject-fault throw@2:0 --restart 2 --backoff-ms 1
        # Watchdog-detected stalls restart too: the stall fires once,
        # the watchdog tears the attempt down, the retry runs past it.
        check 0 "$tag stall heals" $c --inject-fault stall@2:30000 \
                --deadline-ms 250 --restart 2 --backoff-ms 1
        check 4 "$tag stall without budget" $c \
                --inject-fault stall@2:30000 --deadline-ms 250
    done

    # Long-running serve loop: the crash costs one frame, not the loop.
    check 0 "recovery/serve transient throw" \
            $sc --opt none --serve=2000 --inject-fault throw@100 \
            --restart 3 --backoff-ms 1
    check 5 "recovery/serve permanent throw" \
            $sc --opt none --serve=2000 --inject-fault throw@100:0 \
            --restart 2 --backoff-ms 1
}

# Serve matrix: a long-lived zirrun --listen server against well- and
# badly-behaved zclient sessions.  Every case runs against ONE server
# instance — surviving the bad clients without disturbing later
# sessions is the property under test.
serve_matrix() {
    ZCLIENT="$BUILD/tools/zclient"
    if [ ! -x "$ZCLIENT" ]; then
        echo "FAIL serve: $ZCLIENT not built"
        fail=$((fail + 1))
        return
    fi

    srv_log="${TMPDIR:-/tmp}/ziria_soak_serve.$$.log"
    "$BIN" examples/zir/scrambler.zir --listen=0 --workers 2 \
        --max-sessions 4 > "$srv_log" 2>&1 &
    srv_pid=$!

    # The server prints "listening on port N" once bound (port 0 lets
    # the kernel pick, so parallel soaks never collide).
    port=""
    tries=0
    while [ "$tries" -lt 100 ]; do
        port=$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' \
               "$srv_log")
        [ -n "$port" ] && break
        if ! kill -0 "$srv_pid" 2>/dev/null; then
            break
        fi
        tries=$((tries + 1))
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "FAIL serve: server never reported its port"
        cat "$srv_log"
        kill "$srv_pid" 2>/dev/null
        rm -f "$srv_log"
        fail=$((fail + 1))
        return
    fi

    zc="$ZCLIENT --port $port --quiet"

    # Clean streaming, small and multi-frame.
    check 0 "serve basic stream"  $zc --frames 4
    check 0 "serve longer stream" $zc --frames 32 --elems-per-frame 512

    # A client that hard-closes mid-frame is evicted; the server keeps
    # running and the next clean session is untouched.
    check 0 "serve client abort mid-frame" $zc --frames 8 --abort-midframe
    check 0 "serve survives the abort"     $zc --frames 4

    # A deliberately slow reader forces per-session backpressure (queue
    # fills -> reads pause -> TCP pushes back); the stream must still
    # complete, just slower.
    check 0 "serve slow-reader backpressure" \
            $zc --frames 8 --slow-read-ms 5

    # Admission control: fill all 4 slots with held-open sessions, then
    # the fifth connection must be refused with an Error frame (exit 3).
    hold_pids=""
    for _ in 1 2 3 4; do
        $zc --frames 1 --hold-ms 3000 > /dev/null 2>&1 &
        hold_pids="$hold_pids $!"
    done
    sleep 0.5
    check 3 "serve session-cap reject" $zc --frames 1
    for hp in $hold_pids; do
        wait "$hp"
    done
    # The cap is per-moment, not a cumulative quota: slots freed above
    # admit new sessions again.
    check 0 "serve admits after release" $zc --frames 4

    # Orderly shutdown: SIGTERM drains and exits 0.
    kill -TERM "$srv_pid" 2>/dev/null
    wait "$srv_pid"
    srv_exit=$?
    if [ "$srv_exit" -ne 0 ]; then
        echo "FAIL serve shutdown: server exit $srv_exit, expected 0"
        cat "$srv_log"
        fail=$((fail + 1))
    else
        pass=$((pass + 1))
    fi
    rm -f "$srv_log"
}

# Fuse matrix: {backend=fused} x {fault} x {restart} x {opt}.  Every
# cell must exit with the same documented code as its VM twin above —
# the fused backend sits behind the ExecNode interface, so supervision,
# fault injection, restart, and the serve loop see no difference.
fuse_matrix() {
    for prog in examples/zir/scrambler.zir examples/zir/pipeline.zir; do
        name=$(basename "$prog" .zir)
        for opt in none all; do
            tag="fuse/$name/$opt"
            c="$BIN $prog --opt $opt --backend=fused --bytes 4096"
            check 0 "$tag clean"     $c
            check 0 "$tag truncate"  $c --inject-fault truncate@4
            check 0 "$tag shortread" $c --inject-fault shortread@0:7
            check 3 "$tag throw"     $c --inject-fault throw@2
            check 0 "$tag transient throw heals" \
                    $c --inject-fault throw@4 --restart 3 --backoff-ms 1
            check 5 "$tag permanent throw exhausts" \
                    $c --inject-fault throw@4:0 --restart 2 --backoff-ms 1
        done
    done

    # Threaded supervision: pipeline.zir splits at |>>>|, so each fused
    # partition runs under the stall watchdog and restart supervisor.
    c="$BIN examples/zir/pipeline.zir --opt none --backend=fused \
       --bytes 4096"
    check 0 "fuse/pipeline supervised clean" $c --deadline-ms 2000
    check 4 "fuse/pipeline stall supervised" $c \
            --inject-fault stall@2:30000 --deadline-ms 250
    check 0 "fuse/pipeline stall heals" $c --inject-fault stall@2:30000 \
            --deadline-ms 250 --restart 2 --backoff-ms 1

    # Long-running serve loop on the fused backend: a transient crash
    # costs one frame, not the loop (reset() re-arm under restart).
    check 0 "fuse/serve transient throw" \
            $BIN examples/zir/scrambler.zir --opt none --backend=fused \
            --serve=2000 --inject-fault throw@100 --restart 3 \
            --backoff-ms 1
}

# Cgen matrix: {backend=native} x {fault} x {restart} x {serve}.  The
# native backend dlopens compiled regions behind the same ExecNode seam
# (docs/CODEGEN.md), so every robustness cell must exit exactly like
# its VM/fused twins; the refusal cells pin the loud compile-time
# errors for the unsupported combinations, and the warm-cache cell
# proves a second run (served from the .so cache) emits the same
# summary as the cold one.  Runs against a private cache dir so the
# matrix is deterministic and leaves nothing behind.
cgen_matrix() {
    cache=$(mktemp -d /tmp/ziria-soak-cgen.XXXXXX)

    for prog in examples/zir/scrambler.zir examples/zir/pipeline.zir; do
        name=$(basename "$prog" .zir)
        for opt in none all; do
            tag="cgen/$name/$opt"
            c="$BIN $prog --opt $opt --backend=native \
               --cgen-cache-dir $cache --bytes 4096"
            check 0 "$tag clean"     $c
            check 0 "$tag truncate"  $c --inject-fault truncate@4
            check 0 "$tag shortread" $c --inject-fault shortread@0:7
            check 3 "$tag throw"     $c --inject-fault throw@2
            check 0 "$tag transient throw heals" \
                    $c --inject-fault throw@4 --restart 3 --backoff-ms 1
            check 5 "$tag permanent throw exhausts" \
                    $c --inject-fault throw@4:0 --restart 2 --backoff-ms 1
        done
    done

    # Threaded supervision over per-partition native regions.
    c="$BIN examples/zir/pipeline.zir --opt none --backend=native \
       --cgen-cache-dir $cache --bytes 4096"
    check 0 "cgen/pipeline supervised clean" $c --deadline-ms 2000
    check 4 "cgen/pipeline stall supervised" $c \
            --inject-fault stall@2:30000 --deadline-ms 250
    check 0 "cgen/pipeline stall heals" $c --inject-fault stall@2:30000 \
            --deadline-ms 250 --restart 2 --backoff-ms 1

    # Long-running serve loop on compiled regions: a transient crash
    # costs one frame, not the loop (reset() re-arm under restart).
    check 0 "cgen/serve transient throw" \
            $BIN examples/zir/scrambler.zir --opt none --backend=native \
            --cgen-cache-dir "$cache" --serve=2000 \
            --inject-fault throw@100 --restart 3 --backoff-ms 1

    # Loud refusals (docs/ROBUSTNESS.md support matrix): both are user
    # errors at compile time, never silent fallbacks.
    check 2 "cgen/refuse stage restart" \
            $BIN examples/zir/pipeline.zir --backend=native --bytes 4096 \
            --restart 2 --restart-scope stage
    check 2 "cgen/refuse checkpoint" \
            $BIN examples/zir/scrambler.zir --backend=native --bytes 4096 \
            --restart 1 --checkpoint=64
    ckd=$(mktemp -d /tmp/ziria-soak-cgen-ckd.XXXXXX)
    check 2 "cgen/refuse ckpt-dir" \
            $BIN examples/zir/scrambler.zir --backend=native --bytes 4096 \
            --restart 1 --checkpoint=64 --ckpt-dir "$ckd"
    rm -rf "$ckd"

    # Warm cache: the second clean run must be served from the .so
    # cache and print the identical output summary.
    sc="$BIN examples/zir/scrambler.zir --opt none --backend=native \
        --cgen-cache-dir $cache --bytes 4096"
    a=$(timeout "$DEADLINE_S" sh -c "$sc" 2>/dev/null | grep '^consumed')
    b=$(timeout "$DEADLINE_S" sh -c "$sc" 2>/dev/null | grep '^consumed')
    if [ -z "$a" ] || [ -z "$b" ] || [ "$a" != "$b" ]; then
        echo "FAIL cgen/warm cache: cold and warm summaries differ"
        echo "  cold: $a"
        echo "  warm: $b"
        fail=$((fail + 1))
    else
        pass=$((pass + 1))
    fi

    rm -rf "$cache"
}

# Migrate matrix: checkpointed restart byte-equality, per-stage restart,
# and SIGTERM drain with a session mid-stream.
migrate_matrix() {
    sc="$BIN examples/zir/scrambler.zir --bytes 4096"
    pl="$BIN examples/zir/pipeline.zir --bytes 4096"

    # check_same DESC CLEAN_CMD FAULTED_CMD: both must exit 0 and print
    # identical "consumed ... emitted ...; first bytes: ..." summaries —
    # the CLI-visible form of the zero-loss restart guarantee.
    check_same() {
        desc="$1"; cleancmd="$2"; faultcmd="$3"
        a=$(timeout "$DEADLINE_S" sh -c "$cleancmd" 2>/dev/null \
            | grep '^consumed')
        b=$(timeout "$DEADLINE_S" sh -c "$faultcmd" 2>/dev/null \
            | grep '^consumed')
        if [ -z "$a" ] || [ -z "$b" ]; then
            echo "FAIL $desc: a run did not complete"
            fail=$((fail + 1))
        elif [ "$a" != "$b" ]; then
            echo "FAIL $desc: checkpointed run diverged from clean run"
            echo "  clean:        $a"
            echo "  checkpointed: $b"
            fail=$((fail + 1))
        else
            pass=$((pass + 1))
        fi
    }

    for backend in vm fused; do
        for opt in none all; do
            tag="migrate/scrambler/$backend/$opt"
            c="$sc --opt $opt --backend=$backend"
            # Checkpointing a clean run must not perturb its output.
            check_same "$tag ckpt clean identity" "$c" "$c --checkpoint=64"
            # The headline claim: a faulted, checkpoint-restarted run is
            # byte-identical to the uninterrupted run.
            check_same "$tag ckpt restart identity" "$c" \
                "$c --inject-fault throw@7 --restart 3 --backoff-ms 1 \
                 --checkpoint=64"
            # Two faults in one run still converge.
            check_same "$tag ckpt double-fault identity" "$c" \
                "$c --inject-fault throw@7:2 --restart 3 --backoff-ms 1 \
                 --checkpoint=32"
            # Budget exhaustion still reports exit 5 with checkpoints on.
            check 5 "$tag ckpt permanent exhausts" \
                    $c --inject-fault throw@7:0 --restart 2 \
                    --backoff-ms 1 --checkpoint=64
        done
    done

    # Per-stage restart on the threaded pipeline (splits at |>>>|):
    # transient faults heal without tearing down healthy stages,
    # permanent ones exhaust the budget exactly like pipeline scope.
    for opt in none all; do
        tag="migrate/pipeline/stage-scope/$opt"
        c="$pl --opt $opt --restart-scope stage"
        check 0 "$tag clean"            $c --restart 3 --backoff-ms 1
        check 0 "$tag transient heals"  $c --inject-fault throw@2 \
                --restart 3 --backoff-ms 1
        check 5 "$tag permanent exhausts" $c --inject-fault throw@2:0 \
                --restart 2 --backoff-ms 1
    done

    # SIGTERM drain with a session mid-stream: the server must
    # checkpoint it, report the drain, and exit 0 within the timeout.
    ZCLIENT="$BUILD/tools/zclient"
    if [ ! -x "$ZCLIENT" ]; then
        echo "FAIL migrate: $ZCLIENT not built"
        fail=$((fail + 1))
        return
    fi
    srv_log="${TMPDIR:-/tmp}/ziria_soak_migrate.$$.log"
    "$BIN" examples/zir/scrambler.zir --listen=0 --workers 2 \
        > "$srv_log" 2>&1 &
    srv_pid=$!
    port=""
    tries=0
    while [ "$tries" -lt 100 ]; do
        port=$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' \
               "$srv_log")
        [ -n "$port" ] && break
        kill -0 "$srv_pid" 2>/dev/null || break
        tries=$((tries + 1))
        sleep 0.1
    done
    if [ -z "$port" ]; then
        echo "FAIL migrate drain: server never reported its port"
        cat "$srv_log"
        kill "$srv_pid" 2>/dev/null
        rm -f "$srv_log"
        fail=$((fail + 1))
        return
    fi
    # Park a session mid-stream (data sent, End held back), then TERM.
    "$ZCLIENT" --port "$port" --quiet --frames 2 --hold-ms 5000 \
        > /dev/null 2>&1 &
    cli_pid=$!
    sleep 0.5
    kill -TERM "$srv_pid" 2>/dev/null
    wait "$srv_pid"
    srv_exit=$?
    kill "$cli_pid" 2>/dev/null
    wait "$cli_pid" 2>/dev/null
    if [ "$srv_exit" -ne 0 ]; then
        echo "FAIL migrate drain: server exit $srv_exit, expected 0"
        cat "$srv_log"
        fail=$((fail + 1))
    elif ! grep -q '^draining:' "$srv_log"; then
        echo "FAIL migrate drain: no drain banner in the server log"
        cat "$srv_log"
        fail=$((fail + 1))
    else
        pass=$((pass + 1))
    fi
    rm -f "$srv_log"
}

# Crash matrix: kill -9 mid-stream, resume from the durable checkpoint
# store, byte-compare against the fault-free output.  Timing notes: a
# 64 MiB solo scrambler run takes >1 s on this class of machine, and a
# 256-frame keyed session >0.5 s, so a kill at half that lands safely
# mid-stream; if a fast machine finishes first the resume leg degrades
# to a clean re-run and the byte comparison still holds.
crash_matrix() {
    ZCLIENT="$BUILD/tools/zclient"
    if [ ! -x "$ZCLIENT" ]; then
        echo "FAIL crash: $ZCLIENT not built"
        fail=$((fail + 1))
        return
    fi
    work="${TMPDIR:-/tmp}/ziria_soak_crash.$$"
    mkdir -p "$work"

    # --- solo legs: {vm,fused} ------------------------------------
    for backend in vm fused; do
        tag="crash/solo/$backend"
        c="$BIN examples/zir/scrambler.zir --backend=$backend \
           --bytes 67108864"
        ref="$work/ref_$backend.bin"
        out="$work/out_$backend.bin"
        ck="$work/ck_$backend"
        if ! timeout "$DEADLINE_S" $c --out "$ref" > /dev/null 2>&1; then
            echo "FAIL $tag: reference run failed"
            fail=$((fail + 1))
            continue
        fi
        $c --ckpt-dir "$ck" --checkpoint=65536 --out "$out" \
            > /dev/null 2>&1 &
        victim=$!
        sleep 0.5
        kill -9 "$victim" 2>/dev/null
        wait "$victim" 2>/dev/null
        log="$work/resume_$backend.log"
        if ! timeout "$DEADLINE_S" $c --ckpt-dir "$ck" \
                --checkpoint=65536 --out "$out" > "$log" 2>&1; then
            echo "FAIL $tag: resume run failed"
            cat "$log"
            fail=$((fail + 1))
        elif ! grep -q '^resumed from durable checkpoint' "$log"; then
            echo "FAIL $tag: no resume banner (run never checkpointed?)"
            cat "$log"
            fail=$((fail + 1))
        elif ! cmp -s "$ref" "$out"; then
            echo "FAIL $tag: resumed output diverged from fault-free run"
            fail=$((fail + 1))
        else
            pass=$((pass + 1))
        fi
    done

    # Helper: start a --listen server and wait for its bound port.
    # $1 = logfile, rest = extra zirrun flags.  Sets srv_pid and
    # srv_port (srv_port empty on failure).
    start_srv() {
        slog="$1"; shift
        "$BIN" examples/zir/scrambler.zir --workers 2 "$@" \
            > "$slog" 2>&1 &
        srv_pid=$!
        srv_port=""
        t=0
        while [ "$t" -lt 100 ]; do
            srv_port=$(sed -n \
                's/^listening on port \([0-9][0-9]*\)$/\1/p' "$slog")
            [ -n "$srv_port" ] && break
            kill -0 "$srv_pid" 2>/dev/null || break
            t=$((t + 1))
            sleep 0.1
        done
    }

    # Fault-free keyed-session reference: the session-mode client
    # generates its input deterministically from --seed, so one clean
    # run against any healthy server is the byte-identity baseline.
    ref="$work/ref_client.bin"
    srv_log="$work/ref_srv.log"
    start_srv "$srv_log" --listen=0
    if [ -z "$srv_port" ] || \
       ! timeout "$DEADLINE_S" "$ZCLIENT" --port "$srv_port" --quiet \
            --frames 256 --elems-per-frame 4096 --out "$ref" \
            > /dev/null 2>&1; then
        echo "FAIL crash: client reference run failed"
        cat "$srv_log"
        kill "$srv_pid" 2>/dev/null
        wait "$srv_pid" 2>/dev/null
        rm -rf "$work"
        fail=$((fail + 1))
        return
    fi
    kill -TERM "$srv_pid" 2>/dev/null
    wait "$srv_pid" 2>/dev/null

    # --- serve leg: SIGKILL the server, restart on the same port and
    # --- ckpt-dir, client auto-reconnects and resumes ---------------
    tag="crash/serve"
    port=$(( ($$ % 20000) + 40000 ))
    ck="$work/ck_serve"
    srv_log="$work/crash_srv.log"
    start_srv "$srv_log" --listen=$port --ckpt-dir "$ck" \
        --ckpt-interval-ms 10
    if [ -z "$srv_port" ]; then
        echo "FAIL $tag: server never reported its port"
        cat "$srv_log"
        kill "$srv_pid" 2>/dev/null
        fail=$((fail + 1))
    else
        out="$work/out_serve.bin"
        timeout "$DEADLINE_S" "$ZCLIENT" --port "$port" --quiet \
            --session crash1 --retry-ms 15000 --frames 256 \
            --elems-per-frame 4096 --out "$out" > /dev/null 2>&1 &
        cli_pid=$!
        sleep 0.25
        kill -9 "$srv_pid" 2>/dev/null
        wait "$srv_pid" 2>/dev/null
        srv_log2="$work/crash_srv2.log"
        start_srv "$srv_log2" --listen=$port --ckpt-dir "$ck" \
            --ckpt-interval-ms 10
        p2=$srv_port
        wait "$cli_pid"
        cli_exit=$?
        kill -TERM "$srv_pid" 2>/dev/null
        wait "$srv_pid" 2>/dev/null
        if [ -z "$p2" ]; then
            echo "FAIL $tag: restarted server never reported its port"
            cat "$srv_log2"
            fail=$((fail + 1))
        elif [ "$cli_exit" -ne 0 ]; then
            echo "FAIL $tag: client exit $cli_exit, expected 0"
            fail=$((fail + 1))
        elif ! cmp -s "$ref" "$out"; then
            echo "FAIL $tag: resumed session diverged from clean run"
            fail=$((fail + 1))
        else
            pass=$((pass + 1))
        fi
    fi

    # --- live migration under load ---------------------------------
    tag="crash/live-migrate"
    logA="$work/migA.log"; logB="$work/migB.log"
    start_srv "$logA" --listen=0
    pA=$srv_port; sA=$srv_pid
    start_srv "$logB" --listen=0
    pB=$srv_port; sB=$srv_pid
    if [ -z "$pA" ] || [ -z "$pB" ]; then
        echo "FAIL $tag: a server never reported its port"
        kill "$sA" "$sB" 2>/dev/null
        fail=$((fail + 1))
    else
        nbr="$work/nbr.bin"; out="$work/out_mig.bin"
        timeout "$DEADLINE_S" "$ZCLIENT" --port "$pA" --quiet \
            --frames 256 --elems-per-frame 4096 --out "$nbr" \
            > /dev/null 2>&1 &
        nbr_pid=$!
        timeout "$DEADLINE_S" "$ZCLIENT" --port "$pA" --quiet \
            --session mig1 --frames 256 --elems-per-frame 4096 \
            --out "$out" > /dev/null 2>&1 &
        cli_pid=$!
        sleep 0.15
        "$ZCLIENT" --port "$pA" --quiet --migrate mig1 \
            --peer-host 127.0.0.1 --peer-port "$pB" > /dev/null 2>&1
        mig_rc=$?
        wait "$cli_pid"; cli_exit=$?
        wait "$nbr_pid"; nbr_exit=$?
        kill -TERM "$sA" "$sB" 2>/dev/null
        wait "$sA" "$sB" 2>/dev/null
        if [ "$mig_rc" -ne 0 ]; then
            echo "FAIL $tag: migrate operator exit $mig_rc, expected 0"
            fail=$((fail + 1))
        elif [ "$cli_exit" -ne 0 ] || ! cmp -s "$ref" "$out"; then
            echo "FAIL $tag: migrated session lost or corrupted data"
            fail=$((fail + 1))
        elif [ "$nbr_exit" -ne 0 ] || ! cmp -s "$ref" "$nbr"; then
            echo "FAIL $tag: neighbor session was disturbed"
            fail=$((fail + 1))
        else
            pass=$((pass + 1))
        fi
    fi

    # --- rejected migration rolls back losslessly -------------------
    tag="crash/migrate-rollback"
    logA="$work/rollA.log"
    start_srv "$logA" --listen=0
    pA=$srv_port; sA=$srv_pid
    if [ -z "$pA" ]; then
        echo "FAIL $tag: server never reported its port"
        kill "$sA" 2>/dev/null
        fail=$((fail + 1))
    else
        out="$work/out_roll.bin"
        timeout "$DEADLINE_S" "$ZCLIENT" --port "$pA" --quiet \
            --session roll1 --frames 256 --elems-per-frame 4096 \
            --out "$out" > /dev/null 2>&1 &
        cli_pid=$!
        sleep 0.15
        "$ZCLIENT" --port "$pA" --quiet --migrate roll1 \
            --peer-host 127.0.0.1 --peer-port 1 > /dev/null 2>&1
        mig_rc=$?
        wait "$cli_pid"; cli_exit=$?
        kill -TERM "$sA" 2>/dev/null
        wait "$sA" 2>/dev/null
        if [ "$mig_rc" -ne 3 ]; then
            echo "FAIL $tag: migrate exit $mig_rc, expected 3 (rejected)"
            fail=$((fail + 1))
        elif [ "$cli_exit" -ne 0 ] || ! cmp -s "$ref" "$out"; then
            echo "FAIL $tag: session lost data after rejected migration"
            fail=$((fail + 1))
        else
            pass=$((pass + 1))
        fi
    fi

    rm -rf "$work"
}

case "$MODE" in
  fault)    fault_matrix ;;
  recovery) recovery_matrix ;;
  serve)    serve_matrix ;;
  fuse)     fuse_matrix ;;
  cgen)     cgen_matrix ;;
  migrate)  migrate_matrix ;;
  crash)    crash_matrix ;;
  all)      fault_matrix; recovery_matrix; serve_matrix; fuse_matrix;
            cgen_matrix; migrate_matrix; crash_matrix ;;
esac

echo "soak($MODE): $pass passed, $fail failed"
[ "$fail" -eq 0 ]
