#!/bin/sh
# Fault-matrix soak: run zirrun across {fault spec} x {opt level} x
# {plain, supervised} and check each case exits with the documented
# code (0 ok, 2 user error, 3 stage failure, 4 stall timeout, 5 restart
# budget exhausted) within a wall-clock deadline.  The property under
# test is the robustness layer's core claim: no injected fault may hang
# or crash the process — every run terminates promptly with a
# structured outcome, and with a restart policy a *transient* fault
# must not terminate it at all.
#
# Usage: scripts/soak.sh [fault|recovery|all]   (default: all)
#        BUILD_DIR=build-tsan scripts/soak.sh
cd "$(dirname "$0")/.." || exit 1
BUILD="${BUILD_DIR:-build}"
BIN="$BUILD/examples/zirrun"
MODE="${1:-all}"
DEADLINE_S=30   # per-case wall-clock budget (timeout -> case failed)

case "$MODE" in
  fault|recovery|all) ;;
  *) echo "soak: unknown mode '$MODE' (want fault|recovery|all)" >&2
     exit 2 ;;
esac

if [ ! -x "$BIN" ]; then
    echo "soak: $BIN not built" >&2
    exit 1
fi

pass=0
fail=0

# check EXPECTED_EXIT DESCRIPTION CMD...
check() {
    want="$1"; desc="$2"; shift 2
    timeout "$DEADLINE_S" "$@" > /dev/null 2>&1
    got=$?
    if [ "$got" -eq 124 ]; then
        echo "FAIL $desc: hung (killed after ${DEADLINE_S}s)"
        fail=$((fail + 1))
    elif [ "$got" -ne "$want" ]; then
        echo "FAIL $desc: exit $got, expected $want"
        fail=$((fail + 1))
    else
        pass=$((pass + 1))
    fi
}

fault_matrix() {
    # User-error paths (opt-independent).
    check 2 "missing file"  "$BIN" no_such_file.zir
    check 2 "bad fault spec" "$BIN" examples/zir/scrambler.zir \
            --inject-fault bogus@3
    check 2 "bad deadline"  "$BIN" examples/zir/pipeline.zir \
            --deadline-ms -5

    for prog in examples/zir/scrambler.zir examples/zir/pipeline.zir; do
        name=$(basename "$prog" .zir)
        for opt in none vect all; do
            tag="$name/$opt"
            common="$BIN $prog --opt $opt --bytes 4096"
            # Clean runs, plain and supervised.
            check 0 "$tag clean"            $common
            check 0 "$tag clean supervised" $common --deadline-ms 2000
            # Graceful faults: truncation and short reads end or thin
            # the stream but the run still completes.
            check 0 "$tag truncate"  $common --inject-fault truncate@4
            check 0 "$tag shortread" $common --inject-fault shortread@0:7
            # A short stall is just latency when unsupervised.
            check 0 "$tag slow" $common --inject-fault stall@2:200
            # A thrown fault is a stage failure both ways.
            check 3 "$tag throw"            $common --inject-fault throw@2
            check 3 "$tag throw supervised" $common --inject-fault throw@2 \
                    --deadline-ms 2000
            # A long stall under supervision trips the watchdog; the
            # case budget (not the 30 s stall) bounds the wall clock.
            check 4 "$tag stall supervised" $common \
                    --inject-fault stall@2:30000 --deadline-ms 250
        done
    done
}

# Recovery matrix: fault x restart-policy x {single-threaded scrambler,
# threaded pipeline}.  Transient faults heal (exit 0), absent/zero
# budgets fail fast (exit 3/4 — the pre-recovery behavior), and
# permanent faults exhaust the budget (exit 5).
recovery_matrix() {
    sc="$BIN examples/zir/scrambler.zir --bytes 4096"
    pl="$BIN examples/zir/pipeline.zir --bytes 4096"

    for opt in none all; do
        # --- single-threaded (scrambler has no |>>>|) -----------------
        tag="recovery/scrambler/$opt"
        c="$sc --opt $opt"
        check 0 "$tag transient throw heals" \
                $c --inject-fault throw@4 --restart 3 --backoff-ms 1
        check 3 "$tag throw without budget"  $c --inject-fault throw@4
        check 3 "$tag throw restart=0"       $c --inject-fault throw@4 \
                --restart 0
        check 5 "$tag permanent throw exhausts" \
                $c --inject-fault throw@4:0 --restart 2 --backoff-ms 1

        # --- threaded (pipeline splits at |>>>|) ----------------------
        tag="recovery/pipeline/$opt"
        c="$pl --opt $opt"
        check 0 "$tag transient throw heals" \
                $c --inject-fault throw@2 --restart 3 --backoff-ms 1
        check 3 "$tag throw without budget"  $c --inject-fault throw@2
        check 5 "$tag permanent throw exhausts" \
                $c --inject-fault throw@2:0 --restart 2 --backoff-ms 1
        # Watchdog-detected stalls restart too: the stall fires once,
        # the watchdog tears the attempt down, the retry runs past it.
        check 0 "$tag stall heals" $c --inject-fault stall@2:30000 \
                --deadline-ms 250 --restart 2 --backoff-ms 1
        check 4 "$tag stall without budget" $c \
                --inject-fault stall@2:30000 --deadline-ms 250
    done

    # Long-running serve loop: the crash costs one frame, not the loop.
    check 0 "recovery/serve transient throw" \
            $sc --opt none --serve=2000 --inject-fault throw@100 \
            --restart 3 --backoff-ms 1
    check 5 "recovery/serve permanent throw" \
            $sc --opt none --serve=2000 --inject-fault throw@100:0 \
            --restart 2 --backoff-ms 1
}

case "$MODE" in
  fault)    fault_matrix ;;
  recovery) recovery_matrix ;;
  all)      fault_matrix; recovery_matrix ;;
esac

echo "soak($MODE): $pass passed, $fail failed"
[ "$fail" -eq 0 ]
