/**
 * @file
 * Boxed runtime values.
 *
 * The execution engine moves raw bytes; `Value` is the boxed form used for
 * literals in the AST, control values surfaced to the host, and tests.  A
 * Value is a type plus the flat byte record described in type.h.
 */
#ifndef ZIRIA_ZTYPE_VALUE_H
#define ZIRIA_ZTYPE_VALUE_H

#include <complex>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ztype/type.h"

namespace ziria {

/** Fixed-point complex sample, 16-bit I/Q (the Sora wire format). */
struct Complex16
{
    int16_t re = 0;
    int16_t im = 0;

    bool operator==(const Complex16&) const = default;
};

/** Fixed-point complex sample, 32-bit I/Q. */
struct Complex32
{
    int32_t re = 0;
    int32_t im = 0;

    bool operator==(const Complex32&) const = default;
};

static_assert(sizeof(Complex16) == 4);
static_assert(sizeof(Complex32) == 8);

/** A typed, boxed Ziria value. */
class Value
{
  public:
    Value() : type_(Type::unit()) {}

    Value(TypePtr type, std::vector<uint8_t> bytes)
        : type_(std::move(type)), bytes_(std::move(bytes))
    {
    }

    /** Zero-initialized value of @p type. */
    static Value zeroOf(TypePtr type);

    // Scalar constructors.
    static Value unit();
    static Value bit(uint8_t b);
    static Value boolean(bool b);
    static Value i8(int8_t v);
    static Value i16(int16_t v);
    static Value i32(int32_t v);
    static Value i64(int64_t v);
    static Value real(double v);
    static Value c16(int16_t re, int16_t im);
    static Value c32(int32_t re, int32_t im);

    /** Integer value of the given integral type. */
    static Value intOf(const TypePtr& type, int64_t v);

    /** Array of values (all of the same type). */
    static Value arrayOf(const TypePtr& elem, const std::vector<Value>& xs);

    /** Array of bits from 0/1 bytes. */
    static Value bitArray(const std::vector<uint8_t>& bits);

    const TypePtr& type() const { return type_; }
    const std::vector<uint8_t>& bytes() const { return bytes_; }
    uint8_t* data() { return bytes_.data(); }
    const uint8_t* data() const { return bytes_.data(); }
    size_t size() const { return bytes_.size(); }

    /** Read back an integral scalar (sign-extended). */
    int64_t asInt() const;

    /** Read back a double. */
    double asDouble() const;

    /** Read back a complex16. */
    Complex16 asC16() const;

    /** Read a struct field as a boxed value. */
    Value field(const std::string& name) const;

    /** Read array element @p i as a boxed value. */
    Value at(int i) const;

    /** Human-readable rendering. */
    std::string show() const;

    bool
    operator==(const Value& other) const
    {
        return typeEq(type_, other.type_) && bytes_ == other.bytes_;
    }

  private:
    TypePtr type_;
    std::vector<uint8_t> bytes_;
};

/** Read an integral scalar of kind @p k from raw bytes (sign-extended). */
int64_t readIntRaw(TypeKind k, const uint8_t* p);

/** Write an integral scalar of kind @p k to raw bytes (truncating). */
void writeIntRaw(TypeKind k, uint8_t* p, int64_t v);

} // namespace ziria

#endif // ZIRIA_ZTYPE_VALUE_H
