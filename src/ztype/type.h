/**
 * @file
 * Ziria value types and computation types.
 *
 * Value types mirror the paper's Section 2.1: bit, integers and complex
 * numbers of various widths, double, bool, unit, fixed-length arrays and
 * structs.  Computation types are `Zr T a b` (stream transformer) and
 * `Zr (C c) a b` (stream computer returning a control value of type c).
 *
 * Runtime layout: every value is a flat byte record with no padding.
 * Scalars use little-endian native encodings; `bit` and `bool` occupy one
 * byte (0/1); `complex16` is two int16 (re, im); arrays are contiguous
 * elements; structs are concatenated fields in declaration order.
 */
#ifndef ZIRIA_ZTYPE_TYPE_H
#define ZIRIA_ZTYPE_TYPE_H

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ziria {

class Type;
using TypePtr = std::shared_ptr<const Type>;

/** Discriminator for value types. */
enum class TypeKind {
    Unit,
    Bool,
    Bit,
    Int8,
    Int16,
    Int32,
    Int64,
    Double,
    Complex16,
    Complex32,
    Array,
    Struct,
};

/** A Ziria value type (immutable, shared). */
class Type : public std::enable_shared_from_this<Type>
{
  public:
    // Scalar constructors (interned singletons).
    static TypePtr unit();
    static TypePtr boolean();
    static TypePtr bit();
    static TypePtr int8();
    static TypePtr int16();
    static TypePtr int32();
    static TypePtr int64();
    static TypePtr real();
    static TypePtr complex16();
    static TypePtr complex32();

    /** Fixed-length array type. */
    static TypePtr array(TypePtr elem, int len);

    /** Struct type with named fields. */
    static TypePtr strct(std::string name,
                         std::vector<std::pair<std::string, TypePtr>> fields);

    TypeKind kind() const { return kind_; }

    bool isScalar() const { return kind_ != TypeKind::Array &&
                                   kind_ != TypeKind::Struct; }
    bool isArray() const { return kind_ == TypeKind::Array; }
    bool isStruct() const { return kind_ == TypeKind::Struct; }
    bool isUnit() const { return kind_ == TypeKind::Unit; }
    bool isBit() const { return kind_ == TypeKind::Bit; }
    bool isBool() const { return kind_ == TypeKind::Bool; }
    bool isDouble() const { return kind_ == TypeKind::Double; }

    bool
    isIntegral() const
    {
        switch (kind_) {
          case TypeKind::Bit:
          case TypeKind::Bool:
          case TypeKind::Int8:
          case TypeKind::Int16:
          case TypeKind::Int32:
          case TypeKind::Int64:
            return true;
          default:
            return false;
        }
    }

    bool
    isComplex() const
    {
        return kind_ == TypeKind::Complex16 || kind_ == TypeKind::Complex32;
    }

    bool isNumeric() const { return isIntegral() || isDouble() ||
                                    isComplex(); }

    /** Array element type (panics if not an array). */
    const TypePtr& elem() const;

    /** Array length (panics if not an array). */
    int len() const;

    /** Struct fields (panics if not a struct). */
    const std::vector<std::pair<std::string, TypePtr>>& fields() const;

    /** Struct name. */
    const std::string& structName() const;

    /** Byte offset of a struct field; -1 if not found. */
    long fieldOffset(const std::string& field) const;

    /** Type of a struct field (panics if not found). */
    TypePtr fieldType(const std::string& field) const;

    /** Flat byte width of the runtime representation. */
    size_t byteWidth() const { return byteWidth_; }

    /**
     * Number of semantic bits in the value, for LUT key sizing: bit/bool
     * count as 1, int8 as 8, complex16 as 32, arrays/structs sum their
     * elements.  Doubles are not LUT-able and report -1.
     */
    long bitWidth() const;

    /** Structural equality. */
    bool equals(const Type& other) const;

    /** Human-readable form, e.g. `arr[8] bit`. */
    std::string show() const;

  protected:
    explicit Type(TypeKind kind);

  private:
    TypeKind kind_;
    TypePtr elem_;
    int len_ = 0;
    std::string structName_;
    std::vector<std::pair<std::string, TypePtr>> fields_;
    size_t byteWidth_ = 0;
};

inline bool
operator==(const TypePtr& a, const Type& b)
{
    return a && a->equals(b);
}

/** Structural equality on shared types (null == null). */
bool typeEq(const TypePtr& a, const TypePtr& b);

/**
 * The stream signature of a computation: whether it is a computer and if so
 * its control-value type, plus its input and output element types.  A null
 * in/out type means "polymorphic / not yet constrained" (e.g. `return e`
 * places no constraint on the streams).
 */
struct CompType
{
    bool isComputer = false;
    TypePtr ctrl;  ///< control value type (computers only)
    TypePtr in;    ///< input element type; null = unconstrained
    TypePtr out;   ///< output element type; null = unconstrained

    std::string show() const;
};

} // namespace ziria

#endif // ZIRIA_ZTYPE_TYPE_H
