#include "ztype/value.h"

#include <sstream>

#include "support/panic.h"

namespace ziria {

int64_t
readIntRaw(TypeKind k, const uint8_t* p)
{
    switch (k) {
      case TypeKind::Bit:
      case TypeKind::Bool:
        return p[0];
      case TypeKind::Int8: {
        int8_t v;
        std::memcpy(&v, p, 1);
        return v;
      }
      case TypeKind::Int16: {
        int16_t v;
        std::memcpy(&v, p, 2);
        return v;
      }
      case TypeKind::Int32: {
        int32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case TypeKind::Int64: {
        int64_t v;
        std::memcpy(&v, p, 8);
        return v;
      }
      default:
        panic("readIntRaw: not an integral type");
    }
}

void
writeIntRaw(TypeKind k, uint8_t* p, int64_t v)
{
    switch (k) {
      case TypeKind::Bit:
      case TypeKind::Bool:
        p[0] = static_cast<uint8_t>(v & 1);
        return;
      case TypeKind::Int8: {
        auto x = static_cast<int8_t>(v);
        std::memcpy(p, &x, 1);
        return;
      }
      case TypeKind::Int16: {
        auto x = static_cast<int16_t>(v);
        std::memcpy(p, &x, 2);
        return;
      }
      case TypeKind::Int32: {
        auto x = static_cast<int32_t>(v);
        std::memcpy(p, &x, 4);
        return;
      }
      case TypeKind::Int64:
        std::memcpy(p, &v, 8);
        return;
      default:
        panic("writeIntRaw: not an integral type");
    }
}

Value
Value::zeroOf(TypePtr type)
{
    std::vector<uint8_t> bytes(type->byteWidth(), 0);
    return Value(std::move(type), std::move(bytes));
}

Value
Value::unit()
{
    return Value(Type::unit(), {});
}

Value
Value::bit(uint8_t b)
{
    return Value(Type::bit(), {static_cast<uint8_t>(b & 1)});
}

Value
Value::boolean(bool b)
{
    return Value(Type::boolean(), {static_cast<uint8_t>(b ? 1 : 0)});
}

Value
Value::i8(int8_t v)
{
    return intOf(Type::int8(), v);
}

Value
Value::i16(int16_t v)
{
    return intOf(Type::int16(), v);
}

Value
Value::i32(int32_t v)
{
    return intOf(Type::int32(), v);
}

Value
Value::i64(int64_t v)
{
    return intOf(Type::int64(), v);
}

Value
Value::real(double v)
{
    std::vector<uint8_t> b(8);
    std::memcpy(b.data(), &v, 8);
    return Value(Type::real(), std::move(b));
}

Value
Value::c16(int16_t re, int16_t im)
{
    Complex16 c{re, im};
    std::vector<uint8_t> b(4);
    std::memcpy(b.data(), &c, 4);
    return Value(Type::complex16(), std::move(b));
}

Value
Value::c32(int32_t re, int32_t im)
{
    Complex32 c{re, im};
    std::vector<uint8_t> b(8);
    std::memcpy(b.data(), &c, 8);
    return Value(Type::complex32(), std::move(b));
}

Value
Value::intOf(const TypePtr& type, int64_t v)
{
    ZIRIA_ASSERT(type->isIntegral());
    std::vector<uint8_t> b(type->byteWidth(), 0);
    writeIntRaw(type->kind(), b.data(), v);
    return Value(type, std::move(b));
}

Value
Value::arrayOf(const TypePtr& elem, const std::vector<Value>& xs)
{
    ZIRIA_ASSERT(!xs.empty(), "arrayOf: empty array");
    TypePtr t = Type::array(elem, static_cast<int>(xs.size()));
    std::vector<uint8_t> bytes;
    bytes.reserve(t->byteWidth());
    for (const auto& x : xs) {
        ZIRIA_ASSERT(typeEq(x.type(), elem), "arrayOf: element type");
        bytes.insert(bytes.end(), x.bytes().begin(), x.bytes().end());
    }
    return Value(std::move(t), std::move(bytes));
}

Value
Value::bitArray(const std::vector<uint8_t>& bits)
{
    ZIRIA_ASSERT(!bits.empty());
    TypePtr t = Type::array(Type::bit(), static_cast<int>(bits.size()));
    std::vector<uint8_t> bytes;
    bytes.reserve(bits.size());
    for (uint8_t b : bits)
        bytes.push_back(b & 1);
    return Value(std::move(t), std::move(bytes));
}

int64_t
Value::asInt() const
{
    ZIRIA_ASSERT(type_->isIntegral());
    return readIntRaw(type_->kind(), bytes_.data());
}

double
Value::asDouble() const
{
    ZIRIA_ASSERT(type_->isDouble());
    double v;
    std::memcpy(&v, bytes_.data(), 8);
    return v;
}

Complex16
Value::asC16() const
{
    ZIRIA_ASSERT(type_->kind() == TypeKind::Complex16);
    Complex16 c;
    std::memcpy(&c, bytes_.data(), 4);
    return c;
}

Value
Value::field(const std::string& name) const
{
    long off = type_->fieldOffset(name);
    ZIRIA_ASSERT(off >= 0, "no such field");
    TypePtr ft = type_->fieldType(name);
    std::vector<uint8_t> b(bytes_.begin() + off,
                           bytes_.begin() + off +
                               static_cast<long>(ft->byteWidth()));
    return Value(std::move(ft), std::move(b));
}

Value
Value::at(int i) const
{
    ZIRIA_ASSERT(type_->isArray());
    ZIRIA_ASSERT(i >= 0 && i < type_->len(), "array index out of range");
    const TypePtr& et = type_->elem();
    size_t w = et->byteWidth();
    std::vector<uint8_t> b(bytes_.begin() + static_cast<long>(i * w),
                           bytes_.begin() + static_cast<long>((i + 1) * w));
    return Value(et, std::move(b));
}

std::string
Value::show() const
{
    std::ostringstream os;
    switch (type_->kind()) {
      case TypeKind::Unit:
        os << "()";
        break;
      case TypeKind::Bool:
        os << (bytes_[0] ? "true" : "false");
        break;
      case TypeKind::Bit:
        os << "'" << int(bytes_[0]);
        break;
      case TypeKind::Int8:
      case TypeKind::Int16:
      case TypeKind::Int32:
      case TypeKind::Int64:
        os << asInt();
        break;
      case TypeKind::Double:
        os << asDouble();
        break;
      case TypeKind::Complex16: {
        Complex16 c = asC16();
        os << "(" << c.re << (c.im >= 0 ? "+" : "") << c.im << "i)";
        break;
      }
      case TypeKind::Complex32: {
        Complex32 c;
        std::memcpy(&c, bytes_.data(), 8);
        os << "(" << c.re << (c.im >= 0 ? "+" : "") << c.im << "i)";
        break;
      }
      case TypeKind::Array: {
        os << "{";
        for (int i = 0; i < type_->len(); ++i) {
            if (i)
                os << ", ";
            os << at(i).show();
        }
        os << "}";
        break;
      }
      case TypeKind::Struct: {
        os << type_->structName() << "{";
        bool first = true;
        for (const auto& [fname, ftype] : type_->fields()) {
            (void)ftype;
            if (!first)
                os << ", ";
            first = false;
            os << fname << "=" << field(fname).show();
        }
        os << "}";
        break;
      }
    }
    return os.str();
}

} // namespace ziria
