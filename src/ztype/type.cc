#include "ztype/type.h"

#include <sstream>

#include "support/panic.h"

namespace ziria {

namespace {

size_t
scalarWidth(TypeKind k)
{
    switch (k) {
      case TypeKind::Unit:
        return 0;
      case TypeKind::Bool:
      case TypeKind::Bit:
      case TypeKind::Int8:
        return 1;
      case TypeKind::Int16:
        return 2;
      case TypeKind::Int32:
      case TypeKind::Complex16:
        return 4;
      case TypeKind::Int64:
      case TypeKind::Double:
      case TypeKind::Complex32:
        return 8;
      default:
        panic("scalarWidth: not a scalar");
    }
}

TypePtr
makeScalar(TypeKind k)
{
    struct Access : Type
    {
        explicit Access(TypeKind kk) : Type(kk) {}
    };
    return std::make_shared<Access>(k);
}

} // namespace

Type::Type(TypeKind kind) : kind_(kind)
{
    if (isScalar())
        byteWidth_ = scalarWidth(kind);
}

#define ZIRIA_SCALAR_CTOR(fn, kindval)                                      \
    TypePtr Type::fn()                                                      \
    {                                                                       \
        static TypePtr t = makeScalar(TypeKind::kindval);                   \
        return t;                                                           \
    }

ZIRIA_SCALAR_CTOR(unit, Unit)
ZIRIA_SCALAR_CTOR(boolean, Bool)
ZIRIA_SCALAR_CTOR(bit, Bit)
ZIRIA_SCALAR_CTOR(int8, Int8)
ZIRIA_SCALAR_CTOR(int16, Int16)
ZIRIA_SCALAR_CTOR(int32, Int32)
ZIRIA_SCALAR_CTOR(int64, Int64)
ZIRIA_SCALAR_CTOR(real, Double)
ZIRIA_SCALAR_CTOR(complex16, Complex16)
ZIRIA_SCALAR_CTOR(complex32, Complex32)

#undef ZIRIA_SCALAR_CTOR

TypePtr
Type::array(TypePtr elem, int len)
{
    ZIRIA_ASSERT(elem != nullptr);
    ZIRIA_ASSERT(len > 0, "array length must be positive");
    struct Access : Type
    {
        explicit Access() : Type(TypeKind::Array) {}
    };
    auto t = std::make_shared<Access>();
    t->elem_ = std::move(elem);
    t->len_ = len;
    t->byteWidth_ = t->elem_->byteWidth() * static_cast<size_t>(len);
    return t;
}

TypePtr
Type::strct(std::string name,
            std::vector<std::pair<std::string, TypePtr>> fields)
{
    struct Access : Type
    {
        explicit Access() : Type(TypeKind::Struct) {}
    };
    auto t = std::make_shared<Access>();
    t->structName_ = std::move(name);
    t->fields_ = std::move(fields);
    size_t w = 0;
    for (const auto& [fname, ftype] : t->fields_) {
        ZIRIA_ASSERT(ftype != nullptr, "struct field has null type");
        w += ftype->byteWidth();
    }
    t->byteWidth_ = w;
    return t;
}

const TypePtr&
Type::elem() const
{
    ZIRIA_ASSERT(isArray());
    return elem_;
}

int
Type::len() const
{
    ZIRIA_ASSERT(isArray());
    return len_;
}

const std::vector<std::pair<std::string, TypePtr>>&
Type::fields() const
{
    ZIRIA_ASSERT(isStruct());
    return fields_;
}

const std::string&
Type::structName() const
{
    ZIRIA_ASSERT(isStruct());
    return structName_;
}

long
Type::fieldOffset(const std::string& field) const
{
    ZIRIA_ASSERT(isStruct());
    long off = 0;
    for (const auto& [fname, ftype] : fields_) {
        if (fname == field)
            return off;
        off += static_cast<long>(ftype->byteWidth());
    }
    return -1;
}

TypePtr
Type::fieldType(const std::string& field) const
{
    ZIRIA_ASSERT(isStruct());
    for (const auto& [fname, ftype] : fields_) {
        if (fname == field)
            return ftype;
    }
    panicf("struct ", structName_, " has no field ", field);
}

long
Type::bitWidth() const
{
    switch (kind_) {
      case TypeKind::Unit:
        return 0;
      case TypeKind::Bool:
      case TypeKind::Bit:
        return 1;
      case TypeKind::Int8:
        return 8;
      case TypeKind::Int16:
        return 16;
      case TypeKind::Int32:
      case TypeKind::Complex16:
        return 32;
      case TypeKind::Int64:
      case TypeKind::Complex32:
        return 64;
      case TypeKind::Double:
        return -1;
      case TypeKind::Array: {
        long e = elem_->bitWidth();
        return e < 0 ? -1 : e * len_;
      }
      case TypeKind::Struct: {
        long total = 0;
        for (const auto& [fname, ftype] : fields_) {
            (void)fname;
            long f = ftype->bitWidth();
            if (f < 0)
                return -1;
            total += f;
        }
        return total;
      }
    }
    return -1;
}

bool
Type::equals(const Type& other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case TypeKind::Array:
        return len_ == other.len_ && elem_->equals(*other.elem_);
      case TypeKind::Struct: {
        if (fields_.size() != other.fields_.size())
            return false;
        for (size_t i = 0; i < fields_.size(); ++i) {
            if (fields_[i].first != other.fields_[i].first ||
                !fields_[i].second->equals(*other.fields_[i].second)) {
                return false;
            }
        }
        return true;
      }
      default:
        return true;
    }
}

std::string
Type::show() const
{
    switch (kind_) {
      case TypeKind::Unit:
        return "unit";
      case TypeKind::Bool:
        return "bool";
      case TypeKind::Bit:
        return "bit";
      case TypeKind::Int8:
        return "int8";
      case TypeKind::Int16:
        return "int16";
      case TypeKind::Int32:
        return "int";
      case TypeKind::Int64:
        return "int64";
      case TypeKind::Double:
        return "double";
      case TypeKind::Complex16:
        return "complex16";
      case TypeKind::Complex32:
        return "complex32";
      case TypeKind::Array: {
        std::ostringstream os;
        os << "arr[" << len_ << "] " << elem_->show();
        return os.str();
      }
      case TypeKind::Struct:
        return "struct " + structName_;
    }
    return "?";
}

bool
typeEq(const TypePtr& a, const TypePtr& b)
{
    if (!a || !b)
        return a == b;
    return a->equals(*b);
}

std::string
CompType::show() const
{
    std::string a = in ? in->show() : "_";
    std::string b = out ? out->show() : "_";
    if (isComputer)
        return "Zr (C " + (ctrl ? ctrl->show() : "?") + ") " + a + " " + b;
    return "Zr T " + a + " " + b;
}

} // namespace ziria
