/**
 * @file
 * Runtime frames and static frame layout.
 *
 * All mutable program state — `var` declarations, seq binders, kernel
 * parameters and locals — lives in one flat byte frame per pipeline
 * instance.  The layout pass assigns every VarSym a fixed byte offset at
 * compile time, so compiled closures address state with plain pointer
 * arithmetic.  Ziria programs have no recursion, so one slot per variable
 * suffices (matching the paper's constant-space execution guarantee).
 */
#ifndef ZIRIA_ZEXPR_FRAME_H
#define ZIRIA_ZEXPR_FRAME_H

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "support/log.h"
#include "support/panic.h"
#include "zast/expr.h"

namespace ziria {

/** A pipeline instance's mutable state. */
class Frame
{
  public:
    Frame() = default;

    explicit Frame(size_t size) : mem_(size, 0) {}

    void
    resize(size_t size)
    {
        mem_.assign(size, 0);
    }

    uint8_t* at(size_t off) { return mem_.data() + off; }
    const uint8_t* at(size_t off) const { return mem_.data() + off; }

    size_t size() const { return mem_.size(); }

    /** Zero all state (used when re-initializing a pipeline). */
    void
    clear()
    {
        std::memset(mem_.data(), 0, mem_.size());
    }

  private:
    std::vector<uint8_t> mem_;
};

/** Compile-time assignment of variables to frame offsets. */
class FrameLayout
{
  public:
    /** Add a variable (idempotent); returns its offset. */
    size_t
    add(const VarRef& v)
    {
        ZIRIA_ASSERT(v != nullptr);
        auto it = off_.find(v.get());
        if (it != off_.end())
            return it->second;
        size_t o = size_;
        off_.emplace(v.get(), o);
        // Slots are keyed by VarSym address: pin every symbol for the
        // layout's lifetime, so a freed VarSym's heap address can never
        // be recycled into a new variable that would silently alias the
        // dead one's slot.
        vars_.push_back(v);
        size_ += v->type->byteWidth();
        return o;
    }

    bool has(const VarSym* v) const { return off_.count(v) != 0; }

    size_t
    offsetOf(const VarSym* v) const
    {
        auto it = off_.find(v);
        if (it == off_.end())
            panicf("variable ", v->name, "_", v->uid,
                   " has no frame slot");
        return it->second;
    }

    size_t frameSize() const { return size_; }

    /** Debug aid: print every slot (offset, width, name_uid). */
    void
    dumpVars() const
    {
        std::vector<std::pair<size_t, VarRef>> xs;
        for (const auto& v : vars_)
            xs.emplace_back(offsetOf(v.get()), v);
        std::sort(xs.begin(), xs.end(),
                  [](const auto& a, const auto& b) {
                      return a.first < b.first;
                  });
        for (const auto& [off, v] : xs) {
            char line[160];
            std::snprintf(line, sizeof(line), "%6zu %5zu %s_%d", off,
                          v->type->byteWidth(), v->name.c_str(), v->uid);
            log::raw(line);
        }
    }

  private:
    std::unordered_map<const VarSym*, size_t> off_;
    std::vector<VarRef> vars_;
    size_t size_ = 0;
};

} // namespace ziria

#endif // ZIRIA_ZEXPR_FRAME_H
