/**
 * @file
 * Native expression functions available to Ziria programs.
 *
 * These cover the math primitives (sin, cos, sqrt, atan2 — used by the
 * paper's overhead micro-benchmarks) and the fixed-point complex helpers a
 * PHY implementation needs (scaled complex multiply, conjugate multiply,
 * magnitudes), mirroring the SIMD intrinsics wrappers of the paper's
 * "basic signal processing library".
 */
#ifndef ZIRIA_ZEXPR_NATIVES_H
#define ZIRIA_ZEXPR_NATIVES_H

#include <string>

#include "zast/expr.h"

namespace ziria {
namespace natives {

/** double -> double */
FunRef sinF();
FunRef cosF();
FunRef sqrtF();
FunRef expF();
FunRef logF();

/** (double, double) -> double */
FunRef atan2F();

/** (complex16, complex16, int shift) -> complex16: (a*b) >> shift. */
FunRef cmul16();

/** (complex16, complex16, int shift) -> complex16: (a*conj(b)) >> shift. */
FunRef cmulConj16();

/** complex16 -> int: re^2 + im^2. */
FunRef cabs2_16();

/** complex16 -> complex16: conjugate. */
FunRef conj16();

/** (complex32, complex32) -> complex32 wide add (no saturation). */
FunRef cadd32();

/** int -> int16 saturating narrow. */
FunRef satI16();

/** complex16 -> int16 real part. */
FunRef creal16();

/** complex16 -> int16 imaginary part. */
FunRef cimag16();

/** (int16, int16) -> complex16 constructor. */
FunRef mkC16();

/** Look up a native function by surface name; null if unknown. */
FunRef lookup(const std::string& name);

} // namespace natives
} // namespace ziria

#endif // ZIRIA_ZEXPR_NATIVES_H
