#include "zexpr/lut.h"

#include "support/bits.h"
#include "support/panic.h"
#include "ztype/value.h"

namespace ziria {

void
packValueBits(const TypePtr& type, const uint8_t* src, BitWriter& bw)
{
    switch (type->kind()) {
      case TypeKind::Unit:
        return;
      case TypeKind::Bit:
      case TypeKind::Bool:
        bw.put(src[0] & 1, 1);
        return;
      case TypeKind::Int8:
        bw.put(src[0], 8);
        return;
      case TypeKind::Int16: {
        uint16_t v;
        std::memcpy(&v, src, 2);
        bw.put(v, 16);
        return;
      }
      case TypeKind::Int32:
      case TypeKind::Complex16: {
        uint32_t v;
        std::memcpy(&v, src, 4);
        bw.put(v, 32);
        return;
      }
      case TypeKind::Int64:
      case TypeKind::Complex32: {
        uint64_t v;
        std::memcpy(&v, src, 8);
        bw.put(v, 64);
        return;
      }
      case TypeKind::Array: {
        size_t ew = type->elem()->byteWidth();
        for (int i = 0; i < type->len(); ++i)
            packValueBits(type->elem(), src + i * ew, bw);
        return;
      }
      case TypeKind::Struct: {
        size_t off = 0;
        for (const auto& [fname, ftype] : type->fields()) {
            (void)fname;
            packValueBits(ftype, src + off, bw);
            off += ftype->byteWidth();
        }
        return;
      }
      case TypeKind::Double:
        panic("packValueBits: doubles are not LUT-able");
    }
}

void
unpackValueBits(const TypePtr& type, BitReader& br, uint8_t* dst)
{
    switch (type->kind()) {
      case TypeKind::Unit:
        return;
      case TypeKind::Bit:
      case TypeKind::Bool:
        dst[0] = static_cast<uint8_t>(br.get(1));
        return;
      case TypeKind::Int8:
        dst[0] = static_cast<uint8_t>(br.get(8));
        return;
      case TypeKind::Int16: {
        uint16_t v = static_cast<uint16_t>(br.get(16));
        std::memcpy(dst, &v, 2);
        return;
      }
      case TypeKind::Int32:
      case TypeKind::Complex16: {
        uint32_t v = static_cast<uint32_t>(br.get(32));
        std::memcpy(dst, &v, 4);
        return;
      }
      case TypeKind::Int64:
      case TypeKind::Complex32: {
        uint64_t v = br.get(64);
        std::memcpy(dst, &v, 8);
        return;
      }
      case TypeKind::Array: {
        size_t ew = type->elem()->byteWidth();
        for (int i = 0; i < type->len(); ++i)
            unpackValueBits(type->elem(), br, dst + i * ew);
        return;
      }
      case TypeKind::Struct: {
        size_t off = 0;
        for (const auto& [fname, ftype] : type->fields()) {
            (void)fname;
            unpackValueBits(ftype, br, dst + off);
            off += ftype->byteWidth();
        }
        return;
      }
      case TypeKind::Double:
        panic("unpackValueBits: doubles are not LUT-able");
    }
}

std::optional<LutPlan>
planLut(std::vector<LutSlot> key_slots, std::vector<LutSlot> out_slots,
        TypePtr ret_type, const LutLimits& limits)
{
    LutPlan plan;
    long keyBits = 0;
    for (auto& s : key_slots) {
        s.bits = s.type->bitWidth();
        if (s.bits < 0)
            return std::nullopt;  // not LUT-able (doubles)
        keyBits += s.bits;
    }
    if (keyBits < limits.minKeyBits || keyBits > limits.maxKeyBits)
        return std::nullopt;

    size_t entryBytes = 0;
    if (ret_type && !ret_type->isUnit()) {
        long rb = ret_type->bitWidth();
        if (rb < 0)
            return std::nullopt;
        entryBytes += (static_cast<size_t>(rb) + 7) / 8;
    }
    for (auto& s : out_slots) {
        s.bits = s.type->bitWidth();
        if (s.bits < 0)
            return std::nullopt;
        entryBytes += (static_cast<size_t>(s.bits) + 7) / 8;
    }
    if (entryBytes == 0)
        return std::nullopt;  // nothing to produce

    size_t tableBytes = entryBytes << keyBits;
    if (tableBytes > limits.maxTableBytes)
        return std::nullopt;

    plan.keySlots = std::move(key_slots);
    plan.outSlots = std::move(out_slots);
    plan.retType = (ret_type && !ret_type->isUnit()) ? ret_type : nullptr;
    plan.keyBits = static_cast<int>(keyBits);
    plan.entryBytes = entryBytes;
    return plan;
}

CompiledLut::CompiledLut(LutPlan plan, const Action& body,
                         const EvalInto& retInto, size_t frame_size)
    : plan_(std::move(plan))
{
    const size_t entries = size_t{1} << plan_.keyBits;
    table_.assign(entries * plan_.entryBytes, 0);

    Frame scratch(frame_size);
    std::vector<uint8_t> retBuf(
        plan_.retType ? plan_.retType->byteWidth() : 0);

    std::vector<uint8_t> keyBytes((plan_.keyBits + 7) / 8);
    for (size_t key = 0; key < entries; ++key) {
        // Distribute the key bits into the key slots.
        for (size_t i = 0; i < keyBytes.size(); ++i)
            keyBytes[i] = static_cast<uint8_t>(key >> (8 * i));
        BitReader br(keyBytes.data());
        for (const auto& s : plan_.keySlots)
            unpackValueBits(s.type, br, scratch.at(s.frameOff));

        body(scratch);

        // Record outputs: [ret][state updates], each byte-aligned.
        uint8_t* entry = table_.data() + key * plan_.entryBytes;
        size_t pos = 0;
        if (plan_.retType) {
            retInto(scratch, retBuf.data());
            BitWriter bw(entry + pos);
            packValueBits(plan_.retType, retBuf.data(), bw);
            pos += (static_cast<size_t>(plan_.retType->bitWidth()) + 7) / 8;
        }
        for (const auto& s : plan_.outSlots) {
            BitWriter bw(entry + pos);
            packValueBits(s.type, scratch.at(s.frameOff), bw);
            pos += (static_cast<size_t>(s.bits) + 7) / 8;
        }
    }
    buildFastPaths();
}

void
CompiledLut::buildFastPaths()
{
    // Fast path applies when every key/out field is built purely from
    // one-bit bytes (bit scalars and arrays of bit) — the common case
    // for the PHY kernels the LUT pass targets.
    auto flatten = [](const LutSlot& s, std::vector<uint32_t>& offs) {
        std::function<bool(const TypePtr&, size_t)> go =
            [&](const TypePtr& t, size_t off) {
                if (t->isBit() || t->isBool()) {
                    offs.push_back(static_cast<uint32_t>(off));
                    return true;
                }
                if (t->isArray()) {
                    size_t w = t->elem()->byteWidth();
                    for (int i = 0; i < t->len(); ++i) {
                        if (!go(t->elem(), off + i * w))
                            return false;
                    }
                    return true;
                }
                return false;
            };
        return go(s.type, s.frameOff);
    };
    keyBitOff_.clear();
    outBits_.clear();
    fast_ = true;
    for (const auto& s : plan_.keySlots)
        fast_ = fast_ && flatten(s, keyBitOff_);
    // Out fields are byte-aligned per field within the entry.
    uint32_t bitPos = 0;
    for (const auto& s : plan_.outSlots) {
        std::vector<uint32_t> offs;
        fast_ = fast_ && flatten(s, offs);
        for (uint32_t o : offs)
            outBits_.emplace_back(o, bitPos++);
        bitPos = (bitPos + 7) & ~7u;  // next field starts byte-aligned
    }
    if (plan_.retType) {
        long rb = plan_.retType->bitWidth();
        retBytes_ = (static_cast<size_t>(rb) + 7) / 8;
        // The return value is unpacked generically; only require the
        // key/state fast paths.
    }
    if (!fast_) {
        keyBitOff_.clear();
        outBits_.clear();
    }
}

void
CompiledLut::apply(Frame& f, uint8_t* retDst) const
{
    if (fast_) {
        uint64_t key = 0;
        for (size_t i = 0; i < keyBitOff_.size(); ++i)
            key |= static_cast<uint64_t>(*f.at(keyBitOff_[i]) & 1) << i;
        const uint8_t* entry = table_.data() + key * plan_.entryBytes;
        size_t pos = 0;
        if (plan_.retType) {
            BitReader br(entry);
            unpackValueBits(plan_.retType, br, retDst);
            pos += retBytes_;
        }
        const uint8_t* st = entry + pos;
        for (const auto& [off, bit] : outBits_)
            *f.at(off) = (st[bit >> 3] >> (bit & 7)) & 1;
        return;
    }

    // Pack the key from the live frame.
    uint8_t keyBytes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    BitWriter bw(keyBytes);
    for (const auto& s : plan_.keySlots)
        packValueBits(s.type, f.at(s.frameOff), bw);
    uint64_t key = 0;
    std::memcpy(&key, keyBytes, 8);
    key &= (uint64_t{1} << plan_.keyBits) - 1;

    const uint8_t* entry = table_.data() + key * plan_.entryBytes;
    size_t pos = 0;
    if (plan_.retType) {
        BitReader br(entry + pos);
        unpackValueBits(plan_.retType, br, retDst);
        pos += (static_cast<size_t>(plan_.retType->bitWidth()) + 7) / 8;
    }
    for (const auto& s : plan_.outSlots) {
        BitReader br(entry + pos);
        unpackValueBits(s.type, br, f.at(s.frameOff));
        pos += (static_cast<size_t>(s.bits) + 7) / 8;
    }
}

} // namespace ziria
