/**
 * @file
 * Lookup-table generation (the paper's automatic LUT optimization, §4).
 *
 * A LUT-able kernel is a pure function of a small number of semantic bits:
 * its input parameter plus the state variables it reads.  We enumerate all
 * key values, run the compiled kernel once per key at compile time, and
 * record the outputs (return value plus state updates).  At run time the
 * kernel body is replaced by: pack key -> table lookup -> unpack outputs.
 *
 * Bit arrays pack one bit per element (the VM stores them unpacked, one
 * byte per bit), so e.g. the vectorized WiFi scrambler — 8 input bits and
 * 7 state bits — keys a 2^15-entry table, exactly the paper's Figure 3.
 */
#ifndef ZIRIA_ZEXPR_LUT_H
#define ZIRIA_ZEXPR_LUT_H

#include <memory>
#include <optional>
#include <vector>

#include "zexpr/compile_expr.h"
#include "ztype/type.h"

namespace ziria {

/** A frame-resident field participating in a LUT key or output. */
struct LutSlot
{
    size_t frameOff = 0;
    TypePtr type;
    long bits = 0;  ///< semantic bit width of the field
};

/** Size/placement plan for a LUT. */
struct LutPlan
{
    std::vector<LutSlot> keySlots;  ///< read from the frame to form the key
    std::vector<LutSlot> outSlots;  ///< state updates written back
    TypePtr retType;                ///< null when the kernel returns unit
    int keyBits = 0;
    size_t entryBytes = 0;          ///< packed bytes per table entry
};

/** Policy limits for LUT generation. */
struct LutLimits
{
    int maxKeyBits = 20;        ///< at most 2^20 = 1Mi entries
    size_t maxTableBytes = 1u << 25;  ///< 32 MiB
    int minKeyBits = 2;         ///< don't LUT trivially small kernels
};

/**
 * Check the limits and compute the entry layout.
 * @return nullopt if any field is not LUT-able (e.g. doubles) or the
 *         table would exceed the limits.
 */
std::optional<LutPlan> planLut(std::vector<LutSlot> key_slots,
                               std::vector<LutSlot> out_slots,
                               TypePtr ret_type,
                               const LutLimits& limits = LutLimits{});

/** A materialized lookup table replacing a kernel body. */
class CompiledLut
{
  public:
    /**
     * Build by exhaustive evaluation: for every key, the key fields are
     * written into a scratch frame, @p body runs, and the outputs are
     * recorded.  @p retInto may be null for unit-returning kernels.
     */
    CompiledLut(LutPlan plan, const Action& body, const EvalInto& retInto,
                size_t frame_size);

    /**
     * Apply: reads key fields from @p f, writes state updates back into
     * @p f and the return value (if any) to @p retDst.
     */
    void apply(Frame& f, uint8_t* retDst) const;

    int keyBits() const { return plan_.keyBits; }
    size_t tableBytes() const { return table_.size(); }
    size_t entries() const { return size_t{1} << plan_.keyBits; }

  private:
    /** Flatten bit-shaped fields into per-bit frame offsets (fast path). */
    void buildFastPaths();

    LutPlan plan_;
    std::vector<uint8_t> table_;
    bool fast_ = false;
    std::vector<uint32_t> keyBitOff_;  ///< frame offset of each key bit
    /** (frame offset, bit position within the entry's state area). */
    std::vector<std::pair<uint32_t, uint32_t>> outBits_;
    size_t retBytes_ = 0;
};

/** Pack a flat value of @p type (VM layout) into a bit writer. */
void packValueBits(const TypePtr& type, const uint8_t* src,
                   class BitWriter& bw);

/** Unpack bits into a flat value of @p type (VM layout). */
void unpackValueBits(const TypePtr& type, class BitReader& br, uint8_t* dst);

} // namespace ziria

#endif // ZIRIA_ZEXPR_LUT_H
