/**
 * @file
 * The expression compiler: Ziria's imperative fragment to closure trees.
 *
 * This plays the role of the paper's Ziria-to-C code generator for the
 * expression language.  Each expression/statement compiles once into a
 * tree of C++ closures over a Frame; evaluation is then allocation-free.
 * Integral expressions compile to `int64_t(Frame&)` closures (the hot
 * path for bit-level PHY code); doubles and aggregate values have their
 * own calling conventions.
 *
 * User-defined function calls are inlined at each call site (Ziria has no
 * recursion); by-ref array parameters are inlined by lvalue substitution,
 * so kernels mutate caller arrays in place, as the paper's generated C
 * does with pointer passing.
 */
#ifndef ZIRIA_ZEXPR_COMPILE_EXPR_H
#define ZIRIA_ZEXPR_COMPILE_EXPR_H

#include <functional>

#include "zexpr/frame.h"

namespace ziria {

using EvalInt = std::function<int64_t(Frame&)>;
using EvalDbl = std::function<double(Frame&)>;
/** Evaluate into a caller-provided buffer of the value's byte width. */
using EvalInto = std::function<void(Frame&, uint8_t*)>;
/** Address of a (possibly materialized) value. */
using RefFn = std::function<uint8_t*(Frame&)>;
/** A compiled statement (unit-returning). */
using Action = std::function<void(Frame&)>;

/** A fully compiled function kernel (used by map nodes and auto-LUT). */
struct CompiledKernel
{
    std::vector<size_t> paramOffsets;  ///< frame slots of the parameters
    std::vector<size_t> paramWidths;
    Action body;                       ///< statements (may be empty)
    EvalInto retInto;                  ///< null for unit-returning kernels
    size_t retWidth = 0;
    /**
     * Source form of body/retInto against the same inlined parameter
     * slots, kept so backends that re-emit kernels (zcgen) can work
     * from the AST instead of the opaque closures.
     */
    StmtList bodySrc;
    ExprPtr retSrc;
};

/**
 * Compiles expressions and statements against a shared frame layout.
 * The layout accumulates slots for every variable encountered; call
 * `layout().frameSize()` after compiling everything to size the Frame.
 */
class ExprCompiler
{
  public:
    explicit ExprCompiler(FrameLayout& layout) : layout_(layout) {}

    FrameLayout& layout() { return layout_; }

    /** Compile an integral-typed expression (bit/bool/intN). */
    EvalInt compileInt(const ExprPtr& e);

    /** Compile a double-typed expression. */
    EvalDbl compileDbl(const ExprPtr& e);

    /** Compile any expression, writing its bytes to a destination. */
    EvalInto compileInto(const ExprPtr& e);

    /**
     * Compile a reference to the expression's storage.  Lvalues yield
     * their true frame address (writes through it are visible); rvalues
     * are materialized into a per-closure scratch buffer.
     */
    RefFn compileRef(const ExprPtr& e);

    /** Compile an lvalue address (errors on non-lvalues). */
    RefFn compileAddr(const ExprPtr& e);

    /** Compile a statement. */
    Action compileStmt(const StmtPtr& s);

    /** Compile a statement list. */
    Action compileStmts(const StmtList& stmts);

    /**
     * Compile a function into a kernel: parameter slots are allocated,
     * body and return are compiled against them.  Used for `map f` and
     * LUT generation.  The function must not have by-ref parameters.
     */
    CompiledKernel compileKernel(const FunRef& f);

  private:
    EvalInto compileCallInto(const CallExpr& c);
    EvalInt compileCallInt(const CallExpr& c);
    EvalDbl compileCallDbl(const CallExpr& c);

    /** Prepare a call: evaluate/bind arguments, return body+ret closures. */
    struct PreparedCall
    {
        Action setup;    ///< copies by-value args into parameter slots
        Action body;
        ExprPtr ret;     ///< cloned return expression (null for unit)
    };
    PreparedCall prepareCall(const CallExpr& c);

    FrameLayout& layout_;
};

/** Truncate @p v to the range of integral kind @p k (two's complement). */
int64_t truncToKind(TypeKind k, int64_t v);

} // namespace ziria

#endif // ZIRIA_ZEXPR_COMPILE_EXPR_H
