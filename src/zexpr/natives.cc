#include "zexpr/natives.h"

#include <cmath>
#include <cstring>

#include "ztype/value.h"

namespace ziria {
namespace natives {

namespace {

double
readD(const uint8_t* p)
{
    double v;
    std::memcpy(&v, p, 8);
    return v;
}

void
writeD(uint8_t* p, double v)
{
    std::memcpy(p, &v, 8);
}

Complex16
readC16(const uint8_t* p)
{
    Complex16 c;
    std::memcpy(&c, p, 4);
    return c;
}

void
writeC16(uint8_t* p, Complex16 c)
{
    std::memcpy(p, &c, 4);
}

int32_t
readI32(const uint8_t* p)
{
    int32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

FunRef
unaryD(const char* name, double (*fn)(double))
{
    return makeNativeFun(
        name, {freshVar("x", Type::real())}, Type::real(),
        [fn](const uint8_t* const* args, uint8_t* ret) {
            writeD(ret, fn(readD(args[0])));
        });
}

} // namespace

FunRef
sinF()
{
    static FunRef f = unaryD("sin", std::sin);
    return f;
}

FunRef
cosF()
{
    static FunRef f = unaryD("cos", std::cos);
    return f;
}

FunRef
sqrtF()
{
    static FunRef f = unaryD("sqrt", std::sqrt);
    return f;
}

FunRef
expF()
{
    static FunRef f = unaryD("exp", std::exp);
    return f;
}

FunRef
logF()
{
    static FunRef f = unaryD("log", std::log);
    return f;
}

FunRef
atan2F()
{
    static FunRef f = makeNativeFun(
        "atan2", {freshVar("y", Type::real()), freshVar("x", Type::real())},
        Type::real(), [](const uint8_t* const* args, uint8_t* ret) {
            writeD(ret, std::atan2(readD(args[0]), readD(args[1])));
        });
    return f;
}

FunRef
cmul16()
{
    static FunRef f = makeNativeFun(
        "cmul16",
        {freshVar("a", Type::complex16()), freshVar("b", Type::complex16()),
         freshVar("shift", Type::int32())},
        Type::complex16(), [](const uint8_t* const* args, uint8_t* ret) {
            Complex16 a = readC16(args[0]);
            Complex16 b = readC16(args[1]);
            int s = readI32(args[2]) & 31;
            int32_t re = (a.re * b.re - a.im * b.im) >> s;
            int32_t im = (a.re * b.im + a.im * b.re) >> s;
            writeC16(ret, Complex16{static_cast<int16_t>(re),
                                    static_cast<int16_t>(im)});
        });
    return f;
}

FunRef
cmulConj16()
{
    static FunRef f = makeNativeFun(
        "cmul_conj16",
        {freshVar("a", Type::complex16()), freshVar("b", Type::complex16()),
         freshVar("shift", Type::int32())},
        Type::complex16(), [](const uint8_t* const* args, uint8_t* ret) {
            Complex16 a = readC16(args[0]);
            Complex16 b = readC16(args[1]);
            int s = readI32(args[2]) & 31;
            int32_t re = (a.re * b.re + a.im * b.im) >> s;
            int32_t im = (a.im * b.re - a.re * b.im) >> s;
            writeC16(ret, Complex16{static_cast<int16_t>(re),
                                    static_cast<int16_t>(im)});
        });
    return f;
}

FunRef
cabs2_16()
{
    static FunRef f = makeNativeFun(
        "cabs2", {freshVar("a", Type::complex16())}, Type::int32(),
        [](const uint8_t* const* args, uint8_t* ret) {
            Complex16 a = readC16(args[0]);
            int32_t v = a.re * a.re + a.im * a.im;
            std::memcpy(ret, &v, 4);
        });
    return f;
}

FunRef
conj16()
{
    static FunRef f = makeNativeFun(
        "conj16", {freshVar("a", Type::complex16())}, Type::complex16(),
        [](const uint8_t* const* args, uint8_t* ret) {
            Complex16 a = readC16(args[0]);
            writeC16(ret, Complex16{a.re, static_cast<int16_t>(-a.im)});
        });
    return f;
}

FunRef
cadd32()
{
    static FunRef f = makeNativeFun(
        "cadd32",
        {freshVar("a", Type::complex32()),
         freshVar("b", Type::complex32())},
        Type::complex32(), [](const uint8_t* const* args, uint8_t* ret) {
            Complex32 a, b;
            std::memcpy(&a, args[0], 8);
            std::memcpy(&b, args[1], 8);
            Complex32 r{a.re + b.re, a.im + b.im};
            std::memcpy(ret, &r, 8);
        });
    return f;
}

FunRef
satI16()
{
    static FunRef f = makeNativeFun(
        "sat16", {freshVar("v", Type::int32())}, Type::int16(),
        [](const uint8_t* const* args, uint8_t* ret) {
            int32_t v = readI32(args[0]);
            int16_t r = v > 32767
                ? 32767
                : (v < -32768 ? -32768 : static_cast<int16_t>(v));
            std::memcpy(ret, &r, 2);
        });
    return f;
}

FunRef
creal16()
{
    static FunRef f = makeNativeFun(
        "creal", {freshVar("a", Type::complex16())}, Type::int16(),
        [](const uint8_t* const* args, uint8_t* ret) {
            Complex16 a = readC16(args[0]);
            std::memcpy(ret, &a.re, 2);
        });
    return f;
}

FunRef
cimag16()
{
    static FunRef f = makeNativeFun(
        "cimag", {freshVar("a", Type::complex16())}, Type::int16(),
        [](const uint8_t* const* args, uint8_t* ret) {
            Complex16 a = readC16(args[0]);
            std::memcpy(ret, &a.im, 2);
        });
    return f;
}

FunRef
mkC16()
{
    static FunRef f = makeNativeFun(
        "mk_complex16",
        {freshVar("re", Type::int16()), freshVar("im", Type::int16())},
        Type::complex16(), [](const uint8_t* const* args, uint8_t* ret) {
            int16_t re, im;
            std::memcpy(&re, args[0], 2);
            std::memcpy(&im, args[1], 2);
            Complex16 c{re, im};
            writeC16(ret, c);
        });
    return f;
}

FunRef
lookup(const std::string& name)
{
    if (name == "creal")
        return creal16();
    if (name == "cimag")
        return cimag16();
    if (name == "mk_complex16")
        return mkC16();
    if (name == "sin")
        return sinF();
    if (name == "cos")
        return cosF();
    if (name == "sqrt")
        return sqrtF();
    if (name == "exp")
        return expF();
    if (name == "log")
        return logF();
    if (name == "atan2")
        return atan2F();
    if (name == "cmul16")
        return cmul16();
    if (name == "cmul_conj16")
        return cmulConj16();
    if (name == "cabs2")
        return cabs2_16();
    if (name == "conj16")
        return conj16();
    if (name == "cadd32")
        return cadd32();
    if (name == "sat16")
        return satI16();
    return nullptr;
}

} // namespace natives
} // namespace ziria
