#include "zexpr/compile_expr.h"

#include <cmath>

#include "support/panic.h"
#include "zast/printer.h"
#include "ztype/value.h"

namespace ziria {

int64_t
truncToKind(TypeKind k, int64_t v)
{
    switch (k) {
      case TypeKind::Bit:
      case TypeKind::Bool:
        return v & 1;
      case TypeKind::Int8:
        return static_cast<int8_t>(v);
      case TypeKind::Int16:
        return static_cast<int16_t>(v);
      case TypeKind::Int32:
        return static_cast<int32_t>(v);
      case TypeKind::Int64:
        return v;
      default:
        panic("truncToKind: not integral");
    }
}

namespace {

int
bitsOfKind(TypeKind k)
{
    switch (k) {
      case TypeKind::Bit:
      case TypeKind::Bool:
        return 1;
      case TypeKind::Int8:
        return 8;
      case TypeKind::Int16:
        return 16;
      case TypeKind::Int32:
        return 32;
      case TypeKind::Int64:
        return 64;
      default:
        panic("bitsOfKind: not integral");
    }
}

template <typename T>
int64_t
loadScalar(const uint8_t* p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return static_cast<int64_t>(v);
}

template <typename T>
void
storeScalar(uint8_t* p, int64_t v)
{
    T x = static_cast<T>(v);
    std::memcpy(p, &x, sizeof(T));
}

/** Build a load closure specialized to the integral kind. */
EvalInt
makeLoad(TypeKind k, RefFn ref)
{
    switch (k) {
      case TypeKind::Bit:
      case TypeKind::Bool:
        return [ref](Frame& f) -> int64_t { return *ref(f); };
      case TypeKind::Int8:
        return [ref](Frame& f) { return loadScalar<int8_t>(ref(f)); };
      case TypeKind::Int16:
        return [ref](Frame& f) { return loadScalar<int16_t>(ref(f)); };
      case TypeKind::Int32:
        return [ref](Frame& f) { return loadScalar<int32_t>(ref(f)); };
      case TypeKind::Int64:
        return [ref](Frame& f) { return loadScalar<int64_t>(ref(f)); };
      default:
        panic("makeLoad: not integral");
    }
}

/** Build a store-into-dst closure specialized to the integral kind. */
EvalInto
makeStore(TypeKind k, EvalInt val)
{
    switch (k) {
      case TypeKind::Bit:
      case TypeKind::Bool:
        return [val](Frame& f, uint8_t* dst) {
            *dst = static_cast<uint8_t>(val(f) & 1);
        };
      case TypeKind::Int8:
        return [val](Frame& f, uint8_t* dst) {
            storeScalar<int8_t>(dst, val(f));
        };
      case TypeKind::Int16:
        return [val](Frame& f, uint8_t* dst) {
            storeScalar<int16_t>(dst, val(f));
        };
      case TypeKind::Int32:
        return [val](Frame& f, uint8_t* dst) {
            storeScalar<int32_t>(dst, val(f));
        };
      case TypeKind::Int64:
        return [val](Frame& f, uint8_t* dst) {
            storeScalar<int64_t>(dst, val(f));
        };
      default:
        panic("makeStore: not integral");
    }
}

Complex32
loadComplex(const TypePtr& t, const uint8_t* p)
{
    if (t->kind() == TypeKind::Complex16) {
        Complex16 c;
        std::memcpy(&c, p, 4);
        return Complex32{c.re, c.im};
    }
    Complex32 c;
    std::memcpy(&c, p, 8);
    return c;
}

void
storeComplex(const TypePtr& t, uint8_t* p, Complex32 v)
{
    if (t->kind() == TypeKind::Complex16) {
        Complex16 c{static_cast<int16_t>(v.re), static_cast<int16_t>(v.im)};
        std::memcpy(p, &c, 4);
    } else {
        std::memcpy(p, &v, 8);
    }
}

int16_t
sat16(int32_t v)
{
    if (v > 32767)
        return 32767;
    if (v < -32768)
        return -32768;
    return static_cast<int16_t>(v);
}

} // namespace

// -----------------------------------------------------------------------
// Integral expressions
// -----------------------------------------------------------------------

EvalInt
ExprCompiler::compileInt(const ExprPtr& e)
{
    const TypePtr& t = e->type();
    ZIRIA_ASSERT(t->isIntegral(), "compileInt on non-integral type");
    TypeKind k = t->kind();

    switch (e->kind()) {
      case ExprKind::Const: {
        int64_t v = static_cast<const ConstExpr&>(*e).value().asInt();
        return [v](Frame&) { return v; };
      }
      case ExprKind::Var: {
        const auto& v = static_cast<const VarExpr&>(*e).var();
        size_t off = layout_.add(v);
        switch (k) {
          case TypeKind::Bit:
          case TypeKind::Bool:
            return [off](Frame& f) -> int64_t { return *f.at(off); };
          case TypeKind::Int8:
            return [off](Frame& f) { return loadScalar<int8_t>(f.at(off)); };
          case TypeKind::Int16:
            return
                [off](Frame& f) { return loadScalar<int16_t>(f.at(off)); };
          case TypeKind::Int32:
            return
                [off](Frame& f) { return loadScalar<int32_t>(f.at(off)); };
          default:
            return
                [off](Frame& f) { return loadScalar<int64_t>(f.at(off)); };
        }
      }
      case ExprKind::Bin: {
        const auto& b = static_cast<const BinExpr&>(*e);
        const TypePtr& ot = b.lhs()->type();
        switch (b.op()) {
          case BinOp::Eq:
          case BinOp::Ne: {
            bool wantEq = b.op() == BinOp::Eq;
            if (ot->isIntegral()) {
                EvalInt la = compileInt(b.lhs());
                EvalInt ra = compileInt(b.rhs());
                return [la, ra, wantEq](Frame& f) -> int64_t {
                    int64_t a = la(f);
                    int64_t b = ra(f);
                    return (a == b) == wantEq;
                };
            }
            if (ot->isDouble()) {
                EvalDbl la = compileDbl(b.lhs());
                EvalDbl ra = compileDbl(b.rhs());
                return [la, ra, wantEq](Frame& f) -> int64_t {
                    double a = la(f);
                    double b = ra(f);
                    return (a == b) == wantEq;
                };
            }
            // complex: bitwise comparison of the fixed-point pairs
            EvalInto la = compileInto(b.lhs());
            EvalInto ra = compileInto(b.rhs());
            size_t w = ot->byteWidth();
            return [la, ra, w, wantEq](Frame& f) -> int64_t {
                uint8_t ba[8], bb[8];
                la(f, ba);
                ra(f, bb);
                return (std::memcmp(ba, bb, w) == 0) == wantEq;
            };
          }
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge: {
            BinOp op = b.op();
            if (ot->isDouble()) {
                EvalDbl la = compileDbl(b.lhs());
                EvalDbl ra = compileDbl(b.rhs());
                switch (op) {
                  case BinOp::Lt:
                    return [la, ra](Frame& f) -> int64_t {
                        auto a = la(f);
                        auto b = ra(f);
                        return a < b;
                    };
                  case BinOp::Le:
                    return [la, ra](Frame& f) -> int64_t {
                        auto a = la(f);
                        auto b = ra(f);
                        return a <= b;
                    };
                  case BinOp::Gt:
                    return [la, ra](Frame& f) -> int64_t {
                        auto a = la(f);
                        auto b = ra(f);
                        return a > b;
                    };
                  default:
                    return [la, ra](Frame& f) -> int64_t {
                        auto a = la(f);
                        auto b = ra(f);
                        return a >= b;
                    };
                }
            }
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            switch (op) {
              case BinOp::Lt:
                return
                    [la, ra](Frame& f) -> int64_t {
                        auto a = la(f);
                        auto b = ra(f);
                        return a < b;
                    };
              case BinOp::Le:
                return [la, ra](Frame& f) -> int64_t {
                        auto a = la(f);
                        auto b = ra(f);
                        return a <= b;
                    };
              case BinOp::Gt:
                return
                    [la, ra](Frame& f) -> int64_t {
                        auto a = la(f);
                        auto b = ra(f);
                        return a > b;
                    };
              default:
                return [la, ra](Frame& f) -> int64_t {
                        auto a = la(f);
                        auto b = ra(f);
                        return a >= b;
                    };
            }
          }
          case BinOp::LAnd: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            return [la, ra](Frame& f) -> int64_t {
                return la(f) ? ra(f) : 0;
            };
          }
          case BinOp::LOr: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            return [la, ra](Frame& f) -> int64_t {
                return la(f) ? 1 : ra(f);
            };
          }
          case BinOp::Add: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            if (k == TypeKind::Int32) {
                return [la, ra](Frame& f) -> int64_t {
                    int64_t a = la(f);
                    int64_t b = ra(f);
                    return static_cast<int32_t>(a + b);
                };
            }
            return [la, ra, k](Frame& f) {
                int64_t a = la(f);
                int64_t b = ra(f);
                return truncToKind(k, a + b);
            };
          }
          case BinOp::Sub: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            if (k == TypeKind::Int32) {
                return [la, ra](Frame& f) -> int64_t {
                    int64_t a = la(f);
                    int64_t b = ra(f);
                    return static_cast<int32_t>(a - b);
                };
            }
            return [la, ra, k](Frame& f) {
                int64_t a = la(f);
                int64_t b = ra(f);
                return truncToKind(k, a - b);
            };
          }
          case BinOp::Mul: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            if (k == TypeKind::Int32) {
                return [la, ra](Frame& f) -> int64_t {
                    int64_t a = la(f);
                    int64_t b = ra(f);
                    return static_cast<int32_t>(a * b);
                };
            }
            return [la, ra, k](Frame& f) {
                int64_t a = la(f);
                int64_t b = ra(f);
                return truncToKind(k, a * b);
            };
          }
          case BinOp::Div: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            return EvalInt([la, ra, k](Frame& f) -> int64_t {
                int64_t n = la(f);
                int64_t d = ra(f);
                if (d == 0)
                    fatal("division by zero");
                if (d == -1)
                    return truncToKind(k, -n);
                return truncToKind(k, n / d);
            });
          }
          case BinOp::Rem: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            return EvalInt([la, ra, k](Frame& f) -> int64_t {
                int64_t n = la(f);
                int64_t d = ra(f);
                if (d == 0)
                    fatal("remainder by zero");
                if (d == -1)
                    return 0;
                return truncToKind(k, n % d);
            });
          }
          case BinOp::Shl: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            int w = bitsOfKind(k);
            return [la, ra, k, w](Frame& f) {
                int64_t v = la(f);
                int64_t s = ra(f);
                if (s < 0 || s >= w)
                    return static_cast<int64_t>(0);
                return truncToKind(
                    k,
                    static_cast<int64_t>(static_cast<uint64_t>(v) << s));
            };
          }
          case BinOp::Shr: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            int w = bitsOfKind(k);
            return [la, ra, w](Frame& f) -> int64_t {
                int64_t v = la(f);
                int64_t s = ra(f);
                if (s < 0)
                    return 0;
                if (s >= w)
                    return v < 0 ? -1 : 0;
                return v >> s;
            };
          }
          case BinOp::BAnd: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            return [la, ra](Frame& f) {
                int64_t a = la(f);
                int64_t b = ra(f);
                return a & b;
            };
          }
          case BinOp::BOr: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            return [la, ra](Frame& f) {
                int64_t a = la(f);
                int64_t b = ra(f);
                return a | b;
            };
          }
          case BinOp::BXor: {
            EvalInt la = compileInt(b.lhs());
            EvalInt ra = compileInt(b.rhs());
            return [la, ra](Frame& f) {
                int64_t a = la(f);
                int64_t b = ra(f);
                return a ^ b;
            };
          }
        }
        panic("compileInt: unhandled binop");
      }
      case ExprKind::Un: {
        const auto& u = static_cast<const UnExpr&>(*e);
        EvalInt sa = compileInt(u.sub());
        switch (u.op()) {
          case UnOp::Neg:
            return [sa, k](Frame& f) { return truncToKind(k, -sa(f)); };
          case UnOp::BNot:
            return [sa, k](Frame& f) { return truncToKind(k, ~sa(f)); };
          case UnOp::LNot:
            return [sa](Frame& f) -> int64_t { return !sa(f); };
        }
        panic("compileInt: unhandled unop");
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const CastExpr&>(*e);
        const TypePtr& from = c.sub()->type();
        if (from->isIntegral()) {
            EvalInt sa = compileInt(c.sub());
            return [sa, k](Frame& f) { return truncToKind(k, sa(f)); };
        }
        ZIRIA_ASSERT(from->isDouble());
        EvalDbl sa = compileDbl(c.sub());
        return [sa, k](Frame& f) {
            double v = sa(f);
            if (!std::isfinite(v))
                return static_cast<int64_t>(0);
            return truncToKind(k, static_cast<int64_t>(v));
        };
      }
      case ExprKind::Index:
      case ExprKind::Field: {
        RefFn r = compileRef(e);
        return makeLoad(k, std::move(r));
      }
      case ExprKind::Call:
        return compileCallInt(static_cast<const CallExpr&>(*e));
      case ExprKind::Cond: {
        const auto& c = static_cast<const CondExpr&>(*e);
        EvalInt cc = compileInt(c.cond());
        EvalInt tt = compileInt(c.thenE());
        EvalInt ee = compileInt(c.elseE());
        return [cc, tt, ee](Frame& f) { return cc(f) ? tt(f) : ee(f); };
      }
      default:
        panicf("compileInt: unexpected expr kind for type ", t->show());
    }
}

// -----------------------------------------------------------------------
// Double expressions
// -----------------------------------------------------------------------

EvalDbl
ExprCompiler::compileDbl(const ExprPtr& e)
{
    ZIRIA_ASSERT(e->type()->isDouble(), "compileDbl on non-double type");
    switch (e->kind()) {
      case ExprKind::Const: {
        double v = static_cast<const ConstExpr&>(*e).value().asDouble();
        return [v](Frame&) { return v; };
      }
      case ExprKind::Var: {
        size_t off = layout_.add(static_cast<const VarExpr&>(*e).var());
        return [off](Frame& f) {
            double v;
            std::memcpy(&v, f.at(off), 8);
            return v;
        };
      }
      case ExprKind::Bin: {
        const auto& b = static_cast<const BinExpr&>(*e);
        EvalDbl la = compileDbl(b.lhs());
        EvalDbl ra = compileDbl(b.rhs());
        switch (b.op()) {
          case BinOp::Add:
            return [la, ra](Frame& f) {
                double a = la(f);
                double b = ra(f);
                return a + b;
            };
          case BinOp::Sub:
            return [la, ra](Frame& f) {
                double a = la(f);
                double b = ra(f);
                return a - b;
            };
          case BinOp::Mul:
            return [la, ra](Frame& f) {
                double a = la(f);
                double b = ra(f);
                return a * b;
            };
          case BinOp::Div:
            return [la, ra](Frame& f) {
                double a = la(f);
                double b = ra(f);
                return a / b;
            };
          default:
            panic("compileDbl: unhandled binop");
        }
      }
      case ExprKind::Un: {
        const auto& u = static_cast<const UnExpr&>(*e);
        ZIRIA_ASSERT(u.op() == UnOp::Neg);
        EvalDbl sa = compileDbl(u.sub());
        return [sa](Frame& f) { return -sa(f); };
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const CastExpr&>(*e);
        ZIRIA_ASSERT(c.sub()->type()->isIntegral());
        EvalInt sa = compileInt(c.sub());
        return [sa](Frame& f) { return static_cast<double>(sa(f)); };
      }
      case ExprKind::Index:
      case ExprKind::Field: {
        RefFn r = compileRef(e);
        return [r](Frame& f) {
            double v;
            std::memcpy(&v, r(f), 8);
            return v;
        };
      }
      case ExprKind::Call:
        return compileCallDbl(static_cast<const CallExpr&>(*e));
      case ExprKind::Cond: {
        const auto& c = static_cast<const CondExpr&>(*e);
        EvalInt cc = compileInt(c.cond());
        EvalDbl tt = compileDbl(c.thenE());
        EvalDbl ee = compileDbl(c.elseE());
        return [cc, tt, ee](Frame& f) { return cc(f) ? tt(f) : ee(f); };
      }
      default:
        panic("compileDbl: unexpected expr kind");
    }
}

// -----------------------------------------------------------------------
// Generic evaluation into a destination buffer
// -----------------------------------------------------------------------

EvalInto
ExprCompiler::compileInto(const ExprPtr& e)
{
    const TypePtr& t = e->type();
    if (t->isUnit()) {
        if (e->kind() == ExprKind::Call)
            return compileCallInto(static_cast<const CallExpr&>(*e));
        return [](Frame&, uint8_t*) {};
    }
    if (t->isIntegral())
        return makeStore(t->kind(), compileInt(e));
    if (t->isDouble()) {
        EvalDbl d = compileDbl(e);
        return [d](Frame& f, uint8_t* dst) {
            double v = d(f);
            std::memcpy(dst, &v, 8);
        };
    }
    if (t->isComplex()) {
        switch (e->kind()) {
          case ExprKind::Bin: {
            const auto& b = static_cast<const BinExpr&>(*e);
            EvalInto la = compileInto(b.lhs());
            bool c16 = t->kind() == TypeKind::Complex16;
            TypePtr tt = t;
            if (b.op() == BinOp::Shl || b.op() == BinOp::Shr) {
                EvalInt sh = compileInt(b.rhs());
                bool left = b.op() == BinOp::Shl;
                return [la, sh, left, tt](Frame& f, uint8_t* dst) {
                    uint8_t ba[8];
                    la(f, ba);
                    Complex32 a = loadComplex(tt, ba);
                    int s = static_cast<int>(sh(f)) & 31;
                    Complex32 r = left ? Complex32{a.re << s, a.im << s}
                                       : Complex32{a.re >> s, a.im >> s};
                    storeComplex(tt, dst, r);
                };
            }
            EvalInto ra = compileInto(b.rhs());
            BinOp op = b.op();
            return [la, ra, op, c16, tt](Frame& f, uint8_t* dst) {
                uint8_t ba[8], bb[8];
                la(f, ba);
                ra(f, bb);
                Complex32 a = loadComplex(tt, ba);
                Complex32 b2 = loadComplex(tt, bb);
                Complex32 r;
                switch (op) {
                  case BinOp::Add:
                    r = {a.re + b2.re, a.im + b2.im};
                    break;
                  case BinOp::Sub:
                    r = {a.re - b2.re, a.im - b2.im};
                    break;
                  case BinOp::Mul:
                    r = {a.re * b2.re - a.im * b2.im,
                         a.re * b2.im + a.im * b2.re};
                    break;
                  default:
                    fatal("complex operator not supported");
                }
                if (c16) {
                    r.re = static_cast<int16_t>(r.re);
                    r.im = static_cast<int16_t>(r.im);
                }
                storeComplex(tt, dst, r);
            };
          }
          case ExprKind::Un: {
            const auto& u = static_cast<const UnExpr&>(*e);
            ZIRIA_ASSERT(u.op() == UnOp::Neg);
            EvalInto sa = compileInto(u.sub());
            TypePtr tt = t;
            bool c16 = t->kind() == TypeKind::Complex16;
            return [sa, tt, c16](Frame& f, uint8_t* dst) {
                uint8_t ba[8];
                sa(f, ba);
                Complex32 a = loadComplex(tt, ba);
                Complex32 r{-a.re, -a.im};
                if (c16) {
                    r.re = static_cast<int16_t>(r.re);
                    r.im = static_cast<int16_t>(r.im);
                }
                storeComplex(tt, dst, r);
            };
          }
          case ExprKind::Cast: {
            const auto& c = static_cast<const CastExpr&>(*e);
            const TypePtr& from = c.sub()->type();
            ZIRIA_ASSERT(from->isComplex());
            EvalInto sa = compileInto(c.sub());
            TypePtr ft = from;
            if (t->kind() == TypeKind::Complex16) {
                return [sa, ft](Frame& f, uint8_t* dst) {
                    uint8_t ba[8];
                    sa(f, ba);
                    Complex32 a = loadComplex(ft, ba);
                    Complex16 r{sat16(a.re), sat16(a.im)};
                    std::memcpy(dst, &r, 4);
                };
            }
            return [sa, ft](Frame& f, uint8_t* dst) {
                uint8_t ba[8];
                sa(f, ba);
                Complex32 a = loadComplex(ft, ba);
                std::memcpy(dst, &a, 8);
            };
          }
          default:
            break;  // generic cases below
        }
    }

    // Generic cases (complex leaves, arrays, structs).
    switch (e->kind()) {
      case ExprKind::Const: {
        const Value& v = static_cast<const ConstExpr&>(*e).value();
        std::vector<uint8_t> bytes = v.bytes();
        return [bytes](Frame&, uint8_t* dst) {
            std::memcpy(dst, bytes.data(), bytes.size());
        };
      }
      case ExprKind::Var:
      case ExprKind::Index:
      case ExprKind::Slice:
      case ExprKind::Field: {
        RefFn r = compileRef(e);
        size_t w = t->byteWidth();
        return [r, w](Frame& f, uint8_t* dst) {
            std::memmove(dst, r(f), w);
        };
      }
      case ExprKind::ArrayLit: {
        const auto& a = static_cast<const ArrayLitExpr&>(*e);
        std::vector<EvalInto> elems;
        elems.reserve(a.elems().size());
        for (const auto& el : a.elems())
            elems.push_back(compileInto(el));
        size_t ew = t->elem()->byteWidth();
        return [elems, ew](Frame& f, uint8_t* dst) {
            uint8_t* p = dst;
            for (const auto& el : elems) {
                el(f, p);
                p += ew;
            }
        };
      }
      case ExprKind::StructLit: {
        const auto& sl = static_cast<const StructLitExpr&>(*e);
        std::vector<EvalInto> fields;
        std::vector<size_t> widths;
        for (size_t i = 0; i < sl.fieldExprs().size(); ++i) {
            fields.push_back(compileInto(sl.fieldExprs()[i]));
            widths.push_back(t->fields()[i].second->byteWidth());
        }
        return [fields, widths](Frame& f, uint8_t* dst) {
            uint8_t* p = dst;
            for (size_t i = 0; i < fields.size(); ++i) {
                fields[i](f, p);
                p += widths[i];
            }
        };
      }
      case ExprKind::Call:
        return compileCallInto(static_cast<const CallExpr&>(*e));
      case ExprKind::Cond: {
        const auto& c = static_cast<const CondExpr&>(*e);
        EvalInt cc = compileInt(c.cond());
        EvalInto tt = compileInto(c.thenE());
        EvalInto ee = compileInto(c.elseE());
        return [cc, tt, ee](Frame& f, uint8_t* dst) {
            if (cc(f))
                tt(f, dst);
            else
                ee(f, dst);
        };
      }
      default:
        panicf("compileInto: unexpected expr kind for ", t->show(), ": ",
               showExpr(e));
    }
}

// -----------------------------------------------------------------------
// References and lvalues
// -----------------------------------------------------------------------

RefFn
ExprCompiler::compileRef(const ExprPtr& e)
{
    switch (e->kind()) {
      case ExprKind::Var:
      case ExprKind::Index:
      case ExprKind::Slice:
      case ExprKind::Field:
        return compileAddr(e);
      default: {
        // Materialize the rvalue into per-closure scratch.
        EvalInto ev = compileInto(e);
        auto scratch =
            std::make_shared<std::vector<uint8_t>>(e->type()->byteWidth());
        return [ev, scratch](Frame& f) {
            ev(f, scratch->data());
            return scratch->data();
        };
      }
    }
}

RefFn
ExprCompiler::compileAddr(const ExprPtr& e)
{
    switch (e->kind()) {
      case ExprKind::Var: {
        size_t off = layout_.add(static_cast<const VarExpr&>(*e).var());
        return [off](Frame& f) { return f.at(off); };
      }
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(*e);
        RefFn base = compileRef(i.arr());
        EvalInt ix = compileInt(i.idx());
        size_t w = e->type()->byteWidth();
        long n = i.arr()->type()->len();
        return [base, ix, w, n](Frame& f) {
            int64_t k = ix(f);
            if (k < 0 || k >= n)
                fatalf("array index out of bounds: ", k, " not in [0, ", n,
                       ")");
            return base(f) + static_cast<size_t>(k) * w;
        };
      }
      case ExprKind::Slice: {
        const auto& s = static_cast<const SliceExpr&>(*e);
        RefFn base = compileRef(s.arr());
        EvalInt bx = compileInt(s.base());
        size_t w = s.arr()->type()->elem()->byteWidth();
        long n = s.arr()->type()->len();
        long len = s.sliceLen();
        return [base, bx, w, n, len](Frame& f) {
            int64_t k = bx(f);
            if (k < 0 || k + len > n)
                fatalf("slice out of bounds: [", k, ", ", k + len,
                       ") not within [0, ", n, ")");
            return base(f) + static_cast<size_t>(k) * w;
        };
      }
      case ExprKind::Field: {
        const auto& fe = static_cast<const FieldExpr&>(*e);
        RefFn base = compileRef(fe.rec());
        long off = fe.rec()->type()->fieldOffset(fe.field());
        ZIRIA_ASSERT(off >= 0);
        return [base, off](Frame& f) {
            return base(f) + static_cast<size_t>(off);
        };
      }
      default:
        fatalf("not an lvalue: ", showExpr(e));
    }
}

// -----------------------------------------------------------------------
// Statements
// -----------------------------------------------------------------------

Action
ExprCompiler::compileStmt(const StmtPtr& s)
{
    switch (s->kind()) {
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(*s);
        RefFn addr = compileAddr(a.lhs());
        const TypePtr& t = a.lhs()->type();
        EvalInto rhs = compileInto(a.rhs());
        if (t->isScalar())
            return [addr, rhs](Frame& f) { rhs(f, addr(f)); };
        // Aggregates go through scratch so self-overlapping assignments
        // (e.g. scrmbl_st[0:5] := scrmbl_st[1:6]) behave like memmove.
        size_t w = t->byteWidth();
        auto scratch = std::make_shared<std::vector<uint8_t>>(w);
        return [addr, rhs, w, scratch](Frame& f) {
            rhs(f, scratch->data());
            std::memcpy(addr(f), scratch->data(), w);
        };
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        EvalInt c = compileInt(i.cond());
        Action t = compileStmts(i.thenStmts());
        Action e = compileStmts(i.elseStmts());
        return [c, t, e](Frame& f) {
            if (c(f))
                t(f);
            else
                e(f);
        };
      }
      case StmtKind::For: {
        const auto& fo = static_cast<const ForStmt&>(*s);
        size_t ivOff = layout_.add(fo.inductionVar());
        TypeKind ivk = fo.inductionVar()->type->kind();
        EvalInt lo = compileInt(fo.lo());
        EvalInt hi = compileInt(fo.hi());
        Action body = compileStmts(fo.body());
        return [ivOff, ivk, lo, hi, body](Frame& f) {
            int64_t h = hi(f);
            for (int64_t i = lo(f); i < h; ++i) {
                writeIntRaw(ivk, f.at(ivOff), i);
                body(f);
            }
        };
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(*s);
        EvalInt c = compileInt(w.cond());
        Action body = compileStmts(w.body());
        return [c, body](Frame& f) {
            while (c(f))
                body(f);
        };
      }
      case StmtKind::VarDecl: {
        const auto& d = static_cast<const VarDeclStmt&>(*s);
        size_t off = layout_.add(d.var());
        size_t w = d.var()->type->byteWidth();
        if (d.init()) {
            EvalInto init = compileInto(d.init());
            return [off, init](Frame& f) { init(f, f.at(off)); };
        }
        return [off, w](Frame& f) { std::memset(f.at(off), 0, w); };
      }
      case StmtKind::Eval: {
        const auto& ev = static_cast<const EvalStmt&>(*s);
        size_t w = ev.expr()->type()->byteWidth();
        EvalInto e = compileInto(ev.expr());
        auto scratch = std::make_shared<std::vector<uint8_t>>(w);
        return [e, scratch](Frame& f) { e(f, scratch->data()); };
      }
    }
    panic("compileStmt: unknown stmt kind");
}

Action
ExprCompiler::compileStmts(const StmtList& stmts)
{
    if (stmts.empty())
        return [](Frame&) {};
    if (stmts.size() == 1)
        return compileStmt(stmts[0]);
    std::vector<Action> acts;
    acts.reserve(stmts.size());
    for (const auto& s : stmts)
        acts.push_back(compileStmt(s));
    return [acts](Frame& f) {
        for (const auto& a : acts)
            a(f);
    };
}

// -----------------------------------------------------------------------
// Calls
// -----------------------------------------------------------------------

ExprCompiler::PreparedCall
ExprCompiler::prepareCall(const CallExpr& c)
{
    const FunRef& f = c.fun();
    ZIRIA_ASSERT(!f->isNative());

    // By-ref parameters are replaced by the argument lvalue (inlining by
    // substitution); by-value parameters get fresh slots per call site.
    std::vector<ExprPtr> substArgs(c.args().size());
    for (size_t i = 0; i < c.args().size(); ++i) {
        if (f->paramByRef(i))
            substArgs[i] = c.args()[i];
    }
    InlinedFun inl = inlineFun(f, substArgs);

    std::vector<Action> setups;
    for (size_t i = 0; i < c.args().size(); ++i) {
        if (f->paramByRef(i))
            continue;
        size_t off = layout_.add(inl.params[i]);
        EvalInto argv = compileInto(c.args()[i]);
        setups.push_back([off, argv](Frame& fr) { argv(fr, fr.at(off)); });
    }

    PreparedCall out;
    out.setup = [setups](Frame& fr) {
        for (const auto& s : setups)
            s(fr);
    };
    out.body = compileStmts(inl.body);
    out.ret = inl.ret;
    return out;
}

EvalInto
ExprCompiler::compileCallInto(const CallExpr& c)
{
    const FunRef& f = c.fun();
    if (f->isNative()) {
        std::vector<RefFn> argRefs;
        argRefs.reserve(c.args().size());
        for (const auto& a : c.args())
            argRefs.push_back(compileRef(a));
        NativeFn nf = f->native;
        size_t n = argRefs.size();
        ZIRIA_ASSERT(n <= 16, "too many native function arguments");
        return [argRefs, nf, n](Frame& fr, uint8_t* dst) {
            const uint8_t* ptrs[16];
            for (size_t i = 0; i < n; ++i)
                ptrs[i] = argRefs[i](fr);
            nf(ptrs, dst);
        };
    }
    PreparedCall pc = prepareCall(c);
    if (!pc.ret) {
        Action setup = pc.setup;
        Action body = pc.body;
        return [setup, body](Frame& fr, uint8_t*) {
            setup(fr);
            body(fr);
        };
    }
    EvalInto retv = compileInto(pc.ret);
    Action setup = pc.setup;
    Action body = pc.body;
    return [setup, body, retv](Frame& fr, uint8_t* dst) {
        setup(fr);
        body(fr);
        retv(fr, dst);
    };
}

EvalInt
ExprCompiler::compileCallInt(const CallExpr& c)
{
    const FunRef& f = c.fun();
    TypeKind k = c.type()->kind();
    if (f->isNative()) {
        EvalInto callFn = compileCallInto(c);
        size_t w = c.type()->byteWidth();
        ZIRIA_ASSERT(w <= 8);
        return [callFn, k](Frame& fr) {
            uint8_t buf[8];
            callFn(fr, buf);
            return readIntRaw(k, buf);
        };
    }
    PreparedCall pc = prepareCall(c);
    ZIRIA_ASSERT(pc.ret != nullptr, "int-typed call with no return");
    EvalInt retv = compileInt(pc.ret);
    Action setup = pc.setup;
    Action body = pc.body;
    return [setup, body, retv](Frame& fr) {
        setup(fr);
        body(fr);
        return retv(fr);
    };
}

EvalDbl
ExprCompiler::compileCallDbl(const CallExpr& c)
{
    const FunRef& f = c.fun();
    if (f->isNative()) {
        EvalInto callFn = compileCallInto(c);
        return [callFn](Frame& fr) {
            uint8_t buf[8];
            callFn(fr, buf);
            double v;
            std::memcpy(&v, buf, 8);
            return v;
        };
    }
    PreparedCall pc = prepareCall(c);
    ZIRIA_ASSERT(pc.ret != nullptr, "double-typed call with no return");
    EvalDbl retv = compileDbl(pc.ret);
    Action setup = pc.setup;
    Action body = pc.body;
    return [setup, body, retv](Frame& fr) {
        setup(fr);
        body(fr);
        return retv(fr);
    };
}

// -----------------------------------------------------------------------
// Kernels
// -----------------------------------------------------------------------

CompiledKernel
ExprCompiler::compileKernel(const FunRef& f)
{
    ZIRIA_ASSERT(!f->isNative(), "compileKernel on a native function");
    for (size_t i = 0; i < f->params.size(); ++i)
        ZIRIA_ASSERT(!f->paramByRef(i),
                     "compileKernel: by-ref parameters unsupported");
    InlinedFun inl = inlineFun(f);
    CompiledKernel k;
    for (const auto& p : inl.params) {
        k.paramOffsets.push_back(layout_.add(p));
        k.paramWidths.push_back(p->type->byteWidth());
    }
    k.body = compileStmts(inl.body);
    k.bodySrc = inl.body;
    if (inl.ret) {
        k.retInto = compileInto(inl.ret);
        k.retWidth = inl.ret->type()->byteWidth();
        k.retSrc = inl.ret;
    }
    return k;
}

} // namespace ziria
