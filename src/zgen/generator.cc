#include "zgen/generator.h"

#include <algorithm>
#include <cstring>

#include "support/panic.h"
#include "support/rng.h"
#include "zast/builder.h"

namespace ziria {
namespace zgen {

using namespace zb;

namespace {

TypePtr
elemType(GenDomain d)
{
    return d == GenDomain::Int32 ? Type::int32() : Type::bit();
}

/** Small literal of a domain's element type (bounded: no overflow). */
ExprPtr
randomLit(GenDomain d, Rng& rng)
{
    if (d == GenDomain::Int32)
        return cInt(static_cast<int32_t>(rng.below(256)));
    return cBit(static_cast<int>(rng.bit()));
}

/**
 * The legacy property-test stage: take N bits into an array, fold one
 * into a bit of state, emit M random taps xored with the state.
 */
CompPtr
xorStateStage(Rng& rng, int takeN, int emitN)
{
    VarRef st = freshVar("st", Type::bit());
    VarRef a = freshVar("a", Type::array(Type::bit(), std::max(takeN, 1)));
    std::vector<SeqComp::Item> items;
    items.push_back(bindc(a, takes(Type::bit(), takeN)));
    StmtList upd;
    upd.push_back(assign(var(st), var(st) ^ idx(var(a), 0)));
    items.push_back(just(doS(std::move(upd))));
    std::vector<ExprPtr> outs;
    for (int i = 0; i < emitN; ++i) {
        outs.push_back(
            idx(var(a), static_cast<int>(rng.below(
                            static_cast<uint64_t>(takeN)))) ^
            var(st));
    }
    items.push_back(just(emits(arrayLit(std::move(outs)))));
    return letvar(st, cBit(static_cast<int>(rng.bit())),
                  repeatc(seqc(std::move(items))));
}

/** One-element delay line: emit the previous element, keep the new. */
CompPtr
delayStage(GenDomain d, Rng& rng)
{
    VarRef prev = freshVar("prev", elemType(d));
    VarRef x = freshVar("x", elemType(d));
    std::vector<SeqComp::Item> items;
    items.push_back(bindc(x, take(elemType(d))));
    items.push_back(just(emit(var(prev))));
    StmtList upd;
    upd.push_back(assign(var(prev), var(x)));
    items.push_back(just(doS(std::move(upd))));
    return letvar(prev, randomLit(d, rng), repeatc(seqc(std::move(items))));
}

/** Pure array reversal: take N, emit them back to front. */
CompPtr
reverseStage(GenDomain d, int n)
{
    VarRef a = freshVar("a", Type::array(elemType(d), n));
    std::vector<SeqComp::Item> items;
    items.push_back(bindc(a, takes(elemType(d), n)));
    std::vector<ExprPtr> outs;
    for (int i = n - 1; i >= 0; --i)
        outs.push_back(idx(var(a), i));
    items.push_back(just(emits(arrayLit(std::move(outs)))));
    return repeatc(seqc(std::move(items)));
}

/** Expanding stage: take one element, emit M derived copies. */
CompPtr
dupStage(GenDomain d, Rng& rng, int emitN)
{
    VarRef x = freshVar("x", elemType(d));
    std::vector<SeqComp::Item> items;
    items.push_back(bindc(x, take(elemType(d))));
    std::vector<ExprPtr> outs;
    for (int i = 0; i < emitN; ++i) {
        if (d == GenDomain::Int32)
            outs.push_back((var(x) + static_cast<int64_t>(rng.below(16))) &
                           0xFFFF);
        else
            outs.push_back(var(x) ^ cBit(static_cast<int>(rng.bit())));
    }
    items.push_back(just(emits(arrayLit(std::move(outs)))));
    return repeatc(seqc(std::move(items)));
}

/** Shrinking stage: fold a window of N into one stateful element. */
CompPtr
foldStage(GenDomain d, Rng& rng, int takeN)
{
    VarRef st = freshVar("st", elemType(d));
    VarRef a = freshVar("a", Type::array(elemType(d), takeN));
    std::vector<SeqComp::Item> items;
    items.push_back(bindc(a, takes(elemType(d), takeN)));
    StmtList upd;
    for (int i = 0; i < takeN; ++i) {
        if (d == GenDomain::Int32)
            upd.push_back(assign(
                var(st), (var(st) + (idx(var(a), i) & 0xFF)) & 0xFFFF));
        else
            upd.push_back(assign(var(st), var(st) ^ idx(var(a), i)));
    }
    items.push_back(just(doS(std::move(upd))));
    items.push_back(just(emit(var(st))));
    return letvar(st, randomLit(d, rng), repeatc(seqc(std::move(items))));
}

/** Pure `map f` stage (auto-map / auto-LUT / fusion fodder). */
CompPtr
mapStage(GenDomain d, Rng& rng)
{
    VarRef p = freshVar("p", elemType(d));
    ExprPtr body;
    if (d == GenDomain::Int32) {
        int64_t mul = 1 + static_cast<int64_t>(rng.below(7));
        int64_t add = static_cast<int64_t>(rng.below(256));
        body = ((var(p) & 0xFFFF) * mul + add) & 0xFFFF;
    } else {
        body = var(p) ^ cBit(static_cast<int>(rng.bit()));
    }
    FunRef f = fun("k" + std::to_string(rng.below(1000)), {p}, {},
                   std::move(body));
    return mapc(f);
}

/** Domain cast: 4 bits -> one int32, or one int32 -> 4 bits. */
CompPtr
castStage(GenDomain from, GenDomain to)
{
    if (from == GenDomain::Bits && to == GenDomain::Int32) {
        VarRef a = freshVar("a", Type::array(Type::bit(), 4));
        std::vector<SeqComp::Item> items;
        items.push_back(bindc(a, takes(Type::bit(), 4)));
        ExprPtr acc = cast(Type::int32(), idx(var(a), 0));
        for (int i = 1; i < 4; ++i)
            acc = acc + (cast(Type::int32(), idx(var(a), i)) << i);
        items.push_back(just(emit(std::move(acc))));
        return repeatc(seqc(std::move(items)));
    }
    ZIRIA_ASSERT(from == GenDomain::Int32 && to == GenDomain::Bits);
    VarRef x = freshVar("x", Type::int32());
    std::vector<SeqComp::Item> items;
    items.push_back(bindc(x, take(Type::int32())));
    std::vector<ExprPtr> outs;
    for (int i = 0; i < 4; ++i)
        outs.push_back(cast(Type::bit(), var(x) >> i));
    items.push_back(just(emits(arrayLit(std::move(outs)))));
    return repeatc(seqc(std::move(items)));
}

struct StageResult
{
    CompPtr comp;
    GenDomain outDomain;
    std::string name;
    /** emit/take rate as a fraction (for shrink budgeting). */
    int rateNum = 1;
    int rateDen = 1;
};

/**
 * Draw one stage for a given input domain.  @p budgetShrunk tells the
 * chooser the chain has already shrunk a lot, so rate-reducing stages
 * are off the menu (keeps differential outputs non-trivially long).
 */
StageResult
drawStage(const GenConfig& cfg, GenDomain in, bool budgetShrunk, Rng& rng)
{
    StageResult r;
    r.outDomain = in;
    const int arity =
        2 + static_cast<int>(rng.below(
                static_cast<uint64_t>(std::max(cfg.maxArity - 1, 1))));
    for (;;) {
        switch (rng.below(6)) {
          case 0: {
            if (in != GenDomain::Bits)
                continue;
            int takeN = 1 + static_cast<int>(rng.below(
                                static_cast<uint64_t>(cfg.maxArity)));
            int emitN = 1 + static_cast<int>(rng.below(
                                static_cast<uint64_t>(cfg.maxArity)));
            if (budgetShrunk && emitN < takeN)
                emitN = takeN;
            r.comp = xorStateStage(rng, takeN, emitN);
            r.name = "xor(" + std::to_string(takeN) + "," +
                     std::to_string(emitN) + ")";
            r.rateNum = emitN;
            r.rateDen = takeN;
            return r;
          }
          case 1:
            r.comp = delayStage(in, rng);
            r.name = "delay";
            return r;
          case 2: {
            if (!cfg.allowArrays)
                continue;
            r.comp = reverseStage(in, arity);
            r.name = "rev" + std::to_string(arity);
            return r;
          }
          case 3: {
            r.comp = dupStage(in, rng, arity);
            r.name = "dup" + std::to_string(arity);
            r.rateNum = arity;
            return r;
          }
          case 4: {
            if (budgetShrunk || !cfg.allowArrays)
                continue;
            r.comp = foldStage(in, rng, arity);
            r.name = "fold" + std::to_string(arity);
            r.rateDen = arity;
            return r;
          }
          default: {
            if (!cfg.allowMaps)
                continue;
            r.comp = mapStage(in, rng);
            r.name = "map";
            return r;
          }
        }
    }
}

} // namespace

size_t
elemWidth(GenDomain domain)
{
    return domain == GenDomain::Int32 ? 4 : 1;
}

GenProgram
genProgram(const GenConfig& cfg, uint64_t seed)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull);
    GenProgram prog;

    const int span = std::max(cfg.maxStages - cfg.minStages + 1, 1);
    const int stages =
        cfg.minStages + static_cast<int>(rng.below(
                            static_cast<uint64_t>(span)));

    GenDomain dom = cfg.domain;
    if (dom == GenDomain::Mixed)
        dom = rng.bit() ? GenDomain::Bits : GenDomain::Int32;
    prog.inDomain = dom;

    // Budget the cumulative rate change so outputs stay comparable:
    // once the chain has shrunk past ~1/4, stop drawing shrinking
    // stages.
    long num = 1, den = 1;
    const int splitAt =
        cfg.allowThreadedSplit && stages >= 2
            ? 1 + static_cast<int>(rng.below(
                      static_cast<uint64_t>(stages - 1)))
            : -1;

    // Build the stage chain in two halves so a threaded split, when
    // drawn, ends up as the OUTERMOST combinator (the compiler only
    // honours top-level `|>>>|`).
    CompPtr left, right;
    auto append = [](CompPtr& half, CompPtr stage) {
        half = half ? pipe(std::move(half), std::move(stage))
                    : std::move(stage);
    };
    for (int s = 0; s < stages; ++s) {
        CompPtr& half = splitAt >= 0 && s >= splitAt ? right : left;
        // Occasionally pivot domains mid-chain when Mixed is allowed.
        if (cfg.domain == GenDomain::Mixed && rng.below(4) == 0) {
            GenDomain to = dom == GenDomain::Bits ? GenDomain::Int32
                                                  : GenDomain::Bits;
            if (!prog.describe.empty())
                prog.describe += " >>> ";
            prog.describe += dom == GenDomain::Bits ? "b2i" : "i2b";
            append(half, castStage(dom, to));
            dom = to;
        }
        bool shrunk = num * 4 <= den;
        StageResult st = drawStage(cfg, dom, shrunk, rng);
        num *= st.rateNum;
        den *= st.rateDen;
        // Keep the fraction small; only the ~1/4 threshold matters.
        while (num % 2 == 0 && den % 2 == 0) {
            num /= 2;
            den /= 2;
        }
        if (!prog.describe.empty())
            prog.describe += s == splitAt ? " |>>>| " : " >>> ";
        dom = st.outDomain;
        append(half, std::move(st.comp));
        prog.describe += st.name;
    }
    CompPtr chain = right ? ppipe(std::move(left), std::move(right))
                          : std::move(left);

    // Finite prelude: a reconfiguring `seq` that emits a few constants
    // of the *output* type, then runs the transformer chain.  Skipped
    // when a threaded split was placed (the split must stay top-level).
    if (cfg.allowPrelude && splitAt < 0 && rng.below(3) == 0) {
        int k = 1 + static_cast<int>(rng.below(4));
        CompPtr prelude =
            timesc(cInt(k), emit(randomLit(dom, rng)));
        chain = seqc({just(std::move(prelude)), just(std::move(chain))});
        prog.describe =
            "times" + std::to_string(k) + ";" + prog.describe;
    }

    prog.comp = std::move(chain);
    prog.outDomain = dom;
    prog.stages = stages;
    return prog;
}

CompPtr
randomBitChain(uint64_t seed, int stages)
{
    Rng rng(seed);
    CompPtr c = nullptr;
    for (int s = 0; s < stages; ++s) {
        int takeN = 1 + static_cast<int>(rng.below(4));
        int emitN = 1 + static_cast<int>(rng.below(4));
        CompPtr stage = xorStateStage(rng, takeN, emitN);
        c = c ? pipe(std::move(c), std::move(stage)) : std::move(stage);
    }
    return c;
}

std::vector<uint8_t>
genInput(GenDomain domain, size_t elems, uint64_t seed)
{
    Rng rng(seed ^ 0xD1B54A32D192ED03ull);
    std::vector<uint8_t> out;
    if (domain == GenDomain::Int32) {
        out.resize(elems * 4, 0);
        for (size_t i = 0; i < elems; ++i) {
            int32_t v = static_cast<int32_t>(rng.below(256));
            std::memcpy(out.data() + 4 * i, &v, 4);
        }
    } else {
        out.resize(elems);
        for (auto& b : out)
            b = rng.bit();
    }
    return out;
}

} // namespace zgen
} // namespace ziria
