/**
 * @file
 * Random well-typed Ziria program generation for differential testing.
 *
 * Every generated program is a stream transformer built from a random
 * chain of stages; each stage is itself a well-typed computation drawn
 * from a small catalogue (stateful bit mixers, pure maps, array
 * reversals, rate-changing windows, delays, domain casts, finite
 * preludes, `|>>>|` junctions).  The catalogue is a strict superset of
 * the hand-rolled `randomChain` the property tests started from: the
 * same seeds keep indexing a deterministic program space, but the space
 * now covers computers, reconfiguring `seq`, arrays, maps (auto-map /
 * LUT / fusion fodder) and threaded splits.
 *
 * The generator only promises well-typedness and bounded value ranges
 * (no arithmetic overflow even under UBSan); it makes no attempt to
 * produce *useful* programs.  Differential testing supplies the
 * semantics: every optimization configuration must agree bit-exactly.
 */
#ifndef ZIRIA_ZGEN_GENERATOR_H
#define ZIRIA_ZGEN_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "zast/comp.h"

namespace ziria {
namespace zgen {

/** Stream element domain of a generated program. */
enum class GenDomain {
    Bits,   ///< bit-level transformer (1-byte elements)
    Int32,  ///< int32 transformer (4-byte elements)
    Mixed,  ///< bit and int32 segments joined by cast stages
};

/** Knobs bounding the generated program space. */
struct GenConfig
{
    GenDomain domain = GenDomain::Bits;
    int minStages = 1;
    int maxStages = 3;
    /** Largest static take/emit cardinality per stage. */
    int maxArity = 4;
    /** Allow array-typed takes/emits and array state. */
    bool allowArrays = true;
    /** Allow `map f` stages (auto-map / auto-LUT / fusion fodder). */
    bool allowMaps = true;
    /** Allow a finite `times { emit c }` prelude (reconfiguring seq). */
    bool allowPrelude = true;
    /** Emit one top-level `|>>>|` junction (threaded split). */
    bool allowThreadedSplit = false;
};

/** A generated program plus the metadata the test harness needs. */
struct GenProgram
{
    CompPtr comp;
    GenDomain inDomain = GenDomain::Bits;   ///< input element domain
    GenDomain outDomain = GenDomain::Bits;  ///< output element domain
    int stages = 0;
    /** Human-readable stage chain, e.g. "xor(2,3) >>> rev4 >>> map". */
    std::string describe;
};

/**
 * Generate a random well-typed program.  Deterministic in (cfg, seed):
 * the same pair always yields a structurally identical AST (fresh
 * variables aside), so a program can be regenerated per compile.
 */
GenProgram genProgram(const GenConfig& cfg, uint64_t seed);

/**
 * The original property-test chain: `stages` stateful bit stages with
 * random take/emit cardinalities and xor/index logic.  Kept as a named
 * preset so the legacy seeds keep their meaning.
 */
CompPtr randomBitChain(uint64_t seed, int stages);

/** Random input bytes for a program's input domain: `elems` elements. */
std::vector<uint8_t> genInput(GenDomain domain, size_t elems,
                              uint64_t seed);

/** Element byte width of a domain's stream type (bit = 1, int32 = 4). */
size_t elemWidth(GenDomain domain);

} // namespace zgen
} // namespace ziria

#endif // ZIRIA_ZGEN_GENERATOR_H
