#include "zopt/passes.h"

#include "support/panic.h"
#include "zast/builder.h"

namespace ziria {

namespace {

CompPtr
elab(const CompPtr& c)
{
    switch (c->kind()) {
      case CompKind::CallComp: {
        const auto& cc = static_cast<const CallCompComp&>(*c);
        const CompFunRef& f = cc.fun();
        std::vector<std::pair<VarRef, ExprPtr>> subst;
        std::vector<std::pair<VarRef, ExprPtr>> lets;
        for (size_t i = 0; i < cc.args().size(); ++i) {
            const ExprPtr& arg = cc.args()[i];
            if (arg->kind() == ExprKind::Const ||
                arg->kind() == ExprKind::Var) {
                subst.emplace_back(f->params[i], arg);
            } else {
                // Bind the argument once so it is not re-evaluated at
                // every use of the parameter.
                VarRef v = freshVar(f->params[i]->name,
                                    f->params[i]->type);
                subst.emplace_back(f->params[i], zb::var(v));
                lets.emplace_back(v, arg);
            }
        }
        CompPtr body = cloneComp(f->body, std::move(subst));
        body = elab(body);
        for (auto it = lets.rbegin(); it != lets.rend(); ++it)
            body = zb::letvar(it->first, it->second, std::move(body));
        return body;
      }
      case CompKind::Seq: {
        const auto& s = static_cast<const SeqComp&>(*c);
        std::vector<SeqComp::Item> items;
        for (const auto& it : s.items())
            items.push_back(SeqComp::Item{it.bind, elab(it.comp)});
        return std::make_shared<SeqComp>(std::move(items));
      }
      case CompKind::Pipe: {
        const auto& p = static_cast<const PipeComp&>(*c);
        CompPtr l = elab(p.left());
        CompPtr r = elab(p.right());
        return std::make_shared<PipeComp>(std::move(l), std::move(r),
                                          p.threaded());
      }
      case CompKind::If: {
        const auto& i = static_cast<const IfComp&>(*c);
        CompPtr t = elab(i.thenC());
        CompPtr e = i.elseC() ? elab(i.elseC()) : nullptr;
        return std::make_shared<IfComp>(i.cond(), std::move(t),
                                        std::move(e));
      }
      case CompKind::Repeat: {
        const auto& r = static_cast<const RepeatComp&>(*c);
        return std::make_shared<RepeatComp>(elab(r.body()), r.hint());
      }
      case CompKind::Times: {
        const auto& t = static_cast<const TimesComp&>(*c);
        return std::make_shared<TimesComp>(t.count(), t.inductionVar(),
                                           elab(t.body()));
      }
      case CompKind::While: {
        const auto& w = static_cast<const WhileComp&>(*c);
        return std::make_shared<WhileComp>(w.cond(), elab(w.body()));
      }
      case CompKind::LetVar: {
        const auto& l = static_cast<const LetVarComp&>(*c);
        return std::make_shared<LetVarComp>(l.var(), l.init(),
                                            elab(l.body()));
      }
      default:
        return c;
    }
}

} // namespace

CompPtr
elaborateComp(const CompPtr& c)
{
    return elab(c);
}

} // namespace ziria
