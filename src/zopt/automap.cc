#include "zopt/passes.h"

#include <atomic>

#include "support/panic.h"
#include "zast/builder.h"
#include "zvect/simple_comp.h"

namespace ziria {

namespace {

std::atomic<int> autoMapCounter{1};

/**
 * Attempt to turn a repeat body into a map kernel.  The body must take
 * exactly one element and emit exactly one element per iteration.
 */
FunRef
tryMakeMapFun(const CompPtr& body)
{
    auto norm = normalizeComp(body, 4096);
    if (!norm)
        return nullptr;
    const SimpleComp& sc = *norm;
    if (sc.takes != 1 || sc.emits != 1)
        return nullptr;
    if (sc.retExpr && !sc.retExpr->type()->isUnit())
        return nullptr;

    // Build the kernel: statements up to the emit; the emitted value is
    // staged into a scratch temp when statements follow it.
    VarRef param;
    StmtList stmts;
    ExprPtr retE;
    VarRef retTmp;
    bool sawTake = false;
    bool sawEmit = false;
    for (const auto& st : sc.steps) {
        switch (st.kind) {
          case SimpleStep::Kind::TakeBind:
            if (sawTake)
                return nullptr;
            sawTake = true;
            // Statements before the take would run before input arrives
            // in the repeat form; as a map they run after.  That is only
            // observable through state shared with other components,
            // which the >>> race rule forbids, so reordering is safe.
            if (st.intoLhs) {
                // `takes(T, 1)` normalizes to a take whose destination
                // is an lvalue (a[0]); route the parameter into it.
                param = freshVar("x", st.takeType);
                stmts.push_back(zb::assign(st.intoLhs, zb::var(param)));
            } else {
                param = st.bind ? st.bind : freshVar("x", st.takeType);
            }
            break;
          case SimpleStep::Kind::Emit:
            sawEmit = true;
            retE = st.expr;
            break;
          case SimpleStep::Kind::Do:
            if (sawEmit && retE && !retTmp) {
                // Stage the output before trailing state updates.
                retTmp = freshVar("map_out", retE->type());
                retTmp->scratch = true;
                stmts.push_back(zb::sDecl(retTmp, retE));
                retE = zb::var(retTmp);
            }
            for (const auto& s : st.stmts)
                stmts.push_back(s);
            break;
        }
    }
    if (!sawTake || !sawEmit || !retE)
        return nullptr;

    // Demote the vectorizer's per-iteration staging variables to kernel
    // locals so they stay out of auto-LUT keys.
    std::vector<VarRef> frees;
    freeVarsStmts(stmts, frees);
    freeVarsExpr(retE, frees);
    StmtList decls;
    for (const auto& v : frees) {
        if (v->scratch && v.get() != param.get())
            decls.push_back(zb::sDecl(v, nullptr));
    }
    StmtList body;
    body.reserve(decls.size() + stmts.size());
    for (auto& d : decls)
        body.push_back(std::move(d));
    for (auto& s : stmts)
        body.push_back(std::move(s));

    std::string name =
        "auto_map_" + std::to_string(autoMapCounter.fetch_add(1));
    return zb::fun(std::move(name), {param}, std::move(body), retE);
}

CompPtr
amap(const CompPtr& c, MapStats* stats)
{
    switch (c->kind()) {
      case CompKind::Repeat: {
        const auto& r = static_cast<const RepeatComp&>(*c);
        if (FunRef f = tryMakeMapFun(r.body())) {
            if (stats)
                ++stats->autoMapped;
            return zb::mapc(f);
        }
        return std::make_shared<RepeatComp>(amap(r.body(), stats),
                                            r.hint());
      }
      case CompKind::Seq: {
        const auto& s = static_cast<const SeqComp&>(*c);
        std::vector<SeqComp::Item> items;
        for (const auto& it : s.items())
            items.push_back(SeqComp::Item{it.bind, amap(it.comp, stats)});
        return std::make_shared<SeqComp>(std::move(items));
      }
      case CompKind::Pipe: {
        const auto& p = static_cast<const PipeComp&>(*c);
        CompPtr l = amap(p.left(), stats);
        CompPtr r = amap(p.right(), stats);
        return std::make_shared<PipeComp>(std::move(l), std::move(r),
                                          p.threaded());
      }
      case CompKind::If: {
        const auto& i = static_cast<const IfComp&>(*c);
        CompPtr t = amap(i.thenC(), stats);
        CompPtr e = i.elseC() ? amap(i.elseC(), stats) : nullptr;
        return std::make_shared<IfComp>(i.cond(), std::move(t),
                                        std::move(e));
      }
      case CompKind::Times: {
        const auto& t = static_cast<const TimesComp&>(*c);
        return std::make_shared<TimesComp>(t.count(), t.inductionVar(),
                                           amap(t.body(), stats));
      }
      case CompKind::While: {
        const auto& w = static_cast<const WhileComp&>(*c);
        return std::make_shared<WhileComp>(w.cond(),
                                           amap(w.body(), stats));
      }
      case CompKind::LetVar: {
        const auto& l = static_cast<const LetVarComp&>(*c);
        return std::make_shared<LetVarComp>(l.var(), l.init(),
                                            amap(l.body(), stats));
      }
      default:
        return c;
    }
}

} // namespace

CompPtr
autoMapComp(const CompPtr& c, MapStats* stats)
{
    return amap(c, stats);
}

CompPtr
fuseMaps(const CompPtr& c, MapStats* stats)
{
    switch (c->kind()) {
      case CompKind::Pipe: {
        const auto& p = static_cast<const PipeComp&>(*c);
        CompPtr l = fuseMaps(p.left(), stats);
        CompPtr r = fuseMaps(p.right(), stats);
        if (!p.threaded() && l->kind() == CompKind::Map &&
            r->kind() == CompKind::Map) {
            const FunRef& f = static_cast<const MapComp&>(*l).fun();
            const FunRef& g = static_cast<const MapComp&>(*r).fun();
            bool refless = !f->paramByRef(0) && !g->paramByRef(0);
            if (refless) {
                VarRef x = freshVar("x", f->params[0]->type);
                ExprPtr body = zb::call(g, {zb::call(f, {zb::var(x)})});
                FunRef h = zb::fun(f->name + "_then_" + g->name, {x}, {},
                                   std::move(body));
                if (stats)
                    ++stats->fused;
                return zb::mapc(h);
            }
        }
        return std::make_shared<PipeComp>(std::move(l), std::move(r),
                                          p.threaded());
      }
      case CompKind::Seq: {
        const auto& s = static_cast<const SeqComp&>(*c);
        std::vector<SeqComp::Item> items;
        for (const auto& it : s.items())
            items.push_back(
                SeqComp::Item{it.bind, fuseMaps(it.comp, stats)});
        return std::make_shared<SeqComp>(std::move(items));
      }
      case CompKind::If: {
        const auto& i = static_cast<const IfComp&>(*c);
        CompPtr t = fuseMaps(i.thenC(), stats);
        CompPtr e = i.elseC() ? fuseMaps(i.elseC(), stats) : nullptr;
        return std::make_shared<IfComp>(i.cond(), std::move(t),
                                        std::move(e));
      }
      case CompKind::Repeat: {
        const auto& r = static_cast<const RepeatComp&>(*c);
        return std::make_shared<RepeatComp>(fuseMaps(r.body(), stats),
                                            r.hint());
      }
      case CompKind::LetVar: {
        const auto& l = static_cast<const LetVarComp&>(*c);
        return std::make_shared<LetVarComp>(l.var(), l.init(),
                                            fuseMaps(l.body(), stats));
      }
      default:
        return c;
    }
}

} // namespace ziria
