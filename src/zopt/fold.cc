#include "zopt/passes.h"

#include <cmath>

#include "support/panic.h"
#include "zast/builder.h"
#include "zexpr/compile_expr.h"

namespace ziria {

namespace {

bool
isConst(const ExprPtr& e)
{
    return e->kind() == ExprKind::Const;
}

const Value&
constVal(const ExprPtr& e)
{
    return static_cast<const ConstExpr&>(*e).value();
}

/** Fold integral/double/bool binary ops over constants. */
ExprPtr
foldBin(const BinExpr& b, const ExprPtr& l, const ExprPtr& r)
{
    const TypePtr& ot = l->type();
    const TypePtr& rt = b.type();
    if (ot->isIntegral() && (rt->isIntegral() || rt->isBool())) {
        int64_t a = constVal(l).asInt();
        int64_t c = constVal(r).asInt();
        TypeKind k = rt->kind();
        int64_t v = 0;
        switch (b.op()) {
          case BinOp::Add: v = a + c; break;
          case BinOp::Sub: v = a - c; break;
          case BinOp::Mul: v = a * c; break;
          case BinOp::Div:
            if (c == 0)
                return nullptr;  // leave for runtime error
            v = c == -1 ? -a : a / c;
            break;
          case BinOp::Rem:
            if (c == 0)
                return nullptr;
            v = c == -1 ? 0 : a % c;
            break;
          case BinOp::Shl:
            if (c < 0 || c >= 64)
                return nullptr;
            v = static_cast<int64_t>(static_cast<uint64_t>(a) << c);
            break;
          case BinOp::Shr:
            if (c < 0 || c >= 64)
                return nullptr;
            v = a >> c;
            break;
          case BinOp::BAnd: v = a & c; break;
          case BinOp::BOr: v = a | c; break;
          case BinOp::BXor: v = a ^ c; break;
          case BinOp::Eq: v = a == c; break;
          case BinOp::Ne: v = a != c; break;
          case BinOp::Lt: v = a < c; break;
          case BinOp::Le: v = a <= c; break;
          case BinOp::Gt: v = a > c; break;
          case BinOp::Ge: v = a >= c; break;
          case BinOp::LAnd: v = a && c; break;
          case BinOp::LOr: v = a || c; break;
        }
        return zb::cVal(Value::intOf(rt, truncToKind(k, v)));
    }
    if (ot->isDouble()) {
        double a = constVal(l).asDouble();
        double c = constVal(r).asDouble();
        switch (b.op()) {
          case BinOp::Add: return zb::cDouble(a + c);
          case BinOp::Sub: return zb::cDouble(a - c);
          case BinOp::Mul: return zb::cDouble(a * c);
          case BinOp::Div: return zb::cDouble(a / c);
          case BinOp::Eq: return zb::cBool(a == c);
          case BinOp::Ne: return zb::cBool(a != c);
          case BinOp::Lt: return zb::cBool(a < c);
          case BinOp::Le: return zb::cBool(a <= c);
          case BinOp::Gt: return zb::cBool(a > c);
          case BinOp::Ge: return zb::cBool(a >= c);
          default: return nullptr;
        }
    }
    return nullptr;
}

StmtList foldStmtList(const StmtList& in);

StmtPtr
foldStmt(const StmtPtr& s)
{
    switch (s->kind()) {
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(*s);
        return std::make_shared<AssignStmt>(foldExpr(a.lhs()),
                                            foldExpr(a.rhs()));
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        ExprPtr c = foldExpr(i.cond());
        return std::make_shared<IfStmt>(std::move(c),
                                        foldStmtList(i.thenStmts()),
                                        foldStmtList(i.elseStmts()));
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*s);
        return std::make_shared<ForStmt>(f.inductionVar(),
                                         foldExpr(f.lo()),
                                         foldExpr(f.hi()),
                                         foldStmtList(f.body()));
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(*s);
        return std::make_shared<WhileStmt>(foldExpr(w.cond()),
                                           foldStmtList(w.body()));
      }
      case StmtKind::VarDecl: {
        const auto& d = static_cast<const VarDeclStmt&>(*s);
        return std::make_shared<VarDeclStmt>(
            d.var(), d.init() ? foldExpr(d.init()) : nullptr);
      }
      case StmtKind::Eval:
        return std::make_shared<EvalStmt>(
            foldExpr(static_cast<const EvalStmt&>(*s).expr()));
    }
    panic("foldStmt: unknown kind");
}

StmtList
foldStmtList(const StmtList& in)
{
    StmtList out;
    out.reserve(in.size());
    for (const auto& s : in) {
        // Statically dead if-branches are dropped entirely.
        if (s->kind() == StmtKind::If) {
            const auto& i = static_cast<const IfStmt&>(*s);
            ExprPtr c = foldExpr(i.cond());
            if (isConst(c)) {
                const StmtList& br = constVal(c).asInt()
                    ? i.thenStmts()
                    : i.elseStmts();
                for (const auto& b : foldStmtList(br))
                    out.push_back(b);
                continue;
            }
        }
        out.push_back(foldStmt(s));
    }
    return out;
}

} // namespace

ExprPtr
foldExpr(const ExprPtr& e)
{
    switch (e->kind()) {
      case ExprKind::Const:
      case ExprKind::Var:
        return e;
      case ExprKind::Bin: {
        const auto& b = static_cast<const BinExpr&>(*e);
        ExprPtr l = foldExpr(b.lhs());
        ExprPtr r = foldExpr(b.rhs());
        if (isConst(l) && isConst(r)) {
            if (ExprPtr v = foldBin(b, l, r))
                return v;
        }
        return std::make_shared<BinExpr>(b.type(), b.op(), std::move(l),
                                         std::move(r));
      }
      case ExprKind::Un: {
        const auto& u = static_cast<const UnExpr&>(*e);
        ExprPtr s = foldExpr(u.sub());
        if (isConst(s) && s->type()->isIntegral()) {
            int64_t v = constVal(s).asInt();
            TypeKind k = u.type()->kind();
            switch (u.op()) {
              case UnOp::Neg:
                return zb::cVal(Value::intOf(u.type(),
                                             truncToKind(k, -v)));
              case UnOp::BNot:
                return zb::cVal(Value::intOf(u.type(),
                                             truncToKind(k, ~v)));
              case UnOp::LNot:
                return zb::cBool(!v);
            }
        }
        return std::make_shared<UnExpr>(u.type(), u.op(), std::move(s));
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const CastExpr&>(*e);
        ExprPtr s = foldExpr(c.sub());
        if (isConst(s)) {
            if (s->type()->isIntegral() && c.type()->isIntegral()) {
                return zb::cVal(Value::intOf(
                    c.type(), truncToKind(c.type()->kind(),
                                          constVal(s).asInt())));
            }
            if (s->type()->isIntegral() && c.type()->isDouble()) {
                return zb::cDouble(
                    static_cast<double>(constVal(s).asInt()));
            }
        }
        return std::make_shared<CastExpr>(c.type(), std::move(s));
      }
      case ExprKind::Index: {
        const auto& i = static_cast<const IndexExpr&>(*e);
        ExprPtr a = foldExpr(i.arr());
        ExprPtr ix = foldExpr(i.idx());
        if (isConst(a) && isConst(ix)) {
            int64_t k = constVal(ix).asInt();
            if (k >= 0 && k < a->type()->len())
                return zb::cVal(constVal(a).at(static_cast<int>(k)));
        }
        return std::make_shared<IndexExpr>(i.type(), std::move(a),
                                           std::move(ix));
      }
      case ExprKind::Slice: {
        const auto& s = static_cast<const SliceExpr&>(*e);
        return std::make_shared<SliceExpr>(s.type(), foldExpr(s.arr()),
                                           foldExpr(s.base()),
                                           s.sliceLen());
      }
      case ExprKind::Field: {
        const auto& f = static_cast<const FieldExpr&>(*e);
        ExprPtr r = foldExpr(f.rec());
        if (isConst(r))
            return zb::cVal(constVal(r).field(f.field()));
        return std::make_shared<FieldExpr>(f.type(), std::move(r),
                                           f.field());
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(*e);
        std::vector<ExprPtr> args;
        for (const auto& a : c.args())
            args.push_back(foldExpr(a));
        return std::make_shared<CallExpr>(c.type(), c.fun(),
                                          std::move(args));
      }
      case ExprKind::ArrayLit: {
        const auto& a = static_cast<const ArrayLitExpr&>(*e);
        std::vector<ExprPtr> elems;
        bool allConst = true;
        for (const auto& el : a.elems()) {
            elems.push_back(foldExpr(el));
            allConst = allConst && isConst(elems.back());
        }
        if (allConst) {
            std::vector<Value> vals;
            for (const auto& el : elems)
                vals.push_back(constVal(el));
            return zb::cVal(
                Value::arrayOf(a.type()->elem(), vals));
        }
        return std::make_shared<ArrayLitExpr>(a.type(), std::move(elems));
      }
      case ExprKind::StructLit: {
        const auto& sl = static_cast<const StructLitExpr&>(*e);
        std::vector<ExprPtr> fields;
        for (const auto& fe : sl.fieldExprs())
            fields.push_back(foldExpr(fe));
        return std::make_shared<StructLitExpr>(sl.type(),
                                               std::move(fields));
      }
      case ExprKind::Cond: {
        const auto& c = static_cast<const CondExpr&>(*e);
        ExprPtr g = foldExpr(c.cond());
        if (isConst(g)) {
            return constVal(g).asInt() ? foldExpr(c.thenE())
                                       : foldExpr(c.elseE());
        }
        return std::make_shared<CondExpr>(c.type(), std::move(g),
                                          foldExpr(c.thenE()),
                                          foldExpr(c.elseE()));
      }
    }
    panic("foldExpr: unknown kind");
}

CompPtr
foldComp(const CompPtr& c)
{
    switch (c->kind()) {
      case CompKind::Take:
      case CompKind::TakeMany:
      case CompKind::Map:
      case CompKind::Filter:
        return c;
      case CompKind::Emit:
        return std::make_shared<EmitComp>(
            foldExpr(static_cast<const EmitComp&>(*c).expr()));
      case CompKind::Emits:
        return std::make_shared<EmitsComp>(
            foldExpr(static_cast<const EmitsComp&>(*c).expr()));
      case CompKind::Return: {
        const auto& r = static_cast<const ReturnComp&>(*c);
        return std::make_shared<ReturnComp>(
            foldStmtList(r.stmts()),
            r.ret() ? foldExpr(r.ret()) : nullptr);
      }
      case CompKind::Seq: {
        const auto& s = static_cast<const SeqComp&>(*c);
        std::vector<SeqComp::Item> items;
        for (const auto& it : s.items())
            items.push_back(SeqComp::Item{it.bind, foldComp(it.comp)});
        return std::make_shared<SeqComp>(std::move(items));
      }
      case CompKind::Pipe: {
        const auto& p = static_cast<const PipeComp&>(*c);
        CompPtr l = foldComp(p.left());
        CompPtr r = foldComp(p.right());
        return std::make_shared<PipeComp>(std::move(l), std::move(r),
                                          p.threaded());
      }
      case CompKind::If: {
        const auto& i = static_cast<const IfComp&>(*c);
        ExprPtr g = foldExpr(i.cond());
        if (g->kind() == ExprKind::Const) {
            bool taken = constVal(g).asInt() != 0;
            if (taken)
                return foldComp(i.thenC());
            if (i.elseC())
                return foldComp(i.elseC());
            return zb::ret(zb::cUnit());
        }
        CompPtr t = foldComp(i.thenC());
        CompPtr e = i.elseC() ? foldComp(i.elseC()) : nullptr;
        return std::make_shared<IfComp>(std::move(g), std::move(t),
                                        std::move(e));
      }
      case CompKind::Repeat: {
        const auto& r = static_cast<const RepeatComp&>(*c);
        return std::make_shared<RepeatComp>(foldComp(r.body()), r.hint());
      }
      case CompKind::Times: {
        const auto& t = static_cast<const TimesComp&>(*c);
        return std::make_shared<TimesComp>(foldExpr(t.count()),
                                           t.inductionVar(),
                                           foldComp(t.body()));
      }
      case CompKind::While: {
        const auto& w = static_cast<const WhileComp&>(*c);
        return std::make_shared<WhileComp>(foldExpr(w.cond()),
                                           foldComp(w.body()));
      }
      case CompKind::LetVar: {
        const auto& l = static_cast<const LetVarComp&>(*c);
        return std::make_shared<LetVarComp>(
            l.var(), l.init() ? foldExpr(l.init()) : nullptr,
            foldComp(l.body()));
      }
      case CompKind::Native: {
        const auto& n = static_cast<const NativeComp&>(*c);
        std::vector<ExprPtr> args;
        for (const auto& a : n.args())
            args.push_back(foldExpr(a));
        return std::make_shared<NativeComp>(n.spec(), std::move(args));
      }
      case CompKind::CallComp: {
        const auto& cc = static_cast<const CallCompComp&>(*c);
        std::vector<ExprPtr> args;
        for (const auto& a : cc.args())
            args.push_back(foldExpr(a));
        return std::make_shared<CallCompComp>(cc.fun(), std::move(args));
      }
    }
    panic("foldComp: unknown kind");
}

} // namespace ziria
