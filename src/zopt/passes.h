/**
 * @file
 * AST-to-AST optimization passes (paper §4).
 *
 *  - elaboration: inlines computation-function calls (parser frontend);
 *  - constant folding / partial evaluation over expressions;
 *  - auto-mapping: turns `repeat { x <- take; do ...; emit e }` into
 *    `map f` — the static-scheduling optimization that removes tick/proc
 *    administration from the data path;
 *  - map fusion: `map f >>> map g` becomes `map (g . f)`, so long map
 *    chains execute as one call per element.
 */
#ifndef ZIRIA_ZOPT_PASSES_H
#define ZIRIA_ZOPT_PASSES_H

#include "zast/comp.h"

namespace ziria {

/** Inline all computation-function calls.  Returns a fresh tree. */
CompPtr elaborateComp(const CompPtr& c);

/** Constant-fold an expression (returns the same node when unchanged). */
ExprPtr foldExpr(const ExprPtr& e);

/** Constant-fold every expression inside a computation (fresh tree). */
CompPtr foldComp(const CompPtr& c);

/** Statistics from the auto-map / fusion passes. */
struct MapStats
{
    int autoMapped = 0;
    int fused = 0;
};

/**
 * Auto-mapping (must run on a checked tree: uses ctype).  Returns a
 * fresh tree in which eligible repeats are `map f` nodes; scratch
 * variables of the vectorizer become kernel locals.
 */
CompPtr autoMapComp(const CompPtr& c, MapStats* stats = nullptr);

/** Fuse adjacent maps across `>>>`.  Returns a fresh tree. */
CompPtr fuseMaps(const CompPtr& c, MapStats* stats = nullptr);

} // namespace ziria

#endif // ZIRIA_ZOPT_PASSES_H
