/**
 * @file
 * The auto-LUT pass (paper §4, "Lookup table generation").
 *
 * Detects map kernels that are amenable to a LUT implementation — pure
 * functions of a small number of semantic bits (the input element plus any
 * captured state the kernel reads) — and builds the table by exhaustive
 * evaluation of the compiled kernel.  State writes are captured in the
 * table entries, so stateful kernels like the WiFi scrambler LUT exactly
 * as in the paper's Figure 3 (8 input bits + 7 state bits -> 2^15
 * entries).
 */
#ifndef ZIRIA_ZOPT_AUTOLUT_H
#define ZIRIA_ZOPT_AUTOLUT_H

#include <memory>

#include "zexpr/compile_expr.h"
#include "zexpr/lut.h"

namespace ziria {

/**
 * Try to replace a compiled map kernel with a lookup table.
 *
 * @param f       the map function (analyzed for captured state)
 * @param kernel  its compiled form (parameter slots already allocated)
 * @param ec      the compiler (provides the frame layout)
 * @param limits  key/table size policy
 * @return the table, or null when the kernel is not LUT-able (key too
 *         wide, doubles involved, or the function is annotated noLut).
 */
std::shared_ptr<CompiledLut> tryBuildMapLut(const FunRef& f,
                                            const CompiledKernel& kernel,
                                            ExprCompiler& ec,
                                            const LutLimits& limits);

} // namespace ziria

#endif // ZIRIA_ZOPT_AUTOLUT_H
