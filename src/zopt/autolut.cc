#include "zopt/autolut.h"

#include "zcheck/check.h"

namespace ziria {

std::shared_ptr<CompiledLut>
tryBuildMapLut(const FunRef& f, const CompiledKernel& kernel,
               ExprCompiler& ec, const LutLimits& limits)
{
    if (f->noLut || f->isNative())
        return nullptr;
    if (f->params.size() != 1)
        return nullptr;

    // Key = input parameter + every captured variable the kernel reads.
    // Outputs = return value + every captured variable it writes.
    std::vector<LutSlot> keySlots;
    keySlots.push_back(LutSlot{kernel.paramOffsets[0],
                               f->params[0]->type, 0});

    std::vector<LutSlot> outSlots;
    for (const auto& [var, acc] : freeVarAccessFun(f)) {
        // The captured variable must have a frame slot by now (the kernel
        // compilation touched it).
        if (!ec.layout().has(var))
            return nullptr;
        size_t off = ec.layout().offsetOf(var);
        // Find a shared_ptr-free handle: LutSlot only needs offset+type.
        if (acc.read)
            keySlots.push_back(LutSlot{off, var->type, 0});
        if (acc.write)
            outSlots.push_back(LutSlot{off, var->type, 0});
    }

    auto plan = planLut(std::move(keySlots), std::move(outSlots),
                        f->retType, limits);
    if (!plan)
        return nullptr;

    return std::make_shared<CompiledLut>(std::move(*plan), kernel.body,
                                         kernel.retInto,
                                         ec.layout().frameSize());
}

} // namespace ziria
