#include "zserve/endpoints.h"

#include <poll.h>
#include <sys/socket.h>

#include "support/panic.h"
#include "zserve/socket.h"

namespace ziria {
namespace serve {

namespace {

/** Poll slice for cancellable blocking waits, in ms. */
constexpr int kPollSliceMs = 50;

} // namespace

// ---------------------------------------------------------------------
// SocketSource
// ---------------------------------------------------------------------

SocketSource::SocketSource(int fd, size_t elem_width)
    : fd_(fd), width_(elem_width)
{
    ZIRIA_ASSERT(elem_width > 0, "SocketSource needs a positive width");
}

bool
SocketSource::fillPayload()
{
    Frame f;
    uint8_t rbuf[64 * 1024];
    for (;;) {
        switch (parser_.next(f)) {
          case FrameParser::Result::Frame:
            switch (f.type) {
              case FrameType::Data:
                if (f.payload.empty() || f.payload.size() % width_ != 0)
                    fatalf("socket source: Data payload of ",
                           f.payload.size(),
                           " byte(s) is not a positive multiple of the ",
                           width_, "-byte element width");
                payload_ = std::move(f.payload);
                payloadPos_ = 0;
                ++frames_;
                return true;
              case FrameType::End:
                ended_ = true;
                return false;
              case FrameType::Error:
                peerError_.assign(f.payload.begin(), f.payload.end());
                ended_ = true;
                fatalf("socket source: peer error: ", peerError_);
              case FrameType::Hello:
              case FrameType::Halt:
              case FrameType::Stat:
              case FrameType::Checkpoint:
              case FrameType::Migrate:
                // Metadata frames are legal on the stream; skip.
                continue;
            }
            continue;
          case FrameParser::Result::Error:
            fatalf("socket source: ", parser_.error());
          case FrameParser::Result::NeedMore:
            break;
        }
        // Need more bytes: cancellable blocking read.
        if (cancelled_.load(std::memory_order_relaxed))
            return false;
        pollfd p{fd_, POLLIN, 0};
        int pr = ::poll(&p, 1, kPollSliceMs);
        if (pr <= 0)
            continue;  // timeout slice (re-check cancel) or EINTR
        long n = recvSome(fd_, rbuf, sizeof rbuf);
        if (n > 0) {
            parser_.feed(rbuf, static_cast<size_t>(n));
        } else if (n == 0) {
            if (parser_.midFrame())
                fatalf("socket source: connection closed mid-frame");
            ended_ = true;  // orderly close == End
            return false;
        } else if (n == -2) {
            fatalf("socket source: connection error");
        }
    }
}

const uint8_t*
SocketSource::next()
{
    if (cancelled_.load(std::memory_order_relaxed))
        return nullptr;
    if (payloadPos_ >= payload_.size()) {
        if (ended_ || !fillPayload())
            return nullptr;
    }
    const uint8_t* p = payload_.data() + payloadPos_;
    payloadPos_ += width_;
    ++elems_;
    return p;
}

void
SocketSource::cancel()
{
    cancelled_.store(true, std::memory_order_relaxed);
}

void
SocketSource::rearm()
{
    cancelled_.store(false, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// SocketSink
// ---------------------------------------------------------------------

SocketSink::SocketSink(int fd, size_t elem_width, size_t batch_elems)
    : fd_(fd), width_(elem_width),
      batchBytes_(std::max<size_t>(1, batch_elems) * elem_width)
{
    ZIRIA_ASSERT(elem_width > 0, "SocketSink needs a positive width");
    if (batchBytes_ > kMaxPayload)
        batchBytes_ = kMaxPayload - kMaxPayload % elem_width;
    buf_.reserve(batchBytes_);
}

void
SocketSink::sendBytes(const std::vector<uint8_t>& bytes)
{
    if (cancelled_.load(std::memory_order_relaxed))
        return;
    if (!sendAll(fd_, bytes.data(), bytes.size()))
        fatalf("socket sink: connection error while sending");
}

void
SocketSink::put(const uint8_t* elem)
{
    buf_.insert(buf_.end(), elem, elem + width_);
    ++elems_;
    if (buf_.size() >= batchBytes_)
        flush();
}

void
SocketSink::flush()
{
    if (buf_.empty())
        return;
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::Data, buf_);
    sendBytes(wire);
    ++frames_;
    buf_.clear();
}

void
SocketSink::finish(const uint8_t* ctrl, size_t ctrl_bytes)
{
    flush();
    std::vector<uint8_t> wire;
    if (ctrl && ctrl_bytes)
        encodeFrame(wire, FrameType::Halt, ctrl, ctrl_bytes);
    encodeFrame(wire, FrameType::End);
    sendBytes(wire);
}

void
SocketSink::cancel()
{
    cancelled_.store(true, std::memory_order_relaxed);
}

void
SocketSink::rearm()
{
    cancelled_.store(false, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// UDP variants
// ---------------------------------------------------------------------

UdpSource::UdpSource(int fd, size_t elem_width)
    : fd_(fd), width_(elem_width)
{
    ZIRIA_ASSERT(elem_width > 0, "UdpSource needs a positive width");
}

const uint8_t*
UdpSource::next()
{
    for (;;) {
        if (cancelled_.load(std::memory_order_relaxed) || ended_)
            return nullptr;
        if (payloadPos_ < payload_.size()) {
            const uint8_t* p = payload_.data() + payloadPos_;
            payloadPos_ += width_;
            return p;
        }
        pollfd pf{fd_, POLLIN, 0};
        int pr = ::poll(&pf, 1, kPollSliceMs);
        if (pr <= 0)
            continue;
        if (rbuf_.size() < kHeaderBytes + kMaxPayload)
            rbuf_.resize(kHeaderBytes + kMaxPayload);
        long n = ::recv(fd_, rbuf_.data(), rbuf_.size(), 0);
        if (n <= 0)
            continue;
        Frame f;
        if (!decodeDatagram(rbuf_.data(), static_cast<size_t>(n), f)) {
            ++dropped_;  // lossy transport: skip, don't fail
            continue;
        }
        if (f.type == FrameType::End) {
            ended_ = true;
            return nullptr;
        }
        if (f.type != FrameType::Data || f.payload.empty() ||
            f.payload.size() % width_ != 0) {
            ++dropped_;
            continue;
        }
        payload_ = std::move(f.payload);
        payloadPos_ = 0;
        ++frames_;
    }
}

void
UdpSource::cancel()
{
    cancelled_.store(true, std::memory_order_relaxed);
}

void
UdpSource::rearm()
{
    cancelled_.store(false, std::memory_order_relaxed);
}

UdpSink::UdpSink(int fd, size_t elem_width, size_t batch_elems)
    : fd_(fd), width_(elem_width),
      batchBytes_(std::max<size_t>(1, batch_elems) * elem_width)
{
    ZIRIA_ASSERT(elem_width > 0, "UdpSink needs a positive width");
    // One frame per datagram: keep well under typical MTU-ish limits is
    // the caller's concern; the hard cap is the protocol payload cap.
    if (batchBytes_ > kMaxPayload)
        batchBytes_ = kMaxPayload - kMaxPayload % elem_width;
}

void
UdpSink::put(const uint8_t* elem)
{
    buf_.insert(buf_.end(), elem, elem + width_);
    if (buf_.size() >= batchBytes_)
        flush();
}

void
UdpSink::flush()
{
    if (buf_.empty())
        return;
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::Data, buf_);
    // Datagram semantics: best effort, drop on error (lossy transport).
    (void)!::send(fd_, wire.data(), wire.size(), 0);
    ++frames_;
    buf_.clear();
}

void
UdpSink::finish()
{
    flush();
    std::vector<uint8_t> wire;
    encodeFrame(wire, FrameType::End);
    (void)!::send(fd_, wire.data(), wire.size(), 0);
}

} // namespace serve
} // namespace ziria
