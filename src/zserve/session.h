/**
 * @file
 * One serving session: a client connection bound to its own compiled
 * pipeline instance, stepped cooperatively by the server's worker pool.
 *
 * The paper's tick/proc model is what makes this cheap: a compiled
 * pipeline is a re-enterable state machine that advances in constant
 * space, so a session parked on an empty input queue or a full output
 * buffer costs nothing until the I/O thread re-schedules it — hundreds
 * of sessions multiplex over a handful of worker threads with no thread
 * per session.
 *
 * Threading contract (enforced by the Server, audited for TSan):
 *  - I/O-thread-only state: the socket fd, frame parser, pending input
 *    bytes, read-pause flag, wire-output buffer, activity clock,
 *    per-session byte/frame counters;
 *  - worker-only state: the pipeline, stepper, queue-backed source and
 *    its fault decorator, restart supervisor (at most one worker steps
 *    a session at a time — the scheduler state machine guarantees it);
 *  - shared, internally synchronized: the bounded SpscQueue of decoded
 *    input elements (producer = I/O thread, consumer = worker) — this
 *    is the per-session backpressure: queue full -> reads pause -> TCP
 *    pushes back on the client;
 *  - shared under mu: the raw output-element buffer (worker appends,
 *    I/O thread drains into Data frames) and the completion flags;
 *  - shared under the Server's scheduler mutex: the scheduling state.
 *
 * Per-session fault tolerance: an optional FaultSpec (reusing the
 * FaultySource decorator unchanged) injects deterministic faults into
 * one session's input, and an optional RestartPolicy gives each session
 * its own RestartSupervisor — a faulted session is re-armed in place or
 * evicted with an Error frame, while its neighbors' pipelines, queues,
 * and sockets are untouched.
 */
#ifndef ZIRIA_ZSERVE_SESSION_H
#define ZIRIA_ZSERVE_SESSION_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/spsc_queue.h"
#include "zexec/faultpoint.h"
#include "zexec/pipeline.h"
#include "zexec/span.h"
#include "zexec/stepper.h"
#include "zexec/supervisor.h"
#include "zserve/wire.h"

namespace ziria {
namespace serve {

/** Layout version of a Checkpoint frame's session payload. */
constexpr uint32_t kSessionCheckpointVersion = 1;

/**
 * Durable/migration session checkpoint: the v1 fields plus a retained
 * output tail — u64 tail base (absolute output-stream byte offset) and
 * a blob of the output bytes from that base up to the snapshot's
 * emitted count.  On re-attach the server resends the tail from the
 * client's received offset (or, when the client is ahead of the
 * snapshot, suppresses the deterministically regenerated prefix), so
 * the concatenated client-side stream is byte-identical.
 */
constexpr uint32_t kSessionCheckpointVersionDurable = 2;

/** Per-session tuning knobs (shared by every session of one server). */
struct SessionConfig
{
    size_t inQueueElems = 1024;   ///< bounded input queue (backpressure)
    size_t outHighWaterBytes = 256 * 1024;  ///< pause stepping above this
    uint64_t stepQuantum = 8192;  ///< advance() budget per worker burst
    RestartPolicy restart;        ///< per-session self-healing policy
    bool trackLatency = false;    ///< allocate a per-session SpanTracker
    SpanConfig span;              ///< its frame size / ratio / SLO budget
};

/**
 * InputSource over the session's bounded element queue, non-blocking:
 * next() never waits — it reports Empty through state() so the stepper
 * can park the session.  Wrapping it in a FaultySource (the decorator
 * from zexec/faultpoint.h) gives per-session fault injection for free.
 */
class QueueSource : public InputSource
{
  public:
    QueueSource(SpscQueue& q, size_t elem_width)
        : q_(q), width_(elem_width), buf_(elem_width ? elem_width : 1)
    {
    }

    const uint8_t*
    next() override
    {
        if (width_ == 0) {
            state_ = Feed::End;  // pipeline takes no input
            return nullptr;
        }
        switch (q_.popWait(buf_.data(), 0)) {
          case QueueWait::Ready:
            state_ = Feed::Ready;
            return buf_.data();
          case QueueWait::Timeout:
            state_ = Feed::Empty;
            return nullptr;
          default:  // Closed (input done and drained) or Cancelled
            state_ = Feed::End;
            return nullptr;
        }
    }

    /** Why the last next() returned null (Empty vs End). */
    Feed state() const { return state_; }

  private:
    SpscQueue& q_;
    size_t width_;
    std::vector<uint8_t> buf_;
    Feed state_ = Feed::Empty;
};

/** What a worker burst decided about a session (scheduler verdict). */
enum class StepResult : uint8_t
{
    Again,       ///< quantum spent, more work ready — requeue
    NeedInput,   ///< input queue empty — park until the I/O thread feeds
    OutputFull,  ///< output buffer over high water — park until drained
    Finished,    ///< input drained or computation halted — flush & close
    Failed,      ///< failure with restart budget spent — evict
};

class Session
{
  public:
    Session(uint64_t id, int fd, std::unique_ptr<Pipeline> pipe,
            const SessionConfig& cfg, const FaultSpec& fault);
    ~Session();

    uint64_t id() const { return id_; }
    int fd() const { return fd_; }
    size_t inWidth() const { return inW_; }
    size_t outWidth() const { return outW_; }

    // ---- worker side ------------------------------------------------

    /** Step the pipeline for up to one quantum; see StepResult. */
    StepResult step();

    /** Restarts this session has consumed (worker/test side). */
    uint32_t restarts() const { return restarts_.load(); }

    /**
     * Frame-span tracker, or null when SessionConfig::trackLatency is
     * off.  onInput fires on the I/O thread (offerInput), onOutput on
     * the worker (step), which matches the tracker's SPSC contract;
     * spans therefore measure true end-to-end session latency including
     * queue dwell and scheduler parking.
     */
    SpanTracker* spans() const { return spans_.get(); }

    // ---- I/O-thread side --------------------------------------------

    /**
     * Queue decoded Data-payload bytes for the pipeline.  Returns false
     * when the bounded queue filled first — the caller must retry the
     * remaining bytes later and pause socket reads (backpressure);
     * @p consumed reports how many bytes were accepted either way.
     */
    bool offerInput(const uint8_t* data, size_t n, size_t& consumed);

    /** Mark end of input (End frame / orderly half-close). */
    void endInput() { inQ_.close(); }

    /** Move up to @p max_bytes of buffered output into @p out. */
    size_t takeOutput(std::vector<uint8_t>& out, size_t max_bytes);

    /** Bytes of output currently buffered. */
    size_t outputAvailable();

    /** Completion state snapshot (all under the output mutex). */
    struct Completion
    {
        bool finished = false;  ///< worker is done stepping
        bool failed = false;    ///< ... because of an unrecoverable fault
        bool halted = false;    ///< pipeline returned a control value
        std::string failMessage;
        std::vector<uint8_t> ctrl;
    };
    Completion completion();

    /** Unblock a worker stuck in a stall fault / queue wait (teardown). */
    void cancel();

    // ---- checkpoint / migration (docs/ROBUSTNESS.md) ----------------

    /**
     * Serialize this session's complete continuation state into a wire
     * Checkpoint payload: a versioned header (consumed / emitted /
     * backlog element count the migrating client can read without
     * parsing the rest), the pipeline state snapshot, and the
     * unconsumed input backlog (queue elements first, then
     * @p pending_tail — the I/O thread's decoded-but-unqueued bytes).
     *
     * Caller contract: the scheduler must hold the session quiesced
     * (Dead, no worker stepping) — the worker-owned pipeline state is
     * read directly.  Returns false and fills @p err when the pipeline
     * state cannot be serialized.
     */
    bool checkpoint(std::vector<uint8_t>& out, const uint8_t* pending_tail,
                    size_t pending_len, std::string* err);

    /**
     * Stash a client-supplied Checkpoint payload (I/O thread side); the
     * worker applies it at the start of its next step() — restoring the
     * pipeline, resuming the counters and queueing the backlog for
     * replay — before any element is processed.  A malformed payload
     * fails the session (Error frame) instead of throwing.
     */
    void adoptCheckpoint(std::vector<uint8_t> payload);

    // ---- durable checkpoints / live migration -----------------------

    /**
     * Non-destructive variant of checkpoint() producing the durable v2
     * payload: the input backlog is *peeked* (queue left intact) and the
     * retained output tail rides along, so the session keeps running
     * unchanged if the checkpoint is never restored (periodic persists,
     * rejected migrations).  Caller contract: I/O thread, session parked
     * (the I/O thread is the only enqueue() caller, so a session it
     * observes Parked stays Parked for the duration).
     */
    bool persistCheckpoint(std::vector<uint8_t>& out, std::string* err);

    /**
     * Adopt a durable/migration checkpoint for a re-attaching client
     * that has already received @p client_received output bytes.
     * Validates the payload, primes the worker-side restore (snapshot +
     * backlog + suppression of the regenerated prefix when the client
     * is ahead of the snapshot), arms output retention, and fills
     * @p resend with the retained bytes the I/O thread must restage
     * (when the client is behind) and @p resume_elems with the input
     * element the client should resume sending from.  Returns an error
     * message, empty on success.
     */
    std::string adoptResume(const std::vector<uint8_t>& payload,
                            uint64_t client_received,
                            std::vector<uint8_t>& resend,
                            uint64_t& resume_elems);

    /** Arm output retention for a fresh keyed session (base 0). */
    void beginRetention();

    /** Input elements consumed; only valid while the session is
     *  quiesced (persist-cadence throttling on the I/O thread). */
    uint64_t quiescentConsumed() const { return stepper_.consumed(); }

    // ---- I/O-thread-owned bookkeeping (unshared; see file comment) --

    FrameParser parser;             ///< inbound wire decoder
    std::vector<uint8_t> pendingIn; ///< payload bytes not yet queued
    size_t pendingPos = 0;
    bool readPaused = false;        ///< POLLIN off while the queue is full
    bool inputEnded = false;        ///< End seen (no more Data accepted)
    bool queueClosed = false;       ///< endInput() delivered to the queue
    bool closing = false;           ///< trailer queued; close when drained
    bool evictOnClose = false;      ///< count as evicted, not completed
    bool sawData = false;           ///< a Data frame arrived (Checkpoint
                                    ///< restore is only valid before any)
    bool stagedData = false;        ///< a Data frame was staged outbound
                                    ///< (an attach must come before any)
    bool restoredFromCkpt = false;  ///< a Checkpoint was adopted already
    bool drainCounted = false;      ///< drain.{completed,aborted} charged
    bool drainOnClose = false;      ///< discard unread client input while
                                    ///< closing (avoids a RST that would
                                    ///< destroy the in-flight trailer)
    bool txShutdown = false;        ///< SHUT_WR sent after trailer flush
    uint64_t closeDeadlineNs = 0;   ///< force-close bound once closing
    uint64_t lastActivityNs = 0;    ///< socket traffic clock (idle timer)
    std::vector<uint8_t> outWire;   ///< framed bytes ready to send
    size_t outWirePos = 0;
    uint64_t rxFrames = 0, rxBytes = 0, txFrames = 0, txBytes = 0;

    // Durable-session bookkeeping (I/O thread only; meaningful once a
    // key is attached).  The tx marks map "payload bytes of staged Data
    // frames" to absolute wire offsets so sentPayloadAbs advances as
    // handleWrite drains outWire; the previous persist's value becomes
    // the next retained-tail base (one-cadence lag guards against
    // kernel-buffer loss on a hard kill).
    std::string sessionKey;         ///< empty = keyless (not persisted)
    bool attached = false;          ///< an attach Hello was accepted
    bool quiescing = false;         ///< hold input back until the worker
                                    ///< parks (due persist / migration)
    uint64_t stagedPayloadAbs = 0;  ///< Data payload bytes staged
    uint64_t sentPayloadAbs = 0;    ///< ... fully handed to the kernel
    uint64_t prevPersistSentAbs = 0;
    uint64_t lastPersistNs = 0;     ///< persist-cadence throttle
    uint64_t lastPersistConsumed = 0;
    std::deque<std::pair<uint64_t, uint64_t>> txMarks;  ///< {wireAbsEnd,
                                    ///<  payloadAbsEnd} per staged frame

    // ---- scheduler state (guarded by the Server's scheduler mutex) --

    enum class Sched : uint8_t { Parked, Queued, Running, Dead };
    Sched sched = Sched::Parked;
    bool again = false;  ///< wake arrived while Running — requeue

    // Scheduler-dwell accounting (also under the scheduler mutex): time
    // spent in each state, advanced at every transition by the server.
    uint64_t schedEnteredNs = 0;  ///< when the current state was entered
    uint64_t parkedNs = 0;
    uint64_t queuedNs = 0;
    uint64_t runningNs = 0;
    uint32_t schedTrack = 0;      ///< timeline track id (0 = unnamed)

  private:
    uint64_t id_;
    int fd_;
    std::unique_ptr<Pipeline> pipe_;
    size_t inW_;
    size_t outW_;
    SessionConfig cfg_;

    SpscQueue inQ_;

    // Worker-only stepping machinery.
    Stepper stepper_;
    QueueSource qsrc_;
    FaultSpec fault_;
    FaultySource fsrc_;   // identity pass-through when fault_.kind==None
    RestartSupervisor sup_;
    bool started_ = false;
    std::atomic<uint32_t> restarts_{0};
    std::unique_ptr<SpanTracker> spans_;

    // Migration restore (worker-only once adopted): backlog elements
    // from the checkpoint, fed to the pipeline before the live queue.
    std::vector<uint8_t> replay_;
    size_t replayPos_ = 0;

    // Output bytes the restored pipeline regenerates that the client
    // already received (worker-only once applied; whole elements).
    uint64_t suppressOut_ = 0;

    /** Apply an adopted Checkpoint payload (worker side); returns an
     *  error message, empty on success. */
    std::string applyCheckpoint(const std::vector<uint8_t>& payload);

    // Output buffer shared worker -> I/O thread.
    std::mutex mu_;
    std::vector<uint8_t> outRaw_;
    size_t outRawPos_ = 0;
    Completion done_;
    std::vector<uint8_t> pendingCkpt_;  ///< stash from adoptCheckpoint
    bool hasCkpt_ = false;
    uint64_t pendingSuppress_ = 0;      ///< handed to the worker with it
    // Retained output tail for durable checkpoints: every delivered
    // output element is also appended here (only when retainOut_), and
    // persistCheckpoint trims it to the lagged sent watermark.  Covers
    // [outTailBase_, emitted bytes) contiguously.
    bool retainOut_ = false;
    std::vector<uint8_t> outTail_;
    uint64_t outTailBase_ = 0;
};

} // namespace serve
} // namespace ziria

#endif // ZIRIA_ZSERVE_SESSION_H
