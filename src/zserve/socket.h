/**
 * @file
 * Thin POSIX socket helpers for the serving subsystem: RAII fds,
 * loopback-friendly TCP listen/connect, UDP endpoints, non-blocking
 * mode, and a self-pipe for waking a poll() loop from another thread.
 *
 * Everything throws FatalError on setup failures (bad port, bind in
 * use); steady-state I/O errors are reported through return values so
 * the server can evict one session without tearing the process down.
 */
#ifndef ZIRIA_ZSERVE_SOCKET_H
#define ZIRIA_ZSERVE_SOCKET_H

#include <cstdint>
#include <string>
#include <utility>

namespace ziria {
namespace serve {

/** Owning file-descriptor handle (move-only). */
class SockFd
{
  public:
    SockFd() = default;
    explicit SockFd(int fd) : fd_(fd) {}
    ~SockFd() { reset(); }

    SockFd(SockFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    SockFd&
    operator=(SockFd&& o) noexcept
    {
        if (this != &o) {
            reset();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }
    SockFd(const SockFd&) = delete;
    SockFd& operator=(const SockFd&) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void reset();

  private:
    int fd_ = -1;
};

/**
 * Create a TCP listening socket bound to 127.0.0.1:@p port (0 = let the
 * kernel pick an ephemeral port).  SO_REUSEADDR is set so restart loops
 * do not trip over TIME_WAIT.
 */
SockFd listenTcp(uint16_t port, int backlog = 64);

/** Blocking TCP connect to @p host:@p port. */
SockFd connectTcp(const std::string& host, uint16_t port);

/** The locally bound port of a socket (after bind/listen). */
uint16_t boundPort(int fd);

/** Create a UDP socket, optionally bound to 127.0.0.1:@p port. */
SockFd udpSocket(uint16_t port = 0);

/** Connect a UDP socket to a fixed peer (send()/recv() usable after). */
void udpConnect(int fd, const std::string& host, uint16_t port);

/** Switch a descriptor to non-blocking mode. */
void setNonBlocking(int fd, bool on = true);

/** Disable Nagle batching (latency-sensitive frame streams). */
void setNoDelay(int fd);

/**
 * Write all @p n bytes, retrying short writes; poll-waits @p fd for
 * writability between attempts.  Returns false on a connection error.
 */
bool sendAll(int fd, const uint8_t* data, size_t n);

/**
 * Read up to @p n bytes.  Returns bytes read, 0 on orderly peer close,
 * -1 on EAGAIN (non-blocking, nothing available), -2 on error.
 */
long recvSome(int fd, uint8_t* data, size_t n);

/**
 * Self-pipe wakeup for poll() loops: any thread calls wake(); the poll
 * loop includes readFd() in its fd set and calls drain() when readable.
 */
class Wakeup
{
  public:
    Wakeup();
    ~Wakeup();
    Wakeup(const Wakeup&) = delete;
    Wakeup& operator=(const Wakeup&) = delete;

    int readFd() const { return fds_[0]; }
    void wake();
    void drain();

  private:
    int fds_[2] = {-1, -1};
};

} // namespace serve
} // namespace ziria

#endif // ZIRIA_ZSERVE_SOCKET_H
