#include "zserve/session.h"

#include "support/metrics.h"
#include "zexec/snapshot.h"

namespace ziria {
namespace serve {

Session::Session(uint64_t id, int fd, std::unique_ptr<Pipeline> pipe,
                 const SessionConfig& cfg, const FaultSpec& fault)
    : id_(id), fd_(fd), pipe_(std::move(pipe)),
      inW_(pipe_->inWidth()), outW_(pipe_->outWidth()), cfg_(cfg),
      inQ_(inW_ ? inW_ : 1, cfg.inQueueElems),
      stepper_(pipe_->root()), qsrc_(inQ_, inW_), fault_(fault),
      fsrc_(qsrc_, fault), sup_(cfg.restart)
{
    if (cfg.trackLatency) {
        SpanConfig sc = cfg.span;
        sc.name = "session" + std::to_string(id);
        spans_ = std::make_unique<SpanTracker>(sc);
    }
}

Session::~Session() = default;

bool
Session::offerInput(const uint8_t* data, size_t n, size_t& consumed)
{
    consumed = 0;
    while (consumed + inW_ <= n) {
        if (inQ_.pushWait(data + consumed, 0) != QueueWait::Ready)
            return false;  // queue full (or cancelled at teardown)
        consumed += inW_;
        // Spans open at ingress so queue dwell and scheduler parking are
        // part of the measured end-to-end latency.
        if (spans_)
            spans_->onInput();
    }
    return true;
}

size_t
Session::outputAvailable()
{
    std::lock_guard<std::mutex> lk(mu_);
    return outRaw_.size() - outRawPos_;
}

size_t
Session::takeOutput(std::vector<uint8_t>& out, size_t max_bytes)
{
    std::lock_guard<std::mutex> lk(mu_);
    size_t avail = outRaw_.size() - outRawPos_;
    size_t take = std::min(avail, max_bytes);
    if (outW_ > 0)
        take -= take % outW_;  // whole elements only
    if (take == 0)
        return 0;
    out.insert(out.end(), outRaw_.begin() + static_cast<long>(outRawPos_),
               outRaw_.begin() + static_cast<long>(outRawPos_ + take));
    outRawPos_ += take;
    if (outRawPos_ == outRaw_.size()) {
        outRaw_.clear();
        outRawPos_ = 0;
    }
    return take;
}

Session::Completion
Session::completion()
{
    std::lock_guard<std::mutex> lk(mu_);
    return done_;
}

void
Session::cancel()
{
    fsrc_.cancel();  // unblocks a stall fault; also cancels the queue
    inQ_.cancel();
}

bool
Session::checkpoint(std::vector<uint8_t>& out, const uint8_t* pending_tail,
                    size_t pending_len, std::string* err)
{
    // The scheduler holds the session Dead, so the worker-owned pipeline
    // state is quiescent and safe to read from the I/O thread.
    std::vector<uint8_t> snap;
    if (started_) {
        try {
            snap = takeSnapshot(pipe_->root(), pipe_->frame(),
                                stepper_.consumed(), stepper_.emitted());
        } catch (const std::exception& e) {
            if (err)
                *err = e.what();
            return false;
        }
    }

    // Unconsumed input, oldest first: any unreplayed migration backlog,
    // the queue's backlog, then the I/O thread's decoded-but-unqueued
    // remainder.
    std::vector<uint8_t> backlog;
    if (replayPos_ < replay_.size())
        backlog.insert(backlog.end(),
                       replay_.begin() + static_cast<long>(replayPos_),
                       replay_.end());
    if (inW_) {
        std::vector<uint8_t> elem(inW_);
        while (inQ_.popWait(elem.data(), 0) == QueueWait::Ready)
            backlog.insert(backlog.end(), elem.begin(), elem.end());
    }
    backlog.insert(backlog.end(), pending_tail, pending_tail + pending_len);

    // applyCheckpoint on the target rejects a backlog that is not a
    // whole number of input elements, so emitting one here would report
    // a completed drain whose checkpoint is unusable.  The wire
    // protocol only admits whole-element Data payloads today; if a
    // partial tail ever reaches us, fail the checkpoint so the caller
    // counts the drain as aborted instead.
    if (inW_ ? backlog.size() % inW_ != 0 : !backlog.empty()) {
        if (err)
            *err = "input backlog is not element-aligned";
        return false;
    }

    StateWriter w;
    w.u32(kSessionCheckpointVersion);
    w.u64(stepper_.consumed());
    w.u64(stepper_.emitted());
    w.u64(inW_ ? backlog.size() / inW_ : 0);
    w.blob(snap.data(), snap.size());
    w.blob(backlog.data(), backlog.size());
    out = w.take();
    metrics::Registry::global().counter("server.migrations.saved").inc();
    return true;
}

void
Session::adoptCheckpoint(std::vector<uint8_t> payload)
{
    std::lock_guard<std::mutex> lk(mu_);
    pendingCkpt_ = std::move(payload);
    hasCkpt_ = true;
}

bool
Session::persistCheckpoint(std::vector<uint8_t>& out, std::string* err)
{
    // I/O thread, session parked: the worker-owned pipeline state is
    // quiescent (see the header contract), so reading it is safe.
    {
        // An adopted restore the worker has not applied yet means the
        // pipeline still holds fresh-start state; snapshotting it now
        // would persist (or migrate) an empty session over real state.
        std::lock_guard<std::mutex> lk(mu_);
        if (hasCkpt_) {
            if (err)
                *err = "adopted restore not yet applied";
            return false;
        }
    }
    std::vector<uint8_t> snap;
    if (started_) {
        try {
            snap = takeSnapshot(pipe_->root(), pipe_->frame(),
                                stepper_.consumed(), stepper_.emitted());
        } catch (const std::exception& e) {
            if (err)
                *err = e.what();
            return false;
        }
    }

    // Unconsumed input, oldest first, without draining anything: the
    // unreplayed restore backlog, a *peek* of the queue, then the I/O
    // thread's decoded-but-unqueued remainder.
    std::vector<uint8_t> backlog;
    if (replayPos_ < replay_.size())
        backlog.insert(backlog.end(),
                       replay_.begin() + static_cast<long>(replayPos_),
                       replay_.end());
    if (inW_)
        inQ_.peekAll(backlog);
    backlog.insert(backlog.end(),
                   pendingIn.begin() + static_cast<long>(pendingPos),
                   pendingIn.end());
    if (inW_ ? backlog.size() % inW_ != 0 : !backlog.empty()) {
        if (err)
            *err = "input backlog is not element-aligned";
        return false;
    }

    const uint64_t emittedB = stepper_.emitted() * outW_;
    std::vector<uint8_t> tail;
    uint64_t base;
    {
        std::lock_guard<std::mutex> lk(mu_);
        // Tail base: the sent watermark as of the *previous* persist —
        // bytes handed to the kernel a cadence ago are long delivered,
        // so a re-attaching client's received count can't be below it.
        base = prevPersistSentAbs;
        if (base < outTailBase_)
            base = outTailBase_;
        if (base >= emittedB || emittedB < outTailBase_) {
            // Mid-suppression (the retained window starts past the
            // snapshot) or nothing emitted since the base: an empty
            // tail anchored at the snapshot is consistent — a client
            // ahead of it takes the suppression path on re-attach.
            base = emittedB;
            tail.clear();
        } else {
            size_t drop = static_cast<size_t>(base - outTailBase_);
            outTail_.erase(outTail_.begin(),
                           outTail_.begin() + static_cast<long>(drop));
            outTailBase_ = base;
            if (outTailBase_ + outTail_.size() != emittedB) {
                if (err)
                    *err = "retained output tail is inconsistent";
                return false;
            }
            tail = outTail_;
        }
    }

    StateWriter w;
    w.u32(kSessionCheckpointVersionDurable);
    w.u64(stepper_.consumed());
    w.u64(stepper_.emitted());
    w.u64(inW_ ? backlog.size() / inW_ : 0);
    w.blob(snap.data(), snap.size());
    w.blob(backlog.data(), backlog.size());
    w.u64(base);
    w.blob(tail.data(), tail.size());
    out = w.take();
    prevPersistSentAbs = sentPayloadAbs;
    return true;
}

std::string
Session::adoptResume(const std::vector<uint8_t>& payload,
                     uint64_t client_received, std::vector<uint8_t>& resend,
                     uint64_t& resume_elems)
{
    resend.clear();
    uint64_t consumed, emitted, backlogElems, base;
    std::vector<uint8_t> backlog, tail;
    try {
        StateReader r(payload.data(), payload.size());
        uint32_t ver = r.u32();
        if (ver != kSessionCheckpointVersion &&
            ver != kSessionCheckpointVersionDurable)
            return "unsupported session checkpoint version " +
                   std::to_string(ver);
        consumed = r.u64();
        emitted = r.u64();
        backlogElems = r.u64();
        (void)r.blob();  // snapshot (applied worker-side)
        backlog = r.blob();
        if (ver == kSessionCheckpointVersionDurable) {
            base = r.u64();
            tail = r.blob();
        } else {
            base = emitted * outW_;
        }
    } catch (const std::exception& e) {
        return e.what();
    }
    const uint64_t emittedB = emitted * outW_;
    if (base + tail.size() != emittedB)
        return "checkpoint output tail is inconsistent";
    if (inW_ ? backlog.size() % inW_ != 0 : !backlog.empty())
        return "checkpoint backlog is not element-aligned";
    if (inW_ && backlog.size() / inW_ != backlogElems)
        return "checkpoint backlog count disagrees with header";

    uint64_t suppress = 0;
    if (client_received < base)
        return "client resume point precedes the retained output window";
    if (client_received > emittedB) {
        suppress = client_received - emittedB;
        if (outW_ == 0 || suppress % outW_ != 0)
            return "client resume point is not element-aligned";
    } else {
        resend.assign(tail.begin() +
                          static_cast<long>(client_received - base),
                      tail.end());
    }
    resume_elems = consumed + backlogElems;

    {
        std::lock_guard<std::mutex> lk(mu_);
        pendingCkpt_ = payload;
        hasCkpt_ = true;
        pendingSuppress_ = suppress;
        retainOut_ = true;
        outTailBase_ = client_received;
        outTail_ = resend;
        // Anything an emit-before-take pipeline produced before the
        // attach arrived is regenerated by the restore; the caller
        // guarantees none of it was staged to the wire.
        outRaw_.clear();
        outRawPos_ = 0;
    }
    stagedPayloadAbs = client_received;
    sentPayloadAbs = client_received;
    prevPersistSentAbs = client_received;
    return {};
}

void
Session::beginRetention()
{
    std::lock_guard<std::mutex> lk(mu_);
    retainOut_ = true;
    // An emit-before-take pipeline may have produced output before the
    // attach Hello arrived; the caller guarantees none of it was staged
    // to the wire yet, so seeding the tail from the raw buffer keeps the
    // retained window anchored at absolute offset 0.
    outTail_.assign(outRaw_.begin(), outRaw_.end());
    outTailBase_ = 0;
}

std::string
Session::applyCheckpoint(const std::vector<uint8_t>& payload)
{
    try {
        StateReader r(payload.data(), payload.size());
        uint32_t ver = r.u32();
        if (ver != kSessionCheckpointVersion &&
            ver != kSessionCheckpointVersionDurable)
            return "unsupported session checkpoint version " +
                   std::to_string(ver);
        (void)r.u64();  // consumed (client-facing; snapshot is canonical)
        (void)r.u64();  // emitted
        (void)r.u64();  // backlog element count (re-derived below)
        std::vector<uint8_t> snap = r.blob();
        replay_ = r.blob();
        if (ver == kSessionCheckpointVersionDurable) {
            // Output tail base + bytes: consumed on the I/O thread by
            // adoptResume (resend / suppression); ignored here.
            (void)r.u64();
            (void)r.blob();
        }
        replayPos_ = 0;
        if (inW_ && replay_.size() % inW_ != 0)
            return "checkpoint backlog is not element-aligned";
        if (inW_ == 0 && !replay_.empty())
            return "checkpoint backlog for a pipeline that takes no input";
        if (!snap.empty()) {
            // An empty snapshot means the donor never started stepping;
            // the backlog alone reconstructs the session.
            SnapshotInfo info =
                restoreSnapshot(pipe_->root(), pipe_->frame(), snap);
            stepper_.resume(info.consumed, info.emitted);
            started_ = true;
        }
        metrics::Registry::global()
            .counter("server.migrations.restored")
            .inc();
        return {};
    } catch (const std::exception& e) {
        return e.what();
    }
}

StepResult
Session::step()
{
    // A migration restore adopted on the I/O thread is applied here,
    // before any stepping, so the restored state is never mixed with
    // fresh-start progress.
    {
        std::vector<uint8_t> ck;
        bool has = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (hasCkpt_) {
                ck = std::move(pendingCkpt_);
                pendingCkpt_.clear();
                hasCkpt_ = false;
                has = true;
                suppressOut_ = pendingSuppress_;
                pendingSuppress_ = 0;
            }
        }
        if (has) {
            std::string err = applyCheckpoint(ck);
            if (!err.empty()) {
                std::lock_guard<std::mutex> lk(mu_);
                done_.finished = true;
                done_.failed = true;
                done_.failMessage = "checkpoint restore failed: " + err;
                return StepResult::Failed;
            }
        }
    }
    if (!started_) {
        stepper_.start(pipe_->frame());
        started_ = true;
    }
    // The fault decorator sits between the queue and the stepper, exactly
    // where it sits between a capture file and a pipeline in zirrun.
    InputSource& src =
        fault_.enabled() ? static_cast<InputSource&>(fsrc_) : qsrc_;
    auto pull = [&](const uint8_t** p) {
        // Migration backlog first: the donor's unconsumed elements
        // precede anything the client sends after reconnecting.
        if (replayPos_ < replay_.size()) {
            *p = replay_.data() + replayPos_;
            replayPos_ += inW_;
            return Feed::Ready;
        }
        *p = src.next();
        if (*p)
            return Feed::Ready;
        // A Truncate fault ends the stream without consulting the queue,
        // so the queue-source state would be stale for that one case.
        if (fault_.kind == FaultSpec::Kind::Truncate &&
            fsrc_.ticks() >= fault_.tick)
            return Feed::End;
        return qsrc_.state();
    };
    bool overHighWater = false;
    auto push = [&](const uint8_t* elem) {
        if (suppressOut_ > 0) {
            // The restored pipeline is regenerating output the client
            // already received (it was ahead of the snapshot when it
            // re-attached); deterministic replay makes these bytes
            // identical, so swallow them.
            suppressOut_ -= outW_;
            return true;
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            outRaw_.insert(outRaw_.end(), elem, elem + outW_);
            if (retainOut_)
                outTail_.insert(outTail_.end(), elem, elem + outW_);
            overHighWater =
                outRaw_.size() - outRawPos_ >= cfg_.outHighWaterBytes;
        }
        // Outside mu_: span completion may take the tracker's own lock
        // (and emit a timeline event) — keep the lock graph flat.
        if (spans_)
            spans_->onOutput();
        return !overHighWater;
    };

    try {
        StepOutcome oc =
            stepper_.drive(pipe_->frame(), pull, push, cfg_.stepQuantum);
        switch (oc) {
          case StepOutcome::Budget:
            return StepResult::Again;
          case StepOutcome::NeedInput:
            return StepResult::NeedInput;
          case StepOutcome::SinkFull:
            return StepResult::OutputFull;
          case StepOutcome::EndOfInput: {
            if (spans_)
                spans_->flush();
            std::lock_guard<std::mutex> lk(mu_);
            done_.finished = true;
            return StepResult::Finished;
          }
          case StepOutcome::Halted: {
            if (spans_)
                spans_->flush();
            std::lock_guard<std::mutex> lk(mu_);
            done_.finished = true;
            done_.halted = true;
            const uint8_t* cp = stepper_.ctrlData();
            if (cp && stepper_.ctrlWidth())
                done_.ctrl.assign(cp, cp + stepper_.ctrlWidth());
            return StepResult::Finished;
          }
        }
        return StepResult::Again;  // unreachable
    } catch (const std::exception& e) {
        StageFailure f;
        f.stage = 0;
        f.path = "session" + std::to_string(id_);
        f.cause = FailureCause::Exception;
        f.message = e.what();
        f.inner = std::current_exception();
        metrics::Registry::global()
            .counter("server.session.failures")
            .inc();
        if (sup_.onFailure(f)) {
            // Re-arm in place at a frame boundary: node state discarded,
            // the live input queue and buffered output kept — the crash
            // costs at most the elements already consumed this frame.
            stepper_.reset(pipe_->frame());
            fsrc_.rearm();
            // Abort the open spans of the discarded frame; the tracker
            // re-bases its epoch so post-restart inputs open cleanly.
            if (spans_)
                spans_->onRestart();
            restarts_.fetch_add(1);
            metrics::Registry::global()
                .counter("server.session.restarts")
                .inc();
            return StepResult::Again;
        }
        std::lock_guard<std::mutex> lk(mu_);
        done_.finished = true;
        done_.failed = true;
        done_.failMessage = f.message;
        if (f.restartsExhausted)
            done_.failMessage +=
                " (after " + std::to_string(f.restarts.size()) +
                " restart(s))";
        return StepResult::Failed;
    }
}

} // namespace serve
} // namespace ziria
