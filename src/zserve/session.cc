#include "zserve/session.h"

#include "support/metrics.h"

namespace ziria {
namespace serve {

Session::Session(uint64_t id, int fd, std::unique_ptr<Pipeline> pipe,
                 const SessionConfig& cfg, const FaultSpec& fault)
    : id_(id), fd_(fd), pipe_(std::move(pipe)),
      inW_(pipe_->inWidth()), outW_(pipe_->outWidth()), cfg_(cfg),
      inQ_(inW_ ? inW_ : 1, cfg.inQueueElems),
      stepper_(pipe_->root()), qsrc_(inQ_, inW_), fault_(fault),
      fsrc_(qsrc_, fault), sup_(cfg.restart)
{
    if (cfg.trackLatency) {
        SpanConfig sc = cfg.span;
        sc.name = "session" + std::to_string(id);
        spans_ = std::make_unique<SpanTracker>(sc);
    }
}

Session::~Session() = default;

bool
Session::offerInput(const uint8_t* data, size_t n, size_t& consumed)
{
    consumed = 0;
    while (consumed + inW_ <= n) {
        if (inQ_.pushWait(data + consumed, 0) != QueueWait::Ready)
            return false;  // queue full (or cancelled at teardown)
        consumed += inW_;
        // Spans open at ingress so queue dwell and scheduler parking are
        // part of the measured end-to-end latency.
        if (spans_)
            spans_->onInput();
    }
    return true;
}

size_t
Session::outputAvailable()
{
    std::lock_guard<std::mutex> lk(mu_);
    return outRaw_.size() - outRawPos_;
}

size_t
Session::takeOutput(std::vector<uint8_t>& out, size_t max_bytes)
{
    std::lock_guard<std::mutex> lk(mu_);
    size_t avail = outRaw_.size() - outRawPos_;
    size_t take = std::min(avail, max_bytes);
    if (outW_ > 0)
        take -= take % outW_;  // whole elements only
    if (take == 0)
        return 0;
    out.insert(out.end(), outRaw_.begin() + static_cast<long>(outRawPos_),
               outRaw_.begin() + static_cast<long>(outRawPos_ + take));
    outRawPos_ += take;
    if (outRawPos_ == outRaw_.size()) {
        outRaw_.clear();
        outRawPos_ = 0;
    }
    return take;
}

Session::Completion
Session::completion()
{
    std::lock_guard<std::mutex> lk(mu_);
    return done_;
}

void
Session::cancel()
{
    fsrc_.cancel();  // unblocks a stall fault; also cancels the queue
    inQ_.cancel();
}

StepResult
Session::step()
{
    if (!started_) {
        stepper_.start(pipe_->frame());
        started_ = true;
    }
    // The fault decorator sits between the queue and the stepper, exactly
    // where it sits between a capture file and a pipeline in zirrun.
    InputSource& src =
        fault_.enabled() ? static_cast<InputSource&>(fsrc_) : qsrc_;
    auto pull = [&](const uint8_t** p) {
        *p = src.next();
        if (*p)
            return Feed::Ready;
        // A Truncate fault ends the stream without consulting the queue,
        // so the queue-source state would be stale for that one case.
        if (fault_.kind == FaultSpec::Kind::Truncate &&
            fsrc_.ticks() >= fault_.tick)
            return Feed::End;
        return qsrc_.state();
    };
    bool overHighWater = false;
    auto push = [&](const uint8_t* elem) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            outRaw_.insert(outRaw_.end(), elem, elem + outW_);
            overHighWater =
                outRaw_.size() - outRawPos_ >= cfg_.outHighWaterBytes;
        }
        // Outside mu_: span completion may take the tracker's own lock
        // (and emit a timeline event) — keep the lock graph flat.
        if (spans_)
            spans_->onOutput();
        return !overHighWater;
    };

    try {
        StepOutcome oc =
            stepper_.drive(pipe_->frame(), pull, push, cfg_.stepQuantum);
        switch (oc) {
          case StepOutcome::Budget:
            return StepResult::Again;
          case StepOutcome::NeedInput:
            return StepResult::NeedInput;
          case StepOutcome::SinkFull:
            return StepResult::OutputFull;
          case StepOutcome::EndOfInput: {
            if (spans_)
                spans_->flush();
            std::lock_guard<std::mutex> lk(mu_);
            done_.finished = true;
            return StepResult::Finished;
          }
          case StepOutcome::Halted: {
            if (spans_)
                spans_->flush();
            std::lock_guard<std::mutex> lk(mu_);
            done_.finished = true;
            done_.halted = true;
            const uint8_t* cp = stepper_.ctrlData();
            if (cp && stepper_.ctrlWidth())
                done_.ctrl.assign(cp, cp + stepper_.ctrlWidth());
            return StepResult::Finished;
          }
        }
        return StepResult::Again;  // unreachable
    } catch (const std::exception& e) {
        StageFailure f;
        f.stage = 0;
        f.path = "session" + std::to_string(id_);
        f.cause = FailureCause::Exception;
        f.message = e.what();
        f.inner = std::current_exception();
        metrics::Registry::global()
            .counter("server.session.failures")
            .inc();
        if (sup_.onFailure(f)) {
            // Re-arm in place at a frame boundary: node state discarded,
            // the live input queue and buffered output kept — the crash
            // costs at most the elements already consumed this frame.
            stepper_.reset(pipe_->frame());
            fsrc_.rearm();
            // Abort the open spans of the discarded frame; the tracker
            // re-bases its epoch so post-restart inputs open cleanly.
            if (spans_)
                spans_->onRestart();
            restarts_.fetch_add(1);
            metrics::Registry::global()
                .counter("server.session.restarts")
                .inc();
            return StepResult::Again;
        }
        std::lock_guard<std::mutex> lk(mu_);
        done_.finished = true;
        done_.failed = true;
        done_.failMessage = f.message;
        if (f.restartsExhausted)
            done_.failMessage +=
                " (after " + std::to_string(f.restarts.size()) +
                " restart(s))";
        return StepResult::Failed;
    }
}

} // namespace serve
} // namespace ziria
