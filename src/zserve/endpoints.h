/**
 * @file
 * Socket stream endpoints: InputSource/OutputSink implementations that
 * speak the zserve wire protocol, so a compiled pipeline can read its
 * input stream from a TCP connection (or UDP datagrams) and write its
 * output back — composing unchanged with TracedNode instrumentation,
 * the FaultySource/FaultySink decorators, and supervised restart,
 * because those all operate on the same two interfaces.
 *
 * SocketSource/SocketSink are the *blocking* endpoints, one connection
 * per pipeline, matching the drivers' pull/push discipline; the
 * multi-session server (src/zserve/server.h) instead multiplexes many
 * connections with non-blocking stepping and does not use these
 * classes.  Blocking waits poll a cancel flag every slice, so a
 * supervised teardown (InputSource::cancel) unblocks promptly — the
 * same contract FaultySource implements.
 */
#ifndef ZIRIA_ZSERVE_ENDPOINTS_H
#define ZIRIA_ZSERVE_ENDPOINTS_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "zexec/pipeline.h"
#include "zserve/wire.h"

namespace ziria {
namespace serve {

/**
 * Pull stream elements out of Data frames arriving on a connected TCP
 * socket (non-owning fd).  End / orderly close / an Error frame all end
 * the stream; a mid-frame close or malformed frame raises FatalError
 * (surfacing as a stage failure the supervisor can retry or report).
 */
class SocketSource : public InputSource
{
  public:
    SocketSource(int fd, size_t elem_width);

    const uint8_t* next() override;
    void cancel() override;
    void rearm() override;

    /** Frames / element counters (telemetry). */
    uint64_t framesIn() const { return frames_; }
    uint64_t elemsIn() const { return elems_; }

    /** Error message from a peer Error frame ("" when none). */
    const std::string& peerError() const { return peerError_; }

  private:
    bool fillPayload();  // block (cancellably) until a Data frame arrives

    int fd_;
    size_t width_;
    FrameParser parser_;
    std::vector<uint8_t> payload_;  // current Data frame's elements
    size_t payloadPos_ = 0;
    bool ended_ = false;
    std::string peerError_;
    uint64_t frames_ = 0;
    uint64_t elems_ = 0;
    std::atomic<bool> cancelled_{false};
};

/**
 * Batch output elements into Data frames on a connected TCP socket
 * (non-owning fd).  Elements accumulate until @p batch_elems, then
 * flush as one frame; finish() flushes the tail and sends Halt (when a
 * control value is given) and End.
 */
class SocketSink : public OutputSink
{
  public:
    SocketSink(int fd, size_t elem_width, size_t batch_elems = 512);

    void put(const uint8_t* elem) override;
    void cancel() override;
    void rearm() override;

    /** Flush buffered elements as one Data frame. */
    void flush();

    /** Flush, then send the end-of-stream trailer. */
    void finish(const uint8_t* ctrl = nullptr, size_t ctrl_bytes = 0);

    uint64_t framesOut() const { return frames_; }
    uint64_t elemsOut() const { return elems_; }

  private:
    void sendBytes(const std::vector<uint8_t>& bytes);

    int fd_;
    size_t width_;
    size_t batchBytes_;
    std::vector<uint8_t> buf_;
    uint64_t frames_ = 0;
    uint64_t elems_ = 0;
    std::atomic<bool> cancelled_{false};
};

/**
 * Datagram variants: one wire frame per UDP datagram.  UdpSource binds
 * (or adopts) a socket and reads Data datagrams from any peer until an
 * End datagram; out-of-order or lost datagrams are the transport's
 * nature and are NOT repaired — this models a lossy sample feed, the
 * radio-facing edge of the paper's pipelines, where late data is
 * useless anyway.
 */
class UdpSource : public InputSource
{
  public:
    UdpSource(int fd, size_t elem_width);

    const uint8_t* next() override;
    void cancel() override;
    void rearm() override;

    uint64_t framesIn() const { return frames_; }
    uint64_t dropped() const { return dropped_; }  ///< malformed datagrams

  private:
    int fd_;
    size_t width_;
    std::vector<uint8_t> payload_;
    std::vector<uint8_t> rbuf_;  // datagram receive buffer (lazily sized)
    size_t payloadPos_ = 0;
    bool ended_ = false;
    uint64_t frames_ = 0;
    uint64_t dropped_ = 0;
    std::atomic<bool> cancelled_{false};
};

/** Batches elements into Data datagrams on a connected UDP socket. */
class UdpSink : public OutputSink
{
  public:
    UdpSink(int fd, size_t elem_width, size_t batch_elems = 64);

    void put(const uint8_t* elem) override;
    void flush();
    void finish();  ///< flush + End datagram

    uint64_t framesOut() const { return frames_; }

  private:
    int fd_;
    size_t width_;
    size_t batchBytes_;
    std::vector<uint8_t> buf_;
    uint64_t frames_ = 0;
};

} // namespace serve
} // namespace ziria

#endif // ZIRIA_ZSERVE_ENDPOINTS_H
