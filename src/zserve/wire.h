/**
 * @file
 * The zserve wire protocol: a length-prefixed frame layer carrying
 * Ziria stream elements over a byte stream (TCP) or datagrams (UDP).
 *
 * Every frame is an 8-byte header followed by a payload:
 *
 *     offset  size  field
 *     0       1     magic0 'Z' (0x5A)
 *     1       1     magic1 'S' (0x53)
 *     2       1     type   (FrameType)
 *     3       1     flags  (must be 0 in version 1)
 *     4       4     payload length, unsigned little-endian
 *
 * Frame types:
 *   Hello  server -> client on accept; payload is u32le fields:
 *          protocol version (1), input element width, output element
 *          width, and (since the durable-checkpoint extension) the
 *          server's negotiated checkpoint payload cap.  A client uses
 *          the widths to size Data payloads.  Three sizes are valid:
 *          12 bytes (legacy, no cap), 16 bytes (greeting with cap) and
 *          24 bytes (resume acknowledgement: cap plus a u64le count of
 *          input elements the server already holds — the client resumes
 *          sending from that element).  Client -> server, a Hello is a
 *          session attach: u32le version, u64le output bytes already
 *          received, then the session key (1-64 chars, [A-Za-z0-9_.-]).
 *          It must be the first client frame; the server restores the
 *          keyed session from a live migration hand-off or the durable
 *          checkpoint store and replies with a 24-byte resume Hello.
 *   Data   stream elements; the payload length must be a non-zero
 *          multiple of the element width for its direction.
 *   End    end of stream.  Client -> server: no more input (the server
 *          drains the pipeline and answers with its own End).  Server ->
 *          client: all output has been sent; the connection closes next.
 *   Halt   server -> client before End when the pipeline's computation
 *          returned; the payload is the control value's bytes.
 *   Error  fatal condition; payload is a human-readable UTF-8 message.
 *          The sender closes the connection after an Error frame.
 *   Stat   live introspection.  Client -> server: empty payload,
 *          requesting statistics.  Server -> client: the response, a
 *          UTF-8 JSON document with the server's metric registry plus
 *          this session's latency percentiles and scheduler dwell.
 *   Checkpoint  zero-loss session migration (docs/ROBUSTNESS.md,
 *          "Checkpointing & migration").  Server -> client on drain:
 *          the payload is a session checkpoint — a versioned header
 *          (version, consumed, emitted, backlog element count), the
 *          pipeline state snapshot (zexec/snapshot.h) and the
 *          unconsumed input backlog; the connection closes next and
 *          the client resumes against another server.  Client ->
 *          server: must be the first client frame of a session; the
 *          server restores the pipeline from it, replays the backlog,
 *          and continues as if uninterrupted.
 *   Migrate  live session hand-off between running servers
 *          (docs/SERVING.md, "Live migration").  The first payload byte
 *          is a subtype: Request (operator -> source server: quiesce
 *          the keyed session and hand it to a peer), Transfer (source
 *          server -> peer, as a client on a fresh connection: the key
 *          plus the session checkpoint), Ack (peer -> source, and
 *          source -> operator: success flag plus a message), Redirect
 *          (source server -> the migrated session's data client: the
 *          peer's host and port to re-attach to).
 *
 * Payloads are capped per type (payloadCapFor) so a hostile or corrupted
 * length field cannot make the receiver allocate unbounded memory: 1 MiB
 * (kMaxPayload) for ordinary frames, kMaxCkptPayload for Checkpoint and
 * Migrate frames, which carry whole pipeline snapshots (large LUT or
 * Viterbi state).  The parser rejects bad magic, unknown types, non-zero
 * flags and oversized lengths with a sticky error instead of
 * resynchronizing (a desync on a stream socket is unrecoverable anyway).
 */
#ifndef ZIRIA_ZSERVE_WIRE_H
#define ZIRIA_ZSERVE_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ziria {
namespace serve {

constexpr uint8_t kMagic0 = 0x5A;  // 'Z'
constexpr uint8_t kMagic1 = 0x53;  // 'S'
constexpr uint32_t kProtocolVersion = 1;
constexpr size_t kHeaderBytes = 8;
/** Upper bound on ordinary frame payloads (1 MiB). */
constexpr size_t kMaxPayload = 1u << 20;
/**
 * Upper bound on Checkpoint/Migrate payloads (64 MiB): pipeline
 * snapshots carry LUT and Viterbi state that can exceed kMaxPayload.
 * The greeting Hello advertises this negotiated limit.
 */
constexpr size_t kMaxCkptPayload = 64u << 20;

enum class FrameType : uint8_t {
    Hello = 1,
    Data = 2,
    End = 3,
    Halt = 4,
    Error = 5,
    Stat = 6,
    Checkpoint = 7,
    Migrate = 8,
};

/** Migrate frame subtype — the first payload byte. */
enum class MigrateSub : uint8_t {
    Request = 1,
    Transfer = 2,
    Ack = 3,
    Redirect = 4,
};

/** Short lowercase name ("hello", "data", ...). */
const char* frameTypeName(FrameType t);

/** Session-key validity: 1-64 chars of [A-Za-z0-9_.-], no leading dot. */
bool validSessionKey(const std::string& key);

/** Payload cap for @p t (kMaxCkptPayload for Checkpoint/Migrate). */
size_t payloadCapFor(FrameType t);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Data;
    std::vector<uint8_t> payload;
};

/** Append the encoded frame (header + payload) to @p out. */
void encodeFrame(std::vector<uint8_t>& out, FrameType type,
                 const uint8_t* payload, size_t len);

/** Convenience overloads. */
void encodeFrame(std::vector<uint8_t>& out, FrameType type,
                 const std::vector<uint8_t>& payload);
void encodeFrame(std::vector<uint8_t>& out, FrameType type);

/** Encode an Error frame carrying @p message. */
void encodeError(std::vector<uint8_t>& out, const std::string& message);

/** Encode the 16-byte greeting Hello (widths + checkpoint cap). */
void encodeHello(std::vector<uint8_t>& out, uint32_t in_width,
                 uint32_t out_width);

/**
 * Encode the 24-byte resume-acknowledgement Hello: widths, checkpoint
 * cap, and the count of input elements the server already holds
 * (consumed + backlog) — the client resumes sending from that element.
 */
void encodeHelloResume(std::vector<uint8_t>& out, uint32_t in_width,
                       uint32_t out_width, uint64_t resume_elems);

/** Fields of a decoded Hello payload (12/16/24-byte forms). */
struct HelloInfo
{
    uint32_t version = 0;
    uint32_t inWidth = 0;
    uint32_t outWidth = 0;
    uint32_t maxCkptPayload = 0;  ///< valid when hasCap
    uint64_t resumeElems = 0;     ///< valid when hasResume
    bool hasCap = false;
    bool hasResume = false;
};

/** Parse a Hello payload; false if it is malformed. */
bool decodeHello(const std::vector<uint8_t>& payload, HelloInfo& info);

/**
 * Encode a client -> server attach Hello payload: protocol version, the
 * output bytes this client has already received (0 for a fresh
 * session), and the session key.
 */
void encodeAttachHello(std::vector<uint8_t>& out, const std::string& key,
                       uint64_t received_bytes);

/** Parse an attach Hello payload; false if malformed. */
bool decodeAttachHello(const std::vector<uint8_t>& payload, std::string& key,
                       uint64_t& received_bytes);

/** Encode a Migrate Request: quiesce @p key, hand it to host:port. */
void encodeMigrateRequest(std::vector<uint8_t>& out, const std::string& key,
                          const std::string& host, uint16_t port);
bool decodeMigrateRequest(const std::vector<uint8_t>& payload,
                          std::string& key, std::string& host,
                          uint16_t& port);

/** Encode a Migrate Transfer: @p key plus its session checkpoint. */
void encodeMigrateTransfer(std::vector<uint8_t>& out, const std::string& key,
                           const std::vector<uint8_t>& ckpt);
bool decodeMigrateTransfer(const std::vector<uint8_t>& payload,
                           std::string& key, std::vector<uint8_t>& ckpt);

/** Encode a Migrate Ack (peer -> source, source -> operator). */
void encodeMigrateAck(std::vector<uint8_t>& out, bool ok,
                      const std::string& message);
bool decodeMigrateAck(const std::vector<uint8_t>& payload, bool& ok,
                      std::string& message);

/** Encode a Migrate Redirect (source -> data client: re-attach here). */
void encodeMigrateRedirect(std::vector<uint8_t>& out,
                           const std::string& host, uint16_t port);
bool decodeMigrateRedirect(const std::vector<uint8_t>& payload,
                           std::string& host, uint16_t& port);

/**
 * Incremental frame decoder for a byte stream.  Feed raw socket bytes
 * in any fragmentation; pull whole frames with next().  Errors are
 * sticky: after Result::Error the parser stays in the error state and
 * error() describes the first violation.
 */
class FrameParser
{
  public:
    enum class Result : uint8_t {
        NeedMore,  ///< no complete frame buffered yet
        Frame,     ///< one frame written to the out-parameter
        Error,     ///< protocol violation; see error()
    };

    /** Buffer @p n raw bytes from the peer. */
    void feed(const uint8_t* data, size_t n);

    /** Extract the next complete frame, if any. */
    Result next(Frame& out);

    /**
     * True when buffered bytes form an incomplete frame — detecting a
     * connection that closed mid-frame (truncated stream).
     */
    bool midFrame() const { return !failed_ && !buf_.empty(); }

    bool failed() const { return failed_; }
    const std::string& error() const { return error_; }

  private:
    Result fail(const std::string& msg);

    std::vector<uint8_t> buf_;
    size_t pos_ = 0;  // consumed prefix of buf_
    bool failed_ = false;
    std::string error_;
};

/**
 * Decode one datagram as a single frame (UDP variant: one frame per
 * datagram, no streaming reassembly).  Returns false and fills @p error
 * on malformed input; a datagram with trailing bytes after the declared
 * payload is malformed.
 */
bool decodeDatagram(const uint8_t* data, size_t n, Frame& out,
                    std::string* error = nullptr);

} // namespace serve
} // namespace ziria

#endif // ZIRIA_ZSERVE_WIRE_H
