/**
 * @file
 * The zserve server: a TCP accept loop, a poll()-based I/O thread, and
 * an N-thread worker pool stepping every live session's pipeline
 * cooperatively (round-robin run queue, bounded quantum per burst).
 *
 * Division of labor:
 *  - the I/O thread owns every socket: it accepts connections (with
 *    admission control — over the session cap a client is refused with
 *    a protocol Error frame), decodes inbound wire frames into each
 *    session's bounded input queue, frames buffered output back onto
 *    the wire, applies idle timeouts, and closes finished sessions;
 *  - workers pull Ready sessions off one shared run queue and step each
 *    for one quantum; a session that blocks (input empty / output full)
 *    parks until the I/O thread re-schedules it.  The scheduler state
 *    machine (Parked/Queued/Running + a re-arm bit) guarantees a session
 *    is stepped by at most one worker at a time and that a wakeup
 *    arriving mid-burst is never lost.
 *
 * Faults stay session-local: a session whose pipeline throws is either
 * re-armed in place (its own RestartSupervisor, per-session budget) or
 * evicted with an Error frame — its neighbors' queues, pipelines and
 * sockets are untouched (tests/test_serve.cpp asserts byte-identical
 * neighbor output under injected faults).
 *
 * Observability: `server.sessions.{accepted,rejected,evicted,completed}`
 * counters and the `server.sessions.active` gauge in the global metric
 * registry, per-session byte/frame counters aggregated into
 * `server.{rx,tx}.{frames,bytes}` on close, and an optional periodic
 * JSON dump (a `{"ts_ns":...,"registry":{...}}` document replaced
 * atomically via temp-file + rename so a tailing reader never sees a
 * torn write).  With SessionConfig::trackLatency on, every session's
 * frame spans merge into `server.latency.*` on close and its scheduler
 * dwell (time Parked/Queued/Running, accounted at every transition)
 * into `server.sched.{parked,queued,running}_ns`; a client can sample
 * all of it live with a Stat frame (docs/SERVING.md).
 */
#ifndef ZIRIA_ZSERVE_SERVER_H
#define ZIRIA_ZSERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "zserve/session.h"
#include "zserve/socket.h"

namespace ziria {

class CkptStore;

namespace serve {

/** Server-wide configuration. */
struct ServerConfig
{
    uint16_t port = 0;          ///< 0 = kernel-assigned (see Server::port)
    int workers = 2;            ///< stepping threads
    size_t maxSessions = 64;    ///< admission cap (reject above)
    double idleTimeoutMs = 0;   ///< evict silent sessions (0 = never)
    double drainTimeoutMs = 5000;  ///< drainStop() bound before force-stop
    double metricsIntervalMs = 0;  ///< periodic registry JSON dump
    std::string metricsPath;    ///< dump target ("" = stderr)
    std::string ckptDir;        ///< durable checkpoint store ("" = off)
    double ckptIntervalMs = 200;  ///< keyed-session persist cadence
    double migrateTimeoutMs = 5000;  ///< quiesce + peer-exchange bound
    SessionConfig session;      ///< per-session knobs
    FaultSpec fault;            ///< injected per-session fault (tests)
    int64_t faultSession = -1;  ///< session index to fault (-1 = all)
};

class Server
{
  public:
    /** Build one pipeline instance for a new session. */
    using PipelineFactory =
        std::function<std::unique_ptr<Pipeline>(uint64_t session_id)>;

    /** Binds and listens immediately; port() is valid after this. */
    Server(PipelineFactory factory, ServerConfig cfg);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Spawn the I/O thread and the worker pool. */
    void start();

    /** Stop accepting, cancel live sessions, join every thread. */
    void stop();

    /**
     * Graceful shutdown (SIGTERM semantics; docs/ROBUSTNESS.md,
     * "Checkpointing & migration"): stop admitting new sessions, let
     * sessions whose input already ended finish stepping and flush
     * (server.drain.completed), serialize every mid-stream session into
     * a wire Checkpoint frame for the client to resume elsewhere (also
     * drain.completed — zero data loss), then stop().  Sessions still
     * live when ServerConfig::drainTimeoutMs elapses are force-closed
     * and counted in server.drain.aborted, as is any session whose
     * checkpoint cannot be built or exceeds the payload cap.
     */
    void drainStop();

    uint16_t port() const { return port_; }

    /** Aggregate session accounting (monotonic since construction). */
    struct Counters
    {
        uint64_t accepted = 0;
        uint64_t rejected = 0;   ///< refused at admission (session cap)
        uint64_t evicted = 0;    ///< abnormal close (fault, protocol,
                                 ///< idle timeout, client abort)
        uint64_t completed = 0;  ///< orderly close (End delivered)
        uint64_t active = 0;     ///< live right now
    };
    Counters counters() const;

  private:
    /** A client-requested live migration being driven by the I/O
     *  thread: waits for the keyed session to quiesce at a park, then
     *  checkpoints it and hands the state to the peer server. */
    struct MigrationJob
    {
        std::string key;
        std::string host;
        uint16_t port = 0;
        int operatorFd = -1;  ///< who gets the Migrate Ack
        uint64_t deadlineNs = 0;
    };

    /** A migration checkpoint received from a peer, waiting for its
     *  data client to re-attach (preferred over the disk store). */
    struct PendingAdoption
    {
        std::vector<uint8_t> payload;
        uint64_t stampNs = 0;
    };

    void ioLoop();
    void workerLoop();
    void enqueue(const std::shared_ptr<Session>& s);

    // All of the below run on the I/O thread only.
    void acceptPending();
    void handleRead(const std::shared_ptr<Session>& s);
    void handleWrite(const std::shared_ptr<Session>& s);
    void processFrames(const std::shared_ptr<Session>& s);
    void tryFlushPending(const std::shared_ptr<Session>& s);
    void serviceSession(const std::shared_ptr<Session>& s);
    void protocolError(const std::shared_ptr<Session>& s,
                       const std::string& msg);
    void beginClose(const std::shared_ptr<Session>& s, bool evict,
                    const std::string& errMsg);
    void closeNow(const std::shared_ptr<Session>& s);
    void driveDrain();
    void sweep();
    void dumpMetrics();
    std::string statJson(const std::shared_ptr<Session>& s);
    void stageData(const std::shared_ptr<Session>& s, const uint8_t* data,
                   size_t n);
    void handleAttach(const std::shared_ptr<Session>& s, Frame& f);
    void handleMigrate(const std::shared_ptr<Session>& s, Frame& f);
    void drivePersist();
    void driveMigrations();
    std::string migrateNow(const std::shared_ptr<Session>& s,
                           const MigrationJob& job);
    std::shared_ptr<Session> findByKey(const std::string& key,
                                       const Session* skip = nullptr);

    PipelineFactory factory_;
    ServerConfig cfg_;
    SockFd listen_;
    uint16_t port_ = 0;
    Wakeup wake_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> draining_{false};
    bool started_ = false;
    std::thread ioThread_;
    std::vector<std::thread> workers_;

    // Sessions keyed by fd; owned by the I/O thread (workers hold
    // shared_ptrs through the run queue only).
    std::map<int, std::shared_ptr<Session>> sessions_;
    uint64_t nextId_ = 0;
    uint64_t lastMetricsNs_ = 0;

    // Durable checkpoints & live migration (I/O thread only).
    std::unique_ptr<CkptStore> store_;
    std::vector<MigrationJob> migrations_;
    std::map<std::string, PendingAdoption> pendingAdoptions_;

    // Scheduler: one shared run queue.
    mutable std::mutex schedMu_;
    std::condition_variable schedCv_;
    std::deque<std::shared_ptr<Session>> runq_;

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> evicted_{0};
    std::atomic<uint64_t> completed_{0};
};

} // namespace serve
} // namespace ziria

#endif // ZIRIA_ZSERVE_SERVER_H
