#include "zserve/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/panic.h"

namespace ziria {
namespace serve {

namespace {

sockaddr_in
loopbackAddr(const std::string& host, uint16_t port)
{
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host.empty()) {
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        fatalf("bad IPv4 address '", host, "'");
    }
    return addr;
}

} // namespace

void
SockFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

SockFd
listenTcp(uint16_t port, int backlog)
{
    SockFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        fatalf("socket(): ", std::strerror(errno));
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = loopbackAddr("", port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
        fatalf("bind(port ", port, "): ", std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        fatalf("listen(): ", std::strerror(errno));
    return fd;
}

SockFd
connectTcp(const std::string& host, uint16_t port)
{
    SockFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        fatalf("socket(): ", std::strerror(errno));
    sockaddr_in addr = loopbackAddr(host, port);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) != 0)
        fatalf("connect(", host.empty() ? "127.0.0.1" : host, ":", port,
               "): ", std::strerror(errno));
    return fd;
}

uint16_t
boundPort(int fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        fatalf("getsockname(): ", std::strerror(errno));
    return ntohs(addr.sin_port);
}

SockFd
udpSocket(uint16_t port)
{
    SockFd fd(::socket(AF_INET, SOCK_DGRAM, 0));
    if (!fd.valid())
        fatalf("socket(udp): ", std::strerror(errno));
    sockaddr_in addr = loopbackAddr("", port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
        fatalf("bind(udp port ", port, "): ", std::strerror(errno));
    return fd;
}

void
udpConnect(int fd, const std::string& host, uint16_t port)
{
    sockaddr_in addr = loopbackAddr(host, port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) != 0)
        fatalf("connect(udp ", port, "): ", std::strerror(errno));
}

void
setNonBlocking(int fd, bool on)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        fatalf("fcntl(F_GETFL): ", std::strerror(errno));
    if (on)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    if (::fcntl(fd, F_SETFL, flags) < 0)
        fatalf("fcntl(F_SETFL): ", std::strerror(errno));
}

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool
sendAll(int fd, const uint8_t* data, size_t n)
{
    size_t off = 0;
    while (off < n) {
        long w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w > 0) {
            off += static_cast<size_t>(w);
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                      errno == EINTR)) {
            pollfd p{fd, POLLOUT, 0};
            ::poll(&p, 1, 100);
            continue;
        }
        return false;
    }
    return true;
}

long
recvSome(int fd, uint8_t* data, size_t n)
{
    for (;;) {
        long r = ::recv(fd, data, n, 0);
        if (r >= 0)
            return r;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return -1;
        return -2;
    }
}

Wakeup::Wakeup()
{
    if (::pipe(fds_) != 0)
        fatalf("pipe(): ", std::strerror(errno));
    setNonBlocking(fds_[0]);
    setNonBlocking(fds_[1]);
}

Wakeup::~Wakeup()
{
    if (fds_[0] >= 0)
        ::close(fds_[0]);
    if (fds_[1] >= 0)
        ::close(fds_[1]);
}

void
Wakeup::wake()
{
    uint8_t b = 1;
    // A full pipe already guarantees a pending wakeup; ignore EAGAIN.
    (void)!::write(fds_[1], &b, 1);
}

void
Wakeup::drain()
{
    uint8_t buf[64];
    while (::read(fds_[0], buf, sizeof buf) > 0) {
    }
}

} // namespace serve
} // namespace ziria
