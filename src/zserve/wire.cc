#include "zserve/wire.h"

#include <cstring>

namespace ziria {
namespace serve {

namespace {

void
putU32le(std::vector<uint8_t>& out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getU32le(const uint8_t* p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

bool
validType(uint8_t t)
{
    return t >= static_cast<uint8_t>(FrameType::Hello) &&
           t <= static_cast<uint8_t>(FrameType::Checkpoint);
}

} // namespace

const char*
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello: return "hello";
      case FrameType::Data: return "data";
      case FrameType::End: return "end";
      case FrameType::Halt: return "halt";
      case FrameType::Error: return "error";
      case FrameType::Stat: return "stat";
      case FrameType::Checkpoint: return "checkpoint";
    }
    return "?";
}

void
encodeFrame(std::vector<uint8_t>& out, FrameType type,
            const uint8_t* payload, size_t len)
{
    out.reserve(out.size() + kHeaderBytes + len);
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    out.push_back(static_cast<uint8_t>(type));
    out.push_back(0);  // flags
    putU32le(out, static_cast<uint32_t>(len));
    if (len)
        out.insert(out.end(), payload, payload + len);
}

void
encodeFrame(std::vector<uint8_t>& out, FrameType type,
            const std::vector<uint8_t>& payload)
{
    encodeFrame(out, type, payload.data(), payload.size());
}

void
encodeFrame(std::vector<uint8_t>& out, FrameType type)
{
    encodeFrame(out, type, nullptr, 0);
}

void
encodeError(std::vector<uint8_t>& out, const std::string& message)
{
    size_t len = std::min(message.size(), kMaxPayload);
    encodeFrame(out, FrameType::Error,
                reinterpret_cast<const uint8_t*>(message.data()), len);
}

void
encodeHello(std::vector<uint8_t>& out, uint32_t in_width,
            uint32_t out_width)
{
    std::vector<uint8_t> payload;
    putU32le(payload, kProtocolVersion);
    putU32le(payload, in_width);
    putU32le(payload, out_width);
    encodeFrame(out, FrameType::Hello, payload);
}

bool
decodeHello(const std::vector<uint8_t>& payload, HelloInfo& info)
{
    if (payload.size() != 12)
        return false;
    info.version = getU32le(payload.data());
    info.inWidth = getU32le(payload.data() + 4);
    info.outWidth = getU32le(payload.data() + 8);
    return true;
}

void
FrameParser::feed(const uint8_t* data, size_t n)
{
    if (failed_ || n == 0)
        return;
    // Compact the consumed prefix before growing so a long-lived session
    // does not accumulate every byte it ever received.
    if (pos_ > 0) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

FrameParser::Result
FrameParser::fail(const std::string& msg)
{
    failed_ = true;
    error_ = msg;
    buf_.clear();
    pos_ = 0;
    return Result::Error;
}

FrameParser::Result
FrameParser::next(Frame& out)
{
    if (failed_)
        return Result::Error;
    const size_t avail = buf_.size() - pos_;
    if (avail < kHeaderBytes)
        return Result::NeedMore;
    const uint8_t* h = buf_.data() + pos_;
    if (h[0] != kMagic0 || h[1] != kMagic1)
        return fail("bad frame magic");
    if (!validType(h[2]))
        return fail("unknown frame type " + std::to_string(h[2]));
    if (h[3] != 0)
        return fail("non-zero frame flags");
    const uint32_t len = getU32le(h + 4);
    if (len > kMaxPayload)
        return fail("oversized frame payload (" + std::to_string(len) +
                    " bytes, cap " + std::to_string(kMaxPayload) + ")");
    if (avail < kHeaderBytes + len)
        return Result::NeedMore;
    out.type = static_cast<FrameType>(h[2]);
    out.payload.assign(h + kHeaderBytes, h + kHeaderBytes + len);
    pos_ += kHeaderBytes + len;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    }
    return Result::Frame;
}

bool
decodeDatagram(const uint8_t* data, size_t n, Frame& out,
               std::string* error)
{
    auto fail = [&](const char* msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (n < kHeaderBytes)
        return fail("datagram shorter than a frame header");
    if (data[0] != kMagic0 || data[1] != kMagic1)
        return fail("bad frame magic");
    if (!validType(data[2]))
        return fail("unknown frame type");
    if (data[3] != 0)
        return fail("non-zero frame flags");
    const uint32_t len = getU32le(data + 4);
    if (len > kMaxPayload)
        return fail("oversized frame payload");
    if (n != kHeaderBytes + len)
        return fail("datagram length disagrees with frame header");
    out.type = static_cast<FrameType>(data[2]);
    out.payload.assign(data + kHeaderBytes, data + n);
    return true;
}

} // namespace serve
} // namespace ziria
