#include "zserve/wire.h"

#include <algorithm>
#include <cstring>

namespace ziria {
namespace serve {

namespace {

void
putU32le(std::vector<uint8_t>& out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
getU32le(const uint8_t* p)
{
    return static_cast<uint32_t>(p[0]) |
           static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

bool
validType(uint8_t t)
{
    return t >= static_cast<uint8_t>(FrameType::Hello) &&
           t <= static_cast<uint8_t>(FrameType::Migrate);
}

void
putU64le(std::vector<uint8_t>& out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t
getU64le(const uint8_t* p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Length-prefixed string (u16le length) for Migrate payload fields. */
void
putStr(std::vector<uint8_t>& out, const std::string& s)
{
    uint16_t n = static_cast<uint16_t>(std::min<size_t>(s.size(), 0xFFFF));
    out.push_back(static_cast<uint8_t>(n));
    out.push_back(static_cast<uint8_t>(n >> 8));
    out.insert(out.end(), s.begin(), s.begin() + n);
}

bool
getStr(const std::vector<uint8_t>& p, size_t& pos, std::string& s)
{
    if (p.size() - pos < 2)
        return false;
    uint16_t n = static_cast<uint16_t>(p[pos]) |
                 (static_cast<uint16_t>(p[pos + 1]) << 8);
    pos += 2;
    if (p.size() - pos < n)
        return false;
    s.assign(p.begin() + static_cast<long>(pos),
             p.begin() + static_cast<long>(pos + n));
    pos += n;
    return true;
}

} // namespace

bool
validSessionKey(const std::string& key)
{
    if (key.empty() || key.size() > 64 || key[0] == '.')
        return false;
    for (char c : key) {
        bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

const char*
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello: return "hello";
      case FrameType::Data: return "data";
      case FrameType::End: return "end";
      case FrameType::Halt: return "halt";
      case FrameType::Error: return "error";
      case FrameType::Stat: return "stat";
      case FrameType::Checkpoint: return "checkpoint";
      case FrameType::Migrate: return "migrate";
    }
    return "?";
}

size_t
payloadCapFor(FrameType t)
{
    return (t == FrameType::Checkpoint || t == FrameType::Migrate)
               ? kMaxCkptPayload
               : kMaxPayload;
}

void
encodeFrame(std::vector<uint8_t>& out, FrameType type,
            const uint8_t* payload, size_t len)
{
    out.reserve(out.size() + kHeaderBytes + len);
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    out.push_back(static_cast<uint8_t>(type));
    out.push_back(0);  // flags
    putU32le(out, static_cast<uint32_t>(len));
    if (len)
        out.insert(out.end(), payload, payload + len);
}

void
encodeFrame(std::vector<uint8_t>& out, FrameType type,
            const std::vector<uint8_t>& payload)
{
    encodeFrame(out, type, payload.data(), payload.size());
}

void
encodeFrame(std::vector<uint8_t>& out, FrameType type)
{
    encodeFrame(out, type, nullptr, 0);
}

void
encodeError(std::vector<uint8_t>& out, const std::string& message)
{
    size_t len = std::min(message.size(), kMaxPayload);
    encodeFrame(out, FrameType::Error,
                reinterpret_cast<const uint8_t*>(message.data()), len);
}

void
encodeHello(std::vector<uint8_t>& out, uint32_t in_width,
            uint32_t out_width)
{
    std::vector<uint8_t> payload;
    putU32le(payload, kProtocolVersion);
    putU32le(payload, in_width);
    putU32le(payload, out_width);
    putU32le(payload, static_cast<uint32_t>(kMaxCkptPayload));
    encodeFrame(out, FrameType::Hello, payload);
}

void
encodeHelloResume(std::vector<uint8_t>& out, uint32_t in_width,
                  uint32_t out_width, uint64_t resume_elems)
{
    std::vector<uint8_t> payload;
    putU32le(payload, kProtocolVersion);
    putU32le(payload, in_width);
    putU32le(payload, out_width);
    putU32le(payload, static_cast<uint32_t>(kMaxCkptPayload));
    putU64le(payload, resume_elems);
    encodeFrame(out, FrameType::Hello, payload);
}

bool
decodeHello(const std::vector<uint8_t>& payload, HelloInfo& info)
{
    if (payload.size() != 12 && payload.size() != 16 &&
        payload.size() != 24)
        return false;
    info = HelloInfo{};
    info.version = getU32le(payload.data());
    info.inWidth = getU32le(payload.data() + 4);
    info.outWidth = getU32le(payload.data() + 8);
    if (payload.size() >= 16) {
        info.maxCkptPayload = getU32le(payload.data() + 12);
        info.hasCap = true;
    }
    if (payload.size() == 24) {
        info.resumeElems = getU64le(payload.data() + 16);
        info.hasResume = true;
    }
    return true;
}

void
encodeAttachHello(std::vector<uint8_t>& out, const std::string& key,
                  uint64_t received_bytes)
{
    std::vector<uint8_t> payload;
    putU32le(payload, kProtocolVersion);
    putU64le(payload, received_bytes);
    payload.insert(payload.end(), key.begin(), key.end());
    encodeFrame(out, FrameType::Hello, payload);
}

bool
decodeAttachHello(const std::vector<uint8_t>& payload, std::string& key,
                  uint64_t& received_bytes)
{
    if (payload.size() < 13 || payload.size() > 12 + 64)
        return false;
    if (getU32le(payload.data()) != kProtocolVersion)
        return false;
    received_bytes = getU64le(payload.data() + 4);
    key.assign(payload.begin() + 12, payload.end());
    return validSessionKey(key);
}

void
encodeMigrateRequest(std::vector<uint8_t>& out, const std::string& key,
                     const std::string& host, uint16_t port)
{
    std::vector<uint8_t> payload;
    payload.push_back(static_cast<uint8_t>(MigrateSub::Request));
    putStr(payload, key);
    putStr(payload, host);
    payload.push_back(static_cast<uint8_t>(port));
    payload.push_back(static_cast<uint8_t>(port >> 8));
    encodeFrame(out, FrameType::Migrate, payload);
}

bool
decodeMigrateRequest(const std::vector<uint8_t>& payload, std::string& key,
                     std::string& host, uint16_t& port)
{
    if (payload.empty() ||
        payload[0] != static_cast<uint8_t>(MigrateSub::Request))
        return false;
    size_t pos = 1;
    if (!getStr(payload, pos, key) || !getStr(payload, pos, host))
        return false;
    if (payload.size() - pos != 2)
        return false;
    port = static_cast<uint16_t>(payload[pos]) |
           (static_cast<uint16_t>(payload[pos + 1]) << 8);
    return validSessionKey(key) && !host.empty();
}

void
encodeMigrateTransfer(std::vector<uint8_t>& out, const std::string& key,
                      const std::vector<uint8_t>& ckpt)
{
    std::vector<uint8_t> payload;
    payload.reserve(3 + key.size() + ckpt.size());
    payload.push_back(static_cast<uint8_t>(MigrateSub::Transfer));
    putStr(payload, key);
    payload.insert(payload.end(), ckpt.begin(), ckpt.end());
    encodeFrame(out, FrameType::Migrate, payload);
}

bool
decodeMigrateTransfer(const std::vector<uint8_t>& payload, std::string& key,
                      std::vector<uint8_t>& ckpt)
{
    if (payload.empty() ||
        payload[0] != static_cast<uint8_t>(MigrateSub::Transfer))
        return false;
    size_t pos = 1;
    if (!getStr(payload, pos, key) || !validSessionKey(key))
        return false;
    ckpt.assign(payload.begin() + static_cast<long>(pos), payload.end());
    return true;
}

void
encodeMigrateAck(std::vector<uint8_t>& out, bool ok,
                 const std::string& message)
{
    std::vector<uint8_t> payload;
    payload.push_back(static_cast<uint8_t>(MigrateSub::Ack));
    payload.push_back(ok ? 1 : 0);
    putStr(payload, message);
    encodeFrame(out, FrameType::Migrate, payload);
}

bool
decodeMigrateAck(const std::vector<uint8_t>& payload, bool& ok,
                 std::string& message)
{
    if (payload.size() < 2 ||
        payload[0] != static_cast<uint8_t>(MigrateSub::Ack))
        return false;
    ok = payload[1] != 0;
    size_t pos = 2;
    return getStr(payload, pos, message) && pos == payload.size();
}

void
encodeMigrateRedirect(std::vector<uint8_t>& out, const std::string& host,
                      uint16_t port)
{
    std::vector<uint8_t> payload;
    payload.push_back(static_cast<uint8_t>(MigrateSub::Redirect));
    putStr(payload, host);
    payload.push_back(static_cast<uint8_t>(port));
    payload.push_back(static_cast<uint8_t>(port >> 8));
    encodeFrame(out, FrameType::Migrate, payload);
}

bool
decodeMigrateRedirect(const std::vector<uint8_t>& payload, std::string& host,
                      uint16_t& port)
{
    if (payload.empty() ||
        payload[0] != static_cast<uint8_t>(MigrateSub::Redirect))
        return false;
    size_t pos = 1;
    if (!getStr(payload, pos, host) || payload.size() - pos != 2)
        return false;
    port = static_cast<uint16_t>(payload[pos]) |
           (static_cast<uint16_t>(payload[pos + 1]) << 8);
    return !host.empty();
}

void
FrameParser::feed(const uint8_t* data, size_t n)
{
    if (failed_ || n == 0)
        return;
    // Compact the consumed prefix before growing so a long-lived session
    // does not accumulate every byte it ever received.
    if (pos_ > 0) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

FrameParser::Result
FrameParser::fail(const std::string& msg)
{
    failed_ = true;
    error_ = msg;
    buf_.clear();
    pos_ = 0;
    return Result::Error;
}

FrameParser::Result
FrameParser::next(Frame& out)
{
    if (failed_)
        return Result::Error;
    const size_t avail = buf_.size() - pos_;
    if (avail < kHeaderBytes)
        return Result::NeedMore;
    const uint8_t* h = buf_.data() + pos_;
    if (h[0] != kMagic0 || h[1] != kMagic1)
        return fail("bad frame magic");
    if (!validType(h[2]))
        return fail("unknown frame type " + std::to_string(h[2]));
    if (h[3] != 0)
        return fail("non-zero frame flags");
    const uint32_t len = getU32le(h + 4);
    const size_t cap = payloadCapFor(static_cast<FrameType>(h[2]));
    if (len > cap)
        return fail("oversized frame payload (" + std::to_string(len) +
                    " bytes, cap " + std::to_string(cap) + ")");
    if (avail < kHeaderBytes + len)
        return Result::NeedMore;
    out.type = static_cast<FrameType>(h[2]);
    out.payload.assign(h + kHeaderBytes, h + kHeaderBytes + len);
    pos_ += kHeaderBytes + len;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    }
    return Result::Frame;
}

bool
decodeDatagram(const uint8_t* data, size_t n, Frame& out,
               std::string* error)
{
    auto fail = [&](const char* msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (n < kHeaderBytes)
        return fail("datagram shorter than a frame header");
    if (data[0] != kMagic0 || data[1] != kMagic1)
        return fail("bad frame magic");
    if (!validType(data[2]))
        return fail("unknown frame type");
    if (data[3] != 0)
        return fail("non-zero frame flags");
    const uint32_t len = getU32le(data + 4);
    if (len > payloadCapFor(static_cast<FrameType>(data[2])))
        return fail("oversized frame payload");
    if (n != kHeaderBytes + len)
        return fail("datagram length disagrees with frame header");
    out.type = static_cast<FrameType>(data[2]);
    out.payload.assign(data + kHeaderBytes, data + n);
    return true;
}

} // namespace serve
} // namespace ziria
