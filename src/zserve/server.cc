#include "zserve/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "support/log.h"
#include "support/metrics.h"
#include "support/timeline.h"
#include "support/timing.h"
#include "zexec/ckpt_store.h"

namespace ziria {
namespace serve {

namespace {

/** Poll period: also the resolution of idle/close/metrics timers. */
constexpr int kPollMs = 20;

/** Raw output bytes packed into one Data frame. */
constexpr size_t kDataChunk = 64 * 1024;

/** Keep at most about this much framed output staged per session. */
constexpr size_t kWireTarget = 128 * 1024;

/** Per-pass socket-write budget (fairness across sessions). */
constexpr size_t kWriteBudget = 1u << 20;

/** How long a closing session may linger flushing its trailer. */
constexpr uint64_t kCloseGraceNs = 3ull * 1000 * 1000 * 1000;

uint64_t
msToNs(double ms)
{
    return static_cast<uint64_t>(ms * 1e6);
}

/** Timeline track ids for session scheduler lanes (clear of the
 *  per-thread ids handed out by timeline::currentTrack()). */
constexpr uint32_t kSchedTrackBase = 1u << 16;

const char*
schedName(Session::Sched s)
{
    switch (s) {
      case Session::Sched::Parked: return "parked";
      case Session::Sched::Queued: return "queued";
      case Session::Sched::Running: return "running";
      case Session::Sched::Dead: return "dead";
    }
    return "?";
}

/**
 * Transition a session's scheduler state, charging the dwell in the
 * state being left to its per-state accumulator and emitting the left
 * state as a timeline slice.  Caller holds the scheduler mutex.
 */
void
schedMove(Session& s, Session::Sched next, uint64_t now)
{
    if (s.sched == next)
        return;
    uint64_t dur = now > s.schedEnteredNs ? now - s.schedEnteredNs : 0;
    switch (s.sched) {
      case Session::Sched::Parked: s.parkedNs += dur; break;
      case Session::Sched::Queued: s.queuedNs += dur; break;
      case Session::Sched::Running: s.runningNs += dur; break;
      case Session::Sched::Dead: break;
    }
    if (auto* rec = timeline::active(); rec && dur > 0) {
        if (s.schedTrack == 0) {
            s.schedTrack =
                kSchedTrackBase + static_cast<uint32_t>(s.id());
            rec->nameTrack(s.schedTrack, "session" +
                                             std::to_string(s.id()) +
                                             " sched");
        }
        rec->complete("sched", schedName(s.sched), s.schedEnteredNs,
                      dur, s.schedTrack);
    }
    s.sched = next;
    s.schedEnteredNs = now;
}

} // namespace

Server::Server(PipelineFactory factory, ServerConfig cfg)
    : factory_(std::move(factory)), cfg_(std::move(cfg))
{
    listen_ = listenTcp(cfg_.port);
    setNonBlocking(listen_.get());
    port_ = boundPort(listen_.get());

    // Touch every counter up front so a metrics dump shows zeros instead
    // of omitting the serving section entirely.
    auto& reg = metrics::Registry::global();
    reg.counter("server.sessions.accepted");
    reg.counter("server.sessions.rejected");
    reg.counter("server.sessions.evicted");
    reg.counter("server.sessions.completed");
    reg.counter("server.protocol_errors");
    reg.counter("server.rx.frames");
    reg.counter("server.rx.bytes");
    reg.counter("server.tx.frames");
    reg.counter("server.tx.bytes");
    reg.counter("server.sched.parked_ns");
    reg.counter("server.sched.queued_ns");
    reg.counter("server.sched.running_ns");
    reg.counter("server.drain.completed");
    reg.counter("server.drain.aborted");
    reg.counter("server.migrations.saved");
    reg.counter("server.migrations.restored");
    reg.counter("server.migrations.live_sent");
    reg.counter("server.migrations.live_received");
    reg.counter("server.migrations.live_failed");
    reg.counter("ziria.ckpt.disk.saved");
    reg.counter("ziria.ckpt.disk.loaded");
    reg.counter("ziria.ckpt.disk.quarantined");
    reg.counter("ziria.ckpt.disk.gc");
    reg.gauge("server.sessions.active");

    if (!cfg_.ckptDir.empty())
        store_ = std::make_unique<CkptStore>(cfg_.ckptDir);
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (started_)
        return;
    stopping_.store(false);
    started_ = true;
    ioThread_ = std::thread(&Server::ioLoop, this);
    int n = std::max(1, cfg_.workers);
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back(&Server::workerLoop, this);
}

void
Server::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    wake_.wake();
    {
        // Taken and dropped so a worker between its predicate check and
        // its sleep cannot miss the notify below.
        std::lock_guard<std::mutex> lk(schedMu_);
    }
    schedCv_.notify_all();
    if (ioThread_.joinable())
        ioThread_.join();
    schedCv_.notify_all();
    for (auto& w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    started_ = false;
}

void
Server::drainStop()
{
    if (!started_)
        return;
    draining_.store(true);
    wake_.wake();
    const uint64_t deadline =
        nowNs() + msToNs(std::max(cfg_.drainTimeoutMs, 0.0));
    while (nowNs() < deadline && !stopping_.load()) {
        if (counters().active == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        wake_.wake();  // keep the I/O loop turning the drain crank
    }
    stop();
}

Server::Counters
Server::counters() const
{
    Counters c;
    c.accepted = accepted_.load();
    c.rejected = rejected_.load();
    c.evicted = evicted_.load();
    c.completed = completed_.load();
    uint64_t closedTotal = c.evicted + c.completed;
    c.active = c.accepted > closedTotal ? c.accepted - closedTotal : 0;
    return c;
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

void
Server::enqueue(const std::shared_ptr<Session>& s)
{
    bool notify = false;
    {
        std::lock_guard<std::mutex> lk(schedMu_);
        switch (s->sched) {
          case Session::Sched::Parked:
            schedMove(*s, Session::Sched::Queued, nowNs());
            runq_.push_back(s);
            notify = true;
            break;
          case Session::Sched::Running:
            // Wake arrived mid-burst: make the owning worker requeue the
            // session when its burst ends instead of parking it.
            s->again = true;
            break;
          case Session::Sched::Queued:
          case Session::Sched::Dead:
            break;
        }
    }
    if (notify)
        schedCv_.notify_one();
}

void
Server::workerLoop()
{
    for (;;) {
        std::shared_ptr<Session> s;
        {
            std::unique_lock<std::mutex> lk(schedMu_);
            schedCv_.wait(lk, [&] {
                return stopping_.load() || !runq_.empty();
            });
            if (stopping_.load())
                return;
            s = std::move(runq_.front());
            runq_.pop_front();
            if (s->sched == Session::Sched::Dead)
                continue;  // evicted while queued
            schedMove(*s, Session::Sched::Running, nowNs());
            s->again = false;
        }

        StepResult r = s->step();

        bool requeue = false;
        {
            std::lock_guard<std::mutex> lk(schedMu_);
            uint64_t now = nowNs();
            if (s->sched == Session::Sched::Dead) {
                // Evicted mid-step; stays dead.
            } else if (r == StepResult::Finished ||
                       r == StepResult::Failed) {
                schedMove(*s, Session::Sched::Dead, now);
            } else if (r == StepResult::Again || s->again) {
                schedMove(*s, Session::Sched::Queued, now);
                runq_.push_back(s);
                requeue = true;
            } else {
                schedMove(*s, Session::Sched::Parked, now);
            }
            s->again = false;
        }
        if (requeue)
            schedCv_.notify_one();
        // Output, queue space, or completion news for the I/O thread.
        wake_.wake();
    }
}

// ---------------------------------------------------------------------
// I/O thread
// ---------------------------------------------------------------------

void
Server::ioLoop()
{
    lastMetricsNs_ = nowNs();
    std::vector<pollfd> pfds;
    std::vector<int> fds;
    std::vector<std::shared_ptr<Session>> snap;

    while (!stopping_.load(std::memory_order_relaxed)) {
        const bool draining = draining_.load(std::memory_order_relaxed);

        // Quiesce-dependent work runs BEFORE the service pass: a worker
        // that parked a session wakes this loop, and at this point its
        // input queue is still empty, so the park is observable.  After
        // serviceSession refills the queues a saturated session goes
        // straight back to Queued and a persist/migration pass would
        // never catch it quiescent.
        if (!draining) {
            driveMigrations();  // resolve queued live migrations
            drivePersist();     // durable cadence for keyed sessions
        }

        // Service every session before sleeping: worker wakeups (new
        // output, completion) and retried input flushes land here.
        snap.clear();
        snap.reserve(sessions_.size());
        for (auto& kv : sessions_)
            snap.push_back(kv.second);
        for (auto& s : snap)
            serviceSession(s);  // may close sessions

        if (draining)
            driveDrain();  // checkpoint quiesced mid-stream sessions

        pfds.clear();
        fds.clear();
        pfds.push_back(pollfd{wake_.readFd(), POLLIN, 0});
        pfds.push_back(pollfd{listen_.get(),
                              static_cast<short>(draining ? 0 : POLLIN),
                              0});
        for (auto& kv : sessions_) {
            auto& s = kv.second;
            short ev = 0;
            // Draining: no new input is read — mid-stream sessions are
            // checkpointed back to their clients instead.
            if (!s->closing && !s->inputEnded && !s->readPaused &&
                !draining)
                ev |= POLLIN;
            // Closing with unread client input pending: keep reading
            // (and discarding) so the kernel never answers with a RST.
            if (s->closing && s->drainOnClose && !s->inputEnded)
                ev |= POLLIN;
            if (s->outWire.size() > s->outWirePos)
                ev |= POLLOUT;
            pfds.push_back(pollfd{kv.first, ev, 0});
            fds.push_back(kv.first);
        }

        int pr = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                        kPollMs);
        if (stopping_.load(std::memory_order_relaxed))
            break;
        if (pr > 0) {
            if (pfds[0].revents & POLLIN)
                wake_.drain();
            if (pfds[1].revents & POLLIN)
                acceptPending();
            // Handlers may close sessions; fds freed here are not handed
            // out again until the next pass (accepts happened above), so
            // a by-fd re-lookup is a reliable liveness check.
            for (size_t i = 0; i < fds.size(); ++i) {
                short re = pfds[i + 2].revents;
                if (!re)
                    continue;
                auto it = sessions_.find(fds[i]);
                if (it == sessions_.end())
                    continue;
                std::shared_ptr<Session> s = it->second;
                if (re & (POLLERR | POLLNVAL)) {
                    s->evictOnClose = true;
                    closeNow(s);
                    continue;
                }
                if (re & (POLLIN | POLLHUP))
                    handleRead(s);
                auto it2 = sessions_.find(fds[i]);
                if (it2 == sessions_.end() || it2->second != s)
                    continue;
                if (re & POLLOUT)
                    handleWrite(s);
            }
        }
        sweep();
    }

    // Teardown: mark every session dead (workers drop them on sight),
    // unblock any stalled step, close the sockets.
    {
        std::lock_guard<std::mutex> lk(schedMu_);
        uint64_t now = nowNs();
        for (auto& kv : sessions_) {
            schedMove(*kv.second, Session::Sched::Dead, now);
            kv.second->again = false;
        }
        runq_.clear();
    }
    // Sessions still live at force-stop lost in-flight work; under a
    // drain that is the failure the counter exists to expose.
    if (draining_.load()) {
        for (auto& kv : sessions_)
            if (!kv.second->drainCounted)
                metrics::Registry::global()
                    .counter("server.drain.aborted")
                    .inc();
    }
    for (auto& kv : sessions_) {
        kv.second->cancel();
        ::close(kv.first);
    }
    sessions_.clear();
    metrics::Registry::global().gauge("server.sessions.active").set(0);
}

void
Server::acceptPending()
{
    auto& reg = metrics::Registry::global();
    for (;;) {
        sockaddr_in peer{};
        socklen_t plen = sizeof peer;
        int cfd = ::accept(listen_.get(),
                           reinterpret_cast<sockaddr*>(&peer), &plen);
        if (cfd < 0)
            return;  // EAGAIN (drained) or a transient error: next pass
        setNonBlocking(cfd);
        setNoDelay(cfd);

        std::string refuse;
        std::unique_ptr<Pipeline> pipe;
        if (sessions_.size() >= cfg_.maxSessions) {
            refuse = "server full: session limit reached";
        } else {
            try {
                pipe = factory_(nextId_);
            } catch (const std::exception& e) {
                refuse = std::string("pipeline construction failed: ") +
                         e.what();
            }
            if (refuse.empty() && !pipe)
                refuse = "pipeline construction failed";
            if (refuse.empty() && (pipe->inWidth() > kMaxPayload ||
                                   pipe->outWidth() > kMaxPayload))
                refuse = "element width exceeds the frame payload cap";
        }
        if (!refuse.empty()) {
            std::vector<uint8_t> wire;
            encodeError(wire, refuse);
            // Fresh socket, empty send buffer: a single non-blocking
            // send delivers this small frame (best effort regardless).
            (void)!::send(cfd, wire.data(), wire.size(), MSG_NOSIGNAL);
            ::close(cfd);
            rejected_.fetch_add(1);
            reg.counter("server.sessions.rejected").inc();
            continue;
        }

        uint64_t id = nextId_++;
        FaultSpec fault;
        if (cfg_.fault.enabled() &&
            (cfg_.faultSession < 0 ||
             static_cast<int64_t>(id) == cfg_.faultSession))
            fault = cfg_.fault;

        auto s = std::make_shared<Session>(id, cfd, std::move(pipe),
                                           cfg_.session, fault);
        s->lastActivityNs = nowNs();
        s->schedEnteredNs = s->lastActivityNs;  // dwell clock starts now
        encodeHello(s->outWire, static_cast<uint32_t>(s->inWidth()),
                    static_cast<uint32_t>(s->outWidth()));
        ++s->txFrames;
        sessions_[cfd] = s;
        accepted_.fetch_add(1);
        reg.counter("server.sessions.accepted").inc();
        reg.gauge("server.sessions.active")
            .set(static_cast<double>(sessions_.size()));
        // Source-style pipelines produce output with no input at all.
        enqueue(s);
    }
}

void
Server::tryFlushPending(const std::shared_ptr<Session>& s)
{
    if (s->closing || s->queueClosed)
        return;
    if (s->quiescing) {
        // A persist or migration is waiting for this session to park:
        // hold input back so the worker drains the queue and quiesces.
        // Anything already pending keeps the socket read-paused.
        if (s->pendingPos < s->pendingIn.size())
            s->readPaused = true;
        return;
    }
    if (s->pendingPos < s->pendingIn.size()) {
        size_t consumed = 0;
        s->offerInput(s->pendingIn.data() + s->pendingPos,
                      s->pendingIn.size() - s->pendingPos, consumed);
        s->pendingPos += consumed;
        if (consumed > 0)
            enqueue(s);
    }
    if (s->pendingPos >= s->pendingIn.size()) {
        s->pendingIn.clear();
        s->pendingPos = 0;
        s->readPaused = false;
        if (s->inputEnded) {
            s->queueClosed = true;
            s->endInput();
            enqueue(s);  // let the worker observe end of input
        }
    } else {
        s->readPaused = true;  // queue full: TCP backpressure
    }
}

void
Server::processFrames(const std::shared_ptr<Session>& s)
{
    Frame f;
    while (!s->closing && !s->readPaused) {
        FrameParser::Result r = s->parser.next(f);
        if (r == FrameParser::Result::NeedMore)
            return;
        if (r == FrameParser::Result::Error) {
            protocolError(s, s->parser.error());
            return;
        }
        switch (f.type) {
          case FrameType::Data: {
            if (s->inputEnded) {
                protocolError(s, "Data frame after End");
                return;
            }
            size_t inW = s->inWidth();
            if (inW == 0) {
                protocolError(s, "pipeline takes no input");
                return;
            }
            if (f.payload.empty() || f.payload.size() % inW != 0) {
                protocolError(
                    s, "Data payload of " +
                           std::to_string(f.payload.size()) +
                           " byte(s) is not a positive multiple of the " +
                           std::to_string(inW) + "-byte element width");
                return;
            }
            ++s->rxFrames;
            s->sawData = true;
            s->pendingIn.insert(s->pendingIn.end(), f.payload.begin(),
                                f.payload.end());
            tryFlushPending(s);
            break;
          }
          case FrameType::Checkpoint: {
            // Migration restore: must be the first thing the client
            // says, before the pipeline has been fed anything.
            if (s->sawData || s->inputEnded || s->restoredFromCkpt) {
                protocolError(s, "Checkpoint frame after session start");
                return;
            }
            if (s->inWidth() == 0) {
                // A source-style pipeline starts emitting on accept;
                // restoring over it would duplicate delivered output.
                protocolError(
                    s, "checkpoint restore into a source-style pipeline");
                return;
            }
            if (f.payload.empty()) {
                protocolError(s, "empty Checkpoint payload");
                return;
            }
            ++s->rxFrames;
            s->restoredFromCkpt = true;
            s->adoptCheckpoint(std::move(f.payload));
            enqueue(s);  // worker applies the restore and resumes
            break;
          }
          case FrameType::End:
            s->inputEnded = true;
            tryFlushPending(s);
            break;
          case FrameType::Stat: {
            if (!f.payload.empty()) {
                protocolError(s, "Stat request with a payload");
                return;
            }
            ++s->rxFrames;
            std::string json = statJson(s);
            if (json.size() > kMaxPayload)
                json = "{\"error\":\"stat document exceeds the frame "
                       "payload cap\"}";
            encodeFrame(s->outWire, FrameType::Stat,
                        reinterpret_cast<const uint8_t*>(json.data()),
                        json.size());
            ++s->txFrames;
            break;
          }
          case FrameType::Error:
            // Client abort: nothing useful to send back.
            s->evictOnClose = true;
            closeNow(s);
            return;
          case FrameType::Hello:
            handleAttach(s, f);
            if (s->closing)
                return;  // attach rejected
            break;
          case FrameType::Migrate:
            handleMigrate(s, f);
            if (s->closing)
                return;  // transfer answered (orderly close) or rejected
            break;
          case FrameType::Halt:
            protocolError(s, std::string("unexpected ") +
                                 frameTypeName(f.type) +
                                 " frame from client");
            return;
        }
    }
}

/**
 * Client -> server attach Hello (I/O thread): bind this connection to a
 * durable session key and resume from retained state — a migration
 * checkpoint adopted from a peer first, else the newest valid disk
 * generation — resending or suppressing output so the client-side
 * concatenated stream is byte-identical.  A fresh key arms output
 * retention so a later persist / re-attach / migration has a tail.
 */
void
Server::handleAttach(const std::shared_ptr<Session>& s, Frame& f)
{
    if (s->sawData || s->inputEnded || s->restoredFromCkpt ||
        s->attached) {
        protocolError(s, "attach Hello after session start");
        return;
    }
    if (s->stagedData) {
        // An emit-before-take pipeline already put Data on the wire, so
        // the retained-output accounting can't be anchored; the client
        // must attach before the pipeline outruns it.
        protocolError(s, "attach Hello raced with pipeline output");
        return;
    }
    std::string key;
    uint64_t received = 0;
    if (!decodeAttachHello(f.payload, key, received)) {
        protocolError(s, "malformed attach Hello");
        return;
    }
    if (s->inWidth() == 0) {
        protocolError(s, "session attach to a source-style pipeline");
        return;
    }
    if (findByKey(key, s.get())) {
        protocolError(s, "session key is already live on this server");
        return;
    }
    ++s->rxFrames;
    s->attached = true;
    s->sessionKey = key;

    // A migration handed over live takes precedence over whatever the
    // disk store last persisted (the adoption is strictly newer).
    std::vector<uint8_t> ckpt;
    bool have = false;
    auto it = pendingAdoptions_.find(key);
    if (it != pendingAdoptions_.end()) {
        ckpt = std::move(it->second.payload);
        pendingAdoptions_.erase(it);
        have = true;
    } else if (store_) {
        have = store_->load(key, ckpt);
    }

    uint64_t resumeElems = 0;
    std::vector<uint8_t> resend;
    if (have) {
        std::string err = s->adoptResume(ckpt, received, resend,
                                         resumeElems);
        if (!err.empty()) {
            protocolError(s, "session resume failed: " + err);
            return;
        }
        s->restoredFromCkpt = true;
    } else {
        if (received != 0) {
            protocolError(s, "no retained state for this session key "
                             "but the client has already received "
                             "output");
            return;
        }
        s->beginRetention();
    }
    encodeHelloResume(s->outWire, static_cast<uint32_t>(s->inWidth()),
                      static_cast<uint32_t>(s->outWidth()), resumeElems);
    ++s->txFrames;
    // Restage the retained tail the re-attaching client is missing.
    size_t pos = 0;
    while (pos < resend.size()) {
        size_t n = std::min(resend.size() - pos, kDataChunk);
        stageData(s, resend.data() + pos, n);
        pos += n;
    }
    if (have)
        enqueue(s);  // worker applies the restore before stepping
}

/**
 * Migrate frames from a connected peer (I/O thread).  A Request (from
 * an operator client) queues a MigrationJob that driveMigrations
 * resolves; a Transfer (from the source server of a live migration)
 * stashes the checkpoint for its data client's re-attach and closes the
 * transfer channel; anything else is a protocol violation.
 */
void
Server::handleMigrate(const std::shared_ptr<Session>& s, Frame& f)
{
    auto& reg = metrics::Registry::global();
    if (f.payload.empty()) {
        protocolError(s, "empty Migrate payload");
        return;
    }
    ++s->rxFrames;
    switch (static_cast<MigrateSub>(f.payload[0])) {
      case MigrateSub::Request: {
        std::string key, host;
        uint16_t port = 0;
        if (!decodeMigrateRequest(f.payload, key, host, port)) {
            protocolError(s, "malformed Migrate request");
            return;
        }
        MigrationJob job;
        job.key = key;
        job.host = host;
        job.port = port;
        job.operatorFd = s->fd();
        job.deadlineNs =
            nowNs() + msToNs(std::max(cfg_.migrateTimeoutMs, 1.0));
        migrations_.push_back(std::move(job));
        return;  // the Ack is sent when the job resolves
      }
      case MigrateSub::Transfer: {
        if (s->sawData || s->attached || s->inputEnded ||
            s->restoredFromCkpt) {
            protocolError(s, "Migrate transfer after session start");
            return;
        }
        std::string key;
        std::vector<uint8_t> ckpt;
        std::string reject;
        if (!decodeMigrateTransfer(f.payload, key, ckpt))
            reject = "malformed Migrate transfer";
        else if (findByKey(key, s.get()))
            reject = "session key is already live on this server";
        else if (pendingAdoptions_.count(key))
            reject = "an adoption for this key is already pending";
        else if (ckpt.size() < 4 ||
                 (ckpt[0] != kSessionCheckpointVersion &&
                  ckpt[0] != kSessionCheckpointVersionDurable) ||
                 ckpt[1] || ckpt[2] || ckpt[3])
            reject = "unrecognized session checkpoint";
        encodeMigrateAck(s->outWire, reject.empty(),
                         reject.empty() ? "adopted" : reject);
        ++s->txFrames;
        if (reject.empty()) {
            PendingAdoption ad;
            ad.payload = std::move(ckpt);
            ad.stampNs = nowNs();
            pendingAdoptions_[key] = std::move(ad);
            reg.counter("server.migrations.live_received").inc();
        }
        // Either way the transfer channel is done: orderly close.
        encodeFrame(s->outWire, FrameType::End);
        ++s->txFrames;
        s->closing = true;
        s->closeDeadlineNs = nowNs() + kCloseGraceNs;
        s->cancel();
        return;
      }
      default:
        protocolError(s, "unexpected Migrate subtype from client");
        return;
    }
}

std::shared_ptr<Session>
Server::findByKey(const std::string& key, const Session* skip)
{
    if (key.empty())
        return nullptr;
    for (auto& kv : sessions_) {
        auto& s = kv.second;
        if (s.get() != skip && !s->closing && s->sessionKey == key)
            return s;
    }
    return nullptr;
}

void
Server::handleRead(const std::shared_ptr<Session>& s)
{
    if (s->closing) {
        if (!s->drainOnClose || s->inputEnded)
            return;
        // Discard whatever the client is still sending; its bytes are
        // covered by the migrated/checkpointed state.  EOF means the
        // client has seen the trailer and hung up.
        uint8_t junk[64 * 1024];
        for (;;) {
            long n = recvSome(s->fd(), junk, sizeof junk);
            if (n > 0)
                continue;
            if (n == 0 || n == -2) {
                s->inputEnded = true;
                if (s->outWire.size() == s->outWirePos)
                    closeNow(s);
            }
            return;
        }
    }
    if (s->inputEnded || s->readPaused)
        return;
    uint8_t buf[64 * 1024];
    long n = recvSome(s->fd(), buf, sizeof buf);
    if (n > 0) {
        s->rxBytes += static_cast<uint64_t>(n);
        s->lastActivityNs = nowNs();
        s->parser.feed(buf, static_cast<size_t>(n));
        processFrames(s);
    } else if (n == 0) {
        if (s->parser.midFrame()) {
            protocolError(s, "connection closed mid-frame");
            return;
        }
        // Orderly half-close counts as End: drain and answer.
        s->inputEnded = true;
        tryFlushPending(s);
    } else if (n == -2) {
        s->evictOnClose = true;
        closeNow(s);
    }
}

void
Server::handleWrite(const std::shared_ptr<Session>& s)
{
    size_t budget = kWriteBudget;
    for (;;) {
        if (s->outWire.size() == s->outWirePos) {
            s->outWire.clear();
            s->outWirePos = 0;
            serviceSession(s);  // refill from raw output / queue trailer
            if (s->closing && s->outWire.empty())
                return;  // serviceSession closed it (or nothing left)
            if (s->outWire.empty())
                return;
        }
        if (budget == 0)
            return;  // fairness: yield to the other sessions
        size_t avail = s->outWire.size() - s->outWirePos;
        size_t len = std::min(avail, budget);
        ssize_t n = ::send(s->fd(), s->outWire.data() + s->outWirePos,
                           len, MSG_NOSIGNAL);
        if (n > 0) {
            s->outWirePos += static_cast<size_t>(n);
            s->txBytes += static_cast<uint64_t>(n);
            // Advance the delivered-payload watermark past every staged
            // Data frame the kernel has now fully accepted.
            while (!s->txMarks.empty() &&
                   s->txMarks.front().first <= s->txBytes) {
                s->sentPayloadAbs = s->txMarks.front().second;
                s->txMarks.pop_front();
            }
            s->lastActivityNs = nowNs();
            budget -= std::min(budget, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        // Peer went away mid-stream.
        s->evictOnClose = true;
        closeNow(s);
        return;
    }
}

/**
 * Stage one outbound Data frame, recording (for keyed sessions) the
 * absolute wire offset at which its payload ends so handleWrite can
 * advance the delivered-payload watermark as the kernel accepts bytes.
 */
void
Server::stageData(const std::shared_ptr<Session>& s, const uint8_t* data,
                  size_t n)
{
    encodeFrame(s->outWire, FrameType::Data, data, n);
    ++s->txFrames;
    s->stagedData = true;
    if (!s->sessionKey.empty()) {
        s->stagedPayloadAbs += n;
        s->txMarks.emplace_back(
            s->txBytes + (s->outWire.size() - s->outWirePos),
            s->stagedPayloadAbs);
    }
}

void
Server::serviceSession(const std::shared_ptr<Session>& s)
{
    // Re-lookup: a session may already have been closed this pass.
    auto it = sessions_.find(s->fd());
    if (it == sessions_.end() || it->second != s)
        return;

    tryFlushPending(s);

    // A read pause can strand complete frames (including the client's
    // End) inside the parser with the kernel buffer already drained, so
    // no POLLIN edge will ever replay them: resume parsing here.
    if (!s->closing && !s->readPaused)
        processFrames(s);
    auto it2 = sessions_.find(s->fd());
    if (it2 == sessions_.end() || it2->second != s)
        return;  // processFrames closed it (protocol error / client abort)

    // Move raw output elements into framed wire bytes (bounded staging).
    if (s->outWirePos > 0 && s->outWire.size() == s->outWirePos) {
        s->outWire.clear();
        s->outWirePos = 0;
    }
    size_t chunk = std::max(kDataChunk, s->outWidth());
    bool drained = false;
    std::vector<uint8_t> payload;
    while (s->outWire.size() - s->outWirePos < kWireTarget) {
        payload.clear();
        if (s->takeOutput(payload, chunk) == 0)
            break;
        stageData(s, payload.data(), payload.size());
        drained = true;
    }
    if (drained)
        enqueue(s);  // raw space freed: un-park an OutputFull worker

    // Once the worker is done and the raw buffer is empty, append the
    // trailer after any staged Data bytes.
    if (!s->closing) {
        Session::Completion c = s->completion();
        if (c.finished && s->outputAvailable() == 0) {
            if (c.failed) {
                encodeError(s->outWire, c.failMessage.empty()
                                            ? "session failed"
                                            : c.failMessage);
                ++s->txFrames;
                s->evictOnClose = true;
            } else {
                if (c.halted && !c.ctrl.empty()) {
                    encodeFrame(s->outWire, FrameType::Halt, c.ctrl);
                    ++s->txFrames;
                }
                encodeFrame(s->outWire, FrameType::End);
                ++s->txFrames;
            }
            s->closing = true;
            s->closeDeadlineNs = nowNs() + kCloseGraceNs;
        }
    }

    if (s->closing && s->outWire.size() == s->outWirePos) {
        if (s->drainOnClose && !s->inputEnded) {
            // Trailer fully handed to the kernel but the client may
            // still be mid-send: half-close our side and linger,
            // discarding input, until the client hangs up (or the
            // close deadline forces the issue in sweep()).
            if (!s->txShutdown) {
                s->txShutdown = true;
                ::shutdown(s->fd(), SHUT_WR);
            }
            return;
        }
        closeNow(s);
    }
}

void
Server::protocolError(const std::shared_ptr<Session>& s,
                      const std::string& msg)
{
    metrics::Registry::global().counter("server.protocol_errors").inc();
    if (s->closing)
        return;
    encodeError(s->outWire, msg);
    ++s->txFrames;
    s->evictOnClose = true;
    s->closing = true;
    s->closeDeadlineNs = nowNs() + kCloseGraceNs;
    s->cancel();  // stop the worker side; input is moot now
}

void
Server::beginClose(const std::shared_ptr<Session>& s, bool evict,
                   const std::string& errMsg)
{
    if (s->closing)
        return;
    if (!errMsg.empty()) {
        encodeError(s->outWire, errMsg);
        ++s->txFrames;
    }
    s->evictOnClose = evict;
    s->closing = true;
    s->closeDeadlineNs = nowNs() + kCloseGraceNs;
    s->cancel();
}

void
Server::closeNow(const std::shared_ptr<Session>& s)
{
    auto it = sessions_.find(s->fd());
    if (it == sessions_.end() || it->second != s)
        return;  // already closed
    uint64_t parkedNs = 0, queuedNs = 0, runningNs = 0;
    {
        std::lock_guard<std::mutex> lk(schedMu_);
        schedMove(*s, Session::Sched::Dead, nowNs());
        s->again = false;
        parkedNs = s->parkedNs;
        queuedNs = s->queuedNs;
        runningNs = s->runningNs;
    }
    s->cancel();
    ::close(s->fd());
    sessions_.erase(it);

    // A keyed session that ran to orderly completion needs no resume;
    // an evicted or disconnected one keeps its disk generations so the
    // client can re-attach.  (A migrated-away session was already
    // removed by migrateNow; remove() is idempotent.)
    if (store_ && !s->sessionKey.empty() && !s->evictOnClose) {
        Session::Completion c = s->completion();
        if (c.finished && !c.failed)
            store_->remove(s->sessionKey);
    }

    auto& reg = metrics::Registry::global();
    reg.counter("server.rx.frames").add(s->rxFrames);
    reg.counter("server.rx.bytes").add(s->rxBytes);
    reg.counter("server.tx.frames").add(s->txFrames);
    reg.counter("server.tx.bytes").add(s->txBytes);
    reg.counter("server.sched.parked_ns").add(parkedNs);
    reg.counter("server.sched.queued_ns").add(queuedNs);
    reg.counter("server.sched.running_ns").add(runningNs);
    if (auto* sp = s->spans()) {
        // The session is Dead so no new burst starts; a worker still
        // finishing one serializes with us on the tracker's own mutex.
        sp->flush();
        sp->mergeInto(reg, "server.latency");
    }
    if (s->evictOnClose) {
        evicted_.fetch_add(1);
        reg.counter("server.sessions.evicted").inc();
    } else {
        completed_.fetch_add(1);
        reg.counter("server.sessions.completed").inc();
    }
    // A session closing during a drain is charged to the drain outcome
    // (unless driveDrain already charged it when checkpointing).
    if (draining_.load(std::memory_order_relaxed) && !s->drainCounted) {
        s->drainCounted = true;
        reg.counter(s->evictOnClose ? "server.drain.aborted"
                                    : "server.drain.completed")
            .inc();
    }
    reg.gauge("server.sessions.active")
        .set(static_cast<double>(sessions_.size()));
}

std::string
Server::statJson(const std::shared_ptr<Session>& s)
{
    metrics::JsonWriter w;
    w.beginObject();
    w.field("ts_ns", nowNs());

    Counters c = counters();
    w.beginObject("server");
    w.field("accepted", c.accepted);
    w.field("rejected", c.rejected);
    w.field("evicted", c.evicted);
    w.field("completed", c.completed);
    w.field("active", c.active);
    w.field("workers", static_cast<uint64_t>(std::max(1, cfg_.workers)));
    w.endObject();

    w.beginObject("session");
    w.field("id", s->id());
    w.field("rx_frames", s->rxFrames);
    w.field("rx_bytes", s->rxBytes);
    w.field("tx_frames", s->txFrames);
    w.field("tx_bytes", s->txBytes);
    w.field("restarts", static_cast<uint64_t>(s->restarts()));
    uint64_t parkedNs = 0, queuedNs = 0, runningNs = 0;
    {
        // Charge the still-open dwell so the numbers always sum to the
        // session's age, even between transitions.
        std::lock_guard<std::mutex> lk(schedMu_);
        uint64_t now = nowNs();
        uint64_t dur = now > s->schedEnteredNs
                           ? now - s->schedEnteredNs : 0;
        parkedNs = s->parkedNs;
        queuedNs = s->queuedNs;
        runningNs = s->runningNs;
        switch (s->sched) {
          case Session::Sched::Parked: parkedNs += dur; break;
          case Session::Sched::Queued: queuedNs += dur; break;
          case Session::Sched::Running: runningNs += dur; break;
          case Session::Sched::Dead: break;
        }
    }
    w.field("sched_parked_ns", parkedNs);
    w.field("sched_queued_ns", queuedNs);
    w.field("sched_running_ns", runningNs);
    if (auto* sp = s->spans()) {
        sp->flush();  // close spans whose output already left
        sp->writeJson(w, "latency");
    }
    w.endObject();

    w.rawField("registry",
               metrics::toJson(metrics::Registry::global()));
    w.endObject();
    return w.str();
}

/**
 * One drain pass (I/O thread, only while draining): sessions whose
 * input already ended keep stepping to completion through the normal
 * service path; every other session is quiesced and serialized into a
 * wire Checkpoint frame so its client can resume against another
 * server with zero data loss.  A session whose worker is still running
 * or queued is skipped and retried next pass — the scheduler parks it
 * as soon as its input queue drains (no new input is read during a
 * drain).
 */
void
Server::driveDrain()
{
    std::vector<std::shared_ptr<Session>> snap;
    snap.reserve(sessions_.size());
    for (auto& kv : sessions_)
        snap.push_back(kv.second);

    for (auto& s : snap) {
        if (s->closing || s->inputEnded)
            continue;  // finishing naturally (serviceSession flushes it)

        // Quiesce: only a Parked session has no worker touching its
        // pipeline; Dead blocks any future enqueue.
        {
            std::lock_guard<std::mutex> lk(schedMu_);
            if (s->sched != Session::Sched::Parked)
                continue;  // retry next pass
            schedMove(*s, Session::Sched::Dead, nowNs());
            s->again = false;
        }

        // Flush every buffered output element into Data frames ahead of
        // the checkpoint; the wire target does not apply to a drain.
        std::vector<uint8_t> payload;
        for (;;) {
            payload.clear();
            if (s->takeOutput(payload, kDataChunk) == 0)
                break;
            stageData(s, payload.data(), payload.size());
        }

        std::vector<uint8_t> ck;
        std::string err;
        const uint8_t* tail = s->pendingIn.data() + s->pendingPos;
        size_t tailLen = s->pendingIn.size() - s->pendingPos;
        bool ok = s->checkpoint(ck, tail, tailLen, &err);
        if (ok && ck.size() > kMaxCkptPayload) {
            ok = false;
            err = "session checkpoint of " + std::to_string(ck.size()) +
                  " byte(s) exceeds the frame payload cap";
        }
        auto& reg = metrics::Registry::global();
        if (ok) {
            encodeFrame(s->outWire, FrameType::Checkpoint, ck);
            ++s->txFrames;
            reg.counter("server.drain.completed").inc();
        } else {
            encodeError(s->outWire, "drain checkpoint failed: " + err);
            ++s->txFrames;
            s->evictOnClose = true;
            reg.counter("server.drain.aborted").inc();
        }
        s->drainCounted = true;
        s->closing = true;
        // Same RST hazard as a live migration: the client may still
        // hold unsent input the drain will never read.
        s->drainOnClose = true;
        s->closeDeadlineNs = nowNs() + kCloseGraceNs;
    }
}

/**
 * Periodic durable persist (I/O thread): every keyed session observed
 * Parked — and a Parked session stays Parked for the duration, because
 * this thread is the only enqueue() caller — is snapshotted
 * non-destructively and written to the disk store.  Throttled by the
 * configured cadence and skipped when neither the consumed count nor
 * the delivered-output watermark moved since the last persist.
 */
void
Server::drivePersist()
{
    if (!store_)
        return;
    const uint64_t now = nowNs();
    const uint64_t interval = msToNs(std::max(cfg_.ckptIntervalMs, 1.0));
    for (auto& kv : sessions_) {
        auto& s = kv.second;
        if (s->sessionKey.empty() || s->closing)
            continue;
        if (now - s->lastPersistNs < interval)
            continue;
        bool parked;
        {
            std::lock_guard<std::mutex> lk(schedMu_);
            parked = s->sched == Session::Sched::Parked;
        }
        if (!parked) {
            // Due but busy: hold further input back (tryFlushPending)
            // so the worker drains its queue and parks — a saturated
            // session would otherwise never be caught quiescent.
            s->quiescing = true;
            continue;
        }
        s->quiescing = false;
        s->lastPersistNs = now;
        uint64_t consumed = s->quiescentConsumed();
        if (consumed == s->lastPersistConsumed &&
            s->sentPayloadAbs == s->prevPersistSentAbs)
            continue;  // no progress worth persisting
        std::vector<uint8_t> ck;
        std::string err;
        if (!s->persistCheckpoint(ck, &err)) {
            // Includes the restore-not-yet-applied window right after a
            // resume attach; harmless — the disk state is still newest.
            continue;
        }
        if (!store_->save(s->sessionKey, ck, &err))
            ZIRIA_LOG(Warn, "ckpt: save failed for key ", s->sessionKey,
                      " (", err, ")");
        else
            s->lastPersistConsumed = consumed;
    }
}

namespace {

/**
 * Blocking-with-deadline frame read over a connected peer socket
 * (migration handshake; I/O thread).  Returns false and fills @p err on
 * timeout, close, or protocol error.
 */
bool
readPeerFrame(int fd, FrameParser& parser, uint64_t deadline_ns, Frame& f,
              std::string* err)
{
    for (;;) {
        FrameParser::Result r = parser.next(f);
        if (r == FrameParser::Result::Frame)
            return true;
        if (r == FrameParser::Result::Error) {
            *err = parser.error();
            return false;
        }
        uint64_t now = nowNs();
        if (now >= deadline_ns) {
            *err = "peer handshake timed out";
            return false;
        }
        pollfd p{fd, POLLIN, 0};
        int pr = ::poll(&p, 1,
                        static_cast<int>((deadline_ns - now) / 1000000) + 1);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            *err = "peer poll failed";
            return false;
        }
        if (pr == 0)
            continue;  // deadline check above terminates
        uint8_t buf[64 * 1024];
        long n = recvSome(fd, buf, sizeof buf);
        if (n > 0)
            parser.feed(buf, static_cast<size_t>(n));
        else if (n == 0) {
            *err = "peer closed during handshake";
            return false;
        } else if (n == -2) {
            *err = "peer read error";
            return false;
        }
    }
}

} // namespace

/**
 * Hand one quiesced keyed session to a peer server: checkpoint in
 * place (non-destructively), connect, exchange greeting / Transfer /
 * Ack, and on success redirect the data client and retire the local
 * session as completed.  Any failure leaves the session running
 * exactly as it was — nothing was drained or destroyed.  Returns an
 * error message, empty on success.
 */
std::string
Server::migrateNow(const std::shared_ptr<Session>& s,
                   const MigrationJob& job)
{
    std::vector<uint8_t> ck;
    std::string err;
    if (!s->persistCheckpoint(ck, &err))
        return "checkpoint failed: " + err;
    if (ck.size() > kMaxCkptPayload)
        return "session checkpoint of " + std::to_string(ck.size()) +
               " byte(s) exceeds the frame payload cap";

    SockFd peer;
    try {
        peer = connectTcp(job.host, job.port);
    } catch (const std::exception& e) {
        return std::string("peer connect failed: ") + e.what();
    }
    FrameParser parser;
    Frame f;
    if (!readPeerFrame(peer.get(), parser, job.deadlineNs, f, &err))
        return "peer greeting: " + err;
    HelloInfo hello;
    if (f.type != FrameType::Hello || !decodeHello(f.payload, hello))
        return "peer did not greet with a Hello frame";
    if (hello.inWidth != s->inWidth() || hello.outWidth != s->outWidth())
        return "peer pipeline widths do not match";

    std::vector<uint8_t> wire;
    encodeMigrateTransfer(wire, job.key, ck);
    if (!sendAll(peer.get(), wire.data(), wire.size()))
        return "peer send failed";
    if (!readPeerFrame(peer.get(), parser, job.deadlineNs, f, &err))
        return "peer ack: " + err;
    bool ok = false;
    std::string msg;
    if (f.type != FrameType::Migrate || !decodeMigrateAck(f.payload, ok, msg))
        return "peer answered with something other than a Migrate Ack";
    if (!ok)
        return "peer rejected the migration: " + msg;

    // Committed: flush remaining buffered output (all of it is inside
    // the checkpoint's retained window, so a duplicate delivery on the
    // peer is impossible — the client's received count covers it), then
    // redirect the data client and retire the session as completed.
    std::vector<uint8_t> payload;
    for (;;) {
        payload.clear();
        if (s->takeOutput(payload, kDataChunk) == 0)
            break;
        stageData(s, payload.data(), payload.size());
    }
    encodeMigrateRedirect(s->outWire, job.host, job.port);
    ++s->txFrames;
    encodeFrame(s->outWire, FrameType::End);
    ++s->txFrames;
    s->closing = true;
    // The client may still be streaming input we will never read; a
    // plain close() with unread bytes in the receive queue answers
    // with a RST that destroys the Redirect in flight.  Drain-and-
    // discard until the client sees the trailer and closes its side.
    s->drainOnClose = true;
    s->closeDeadlineNs = nowNs() + kCloseGraceNs;
    s->cancel();
    if (store_)
        store_->remove(job.key);
    metrics::Registry::global()
        .counter("server.migrations.live_sent")
        .inc();
    return {};
}

/**
 * Resolve queued migration jobs (I/O thread): wait for the target
 * session to quiesce at a park (retrying every pass until the job
 * deadline), run the peer handshake, and answer the operator with a
 * Migrate Ack.  A failed job leaves the session untouched and bumps
 * server.migrations.live_failed.
 */
void
Server::driveMigrations()
{
    if (migrations_.empty())
        return;
    auto& reg = metrics::Registry::global();
    for (size_t i = 0; i < migrations_.size();) {
        MigrationJob& job = migrations_[i];
        std::shared_ptr<Session> target = findByKey(job.key);
        std::string fail;
        bool done = false;
        if (!target) {
            fail = "no live session with key '" + job.key + "'";
            done = true;
        } else if (nowNs() >= job.deadlineNs) {
            fail = "timed out waiting for the session to quiesce";
            done = true;
        } else {
            bool parked = false;
            {
                std::lock_guard<std::mutex> lk(schedMu_);
                parked = target->sched == Session::Sched::Parked;
            }
            if (parked) {
                fail = migrateNow(target, job);
                done = true;
            } else {
                // Worker mid-burst: hold its input back so it parks
                // (same quiesce mechanism as drivePersist), retry.
                target->quiescing = true;
            }
        }
        if (!done) {
            ++i;
            continue;
        }
        if (target)
            target->quiescing = false;
        if (!fail.empty())
            reg.counter("server.migrations.live_failed").inc();
        auto it = sessions_.find(job.operatorFd);
        if (it != sessions_.end() && !it->second->closing) {
            encodeMigrateAck(it->second->outWire, fail.empty(),
                             fail.empty() ? "migrated" : fail);
            ++it->second->txFrames;
        }
        migrations_.erase(migrations_.begin() +
                          static_cast<long>(i));
    }
}

void
Server::sweep()
{
    uint64_t now = nowNs();
    std::vector<std::shared_ptr<Session>> doomed;
    for (auto& kv : sessions_) {
        auto& s = kv.second;
        if (s->closing) {
            if (now >= s->closeDeadlineNs)
                doomed.push_back(s);
        } else if (cfg_.idleTimeoutMs > 0 &&
                   now - s->lastActivityNs >
                       msToNs(cfg_.idleTimeoutMs)) {
            beginClose(s, /*evict=*/true, "idle timeout");
        }
    }
    for (auto& s : doomed)
        closeNow(s);

    // Adopted migration checkpoints whose data client never re-attached
    // are dropped after a grace period (the disk store, if any, still
    // has the source server's last persist).
    constexpr uint64_t kAdoptionTtlNs = 30ull * 1000 * 1000 * 1000;
    for (auto it = pendingAdoptions_.begin();
         it != pendingAdoptions_.end();) {
        if (now - it->second.stampNs > kAdoptionTtlNs)
            it = pendingAdoptions_.erase(it);
        else
            ++it;
    }

    if (cfg_.metricsIntervalMs > 0 &&
        now - lastMetricsNs_ >= msToNs(cfg_.metricsIntervalMs)) {
        lastMetricsNs_ = now;
        dumpMetrics();
    }
}

void
Server::dumpMetrics()
{
    metrics::JsonWriter w;
    w.beginObject();
    w.field("ts_ns", nowNs());
    w.rawField("registry",
               metrics::toJson(metrics::Registry::global()));
    w.endObject();
    const std::string& json = w.str();
    if (cfg_.metricsPath.empty()) {
        std::fprintf(stderr, "%s\n", json.c_str());
        return;
    }
    // Write the whole document to a sibling temp file and rename it into
    // place: a reader polling metricsPath sees either the previous
    // snapshot or the new one, never a torn or half-appended line.
    std::string tmp = cfg_.metricsPath + ".tmp";
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (!f)
            return;
        f << json << "\n";
        f.flush();
        if (!f)
            return;
    }
    std::rename(tmp.c_str(), cfg_.metricsPath.c_str());
}

} // namespace serve
} // namespace ziria
