/**
 * @file
 * Fixed-point radix-2 FFT/IFFT on 16-bit I/Q samples.
 *
 * This is part of the "basic signal processing library" the paper ships
 * with Ziria (its FFT/IFFT/Viterbi kernels are native blocks borrowed from
 * Sora; ours are written from scratch).  Twiddles are Q15; butterflies
 * accumulate in 32 bits.
 *
 * Scaling convention: `forward` divides by N (one >>1 per stage), so a
 * WiFi receiver recovers constellation points at their transmitted
 * amplitude; `inverse` applies no scaling, so inverse(forward(x)) == x up
 * to rounding and a transmitter feeds constellation points scaled such
 * that the time-domain sum stays within int16.
 */
#ifndef ZIRIA_DSP_FFT_H
#define ZIRIA_DSP_FFT_H

#include <vector>

#include "ztype/value.h"

namespace ziria {
namespace dsp {

/** Precomputed plan for a power-of-two FFT. */
class Fft
{
  public:
    explicit Fft(int n);

    int size() const { return n_; }

    /** DFT scaled by 1/N.  @p in and @p out must not alias. */
    void forward(const Complex16* in, Complex16* out) const;

    /** Unscaled inverse DFT.  @p in and @p out must not alias. */
    void inverse(const Complex16* in, Complex16* out) const;

  private:
    void run(const Complex16* in, Complex16* out, bool inverse,
             bool scale) const;

    int n_;
    int log2n_;
    std::vector<Complex16> twiddle_;   ///< e^{-2pi i k/N}, Q15
    std::vector<int> bitrev_;
};

/** Reference double-precision DFT (for tests). */
void dftReference(const std::vector<std::complex<double>>& in,
                  std::vector<std::complex<double>>& out, bool inverse);

} // namespace dsp
} // namespace ziria

#endif // ZIRIA_DSP_FFT_H
