/**
 * @file
 * Streaming Viterbi decoder for the 802.11a K=7 convolutional code.
 *
 * Hard decisions with erasure support (value 2 contributes no branch
 * metric — how punctured positions are handled).  The decoder emits
 * decoded bits in blocks once its path memory exceeds the traceback
 * depth, matching the streaming behaviour the paper relies on (the
 * Viterbi block's output granularity is data dependent, which is why it
 * cannot be auto-vectorized and uses annotations instead).
 */
#ifndef ZIRIA_DSP_VITERBI_H
#define ZIRIA_DSP_VITERBI_H

#include <cstdint>
#include <vector>

#include "dsp/conv_code.h"
#include "support/state_io.h"

namespace ziria {
namespace dsp {

/** Hard-decision Viterbi decoder with erasures. */
class ViterbiDecoder
{
  public:
    /**
     * @param traceback path-memory depth before bits are released
     * @param block     bits released per traceback
     */
    explicit ViterbiDecoder(int traceback = 128, int block = 64);

    void reset();

    /**
     * Consume one coded-bit pair on the rate-1/2 lattice (values 0, 1 or
     * 2 = erasure); decoded bits may be appended to @p out.
     */
    void inputPair(uint8_t a, uint8_t b, std::vector<uint8_t>& out);

    /** Decode all remaining path memory (end of packet). */
    void flush(std::vector<uint8_t>& out);

    /**
     * Serialize live decoder state (path metrics + decision memory).
     * metricNext_ is pure per-step scratch and expected_/expIdx_ are
     * construction-time constants, so neither is written.
     */
    void snapshot(StateWriter& w) const;

    /** Restore the state written by snapshot(). */
    void restore(StateReader& r);

  private:
    void traceback(int emit_count, std::vector<uint8_t>& out);

    int tb_;
    int block_;
    std::vector<uint32_t> metric_;
    std::vector<uint32_t> metricNext_;
    std::vector<uint64_t> decisions_;  ///< one 64-bit word per step
    /** Precomputed expected (A,B) outputs for (state, input). */
    uint8_t expected_[convStates][2][2];
    /** Packed expected index (A | B<<1) per (state, input). */
    uint8_t expIdx_[convStates][2];
};

} // namespace dsp
} // namespace ziria

#endif // ZIRIA_DSP_VITERBI_H
