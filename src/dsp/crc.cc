#include "dsp/crc.h"

namespace ziria {
namespace dsp {

std::vector<uint8_t>
Crc32::fcsBits() const
{
    // The FCS is transmitted MSB-first of the ones-complemented register
    // in the reflected representation; with our bitwise-reflected
    // algorithm that is simply value() LSB-first.
    std::vector<uint8_t> out(32);
    uint32_t v = value();
    for (int i = 0; i < 32; ++i)
        out[i] = static_cast<uint8_t>((v >> i) & 1);
    return out;
}

uint32_t
Crc32::ofBits(const std::vector<uint8_t>& bits)
{
    Crc32 c;
    for (uint8_t b : bits)
        c.inputBit(b);
    return c.value();
}

void
Crc24::inputBit(uint8_t bit)
{
    uint32_t fb = ((crc_ >> 23) ^ static_cast<uint32_t>(bit & 1)) & 1u;
    crc_ = (crc_ << 1) & 0xFFFFFFu;
    if (fb)
        crc_ ^= 0x864CFBu;
}

uint32_t
Crc24::ofBits(const std::vector<uint8_t>& bits)
{
    Crc24 c;
    for (uint8_t b : bits)
        c.inputBit(b);
    return c.value();
}

} // namespace dsp
} // namespace ziria
