/**
 * @file
 * The 802.11a convolutional code: K=7, rate-1/2 mother code with
 * generators g0 = 133 (octal) and g1 = 171 (octal), plus the standard
 * puncturing patterns for rates 2/3 and 3/4.
 */
#ifndef ZIRIA_DSP_CONV_CODE_H
#define ZIRIA_DSP_CONV_CODE_H

#include <cstdint>
#include <vector>

namespace ziria {
namespace dsp {

/** Coding rates of 802.11a. */
enum class CodingRate { Half, TwoThirds, ThreeQuarters };

/** Numerator/denominator of a coding rate. */
inline int
rateNumerator(CodingRate r)
{
    switch (r) {
      case CodingRate::Half: return 1;
      case CodingRate::TwoThirds: return 2;
      default: return 3;
    }
}

inline int
rateDenominator(CodingRate r)
{
    switch (r) {
      case CodingRate::Half: return 2;
      case CodingRate::TwoThirds: return 3;
      default: return 4;
    }
}

constexpr int convK = 7;          ///< constraint length
constexpr uint32_t convG0 = 0133; ///< generator A (octal)
constexpr uint32_t convG1 = 0171; ///< generator B (octal)
constexpr int convStates = 64;

/** Streaming convolutional encoder with puncturing. */
class ConvEncoder
{
  public:
    explicit ConvEncoder(CodingRate rate = CodingRate::Half);

    void reset();

    /** Encode one data bit; appends the surviving coded bits to @p out. */
    void encodeBit(uint8_t bit, std::vector<uint8_t>& out);

    /** Encode a whole bit vector. */
    std::vector<uint8_t> encode(const std::vector<uint8_t>& bits);

    uint32_t state() const { return state_; }

  private:
    CodingRate rate_;
    uint32_t state_ = 0;  ///< last 6 input bits, newest in bit 0
    int phase_ = 0;       ///< position in the puncturing period
};

/**
 * Re-insert erasures at punctured positions: maps a punctured coded
 * stream back to the rate-1/2 lattice.  Erasures are marked with the
 * value 2 (branch metrics ignore them).
 */
class Depuncturer
{
  public:
    explicit Depuncturer(CodingRate rate = CodingRate::Half);

    void reset();

    /** Feed one received coded bit; appends 1+ lattice bits to @p out. */
    void input(uint8_t bit, std::vector<uint8_t>& out);

    /** Puncture-pattern phase, exposed for checkpoint serialization. */
    int phase() const { return phase_; }
    void setPhase(int p) { phase_ = p; }

  private:
    CodingRate rate_;
    int phase_ = 0;
};

/** Puncture-pattern query: is coded position @p i (A/B alternating on the
 *  rate-1/2 lattice) transmitted under @p rate? */
bool punctureKeeps(CodingRate rate, long lattice_pos);

} // namespace dsp
} // namespace ziria

#endif // ZIRIA_DSP_CONV_CODE_H
