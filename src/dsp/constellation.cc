#include "dsp/constellation.h"

#include <cmath>
#include <limits>

#include "support/panic.h"

namespace ziria {
namespace dsp {

namespace {

/** Gray-coded amplitude per axis-bit pattern (index = bits, LSB-first). */
const std::vector<int> kAxis1{-1, 1};
const std::vector<int> kAxis2{-3, -1, 3, 1};
const std::vector<int> kAxis3{-7, -5, -1, -3, 7, 5, 1, 3};

double
kmod(Modulation m)
{
    switch (m) {
      case Modulation::Bpsk: return 1.0;
      case Modulation::Qpsk: return std::sqrt(2.0);
      case Modulation::Qam16: return std::sqrt(10.0);
      default: return std::sqrt(42.0);
    }
}

int
axisBits(Modulation m)
{
    return bitsPerSymbol(m) / 2;
}

int16_t
scaled(Modulation m, int level)
{
    return static_cast<int16_t>(
        std::lround(level * constellationScale / kmod(m)));
}

} // namespace

const std::vector<int>&
axisLevels(Modulation m)
{
    switch (m) {
      case Modulation::Bpsk:
      case Modulation::Qpsk:
        return kAxis1;
      case Modulation::Qam16:
        return kAxis2;
      default:
        return kAxis3;
    }
}

Complex16
mapBits(Modulation m, uint32_t bits)
{
    if (m == Modulation::Bpsk)
        return Complex16{scaled(m, kAxis1[bits & 1]), 0};
    const std::vector<int>& axis = axisLevels(m);
    int nb = axisBits(m);
    uint32_t iBits = bits & ((1u << nb) - 1);
    uint32_t qBits = (bits >> nb) & ((1u << nb) - 1);
    return Complex16{scaled(m, axis[iBits]), scaled(m, axis[qBits])};
}

namespace {

uint32_t
sliceAxis(Modulation m, int16_t v)
{
    const std::vector<int>& axis = axisLevels(m);
    uint32_t best = 0;
    long bestDist = std::numeric_limits<long>::max();
    for (size_t i = 0; i < axis.size(); ++i) {
        long ref = scaled(m, axis[i]);
        long d = std::labs(static_cast<long>(v) - ref);
        if (d < bestDist) {
            bestDist = d;
            best = static_cast<uint32_t>(i);
        }
    }
    return best;
}

} // namespace

uint32_t
demapPoint(Modulation m, Complex16 p)
{
    if (m == Modulation::Bpsk)
        return p.re >= 0 ? 1u : 0u;
    int nb = axisBits(m);
    uint32_t i = sliceAxis(m, p.re);
    uint32_t q = sliceAxis(m, p.im);
    return i | (q << nb);
}

} // namespace dsp
} // namespace ziria
