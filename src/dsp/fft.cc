#include "dsp/fft.h"

#include <cmath>

#include "support/bits.h"
#include "support/panic.h"

namespace ziria {
namespace dsp {

Fft::Fft(int n) : n_(n)
{
    ZIRIA_ASSERT(n >= 2 && (n & (n - 1)) == 0, "FFT size must be 2^k");
    log2n_ = 0;
    while ((1 << log2n_) < n)
        ++log2n_;

    twiddle_.resize(n / 2);
    for (int k = 0; k < n / 2; ++k) {
        double ang = -2.0 * M_PI * k / n;
        twiddle_[k].re = static_cast<int16_t>(
            std::lround(std::cos(ang) * 32767.0));
        twiddle_[k].im = static_cast<int16_t>(
            std::lround(std::sin(ang) * 32767.0));
    }
    bitrev_.resize(n);
    for (int i = 0; i < n; ++i)
        bitrev_[i] = static_cast<int>(
            reverseBits(static_cast<uint32_t>(i), log2n_));
}

void
Fft::run(const Complex16* in, Complex16* out, bool inverse,
         bool scale) const
{
    // Work in 32-bit to keep butterfly headroom; narrow at the end.
    std::vector<Complex32> buf(n_);
    for (int i = 0; i < n_; ++i) {
        buf[bitrev_[i]].re = in[i].re;
        buf[bitrev_[i]].im = in[i].im;
    }

    for (int s = 1; s <= log2n_; ++s) {
        const int m = 1 << s;
        const int half = m >> 1;
        const int tstep = n_ >> s;
        for (int k = 0; k < n_; k += m) {
            for (int j = 0; j < half; ++j) {
                const Complex16& w = twiddle_[j * tstep];
                const int32_t wre = w.re;
                const int32_t wim = inverse ? -w.im : w.im;
                Complex32& a = buf[k + j];
                Complex32& b = buf[k + j + half];
                // t = w * b, Q15 product renormalized with rounding.
                int64_t tre = (static_cast<int64_t>(wre) * b.re -
                               static_cast<int64_t>(wim) * b.im +
                               (1 << 14)) >> 15;
                int64_t tim = (static_cast<int64_t>(wre) * b.im +
                               static_cast<int64_t>(wim) * b.re +
                               (1 << 14)) >> 15;
                int64_t are = a.re;
                int64_t aim = a.im;
                int64_t xre = are + tre;
                int64_t xim = aim + tim;
                int64_t yre = are - tre;
                int64_t yim = aim - tim;
                if (scale) {
                    // Round-to-nearest halving keeps the 1/N scaling
                    // unbiased across stages.
                    xre = (xre + 1) >> 1;
                    xim = (xim + 1) >> 1;
                    yre = (yre + 1) >> 1;
                    yim = (yim + 1) >> 1;
                }
                a.re = static_cast<int32_t>(xre);
                a.im = static_cast<int32_t>(xim);
                b.re = static_cast<int32_t>(yre);
                b.im = static_cast<int32_t>(yim);
            }
        }
    }

    auto sat = [](int32_t v) -> int16_t {
        if (v > 32767)
            return 32767;
        if (v < -32768)
            return -32768;
        return static_cast<int16_t>(v);
    };
    for (int i = 0; i < n_; ++i) {
        out[i].re = sat(buf[i].re);
        out[i].im = sat(buf[i].im);
    }
}

void
Fft::forward(const Complex16* in, Complex16* out) const
{
    run(in, out, false, true);
}

void
Fft::inverse(const Complex16* in, Complex16* out) const
{
    run(in, out, true, false);
}

void
dftReference(const std::vector<std::complex<double>>& in,
             std::vector<std::complex<double>>& out, bool inverse)
{
    const size_t n = in.size();
    out.assign(n, {0.0, 0.0});
    const double sign = inverse ? 2.0 : -2.0;
    for (size_t k = 0; k < n; ++k) {
        for (size_t t = 0; t < n; ++t) {
            double ang = sign * M_PI * static_cast<double>(k * t) /
                         static_cast<double>(n);
            out[k] += in[t] * std::complex<double>(std::cos(ang),
                                                   std::sin(ang));
        }
        if (!inverse)
            out[k] /= static_cast<double>(n);
    }
}

} // namespace dsp
} // namespace ziria
