/**
 * @file
 * 802.11a constellations: gray-coded BPSK/QPSK/16-QAM/64-QAM mapping
 * with the standard K_MOD normalization, scaled to fixed point, and the
 * matching hard demappers.
 */
#ifndef ZIRIA_DSP_CONSTELLATION_H
#define ZIRIA_DSP_CONSTELLATION_H

#include <cstdint>
#include <vector>

#include "ztype/value.h"

namespace ziria {
namespace dsp {

/** Modulations of 802.11a. */
enum class Modulation { Bpsk, Qpsk, Qam16, Qam64 };

/** Coded bits carried per subcarrier. */
inline int
bitsPerSymbol(Modulation m)
{
    switch (m) {
      case Modulation::Bpsk: return 1;
      case Modulation::Qpsk: return 2;
      case Modulation::Qam16: return 4;
      default: return 6;
    }
}

/**
 * Fixed-point amplitude of a fully-normalized constellation point.  All
 * modulations have (approximately) this RMS power per subcarrier, so the
 * equalizer can be modulation-agnostic.
 */
constexpr int constellationScale = 600;

/** Map `bitsPerSymbol(m)` bits (LSB-first) to a constellation point. */
Complex16 mapBits(Modulation m, uint32_t bits);

/** Hard-demap a received point to `bitsPerSymbol(m)` bits (LSB-first). */
uint32_t demapPoint(Modulation m, Complex16 p);

/** Per-axis gray-level table used by map/demap (exposed for tests). */
const std::vector<int>& axisLevels(Modulation m);

} // namespace dsp
} // namespace ziria

#endif // ZIRIA_DSP_CONSTELLATION_H
