#include "dsp/viterbi.h"

#include <algorithm>
#include <cstring>

#include "support/bits.h"
#include "support/panic.h"

namespace ziria {
namespace dsp {

namespace {

constexpr uint32_t kInfMetric = 1u << 29;

inline int
nextState(int s, int u)
{
    return (s >> 1) | (u << 5);
}

} // namespace

ViterbiDecoder::ViterbiDecoder(int traceback, int block)
    : tb_(traceback), block_(block)
{
    ZIRIA_ASSERT(traceback > 0 && block > 0);
    for (int s = 0; s < convStates; ++s) {
        for (int u = 0; u < 2; ++u) {
            uint32_t window = (static_cast<uint32_t>(u) << 6) |
                              static_cast<uint32_t>(s);
            expected_[s][u][0] =
                static_cast<uint8_t>(parity32(window & convG0));
            expected_[s][u][1] =
                static_cast<uint8_t>(parity32(window & convG1));
            expIdx_[s][u] = static_cast<uint8_t>(
                expected_[s][u][0] | (expected_[s][u][1] << 1));
        }
    }
    reset();
}

void
ViterbiDecoder::reset()
{
    metric_.assign(convStates, kInfMetric);
    metricNext_.assign(convStates, kInfMetric);
    metric_[0] = 0;  // the encoder starts zeroed
    decisions_.clear();
}

void
ViterbiDecoder::inputPair(uint8_t a, uint8_t b, std::vector<uint8_t>& out)
{
    std::fill(metricNext_.begin(), metricNext_.end(), kInfMetric);
    uint64_t decisionWord = 0;

    // Branch metric by packed expected outputs (erasures cost nothing).
    uint32_t costTab[4];
    for (int e = 0; e < 4; ++e) {
        uint32_t c = 0;
        if (a != 2 && a != (e & 1))
            ++c;
        if (b != 2 && b != (e >> 1))
            ++c;
        costTab[e] = c;
    }

    for (int s = 0; s < convStates; ++s) {
        uint32_t m = metric_[s];
        if (m >= kInfMetric)
            continue;
        for (int u = 0; u < 2; ++u) {
            uint32_t cost = m + costTab[expIdx_[s][u]];
            int ns = nextState(s, u);
            if (cost < metricNext_[ns]) {
                metricNext_[ns] = cost;
                // Decision: the dropped oldest bit of the predecessor.
                if (s & 1)
                    decisionWord |= (uint64_t{1} << ns);
                else
                    decisionWord &= ~(uint64_t{1} << ns);
            }
        }
    }
    metric_.swap(metricNext_);
    decisions_.push_back(decisionWord);

    // Normalize metrics occasionally so they never overflow.
    uint32_t minM = *std::min_element(metric_.begin(), metric_.end());
    if (minM > (1u << 20)) {
        for (auto& m : metric_)
            m -= minM;
    }

    if (static_cast<int>(decisions_.size()) >= tb_ + block_)
        traceback(block_, out);
}

void
ViterbiDecoder::traceback(int emit_count, std::vector<uint8_t>& out)
{
    // Start from the best current state and walk the whole history.
    int best = 0;
    for (int s = 1; s < convStates; ++s) {
        if (metric_[s] < metric_[best])
            best = s;
    }
    const int steps = static_cast<int>(decisions_.size());
    std::vector<uint8_t> bits(steps);
    int state = best;
    for (int t = steps - 1; t >= 0; --t) {
        bits[t] = static_cast<uint8_t>(state >> 5);  // the input at time t
        int dropped = (decisions_[t] >> state) & 1;
        state = ((state << 1) & 0x3f) | dropped;
    }
    // Release the oldest emit_count bits.
    emit_count = std::min(emit_count, steps);
    out.insert(out.end(), bits.begin(), bits.begin() + emit_count);
    decisions_.erase(decisions_.begin(), decisions_.begin() + emit_count);
}

void
ViterbiDecoder::flush(std::vector<uint8_t>& out)
{
    if (!decisions_.empty())
        traceback(static_cast<int>(decisions_.size()), out);
}

void
ViterbiDecoder::snapshot(StateWriter& w) const
{
    w.bytes(metric_.data(), metric_.size() * sizeof(uint32_t));
    w.blob(decisions_.data(), decisions_.size() * sizeof(uint64_t));
}

void
ViterbiDecoder::restore(StateReader& r)
{
    r.bytes(metric_.data(), metric_.size() * sizeof(uint32_t));
    std::vector<uint8_t> raw = r.blob();
    if (raw.size() % sizeof(uint64_t) != 0)
        throw StateFormatError("viterbi decision memory misaligned");
    decisions_.resize(raw.size() / sizeof(uint64_t));
    std::memcpy(decisions_.data(), raw.data(), raw.size());
}

} // namespace dsp
} // namespace ziria
