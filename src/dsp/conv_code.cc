#include "dsp/conv_code.h"

#include "support/bits.h"
#include "support/panic.h"

namespace ziria {
namespace dsp {

namespace {

/**
 * Puncture masks over the rate-1/2 lattice (A and B interleaved):
 *  2/3: A1 B1 A2 --  (period 4)
 *  3/4: A1 B1 A2 B3  (period 6, B2 and A3 stolen)
 */
const uint8_t kMask23[4] = {1, 1, 1, 0};
const uint8_t kMask34[6] = {1, 1, 1, 0, 0, 1};

} // namespace

bool
punctureKeeps(CodingRate rate, long lattice_pos)
{
    switch (rate) {
      case CodingRate::Half:
        return true;
      case CodingRate::TwoThirds:
        return kMask23[lattice_pos % 4] != 0;
      case CodingRate::ThreeQuarters:
        return kMask34[lattice_pos % 6] != 0;
    }
    return true;
}

ConvEncoder::ConvEncoder(CodingRate rate) : rate_(rate)
{
}

void
ConvEncoder::reset()
{
    state_ = 0;
    phase_ = 0;
}

void
ConvEncoder::encodeBit(uint8_t bit, std::vector<uint8_t>& out)
{
    // 7-bit window [u(t), u(t-1), ..., u(t-6)] in bits [6..0]; the state
    // keeps the six previous bits with the most recent in bit 5.
    uint32_t window = ((bit & 1u) << 6) | state_;
    uint8_t a = static_cast<uint8_t>(parity32(window & convG0));
    uint8_t b = static_cast<uint8_t>(parity32(window & convG1));

    int period = rate_ == CodingRate::Half
        ? 2
        : (rate_ == CodingRate::TwoThirds ? 4 : 6);
    if (punctureKeeps(rate_, phase_))
        out.push_back(a);
    phase_ = (phase_ + 1) % period;
    if (punctureKeeps(rate_, phase_))
        out.push_back(b);
    phase_ = (phase_ + 1) % period;

    state_ = (state_ >> 1) | ((bit & 1u) << 5);
}

std::vector<uint8_t>
ConvEncoder::encode(const std::vector<uint8_t>& bits)
{
    std::vector<uint8_t> out;
    out.reserve(bits.size() * 2);
    for (uint8_t b : bits)
        encodeBit(b, out);
    return out;
}

Depuncturer::Depuncturer(CodingRate rate) : rate_(rate)
{
}

void
Depuncturer::reset()
{
    phase_ = 0;
}

void
Depuncturer::input(uint8_t bit, std::vector<uint8_t>& out)
{
    int period = rate_ == CodingRate::Half
        ? 2
        : (rate_ == CodingRate::TwoThirds ? 4 : 6);
    // Fill stolen positions with erasures until the next kept slot.
    while (!punctureKeeps(rate_, phase_)) {
        out.push_back(2);
        phase_ = (phase_ + 1) % period;
    }
    out.push_back(bit & 1u ? 1 : bit);
    phase_ = (phase_ + 1) % period;
    // Trailing erasures so pairs complete promptly.
    while (!punctureKeeps(rate_, phase_)) {
        out.push_back(2);
        phase_ = (phase_ + 1) % period;
    }
}

} // namespace dsp
} // namespace ziria
