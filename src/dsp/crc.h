/**
 * @file
 * CRC-32 (the 802.11 FCS) and CRC-24 over bit streams.
 *
 * 802.11 serializes frames LSB-first; these CRCs operate directly on a
 * bit stream in transmission order, matching how the Ziria WiFi pipeline
 * appends and checks the FCS.
 */
#ifndef ZIRIA_DSP_CRC_H
#define ZIRIA_DSP_CRC_H

#include <cstdint>
#include <vector>

namespace ziria {
namespace dsp {

/** Streaming CRC-32 (poly 0x04C11DB7, init/final 0xFFFFFFFF). */
class Crc32
{
  public:
    void reset() { crc_ = 0xFFFFFFFFu; }

    /** Feed one bit (transmission order). */
    void
    inputBit(uint8_t bit)
    {
        uint32_t fb = (crc_ ^ static_cast<uint32_t>(bit & 1)) & 1u;
        crc_ >>= 1;
        if (fb)
            crc_ ^= 0xEDB88320u;  // reflected 0x04C11DB7
    }

    /** Final CRC value. */
    uint32_t value() const { return crc_ ^ 0xFFFFFFFFu; }

    /** The 32 FCS bits in transmission order. */
    std::vector<uint8_t> fcsBits() const;

    /** CRC over a full bit vector. */
    static uint32_t ofBits(const std::vector<uint8_t>& bits);

  private:
    uint32_t crc_ = 0xFFFFFFFFu;
};

/** Streaming CRC-24 (poly 0x864CFB, init 0). */
class Crc24
{
  public:
    void reset() { crc_ = 0; }

    void inputBit(uint8_t bit);

    uint32_t value() const { return crc_ & 0xFFFFFFu; }

    static uint32_t ofBits(const std::vector<uint8_t>& bits);

  private:
    uint32_t crc_ = 0;
};

} // namespace dsp
} // namespace ziria

#endif // ZIRIA_DSP_CRC_H
