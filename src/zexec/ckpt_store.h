/**
 * @file
 * Crash-safe on-disk checkpoint store for durable resume.
 *
 * Layout (docs/ROBUSTNESS.md, "Durable checkpoints & live migration"):
 *
 *   DIR/v1/<key>/ckpt-<generation 16-hex>.zck
 *
 * Each .zck file wraps one opaque payload (a ZCK1 pipeline snapshot or
 * a zserve session checkpoint) in a CRC-guarded envelope:
 *
 *   u32  magic   'ZDK1' (0x314b445a)
 *   u32  version (kCkptFileVersion)
 *   u64  payload length
 *   u32  CRC32 (IEEE, over the payload bytes)
 *   payload
 *
 * Writes are atomic: the envelope is written to a `.tmp-` sibling in
 * the same directory, fsync'd, and rename(2)'d into place, so a crash
 * mid-write leaves either the previous generation or a tmp file that
 * scans ignore — never a half-written visible checkpoint.
 *
 * Loads scan newest-generation-first.  A file that fails validation
 * (short envelope, bad magic/version, truncated payload, CRC mismatch)
 * is quarantined — renamed to `<name>.bad` and counted in
 * `ziria.ckpt.disk.quarantined` — and the scan falls back to the next
 * oldest generation instead of crashing.  save() garbage-collects
 * stale generations beyond a small retention window
 * (`ziria.ckpt.disk.gc`).
 *
 * Counters: ziria.ckpt.disk.{saved,loaded,quarantined,gc}.
 */
#ifndef ZIRIA_ZEXEC_CKPT_STORE_H
#define ZIRIA_ZEXEC_CKPT_STORE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ziria {

/** 'ZDK1' — durable checkpoint envelope magic. */
constexpr uint32_t kCkptFileMagic = 0x314b445a;

/** Bump when the on-disk envelope layout changes. */
constexpr uint32_t kCkptFileVersion = 1;

/** Generations kept per key; older ones are GC'd on save. */
constexpr unsigned kCkptRetainGenerations = 4;

/** IEEE CRC32 (reflected, poly 0xEDB88320), as used by the envelope. */
uint32_t crc32Ieee(const uint8_t* data, size_t n);

/**
 * One durable checkpoint directory.  Thread-compatible: callers
 * serialise access per key (the pipeline cadence hook and the server
 * I/O thread each own their keys exclusively).
 */
class CkptStore
{
  public:
    /** Uses @p dir as the store root; creates DIR/v1 lazily on save. */
    explicit CkptStore(std::string dir);

    /**
     * Keys name one logical run or session: 1-64 chars drawn from
     * [A-Za-z0-9_.-], not starting with '.'.
     */
    static bool validKey(const std::string& key);

    /**
     * Persist @p payload as the next generation for @p key (atomic
     * tmp+rename), then GC generations beyond the retention window.
     * Returns false (with @p err set) on I/O failure — the previous
     * generation, if any, is untouched.
     */
    bool save(const std::string& key, const std::vector<uint8_t>& payload,
              std::string* err = nullptr);

    /**
     * Load the newest valid generation for @p key into @p payload.
     * Corrupt generations are quarantined and skipped.  Returns false
     * if no valid generation exists (not an error: a fresh start).
     */
    bool load(const std::string& key, std::vector<uint8_t>& payload,
              std::string* err = nullptr);

    /** Drop every generation for @p key (clean completion). */
    void remove(const std::string& key);

    const std::string& dir() const { return dir_; }

  private:
    std::string keyDir(const std::string& key) const;

    std::string dir_;
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_CKPT_STORE_H
