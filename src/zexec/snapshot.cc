#include "zexec/snapshot.h"

#include <cstring>

#include "support/metrics.h"

namespace ziria {

std::vector<uint8_t>
takeSnapshot(const ExecNode& root, const Frame& f, uint64_t consumed,
             uint64_t emitted)
{
    StateWriter w;
    w.u32(kSnapshotMagic);
    w.u32(kSnapshotVersion);
    w.u64(consumed);
    w.u64(emitted);
    w.blob(f.size() ? f.at(0) : nullptr, f.size());
    root.snapshot(f, w);
    metrics::Registry::global().counter("ziria.ckpt.snapshots").inc();
    return w.take();
}

SnapshotInfo
restoreSnapshot(ExecNode& root, Frame& f, const uint8_t* data,
                size_t size)
{
    StateReader r(data, size);
    if (r.u32() != kSnapshotMagic)
        throw StateFormatError("bad checkpoint magic");
    uint32_t ver = r.u32();
    if (ver != kSnapshotVersion)
        throw StateFormatError("unsupported checkpoint version " +
                               std::to_string(ver));
    SnapshotInfo info;
    info.consumed = r.u64();
    info.emitted = r.u64();
    std::vector<uint8_t> frameImg = r.blob();
    if (frameImg.size() != f.size())
        throw StateFormatError("frame size mismatch (checkpoint from a "
                               "different program?)");

    // reset() first so every child is started and restore() only has to
    // patch state; the frame image then overwrites what reset clobbered;
    // the node stream last, so NativeNode factories see restored binders.
    root.reset(f);
    if (f.size())
        std::memcpy(f.at(0), frameImg.data(), frameImg.size());
    root.restore(f, r);
    metrics::Registry::global().counter("ziria.ckpt.restores").inc();
    return info;
}

} // namespace ziria
