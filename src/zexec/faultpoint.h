/**
 * @file
 * Deterministic fault injection for pipeline endpoints.
 *
 * A FaultSpec names one fault — *what* goes wrong and at which element
 * tick — and FaultySource/FaultySink are decorators that impose it on an
 * InputSource/OutputSink.  Faults model what a real SDR front end does
 * to a receiver: captures truncate mid-stream, DMA rings stall for a
 * while, drivers drop samples (short reads), and glue code throws.
 *
 * Everything is seeded and tick-indexed, so a failing fault run replays
 * exactly.  The layer is pay-for-what-you-use: an unwrapped pipeline
 * contains no fault code at all (the decorators are separate objects,
 * never consulted on the normal path), which keeps the PR-1
 * zero-cost-when-off guarantee (scripts/check_overhead.sh) intact.
 */
#ifndef ZIRIA_ZEXEC_FAULTPOINT_H
#define ZIRIA_ZEXEC_FAULTPOINT_H

#include <atomic>
#include <string>

#include "support/panic.h"
#include "support/rng.h"
#include "zexec/pipeline.h"

namespace ziria {

/** One injected fault: what happens and at which element tick. */
struct FaultSpec
{
    enum class Kind : uint8_t {
        None,       ///< no fault (decorators pass straight through)
        Truncate,   ///< end the stream at tick K (mid-stream truncation)
        Stall,      ///< block for stallMs at tick K (cancellable)
        Throw,      ///< throw InjectedFault at tick K
        ShortRead,  ///< from tick K on, randomly drop ~1/8 of elements
    };

    Kind kind = Kind::None;
    uint64_t tick = 0;     ///< element index at which the fault fires
    uint64_t stallMs = 0;  ///< Stall only: how long to block
    uint64_t seed = 1;     ///< ShortRead only: drop-pattern seed
    /** Throw/Stall only: how many times the fault fires (0 = every time
     *  the tick is reached — a *permanent* fault that defeats any
     *  restart policy).  The default of 1 makes the fault transient:
     *  after a restart the decorator does not re-fire, modelling a
     *  one-off glitch that a self-healing pipeline should absorb. */
    uint64_t count = 1;

    bool enabled() const { return kind != Kind::None; }

    /**
     * Parse a command-line spec:
     *   "truncate@K" | "throw@K[:N]" | "stall@K:MS[:N]" |
     *   "shortread@K:SEED"
     * (MS defaults to 1000, SEED to 1, the fire count N to 1; N=0 means
     * fire forever).  Throws FatalError on syntax errors — callers
     * surface it as a user error.
     */
    static FaultSpec parse(const std::string& s);

    /** Round-trippable display form ("truncate@128"). */
    std::string show() const;
};

/** The exception a Throw fault raises (distinguishable in tests). */
class InjectedFault : public FatalError
{
  public:
    explicit InjectedFault(const std::string& msg) : FatalError(msg) {}
};

/**
 * InputSource decorator applying one FaultSpec.  Stalls poll the cancel
 * flag every few ms, so a supervised teardown (InputSource::cancel)
 * unblocks the stage promptly instead of waiting out the stall.
 */
class FaultySource : public InputSource
{
  public:
    FaultySource(InputSource& inner, FaultSpec spec)
        : inner_(inner), spec_(spec), rng_(spec.seed)
    {
    }

    const uint8_t* next() override;
    void cancel() override;

    /**
     * Clear the sticky cancel latch for a restart attempt.  The fault
     * clock (ticks) and the fired count survive: a transient fault that
     * already fired stays fired, so the restarted run reads on past it —
     * this is what makes `throw@K` cost one frame instead of looping the
     * supervisor forever.
     */
    void rearm() override;

    /** Elements delivered so far (the fault clock). */
    uint64_t ticks() const { return n_; }

    /** Times the fault has fired (Throw/Stall). */
    uint64_t fired() const { return fired_; }

  private:
    bool shouldFire();

    InputSource& inner_;
    FaultSpec spec_;
    uint64_t n_ = 0;
    uint64_t fired_ = 0;
    std::atomic<bool> cancelled_{false};
    Rng rng_;
};

/**
 * OutputSink decorator applying one FaultSpec.  Truncate becomes a
 * short *write*: elements from tick K on are silently dropped (the
 * stream keeps flowing, the capture file is short).
 */
class FaultySink : public OutputSink
{
  public:
    FaultySink(OutputSink& inner, FaultSpec spec)
        : inner_(inner), spec_(spec)
    {
    }

    void put(const uint8_t* elem) override;
    void cancel() override;
    void rearm() override;  ///< see FaultySource::rearm()

    uint64_t ticks() const { return n_; }
    uint64_t dropped() const { return dropped_; }
    uint64_t fired() const { return fired_; }

  private:
    bool shouldFire();

    OutputSink& inner_;
    FaultSpec spec_;
    uint64_t n_ = 0;
    uint64_t dropped_ = 0;
    uint64_t fired_ = 0;
    std::atomic<bool> cancelled_{false};
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_FAULTPOINT_H
