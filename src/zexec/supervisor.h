/**
 * @file
 * Pipeline supervision: structured stage failures and the self-healing
 * restart policy (docs/ROBUSTNESS.md, "Recovery").
 *
 * PR 3 gave the runtime the *detection* half of fault tolerance — a
 * watchdog and a structured StageFailureError that tear a pipeline down
 * deterministically.  This header is the *recovery* half: a
 * RestartPolicy describes whether and how a failed run is re-armed and
 * retried (bounded attempts, exponential backoff), and a
 * RestartSupervisor does the shared bookkeeping for both the
 * single-threaded Pipeline driver and the ThreadedPipeline executor:
 * deciding restartability, recording the attempt history, emitting the
 * `restart.*` metrics, and sleeping out the backoff.
 *
 * The same long-lived-dataflow idea appears in StreamIt's persistent
 * stream graphs and Sora's always-on software radio: the antenna loop
 * must survive transient faults; only persistent ones may end the run.
 */
#ifndef ZIRIA_ZEXEC_SUPERVISOR_H
#define ZIRIA_ZEXEC_SUPERVISOR_H

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "support/panic.h"

namespace ziria {

/** Why a supervised stage (and with it the run) failed. */
enum class FailureCause : uint8_t {
    Exception,  ///< the stage's drive loop threw
    Stall,      ///< the watchdog saw no progress for the whole deadline
    Cancel,     ///< aborted as collateral of another stage's failure
};

/** Short lowercase name ("exception", "stall", "cancel"). */
const char* failureCauseName(FailureCause c);

/** Whether failed runs are retried in place. */
enum class RestartMode : uint8_t {
    Never,      ///< fail fast: the first StageFailure ends the run
    OnFailure,  ///< re-arm and retry Exception/Stall failures
};

/** How much of a threaded pipeline a restart re-arms. */
enum class RestartScope : uint8_t {
    Pipeline,  ///< re-arm every stage and reopen every queue (PR-4)
    Stage,     ///< re-arm only the failed stage; healthy stages keep
               ///< their node state and queue backlogs
};

/**
 * Bounded retry/backoff policy for a self-healing pipeline.
 *
 * With mode OnFailure, a run that fails with cause Exception or Stall
 * is re-armed and retried up to maxRestarts times; attempt k sleeps
 * backoffMsFor(k) first (exponential: initial * multiplier^(k-1),
 * capped at backoffCapMs).  Cause Cancel is never restartable — it is
 * collateral of another failure, which carries the blame.  A successful
 * run resets nothing: the budget is per run() call, not per process.
 */
struct RestartPolicy
{
    RestartMode mode = RestartMode::Never;
    uint32_t maxRestarts = 0;       ///< retry budget per run() call
    double backoffInitialMs = 10;   ///< sleep before the first retry
    double backoffMultiplier = 2.0; ///< growth factor per attempt
    double backoffCapMs = 1000;     ///< upper bound on any single sleep
    /** Threaded runs only: restart the whole pipeline or just the
     *  failed stage (docs/ROBUSTNESS.md, "Per-stage restart"). */
    RestartScope scope = RestartScope::Pipeline;

    bool
    enabled() const
    {
        return mode == RestartMode::OnFailure && maxRestarts > 0;
    }

    /** Backoff before restart attempt @p attempt (1-based), in ms. */
    double backoffMsFor(uint32_t attempt) const;
};

/**
 * Frame-boundary checkpointing (docs/ROBUSTNESS.md, "Checkpointing &
 * migration").  With an interval of N, the supervised drivers snapshot
 * the complete pipeline state (zexec/snapshot.h) every N consumed input
 * elements and journal the raw input consumed since; a restart then
 * restores the last snapshot and replays the journal (suppressing the
 * already-delivered outputs) instead of resetting to zero, so the
 * post-restart output stream is byte-identical to an uninterrupted
 * run.  interval 0 disables checkpointing entirely: no snapshot, no
 * journal, no per-element cost (guarded by scripts/check_overhead.sh).
 */
struct CheckpointPolicy
{
    uint64_t interval = 0;  ///< input elements between snapshots; 0 = off

    bool enabled() const { return interval > 0; }
};

/** One entry in a failed run's restart history. */
struct RestartAttempt
{
    uint32_t attempt = 0;      ///< 1-based restart number
    size_t stage = 0;          ///< which stage failed before this restart
    FailureCause cause = FailureCause::Exception;
    std::string message;
    double backoffMs = 0;      ///< sleep taken before the retry
};

/** Structured description of a failed pipeline stage. */
struct StageFailure
{
    size_t stage = 0;            ///< index into the stage vector
    std::string path;            ///< stable node path ("stage2")
    FailureCause cause = FailureCause::Exception;
    std::string message;         ///< human-readable detail
    std::exception_ptr inner;    ///< original exception (Exception only)

    // Restart history (filled by RestartSupervisor when a policy was
    // active; empty on a fail-fast run).
    std::vector<RestartAttempt> restarts;  ///< the retries already spent
    bool restartsExhausted = false;  ///< the retry budget ran out
    double backoffMsTotal = 0;       ///< total sleep across all retries
};

/**
 * Exception raised when a pipeline run fails.  Derives from FatalError
 * so existing catch sites keep working; failure() carries the
 * structured record (stage index, node path, cause, restart history).
 */
class StageFailureError : public FatalError
{
  public:
    explicit StageFailureError(StageFailure f);

    const StageFailure& failure() const { return failure_; }

  private:
    StageFailure failure_;
};

/**
 * Per-run restart bookkeeping shared by Pipeline and ThreadedPipeline.
 *
 * Usage: construct one per run() call; on each StageFailure call
 * onFailure(f).  If it returns true the failure was consumed — history
 * recorded, `restart.attempts` / `restart.backoff_ms_total` bumped, the
 * backoff slept — and the caller should re-arm and retry.  If it
 * returns false the run is over: f has been augmented with the restart
 * history (and restartsExhausted when the budget ran out, bumping
 * `restart.exhausted`), and the caller should throw it.
 */
class RestartSupervisor
{
  public:
    explicit RestartSupervisor(RestartPolicy policy)
        : policy_(policy)
    {
    }

    bool onFailure(StageFailure& f);

    /** Restarts consumed so far this run. */
    uint32_t attempts() const { return attempts_; }

    const std::vector<RestartAttempt>& history() const { return history_; }

  private:
    RestartPolicy policy_;
    uint32_t attempts_ = 0;
    double backoffMsTotal_ = 0;
    std::vector<RestartAttempt> history_;
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_SUPERVISOR_H
