#include "zexec/nodes.h"

#include "support/panic.h"
#include "ztype/value.h"

namespace ziria {

// ----------------------------------------------------------------- Seq

SeqNode::SeqNode(std::vector<Item> items) : items_(std::move(items))
{
    ZIRIA_ASSERT(!items_.empty());
}

void
SeqNode::start(Frame& f)
{
    idx_ = 0;
    done_ = false;
    items_[0].node->start(f);
}

void
SeqNode::reset(Frame& f)
{
    // Unlike start(), which only initializes the first item, reach every
    // item: a restart mid-sequence leaves items_[0..idx_] with partial
    // state that start() alone would never revisit.
    for (Item& it : items_)
        it.node->reset(f);
    idx_ = 0;
    done_ = false;
}

Status
SeqNode::advance(Frame& f)
{
    while (true) {
        Item& it = items_[idx_];
        Status s = it.node->advance(f);
        if (s == Status::Yield || s == Status::NeedInput)
            return s;
        // The active computer halted: bind its control value and switch
        // to the next component (the "switchtable" of §2.6).
        if (it.bindOff >= 0) {
            std::memcpy(f.at(static_cast<size_t>(it.bindOff)),
                        it.node->ctrl(), it.bindWidth);
        }
        if (idx_ + 1 == items_.size()) {
            done_ = true;
            return Status::Done;
        }
        ++idx_;
        items_[idx_].node->start(f);
    }
}

void
SeqNode::supply(Frame& f, const uint8_t* in)
{
    items_[idx_].node->supply(f, in);
}

const uint8_t*
SeqNode::out() const
{
    return items_[idx_].node->out();
}

const uint8_t*
SeqNode::ctrl() const
{
    ZIRIA_ASSERT(done_);
    return items_.back().node->ctrl();
}

// ---------------------------------------------------------------- Pipe

PipeNode::PipeNode(NodePtr left, NodePtr right)
    : left_(std::move(left)), right_(std::move(right))
{
    inWidth_ = left_->inWidth();
    outWidth_ = right_->outWidth();
    ctrlWidth_ = std::max(left_->ctrlWidth(), right_->ctrlWidth());
}

void
PipeNode::start(Frame& f)
{
    left_->start(f);
    right_->start(f);
    ctrlSrc_ = nullptr;
    ctrlFrom_ = 0;
}

void
PipeNode::reset(Frame& f)
{
    left_->reset(f);
    right_->reset(f);
    ctrlSrc_ = nullptr;
    ctrlFrom_ = 0;
}

Status
PipeNode::advance(Frame& f)
{
    while (true) {
        // Drain from the right (§2.6): the pipe's tick is c2's tick.
        Status sr = right_->advance(f);
        if (sr == Status::Yield)
            return Status::Yield;
        if (sr == Status::Done) {
            ctrlSrc_ = right_->ctrl();
            ctrlWidth_ = right_->ctrlWidth();
            ctrlFrom_ = 2;
            return Status::Done;
        }
        // The right side needs one element: run the left side for it.
        while (true) {
            Status sl = left_->advance(f);
            if (sl == Status::Yield) {
                right_->supply(f, left_->out());
                break;
            }
            if (sl == Status::Done) {
                ctrlSrc_ = left_->ctrl();
                ctrlWidth_ = left_->ctrlWidth();
                ctrlFrom_ = 1;
                return Status::Done;
            }
            return Status::NeedInput;
        }
    }
}

void
PipeNode::supply(Frame& f, const uint8_t* in)
{
    left_->supply(f, in);
}

// ------------------------------------------------------------------ If

IfNode::IfNode(EvalInt cond, NodePtr then_n, NodePtr else_n)
    : cond_(std::move(cond)), then_(std::move(then_n)),
      else_(std::move(else_n))
{
    inWidth_ = std::max(then_->inWidth(),
                        else_ ? else_->inWidth() : size_t{0});
    outWidth_ = std::max(then_->outWidth(),
                         else_ ? else_->outWidth() : size_t{0});
    ctrlWidth_ = then_->ctrlWidth();
}

void
IfNode::start(Frame& f)
{
    chosen_ = cond_(f) ? then_.get() : (else_ ? else_.get() : nullptr);
    if (chosen_)
        chosen_->start(f);
}

void
IfNode::reset(Frame& f)
{
    // Reset BOTH branches — the previously chosen one may not be the one
    // the re-evaluated guard picks next, but its stale state must go
    // either way.  reset() leaves each branch started, so re-selecting
    // below needs no extra start().
    then_->reset(f);
    if (else_)
        else_->reset(f);
    chosen_ = cond_(f) ? then_.get() : (else_ ? else_.get() : nullptr);
}

Status
IfNode::advance(Frame& f)
{
    if (!chosen_)
        return Status::Done;  // `if` without else on false: unit return
    return chosen_->advance(f);
}

void
IfNode::supply(Frame& f, const uint8_t* in)
{
    ZIRIA_ASSERT(chosen_ != nullptr);
    chosen_->supply(f, in);
}

// -------------------------------------------------------------- Repeat

namespace {

/// Iterations a repeat body may complete without any I/O before we flag a
/// livelock (a body that neither takes nor emits would spin forever).
constexpr uint64_t repeatSpinLimit = 1u << 20;

} // namespace

RepeatNode::RepeatNode(NodePtr body) : body_(std::move(body))
{
    inWidth_ = body_->inWidth();
    outWidth_ = body_->outWidth();
}

void
RepeatNode::start(Frame& f)
{
    body_->start(f);
    spins_ = 0;
}

void
RepeatNode::reset(Frame& f)
{
    body_->reset(f);
    spins_ = 0;
}

Status
RepeatNode::advance(Frame& f)
{
    while (true) {
        Status s = body_->advance(f);
        if (s == Status::Yield || s == Status::NeedInput) {
            spins_ = 0;
            return s;
        }
        // Body halted: re-initialize and continue (repeat semantics).
        if (++spins_ > repeatSpinLimit)
            fatal("repeat: body completed 2^20 times without taking or "
                  "emitting (livelock)");
        body_->start(f);
    }
}

void
RepeatNode::supply(Frame& f, const uint8_t* in)
{
    body_->supply(f, in);
}

// --------------------------------------------------------------- Times

TimesNode::TimesNode(EvalInt count, long iv_off, TypeKind iv_kind,
                     NodePtr body)
    : count_(std::move(count)), ivOff_(iv_off), ivKind_(iv_kind),
      body_(std::move(body))
{
    inWidth_ = body_->inWidth();
    outWidth_ = body_->outWidth();
    ctrlWidth_ = 0;
}

void
TimesNode::start(Frame& f)
{
    n_ = count_(f);
    i_ = 0;
    if (ivOff_ >= 0)
        writeIntRaw(ivKind_, f.at(static_cast<size_t>(ivOff_)), 0);
    if (n_ > 0)
        body_->start(f);
}

void
TimesNode::reset(Frame& f)
{
    n_ = count_(f);
    i_ = 0;
    // Write the induction variable before resetting the body, matching
    // start()'s ordering (the body's own start may read the binder).
    if (ivOff_ >= 0)
        writeIntRaw(ivKind_, f.at(static_cast<size_t>(ivOff_)), 0);
    body_->reset(f);
}

Status
TimesNode::advance(Frame& f)
{
    while (true) {
        if (i_ >= n_)
            return Status::Done;
        Status s = body_->advance(f);
        if (s != Status::Done)
            return s;
        ++i_;
        if (i_ >= n_)
            return Status::Done;
        if (ivOff_ >= 0)
            writeIntRaw(ivKind_, f.at(static_cast<size_t>(ivOff_)), i_);
        body_->start(f);
    }
}

void
TimesNode::supply(Frame& f, const uint8_t* in)
{
    body_->supply(f, in);
}

// --------------------------------------------------------------- While

WhileNode::WhileNode(EvalInt cond, NodePtr body)
    : cond_(std::move(cond)), body_(std::move(body))
{
    inWidth_ = body_->inWidth();
    outWidth_ = body_->outWidth();
    ctrlWidth_ = 0;
}

void
WhileNode::start(Frame&)
{
    running_ = false;
    finished_ = false;
}

void
WhileNode::reset(Frame& f)
{
    // start() leaves the body to be lazily started once the guard holds,
    // so it would skip a body whose previous iteration was cut short —
    // reset it explicitly.  advance() re-starts it before use anyway.
    body_->reset(f);
    running_ = false;
    finished_ = false;
}

Status
WhileNode::advance(Frame& f)
{
    while (true) {
        if (finished_)
            return Status::Done;
        if (!running_) {
            if (!cond_(f)) {
                finished_ = true;
                return Status::Done;
            }
            body_->start(f);
            running_ = true;
        }
        Status s = body_->advance(f);
        if (s != Status::Done)
            return s;
        running_ = false;  // re-check the guard
    }
}

void
WhileNode::supply(Frame& f, const uint8_t* in)
{
    body_->supply(f, in);
}

// -------------------------------------------------------------- LetVar

LetVarNode::LetVarNode(size_t off, size_t width, EvalInto init,
                       NodePtr body)
    : off_(off), width_(width), init_(std::move(init)),
      body_(std::move(body))
{
    inWidth_ = body_->inWidth();
    outWidth_ = body_->outWidth();
    ctrlWidth_ = body_->ctrlWidth();
}

void
LetVarNode::start(Frame& f)
{
    if (init_)
        init_(f, f.at(off_));
    else
        std::memset(f.at(off_), 0, width_);
    body_->start(f);
}

void
LetVarNode::reset(Frame& f)
{
    if (init_)
        init_(f, f.at(off_));
    else
        std::memset(f.at(off_), 0, width_);
    body_->reset(f);
}

Status
LetVarNode::advance(Frame& f)
{
    return body_->advance(f);
}

void
LetVarNode::supply(Frame& f, const uint8_t* in)
{
    body_->supply(f, in);
}

// -------------------------------------------------- snapshot / restore
//
// Combinators serialize their own scheduling state (active index,
// chosen branch, loop counters), the frame cells they own (seq binders,
// induction variables, LetVar storage), and recurse into EVERY child —
// mirroring the reset() walk so the stream is total over the tree.
// restore() assumes reset(f) ran first and only patches state back in.

void
SeqNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.u64(idx_);
    w.u8(done_ ? 1 : 0);
    for (const Item& it : items_) {
        if (it.bindOff >= 0)
            w.bytes(f.at(static_cast<size_t>(it.bindOff)), it.bindWidth);
        it.node->snapshot(f, w);
    }
}

void
SeqNode::restore(Frame& f, StateReader& r)
{
    // The stream is untrusted on the zserve migration path: an index
    // past the item list would send advance()/supply() out of bounds.
    size_t idx = static_cast<size_t>(r.u64());
    if (idx >= items_.size())
        throw StateFormatError("seq active index out of range");
    idx_ = idx;
    done_ = r.u8() != 0;
    // Binder cells land BEFORE each item restores: a NativeNode's
    // restore re-runs its factory, which reads the binders.
    for (Item& it : items_) {
        if (it.bindOff >= 0)
            r.bytes(f.at(static_cast<size_t>(it.bindOff)), it.bindWidth);
        it.node->restore(f, r);
    }
}

void
PipeNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.u8(ctrlFrom_);
    w.u64(ctrlWidth_);
    left_->snapshot(f, w);
    right_->snapshot(f, w);
}

void
PipeNode::restore(Frame& f, StateReader& r)
{
    uint8_t from = r.u8();
    if (from > 2)
        throw StateFormatError("pipe control origin out of range");
    size_t cw = static_cast<size_t>(r.u64());
    left_->restore(f, r);
    right_->restore(f, r);
    // The control width is derivable from the (already restored)
    // children; an untrusted stream claiming a wider value would let a
    // parent copy past the halted child's control buffer.
    if (from != 0 &&
        cw != (from == 1 ? left_->ctrlWidth() : right_->ctrlWidth()))
        throw StateFormatError("pipe control width mismatch");
    ctrlFrom_ = from;
    ctrlWidth_ = cw;
    // Re-resolve the control pointer from the restored children; a
    // child's ctrl() is only callable once it actually halted.
    ctrlSrc_ = ctrlFrom_ == 0
        ? nullptr
        : (ctrlFrom_ == 1 ? left_->ctrl() : right_->ctrl());
}

void
IfNode::snapshot(const Frame& f, StateWriter& w) const
{
    uint8_t which = 0;
    if (chosen_ == then_.get())
        which = 1;
    else if (chosen_ && chosen_ == else_.get())
        which = 2;
    w.u8(which);
    then_->snapshot(f, w);
    if (else_)
        else_->snapshot(f, w);
}

void
IfNode::restore(Frame& f, StateReader& r)
{
    uint8_t which = r.u8();
    if (which > 2 || (which == 2 && !else_))
        throw StateFormatError("if branch selector out of range");
    then_->restore(f, r);
    if (else_)
        else_->restore(f, r);
    chosen_ = which == 1 ? then_.get()
                         : (which == 2 ? else_.get() : nullptr);
}

void
RepeatNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.u64(spins_);
    body_->snapshot(f, w);
}

void
RepeatNode::restore(Frame& f, StateReader& r)
{
    spins_ = r.u64();
    body_->restore(f, r);
}

void
TimesNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.i64(n_);
    w.i64(i_);
    // Round-trip the induction cell itself (not just i_): the body may
    // read it at any point and the cell is the source of truth.
    if (ivOff_ >= 0)
        w.i64(readIntRaw(ivKind_, f.at(static_cast<size_t>(ivOff_))));
    body_->snapshot(f, w);
}

void
TimesNode::restore(Frame& f, StateReader& r)
{
    n_ = r.i64();
    i_ = r.i64();
    if (ivOff_ >= 0)
        writeIntRaw(ivKind_, f.at(static_cast<size_t>(ivOff_)), r.i64());
    body_->restore(f, r);
}

void
WhileNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.u8(running_ ? 1 : 0);
    w.u8(finished_ ? 1 : 0);
    body_->snapshot(f, w);
}

void
WhileNode::restore(Frame& f, StateReader& r)
{
    running_ = r.u8() != 0;
    finished_ = r.u8() != 0;
    body_->restore(f, r);
}

void
LetVarNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.bytes(f.at(off_), width_);
    body_->snapshot(f, w);
}

void
LetVarNode::restore(Frame& f, StateReader& r)
{
    r.bytes(f.at(off_), width_);
    body_->restore(f, r);
}

} // namespace ziria
