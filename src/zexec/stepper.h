/**
 * @file
 * Cooperative tick/proc stepping: the shared inner loop of every pipeline
 * driver.
 *
 * The paper's execution model (§2.6) makes each compiled computation a
 * re-enterable state machine, so *driving* one is a small pure loop:
 * advance(), route a yielded element to the sink, feed a needed element
 * from the source, stop on halt.  That loop used to live inline in the
 * single-threaded Pipeline driver; the serving subsystem (src/zserve/)
 * needs the same loop but non-blocking — a session parked on an empty
 * input queue or a full output buffer must yield its worker thread to
 * another session instead of blocking it.
 *
 * Stepper is that loop, factored out once.  The pull callback is
 * tri-state (Ready / Empty / End) so callers choose the blocking
 * discipline: a blocking InputSource maps null to End and never reports
 * Empty (Pipeline::run), a queue-backed session source reports Empty
 * when the poll loop should regain control (zserve::Session).  The push
 * callback returns false to suspend output (sink full / output budget
 * reached).  `maxSteps` bounds one burst so a scheduler can time-slice
 * hundreds of sessions over a small worker pool.
 */
#ifndef ZIRIA_ZEXEC_STEPPER_H
#define ZIRIA_ZEXEC_STEPPER_H

#include <cstdint>

#include "zexec/node.h"
#include "zexec/span.h"
#include "zexpr/frame.h"

namespace ziria {

/** Tri-state result of a non-blocking input pull. */
enum class Feed : uint8_t {
    Ready,  ///< one element produced
    Empty,  ///< nothing available *now* (caller should park and retry)
    End,    ///< end of stream (no element will ever come)
};

/** Why a stepping burst returned control to the caller. */
enum class StepOutcome : uint8_t {
    NeedInput,   ///< pull reported Empty while the node needs input
    EndOfInput,  ///< pull reported End while the node needs input
    SinkFull,    ///< push returned false (element was delivered first)
    Halted,      ///< the computation returned; ctrl value is available
    Budget,      ///< maxSteps advances consumed; more work may be ready
};

/**
 * Drives one execution-node tree against pull/push callbacks, keeping
 * the consumed/emitted accounting every driver reports.  One Stepper
 * corresponds to one run attempt; the restart supervisor re-arms it via
 * reset().
 */
class Stepper
{
  public:
    explicit Stepper(ExecNode& root) : root_(root) {}

    void
    start(Frame& f)
    {
        root_.start(f);
        consumed_ = 0;
        emitted_ = 0;
        halted_ = false;
    }

    /** Re-arm after a failure: frame-boundary state, counters kept. */
    void
    reset(Frame& f)
    {
        root_.reset(f);
        if (spans_)
            spans_->onRestart();
    }

    /**
     * Continue a tree someone else re-armed — after restoreSnapshot()
     * (zexec/snapshot.h) put it back at a checkpoint, or when a stage
     * carries live node state across a per-stage restart.  Counters pick
     * up from the given values instead of zero; no start() is issued.
     */
    void
    resume(uint64_t consumed, uint64_t emitted)
    {
        consumed_ = consumed;
        emitted_ = emitted;
        halted_ = false;
    }

    /**
     * Attach a frame-span latency tracker (null = off).  When off the
     * drive loop pays exactly one predictable-false branch per element
     * — the same zero-cost-when-off contract as TracedNode.
     */
    void setSpans(SpanTracker* s) { spans_ = s; }

    /**
     * Advance until the node blocks, halts, or the budget runs out.
     *
     * @param pull `Feed pull(const uint8_t** elem)` — produce one input
     *             element of the node's inWidth (pointer stays valid
     *             until the next advance, per the ExecNode contract).
     * @param push `bool push(const uint8_t* elem)` — consume one output
     *             element; return false to suspend stepping (the element
     *             HAS been delivered).
     * @param maxSteps advance() budget for this burst (0 = unlimited).
     */
    template <typename PullFn, typename PushFn>
    StepOutcome
    drive(Frame& f, PullFn&& pull, PushFn&& push, uint64_t maxSteps = 0)
    {
        for (uint64_t steps = 0;; ++steps) {
            if (maxSteps && steps >= maxSteps)
                return StepOutcome::Budget;
            Status s = root_.advance(f);
            if (s == Status::Yield) {
                ++emitted_;
                if (spans_)
                    spans_->onOutput();
                if (!push(root_.out()))
                    return StepOutcome::SinkFull;
            } else if (s == Status::NeedInput) {
                const uint8_t* p = nullptr;
                switch (pull(&p)) {
                  case Feed::Ready:
                    root_.supply(f, p);
                    ++consumed_;
                    if (spans_)
                        spans_->onInput();
                    break;
                  case Feed::Empty:
                    return StepOutcome::NeedInput;
                  case Feed::End:
                    return StepOutcome::EndOfInput;
                }
            } else {  // Status::Done
                halted_ = true;
                return StepOutcome::Halted;
            }
        }
    }

    uint64_t consumed() const { return consumed_; }
    uint64_t emitted() const { return emitted_; }
    bool halted() const { return halted_; }

    /** Control value bytes after Halted (null/0 when none). */
    const uint8_t* ctrlData() const { return root_.ctrl(); }
    size_t ctrlWidth() const { return root_.ctrlWidth(); }

  private:
    ExecNode& root_;
    SpanTracker* spans_ = nullptr;
    uint64_t consumed_ = 0;
    uint64_t emitted_ = 0;
    bool halted_ = false;
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_STEPPER_H
