#include "zexec/ckpt_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/log.h"
#include "support/metrics.h"

namespace ziria {

namespace {

metrics::Counter&
ctr(const char* name)
{
    return metrics::Registry::global().counter(name);
}

bool
ensureDir(const std::string& path, std::string* err)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    if (err)
        *err = path + ": " + std::strerror(errno);
    return false;
}

void
putU32(std::vector<uint8_t>& out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t>& out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getU32(const uint8_t* p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t
getU64(const uint8_t* p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

constexpr size_t kEnvelopeBytes = 4 + 4 + 8 + 4;

/** ckpt-<16 hex>.zck → generation, or false if the name doesn't match. */
bool
parseGeneration(const std::string& name, uint64_t& gen)
{
    static const char prefix[] = "ckpt-";
    static const char suffix[] = ".zck";
    if (name.size() != 5 + 16 + 4)
        return false;
    if (name.compare(0, 5, prefix) != 0 ||
        name.compare(5 + 16, 4, suffix) != 0)
        return false;
    gen = 0;
    for (size_t i = 5; i < 5 + 16; ++i) {
        char c = name[i];
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a' + 10);
        else
            return false;
        gen = (gen << 4) | digit;
    }
    return true;
}

std::string
generationName(uint64_t gen)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "ckpt-%016llx.zck",
                  static_cast<unsigned long long>(gen));
    return buf;
}

/** All generations present for a key, ascending.  Ignores tmp/bad files. */
std::vector<uint64_t>
listGenerations(const std::string& key_dir)
{
    std::vector<uint64_t> gens;
    DIR* d = ::opendir(key_dir.c_str());
    if (!d)
        return gens;
    while (struct dirent* e = ::readdir(d)) {
        uint64_t gen;
        if (parseGeneration(e->d_name, gen))
            gens.push_back(gen);
    }
    ::closedir(d);
    std::sort(gens.begin(), gens.end());
    return gens;
}

bool
readWhole(const std::string& path, std::vector<uint8_t>& out,
          std::string* err)
{
    FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (err)
            *err = path + ": " + std::strerror(errno);
        return false;
    }
    out.clear();
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    if (!ok && err)
        *err = path + ": read error";
    return ok;
}

/** Validate one envelope; on success @p payload gets the body. */
bool
validateEnvelope(const std::vector<uint8_t>& file,
                 std::vector<uint8_t>& payload, std::string* why)
{
    if (file.size() < kEnvelopeBytes) {
        *why = "short envelope";
        return false;
    }
    if (getU32(file.data()) != kCkptFileMagic) {
        *why = "bad magic";
        return false;
    }
    if (getU32(file.data() + 4) != kCkptFileVersion) {
        *why = "unsupported version";
        return false;
    }
    uint64_t len = getU64(file.data() + 8);
    if (len != file.size() - kEnvelopeBytes) {
        *why = "truncated payload";
        return false;
    }
    uint32_t crc = getU32(file.data() + 16);
    const uint8_t* body = file.data() + kEnvelopeBytes;
    if (crc32Ieee(body, static_cast<size_t>(len)) != crc) {
        *why = "CRC mismatch";
        return false;
    }
    payload.assign(body, body + len);
    (void)why;
    return true;
}

} // namespace

uint32_t
crc32Ieee(const uint8_t* data, size_t n)
{
    static uint32_t table[256];
    static bool init = false;
    if (!init) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        init = true;
    }
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < n; ++i)
        crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

CkptStore::CkptStore(std::string dir) : dir_(std::move(dir)) {}

bool
CkptStore::validKey(const std::string& key)
{
    if (key.empty() || key.size() > 64 || key[0] == '.')
        return false;
    for (char c : key) {
        bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
CkptStore::keyDir(const std::string& key) const
{
    return dir_ + "/v1/" + key;
}

bool
CkptStore::save(const std::string& key, const std::vector<uint8_t>& payload,
                std::string* err)
{
    if (!validKey(key)) {
        if (err)
            *err = "invalid checkpoint key '" + key + "'";
        return false;
    }
    if (!ensureDir(dir_, err) || !ensureDir(dir_ + "/v1", err) ||
        !ensureDir(keyDir(key), err))
        return false;

    std::string kd = keyDir(key);
    std::vector<uint64_t> gens = listGenerations(kd);
    uint64_t gen = gens.empty() ? 1 : gens.back() + 1;

    std::vector<uint8_t> env;
    env.reserve(kEnvelopeBytes + payload.size());
    putU32(env, kCkptFileMagic);
    putU32(env, kCkptFileVersion);
    putU64(env, payload.size());
    putU32(env, crc32Ieee(payload.data(), payload.size()));
    env.insert(env.end(), payload.begin(), payload.end());

    // Atomic publish: write + fsync a tmp sibling, then rename.  The
    // pid in the tmp name keeps a crashed writer's leftover from
    // colliding with ours; scans never consider tmp files.
    std::string final_path = kd + "/" + generationName(gen);
    std::string tmp_path = kd + "/.tmp-" + std::to_string(::getpid()) + "-" +
                           generationName(gen);
    int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0) {
        if (err)
            *err = tmp_path + ": " + std::strerror(errno);
        return false;
    }
    size_t off = 0;
    bool ok = true;
    while (off < env.size()) {
        ssize_t n = ::write(fd, env.data() + off, env.size() - off);
        if (n <= 0) {
            if (errno == EINTR)
                continue;
            ok = false;
            break;
        }
        off += static_cast<size_t>(n);
    }
    if (ok && ::fsync(fd) != 0)
        ok = false;
    ::close(fd);
    if (ok && ::rename(tmp_path.c_str(), final_path.c_str()) != 0)
        ok = false;
    if (!ok) {
        if (err)
            *err = final_path + ": " + std::strerror(errno);
        ::unlink(tmp_path.c_str());
        return false;
    }
    ctr("ziria.ckpt.disk.saved").inc();

    // Retention: drop generations beyond the window, oldest first.
    gens.push_back(gen);
    while (gens.size() > kCkptRetainGenerations) {
        std::string stale = kd + "/" + generationName(gens.front());
        gens.erase(gens.begin());
        if (::unlink(stale.c_str()) == 0)
            ctr("ziria.ckpt.disk.gc").inc();
    }
    return true;
}

bool
CkptStore::load(const std::string& key, std::vector<uint8_t>& payload,
                std::string* err)
{
    if (!validKey(key)) {
        if (err)
            *err = "invalid checkpoint key '" + key + "'";
        return false;
    }
    std::string kd = keyDir(key);
    std::vector<uint64_t> gens = listGenerations(kd);
    for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
        std::string path = kd + "/" + generationName(*it);
        std::vector<uint8_t> file;
        std::string why;
        if (readWhole(path, file, &why) &&
            validateEnvelope(file, payload, &why)) {
            ctr("ziria.ckpt.disk.loaded").inc();
            return true;
        }
        // Quarantine and fall back to the next-oldest generation.
        ZIRIA_LOG(Warn, "ckpt: quarantining ", path, " (", why, ")");
        std::string bad = path + ".bad";
        ::rename(path.c_str(), bad.c_str());
        ctr("ziria.ckpt.disk.quarantined").inc();
    }
    if (err)
        *err = "no valid checkpoint for key '" + key + "'";
    return false;
}

void
CkptStore::remove(const std::string& key)
{
    if (!validKey(key))
        return;
    std::string kd = keyDir(key);
    DIR* d = ::opendir(kd.c_str());
    if (!d)
        return;
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
        std::string n = e->d_name;
        if (n != "." && n != "..")
            names.push_back(n);
    }
    ::closedir(d);
    for (const std::string& n : names)
        ::unlink((kd + "/" + n).c_str());
    ::rmdir(kd.c_str());
}

} // namespace ziria
