#include "zexec/faultpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/metrics.h"

namespace ziria {

namespace {

/** Sleep for @p ms, polling @p cancelled every slice; true if cancelled. */
bool
cancellableSleep(uint64_t ms, const std::atomic<bool>& cancelled)
{
    using clock = std::chrono::steady_clock;
    const auto end = clock::now() + std::chrono::milliseconds(ms);
    while (clock::now() < end) {
        if (cancelled.load(std::memory_order_relaxed))
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return cancelled.load(std::memory_order_relaxed);
}

uint64_t
parseU64(const std::string& s, const std::string& whole)
{
    char* end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size())
        fatalf("bad fault spec '", whole, "': '", s,
               "' is not a non-negative integer");
    return v;
}

void
countInjection(const char* what)
{
    metrics::Registry::global()
        .counter(std::string("fault.injected.") + what)
        .inc();
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string& s)
{
    const size_t at = s.find('@');
    if (at == std::string::npos)
        fatalf("bad fault spec '", s,
               "': expected KIND@TICK[:ARG] with KIND one of "
               "truncate|stall|throw|shortread");
    const std::string kind = s.substr(0, at);
    std::string rest = s.substr(at + 1);
    std::string arg;
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
        arg = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
    }

    FaultSpec spec;
    spec.tick = parseU64(rest, s);
    if (kind == "truncate") {
        spec.kind = Kind::Truncate;
    } else if (kind == "stall") {
        spec.kind = Kind::Stall;
        spec.stallMs = arg.empty() ? 1000 : parseU64(arg, s);
    } else if (kind == "throw") {
        spec.kind = Kind::Throw;
    } else if (kind == "shortread") {
        spec.kind = Kind::ShortRead;
        spec.seed = arg.empty() ? 1 : parseU64(arg, s);
    } else {
        fatalf("bad fault spec '", s, "': unknown kind '", kind,
               "' (expected truncate|stall|throw|shortread)");
    }
    if (spec.kind != Kind::Stall && spec.kind != Kind::ShortRead &&
        !arg.empty())
        fatalf("bad fault spec '", s, "': '", kind,
               "' takes no ':' argument");
    return spec;
}

std::string
FaultSpec::show() const
{
    switch (kind) {
      case Kind::None: return "none";
      case Kind::Truncate: return "truncate@" + std::to_string(tick);
      case Kind::Stall:
        return "stall@" + std::to_string(tick) + ":" +
               std::to_string(stallMs);
      case Kind::Throw: return "throw@" + std::to_string(tick);
      case Kind::ShortRead:
        return "shortread@" + std::to_string(tick) + ":" +
               std::to_string(seed);
    }
    return "none";
}

const uint8_t*
FaultySource::next()
{
    if (cancelled_.load(std::memory_order_relaxed))
        return nullptr;
    switch (spec_.kind) {
      case FaultSpec::Kind::Truncate:
        if (n_ >= spec_.tick) {
            countInjection("truncate");
            return nullptr;
        }
        break;
      case FaultSpec::Kind::Throw:
        if (n_ == spec_.tick) {
            countInjection("throw");
            throw InjectedFault("injected fault: throw at source tick " +
                                std::to_string(n_));
        }
        break;
      case FaultSpec::Kind::Stall:
        if (n_ == spec_.tick) {
            countInjection("stall");
            if (cancellableSleep(spec_.stallMs, cancelled_))
                return nullptr;
        }
        break;
      case FaultSpec::Kind::ShortRead:
        if (n_ >= spec_.tick) {
            // Drop (skip) inner elements with probability 1/8 each.
            while ((rng_.next() & 7) == 0) {
                countInjection("shortread");
                if (!inner_.next())
                    return nullptr;
            }
        }
        break;
      case FaultSpec::Kind::None:
        break;
    }
    const uint8_t* p = inner_.next();
    if (p)
        ++n_;
    return p;
}

void
FaultySource::cancel()
{
    cancelled_.store(true, std::memory_order_relaxed);
    inner_.cancel();
}

void
FaultySink::put(const uint8_t* elem)
{
    switch (spec_.kind) {
      case FaultSpec::Kind::Truncate:
      case FaultSpec::Kind::ShortRead:
        if (n_ >= spec_.tick) {
            if (dropped_ == 0)
                countInjection("short_write");
            ++n_;
            ++dropped_;
            return;
        }
        break;
      case FaultSpec::Kind::Throw:
        if (n_ == spec_.tick) {
            countInjection("throw");
            throw InjectedFault("injected fault: throw at sink tick " +
                                std::to_string(n_));
        }
        break;
      case FaultSpec::Kind::Stall:
        if (n_ == spec_.tick) {
            countInjection("stall");
            if (cancellableSleep(spec_.stallMs, cancelled_))
                return;
        }
        break;
      case FaultSpec::Kind::None:
        break;
    }
    inner_.put(elem);
    ++n_;
}

void
FaultySink::cancel()
{
    cancelled_.store(true, std::memory_order_relaxed);
    inner_.cancel();
}

} // namespace ziria
