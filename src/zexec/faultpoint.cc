#include "zexec/faultpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/metrics.h"

namespace ziria {

namespace {

/** Sleep for @p ms, polling @p cancelled every slice; true if cancelled. */
bool
cancellableSleep(uint64_t ms, const std::atomic<bool>& cancelled)
{
    using clock = std::chrono::steady_clock;
    const auto end = clock::now() + std::chrono::milliseconds(ms);
    while (clock::now() < end) {
        if (cancelled.load(std::memory_order_relaxed))
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return cancelled.load(std::memory_order_relaxed);
}

uint64_t
parseU64(const std::string& s, const std::string& whole)
{
    char* end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end != s.c_str() + s.size())
        fatalf("bad fault spec '", whole, "': '", s,
               "' is not a non-negative integer");
    return v;
}

void
countInjection(const char* what)
{
    metrics::Registry::global()
        .counter(std::string("fault.injected.") + what)
        .inc();
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string& s)
{
    const size_t at = s.find('@');
    if (at == std::string::npos)
        fatalf("bad fault spec '", s,
               "': expected KIND@TICK[:ARG[:ARG]] with KIND one of "
               "truncate|stall|throw|shortread");
    const std::string kind = s.substr(0, at);

    // Split "TICK[:ARG1[:ARG2]]" on colons.
    std::vector<std::string> args;
    std::string rest = s.substr(at + 1);
    size_t pos = 0;
    while (true) {
        const size_t colon = rest.find(':', pos);
        if (colon == std::string::npos) {
            args.push_back(rest.substr(pos));
            break;
        }
        args.push_back(rest.substr(pos, colon - pos));
        pos = colon + 1;
    }

    auto argCountAtMost = [&](size_t n) {
        if (args.size() > n)
            fatalf("bad fault spec '", s, "': '", kind, "' takes at most ",
                   n - 1, " ':' argument(s)");
    };

    FaultSpec spec;
    spec.tick = parseU64(args[0], s);
    if (kind == "truncate") {
        spec.kind = Kind::Truncate;
        argCountAtMost(1);
    } else if (kind == "stall") {
        spec.kind = Kind::Stall;
        argCountAtMost(3);  // stall@K:MS:COUNT
        if (args.size() > 1 && !args[1].empty())
            spec.stallMs = parseU64(args[1], s);
        else
            spec.stallMs = 1000;
        if (args.size() > 2)
            spec.count = parseU64(args[2], s);
    } else if (kind == "throw") {
        spec.kind = Kind::Throw;
        argCountAtMost(2);  // throw@K:COUNT
        if (args.size() > 1)
            spec.count = parseU64(args[1], s);
    } else if (kind == "shortread") {
        spec.kind = Kind::ShortRead;
        argCountAtMost(2);
        if (args.size() > 1)
            spec.seed = parseU64(args[1], s);
    } else {
        fatalf("bad fault spec '", s, "': unknown kind '", kind,
               "' (expected truncate|stall|throw|shortread)");
    }
    return spec;
}

std::string
FaultSpec::show() const
{
    switch (kind) {
      case Kind::None: return "none";
      case Kind::Truncate: return "truncate@" + std::to_string(tick);
      case Kind::Stall: {
        std::string s = "stall@" + std::to_string(tick) + ":" +
                        std::to_string(stallMs);
        if (count != 1)
            s += ":" + std::to_string(count);
        return s;
      }
      case Kind::Throw: {
        std::string s = "throw@" + std::to_string(tick);
        if (count != 1)
            s += ":" + std::to_string(count);
        return s;
      }
      case Kind::ShortRead:
        return "shortread@" + std::to_string(tick) + ":" +
               std::to_string(seed);
    }
    return "none";
}

/**
 * One shared firing rule for the tick-indexed one-shot faults
 * (Throw/Stall): fire once the clock reaches the tick, at most `count`
 * times (0 = forever).  The fired counter — not the clock — limits
 * re-firing, because a throwing next() does NOT advance the clock: a
 * restarted run would otherwise meet `n_ == tick` again and the fault
 * would defeat every restart budget.
 */
bool
FaultySource::shouldFire()
{
    if (n_ < spec_.tick)
        return false;
    if (spec_.count != 0 && fired_ >= spec_.count)
        return false;
    ++fired_;
    return true;
}

const uint8_t*
FaultySource::next()
{
    if (cancelled_.load(std::memory_order_relaxed))
        return nullptr;
    switch (spec_.kind) {
      case FaultSpec::Kind::Truncate:
        if (n_ >= spec_.tick) {
            countInjection("truncate");
            return nullptr;
        }
        break;
      case FaultSpec::Kind::Throw:
        if (shouldFire()) {
            countInjection("throw");
            throw InjectedFault("injected fault: throw at source tick " +
                                std::to_string(n_));
        }
        break;
      case FaultSpec::Kind::Stall:
        if (shouldFire()) {
            countInjection("stall");
            if (cancellableSleep(spec_.stallMs, cancelled_))
                return nullptr;
        }
        break;
      case FaultSpec::Kind::ShortRead:
        if (n_ >= spec_.tick) {
            // Drop (skip) inner elements with probability 1/8 each.
            while ((rng_.next() & 7) == 0) {
                countInjection("shortread");
                if (!inner_.next())
                    return nullptr;
            }
        }
        break;
      case FaultSpec::Kind::None:
        break;
    }
    const uint8_t* p = inner_.next();
    if (p)
        ++n_;
    return p;
}

void
FaultySource::cancel()
{
    cancelled_.store(true, std::memory_order_relaxed);
    inner_.cancel();
}

void
FaultySource::rearm()
{
    cancelled_.store(false, std::memory_order_relaxed);
    inner_.rearm();
}

bool
FaultySink::shouldFire()
{
    // Same rule as FaultySource::shouldFire(); see the comment there.
    if (n_ < spec_.tick)
        return false;
    if (spec_.count != 0 && fired_ >= spec_.count)
        return false;
    ++fired_;
    return true;
}

void
FaultySink::put(const uint8_t* elem)
{
    switch (spec_.kind) {
      case FaultSpec::Kind::Truncate:
      case FaultSpec::Kind::ShortRead:
        if (n_ >= spec_.tick) {
            if (dropped_ == 0)
                countInjection("short_write");
            ++n_;
            ++dropped_;
            return;
        }
        break;
      case FaultSpec::Kind::Throw:
        if (shouldFire()) {
            countInjection("throw");
            throw InjectedFault("injected fault: throw at sink tick " +
                                std::to_string(n_));
        }
        break;
      case FaultSpec::Kind::Stall:
        if (shouldFire()) {
            countInjection("stall");
            if (cancellableSleep(spec_.stallMs, cancelled_))
                return;
        }
        break;
      case FaultSpec::Kind::None:
        break;
    }
    inner_.put(elem);
    ++n_;
}

void
FaultySink::cancel()
{
    cancelled_.store(true, std::memory_order_relaxed);
    inner_.cancel();
}

void
FaultySink::rearm()
{
    cancelled_.store(false, std::memory_order_relaxed);
    inner_.rearm();
}

} // namespace ziria
