/**
 * @file
 * Per-node execution instrumentation: the runtime half of the
 * observability layer.
 *
 * When `BuildOptions::instrument` is set, `buildNode` wraps every
 * execution node in a TracedNode shim that counts scheduling
 * transitions (advance -> Yield/NeedInput/Done), supplied elements, and
 * — sampled every 2^sampleShift advances — the wall time of advance().
 * Each shim is keyed by a stable node path assigned during the build
 * ("root/l/rep/s1", ...), so profiles from different runs of the same
 * program line up.
 *
 * With instrumentation off no shim exists: the node tree is bit-for-bit
 * the one the uninstrumented build produces, which is what makes the
 * layer zero-cost when disabled (guarded by scripts/check_overhead.sh).
 *
 * ThreadedPipeline additionally records per-stage throughput and SPSC
 * queue occupancy / stall telemetry into StageMetrics, making `|>>>|`
 * placement decisions data-driven.
 */
#ifndef ZIRIA_ZEXEC_TRACE_H
#define ZIRIA_ZEXEC_TRACE_H

#include <deque>
#include <string>

#include "support/metrics.h"
#include "support/timing.h"
#include "zexec/node.h"

namespace ziria {

/** Counters for one execution node, keyed by its stable path. */
struct NodeMetrics
{
    std::string path;  ///< stable position in the built node tree
    std::string kind;  ///< AST kind that produced the node
    size_t inWidth = 0;
    size_t outWidth = 0;

    uint64_t advances = 0;    ///< advance() calls
    uint64_t yields = 0;      ///< ... that returned Yield
    uint64_t needInputs = 0;  ///< ... that returned NeedInput
    uint64_t dones = 0;       ///< ... that returned Done
    uint64_t supplies = 0;    ///< supply() calls (== elements in)
    uint64_t sampledNs = 0;   ///< wall time of the sampled advances
    uint64_t samples = 0;     ///< number of sampled advances

    /** Set when map-chain coalescing replaced this node; not exported. */
    bool discarded = false;

    uint64_t elemsIn() const { return supplies; }
    uint64_t elemsOut() const { return yields; }
};

/** Telemetry for one `|>>>|` stage (threaded runs). */
struct StageMetrics
{
    uint64_t consumed = 0;
    uint64_t emitted = 0;
    bool halted = false;
    double sec = 0;  ///< wall time of the stage's drive loop

    /** Failure cause name ("exception", "stall", "cancel"); empty when
     *  the stage ended normally.  Filled by ThreadedPipeline::run. */
    std::string failure;

    // Outbound queue (absent for the last stage).
    bool hasQueue = false;
    uint64_t queueCapacity = 0;
    uint64_t queueHighWater = 0;   ///< max occupancy: near capacity means
                                   ///< this stage outruns its consumer
    uint64_t producerStalls = 0;   ///< pushes that found the queue full
    uint64_t consumerStalls = 0;   ///< pops by the NEXT stage that found
                                   ///< it empty (this stage is too slow)

    // Queue-wait wall time (only measured when the run tracks latency —
    // a SpanTracker is attached — so the plain path stays clock-free).
    uint64_t pushWaitNs = 0;  ///< time blocked pushing to the out queue
    uint64_t popWaitNs = 0;   ///< time blocked popping the in queue

    double
    elemsPerSec() const
    {
        return sec > 0 ? static_cast<double>(consumed) / sec : 0;
    }
};

/** All metrics collected for one compiled pipeline. */
struct PipelineMetrics
{
    std::deque<NodeMetrics> nodes;    ///< deque: stable addresses
    std::vector<StageMetrics> stages; ///< filled by ThreadedPipeline::run

    NodeMetrics&
    addNode(const std::string& path, const char* kind)
    {
        nodes.emplace_back();
        nodes.back().path = path;
        nodes.back().kind = kind;
        return nodes.back();
    }

    /** Serialize into an open JSON object scope. */
    void
    writeJson(metrics::JsonWriter& w) const
    {
        w.beginArray("nodes");
        for (const auto& n : nodes) {
            if (n.discarded)
                continue;
            w.beginObject();
            w.field("path", n.path);
            w.field("kind", n.kind);
            w.field("in_width", n.inWidth);
            w.field("out_width", n.outWidth);
            w.field("advance", n.advances);
            w.field("yield", n.yields);
            w.field("need_input", n.needInputs);
            w.field("done", n.dones);
            w.field("supply", n.supplies);
            w.field("elems_in", n.elemsIn());
            w.field("elems_out", n.elemsOut());
            w.field("bytes_in", n.elemsIn() * n.inWidth);
            w.field("bytes_out", n.elemsOut() * n.outWidth);
            w.field("sampled_ns", n.sampledNs);
            w.field("samples", n.samples);
            w.endObject();
        }
        w.endArray();
        w.beginArray("stages");
        for (const auto& s : stages) {
            w.beginObject();
            w.field("consumed", s.consumed);
            w.field("emitted", s.emitted);
            w.field("halted", s.halted);
            w.field("sec", s.sec);
            w.field("elems_per_sec", s.elemsPerSec());
            if (!s.failure.empty())
                w.field("failure", s.failure);
            if (s.pushWaitNs || s.popWaitNs) {
                w.field("push_wait_ns", s.pushWaitNs);
                w.field("pop_wait_ns", s.popWaitNs);
            }
            if (s.hasQueue) {
                w.beginObject("out_queue");
                w.field("capacity", s.queueCapacity);
                w.field("high_water", s.queueHighWater);
                w.field("producer_stalls", s.producerStalls);
                w.field("consumer_stalls", s.consumerStalls);
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
    }

    /** Standalone JSON document (tests, ad-hoc dumps). */
    std::string
    toJson() const
    {
        metrics::JsonWriter w;
        w.beginObject();
        writeJson(w);
        w.endObject();
        return w.str();
    }
};

/**
 * Counting shim around an ExecNode.  Delegates every virtual; advance()
 * is timed on a 1-in-2^sampleShift sample so per-node cost attribution
 * stays cheap enough to leave on during long runs.
 */
class TracedNode : public ExecNode
{
  public:
    TracedNode(NodePtr inner, NodeMetrics* m, uint32_t sample_shift)
        : inner_(std::move(inner)), m_(m),
          sampleMask_((uint64_t{1} << sample_shift) - 1)
    {
        setInWidth(inner_->inWidth());
        setOutWidth(inner_->outWidth());
        setCtrlWidth(inner_->ctrlWidth());
    }

    void start(Frame& f) override { inner_->start(f); }

    // Must forward: the default (reset = start) would stop the recursive
    // re-arm at the shim and never reach the inner node's override.
    void reset(Frame& f) override { inner_->reset(f); }

    // Same for the checkpoint walk: the shim itself is stateless.
    void
    snapshot(const Frame& f, StateWriter& w) const override
    {
        inner_->snapshot(f, w);
    }

    void
    restore(Frame& f, StateReader& r) override
    {
        inner_->restore(f, r);
    }

    Status
    advance(Frame& f) override
    {
        Status s;
        if ((m_->advances & sampleMask_) == 0) {
            uint64_t t0 = nowNs();
            s = inner_->advance(f);
            m_->sampledNs += nowNs() - t0;
            ++m_->samples;
        } else {
            s = inner_->advance(f);
        }
        ++m_->advances;
        switch (s) {
          case Status::Yield: ++m_->yields; break;
          case Status::NeedInput: ++m_->needInputs; break;
          case Status::Done: ++m_->dones; break;
        }
        return s;
    }

    void
    supply(Frame& f, const uint8_t* in) override
    {
        ++m_->supplies;
        inner_->supply(f, in);
    }

    const uint8_t* out() const override { return inner_->out(); }
    const uint8_t* ctrl() const override { return inner_->ctrl(); }

    ExecNode* inner() { return inner_.get(); }
    NodeMetrics* nodeMetrics() { return m_; }

    /** Release the wrapped node (map-chain coalescing). */
    NodePtr
    takeInner()
    {
        m_->discarded = true;
        return std::move(inner_);
    }

  private:
    NodePtr inner_;
    NodeMetrics* m_;
    uint64_t sampleMask_;
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_TRACE_H
