#include "zexec/span.h"

#include <cmath>

#include "support/timeline.h"
#include "support/timing.h"

namespace ziria {

namespace {

/** Total-output threshold that completes the k-th frame of an epoch. */
uint64_t
closeThreshold(uint64_t outBase, uint64_t k, const SpanConfig& cfg)
{
    double outs = static_cast<double>(k + 1) *
                  static_cast<double>(cfg.frameElems) * cfg.outPerIn;
    uint64_t need = static_cast<uint64_t>(std::ceil(outs));
    if (need == 0)
        need = 1;
    return outBase + need;
}

} // namespace

SpanTracker::SpanTracker(SpanConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.frameElems == 0)
        cfg_.frameElems = 1;
    if (!(cfg_.outPerIn > 0))
        cfg_.outPerIn = 1.0;
    track_ = timeline::active() ? timeline::currentTrack() : 0;
    if (timeline::Recorder* r = timeline::active())
        r->nameTrack(track_, cfg_.name + " frames");
}

void
SpanTracker::openSpans(uint64_t i)
{
    uint64_t now = nowNs();
    std::lock_guard<std::mutex> lk(mu_);
    // Re-check under the lock: onRestart may have re-based the epoch
    // between the relaxed load and here.
    while (i >= inBase_ + epochFrames_ * cfg_.frameElems &&
           i >= inBase_) {
        OpenSpan s;
        s.frame = totalFrames_++;
        s.startNs = now;
        s.closeAt = closeThreshold(outBase_, epochFrames_, cfg_);
        ++epochFrames_;
        bool wasEmpty = open_.empty();
        open_.push_back(s);
        if (wasEmpty)
            nextCloseAt_.store(s.closeAt, std::memory_order_relaxed);
    }
    nextOpenAt_.store(inBase_ + epochFrames_ * cfg_.frameElems,
                      std::memory_order_relaxed);
}

void
SpanTracker::closeReadyLocked(uint64_t o, uint64_t now)
{
    while (!open_.empty() && o >= open_.front().closeAt) {
        const OpenSpan& s = open_.front();
        uint64_t dur = now >= s.startNs ? now - s.startNs : 0;
        hist_.observe(dur);
        ++completed_;
        if (cfg_.budgetNs) {
            if (dur <= cfg_.budgetNs)
                ++budgetMet_;
            else
                ++budgetMissed_;
        }
        if (timeline::Recorder* r = timeline::active()) {
            r->complete("frame",
                        cfg_.name + " frame " + std::to_string(s.frame),
                        s.startNs, dur, track_);
        }
        open_.pop_front();
    }
    nextCloseAt_.store(open_.empty() ? ~uint64_t{0}
                                     : open_.front().closeAt,
                       std::memory_order_relaxed);
}

void
SpanTracker::closeSpans(uint64_t o)
{
    uint64_t now = nowNs();
    std::lock_guard<std::mutex> lk(mu_);
    closeReadyLocked(o, now);
}

void
SpanTracker::onRestart()
{
    uint64_t now = nowNs();
    std::lock_guard<std::mutex> lk(mu_);
    if (timeline::Recorder* r = timeline::active()) {
        for (const auto& s : open_)
            r->instant("restart",
                       cfg_.name + " frame " + std::to_string(s.frame) +
                           " aborted",
                       now, track_);
    }
    aborted_ += open_.size();
    open_.clear();
    inBase_ = in_.load(std::memory_order_relaxed);
    outBase_ = out_.load(std::memory_order_relaxed);
    epochFrames_ = 0;
    nextOpenAt_.store(inBase_, std::memory_order_relaxed);
    nextCloseAt_.store(~uint64_t{0}, std::memory_order_relaxed);
}

void
SpanTracker::flush()
{
    uint64_t now = nowNs();
    uint64_t o = out_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    closeReadyLocked(o, now);
}

SpanTracker::Snapshot
SpanTracker::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Snapshot s;
    s.completed = completed_;
    s.aborted = aborted_;
    s.open = open_.size();
    s.budgetMet = budgetMet_;
    s.budgetMissed = budgetMissed_;
    s.latencyNs = hist_;
    return s;
}

void
SpanTracker::mergeInto(metrics::Registry& reg,
                       const std::string& prefix) const
{
    Snapshot s = snapshot();
    reg.histogram(prefix + ".e2e_ns").merge(s.latencyNs);
    reg.counter(prefix + ".frames").add(s.completed);
    if (s.aborted)
        reg.counter(prefix + ".frames_aborted").add(s.aborted);
    if (cfg_.budgetNs) {
        reg.counter(prefix + ".budget.met").add(s.budgetMet);
        reg.counter(prefix + ".budget.missed").add(s.budgetMissed);
    }
}

void
SpanTracker::writeJson(metrics::JsonWriter& w,
                       const std::string& key) const
{
    Snapshot s = snapshot();
    w.beginObject(key);
    w.field("frame_elems", cfg_.frameElems);
    w.field("out_per_in", cfg_.outPerIn);
    w.field("frames", s.completed);
    w.field("frames_aborted", s.aborted);
    w.field("frames_open", s.open);
    if (cfg_.budgetNs) {
        w.field("budget_ns", cfg_.budgetNs);
        w.field("budget_met", s.budgetMet);
        w.field("budget_missed", s.budgetMissed);
    }
    const metrics::Histogram& h = s.latencyNs;
    w.beginObject("e2e_ns");
    w.field("count", h.count());
    w.field("min", h.min());
    w.field("max", h.max());
    w.field("mean", h.mean());
    w.field("p50", h.percentile(0.50));
    w.field("p90", h.percentile(0.90));
    w.field("p99", h.percentile(0.99));
    w.field("p999", h.percentile(0.999));
    w.endObject();
    w.endObject();
}

} // namespace ziria
