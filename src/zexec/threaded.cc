#include "zexec/threaded.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "support/metrics.h"
#include "support/panic.h"
#include "support/spsc_queue.h"
#include "support/state_io.h"
#include "support/timeline.h"
#include "support/timing.h"
#include "zexec/span.h"

namespace ziria {

namespace {

/** Queue-wait slice for supervised runs: long enough that the periodic
 *  wake-up is noise, short enough that an abort is noticed promptly. */
constexpr long kSupervisedSliceMs = 20;

/** Result of running one stage. */
struct StageResult
{
    /** Elements moved (consumed + emitted); what the watchdog samples.
     *  Relaxed: only freshness matters, not ordering. */
    std::atomic<uint64_t> progress{0};
    std::atomic<bool> finished{false};

    uint64_t consumed = 0;
    uint64_t emitted = 0;
    bool halted = false;
    bool aborted = false;  ///< exited on cancel/abort, not end-of-stream
    std::vector<uint8_t> ctrl;
    /** Yielded element whose push was torn down mid-wait; a per-stage
     *  restart re-pushes it so the element is not lost. */
    std::vector<uint8_t> pendingOut;
    std::exception_ptr error;
    double sec = 0;  ///< wall time of the stage's drive loop
    uint64_t pushWaitNs = 0;  ///< blocked pushing (latency runs only)
    uint64_t popWaitNs = 0;   ///< blocked popping (latency runs only)
};

/** Latency hooks for one stage: null members = feature off. */
struct StageSpanHooks
{
    SpanTracker* onInput = nullptr;   ///< first stage: stamp consumed
    SpanTracker* onOutput = nullptr;  ///< last stage: complete emitted
    bool timeWaits = false;           ///< clock the queue-wait loops
    size_t index = 0;                 ///< stage ordinal (timeline label)
};

/**
 * Drive one stage: pull input from @p inq (or @p src for stage 0), push
 * output to @p outq (or @p sink for the last stage).
 *
 * @p abort is the run-wide teardown flag (set by the watchdog or at the
 * end of a run); @p wait_slice_ms bounds each queue wait so the flag is
 * polled even while blocked (-1 = plain blocking waits, used when the
 * run is unsupervised).
 *
 * @p resume skips node.start() — the node already carries live state
 * from an earlier attempt (per-stage restart); @p pending_in is a
 * holdover output element from that attempt, re-pushed before any
 * advance so it is not lost.
 */
void
runStage(ExecNode& node, Frame& frame, SpscQueue* inq, InputSource* src,
         SpscQueue* outq, OutputSink* sink, StageResult& res,
         const std::atomic<bool>& abort, long wait_slice_ms,
         StageSpanHooks hooks, bool resume,
         std::vector<uint8_t> pending_in)
{
    std::vector<uint8_t> inBuf(std::max<size_t>(node.inWidth(), 1));
    Stopwatch sw;
    const uint64_t startNs = nowNs();
    auto bump = [&res] {
        res.progress.fetch_add(1, std::memory_order_relaxed);
    };
    bool blocked = false;  ///< holdover push failed; skip the drive loop
    try {
        if (!resume)
            node.start(frame);
        if (!pending_in.empty()) {
            if (outq) {
                QueueWait w;
                while ((w = outq->pushWait(pending_in.data(),
                                           wait_slice_ms)) ==
                       QueueWait::Timeout) {
                    if (abort.load(std::memory_order_relaxed))
                        break;
                }
                if (w != QueueWait::Ready) {
                    res.aborted = true;
                    res.pendingOut = std::move(pending_in);
                    blocked = true;
                } else {
                    ++res.emitted;
                    bump();
                }
            } else if (sink) {
                sink->put(pending_in.data());
                ++res.emitted;
                if (hooks.onOutput)
                    hooks.onOutput->onOutput();
                bump();
            }
        }
        while (!blocked) {
            if (abort.load(std::memory_order_relaxed)) {
                res.aborted = true;
                break;
            }
            Status s = node.advance(frame);
            if (s == Status::Yield) {
                if (outq) {
                    uint64_t t0 = hooks.timeWaits ? nowNs() : 0;
                    QueueWait w;
                    while ((w = outq->pushWait(node.out(),
                                               wait_slice_ms)) ==
                           QueueWait::Timeout) {
                        if (abort.load(std::memory_order_relaxed))
                            break;
                    }
                    if (hooks.timeWaits)
                        res.pushWaitNs += nowNs() - t0;
                    if (w != QueueWait::Ready) {
                        // Downstream cancelled (or run aborted mid-wait).
                        // Keep the yielded element: a per-stage restart
                        // re-pushes it instead of losing it.
                        res.aborted = w == QueueWait::Cancelled ||
                                      w == QueueWait::Timeout;
                        const uint8_t* e = node.out();
                        res.pendingOut.assign(e, e + outq->elemWidth());
                        break;
                    }
                } else {
                    sink->put(node.out());
                }
                ++res.emitted;
                if (hooks.onOutput)
                    hooks.onOutput->onOutput();
                bump();
            } else if (s == Status::NeedInput) {
                if (inq) {
                    uint64_t t0 = hooks.timeWaits ? nowNs() : 0;
                    QueueWait w;
                    while ((w = inq->popWait(inBuf.data(),
                                             wait_slice_ms)) ==
                           QueueWait::Timeout) {
                        if (abort.load(std::memory_order_relaxed))
                            break;
                    }
                    if (hooks.timeWaits)
                        res.popWaitNs += nowNs() - t0;
                    if (w != QueueWait::Ready) {
                        // Closed = upstream finished (normal EOS);
                        // Cancelled/abort = torn down.
                        res.aborted = w != QueueWait::Closed;
                        break;
                    }
                    node.supply(frame, inBuf.data());
                } else {
                    const uint8_t* p = src->next();
                    if (!p)
                        break;
                    node.supply(frame, p);
                }
                ++res.consumed;
                if (hooks.onInput)
                    hooks.onInput->onInput();
                bump();
            } else {
                res.halted = true;
                const uint8_t* cp = node.ctrl();
                if (cp && node.ctrlWidth())
                    res.ctrl.assign(cp, cp + node.ctrlWidth());
                break;
            }
        }
    } catch (...) {
        res.error = std::current_exception();
    }
    res.sec = sw.elapsedSec();
    if (timeline::Recorder* r = timeline::active()) {
        uint32_t track = timeline::currentTrack();
        r->nameTrack(track, "stage" + std::to_string(hooks.index));
        r->complete("stage", "stage" + std::to_string(hooks.index),
                    startNs, nowNs() - startNs, track);
    }
    if (outq)
        outq->close();
    // A halted (or failed) stage stops upstream producers.
    if ((res.halted || res.error) && inq)
        inq->cancel();
    res.finished.store(true, std::memory_order_release);
}

/** Extract a human-readable message from a stored exception. */
std::string
errorMessage(const std::exception_ptr& ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const std::exception& e) {
        return e.what();
    } catch (...) {
        return "unknown exception";
    }
}

} // namespace

ThreadedPipeline::ThreadedPipeline(std::vector<NodePtr> stages,
                                   size_t frame_size, size_t in_width,
                                   size_t out_width, size_t queue_cap)
    : stages_(std::move(stages)), frame_(frame_size), inWidth_(in_width),
      outWidth_(out_width), queueCap_(queue_cap)
{
    ZIRIA_ASSERT(!stages_.empty());
}

RunStats
ThreadedPipeline::run(InputSource& src, OutputSink& sink)
{
    std::vector<std::unique_ptr<SpscQueue>> queues;
    for (size_t i = 0; i + 1 < stages_.size(); ++i) {
        size_t w = std::max<size_t>(stages_[i]->outWidth(), 1);
        queues.push_back(std::make_unique<SpscQueue>(w, queueCap_));
    }

    if (!restart_.enabled()) {
        RunStats st = runAttempt(queues, src, sink, nullptr);
        if (spans_)
            spans_->flush();
        return st;
    }

    RestartSupervisor sup(restart_);
    const bool perStage = restart_.scope == RestartScope::Stage;
    std::vector<StageCarry> carry;
    if (perStage)
        carry.resize(stages_.size());
    for (;;) {
        try {
            RunStats st =
                runAttempt(queues, src, sink, perStage ? &carry : nullptr);
            if (spans_)
                spans_->flush();
            return st;
        } catch (const StageFailureError& e) {
            StageFailure f = e.failure();
            if (!sup.onFailure(f))
                throw StageFailureError(std::move(f));
            // onFailure slept out the backoff; all stage threads were
            // joined before runAttempt threw, so re-arming is
            // single-threaded here.
            if (perStage)
                rearmStage(queues, src, sink, carry, f.stage);
            else
                rearm(queues, src, sink);
        }
    }
}

/**
 * Return the pipeline to frame-boundary state between restart attempts:
 * reopen every interthread queue (in-flight elements are the "at most
 * one frame" a restart may cost), discard buffered partial state in
 * every stage's node tree, and clear sticky cancel flags on the
 * endpoints so the live source keeps feeding the next attempt.
 */
void
ThreadedPipeline::rearm(std::vector<std::unique_ptr<SpscQueue>>& queues,
                        InputSource& src, OutputSink& sink)
{
    for (auto& q : queues)
        q->reopen();
    for (auto& s : stages_)
        s->reset(frame_);
    src.rearm();
    sink.rearm();
    if (spans_)
        spans_->onRestart();
}

/**
 * Per-stage re-arm (RestartScope::Stage): only the failed stage loses
 * state.  It is reset() and — when a boundary snapshot exists —
 * restore()d to the last quiescent restart boundary; healthy stages
 * keep their live node trees and will resume mid-stream.  The queues
 * adjacent to the failed stage are reopen()ed (their in-flight elements
 * belonged to the discarded work); every other queue keeps its backlog
 * and only has its teardown latches cleared.  Queues whose producer
 * already finished are re-closed so consumers still see end-of-stream.
 * Finally every live stage — quiescent now, all threads joined — gets a
 * fresh boundary snapshot, so a future failure of *any* stage rolls
 * back only to this boundary.
 */
void
ThreadedPipeline::rearmStage(
    std::vector<std::unique_ptr<SpscQueue>>& queues, InputSource& src,
    OutputSink& sink, std::vector<StageCarry>& carry, size_t failed)
{
    ZIRIA_ASSERT(failed < stages_.size());
    metrics::Registry::global().counter("restart.stage.attempts").inc();

    stages_[failed]->reset(frame_);
    if (!carry[failed].snap.empty()) {
        try {
            StateReader r(carry[failed].snap.data(),
                          carry[failed].snap.size());
            stages_[failed]->restore(frame_, r);
            metrics::Registry::global()
                .counter("restart.stage.restored")
                .inc();
        } catch (const StateFormatError&) {
            // A snapshot that does not restore leaves the stage freshly
            // reset — the PR-4 semantics, scoped to one stage.
            stages_[failed]->reset(frame_);
            carry[failed].snap.clear();
        }
    }
    carry[failed].resume = true;
    carry[failed].doneClean = false;
    carry[failed].pendingOut.clear();

    for (size_t qi = 0; qi < queues.size(); ++qi) {
        // Queue qi sits between stage qi (producer) and qi+1 (consumer).
        const bool adjacent = qi + 1 == failed || qi == failed;
        if (adjacent)
            queues[qi]->reopen();
        else
            queues[qi]->uncancel();
        if (carry[qi].doneClean)
            queues[qi]->close();
    }

    for (size_t i = 0; i < stages_.size(); ++i) {
        if (carry[i].doneClean)
            continue;
        StateWriter w;
        stages_[i]->snapshot(frame_, w);
        carry[i].snap = w.take();
    }

    src.rearm();
    sink.rearm();
    if (spans_)
        spans_->onRestart();
}

RunStats
ThreadedPipeline::runAttempt(std::vector<std::unique_ptr<SpscQueue>>& queues,
                             InputSource& src, OutputSink& sink,
                             std::vector<StageCarry>* carry)
{
    using clock = std::chrono::steady_clock;
    const size_t n = stages_.size();
    const bool supervised = deadlineMs_ > 0;
    const long slice = supervised ? kSupervisedSliceMs : -1;

    std::vector<StageResult> results(n);
    // Per-stage restarts: a stage that already finished (halted or hit
    // end-of-stream) is not re-run — replay its exit effects so its
    // neighbours still see EOS / upstream-stop, and the watchdog skips it.
    auto doneClean = [&](size_t i) {
        return carry && (*carry)[i].doneClean;
    };
    for (size_t i = 0; carry && i < n; ++i) {
        if (!doneClean(i))
            continue;
        results[i].finished.store(true, std::memory_order_release);
        results[i].halted = (*carry)[i].halted;
        results[i].ctrl = (*carry)[i].ctrl;
        if (i + 1 < n)
            queues[i]->close();
        if ((*carry)[i].halted && i > 0)
            queues[i - 1]->cancel();
    }
    std::atomic<bool> abort{false};
    std::atomic<bool> watchdogStop{false};
    std::atomic<long> stalledStage{-1};

    // Deterministic teardown: cancel every queue (waking all waiters on
    // both sides) and ask the endpoints to abandon any blocking I/O.
    auto teardown = [&] {
        abort.store(true, std::memory_order_relaxed);
        for (auto& q : queues)
            q->cancel();
        src.cancel();
        sink.cancel();
    };

    std::thread watchdog;
    if (supervised) {
        watchdog = std::thread([&] {
            const auto deadline = std::chrono::duration<double, std::milli>(
                deadlineMs_);
            std::vector<uint64_t> last(n, 0);
            std::vector<clock::time_point> changed(n, clock::now());
            while (!watchdogStop.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
                auto now = clock::now();
                bool anyLive = false;
                bool anyFresh = false;
                for (size_t i = 0; i < n; ++i) {
                    uint64_t p = results[i].progress.load(
                        std::memory_order_relaxed);
                    if (p != last[i]) {
                        last[i] = p;
                        changed[i] = now;
                    }
                    if (!results[i].finished.load(
                            std::memory_order_acquire)) {
                        anyLive = true;
                        if (now - changed[i] < deadline)
                            anyFresh = true;
                    }
                }
                if (!anyLive)
                    return;  // all stages done; nothing to supervise
                if (anyFresh)
                    continue;  // something is still moving (or fresh)
                // Global quiescence: no unfinished stage has made
                // progress for the whole deadline.  Blame the stage
                // that has been silent the longest.
                size_t worst = 0;
                bool found = false;
                for (size_t i = 0; i < n; ++i) {
                    if (results[i].finished.load(
                            std::memory_order_acquire))
                        continue;
                    if (!found || changed[i] < changed[worst]) {
                        worst = i;
                        found = true;
                    }
                }
                stalledStage.store(static_cast<long>(worst),
                                   std::memory_order_relaxed);
                metrics::Registry::global()
                    .counter("ziria.stall_timeouts")
                    .inc();
                teardown();
                return;
            }
        });
    }

    const bool timeWaits = spans_ != nullptr;
    std::vector<std::thread> threads;
    for (size_t i = 0; i + 1 < n; ++i) {
        if (doneClean(i))
            continue;
        SpscQueue* inq = i == 0 ? nullptr : queues[i - 1].get();
        InputSource* s = i == 0 ? &src : nullptr;
        StageSpanHooks hooks;
        hooks.onInput = i == 0 ? spans_.get() : nullptr;
        hooks.timeWaits = timeWaits;
        hooks.index = i;
        bool resume = carry && (*carry)[i].resume;
        std::vector<uint8_t> pending =
            carry ? std::move((*carry)[i].pendingOut)
                  : std::vector<uint8_t>{};
        if (carry)
            (*carry)[i].pendingOut.clear();
        threads.emplace_back(runStage, std::ref(*stages_[i]),
                             std::ref(frame_), inq, s, queues[i].get(),
                             nullptr, std::ref(results[i]),
                             std::cref(abort), slice, hooks, resume,
                             std::move(pending));
    }

    // The last stage runs on the calling thread.
    if (!doneClean(n - 1)) {
        StageSpanHooks lastHooks;
        lastHooks.onInput = n == 1 ? spans_.get() : nullptr;
        lastHooks.onOutput = spans_.get();
        lastHooks.timeWaits = timeWaits;
        lastHooks.index = n - 1;
        bool resume = carry && (*carry)[n - 1].resume;
        std::vector<uint8_t> pending =
            carry ? std::move((*carry)[n - 1].pendingOut)
                  : std::vector<uint8_t>{};
        if (carry)
            (*carry)[n - 1].pendingOut.clear();
        runStage(*stages_[n - 1], frame_,
                 n > 1 ? queues[n - 2].get() : nullptr,
                 n > 1 ? nullptr : &src, nullptr, &sink, results[n - 1],
                 abort, slice, lastHooks, resume, std::move(pending));
    }

    // If the final stage stopped early, make sure producers unblock.
    for (auto& q : queues)
        q->cancel();
    for (auto& t : threads)
        t.join();
    watchdogStop.store(true, std::memory_order_release);
    if (watchdog.joinable())
        watchdog.join();

    const long stalled = stalledStage.load(std::memory_order_relaxed);

    // Fold this attempt into the per-stage carries (before any throw, so
    // a failed attempt's progress and holdovers survive into the next).
    // A stage that exits cleanly on end-of-stream only *genuinely*
    // finished if every stage upstream of it did too: a failed stage
    // closes its output queue on the way out, so its consumer drains
    // and sees a spurious EOS — that consumer must be resumed, not
    // retired, or the restarted producer would feed a dead queue.
    // Halting is different: a halt is the stage's own decision and
    // retires it regardless of what happened upstream.
    if (carry) {
        bool upstreamDone = true;  // stage 0's source EOS is genuine
        for (size_t i = 0; i < n; ++i) {
            StageCarry& c = (*carry)[i];
            if (c.doneClean) {
                upstreamDone = true;
                continue;
            }
            c.consumed += results[i].consumed;
            c.emitted += results[i].emitted;
            c.resume = true;
            c.pendingOut = std::move(results[i].pendingOut);
            const bool cleanExit = !results[i].error &&
                                   !results[i].aborted &&
                                   stalled != static_cast<long>(i);
            if (cleanExit && (results[i].halted || upstreamDone)) {
                c.doneClean = true;
                c.halted = results[i].halted;
                c.ctrl = results[i].ctrl;
            }
            upstreamDone = c.doneClean;
        }
    }

    // Collect stage/queue telemetry before error propagation so partial
    // runs still leave a readable record.
    if (metrics_) {
        metrics_->stages.clear();
        metrics_->stages.resize(n);
        for (size_t i = 0; i < n; ++i) {
            StageMetrics& sm = metrics_->stages[i];
            sm.consumed = results[i].consumed;
            sm.emitted = results[i].emitted;
            sm.halted = results[i].halted;
            sm.sec = results[i].sec;
            sm.pushWaitNs = results[i].pushWaitNs;
            sm.popWaitNs = results[i].popWaitNs;
            if (results[i].error)
                sm.failure = failureCauseName(FailureCause::Exception);
            else if (stalled == static_cast<long>(i))
                sm.failure = failureCauseName(FailureCause::Stall);
            else if (results[i].aborted)
                sm.failure = failureCauseName(FailureCause::Cancel);
            if (i + 1 < n) {
                SpscQueue::Stats qs = queues[i]->stats();
                sm.hasQueue = true;
                sm.queueCapacity = queueCap_;
                sm.queueHighWater = qs.highWater;
                sm.producerStalls = qs.pushStalls;
                sm.consumerStalls = qs.popStalls;
            }
        }
    }
    metrics::Registry::global().counter("ziria.threaded_runs").inc();

    // Error propagation: a throwing stage wins over a stall verdict
    // (the stall is usually collateral of the failed stage).
    for (size_t i = 0; i < n; ++i) {
        if (!results[i].error)
            continue;
        StageFailure f;
        f.stage = i;
        f.path = "stage" + std::to_string(i);
        f.cause = FailureCause::Exception;
        f.message = errorMessage(results[i].error);
        f.inner = results[i].error;
        metrics::Registry::global()
            .counter("ziria.stage_failures")
            .inc();
        throw StageFailureError(std::move(f));
    }
    if (stalled >= 0) {
        StageFailure f;
        f.stage = static_cast<size_t>(stalled);
        f.path = "stage" + std::to_string(stalled);
        f.cause = FailureCause::Stall;
        std::ostringstream os;
        os << "no progress for " << deadlineMs_ << " ms";
        f.message = os.str();
        throw StageFailureError(std::move(f));
    }

    RunStats st;
    if (carry) {
        // Per-stage mode resumes stages mid-stream, so the counters are
        // cumulative across every attempt of this run.
        st.consumed = carry->front().consumed;
        st.emitted = carry->back().emitted;
    } else {
        st.consumed = results.front().consumed;
        st.emitted = results.back().emitted;
    }
    for (const auto& r : results) {
        if (r.halted) {
            st.halted = true;
            st.ctrl = r.ctrl;
            break;
        }
    }
    st.metrics = metrics_.get();
    return st;
}

} // namespace ziria
