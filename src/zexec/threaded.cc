#include "zexec/threaded.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "support/metrics.h"
#include "support/panic.h"
#include "support/spsc_queue.h"
#include "support/timing.h"

namespace ziria {

namespace {

/** Result of running one stage. */
struct StageResult
{
    uint64_t consumed = 0;
    uint64_t emitted = 0;
    bool halted = false;
    std::vector<uint8_t> ctrl;
    std::exception_ptr error;
    double sec = 0;  ///< wall time of the stage's drive loop
};

/**
 * Drive one stage: pull input from @p inq (or @p src for stage 0), push
 * output to @p outq (or @p sink for the last stage).
 */
void
runStage(ExecNode& node, Frame& frame, SpscQueue* inq, InputSource* src,
         SpscQueue* outq, OutputSink* sink, StageResult& res)
{
    std::vector<uint8_t> inBuf(std::max<size_t>(node.inWidth(), 1));
    Stopwatch sw;
    try {
        node.start(frame);
        while (true) {
            Status s = node.advance(frame);
            if (s == Status::Yield) {
                if (outq) {
                    if (!outq->push(node.out()))
                        break;  // downstream cancelled
                } else {
                    sink->put(node.out());
                }
                ++res.emitted;
            } else if (s == Status::NeedInput) {
                if (inq) {
                    if (!inq->pop(inBuf.data()))
                        break;  // upstream finished
                    node.supply(frame, inBuf.data());
                } else {
                    const uint8_t* p = src->next();
                    if (!p)
                        break;
                    node.supply(frame, p);
                }
                ++res.consumed;
            } else {
                res.halted = true;
                const uint8_t* cp = node.ctrl();
                if (cp && node.ctrlWidth())
                    res.ctrl.assign(cp, cp + node.ctrlWidth());
                break;
            }
        }
    } catch (...) {
        res.error = std::current_exception();
    }
    res.sec = sw.elapsedSec();
    if (outq)
        outq->close();
    // A halted (or failed) stage stops upstream producers.
    if ((res.halted || res.error) && inq)
        inq->cancel();
}

} // namespace

ThreadedPipeline::ThreadedPipeline(std::vector<NodePtr> stages,
                                   size_t frame_size, size_t in_width,
                                   size_t out_width, size_t queue_cap)
    : stages_(std::move(stages)), frame_(frame_size), inWidth_(in_width),
      outWidth_(out_width), queueCap_(queue_cap)
{
    ZIRIA_ASSERT(!stages_.empty());
}

RunStats
ThreadedPipeline::run(InputSource& src, OutputSink& sink)
{
    const size_t n = stages_.size();
    std::vector<std::unique_ptr<SpscQueue>> queues;
    for (size_t i = 0; i + 1 < n; ++i) {
        size_t w = std::max<size_t>(stages_[i]->outWidth(), 1);
        queues.push_back(std::make_unique<SpscQueue>(w, queueCap_));
    }

    std::vector<StageResult> results(n);
    std::vector<std::thread> threads;
    for (size_t i = 0; i + 1 < n; ++i) {
        SpscQueue* inq = i == 0 ? nullptr : queues[i - 1].get();
        InputSource* s = i == 0 ? &src : nullptr;
        threads.emplace_back(runStage, std::ref(*stages_[i]),
                             std::ref(frame_), inq, s, queues[i].get(),
                             nullptr, std::ref(results[i]));
    }

    // The last stage runs on the calling thread.
    runStage(*stages_[n - 1], frame_, n > 1 ? queues[n - 2].get() : nullptr,
             n > 1 ? nullptr : &src, nullptr, &sink, results[n - 1]);

    // If the final stage stopped early, make sure producers unblock.
    for (auto& q : queues)
        q->cancel();
    for (auto& t : threads)
        t.join();

    // Collect stage/queue telemetry before error propagation so partial
    // runs still leave a readable record.
    if (metrics_) {
        metrics_->stages.clear();
        metrics_->stages.resize(n);
        for (size_t i = 0; i < n; ++i) {
            StageMetrics& sm = metrics_->stages[i];
            sm.consumed = results[i].consumed;
            sm.emitted = results[i].emitted;
            sm.halted = results[i].halted;
            sm.sec = results[i].sec;
            if (i + 1 < n) {
                SpscQueue::Stats qs = queues[i]->stats();
                sm.hasQueue = true;
                sm.queueCapacity = queueCap_;
                sm.queueHighWater = qs.highWater;
                sm.producerStalls = qs.pushStalls;
                sm.consumerStalls = qs.popStalls;
            }
        }
    }
    metrics::Registry::global().counter("ziria.threaded_runs").inc();

    for (auto& r : results) {
        if (r.error)
            std::rethrow_exception(r.error);
    }

    RunStats st;
    st.consumed = results.front().consumed;
    st.emitted = results.back().emitted;
    for (const auto& r : results) {
        if (r.halted) {
            st.halted = true;
            st.ctrl = r.ctrl;
            break;
        }
    }
    st.metrics = metrics_.get();
    return st;
}

} // namespace ziria
