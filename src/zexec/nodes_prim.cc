#include "zexec/nodes.h"

#include "support/panic.h"

namespace ziria {

// ---------------------------------------------------------------- Take

TakeNode::TakeNode(size_t width)
{
    inWidth_ = width;
    ctrlWidth_ = width;
    ctrlBuf_.resize(width);
}

void
TakeNode::start(Frame&)
{
    pending_ = false;
}

Status
TakeNode::advance(Frame&)
{
    return pending_ ? Status::Done : Status::NeedInput;
}

void
TakeNode::supply(Frame&, const uint8_t* in)
{
    std::memcpy(ctrlBuf_.data(), in, inWidth_);
    pending_ = true;
}

// ------------------------------------------------------------ TakeMany

TakeManyNode::TakeManyNode(size_t elem_width, size_t n) : n_(n)
{
    inWidth_ = elem_width;
    ctrlWidth_ = elem_width * n;
    ctrlBuf_.resize(ctrlWidth_);
}

void
TakeManyNode::start(Frame&)
{
    have_ = 0;
}

Status
TakeManyNode::advance(Frame&)
{
    return have_ >= n_ ? Status::Done : Status::NeedInput;
}

void
TakeManyNode::supply(Frame&, const uint8_t* in)
{
    ZIRIA_ASSERT(have_ < n_);
    std::memcpy(ctrlBuf_.data() + have_ * inWidth_, in, inWidth_);
    ++have_;
}

// ---------------------------------------------------------------- Emit

EmitNode::EmitNode(EvalInto expr, size_t width) : expr_(std::move(expr))
{
    outWidth_ = width;
    outBuf_.resize(width);
}

void
EmitNode::start(Frame&)
{
    emitted_ = false;
}

Status
EmitNode::advance(Frame& f)
{
    if (emitted_)
        return Status::Done;
    expr_(f, outBuf_.data());
    emitted_ = true;
    return Status::Yield;
}

void
EmitNode::supply(Frame&, const uint8_t*)
{
    panic("EmitNode::supply: emit never requests input");
}

// --------------------------------------------------------------- Emits

EmitsNode::EmitsNode(EvalInto arr_expr, size_t elem_width, size_t len)
    : arrExpr_(std::move(arr_expr)), len_(len)
{
    outWidth_ = elem_width;
    arrBuf_.resize(elem_width * len);
}

void
EmitsNode::start(Frame&)
{
    next_ = 0;
    evaluated_ = false;
}

Status
EmitsNode::advance(Frame& f)
{
    if (!evaluated_) {
        arrExpr_(f, arrBuf_.data());
        evaluated_ = true;
    }
    if (next_ >= len_)
        return Status::Done;
    ++next_;
    return Status::Yield;
}

void
EmitsNode::supply(Frame&, const uint8_t*)
{
    panic("EmitsNode::supply: emits never requests input");
}

// -------------------------------------------------------------- Return

ReturnNode::ReturnNode(Action body, EvalInto ret, size_t ctrl_width)
    : body_(std::move(body)), ret_(std::move(ret))
{
    ctrlWidth_ = ctrl_width;
    ctrlBuf_.resize(ctrl_width);
}

void
ReturnNode::start(Frame&)
{
}

Status
ReturnNode::advance(Frame& f)
{
    if (body_)
        body_(f);
    if (ret_)
        ret_(f, ctrlBuf_.data());
    return Status::Done;
}

void
ReturnNode::supply(Frame&, const uint8_t*)
{
    panic("ReturnNode::supply: do/return never requests input");
}

// ----------------------------------------------------------------- Map

MapNode::MapNode(CompiledKernel kernel, std::shared_ptr<CompiledLut> lut,
                 size_t in_width, size_t out_width)
{
    stage_.kernel = std::move(kernel);
    stage_.lut = std::move(lut);
    stage_.inW = in_width;
    stage_.outW = out_width;
    inWidth_ = in_width;
    outWidth_ = out_width;
    outBuf_.resize(out_width);
    ZIRIA_ASSERT(stage_.kernel.paramOffsets.size() == 1,
                 "map kernel must be unary");
    ZIRIA_ASSERT(stage_.kernel.paramWidths[0] == in_width);
}

void
MapNode::start(Frame&)
{
    pending_ = false;
}

Status
MapNode::advance(Frame& f)
{
    if (!pending_)
        return Status::NeedInput;
    if (stage_.lut) {
        stage_.lut->apply(f, outBuf_.data());
    } else {
        stage_.kernel.body(f);
        if (stage_.kernel.retInto)
            stage_.kernel.retInto(f, outBuf_.data());
    }
    pending_ = false;
    return Status::Yield;
}

void
MapNode::supply(Frame& f, const uint8_t* in)
{
    std::memcpy(f.at(stage_.kernel.paramOffsets[0]), in, inWidth_);
    pending_ = true;
}

// ------------------------------------------------------------ MapChain

MapChainNode::MapChainNode(std::vector<MapStage> stages)
    : stages_(std::move(stages))
{
    ZIRIA_ASSERT(stages_.size() >= 2);
    inWidth_ = stages_.front().inW;
    outWidth_ = stages_.back().outW;
    outBuf_.resize(outWidth_);
    for (size_t i = 0; i + 1 < stages_.size(); ++i)
        ZIRIA_ASSERT(stages_[i].outW == stages_[i + 1].inW,
                     "map chain stage width mismatch");
}

void
MapChainNode::start(Frame&)
{
    pending_ = false;
}

Status
MapChainNode::advance(Frame& f)
{
    if (!pending_)
        return Status::NeedInput;
    // Run stage i and deliver its output straight into stage i+1's
    // parameter slot; the last stage writes the node's output buffer.
    for (size_t i = 0; i < stages_.size(); ++i) {
        MapStage& st = stages_[i];
        uint8_t* dst = i + 1 < stages_.size()
            ? f.at(stages_[i + 1].kernel.paramOffsets[0])
            : outBuf_.data();
        if (st.lut) {
            st.lut->apply(f, dst);
        } else {
            st.kernel.body(f);
            if (st.kernel.retInto)
                st.kernel.retInto(f, dst);
        }
    }
    pending_ = false;
    return Status::Yield;
}

void
MapChainNode::supply(Frame& f, const uint8_t* in)
{
    std::memcpy(f.at(stages_.front().kernel.paramOffsets[0]), in,
                inWidth_);
    pending_ = true;
}

// -------------------------------------------------------------- Filter

FilterNode::FilterNode(CompiledKernel pred, size_t width)
    : pred_(std::move(pred))
{
    inWidth_ = width;
    outWidth_ = width;
    outBuf_.resize(width);
    ZIRIA_ASSERT(pred_.paramOffsets.size() == 1);
}

void
FilterNode::start(Frame&)
{
    pending_ = false;
}

Status
FilterNode::advance(Frame& f)
{
    if (!pending_)
        return Status::NeedInput;
    pending_ = false;
    uint8_t keep = 0;
    pred_.body(f);
    pred_.retInto(f, &keep);
    if (!keep)
        return Status::NeedInput;
    std::memcpy(outBuf_.data(), f.at(pred_.paramOffsets[0]), inWidth_);
    return Status::Yield;
}

void
FilterNode::supply(Frame& f, const uint8_t* in)
{
    std::memcpy(f.at(pred_.paramOffsets[0]), in, inWidth_);
    pending_ = true;
}

// -------------------------------------------------------------- Native

class NativeNode::RingEmitter : public Emitter
{
  public:
    RingEmitter(std::vector<uint8_t>& ring, size_t width)
        : ring_(ring), width_(width)
    {
    }

    void
    emit(const uint8_t* elem) override
    {
        ring_.insert(ring_.end(), elem, elem + width_);
    }

  private:
    std::vector<uint8_t>& ring_;
    size_t width_;
};

NativeNode::NativeNode(Factory factory, size_t in_width, size_t out_width,
                       size_t ctrl_width, bool is_computer)
    : factory_(std::move(factory)), isComputer_(is_computer)
{
    inWidth_ = in_width;
    outWidth_ = out_width;
    ctrlWidth_ = ctrl_width;
    outBuf_.resize(out_width);
}

void
NativeNode::start(Frame& f)
{
    kernel_ = factory_(f);
    ring_.clear();
    ringHead_ = 0;
    finished_ = false;
}

Status
NativeNode::advance(Frame&)
{
    if (ringHead_ < ring_.size()) {
        std::memcpy(outBuf_.data(), ring_.data() + ringHead_, outWidth_);
        ringHead_ += outWidth_;
        if (ringHead_ >= ring_.size()) {
            ring_.clear();
            ringHead_ = 0;
        }
        return Status::Yield;
    }
    if (finished_)
        return Status::Done;
    return Status::NeedInput;
}

void
NativeNode::supply(Frame&, const uint8_t* in)
{
    RingEmitter em(ring_, outWidth_);
    if (kernel_->consume(in, em)) {
        ZIRIA_ASSERT(isComputer_, "transformer kernel claimed completion");
        ZIRIA_ASSERT(kernel_->ctrl().size() == ctrlWidth_,
                     "native control value width mismatch");
        finished_ = true;
    }
}

// -------------------------------------------------- snapshot / restore
//
// Each node serializes its members AND the frame cells it owns (kernel
// parameter slots), so a per-stage snapshot is self-contained without a
// whole-frame image (docs/ROBUSTNESS.md, "Checkpointing & migration").

void
TakeNode::snapshot(const Frame&, StateWriter& w) const
{
    w.u8(pending_ ? 1 : 0);
    w.bytes(ctrlBuf_.data(), ctrlBuf_.size());
}

void
TakeNode::restore(Frame&, StateReader& r)
{
    pending_ = r.u8() != 0;
    r.bytes(ctrlBuf_.data(), ctrlBuf_.size());
}

void
TakeManyNode::snapshot(const Frame&, StateWriter& w) const
{
    w.u64(have_);
    w.bytes(ctrlBuf_.data(), ctrlBuf_.size());
}

void
TakeManyNode::restore(Frame&, StateReader& r)
{
    // Untrusted on the zserve migration path: supply() writes at
    // have_ * width into ctrlBuf_, so the cursor must stay in range.
    size_t have = static_cast<size_t>(r.u64());
    if (have > n_)
        throw StateFormatError("takes element count out of range");
    have_ = have;
    r.bytes(ctrlBuf_.data(), ctrlBuf_.size());
}

void
EmitNode::snapshot(const Frame&, StateWriter& w) const
{
    w.u8(emitted_ ? 1 : 0);
    w.bytes(outBuf_.data(), outBuf_.size());
}

void
EmitNode::restore(Frame&, StateReader& r)
{
    emitted_ = r.u8() != 0;
    r.bytes(outBuf_.data(), outBuf_.size());
}

void
EmitsNode::snapshot(const Frame&, StateWriter& w) const
{
    w.u8(evaluated_ ? 1 : 0);
    w.u64(next_);
    w.bytes(arrBuf_.data(), arrBuf_.size());
}

void
EmitsNode::restore(Frame&, StateReader& r)
{
    evaluated_ = r.u8() != 0;
    // out() reads arrBuf_ at (next_ - 1) * width; a cursor past len_
    // from an untrusted stream would read past the array buffer.
    size_t next = static_cast<size_t>(r.u64());
    if (next > len_)
        throw StateFormatError("emits cursor out of range");
    next_ = next;
    r.bytes(arrBuf_.data(), arrBuf_.size());
}

void
MapNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.u8(pending_ ? 1 : 0);
    w.bytes(outBuf_.data(), outBuf_.size());
    w.bytes(f.at(stage_.kernel.paramOffsets[0]), stage_.inW);
}

void
MapNode::restore(Frame& f, StateReader& r)
{
    pending_ = r.u8() != 0;
    r.bytes(outBuf_.data(), outBuf_.size());
    r.bytes(f.at(stage_.kernel.paramOffsets[0]), stage_.inW);
}

void
MapChainNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.u8(pending_ ? 1 : 0);
    w.bytes(outBuf_.data(), outBuf_.size());
    for (const MapStage& st : stages_)
        w.bytes(f.at(st.kernel.paramOffsets[0]), st.inW);
}

void
MapChainNode::restore(Frame& f, StateReader& r)
{
    pending_ = r.u8() != 0;
    r.bytes(outBuf_.data(), outBuf_.size());
    for (const MapStage& st : stages_)
        r.bytes(f.at(st.kernel.paramOffsets[0]), st.inW);
}

void
FilterNode::snapshot(const Frame& f, StateWriter& w) const
{
    w.u8(pending_ ? 1 : 0);
    w.bytes(outBuf_.data(), outBuf_.size());
    w.bytes(f.at(pred_.paramOffsets[0]), inWidth_);
}

void
FilterNode::restore(Frame& f, StateReader& r)
{
    pending_ = r.u8() != 0;
    r.bytes(outBuf_.data(), outBuf_.size());
    r.bytes(f.at(pred_.paramOffsets[0]), inWidth_);
}

void
NativeNode::snapshot(const Frame&, StateWriter& w) const
{
    w.u8(finished_ ? 1 : 0);
    w.u64(ringHead_);
    w.blob(ring_.data(), ring_.size());
    w.bytes(outBuf_.data(), outBuf_.size());
    // A node inside a not-yet-reached seq arm (or unchosen if branch)
    // has no kernel yet; record its absence so restore leaves the node
    // unstarted too — the parent will start() it when control arrives.
    w.u8(kernel_ ? 1 : 0);
    if (kernel_)
        kernel_->snapshot(w);
}

void
NativeNode::restore(Frame& f, StateReader& r)
{
    finished_ = r.u8() != 0;
    size_t head = static_cast<size_t>(r.u64());
    std::vector<uint8_t> ring = r.blob();
    // Untrusted on the zserve migration path: advance() memcpys
    // outWidth_ bytes at ringHead_, so the ring and cursor must stay
    // element-aligned and in bounds (and empty when the node emits
    // nothing — a non-advancing cursor would otherwise spin forever).
    if (outWidth_ == 0
            ? (head != 0 || !ring.empty())
            : (ring.size() % outWidth_ != 0 || head % outWidth_ != 0 ||
               head > ring.size()))
        throw StateFormatError("native output ring out of bounds");
    ringHead_ = head;
    ring_ = std::move(ring);
    r.bytes(outBuf_.data(), outBuf_.size());
    if (r.u8() != 0) {
        // Re-run the factory so kernel arguments re-read their (already
        // restored) seq binders, then patch the kernel's own state in.
        kernel_ = factory_(f);
        kernel_->restore(r);
        // A finished computer's ctrl() hands kernel bytes to the
        // parent, which copies ctrlWidth_ of them.
        if (finished_ && kernel_->ctrl().size() != ctrlWidth_)
            throw StateFormatError("native control value width mismatch");
    } else {
        if (finished_)
            throw StateFormatError("finished native node without kernel");
        kernel_.reset();
    }
}

} // namespace ziria
