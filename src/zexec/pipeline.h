/**
 * @file
 * Pipeline driver: builds execution nodes from a checked computation AST
 * and runs them against input sources and output sinks.
 */
#ifndef ZIRIA_ZEXEC_PIPELINE_H
#define ZIRIA_ZEXEC_PIPELINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/panic.h"
#include "zast/comp.h"
#include "zexec/node.h"
#include "zexec/span.h"
#include "zexec/supervisor.h"
#include "zexec/trace.h"
#include "zexpr/compile_expr.h"
#include "zexpr/lut.h"

namespace ziria {

class CkptStore;

/** Pull-style input: elements of a fixed byte width. */
class InputSource
{
  public:
    virtual ~InputSource() = default;

    /** Pointer to the next element, or null at end of stream. */
    virtual const uint8_t* next() = 0;

    /**
     * Ask a blocked next() to give up and return null as soon as it can.
     * Called by the ThreadedPipeline supervisor from another thread when
     * a run is aborted; sources that can block (radios, sockets, fault
     * injectors) should honor it.  Default: no-op (memory sources never
     * block).
     */
    virtual void cancel() {}

    /**
     * Clear a sticky cancel() so a restarted run can keep reading from
     * the live stream.  Called single-threadedly by the restart
     * supervisor between attempts; default: no-op (sources without a
     * cancel latch need nothing).
     */
    virtual void rearm() {}
};

/** Reads elements out of a flat byte buffer (not owned). */
class MemSource : public InputSource
{
  public:
    MemSource(const uint8_t* data, size_t bytes, size_t elem_width)
        : data_(data), bytes_(bytes), width_(elem_width)
    {
    }

    explicit MemSource(const std::vector<uint8_t>& buf, size_t elem_width)
        : MemSource(buf.data(), buf.size(), elem_width)
    {
    }

    const uint8_t*
    next() override
    {
        if (width_ == 0 || pos_ + width_ > bytes_)
            return nullptr;
        const uint8_t* p = data_ + pos_;
        pos_ += width_;
        return p;
    }

    void rewind() { pos_ = 0; }

  private:
    const uint8_t* data_;
    size_t bytes_;
    size_t width_;
    size_t pos_ = 0;
};

/** Cycles through a buffer a given number of times (benchmark feeding). */
class CyclicSource : public InputSource
{
  public:
    CyclicSource(const std::vector<uint8_t>& buf, size_t elem_width,
                 uint64_t total_elems)
        : buf_(buf), width_(elem_width), remaining_(total_elems)
    {
        // The wrap check in next() resets pos_ but still reads width_
        // bytes, so a buffer shorter than one element would read past
        // its end.  Reject it up front.
        if (elem_width > 0 && buf.size() < elem_width)
            fatalf("CyclicSource: buffer of ", buf.size(),
                   " byte(s) is smaller than one ", elem_width,
                   "-byte element");
    }

    const uint8_t*
    next() override
    {
        if (remaining_ == 0)
            return nullptr;
        --remaining_;
        if (pos_ + width_ > buf_.size())
            pos_ = 0;
        const uint8_t* p = buf_.data() + pos_;
        pos_ += width_;
        return p;
    }

  private:
    const std::vector<uint8_t>& buf_;
    size_t width_;
    uint64_t remaining_;
    size_t pos_ = 0;
};

/** Push-style output sink. */
class OutputSink
{
  public:
    virtual ~OutputSink() = default;

    virtual void put(const uint8_t* elem) = 0;

    /** Ask a blocked put() to give up (see InputSource::cancel()). */
    virtual void cancel() {}

    /** Clear a sticky cancel() (see InputSource::rearm()). */
    virtual void rearm() {}
};

/** Appends output elements to a byte vector. */
class VecSink : public OutputSink
{
  public:
    explicit VecSink(size_t elem_width) : width_(elem_width) {}

    void
    put(const uint8_t* elem) override
    {
        data_.insert(data_.end(), elem, elem + width_);
    }

    const std::vector<uint8_t>& data() const { return data_; }
    size_t elems() const { return width_ ? data_.size() / width_ : 0; }

  private:
    size_t width_;
    std::vector<uint8_t> data_;
};

/** Discards output (benchmarking; matches the paper's methodology). */
class NullSink : public OutputSink
{
  public:
    void put(const uint8_t*) override { ++count_; }

    uint64_t count() const { return count_; }

  private:
    uint64_t count_ = 0;
};

/** Outcome of one pipeline run. */
struct RunStats
{
    uint64_t consumed = 0;       ///< input elements taken
    uint64_t emitted = 0;        ///< output elements produced
    bool halted = false;         ///< a computer returned
    std::vector<uint8_t> ctrl;   ///< its control value bytes
    /** Collected instrumentation, when the pipeline was compiled with
     *  `CompilerOptions::instrument`; null otherwise.  Owned by the
     *  pipeline and cumulative across its runs. */
    const PipelineMetrics* metrics = nullptr;
};

// ---------------------------------------------------------------------
// Node construction
// ---------------------------------------------------------------------

/** Options controlling node-level optimizations and instrumentation. */
struct BuildOptions
{
    bool autoLut = false;   ///< replace eligible map kernels with LUTs
    LutLimits lutLimits;
    bool instrument = false;      ///< wrap nodes in TracedNode shims
    uint32_t sampleShift = 6;     ///< time 1 in 2^N advances per node
    PipelineMetrics* metrics = nullptr;  ///< sink for NodeMetrics entries
};

/** Statistics collected while building (reported by the compiler). */
struct BuildStats
{
    int nodes = 0;
    int mapNodes = 0;
    int lutsBuilt = 0;
    size_t lutBytes = 0;
};

/**
 * Build the execution-node tree for a checked computation.  The comp must
 * be elaborated (no CallComp) and type-checked (ctype() resolved).
 * @p path is the stable node-path prefix used to key NodeMetrics when
 * `opt.instrument` is set (children extend it: "/l", "/r", "/s0", ...).
 */
NodePtr buildNode(const CompPtr& c, ExprCompiler& ec,
                  const BuildOptions& opt, BuildStats* stats,
                  const std::string& path = "root");

// ---------------------------------------------------------------------
// Single-threaded driver
// ---------------------------------------------------------------------

/** A runnable single-threaded pipeline instance. */
class Pipeline
{
  public:
    Pipeline(NodePtr root, size_t frame_size, size_t in_width,
             size_t out_width)
        : root_(std::move(root)), frame_(frame_size), inWidth_(in_width),
          outWidth_(out_width)
    {
    }

    size_t inWidth() const { return inWidth_; }
    size_t outWidth() const { return outWidth_; }
    Frame& frame() { return frame_; }
    ExecNode& root() { return *root_; }

    /**
     * Run until the computation halts or the source is exhausted.
     *
     * With a RestartPolicy of OnFailure (setRestartPolicy), a throwing
     * run is retried in place: the node tree is reset() to a frame
     * boundary, the endpoints re-armed, an exponential backoff slept,
     * and the loop resumes from the live source.  Output already pushed
     * to @p sink is kept; RunStats describes the final attempt.  Once
     * the retry budget is spent the last failure is rethrown as a
     * StageFailureError with `restartsExhausted` set and the attempt
     * history attached.  With the default (Never) policy the exception
     * propagates unchanged — exactly the pre-recovery behavior.
     *
     * @param max_out stop after this many outputs (0 = unlimited).
     */
    RunStats run(InputSource& src, OutputSink& sink, uint64_t max_out = 0);

    /** Convenience: feed a byte buffer, collect output bytes. */
    std::vector<uint8_t> runBytes(const std::vector<uint8_t>& input,
                                  RunStats* stats = nullptr);

    /** Attach the instrumentation collected while building the nodes. */
    void setMetrics(std::shared_ptr<PipelineMetrics> m)
    {
        metrics_ = std::move(m);
    }

    /** Per-node counters (null unless compiled with instrumentation). */
    const PipelineMetrics* metrics() const { return metrics_.get(); }

    /** Configure self-healing restarts (default: fail fast). */
    void setRestartPolicy(RestartPolicy p) { restart_ = p; }
    const RestartPolicy& restartPolicy() const { return restart_; }

    /**
     * Configure frame-boundary checkpointing (default: off).  Only takes
     * effect together with a restart policy: every `interval` consumed
     * elements the driver snapshots the full pipeline state and journals
     * the input consumed since, and a restart restores the snapshot and
     * replays the journal (suppressing already-delivered outputs) so the
     * sink's byte stream is identical to an uninterrupted run.  With the
     * default (off) policy the drive loop is unchanged — no snapshot, no
     * journal, no per-element cost.
     */
    void setCheckpoint(CheckpointPolicy p) { ckpt_ = p; }
    const CheckpointPolicy& checkpointPolicy() const { return ckpt_; }

    /** Attach a frame-span latency tracker (null = off; zexec/span.h).
     *  Runs stamp every frame source→sink into its histogram. */
    void setSpans(std::shared_ptr<SpanTracker> s)
    {
        spans_ = std::move(s);
    }

    SpanTracker* spans() const { return spans_.get(); }

    /**
     * Attach a durable checkpoint store (default: none — the cadence
     * loop is byte-for-byte the in-memory path).  With a store and an
     * enabled CheckpointPolicy, every cadence snapshot is also persisted
     * under @p key, so a killed process can resume via restoreDurable().
     * @p prepare (optional) runs before each save — zirrun flushes the
     * output file there so on-disk output always covers the persisted
     * emitted count; returning false skips that save.  A clean run()
     * completion removes the key (no stale resume).
     */
    void setDurable(CkptStore* store, std::string key,
                    std::function<bool(std::string*)> prepare = nullptr)
    {
        durableStore_ = store;
        durableKey_ = std::move(key);
        durablePrepare_ = std::move(prepare);
    }

    /**
     * Restore the pipeline from the newest valid durable generation of
     * the configured key, if any.  On success fills the snapshot's
     * counters and the next run() resumes from that state (the caller
     * skips @p consumed input elements and truncates its output to
     * @p emitted elements).  Corrupt generations quarantine and fall
     * back; returns false on a fresh start.
     */
    bool restoreDurable(uint64_t& consumed, uint64_t& emitted);

  private:
    /** Checkpoint state carried across restart attempts of one run(). */
    struct CkptCarry
    {
        std::vector<uint8_t> snap;     ///< last takeSnapshot() image
        std::vector<uint8_t> journal;  ///< raw input since the snapshot
        std::vector<uint8_t> replay;   ///< journal being re-fed post-restore
        size_t replayPos = 0;          ///< byte cursor into replay
        uint64_t consumedAtSnap = 0;   ///< counters at the snapshot point
        uint64_t emittedAtSnap = 0;
        uint64_t emittedDelivered = 0; ///< outputs actually handed to sink
        uint64_t suppress = 0;  ///< replayed outputs to swallow (already
                                ///< delivered before the failure)
        bool restored = false;  ///< next attempt resumes, not starts
    };

    RunStats runAttempt(InputSource& src, OutputSink& sink,
                        uint64_t max_out, CkptCarry* ck = nullptr);
    void durableSave(const CkptCarry& ck);

    NodePtr root_;
    Frame frame_;
    size_t inWidth_;
    size_t outWidth_;
    RestartPolicy restart_;
    CheckpointPolicy ckpt_;
    std::shared_ptr<PipelineMetrics> metrics_;
    std::shared_ptr<SpanTracker> spans_;
    CkptStore* durableStore_ = nullptr;
    std::string durableKey_;
    std::function<bool(std::string*)> durablePrepare_;
    std::vector<uint8_t> durableSnap_;  ///< restoreDurable() image
    uint64_t durableConsumed_ = 0;
    uint64_t durableEmitted_ = 0;
    bool durableResume_ = false;
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_PIPELINE_H
