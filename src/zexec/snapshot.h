/**
 * @file
 * Pipeline checkpoint container: a versioned image of one pipeline
 * instance's complete execution state.
 *
 * Layout (all integers little-endian; docs/ROBUSTNESS.md,
 * "Checkpointing & migration"):
 *
 *   u32  magic   'ZCK1' (0x314b435a)
 *   u32  version (kSnapshotVersion)
 *   u64  consumed  — input elements consumed when the snapshot was taken
 *   u64  emitted   — output elements emitted when it was taken
 *   blob frame image (the flat byte frame, zexpr/frame.h)
 *   node state stream (ExecNode::snapshot over the whole tree)
 *
 * The frame image makes the container total even for state the node
 * walk cannot enumerate (frame cells written by compiled Action /
 * EvalInto closures inside fused regions); the node stream carries
 * everything that lives outside the frame (ring buffers, native kernel
 * state, fused register/state/channel spaces, loop counters).
 *
 * Restore order matters: reset(f) first (NativeNode factories re-read
 * binders, all children end up started), then the frame image (reset
 * clobbers LetVar cells), then the node stream (which re-creates native
 * kernels against the restored binders).
 */
#ifndef ZIRIA_ZEXEC_SNAPSHOT_H
#define ZIRIA_ZEXEC_SNAPSHOT_H

#include <cstdint>
#include <vector>

#include "support/state_io.h"
#include "zexec/node.h"

namespace ziria {

/** Bump when the container layout or any node's encoding changes. */
constexpr uint32_t kSnapshotVersion = 1;

/** 'ZCK1' — pipeline checkpoint magic. */
constexpr uint32_t kSnapshotMagic = 0x314b435a;

/** Counters recovered from a checkpoint header. */
struct SnapshotInfo
{
    uint64_t consumed = 0;
    uint64_t emitted = 0;
};

/**
 * Serialize the complete state of @p root + @p f.  Must be called at a
 * quiescent point: no advance()/supply() in flight.
 */
std::vector<uint8_t> takeSnapshot(const ExecNode& root, const Frame& f,
                                  uint64_t consumed, uint64_t emitted);

/**
 * Restore @p root + @p f from a takeSnapshot() image.  Throws
 * StateFormatError on bad magic, version skew, frame-size mismatch, or
 * a truncated stream.  On success the tree's future output is
 * bit-identical to the snapshotted instance's.
 */
SnapshotInfo restoreSnapshot(ExecNode& root, Frame& f,
                             const uint8_t* data, size_t size);

inline SnapshotInfo
restoreSnapshot(ExecNode& root, Frame& f, const std::vector<uint8_t>& v)
{
    return restoreSnapshot(root, f, v.data(), v.size());
}

} // namespace ziria

#endif // ZIRIA_ZEXEC_SNAPSHOT_H
