#include "zexec/pipeline.h"

#include "support/log.h"
#include "support/metrics.h"
#include "support/panic.h"
#include "zexec/ckpt_store.h"
#include "zexec/nodes.h"
#include "zexec/snapshot.h"
#include "zexec/stepper.h"
#include "zopt/autolut.h"

namespace ziria {

namespace {

size_t
widthOf(const TypePtr& t)
{
    return t ? t->byteWidth() : 0;
}

/** Look through an instrumentation shim (identity when not traced). */
ExecNode*
unwrapped(ExecNode* n)
{
    if (auto* t = dynamic_cast<TracedNode*>(n))
        return t->inner();
    return n;
}

/** Strip the shim, marking its metrics entry as coalesced away. */
NodePtr
stripTrace(NodePtr n)
{
    if (auto* t = dynamic_cast<TracedNode*>(n.get()))
        return t->takeInner();
    return n;
}

/** Extract map stages when @p n is a map or an already-coalesced chain. */
std::optional<std::vector<MapStage>>
mapStagesOf(NodePtr& n)
{
    if (auto* m = dynamic_cast<MapNode*>(n.get())) {
        std::vector<MapStage> out;
        out.push_back(m->takeStage());
        return out;
    }
    if (auto* c = dynamic_cast<MapChainNode*>(n.get()))
        return c->takeStages();
    return std::nullopt;
}

} // namespace

NodePtr
buildNode(const CompPtr& c, ExprCompiler& ec, const BuildOptions& opt,
          BuildStats* stats, const std::string& path)
{
    if (stats)
        ++stats->nodes;

    NodePtr node;
    switch (c->kind()) {
      case CompKind::Take: {
        const auto& t = static_cast<const TakeComp&>(*c);
        node = std::make_unique<TakeNode>(t.valType()->byteWidth());
        break;
      }
      case CompKind::TakeMany: {
        const auto& t = static_cast<const TakeManyComp&>(*c);
        node = std::make_unique<TakeManyNode>(t.elemType()->byteWidth(),
                                              t.count());
        break;
      }
      case CompKind::Emit: {
        const auto& e = static_cast<const EmitComp&>(*c);
        node = std::make_unique<EmitNode>(ec.compileInto(e.expr()),
                                          e.expr()->type()->byteWidth());
        break;
      }
      case CompKind::Emits: {
        const auto& e = static_cast<const EmitsComp&>(*c);
        const TypePtr& at = e.expr()->type();
        node = std::make_unique<EmitsNode>(ec.compileInto(e.expr()),
                                           at->elem()->byteWidth(),
                                           at->len());
        break;
      }
      case CompKind::Return: {
        const auto& r = static_cast<const ReturnComp&>(*c);
        Action body =
            r.stmts().empty() ? Action{} : ec.compileStmts(r.stmts());
        EvalInto ret;
        size_t cw = 0;
        if (r.ret()) {
            ret = ec.compileInto(r.ret());
            cw = r.ret()->type()->byteWidth();
        }
        node = std::make_unique<ReturnNode>(std::move(body),
                                            std::move(ret), cw);
        break;
      }
      case CompKind::Seq: {
        const auto& s = static_cast<const SeqComp&>(*c);
        std::vector<SeqNode::Item> items;
        items.reserve(s.items().size());
        size_t i = 0;
        for (const auto& it : s.items()) {
            SeqNode::Item item;
            item.node = buildNode(it.comp, ec, opt, stats,
                                  path + "/s" + std::to_string(i++));
            if (it.bind) {
                item.bindOff =
                    static_cast<long>(ec.layout().add(it.bind));
                item.bindWidth = it.bind->type->byteWidth();
            }
            items.push_back(std::move(item));
        }
        node = std::make_unique<SeqNode>(std::move(items));
        break;
      }
      case CompKind::Pipe: {
        const auto& p = static_cast<const PipeComp&>(*c);
        NodePtr l = buildNode(p.left(), ec, opt, stats, path + "/l");
        NodePtr r = buildNode(p.right(), ec, opt, stats, path + "/r");
        // Execution-level static scheduling: adjacent maps run back to
        // back with no interior pipe traffic.  Peek through trace shims
        // so instrumentation never changes the execution structure.
        ExecNode* lRaw = unwrapped(l.get());
        ExecNode* rRaw = unwrapped(r.get());
        bool lIsMap = dynamic_cast<MapNode*>(lRaw) != nullptr ||
                      dynamic_cast<MapChainNode*>(lRaw) != nullptr;
        bool rIsMap = dynamic_cast<MapNode*>(rRaw) != nullptr ||
                      dynamic_cast<MapChainNode*>(rRaw) != nullptr;
        if (lIsMap && rIsMap) {
            NodePtr lu = stripTrace(std::move(l));
            NodePtr ru = stripTrace(std::move(r));
            auto ls = mapStagesOf(lu);
            auto rs = mapStagesOf(ru);
            ls->insert(ls->end(), std::make_move_iterator(rs->begin()),
                       std::make_move_iterator(rs->end()));
            node = std::make_unique<MapChainNode>(std::move(*ls));
            break;
        }
        node = std::make_unique<PipeNode>(std::move(l), std::move(r));
        break;
      }
      case CompKind::If: {
        const auto& i = static_cast<const IfComp&>(*c);
        NodePtr t = buildNode(i.thenC(), ec, opt, stats, path + "/t");
        NodePtr e = i.elseC()
            ? buildNode(i.elseC(), ec, opt, stats, path + "/e")
            : nullptr;
        node = std::make_unique<IfNode>(ec.compileInt(i.cond()),
                                        std::move(t), std::move(e));
        break;
      }
      case CompKind::Repeat: {
        const auto& r = static_cast<const RepeatComp&>(*c);
        node = std::make_unique<RepeatNode>(
            buildNode(r.body(), ec, opt, stats, path + "/rep"));
        break;
      }
      case CompKind::Times: {
        const auto& t = static_cast<const TimesComp&>(*c);
        long ivOff = -1;
        TypeKind ivKind = TypeKind::Int32;
        if (t.inductionVar()) {
            ivOff = static_cast<long>(ec.layout().add(t.inductionVar()));
            ivKind = t.inductionVar()->type->kind();
        }
        node = std::make_unique<TimesNode>(
            ec.compileInt(t.count()), ivOff, ivKind,
            buildNode(t.body(), ec, opt, stats, path + "/times"));
        break;
      }
      case CompKind::While: {
        const auto& w = static_cast<const WhileComp&>(*c);
        node = std::make_unique<WhileNode>(
            ec.compileInt(w.cond()),
            buildNode(w.body(), ec, opt, stats, path + "/while"));
        break;
      }
      case CompKind::Map: {
        const auto& m = static_cast<const MapComp&>(*c);
        CompiledKernel k = ec.compileKernel(m.fun());
        std::shared_ptr<CompiledLut> lut;
        if (opt.autoLut)
            lut = tryBuildMapLut(m.fun(), k, ec, opt.lutLimits);
        if (stats) {
            ++stats->mapNodes;
            if (lut) {
                ++stats->lutsBuilt;
                stats->lutBytes += lut->tableBytes();
                metrics::Registry::global()
                    .counter("ziria.luts_built")
                    .inc();
            }
        }
        node = std::make_unique<MapNode>(
            std::move(k), std::move(lut),
            m.fun()->params[0]->type->byteWidth(),
            m.fun()->retType->byteWidth());
        break;
      }
      case CompKind::Filter: {
        const auto& fc = static_cast<const FilterComp&>(*c);
        CompiledKernel k = ec.compileKernel(fc.pred());
        node = std::make_unique<FilterNode>(
            std::move(k), fc.pred()->params[0]->type->byteWidth());
        break;
      }
      case CompKind::LetVar: {
        const auto& l = static_cast<const LetVarComp&>(*c);
        size_t off = ec.layout().add(l.var());
        EvalInto init;
        if (l.init())
            init = ec.compileInto(l.init());
        node = std::make_unique<LetVarNode>(
            off, l.var()->type->byteWidth(), std::move(init),
            buildNode(l.body(), ec, opt, stats, path + "/let"));
        break;
      }
      case CompKind::Native: {
        const auto& n = static_cast<const NativeComp&>(*c);
        auto spec = n.spec();
        std::vector<std::pair<TypePtr, EvalInto>> argFns;
        for (const auto& a : n.args())
            argFns.emplace_back(a->type(), ec.compileInto(a));
        NativeNode::Factory factory = [spec, argFns](Frame& f) {
            std::vector<Value> vals;
            vals.reserve(argFns.size());
            for (const auto& [ty, fn] : argFns) {
                Value v = Value::zeroOf(ty);
                fn(f, v.data());
                vals.push_back(std::move(v));
            }
            return spec->make(vals);
        };
        const CompType& ct = spec->ctype;
        node = std::make_unique<NativeNode>(
            std::move(factory), widthOf(ct.in), widthOf(ct.out),
            widthOf(ct.ctrl), ct.isComputer);
        break;
      }
      case CompKind::CallComp:
        panic("buildNode: unelaborated computation call");
    }

    // Normalize widths from the resolved stream signature.
    const CompType& ct = c->ctype();
    node->setInWidth(widthOf(ct.in));
    node->setOutWidth(widthOf(ct.out));
    if (ct.isComputer)
        node->setCtrlWidth(widthOf(ct.ctrl));

    if (opt.instrument && opt.metrics) {
        // A coalesced chain keeps the AST kind of the pipe that built
        // it, which is what the path already encodes.
        NodeMetrics& nm =
            opt.metrics->addNode(path, compKindName(c->kind()));
        nm.inWidth = node->inWidth();
        nm.outWidth = node->outWidth();
        node = std::make_unique<TracedNode>(std::move(node), &nm,
                                            opt.sampleShift);
    }
    return node;
}

bool
Pipeline::restoreDurable(uint64_t& consumed, uint64_t& emitted)
{
    if (!durableStore_ || !CkptStore::validKey(durableKey_))
        return false;
    std::vector<uint8_t> payload;
    if (!durableStore_->load(durableKey_, payload))
        return false;
    try {
        SnapshotInfo info = restoreSnapshot(*root_, frame_, payload);
        durableSnap_ = std::move(payload);
        durableConsumed_ = consumed = info.consumed;
        durableEmitted_ = emitted = info.emitted;
        durableResume_ = true;
        return true;
    } catch (const StateFormatError& e) {
        // A snapshot the disk store validated but the tree rejects
        // (e.g. the program changed between runs): start fresh.
        ZIRIA_LOG(Warn, "ckpt: durable restore rejected (", e.what(),
                  "); starting fresh");
        root_->reset(frame_);
        durableResume_ = false;
        return false;
    }
}

void
Pipeline::durableSave(const CkptCarry& ck)
{
    std::string err;
    if (durablePrepare_ && !durablePrepare_(&err)) {
        ZIRIA_LOG(Warn, "ckpt: durable save skipped (", err, ")");
        return;
    }
    if (!durableStore_->save(durableKey_, ck.snap, &err))
        ZIRIA_LOG(Warn, "ckpt: durable save failed (", err, ")");
}

RunStats
Pipeline::run(InputSource& src, OutputSink& sink, uint64_t max_out)
{
    // A durable store engages the checkpoint carry even without a
    // restart policy: the cadence snapshots exist to be persisted.
    const bool durable = durableStore_ && ckpt_.enabled();
    CkptCarry resume;
    if (durableResume_) {
        // restoreDurable() already rebuilt the tree; hand the counters
        // and image to the carry so the first attempt resumes.
        resume.snap = std::move(durableSnap_);
        resume.consumedAtSnap = durableConsumed_;
        resume.emittedAtSnap = durableEmitted_;
        resume.emittedDelivered = durableEmitted_;
        resume.restored = true;
        durableResume_ = false;
        durableSnap_.clear();
    }

    if (!restart_.enabled()) {
        if (!durable)
            return runAttempt(src, sink, max_out);
        RunStats st = runAttempt(src, sink, max_out, &resume);
        durableStore_->remove(durableKey_);  // clean completion
        return st;
    }

    RestartSupervisor sup(restart_);
    CkptCarry carry = std::move(resume);
    CkptCarry* ck = (ckpt_.enabled() || durable) ? &carry : nullptr;
    for (;;) {
        try {
            RunStats st = runAttempt(src, sink, max_out, ck);
            if (durable)
                durableStore_->remove(durableKey_);  // clean completion
            return st;
        } catch (const StageFailureError& e) {
            // Already structured (e.g. a nested driver rethrew); keep it.
            StageFailure f = e.failure();
            if (!sup.onFailure(f))
                throw StageFailureError(std::move(f));
        } catch (const std::exception& e) {
            // The single-threaded driver has one "stage": the whole tree.
            StageFailure f;
            f.stage = 0;
            f.path = "root";
            f.cause = FailureCause::Exception;
            f.message = e.what();
            f.inner = std::current_exception();
            metrics::Registry::global()
                .counter("ziria.stage_failures")
                .inc();
            if (!sup.onFailure(f))
                throw StageFailureError(std::move(f));
        }
        // onFailure slept out the backoff.  With a checkpoint in hand,
        // restore it and queue the post-snapshot input for replay
        // (suppressing the outputs the sink already saw); without one,
        // discard partial node state and resume from the live source.
        bool restored = false;
        if (ck && !ck->snap.empty()) {
            try {
                restoreSnapshot(*root_, frame_, ck->snap);
                // If the failure struck mid-replay (possible with async
                // causes such as stall deadlines), the journal holds
                // only the re-fed prefix — carry the un-replayed tail
                // over too, or the healed output would silently drop
                // those elements.
                ck->journal.insert(
                    ck->journal.end(),
                    ck->replay.begin() +
                        static_cast<std::ptrdiff_t>(ck->replayPos),
                    ck->replay.end());
                ck->replay = std::move(ck->journal);
                ck->replayPos = 0;
                ck->journal.clear();
                ck->suppress = ck->emittedDelivered - ck->emittedAtSnap;
                ck->restored = true;
                restored = true;
            } catch (const StateFormatError&) {
                // A snapshot we cannot restore is worse than none: fall
                // back to the plain reset path for the rest of this run.
                *ck = CkptCarry{};
                ck = nullptr;
            }
        }
        if (!restored)
            root_->reset(frame_);
        src.rearm();
        sink.rearm();
        if (spans_)
            spans_->onRestart();
    }
}

RunStats
Pipeline::runAttempt(InputSource& src, OutputSink& sink, uint64_t max_out,
                     CkptCarry* ck)
{
    metrics::Registry::global().counter("ziria.pipeline_runs").inc();
    // The same cooperative stepping loop the serving subsystem
    // multiplexes sessions with (src/zserve/session.cc) — here driven to
    // completion with a blocking source, which never reports Feed::Empty.
    Stepper stepper(*root_);
    stepper.setSpans(spans_.get());
    if (ck && ck->restored) {
        // run() already restored the tree from the last snapshot; pick
        // the counters up where the snapshot left them.
        stepper.resume(ck->consumedAtSnap, ck->emittedAtSnap);
        ck->restored = false;
    } else {
        stepper.start(frame_);
        if (ck && ck->snap.empty()) {
            // Baseline snapshot of the freshly started tree, so even a
            // failure before the first interval restores-and-replays
            // instead of falling back to reset.
            ck->snap = takeSnapshot(*root_, frame_, 0, 0);
        }
    }
    auto pull = [&](const uint8_t** p) {
        if (ck) {
            if (ck->replayPos < ck->replay.size()) {
                // Re-feed the journaled input consumed after the
                // snapshot, re-journaling it: a second failure during
                // replay must be able to replay it again.
                const uint8_t* e = ck->replay.data() + ck->replayPos;
                ck->replayPos += inWidth_;
                ck->journal.insert(ck->journal.end(), e, e + inWidth_);
                *p = e;
                return Feed::Ready;
            }
            // Quiescent point (the tree is parked on NeedInput): take
            // the cadence snapshot once the interval has elapsed — but
            // only outside replay/suppression, when the sink's position
            // matches the stepper's.
            if (ck->suppress == 0 &&
                stepper.consumed() - ck->consumedAtSnap >= ckpt_.interval) {
                ck->snap = takeSnapshot(*root_, frame_, stepper.consumed(),
                                        stepper.emitted());
                ck->consumedAtSnap = stepper.consumed();
                ck->emittedAtSnap = stepper.emitted();
                ck->journal.clear();
                ck->replay.clear();
                ck->replayPos = 0;
                if (durableStore_)
                    durableSave(*ck);
            }
            *p = src.next();
            if (!*p)
                return Feed::End;
            ck->journal.insert(ck->journal.end(), *p, *p + inWidth_);
            return Feed::Ready;
        }
        *p = src.next();
        return *p ? Feed::Ready : Feed::End;
    };
    auto push = [&](const uint8_t* elem) {
        if (ck && ck->suppress > 0) {
            // Replay regenerated an output the sink already received
            // before the failure; swallow it to keep the byte stream
            // identical to an uninterrupted run.
            --ck->suppress;
            return !(max_out && stepper.emitted() >= max_out);
        }
        sink.put(elem);
        if (ck)
            ck->emittedDelivered = stepper.emitted();
        return !(max_out && stepper.emitted() >= max_out);
    };
    StepOutcome oc = stepper.drive(frame_, pull, push);
    if (spans_)
        spans_->flush();
    RunStats st;
    st.consumed = stepper.consumed();
    st.emitted = stepper.emitted();
    if (oc == StepOutcome::Halted) {
        st.halted = true;
        const uint8_t* cp = stepper.ctrlData();
        if (cp && stepper.ctrlWidth())
            st.ctrl.assign(cp, cp + stepper.ctrlWidth());
    }
    st.metrics = metrics_.get();
    return st;
}

std::vector<uint8_t>
Pipeline::runBytes(const std::vector<uint8_t>& input, RunStats* stats)
{
    MemSource src(input, inWidth_);
    VecSink sink(outWidth_);
    RunStats st = run(src, sink);
    if (stats)
        *stats = st;
    return sink.data();
}

} // namespace ziria
