/**
 * @file
 * Multi-core pipeline execution: the `|>>>|` combinator (paper §2.6,
 * "Pipeline parallelization").
 *
 * A program whose top level is `c1 |>>>| c2 |>>>| ... |>>>| cn` is split
 * into stages connected by bounded SPSC queues; every stage runs its own
 * intrathread tick/proc machine.  As in the paper, pipeline-parallelizing
 * arbitrary interior uses of `>>>` is out of scope: only top-level
 * partitions are executed on separate threads (the compiler driver treats
 * interior `|>>>|` as plain `>>>`).
 *
 * The stages share one Frame; the §2.3 race rule (checked by zcheck)
 * guarantees no mutable variable is written on one side and accessed on
 * the other.
 */
#ifndef ZIRIA_ZEXEC_THREADED_H
#define ZIRIA_ZEXEC_THREADED_H

#include <memory>
#include <vector>

#include "zexec/pipeline.h"

namespace ziria {

/** A pipeline whose stages run on separate threads. */
class ThreadedPipeline
{
  public:
    /**
     * @param stages     per-stage node trees, upstream first
     * @param frame_size shared frame size
     * @param queue_cap  elements per interthread queue
     */
    ThreadedPipeline(std::vector<NodePtr> stages, size_t frame_size,
                     size_t in_width, size_t out_width,
                     size_t queue_cap = 4096);

    size_t inWidth() const { return inWidth_; }
    size_t outWidth() const { return outWidth_; }
    Frame& frame() { return frame_; }

    /**
     * Run to completion.  Stage 0 reads @p src on its own thread; the
     * last stage runs on the calling thread and writes @p sink.
     */
    RunStats run(InputSource& src, OutputSink& sink);

    size_t stageCount() const { return stages_.size(); }

    /** Attach the instrumentation sink; per-stage/queue telemetry is
     *  recorded into it on every run (replacing the previous run's). */
    void setMetrics(std::shared_ptr<PipelineMetrics> m)
    {
        metrics_ = std::move(m);
    }

    const PipelineMetrics* metrics() const { return metrics_.get(); }

  private:
    std::vector<NodePtr> stages_;
    Frame frame_;
    size_t inWidth_;
    size_t outWidth_;
    size_t queueCap_;
    std::shared_ptr<PipelineMetrics> metrics_;
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_THREADED_H
