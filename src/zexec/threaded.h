/**
 * @file
 * Multi-core pipeline execution: the `|>>>|` combinator (paper §2.6,
 * "Pipeline parallelization").
 *
 * A program whose top level is `c1 |>>>| c2 |>>>| ... |>>>| cn` is split
 * into stages connected by bounded SPSC queues; every stage runs its own
 * intrathread tick/proc machine.  As in the paper, pipeline-parallelizing
 * arbitrary interior uses of `>>>` is out of scope: only top-level
 * partitions are executed on separate threads (the compiler driver treats
 * interior `|>>>|` as plain `>>>`).
 *
 * The stages share one Frame; the §2.3 race rule (checked by zcheck)
 * guarantees no mutable variable is written on one side and accessed on
 * the other.
 *
 * Fault tolerance (docs/ROBUSTNESS.md): a run can be supervised by a
 * watchdog (setStallDeadline) that detects global quiescence — no stage
 * making progress for the deadline — and tears the pipeline down
 * deterministically: every SPSC queue is cancelled (waking all waiters),
 * the source and sink are asked to cancel, and run() raises a structured
 * StageFailure naming the stalled stage.  A stage that throws likewise
 * surfaces a StageFailure (cause Exception) after its peers were
 * unblocked via close/cancel propagation; peers never deadlock on a dead
 * neighbour.
 *
 * Self-healing (docs/ROBUSTNESS.md, "Recovery"): with a RestartPolicy
 * of OnFailure, an Exception or Stall failure does not end the run.
 * After every stage thread has been joined, the supervisor re-arms the
 * pipeline — SPSC queues are reopened (in-flight elements discarded),
 * every stage's node tree is reset() back to frame-boundary state, the
 * source and sink are re-armed — sleeps out an exponential backoff, and
 * resumes from the live source.  Only when the retry budget is spent
 * does run() throw, with the full restart history attached.
 *
 * With RestartScope::Stage the blast radius shrinks to the failed stage
 * (docs/ROBUSTNESS.md, "Per-stage restart"): healthy stages keep their
 * live node state and resume mid-stream, non-adjacent queues keep their
 * backlogs (uncancel()), and only the failed stage is reset() — then
 * restore()d from its node-state snapshot taken at the last restart
 * boundary, so repeated failures do not compound the rollback.  Only
 * the queues adjacent to the failed stage are reopen()ed; their
 * in-flight elements are the bounded loss of a stage restart.
 */
#ifndef ZIRIA_ZEXEC_THREADED_H
#define ZIRIA_ZEXEC_THREADED_H

#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "support/panic.h"
#include "zexec/pipeline.h"
#include "zexec/supervisor.h"

namespace ziria {

class SpscQueue;

/** A pipeline whose stages run on separate threads. */
class ThreadedPipeline
{
  public:
    /**
     * @param stages     per-stage node trees, upstream first
     * @param frame_size shared frame size
     * @param queue_cap  elements per interthread queue
     */
    ThreadedPipeline(std::vector<NodePtr> stages, size_t frame_size,
                     size_t in_width, size_t out_width,
                     size_t queue_cap = 4096);

    size_t inWidth() const { return inWidth_; }
    size_t outWidth() const { return outWidth_; }
    Frame& frame() { return frame_; }

    /**
     * Run to completion.  Stage 0 reads @p src on its own thread; the
     * last stage runs on the calling thread and writes @p sink.
     *
     * With a RestartPolicy of OnFailure, Exception/Stall failures are
     * retried in place (bounded, backed off) before anything is thrown;
     * RunStats then describes the final — successful — attempt, and the
     * `restart.*` counters record the recovery history.
     *
     * @throws StageFailureError if a stage throws, or — with a stall
     *         deadline set — if the watchdog detects a stalled run, in
     *         both cases only once the restart budget (if any) is spent.
     */
    RunStats run(InputSource& src, OutputSink& sink);

    size_t stageCount() const { return stages_.size(); }

    /**
     * Arm the watchdog: fail the run with a Stall StageFailure when no
     * stage makes progress for @p ms milliseconds.  0 (the default)
     * disables supervision entirely — no watchdog thread is spawned and
     * the drive loops use plain blocking waits, so the unsupervised path
     * costs exactly what it did before supervision existed.
     *
     * The deadline must exceed the longest single-element compute time
     * of any stage: the watchdog cannot distinguish a stage stuck in a
     * kernel from one legitimately crunching a huge element.
     */
    void setStallDeadline(double ms) { deadlineMs_ = ms; }
    double stallDeadline() const { return deadlineMs_; }

    /** Configure self-healing restarts (default: fail fast). */
    void setRestartPolicy(RestartPolicy p) { restart_ = p; }
    const RestartPolicy& restartPolicy() const { return restart_; }

    /** Attach the instrumentation sink; per-stage/queue telemetry is
     *  recorded into it on every run (replacing the previous run's). */
    void setMetrics(std::shared_ptr<PipelineMetrics> m)
    {
        metrics_ = std::move(m);
    }

    const PipelineMetrics* metrics() const { return metrics_.get(); }

    /**
     * Attach a frame-span latency tracker (null = off; zexec/span.h).
     * Frames are stamped by the first stage as it consumes the source
     * and completed by the last stage as it emits to the sink, so the
     * span covers every interthread queue in between; per-stage queue
     * waits are additionally timed into StageMetrics.
     */
    void setSpans(std::shared_ptr<SpanTracker> s)
    {
        spans_ = std::move(s);
    }

    SpanTracker* spans() const { return spans_.get(); }

  private:
    /** Per-stage continuation state carried across restart attempts
     *  (RestartScope::Stage only). */
    struct StageCarry
    {
        bool resume = false;     ///< node is live; skip start()
        bool doneClean = false;  ///< halted / hit EOS; do not re-run
        bool halted = false;     ///< the clean exit was a computer return
        std::vector<uint8_t> ctrl;        ///< its control value
        uint64_t consumed = 0;   ///< cumulative across attempts
        uint64_t emitted = 0;
        std::vector<uint8_t> pendingOut;  ///< yielded element whose push
                                          ///< was torn down; re-pushed first
        std::vector<uint8_t> snap;  ///< node-state snapshot at the last
                                    ///< quiescent restart boundary
    };

    RunStats runAttempt(std::vector<std::unique_ptr<SpscQueue>>& queues,
                        InputSource& src, OutputSink& sink,
                        std::vector<StageCarry>* carry);
    void rearm(std::vector<std::unique_ptr<SpscQueue>>& queues,
               InputSource& src, OutputSink& sink);
    void rearmStage(std::vector<std::unique_ptr<SpscQueue>>& queues,
                    InputSource& src, OutputSink& sink,
                    std::vector<StageCarry>& carry, size_t failed);

    std::vector<NodePtr> stages_;
    Frame frame_;
    size_t inWidth_;
    size_t outWidth_;
    size_t queueCap_;
    double deadlineMs_ = 0;
    RestartPolicy restart_;
    std::shared_ptr<PipelineMetrics> metrics_;
    std::shared_ptr<SpanTracker> spans_;
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_THREADED_H
