/**
 * @file
 * The execution-node interface: the paper's tick/proc model (§2.6).
 *
 * Every compiled computation becomes a re-entrant state machine.  The
 * paper's `tick` ("do you have output / do you need input / did you halt")
 * maps to `advance()` returning Yield / NeedInput / Done, and `proc`
 * (consume a pushed value) maps to `supply()`.  A pipe advances its right
 * child first — pipelines are drained from the right, so no variable-sized
 * queues are needed between `>>>` components and values are pushed as soon
 * as they become available (low latency), exactly as in the paper.
 *
 * Contract:
 *  - `start()` is called before any other method and again on re-init
 *    (that is how `repeat` re-initializes its body);
 *  - `advance()` in the need-input state is idempotent until `supply()`
 *    provides one element (the pointer must stay valid until the next
 *    `advance()` returns);
 *  - after Done, `advance()` is not called again until `start()`.
 */
#ifndef ZIRIA_ZEXEC_NODE_H
#define ZIRIA_ZEXEC_NODE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "support/state_io.h"
#include "zexpr/frame.h"

namespace ziria {

/** Result of one scheduling step. */
enum class Status : uint8_t {
    Yield,      ///< one output element available via out()
    NeedInput,  ///< must supply() one input element to make progress
    Done,       ///< (computers only) halted; control value via ctrl()
};

/** Base class for execution nodes. */
class ExecNode
{
  public:
    virtual ~ExecNode() = default;

    /** (Re)initialize node state. */
    virtual void start(Frame& f) = 0;

    /** Make progress. */
    virtual Status advance(Frame& f) = 0;

    /** Provide one input element of inWidth() bytes. */
    virtual void supply(Frame& f, const uint8_t* in) = 0;

    /** Pointer to the last yielded output element (outWidth() bytes). */
    virtual const uint8_t* out() const = 0;

    /** Pointer to the control value after Done (ctrlWidth() bytes). */
    virtual const uint8_t* ctrl() const { return nullptr; }

    /**
     * Discard ALL state — buffered partial elements, loop counters,
     * chosen branches — and return to the state of a freshly constructed
     * node after start().  Unlike start(), which combinators only apply
     * to the currently active child, reset() must reach every child
     * recursively, including inactive Seq items, untaken If branches and
     * un-started While bodies.  Used by the restart supervisor to re-arm
     * a pipeline at a frame boundary (docs/ROBUSTNESS.md, "Recovery").
     *
     * Contract: `reset(f)` ≡ fresh-construction + `start(f)`.  The
     * default suffices for leaf nodes whose start() already
     * re-initializes everything.
     */
    virtual void reset(Frame& f) { start(f); }

    /**
     * Serialize ALL live state — buffered partial elements, loop
     * counters, chosen branches, and the frame cells this node owns
     * (LetVar storage, seq binders, induction variables, kernel
     * parameter slots) — into @p w.  Like reset(), the walk must reach
     * every child recursively so the stream is total over the tree.
     *
     * Contract: at any quiescent point (no advance()/supply() call in
     * flight), `reset(f)` followed by `restore(f, r)` over the stream
     * written by `snapshot(f, w)` must reproduce a node whose future
     * output is bit-identical to the snapshotted node's
     * (docs/ROBUSTNESS.md, "Checkpointing & migration").
     *
     * The default suffices for stateless leaves; stateful nodes
     * override both methods, and restore() may assume reset(f) ran
     * first (it only patches state back in, it never re-links
     * children).
     */
    virtual void snapshot(const Frame& f, StateWriter& w) const
    {
        (void)f;
        (void)w;
    }

    /** Restore the state written by snapshot(); see its contract. */
    virtual void restore(Frame& f, StateReader& r)
    {
        (void)f;
        (void)r;
    }

    size_t inWidth() const { return inWidth_; }
    size_t outWidth() const { return outWidth_; }
    size_t ctrlWidth() const { return ctrlWidth_; }

    void setInWidth(size_t w) { inWidth_ = w; }
    void setOutWidth(size_t w) { outWidth_ = w; }
    void setCtrlWidth(size_t w) { ctrlWidth_ = w; }

  protected:
    size_t inWidth_ = 0;
    size_t outWidth_ = 0;
    size_t ctrlWidth_ = 0;
};

using NodePtr = std::unique_ptr<ExecNode>;

} // namespace ziria

#endif // ZIRIA_ZEXEC_NODE_H
