/**
 * @file
 * Concrete execution nodes for every computation form.
 *
 * Primitive nodes (take/emit/return/map/filter/native) are in
 * nodes_prim.cc; combinators (seq/pipe/if/repeat/times/while/letvar) are
 * in nodes_comb.cc.
 */
#ifndef ZIRIA_ZEXEC_NODES_H
#define ZIRIA_ZEXEC_NODES_H

#include <functional>
#include <optional>

#include "zast/comp.h"
#include "zexec/node.h"
#include "zexpr/compile_expr.h"
#include "zexpr/lut.h"

namespace ziria {

/** `take` — waits for one element and returns it as the control value. */
class TakeNode : public ExecNode
{
  public:
    explicit TakeNode(size_t width);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return nullptr; }
    const uint8_t* ctrl() const override { return ctrlBuf_.data(); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    std::vector<uint8_t> ctrlBuf_;
    bool pending_ = false;
};

/** `takes n` — collects n elements into an array control value. */
class TakeManyNode : public ExecNode
{
  public:
    TakeManyNode(size_t elem_width, size_t n);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return nullptr; }
    const uint8_t* ctrl() const override { return ctrlBuf_.data(); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    std::vector<uint8_t> ctrlBuf_;
    size_t n_;
    size_t have_ = 0;
};

/** `emit e` — yields one element, then halts with unit control. */
class EmitNode : public ExecNode
{
  public:
    EmitNode(EvalInto expr, size_t width);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return outBuf_.data(); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    EvalInto expr_;
    std::vector<uint8_t> outBuf_;
    bool emitted_ = false;
};

/** `emits e` — yields the elements of an array, then halts. */
class EmitsNode : public ExecNode
{
  public:
    EmitsNode(EvalInto arr_expr, size_t elem_width, size_t len);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override
    {
        return arrBuf_.data() + (next_ - 1) * outWidth_;
    }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    EvalInto arrExpr_;
    std::vector<uint8_t> arrBuf_;
    size_t len_;
    size_t next_ = 0;
    bool evaluated_ = false;
};

/** `do { ... } / return e` — runs imperative code, halts immediately. */
class ReturnNode : public ExecNode
{
  public:
    ReturnNode(Action body, EvalInto ret, size_t ctrl_width);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return nullptr; }
    const uint8_t* ctrl() const override { return ctrlBuf_.data(); }

  private:
    Action body_;
    EvalInto ret_;
    std::vector<uint8_t> ctrlBuf_;
};

/** One compiled map stage (kernel or its LUT replacement). */
struct MapStage
{
    CompiledKernel kernel;
    std::shared_ptr<CompiledLut> lut;  ///< null = run the kernel body
    size_t inW = 0;
    size_t outW = 0;
};

/**
 * `map f` — one output per input.  The kernel body may be replaced by a
 * lookup table (the auto-LUT optimization); `lut` is null otherwise.
 */
class MapNode : public ExecNode
{
  public:
    MapNode(CompiledKernel kernel, std::shared_ptr<CompiledLut> lut,
            size_t in_width, size_t out_width);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return outBuf_.data(); }

    bool usesLut() const { return stage_.lut != nullptr; }

    /** Hand the stage over for map-chain coalescing. */
    MapStage takeStage() { return std::move(stage_); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    MapStage stage_;
    std::vector<uint8_t> outBuf_;
    bool pending_ = false;
};

/**
 * A coalesced chain of map stages: `map f >>> map g >>> ...` executed
 * back to back per element with no interior pipe traffic — the
 * execution-level form of the paper's static scheduling of map
 * compositions (§4, auto-mapping).
 */
class MapChainNode : public ExecNode
{
  public:
    explicit MapChainNode(std::vector<MapStage> stages);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return outBuf_.data(); }

    /** Hand the stages over for further coalescing. */
    std::vector<MapStage> takeStages() { return std::move(stages_); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    std::vector<MapStage> stages_;
    std::vector<uint8_t> outBuf_;
    bool pending_ = false;
};

/** `filter p` — forwards elements satisfying the predicate. */
class FilterNode : public ExecNode
{
  public:
    FilterNode(CompiledKernel pred, size_t width);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return outBuf_.data(); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    CompiledKernel pred_;
    std::vector<uint8_t> outBuf_;
    bool pending_ = false;
};

/** Adapter running a NativeKernel (FFT, Viterbi, ...) as a node. */
class NativeNode : public ExecNode
{
  public:
    /** Factory is invoked at start() so arguments can read seq binders. */
    using Factory = std::function<std::unique_ptr<NativeKernel>(Frame&)>;

    NativeNode(Factory factory, size_t in_width, size_t out_width,
               size_t ctrl_width, bool is_computer);

    void start(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return outBuf_.data(); }
    const uint8_t* ctrl() const override { return kernel_->ctrl().data(); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    class RingEmitter;

    Factory factory_;
    std::unique_ptr<NativeKernel> kernel_;
    std::vector<uint8_t> ring_;   ///< buffered output elements
    size_t ringHead_ = 0;         ///< bytes already consumed from ring_
    std::vector<uint8_t> outBuf_;
    bool isComputer_;
    bool finished_ = false;
};

// ---------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------

/** `seq { x <- c1; ... }` — the switchtable of §2.6. */
class SeqNode : public ExecNode
{
  public:
    struct Item
    {
        NodePtr node;
        long bindOff = -1;  ///< frame offset of the binder, -1 if none
        size_t bindWidth = 0;
    };

    explicit SeqNode(std::vector<Item> items);

    void start(Frame& f) override;
    void reset(Frame& f) override;  ///< resets EVERY item, not just [0]
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override;
    const uint8_t* ctrl() const override;

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    std::vector<Item> items_;
    size_t idx_ = 0;
    bool done_ = false;
};

/** `c1 >>> c2` — right-drained data-path composition. */
class PipeNode : public ExecNode
{
  public:
    PipeNode(NodePtr left, NodePtr right);

    void start(Frame& f) override;
    void reset(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return right_->out(); }
    const uint8_t* ctrl() const override { return ctrlSrc_; }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    NodePtr left_;
    NodePtr right_;
    const uint8_t* ctrlSrc_ = nullptr;
    uint8_t ctrlFrom_ = 0;  ///< 0 = none, 1 = left, 2 = right
};

/** `if e then c1 else c2` — the guard is evaluated at initialization. */
class IfNode : public ExecNode
{
  public:
    IfNode(EvalInt cond, NodePtr then_n, NodePtr else_n);

    void start(Frame& f) override;
    void reset(Frame& f) override;  ///< resets BOTH branches
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return chosen_->out(); }
    const uint8_t* ctrl() const override { return chosen_->ctrl(); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    EvalInt cond_;
    NodePtr then_;
    NodePtr else_;
    ExecNode* chosen_ = nullptr;
};

/** `repeat c` — restarts the body each time it halts. */
class RepeatNode : public ExecNode
{
  public:
    explicit RepeatNode(NodePtr body);

    void start(Frame& f) override;
    void reset(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return body_->out(); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    NodePtr body_;
    uint64_t spins_ = 0;  ///< guard against non-consuming bodies
};

/** `times e { c }`. */
class TimesNode : public ExecNode
{
  public:
    TimesNode(EvalInt count, long iv_off, TypeKind iv_kind, NodePtr body);

    void start(Frame& f) override;
    void reset(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return body_->out(); }
    const uint8_t* ctrl() const override { return nullptr; }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    EvalInt count_;
    long ivOff_;
    TypeKind ivKind_;
    NodePtr body_;
    int64_t n_ = 0;
    int64_t i_ = 0;
};

/** `while e { c }` — the guard is re-evaluated before each iteration. */
class WhileNode : public ExecNode
{
  public:
    WhileNode(EvalInt cond, NodePtr body);

    void start(Frame& f) override;
    void reset(Frame& f) override;  ///< resets the (possibly un-started) body
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return body_->out(); }
    const uint8_t* ctrl() const override { return nullptr; }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    EvalInt cond_;
    NodePtr body_;
    bool running_ = false;
    bool finished_ = false;
};

/** `var x := e in c`. */
class LetVarNode : public ExecNode
{
  public:
    LetVarNode(size_t off, size_t width, EvalInto init, NodePtr body);

    void start(Frame& f) override;
    void reset(Frame& f) override;
    Status advance(Frame& f) override;
    void supply(Frame& f, const uint8_t* in) override;
    const uint8_t* out() const override { return body_->out(); }
    const uint8_t* ctrl() const override { return body_->ctrl(); }

    void snapshot(const Frame& f, StateWriter& w) const override;
    void restore(Frame& f, StateReader& r) override;

  private:
    size_t off_;
    size_t width_;
    EvalInto init_;  ///< may be null (zero-fill)
    NodePtr body_;
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_NODES_H
