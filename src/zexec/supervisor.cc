#include "zexec/supervisor.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "support/log.h"
#include "support/metrics.h"
#include "support/timeline.h"
#include "support/timing.h"

namespace ziria {

const char*
failureCauseName(FailureCause c)
{
    switch (c) {
      case FailureCause::Exception: return "exception";
      case FailureCause::Stall: return "stall";
      case FailureCause::Cancel: return "cancel";
    }
    return "unknown";
}

double
RestartPolicy::backoffMsFor(uint32_t attempt) const
{
    if (attempt <= 1)
        return std::min(backoffInitialMs, backoffCapMs);
    double ms = backoffInitialMs;
    for (uint32_t i = 1; i < attempt; ++i) {
        ms *= backoffMultiplier;
        if (ms >= backoffCapMs)
            return backoffCapMs;
    }
    return std::min(ms, backoffCapMs);
}

namespace {

std::string
describeFailure(const StageFailure& f)
{
    std::ostringstream os;
    os << "pipeline stage " << f.stage << " (" << f.path
       << ") failed [" << failureCauseName(f.cause) << "]";
    if (!f.message.empty())
        os << ": " << f.message;
    if (f.restartsExhausted) {
        os << "; " << f.restarts.size()
           << " restart(s) exhausted after "
           << f.backoffMsTotal << " ms of backoff";
    }
    return os.str();
}

} // namespace

StageFailureError::StageFailureError(StageFailure f)
    : FatalError(describeFailure(f)), failure_(std::move(f))
{
}

bool
RestartSupervisor::onFailure(StageFailure& f)
{
    const bool restartable = policy_.enabled() &&
                             f.cause != FailureCause::Cancel;
    if (!restartable || attempts_ >= policy_.maxRestarts) {
        // The run is over: hand the history to the outgoing failure so
        // the thrown error narrates the whole recovery attempt.
        f.restarts = history_;
        f.backoffMsTotal = backoffMsTotal_;
        if (restartable) {
            f.restartsExhausted = true;
            metrics::Registry::global().counter("restart.exhausted").inc();
        }
        return false;
    }

    ++attempts_;
    const double backoff = policy_.backoffMsFor(attempts_);

    RestartAttempt rec;
    rec.attempt = attempts_;
    rec.stage = f.stage;
    rec.cause = f.cause;
    rec.message = f.message;
    rec.backoffMs = backoff;
    history_.push_back(std::move(rec));
    backoffMsTotal_ += backoff;

    auto& reg = metrics::Registry::global();
    reg.counter("restart.attempts").inc();
    reg.counter("restart.backoff_ms_total")
        .add(static_cast<uint64_t>(backoff));

    if (timeline::Recorder* r = timeline::active()) {
        r->instant("restart",
                   "restart " + f.path + " [" +
                       failureCauseName(f.cause) + "] attempt " +
                       std::to_string(attempts_),
                   nowNs(), timeline::currentTrack());
    }

    ZIRIA_LOG(Warn, "restart: stage ", f.stage, " (", f.path,
              ") failed [", failureCauseName(f.cause), "]: ", f.message,
              "; re-arming (attempt ", attempts_, "/",
              policy_.maxRestarts, ") after ", backoff, " ms");

    if (backoff > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
    }
    return true;
}

} // namespace ziria
