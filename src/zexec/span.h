/**
 * @file
 * Frame spans: end-to-end latency tracking for pipeline frames.
 *
 * The paper's real-time claim is a latency claim — per-packet deadlines
 * on the order of SIFS — but per-node counters (zexec/trace.h) only say
 * how much work happened, not how long a frame took source→sink.  A
 * SpanTracker closes that gap: the input side stamps every K-th consumed
 * element as the start of a "frame" span, the output side completes the
 * span once the frame's expected output has been emitted, and the
 * elapsed wall time feeds a latency histogram with p50/p90/p99/p999
 * extraction plus an optional SLO budget counter
 * (`latency.budget.{met,missed}`).
 *
 * The input→output mapping assumes the stream is count-preserving up to
 * a fixed ratio (`outPerIn`, default 1): frame k (elements [k·K,
 * (k+1)·K)) completes when ceil((k+1)·K·outPerIn) total outputs have
 * been emitted.  That is the same convention zclient and bench_serve use
 * for round-trip latency, and it holds for every rate-1 pipeline; for
 * expanding/contracting pipelines pass the expected ratio.
 *
 * Thread safety: one input thread and one output thread (SPSC, matching
 * every driver: the single-threaded Pipeline calls both from one thread,
 * ThreadedPipeline from the first/last stage threads, a zserve session
 * from the I/O thread and its worker).  The per-element hot path is one
 * relaxed atomic increment plus one relaxed load; the mutex is only
 * taken at frame boundaries (every K elements) and completions.
 * `onRestart` may race with onInput/onOutput and resynchronizes the
 * mapping by re-basing both counters.
 *
 * Like TracedNode, the layer is zero-cost when off: no tracker is
 * allocated, and the drivers' hooks are a single predictable null check
 * (guarded by scripts/check_overhead.sh).
 */
#ifndef ZIRIA_ZEXEC_SPAN_H
#define ZIRIA_ZEXEC_SPAN_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "support/metrics.h"

namespace ziria {

/** Configuration for a SpanTracker. */
struct SpanConfig
{
    uint64_t frameElems = 256;  ///< input elements per tracked frame
    double outPerIn = 1.0;      ///< expected output/input element ratio
    uint64_t budgetNs = 0;      ///< SLO per frame; 0 = no budget
    std::string name = "pipeline";  ///< label for timeline events
};

/** Frame-span latency tracker (one input thread, one output thread). */
class SpanTracker
{
  public:
    explicit SpanTracker(SpanConfig cfg);

    /** Input side: one consumed element. */
    void
    onInput()
    {
        uint64_t i = in_.fetch_add(1, std::memory_order_relaxed);
        if (i >= nextOpenAt_.load(std::memory_order_relaxed))
            openSpans(i);
    }

    /** Output side: one emitted element. */
    void
    onOutput()
    {
        uint64_t o = out_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (o >= nextCloseAt_.load(std::memory_order_relaxed))
            closeSpans(o);
    }

    /**
     * A supervised restart discarded in-flight data: abort every open
     * span and re-base the input→output mapping on the current counters
     * (a restart costs at most the frames that were in flight).
     */
    void onRestart();

    /** Close any spans already satisfied by the emitted count (end of
     *  run; open spans of a truncated tail frame stay open). */
    void flush();

    /** Consistent copy of the tracker's state. */
    struct Snapshot
    {
        uint64_t completed = 0;  ///< spans closed into the histogram
        uint64_t aborted = 0;    ///< spans discarded by restarts
        uint64_t open = 0;       ///< spans still in flight
        uint64_t budgetMet = 0;
        uint64_t budgetMissed = 0;
        metrics::Histogram latencyNs;
    };

    Snapshot snapshot() const;

    const SpanConfig& config() const { return cfg_; }

    /**
     * Merge this tracker's results into registry metrics: histogram
     * `<prefix>.e2e_ns`, counters `<prefix>.frames`,
     * `<prefix>.frames_aborted` and — when a budget is configured —
     * `<prefix>.budget.met` / `<prefix>.budget.missed`.  Call from one
     * thread once the run (or session) is done.
     */
    void mergeInto(metrics::Registry& reg,
                   const std::string& prefix) const;

    /** Serialize a snapshot into an open JSON object scope. */
    void writeJson(metrics::JsonWriter& w, const std::string& key) const;

  private:
    struct OpenSpan
    {
        uint64_t frame = 0;    ///< global frame ordinal (timeline label)
        uint64_t startNs = 0;
        uint64_t closeAt = 0;  ///< total-output threshold that closes it
    };

    void openSpans(uint64_t i);
    void closeSpans(uint64_t o);
    void closeReadyLocked(uint64_t o, uint64_t now);

    SpanConfig cfg_;
    std::atomic<uint64_t> in_{0};
    std::atomic<uint64_t> out_{0};
    std::atomic<uint64_t> nextOpenAt_{0};
    std::atomic<uint64_t> nextCloseAt_{~uint64_t{0}};

    mutable std::mutex mu_;
    std::deque<OpenSpan> open_;
    metrics::Histogram hist_;
    uint64_t inBase_ = 0;       ///< in_ at the last restart (epoch start)
    uint64_t outBase_ = 0;      ///< out_ at the last restart
    uint64_t epochFrames_ = 0;  ///< spans opened this epoch
    uint64_t totalFrames_ = 0;  ///< spans opened ever (timeline ordinal)
    uint64_t completed_ = 0;
    uint64_t aborted_ = 0;
    uint64_t budgetMet_ = 0;
    uint64_t budgetMissed_ = 0;
    uint32_t track_ = 0;        ///< timeline track id
};

} // namespace ziria

#endif // ZIRIA_ZEXEC_SPAN_H
